// Benchmarks regenerating the paper's evaluation artifacts, one target
// per table/figure (see DESIGN.md's per-experiment index), plus
// micro-benchmarks for the hot paths. Benchmark budgets are step-bounded
// so -bench=. completes in minutes; use cmd/iddbench for full-budget
// runs.
package idd_test

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/advisor"
	"github.com/evolving-olap/idd/internal/datasets"
	"github.com/evolving-olap/idd/internal/experiments"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/cp"
	"github.com/evolving-olap/idd/internal/solver/dp"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
	"github.com/evolving-olap/idd/internal/solver/mip"
	"github.com/evolving-olap/idd/internal/solver/portfolio"
	"github.com/evolving-olap/idd/internal/tpch"
)

// --- Table 4: dataset statistics (the advisor/what-if pipeline) ---

func BenchmarkTable4_TPCHPipeline(b *testing.B) {
	s, q := tpch.Schema(), tpch.Queries()
	for i := 0; i < b.N; i++ {
		in, _, err := advisor.BuildInstance("tpch", s, q, advisor.Options{
			MaxIndexes: 32, MaxPlansPerQuery: 20, MinBuildInteraction: 0.22,
		})
		if err != nil {
			b.Fatal(err)
		}
		if in.Stats().Queries != 22 {
			b.Fatal("bad instance")
		}
	}
}

func BenchmarkTable4_Stats(b *testing.B) {
	in := datasets.TPCH()
	for i := 0; i < b.N; i++ {
		if in.Stats().Indexes == 0 {
			b.Fatal("empty")
		}
	}
}

// --- Table 5: exact search ---

func benchCP(b *testing.B, n int, density datasets.Density, analyzed bool) {
	in := datasets.ReducedTPCH(n, density)
	c := model.MustCompile(in)
	cs := sched.PrecedenceSet(in)
	if analyzed {
		cs, _ = prune.Analyze(c, prune.Options{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cp.Solve(c, cs, cp.Options{NodeLimit: 200000})
		if res.Order == nil {
			b.Fatal("no solution")
		}
	}
}

func BenchmarkTable5_CP_N6Low(b *testing.B)   { benchCP(b, 6, datasets.Low, false) }
func BenchmarkTable5_CP_N11Low(b *testing.B)  { benchCP(b, 11, datasets.Low, false) }
func BenchmarkTable5_CPp_N6Low(b *testing.B)  { benchCP(b, 6, datasets.Low, true) }
func BenchmarkTable5_CPp_N13Low(b *testing.B) { benchCP(b, 13, datasets.Low, true) }
func BenchmarkTable5_CPp_N16Mid(b *testing.B) { benchCP(b, 16, datasets.Mid, true) }

func BenchmarkTable5_MIP_N6Low(b *testing.B) {
	in := datasets.ReducedTPCH(6, datasets.Low)
	c := model.MustCompile(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Node-limited: a full proof takes ~10s (see EXPERIMENTS.md);
		// the bench measures per-node cost of the time-indexed model.
		if _, err := mip.Solve(c, nil, mip.Options{TimestepsPerIndex: 3, NodeLimit: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5_VNS_N31Full(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	init := greedy.Solve(c, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		local.VNS(c, nil, local.Options{
			Initial: init, MaxSteps: 20000, Rng: rand.New(rand.NewSource(int64(i))),
		})
	}
}

// --- Table 6: pruning drill-down (analysis cost itself) ---

func benchAnalyze(b *testing.B, props prune.Property) {
	c := model.MustCompile(datasets.ReducedTPCH(13, datasets.Low))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prune.Analyze(c, prune.Options{Properties: props})
	}
}

func BenchmarkTable6_AnalyzeA(b *testing.B)     { benchAnalyze(b, prune.Alliances) }
func BenchmarkTable6_AnalyzeAC(b *testing.B)    { benchAnalyze(b, prune.Alliances|prune.Colonized) }
func BenchmarkTable6_AnalyzeACMDT(b *testing.B) { benchAnalyze(b, prune.All) }

func BenchmarkTable6_CPDrilldown(b *testing.B) {
	c := model.MustCompile(datasets.ReducedTPCH(11, datasets.Low))
	cs, _ := prune.Analyze(c, prune.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Solve(c, cs, cp.Options{NodeLimit: 200000})
	}
}

// --- Table 7: initial solutions ---

func BenchmarkTable7_Greedy_TPCH(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	for i := 0; i < b.N; i++ {
		greedy.Solve(c, nil)
	}
}

func BenchmarkTable7_Greedy_TPCDS(b *testing.B) {
	c := model.MustCompile(datasets.TPCDS())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedy.Solve(c, nil)
	}
}

func BenchmarkTable7_DP_TPCH(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	for i := 0; i < b.N; i++ {
		dp.Solve(c)
	}
}

func BenchmarkTable7_DP_TPCDS(b *testing.B) {
	c := model.MustCompile(datasets.TPCDS())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp.Solve(c)
	}
}

func BenchmarkTable7_Random100_TPCH(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 100; k++ {
			c.Objective(rng.Perm(c.N))
		}
	}
}

// --- Figures 11/12: anytime local search (step-bounded) ---

func benchLocal(b *testing.B, c *model.Compiled, run func(opt local.Options) local.Result) {
	init := greedy.Solve(c, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(local.Options{Initial: init, MaxSteps: 10000, Rng: rand.New(rand.NewSource(int64(i)))})
	}
}

func BenchmarkFigure11_VNS_TPCH(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	benchLocal(b, c, func(o local.Options) local.Result { return local.VNS(c, nil, o) })
}

func BenchmarkFigure11_LNS_TPCH(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	benchLocal(b, c, func(o local.Options) local.Result { return local.LNS(c, nil, o) })
}

func BenchmarkFigure11_TSBSwap_TPCH(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	benchLocal(b, c, func(o local.Options) local.Result { return local.TabuBSwap(c, nil, o) })
}

func BenchmarkFigure11_TSFSwap_TPCH(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	benchLocal(b, c, func(o local.Options) local.Result { return local.TabuFSwap(c, nil, o) })
}

func BenchmarkFigure12_VNS_TPCDS(b *testing.B) {
	c := model.MustCompile(datasets.TPCDS())
	benchLocal(b, c, func(o local.Options) local.Result { return local.VNS(c, nil, o) })
}

func BenchmarkFigure12_TSFSwap_TPCDS(b *testing.B) {
	c := model.MustCompile(datasets.TPCDS())
	benchLocal(b, c, func(o local.Options) local.Result { return local.TabuFSwap(c, nil, o) })
}

func BenchmarkFigure13_VNSDecomposed_TPCDS(b *testing.B) {
	c := model.MustCompile(datasets.TPCDS())
	init := greedy.Solve(c, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		local.VNS(c, nil, local.Options{
			Initial: init, MaxSteps: 10000, Rng: rand.New(rand.NewSource(int64(i))),
			OnImprove: func(order []int, _ float64) { c.Evaluate(order) },
		})
	}
}

// --- Parallel CP: the work-stealing proof search (speedup benchmark) ---
//
// BenchmarkCPParallel_ProofN20Low_* is the acceptance benchmark for the
// parallel branch-and-bound: a complete optimality proof of the largest
// comfortably-provable reduced TPC-H instance (n=20, low density,
// analyzed constraints, greedy incumbent — ~22M nodes) at 1, 2 and 8
// workers. The recorded per-worker wall-clock ratio IS the speedup;
// note that a container pinned to a single CPU (GOMAXPROCS=1) cannot
// show wall-clock gains — compare runs on multi-core hardware, where
// the workers split the frontier across real cores.
// BenchmarkCPParallel_TPCH31Nodes_* measures the same engine on the
// full n=31 TPC-H instance under a fixed 2M-node budget: the complete
// proof is beyond any single machine (>4e8 nodes without exhausting),
// so node throughput at equal budgets is the comparable metric there.

func benchCPParallelProof(b *testing.B, workers int) {
	in := datasets.ReducedTPCH(20, datasets.Low)
	c := model.MustCompile(in)
	cs, _ := prune.Analyze(c, prune.Options{})
	init := greedy.Solve(c, cs)
	// Production configuration (registry default): the tail tables are
	// preprocessing, built once per request outside the search.
	tb := prune.NewTailBound(c, cs, prune.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cp.Solve(c, cs, cp.Options{
			Workers: workers, Incumbent: init, Seed: int64(i), TailBound: tb,
		})
		if !res.Proved {
			b.Fatal("proof did not complete")
		}
	}
}

func BenchmarkCPParallel_ProofN20Low_W1(b *testing.B) { benchCPParallelProof(b, 1) }
func BenchmarkCPParallel_ProofN20Low_W2(b *testing.B) { benchCPParallelProof(b, 2) }
func BenchmarkCPParallel_ProofN20Low_W8(b *testing.B) { benchCPParallelProof(b, 8) }

// BenchmarkCPParallel_ProofN20Low_W4Instrumented runs the same complete
// proof with every observability surface live: the per-worker search
// Stats (always on), an OnSolution callback, and an ExternalBound poll
// every node — the portfolio-embedded configuration. Its alloc ceiling
// (see scripts/check_alloc_ceilings.py) pins the invariant that
// instrumentation stays out of the allocator: counters are plain ints
// in per-worker scratch, merged once per solve.
func BenchmarkCPParallel_ProofN20Low_W4Instrumented(b *testing.B) {
	in := datasets.ReducedTPCH(20, datasets.Low)
	c := model.MustCompile(in)
	cs, _ := prune.Analyze(c, prune.Options{})
	init := greedy.Solve(c, cs)
	tb := prune.NewTailBound(c, cs, prune.Options{})
	var solutions int64
	onSol := func(_ []int, _ float64) { solutions++ } // serialized by the engine
	bound := func() float64 { return math.Inf(1) }    // polled per node, never prunes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cp.Solve(c, cs, cp.Options{
			Workers: 4, Incumbent: init, Seed: int64(i), TailBound: tb,
			OnSolution: onSol, ExternalBound: bound,
		})
		if !res.Proved {
			b.Fatal("proof did not complete")
		}
		st := res.Stats
		if st.PrunedBound+st.PrunedTail+st.Infeasible != res.Fails {
			b.Fatalf("prune causes %d+%d+%d do not sum to fails %d",
				st.PrunedBound, st.PrunedTail, st.Infeasible, res.Fails)
		}
	}
}

func benchCPParallelTPCH31(b *testing.B, workers int) {
	c := model.MustCompile(datasets.TPCH())
	cs, _ := prune.Analyze(c, prune.Options{})
	init := greedy.Solve(c, cs)
	tb := prune.NewTailBound(c, cs, prune.Options{})
	const nodeBudget = 2_000_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cp.Solve(c, cs, cp.Options{
			Workers: workers, NodeLimit: nodeBudget, Incumbent: init, Seed: int64(i), TailBound: tb,
		})
		if res.Nodes < nodeBudget {
			b.Fatalf("search ended after %d nodes", res.Nodes)
		}
	}
}

func BenchmarkCPParallel_TPCH31Nodes_W1(b *testing.B) { benchCPParallelTPCH31(b, 1) }
func BenchmarkCPParallel_TPCH31Nodes_W8(b *testing.B) { benchCPParallelTPCH31(b, 8) }

// --- Portfolio: concurrent racing with a shared incumbent ---

func benchPortfolio(b *testing.B, workers int) {
	in := datasets.ReducedTPCH(16, datasets.Mid)
	c := model.MustCompile(in)
	cs := sched.PrecedenceSet(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := portfolio.Solve(context.Background(), c, cs, portfolio.Options{
			Backends:  []string{"greedy", "cp", "tabu-f", "lns", "vns"},
			Workers:   workers,
			Budget:    200 * time.Millisecond,
			StepLimit: 20000,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Order == nil {
			b.Fatal("no order")
		}
	}
}

func BenchmarkPortfolio_Workers1(b *testing.B) { benchPortfolio(b, 1) }
func BenchmarkPortfolio_Workers4(b *testing.B) { benchPortfolio(b, 4) }

func BenchmarkPortfolio_TPCH(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := portfolio.Solve(context.Background(), c, nil, portfolio.Options{
			Budget:    250 * time.Millisecond,
			StepLimit: 15000,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Order == nil {
			b.Fatal("no order")
		}
	}
}

func BenchmarkMicro_PortfolioStore(b *testing.B) {
	// The incumbent store's hot paths: the lock-free poll every anytime
	// solver issues per iteration, plus an occasional improving offer.
	s := portfolio.NewStore(31, nil)
	order := sched.Identity(31)
	s.Offer("seed", order, 1e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BetterThan(0)
		if i%1024 == 0 {
			s.Offer("bench", order, 1e9-float64(i))
		}
	}
}

// --- Micro-benchmarks: evaluation hot paths ---

func BenchmarkMicro_ObjectiveTPCH(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	order := sched.Identity(c.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Objective(order)
	}
}

func BenchmarkMicro_ObjectiveTPCDS(b *testing.B) {
	c := model.MustCompile(datasets.TPCDS())
	order := sched.Identity(c.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Objective(order)
	}
}

func BenchmarkMicro_WalkerPushPop(b *testing.B) {
	c := model.MustCompile(datasets.TPCDS())
	w := model.NewWalker(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Push(i % c.N)
		w.Pop()
	}
}

func BenchmarkMicro_SwapDelta(b *testing.B) {
	// The TS-BSwap inner loop: evaluate a neighboring order.
	c := model.MustCompile(datasets.TPCDS())
	order := sched.Identity(c.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, bb := i%c.N, (i*7+1)%c.N
		order[a], order[bb] = order[bb], order[a]
		c.Objective(order)
		order[a], order[bb] = order[bb], order[a]
	}
}

// --- MoveEval: delta move scoring vs the seed's full-replay path ---
//
// BenchmarkMoveEval_Swap/Insert are the acceptance benchmarks for the
// delta-evaluation core: 0 allocs/op in steady state and ≥3× the
// throughput of the *seed's* full-replay move scoring on the N=31 full
// TPC-H instance (BenchmarkSeed_FullReplay_* in BENCH_eval.json, ~4.7×
// measured; run `SEED_REF=<pr-base> scripts/bench.sh` to reproduce —
// the seed scored every move by copying the order and replaying it
// through a freshly allocated pre-CSR Walker, ~5.6µs/70 allocs per
// move). BenchmarkMoveEval_FullReplay_* below is the same replay
// pattern against *today's* walker — a conservative same-binary
// comparator (~2.4-3×), smaller only because this PR also made full
// replays themselves ~2× faster.

// moveEvalPairs precomputes a deterministic random move stream so the
// measured loop does no RNG work and both sides score identical moves.
func moveEvalPairs(n, count int) [][2]int {
	rng := rand.New(rand.NewSource(7))
	out := make([][2]int, count)
	for i := range out {
		a, b := rng.Intn(n), rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		out[i] = [2]int{a, b}
	}
	return out
}

func BenchmarkMoveEval_Swap(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	e := model.NewMoveEval(c, sched.Identity(c.N))
	pairs := moveEvalPairs(c.N, 1024)
	for i := 0; i < 1024; i++ { // warm the evaluator's reusable buffers
		e.Swap(pairs[i][0], pairs[i][1])
		e.Reject()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		e.Swap(p[0], p[1])
		e.Reject()
	}
}

func BenchmarkMoveEval_Insert(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	e := model.NewMoveEval(c, sched.Identity(c.N))
	pairs := moveEvalPairs(c.N, 1024)
	for i := 0; i < 1024; i++ {
		e.Insert(pairs[i][0], pairs[i][1])
		e.Reject()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		e.Insert(p[0], p[1])
		e.Reject()
	}
}

func BenchmarkMoveEval_ApplyCommit(b *testing.B) {
	// Accepted-move cost: score + incremental commit (pairs of swaps, so
	// the order returns to its start state every two iterations).
	c := model.MustCompile(datasets.TPCH())
	e := model.NewMoveEval(c, sched.Identity(c.N))
	pairs := moveEvalPairs(c.N, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1022] // even index: each pair applied twice = undone
		e.Swap(p[0], p[1])
		e.Apply()
	}
}

func BenchmarkMoveEval_FullReplay_Swap(b *testing.B) {
	// The seed's move-scoring path, reproduced verbatim: copy the order,
	// apply the swap, evaluate with a freshly allocated Walker.
	c := model.MustCompile(datasets.TPCH())
	order := sched.Identity(c.N)
	cand := make([]int, c.N)
	pairs := moveEvalPairs(c.N, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		copy(cand, order)
		sched.ApplySwap(cand, p[0], p[1])
		w := model.NewWalker(c)
		for _, ix := range cand {
			w.Push(ix)
		}
		_ = w.Objective()
	}
}

func BenchmarkMoveEval_FullReplay_Insert(b *testing.B) {
	c := model.MustCompile(datasets.TPCH())
	order := sched.Identity(c.N)
	cand := make([]int, c.N)
	pairs := moveEvalPairs(c.N, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		copy(cand, order)
		sched.ApplyInsert(cand, p[0], p[1])
		w := model.NewWalker(c)
		for _, ix := range cand {
			w.Push(ix)
		}
		_ = w.Objective()
	}
}

// Guard: the experiments harness stays runnable end to end with tiny
// budgets (smoke check for iddbench).
func TestHarnessSmoke(t *testing.T) {
	cfg := experiments.Config{
		ExactBudget: 100 * time.Millisecond,
		LocalBudget: 150 * time.Millisecond,
		Seed:        1,
		Points:      3,
	}
	if rows := experiments.RunTable7(cfg); len(rows) != 2 {
		t.Fatalf("table 7 rows: %d", len(rows))
	}
	if s := experiments.RunFigure11(cfg); len(s) == 0 {
		t.Fatal("figure 11 empty")
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

func benchCPAblation(b *testing.B, opt cp.Options) {
	c := model.MustCompile(datasets.ReducedTPCH(11, datasets.Low))
	cs, _ := prune.Analyze(c, prune.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cp.Solve(c, cs, opt)
		if !res.Proved {
			b.Fatal("ablation run did not finish")
		}
	}
}

func BenchmarkAblation_CP_Full(b *testing.B) { benchCPAblation(b, cp.Options{}) }
func BenchmarkAblation_CP_NaiveBranching(b *testing.B) {
	benchCPAblation(b, cp.Options{NaiveBranching: true})
}
func BenchmarkAblation_CP_NoBound(b *testing.B) { benchCPAblation(b, cp.Options{NoBound: true}) }

func BenchmarkAblation_PruneProperties(b *testing.B) {
	// Marginal value of the full property set vs alliances alone, as
	// CP search effort (nodes are deterministic; time is the metric).
	c := model.MustCompile(datasets.ReducedTPCH(13, datasets.Low))
	for _, step := range []struct {
		name  string
		props prune.Property
	}{
		{"A", prune.Alliances},
		{"ACMDT", prune.All},
	} {
		b.Run(step.name, func(b *testing.B) {
			cs, _ := prune.Analyze(c, prune.Options{Properties: step.props})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp.Solve(c, cs, cp.Options{NodeLimit: 500000})
			}
		})
	}
}

func BenchmarkAblation_VNSGroupSize(b *testing.B) {
	// VNS adaptation granularity (§7.3 uses groups of 20).
	c := model.MustCompile(datasets.TPCH())
	init := greedy.Solve(c, nil)
	for _, g := range []int{5, 20, 80} {
		b.Run(itob(g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				local.VNS(c, nil, local.Options{
					Initial: init, MaxSteps: 8000, GroupSize: g,
					Rng: rand.New(rand.NewSource(int64(i))),
				})
			}
		})
	}
}

func itob(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Scalability: VNS on growing synthetic instances (the paper's
// headline claim is that VNS stays robust into hundreds of indexes) ---

func benchVNSScale(b *testing.B, n int) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = n
	cfg.Queries = n
	in := randgen.New(rand.New(rand.NewSource(9)), cfg)
	c := model.MustCompile(in)
	cs := sched.PrecedenceSet(in)
	init := greedy.Solve(c, cs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		local.VNS(c, cs, local.Options{
			Initial: init, MaxSteps: 5000, Rng: rand.New(rand.NewSource(int64(i))),
		})
	}
}

func BenchmarkScaling_VNS_N50(b *testing.B)  { benchVNSScale(b, 50) }
func BenchmarkScaling_VNS_N100(b *testing.B) { benchVNSScale(b, 100) }
func BenchmarkScaling_VNS_N200(b *testing.B) { benchVNSScale(b, 200) }

func BenchmarkScaling_Greedy_N200(b *testing.B) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 200
	cfg.Queries = 200
	in := randgen.New(rand.New(rand.NewSource(9)), cfg)
	c := model.MustCompile(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedy.Solve(c, nil)
	}
}

func BenchmarkScaling_PruneAnalyze_TPCDS(b *testing.B) {
	c := model.MustCompile(datasets.TPCDS())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prune.Analyze(c, prune.Options{})
	}
}
