// Command iddbench regenerates the paper's evaluation: Tables 4-7 and
// Figures 11-13 (§8), printed as text. Budgets are scaled down from the
// paper's hours; raise them with -exact / -local for higher-fidelity
// runs.
//
// Usage:
//
//	iddbench                  # everything, default budgets
//	iddbench -only table5 -exact 30s
//	iddbench -only fig12 -local 2m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/evolving-olap/idd/internal/experiments"
)

func main() {
	var (
		only  = flag.String("only", "", "run one experiment: table4|table5|table6|table7|fig11|fig11x|fig12|fig13")
		exact = flag.Duration("exact", 3*time.Second, "budget per exact-search cell (Tables 5/6)")
		lcl   = flag.Duration("local", 0, "budget per anytime curve (0 = 8s TPC-H, 20s TPC-DS)")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	cfg := experiments.Config{ExactBudget: *exact, LocalBudget: *lcl, Seed: *seed}
	w := os.Stdout

	run := func(name string, f func()) {
		if *only != "" && *only != name {
			return
		}
		start := time.Now()
		f()
		fmt.Fprintf(w, "[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table4", func() { experiments.Table4(w) })
	run("table5", func() {
		experiments.FprintExactCells(w, "Table 5: Exact Search (Reduced TPC-H)", experiments.RunTable5(cfg))
	})
	run("table6", func() {
		experiments.FprintExactCells(w, "Table 6: Pruning Power Drill-Down (Reduced TPC-H)", experiments.RunTable6(cfg))
	})
	run("table7", func() { experiments.FprintTable7(w, experiments.RunTable7(cfg)) })
	run("fig11", func() {
		experiments.FprintAnytime(w, "Figure 11: Local Search (TPC-H), objective vs elapsed", experiments.RunFigure11(cfg))
	})
	run("fig11x", func() {
		experiments.FprintAnytime(w, "Figure 11 extended: + simulated annealing and insertion descent", experiments.RunFigure11Extended(cfg))
	})
	run("fig12", func() {
		experiments.FprintAnytime(w, "Figure 12: Local Search (TPC-DS), objective vs elapsed", experiments.RunFigure12(cfg))
	})
	run("fig13", func() { experiments.FprintFigure13(w, experiments.RunFigure13(cfg)) })
}
