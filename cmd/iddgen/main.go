// Command iddgen generates index-deployment-ordering problem instances
// ("matrix files") from the built-in TPC-H / TPC-DS pipelines or the
// synthetic generator, and writes them as JSON or compact text.
//
// Usage:
//
//	iddgen -dataset tpch -o tpch.json
//	iddgen -dataset tpcds -o tpcds.txt
//	iddgen -dataset tpch -reduce 13 -density low -o tpch13.json
//	iddgen -dataset synthetic -indexes 40 -queries 30 -seed 7 -o rand.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/datasets"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
)

func main() {
	var (
		dataset = flag.String("dataset", "tpch", "tpch | tpcds | synthetic")
		out     = flag.String("o", "", "output file (.json or text; default stdout as text)")
		reduce  = flag.Int("reduce", 0, "restrict to the first N indexes (0 = all)")
		density = flag.String("density", "full", "interaction density for -reduce: low | mid | full")
		indexes = flag.Int("indexes", 20, "synthetic: number of indexes")
		queries = flag.Int("queries", 15, "synthetic: number of queries")
		seed    = flag.Int64("seed", 1, "synthetic: random seed")
	)
	flag.Parse()

	var in *model.Instance
	switch *dataset {
	case "tpch":
		in = datasets.TPCH()
	case "tpcds":
		in = datasets.TPCDS()
	case "synthetic":
		cfg := randgen.DefaultConfig()
		cfg.Indexes = *indexes
		cfg.Queries = *queries
		in = randgen.New(rand.New(rand.NewSource(*seed)), cfg)
	default:
		fmt.Fprintf(os.Stderr, "iddgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if *reduce > 0 {
		var d datasets.Density
		switch *density {
		case "low":
			d = datasets.Low
		case "mid":
			d = datasets.Mid
		case "full":
			d = datasets.Full
		default:
			fmt.Fprintf(os.Stderr, "iddgen: unknown density %q\n", *density)
			os.Exit(2)
		}
		in = datasets.Reduce(in, *reduce, d)
	}

	if *out == "" {
		if err := codec.WriteText(os.Stdout, in); err != nil {
			fmt.Fprintf(os.Stderr, "iddgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := codec.SaveFile(*out, in); err != nil {
		fmt.Fprintf(os.Stderr, "iddgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "iddgen: wrote %s (%v)\n", *out, in.Stats())
}
