// Command iddinspect reports instance statistics (Table 4 style) and the
// §5 pruning-property analysis for a matrix file.
//
// Usage:
//
//	iddinspect tpch.json
//	iddinspect -tails -taillen 3 tpch13.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
)

func main() {
	var (
		tails   = flag.Bool("tails", false, "include tail-index analysis details")
		tailLen = flag.Int("taillen", 3, "tail length for -tails")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iddinspect [flags] <instance file>")
		os.Exit(2)
	}
	in, err := codec.LoadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	c, err := model.Compile(in)
	if err != nil {
		fail(err)
	}

	fmt.Printf("instance: %s\n", in.Name)
	fmt.Printf("stats:    %v\n", in.Stats())
	fmt.Printf("runtime:  %.2f (all queries, no indexes)\n", c.Base)
	fmt.Printf("deploy:   %.2f (sum of raw create costs)\n", in.TotalCreateCost())

	props := prune.All
	if !*tails {
		props = prune.Alliances | prune.Colonized | prune.Dominated | prune.Disjoint
	}
	cs, rep := prune.Analyze(c, prune.Options{Properties: props, TailLength: *tailLen})
	fmt.Printf("analysis: %v\n", rep)
	for _, g := range rep.Alliances {
		fmt.Printf("  alliance:")
		for _, i := range g {
			fmt.Printf(" %s", in.Indexes[i].Name)
		}
		fmt.Println()
	}
	for _, p := range rep.ColonizedPairs {
		fmt.Printf("  colonized: %s after %s\n", in.Indexes[p[1]].Name, in.Indexes[p[0]].Name)
	}
	for _, p := range rep.DominatedPairs {
		fmt.Printf("  dominated: %s after %s\n", in.Indexes[p[1]].Name, in.Indexes[p[0]].Name)
	}
	for _, p := range rep.DisjointPairs {
		fmt.Printf("  disjoint order: %s before %s\n", in.Indexes[p[0]].Name, in.Indexes[p[1]].Name)
	}
	if len(rep.TailFixed) > 0 {
		fmt.Printf("  tail (deployment suffix):")
		for _, i := range rep.TailFixed {
			fmt.Printf(" %s", in.Indexes[i].Name)
		}
		fmt.Println()
	}
	if *tails {
		// Figure 9: tail patterns grouped by tail set, champions first.
		groups := prune.TailPatterns(c, cs, *tailLen, 0)
		if groups == nil {
			fmt.Println("tail patterns: too many candidates to enumerate")
		}
		for _, g := range groups {
			fmt.Printf("tail group %v:\n", indexNames(in, g.Set))
			for _, p := range g.Patterns {
				mark := " "
				if p.Champion {
					mark = "*"
				}
				fmt.Printf("  %s %-60v %10.1f\n", mark, indexNames(in, p.Perm), p.Objective)
			}
		}
	}
	// Constraint summary: how many of the n(n-1)/2 index pairs have a
	// decided relative order (every decided pair halves the feasible
	// permutation count on average).
	ordered := 0
	for i := 0; i < c.N; i++ {
		ordered += cs.Successors(i).Count()
	}
	pairs := c.N * (c.N - 1) / 2
	var logFact float64
	for i := 2; i <= c.N; i++ {
		logFact += math.Log2(float64(i))
	}
	fmt.Printf("ordered pairs: %d of %d (%.1f%%); unconstrained space %d! = 2^%.1f\n",
		ordered, pairs, 100*float64(ordered)/float64(pairs), c.N, logFact)
}

func indexNames(in *model.Instance, ids []int) []string {
	out := make([]string, len(ids))
	for k, i := range ids {
		out[k] = in.Indexes[i].Name
	}
	return out
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "iddinspect: %v\n", err)
	os.Exit(1)
}
