// Command iddload is an open-loop load generator for iddserver: it
// fires a Poisson stream of mixed-size solve requests across a set of
// tenants and reports solves/sec, error rate, and p50/p99 latency per
// size class — the serving-side counterpart of iddbench.
//
// Arrivals are open-loop: each request is dispatched at its scheduled
// instant regardless of how many are still outstanding, so a slow
// server shows up as latency (and eventually 429s), never as a
// politely reduced offered load. The schedule — arrival times, sizes,
// tenants, instance seeds — is derived deterministically from -seed, so
// two runs offer byte-identical workloads.
//
// Modes:
//
//	iddload -target http://host:8080      drive a live server or cluster
//	                                      node (-addr is an alias)
//	iddload                               serve in-process (no network)
//	iddload -compare-routing              in-process, run the identical
//	                                      schedule twice: fast-path
//	                                      routing on, then disabled —
//	                                      the BENCH_serve.json protocol
//	iddload -compare-cluster              in-process, run the identical
//	                                      schedule against one node and
//	                                      then an N-node cluster
//	                                      (round-robin submission) — the
//	                                      BENCH_serve.json "cluster"
//	                                      section protocol
//
// When -target points at one member of a cluster, that node routes each
// request to its ring owner itself; pass any member's URL.
//
// The -json report stamps cpus/gomaxprocs so checked-in numbers stay
// honest across runners; see scripts/bench.sh --section serve and
// --section cluster. A cluster on a single shared CPU measures ~1x
// throughput by construction (every node contends for the same core);
// rerun on real multi-machine or multi-core hardware for the real
// curve.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/evolving-olap/idd/internal/cluster"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/service"
)

type arrival struct {
	at     time.Duration // offset from run start
	class  string        // "small" | "medium"
	tenant string
	in     *model.Instance
}

// schedule generates the deterministic open-loop workload: exponential
// inter-arrivals at -rate, size class by -small-frac, tenant uniform,
// one freshly generated instance per request (distinct seeds, so the
// solution cache cannot trivialize the run).
func schedule(seed int64, rate float64, duration time.Duration, smallFrac float64, tenants int) []arrival {
	rng := rand.New(rand.NewSource(seed))
	var out []arrival
	var t float64
	for i := 0; ; i++ {
		t += rng.ExpFloat64() / rate
		at := time.Duration(t * float64(time.Second))
		if at >= duration {
			return out
		}
		class, n := "small", 5+rng.Intn(8) // 5..12: inside the fast-path window
		if rng.Float64() >= smallFrac {
			class, n = "medium", 14+rng.Intn(5) // 14..18: always a portfolio race
		}
		cfg := randgen.DefaultConfig()
		cfg.Indexes = n
		cfg.Queries = 3 + (3*n)/4
		out = append(out, arrival{
			at:     at,
			class:  class,
			tenant: fmt.Sprintf("tenant-%d", rng.Intn(tenants)),
			in:     randgen.New(rand.New(rand.NewSource(seed<<20+int64(i))), cfg),
		})
	}
}

type sample struct {
	class   string
	latency time.Duration
	routed  bool
	cached  bool
	err     string
}

// classStats is the per-size-class slice of a run report.
type classStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Routed   int     `json:"routed"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

type runReport struct {
	Name         string                `json:"name"`
	Requests     int                   `json:"requests"`
	Errors       int                   `json:"errors"`
	ErrorRate    float64               `json:"error_rate"`
	SolvesPerSec float64               `json:"solves_per_sec"`
	P50Ms        float64               `json:"p50_ms"`
	P99Ms        float64               `json:"p99_ms"`
	Routed       int                   `json:"routed"`
	CacheHits    int                   `json:"cache_hits"`
	WallS        float64               `json:"wall_s"`
	Classes      map[string]classStats `json:"classes"`
	SampleErrors []string              `json:"sample_errors,omitempty"`
}

type report struct {
	GeneratedBy string      `json:"generated_by"`
	CPUs        int         `json:"cpus"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Rate        float64     `json:"rate_per_sec"`
	DurationS   float64     `json:"duration_s"`
	Tenants     int         `json:"tenants"`
	SmallFrac   float64     `json:"small_frac"`
	Budget      string      `json:"budget"`
	Seed        int64       `json:"seed"`
	Runs        []runReport `json:"runs"`
	// Comparison is present for -compare-routing runs: the small-class
	// fast-path win over portfolio-only routing, same schedule, same
	// process, same hardware.
	Comparison *comparison `json:"comparison,omitempty"`
	// Cluster is present for -compare-cluster runs: the same schedule
	// against a single node and then an N-node cluster, same process,
	// same hardware.
	Cluster *clusterComparison `json:"cluster,omitempty"`
}

type comparison struct {
	SmallP99RatioPortfolioOverFastpath float64 `json:"small_p99_ratio_portfolio_over_fastpath"`
	SmallP50RatioPortfolioOverFastpath float64 `json:"small_p50_ratio_portfolio_over_fastpath"`
	SolvesPerSecFastpath               float64 `json:"solves_per_sec_fastpath"`
	SolvesPerSecPortfolioOnly          float64 `json:"solves_per_sec_portfolio_only"`
}

type clusterComparison struct {
	Nodes                            int     `json:"nodes"`
	SolvesPerSecSingleNode           float64 `json:"solves_per_sec_single_node"`
	SolvesPerSecCluster              float64 `json:"solves_per_sec_cluster"`
	ThroughputRatioClusterOverSingle float64 `json:"throughput_ratio_cluster_over_single"`
	Forwards                         int64   `json:"forwards"`
	RemoteSteals                     int64   `json:"remote_steals"`
	ResultsApplied                   int64   `json:"results_applied"`
	// Note qualifies the ratio: N nodes sharing one CPU measure ~1x by
	// construction; the ratio is meaningful only when each node has its
	// own cores.
	Note string `json:"note,omitempty"`
}

func percentile(ms []float64, p float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	i := int(math.Ceil(p/100*float64(len(ms)))) - 1
	if i < 0 {
		i = 0
	}
	return ms[i]
}

// drive replays the schedule against the given base URLs (round-robin
// when more than one — the cluster submission pattern), open-loop, and
// folds the responses into a runReport.
func drive(name string, bases []string, arrivals []arrival, budget time.Duration) runReport {
	client := &http.Client{}
	samples := make([]sample, len(arrivals))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range arrivals {
		a := arrivals[i]
		if d := a.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, a arrival) {
			defer wg.Done()
			s := sample{class: a.class}
			body, err := json.Marshal(map[string]any{
				"instance": a.in,
				"budget":   budget.String(),
			})
			if err != nil {
				s.err = err.Error()
				samples[i] = s
				return
			}
			t0 := time.Now()
			req, _ := http.NewRequest("POST", bases[i%len(bases)]+"/solve", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(service.TenantHeader, a.tenant)
			resp, err := client.Do(req)
			if err != nil {
				s.err = err.Error()
				samples[i] = s
				return
			}
			var result service.SolveResult
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			s.latency = time.Since(t0)
			if resp.StatusCode != http.StatusOK {
				s.err = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
				samples[i] = s
				return
			}
			if err := json.Unmarshal(data, &result); err != nil {
				s.err = err.Error()
			} else {
				s.routed = result.Routed
				s.cached = result.CacheHit
			}
			samples[i] = s
		}(i, a)
	}
	wg.Wait()
	wall := time.Since(start)

	r := runReport{Name: name, Requests: len(samples), WallS: wall.Seconds(),
		Classes: map[string]classStats{}}
	var all []float64
	perClass := map[string][]float64{}
	for _, s := range samples {
		cs := r.Classes[s.class]
		cs.Requests++
		if s.err != "" {
			r.Errors++
			cs.Errors++
			if len(r.SampleErrors) < 5 {
				r.SampleErrors = append(r.SampleErrors, s.err)
			}
			r.Classes[s.class] = cs
			continue
		}
		ms := float64(s.latency) / float64(time.Millisecond)
		all = append(all, ms)
		perClass[s.class] = append(perClass[s.class], ms)
		if s.routed {
			r.Routed++
			cs.Routed++
		}
		if s.cached {
			r.CacheHits++
		}
		r.Classes[s.class] = cs
	}
	sort.Float64s(all)
	r.P50Ms = percentile(all, 50)
	r.P99Ms = percentile(all, 99)
	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
	}
	if wall > 0 {
		r.SolvesPerSec = float64(len(all)) / wall.Seconds()
	}
	for class, ms := range perClass {
		sort.Float64s(ms)
		cs := r.Classes[class]
		cs.P50Ms = percentile(ms, 50)
		cs.P99Ms = percentile(ms, 99)
		r.Classes[class] = cs
	}
	return r
}

// inprocess starts a loopback iddserver with the given fast-path
// setting and returns its base URL plus a shutdown func.
func inprocess(workers, queue, fastpathMaxN int, budget time.Duration) (string, func()) {
	srv := service.New(service.Config{
		Workers:       workers,
		QueueCap:      queue,
		DefaultBudget: budget,
		MaxBudget:     2 * budget,
		FastPathMaxN:  fastpathMaxN,
	})
	ts := httptest.NewServer(srv.Handler())
	return ts.URL, func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
}

// inprocessCluster starts k loopback cluster nodes peered with each
// other (listeners bound first so every node knows the full membership
// up front) and returns their base URLs, the nodes, and a shutdown
// func. It blocks until gossip reports every peer up on every node.
func inprocessCluster(k, workers, queue int, budget time.Duration) ([]string, []*cluster.Node, func()) {
	listeners := make([]net.Listener, k)
	urls := make([]string, k)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("iddload: cluster listener: %v", err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*cluster.Node, k)
	srvs := make([]*http.Server, k)
	for i := range nodes {
		node, err := cluster.New(cluster.Config{
			Self:           urls[i],
			Peers:          urls,
			GossipInterval: 100 * time.Millisecond,
			StealInterval:  25 * time.Millisecond,
		}, service.Config{
			Workers:       workers,
			QueueCap:      queue,
			DefaultBudget: budget,
			MaxBudget:     2 * budget,
		})
		if err != nil {
			log.Fatalf("iddload: cluster node %d: %v", i, err)
		}
		nodes[i] = node
		srvs[i] = &http.Server{Handler: node.Handler()}
		go srvs[i].Serve(listeners[i])
		node.Start()
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for i := range nodes {
			srvs[i].Close()
			nodes[i].Close()
			nodes[i].Server().Shutdown(ctx)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		converged := true
		for _, n := range nodes {
			for _, p := range n.Snapshot().Peers {
				if p.State != "up" {
					converged = false
				}
			}
		}
		if converged {
			return urls, nodes, stop
		}
		if time.Now().After(deadline) {
			log.Fatal("iddload: cluster gossip did not converge within 10s")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of a live iddserver (empty = serve in-process)")
		target      = flag.String("target", "", "base URL of a live iddserver or cluster node (alias of -addr)")
		workers     = flag.Int("workers", 0, "in-process server workers (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 1024, "in-process server queue capacity")
		duration    = flag.Duration("duration", 10*time.Second, "arrival window")
		rate        = flag.Float64("rate", 40, "mean arrivals per second (Poisson)")
		tenants     = flag.Int("tenants", 4, "distinct tenant ids in the mix")
		smallFrac   = flag.Float64("small-frac", 0.85, "fraction of arrivals in the small class (5-12 indexes); the rest are medium (14-18)")
		budget      = flag.Duration("budget", 300*time.Millisecond, "per-solve budget")
		seed        = flag.Int64("seed", 1, "workload seed (schedule + instances)")
		compare     = flag.Bool("compare-routing", false, "in-process only: run the identical schedule twice, fast-path on then disabled")
		compareClus = flag.Bool("compare-cluster", false, "in-process only: run the identical schedule against one node, then an N-node cluster")
		clusterN    = flag.Int("cluster-nodes", 3, "cluster size for -compare-cluster")
		jsonOut     = flag.String("json", "", "write the full report to this file ('-' = stdout)")
		maxErrRate  = flag.Float64("max-error-rate", -1, "exit nonzero if any run's error rate exceeds this (negative = never)")
	)
	flag.Parse()

	if *target != "" {
		if *addr != "" && *addr != *target {
			log.Fatal("iddload: -addr and -target are aliases; pass one")
		}
		*addr = *target
	}
	if *compare && *addr != "" {
		log.Fatal("iddload: -compare-routing serves in-process; it cannot toggle routing on a remote server (drop -addr/-target)")
	}
	if *compareClus && *addr != "" {
		log.Fatal("iddload: -compare-cluster serves in-process; to drive a live cluster, pass -target without it")
	}
	if *compareClus && *compare {
		log.Fatal("iddload: pick one of -compare-routing / -compare-cluster")
	}
	if *compareClus && *clusterN < 2 {
		log.Fatal("iddload: -cluster-nodes must be at least 2")
	}

	arrivals := schedule(*seed, *rate, *duration, *smallFrac, *tenants)
	log.Printf("iddload: %d arrivals over %v (%.0f/s offered, %d tenants, %.0f%% small)",
		len(arrivals), *duration, *rate, *tenants, *smallFrac*100)

	rep := report{
		GeneratedBy: "cmd/iddload",
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Rate:        *rate,
		DurationS:   duration.Seconds(),
		Tenants:     *tenants,
		SmallFrac:   *smallFrac,
		Budget:      budget.String(),
		Seed:        *seed,
	}

	logRun := func(r runReport) {
		log.Printf("iddload: %-15s %5d ok %3d err  %7.1f solves/s  p50 %7.1fms  p99 %7.1fms  routed %d",
			r.Name, r.Requests-r.Errors, r.Errors, r.SolvesPerSec, r.P50Ms, r.P99Ms, r.Routed)
		for _, class := range []string{"small", "medium"} {
			if cs, ok := r.Classes[class]; ok {
				log.Printf("iddload:   %-8s %5d req %3d err  p50 %7.1fms  p99 %7.1fms  routed %d",
					class, cs.Requests, cs.Errors, cs.P50Ms, cs.P99Ms, cs.Routed)
			}
		}
	}

	run := func(name string, fastpathMaxN int) runReport {
		base := *addr
		if base == "" {
			var stop func()
			base, stop = inprocess(*workers, *queue, fastpathMaxN, *budget)
			defer stop()
		}
		log.Printf("iddload: run %q against %s", name, base)
		r := drive(name, []string{base}, arrivals, *budget)
		logRun(r)
		return r
	}

	if *compareClus {
		base, stopSingle := inprocess(*workers, *queue, 0, *budget)
		log.Printf("iddload: run \"single_node\" against %s", base)
		single := drive("single_node", []string{base}, arrivals, *budget)
		stopSingle()
		logRun(single)

		urls, nodes, stopCluster := inprocessCluster(*clusterN, *workers, *queue, *budget)
		log.Printf("iddload: run \"cluster_%dnode\" round-robin across %v", *clusterN, urls)
		clus := drive(fmt.Sprintf("cluster_%dnode", *clusterN), urls, arrivals, *budget)
		cc := &clusterComparison{
			Nodes:                  *clusterN,
			SolvesPerSecSingleNode: single.SolvesPerSec,
			SolvesPerSecCluster:    clus.SolvesPerSec,
		}
		for _, n := range nodes {
			snap := n.Snapshot()
			cc.Forwards += snap.Forwards
			cc.RemoteSteals += snap.RemoteSteals
			cc.ResultsApplied += snap.ResultsApplied
		}
		stopCluster()
		logRun(clus)
		if single.SolvesPerSec > 0 {
			cc.ThroughputRatioClusterOverSingle = clus.SolvesPerSec / single.SolvesPerSec
		}
		if runtime.NumCPU() < 2**clusterN {
			cc.Note = fmt.Sprintf("%d nodes share %d CPU(s) in one process: the ratio measures routing overhead, not scale-out; rerun across real machines for the throughput curve", *clusterN, runtime.NumCPU())
		}
		rep.Runs = []runReport{single, clus}
		rep.Cluster = cc
		log.Printf("iddload: cluster/single throughput = %.2fx (forwards %d, remote steals %d, results replicated %d)",
			cc.ThroughputRatioClusterOverSingle, cc.Forwards, cc.RemoteSteals, cc.ResultsApplied)
	} else if *compare {
		fast := run("fastpath", 0)        // 0 = service default threshold
		slow := run("portfolio_only", -1) // negative disables routing
		rep.Runs = []runReport{fast, slow}
		cmp := &comparison{
			SolvesPerSecFastpath:      fast.SolvesPerSec,
			SolvesPerSecPortfolioOnly: slow.SolvesPerSec,
		}
		fs, ss := fast.Classes["small"], slow.Classes["small"]
		if fs.P99Ms > 0 {
			cmp.SmallP99RatioPortfolioOverFastpath = ss.P99Ms / fs.P99Ms
		}
		if fs.P50Ms > 0 {
			cmp.SmallP50RatioPortfolioOverFastpath = ss.P50Ms / fs.P50Ms
		}
		rep.Comparison = cmp
		log.Printf("iddload: small-class p99 portfolio/fastpath = %.2fx, p50 = %.2fx",
			cmp.SmallP99RatioPortfolioOverFastpath, cmp.SmallP50RatioPortfolioOverFastpath)
	} else {
		rep.Runs = []runReport{run("load", 0)}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		} else {
			log.Printf("iddload: wrote %s", *jsonOut)
		}
	}

	if *maxErrRate >= 0 {
		for _, r := range rep.Runs {
			if r.ErrorRate > *maxErrRate {
				log.Printf("iddload: run %q error rate %.3f exceeds -max-error-rate %.3f", r.Name, r.ErrorRate, *maxErrRate)
				for _, e := range r.SampleErrors {
					log.Printf("iddload:   sample error: %s", e)
				}
				os.Exit(2)
			}
		}
	}
}
