// Command iddload is an open-loop load generator for iddserver: it
// fires a Poisson stream of mixed-size solve requests across a set of
// tenants and reports solves/sec, error rate, and p50/p99 latency per
// size class — the serving-side counterpart of iddbench.
//
// Arrivals are open-loop: each request is dispatched at its scheduled
// instant regardless of how many are still outstanding, so a slow
// server shows up as latency (and eventually 429s), never as a
// politely reduced offered load. The schedule — arrival times, sizes,
// tenants, instance seeds — is derived deterministically from -seed, so
// two runs offer byte-identical workloads.
//
// Modes:
//
//	iddload -addr http://host:8080        drive a live server
//	iddload                               serve in-process (no network)
//	iddload -compare-routing              in-process, run the identical
//	                                      schedule twice: fast-path
//	                                      routing on, then disabled —
//	                                      the BENCH_serve.json protocol
//
// The -json report stamps cpus/gomaxprocs so checked-in numbers stay
// honest across runners; see scripts/bench.sh --section serve.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/service"
)

type arrival struct {
	at     time.Duration // offset from run start
	class  string        // "small" | "medium"
	tenant string
	in     *model.Instance
}

// schedule generates the deterministic open-loop workload: exponential
// inter-arrivals at -rate, size class by -small-frac, tenant uniform,
// one freshly generated instance per request (distinct seeds, so the
// solution cache cannot trivialize the run).
func schedule(seed int64, rate float64, duration time.Duration, smallFrac float64, tenants int) []arrival {
	rng := rand.New(rand.NewSource(seed))
	var out []arrival
	var t float64
	for i := 0; ; i++ {
		t += rng.ExpFloat64() / rate
		at := time.Duration(t * float64(time.Second))
		if at >= duration {
			return out
		}
		class, n := "small", 5+rng.Intn(8) // 5..12: inside the fast-path window
		if rng.Float64() >= smallFrac {
			class, n = "medium", 14+rng.Intn(5) // 14..18: always a portfolio race
		}
		cfg := randgen.DefaultConfig()
		cfg.Indexes = n
		cfg.Queries = 3 + (3*n)/4
		out = append(out, arrival{
			at:     at,
			class:  class,
			tenant: fmt.Sprintf("tenant-%d", rng.Intn(tenants)),
			in:     randgen.New(rand.New(rand.NewSource(seed<<20+int64(i))), cfg),
		})
	}
}

type sample struct {
	class   string
	latency time.Duration
	routed  bool
	cached  bool
	err     string
}

// classStats is the per-size-class slice of a run report.
type classStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Routed   int     `json:"routed"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

type runReport struct {
	Name         string                `json:"name"`
	Requests     int                   `json:"requests"`
	Errors       int                   `json:"errors"`
	ErrorRate    float64               `json:"error_rate"`
	SolvesPerSec float64               `json:"solves_per_sec"`
	P50Ms        float64               `json:"p50_ms"`
	P99Ms        float64               `json:"p99_ms"`
	Routed       int                   `json:"routed"`
	CacheHits    int                   `json:"cache_hits"`
	WallS        float64               `json:"wall_s"`
	Classes      map[string]classStats `json:"classes"`
	SampleErrors []string              `json:"sample_errors,omitempty"`
}

type report struct {
	GeneratedBy string      `json:"generated_by"`
	CPUs        int         `json:"cpus"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Rate        float64     `json:"rate_per_sec"`
	DurationS   float64     `json:"duration_s"`
	Tenants     int         `json:"tenants"`
	SmallFrac   float64     `json:"small_frac"`
	Budget      string      `json:"budget"`
	Seed        int64       `json:"seed"`
	Runs        []runReport `json:"runs"`
	// Comparison is present for -compare-routing runs: the small-class
	// fast-path win over portfolio-only routing, same schedule, same
	// process, same hardware.
	Comparison *comparison `json:"comparison,omitempty"`
}

type comparison struct {
	SmallP99RatioPortfolioOverFastpath float64 `json:"small_p99_ratio_portfolio_over_fastpath"`
	SmallP50RatioPortfolioOverFastpath float64 `json:"small_p50_ratio_portfolio_over_fastpath"`
	SolvesPerSecFastpath               float64 `json:"solves_per_sec_fastpath"`
	SolvesPerSecPortfolioOnly          float64 `json:"solves_per_sec_portfolio_only"`
}

func percentile(ms []float64, p float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	i := int(math.Ceil(p/100*float64(len(ms)))) - 1
	if i < 0 {
		i = 0
	}
	return ms[i]
}

// drive replays the schedule against base, open-loop, and folds the
// responses into a runReport.
func drive(name, base string, arrivals []arrival, budget time.Duration) runReport {
	client := &http.Client{}
	samples := make([]sample, len(arrivals))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range arrivals {
		a := arrivals[i]
		if d := a.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, a arrival) {
			defer wg.Done()
			s := sample{class: a.class}
			body, err := json.Marshal(map[string]any{
				"instance": a.in,
				"budget":   budget.String(),
			})
			if err != nil {
				s.err = err.Error()
				samples[i] = s
				return
			}
			t0 := time.Now()
			req, _ := http.NewRequest("POST", base+"/solve", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(service.TenantHeader, a.tenant)
			resp, err := client.Do(req)
			if err != nil {
				s.err = err.Error()
				samples[i] = s
				return
			}
			var result service.SolveResult
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			s.latency = time.Since(t0)
			if resp.StatusCode != http.StatusOK {
				s.err = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
				samples[i] = s
				return
			}
			if err := json.Unmarshal(data, &result); err != nil {
				s.err = err.Error()
			} else {
				s.routed = result.Routed
				s.cached = result.CacheHit
			}
			samples[i] = s
		}(i, a)
	}
	wg.Wait()
	wall := time.Since(start)

	r := runReport{Name: name, Requests: len(samples), WallS: wall.Seconds(),
		Classes: map[string]classStats{}}
	var all []float64
	perClass := map[string][]float64{}
	for _, s := range samples {
		cs := r.Classes[s.class]
		cs.Requests++
		if s.err != "" {
			r.Errors++
			cs.Errors++
			if len(r.SampleErrors) < 5 {
				r.SampleErrors = append(r.SampleErrors, s.err)
			}
			r.Classes[s.class] = cs
			continue
		}
		ms := float64(s.latency) / float64(time.Millisecond)
		all = append(all, ms)
		perClass[s.class] = append(perClass[s.class], ms)
		if s.routed {
			r.Routed++
			cs.Routed++
		}
		if s.cached {
			r.CacheHits++
		}
		r.Classes[s.class] = cs
	}
	sort.Float64s(all)
	r.P50Ms = percentile(all, 50)
	r.P99Ms = percentile(all, 99)
	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
	}
	if wall > 0 {
		r.SolvesPerSec = float64(len(all)) / wall.Seconds()
	}
	for class, ms := range perClass {
		sort.Float64s(ms)
		cs := r.Classes[class]
		cs.P50Ms = percentile(ms, 50)
		cs.P99Ms = percentile(ms, 99)
		r.Classes[class] = cs
	}
	return r
}

// inprocess starts a loopback iddserver with the given fast-path
// setting and returns its base URL plus a shutdown func.
func inprocess(workers, queue, fastpathMaxN int, budget time.Duration) (string, func()) {
	srv := service.New(service.Config{
		Workers:       workers,
		QueueCap:      queue,
		DefaultBudget: budget,
		MaxBudget:     2 * budget,
		FastPathMaxN:  fastpathMaxN,
	})
	ts := httptest.NewServer(srv.Handler())
	return ts.URL, func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
}

func main() {
	var (
		addr       = flag.String("addr", "", "base URL of a live iddserver (empty = serve in-process)")
		workers    = flag.Int("workers", 0, "in-process server workers (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 1024, "in-process server queue capacity")
		duration   = flag.Duration("duration", 10*time.Second, "arrival window")
		rate       = flag.Float64("rate", 40, "mean arrivals per second (Poisson)")
		tenants    = flag.Int("tenants", 4, "distinct tenant ids in the mix")
		smallFrac  = flag.Float64("small-frac", 0.85, "fraction of arrivals in the small class (5-12 indexes); the rest are medium (14-18)")
		budget     = flag.Duration("budget", 300*time.Millisecond, "per-solve budget")
		seed       = flag.Int64("seed", 1, "workload seed (schedule + instances)")
		compare    = flag.Bool("compare-routing", false, "in-process only: run the identical schedule twice, fast-path on then disabled")
		jsonOut    = flag.String("json", "", "write the full report to this file ('-' = stdout)")
		maxErrRate = flag.Float64("max-error-rate", -1, "exit nonzero if any run's error rate exceeds this (negative = never)")
	)
	flag.Parse()

	if *compare && *addr != "" {
		log.Fatal("iddload: -compare-routing serves in-process; it cannot toggle routing on a remote server (drop -addr)")
	}

	arrivals := schedule(*seed, *rate, *duration, *smallFrac, *tenants)
	log.Printf("iddload: %d arrivals over %v (%.0f/s offered, %d tenants, %.0f%% small)",
		len(arrivals), *duration, *rate, *tenants, *smallFrac*100)

	rep := report{
		GeneratedBy: "cmd/iddload",
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Rate:        *rate,
		DurationS:   duration.Seconds(),
		Tenants:     *tenants,
		SmallFrac:   *smallFrac,
		Budget:      budget.String(),
		Seed:        *seed,
	}

	run := func(name string, fastpathMaxN int) runReport {
		base := *addr
		if base == "" {
			var stop func()
			base, stop = inprocess(*workers, *queue, fastpathMaxN, *budget)
			defer stop()
		}
		log.Printf("iddload: run %q against %s", name, base)
		r := drive(name, base, arrivals, *budget)
		log.Printf("iddload: %-15s %5d ok %3d err  %7.1f solves/s  p50 %7.1fms  p99 %7.1fms  routed %d",
			name, r.Requests-r.Errors, r.Errors, r.SolvesPerSec, r.P50Ms, r.P99Ms, r.Routed)
		for _, class := range []string{"small", "medium"} {
			if cs, ok := r.Classes[class]; ok {
				log.Printf("iddload:   %-8s %5d req %3d err  p50 %7.1fms  p99 %7.1fms  routed %d",
					class, cs.Requests, cs.Errors, cs.P50Ms, cs.P99Ms, cs.Routed)
			}
		}
		return r
	}

	if *compare {
		fast := run("fastpath", 0)        // 0 = service default threshold
		slow := run("portfolio_only", -1) // negative disables routing
		rep.Runs = []runReport{fast, slow}
		cmp := &comparison{
			SolvesPerSecFastpath:      fast.SolvesPerSec,
			SolvesPerSecPortfolioOnly: slow.SolvesPerSec,
		}
		fs, ss := fast.Classes["small"], slow.Classes["small"]
		if fs.P99Ms > 0 {
			cmp.SmallP99RatioPortfolioOverFastpath = ss.P99Ms / fs.P99Ms
		}
		if fs.P50Ms > 0 {
			cmp.SmallP50RatioPortfolioOverFastpath = ss.P50Ms / fs.P50Ms
		}
		rep.Comparison = cmp
		log.Printf("iddload: small-class p99 portfolio/fastpath = %.2fx, p50 = %.2fx",
			cmp.SmallP99RatioPortfolioOverFastpath, cmp.SmallP50RatioPortfolioOverFastpath)
	} else {
		rep.Runs = []runReport{run("load", 0)}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		} else {
			log.Printf("iddload: wrote %s", *jsonOut)
		}
	}

	if *maxErrRate >= 0 {
		for _, r := range rep.Runs {
			if r.ErrorRate > *maxErrRate {
				log.Printf("iddload: run %q error rate %.3f exceeds -max-error-rate %.3f", r.Name, r.ErrorRate, *maxErrRate)
				for _, e := range r.SampleErrors {
					log.Printf("iddload:   sample error: %s", e)
				}
				os.Exit(2)
			}
		}
	}
}
