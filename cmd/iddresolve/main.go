// Command iddresolve benchmarks online re-solving under workload drift:
// the scenario the session API serves. A seeded random workload drifts
// for -rounds rounds (alternating weight-only rescaling and structural
// index churn); each round is solved twice with the same step-limited
// VNS — cold from the greedy order, and warm from the previous round's
// best order repaired against the drift (evolve.RepairOrder, the same
// repair a session delta applies). The report records, per round, the
// search steps each variant needed to reach the cold run's final
// objective — the paper's motivating claim is that a repaired prior
// plan is a far better starting point than re-deriving one from
// scratch, and on weight-only drift the warm seed usually IS the
// answer (0 steps).
//
// Usage:
//
//	iddresolve -rounds 8 -indexes 14 -steps 12000 -json BENCH_resolve.json
//
// With -json "" the report goes to stdout. scripts/bench.sh --section
// resolve folds the report into BENCH_eval.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/evolving-olap/idd/internal/evolve"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
)

type roundReport struct {
	Round int    `json:"round"`
	Drift string `json:"drift"` // initial | weights | structural
	N     int    `json:"n"`
	// Target is the cold run's final objective; both step counts below
	// measure steps to first reach it (within 1e-9 relative).
	Target      float64 `json:"target"`
	ColdSeedObj float64 `json:"cold_seed_obj"`
	ColdSteps   int64   `json:"cold_steps_to_target"`
	ColdWallMS  float64 `json:"cold_wall_ms"`
	WarmSeedObj float64 `json:"warm_seed_obj,omitempty"`
	// WarmSteps is -1 when the warm run never reached the target within
	// the step limit (it then still reports its own final objective).
	WarmSteps   int64   `json:"warm_steps_to_target"`
	WarmWallMS  float64 `json:"warm_wall_ms,omitempty"`
	WarmFinal   float64 `json:"warm_final_obj,omitempty"`
	WarmReached bool    `json:"warm_reached"`
}

type report struct {
	GeneratedBy string        `json:"generated_by"`
	Seed        int64         `json:"seed"`
	Indexes     int           `json:"indexes"`
	Queries     int           `json:"queries"`
	Rounds      int           `json:"rounds"`
	StepLimit   int64         `json:"step_limit"`
	CPUs        int           `json:"cpus"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Detail      []roundReport `json:"rounds_detail"`
	Summary     struct {
		WeightRounds              int  `json:"weight_rounds"`
		WeightRoundsWarmFewer     int  `json:"weight_rounds_warm_fewer_steps"`
		StructuralRounds          int  `json:"structural_rounds"`
		StructuralRoundsWarmFewer int  `json:"structural_rounds_warm_fewer_steps"`
		WarmNeverWorseThanSeed    bool `json:"warm_never_worse_than_seed"`
	} `json:"summary"`
}

func main() {
	var (
		rounds  = flag.Int("rounds", 8, "drift rounds after the initial solve")
		indexes = flag.Int("indexes", 14, "indexes in the base workload")
		queries = flag.Int("queries", 12, "queries in the base workload")
		seed    = flag.Int64("seed", 1, "random seed for workload and drift")
		steps   = flag.Int64("steps", 12000, "VNS step limit per solve")
		jsonOut = flag.String("json", "", "write the report to this file (empty = stdout)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = *indexes
	cfg.Queries = *queries
	inst := randgen.New(rng, cfg)

	rep := report{
		GeneratedBy: "cmd/iddresolve",
		Seed:        *seed, Indexes: *indexes, Queries: *queries,
		Rounds: *rounds, StepLimit: *steps,
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	rep.Summary.WarmNeverWorseThanSeed = true

	var prior []string // previous round's best plan, by index name
	addSerial := 0
	for r := 0; r <= *rounds; r++ {
		drift := "initial"
		if r > 0 {
			if r%2 == 1 {
				drift = "weights"
				driftWeights(rng, inst)
			} else {
				drift = "structural"
				addSerial++
				driftStructure(rng, inst, addSerial)
			}
		}
		if err := inst.Validate(); err != nil {
			fail(fmt.Errorf("round %d: drifted instance invalid: %w", r, err))
		}
		c, err := model.Compile(inst)
		if err != nil {
			fail(err)
		}
		cs := sched.PrecedenceSet(inst)

		// Cold: greedy seed, full step limit. Its final objective is the
		// round's target.
		coldSeed := greedy.Solve(c, cs)
		coldStart := time.Now()
		cold := local.VNS(c, cs, local.Options{
			Initial: coldSeed, MaxSteps: *steps,
			Rng: rand.New(rand.NewSource(*seed + int64(r)*1000)),
		})
		coldWall := time.Since(coldStart)
		target := cold.Objective
		rr := roundReport{
			Round: r, Drift: drift, N: inst.N(), Target: target,
			ColdSeedObj: c.Objective(coldSeed),
			ColdSteps:   stepsToTarget(c.Objective(coldSeed), cold.Traj, target),
			ColdWallMS:  float64(coldWall.Microseconds()) / 1000,
		}

		bestNames := namesOf(inst, cold.Order)
		if r > 0 {
			// Warm: the previous plan repaired against the drift — exactly
			// what a session delta seeds its re-solve with.
			warmNames, err := evolve.RepairOrder(inst, prior)
			if err != nil {
				fail(fmt.Errorf("round %d: repair: %w", r, err))
			}
			warmSeed := orderOf(inst, warmNames)
			warmStart := time.Now()
			warm := local.VNS(c, cs, local.Options{
				Initial: warmSeed, MaxSteps: *steps,
				Rng: rand.New(rand.NewSource(*seed + int64(r)*1000)),
			})
			warmWall := time.Since(warmStart)
			rr.WarmSeedObj = c.Objective(warmSeed)
			rr.WarmSteps = stepsToTarget(rr.WarmSeedObj, warm.Traj, target)
			rr.WarmWallMS = float64(warmWall.Microseconds()) / 1000
			rr.WarmFinal = warm.Objective
			rr.WarmReached = rr.WarmSteps >= 0
			if warm.Objective > rr.WarmSeedObj+1e-9 {
				rep.Summary.WarmNeverWorseThanSeed = false
			}
			if warm.Objective < target {
				// The warm run ended strictly better; its plan seeds the
				// next round.
				bestNames = namesOf(inst, warm.Order)
			}
			if drift == "weights" {
				rep.Summary.WeightRounds++
				if rr.WarmReached && rr.WarmSteps < rr.ColdSteps {
					rep.Summary.WeightRoundsWarmFewer++
				}
			} else {
				rep.Summary.StructuralRounds++
				if rr.WarmReached && rr.WarmSteps < rr.ColdSteps {
					rep.Summary.StructuralRoundsWarmFewer++
				}
			}
		}
		prior = bestNames
		rep.Detail = append(rep.Detail, rr)
		fmt.Fprintf(os.Stderr, "round %d (%s, n=%d): target=%.2f cold(seed=%.2f steps=%d) warm(seed=%.2f steps=%d)\n",
			r, drift, rr.N, rr.Target, rr.ColdSeedObj, rr.ColdSteps, rr.WarmSeedObj, rr.WarmSteps)
	}

	out := os.Stdout
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
	if *jsonOut != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}

// stepsToTarget returns the step count at which the trajectory first
// reached the target (0 when the seed itself already had), -1 if never.
func stepsToTarget(seedObj float64, traj local.Trajectory, target float64) int64 {
	eps := 1e-9 * math.Max(1, math.Abs(target))
	if seedObj <= target+eps {
		return 0
	}
	for _, p := range traj {
		if p.Objective <= target+eps {
			return p.Steps
		}
	}
	return -1
}

// driftWeights rescales about a third of the query weights — float-only
// drift: the structural hash (and any deployed plan) stays valid.
func driftWeights(rng *rand.Rand, in *model.Instance) {
	for q := range in.Queries {
		if rng.Float64() > 1.0/3 {
			continue
		}
		w := in.Queries[q].Weight
		if w == 0 {
			w = 1
		}
		in.Queries[q].Weight = w * (0.7 + 0.6*rng.Float64())
	}
}

// driftStructure drops one random index (with everything referencing
// it) and adds a fresh one with a plan for a random query.
func driftStructure(rng *rand.Rand, in *model.Instance, serial int) {
	drop := rng.Intn(in.N())
	remap := make([]int, in.N())
	kept := in.Indexes[:0:0]
	for i, ix := range in.Indexes {
		if i == drop {
			remap[i] = -1
			continue
		}
		remap[i] = len(kept)
		kept = append(kept, ix)
	}
	in.Indexes = kept
	plans := in.Plans[:0:0]
	for _, p := range in.Plans {
		ok := true
		for k, ix := range p.Indexes {
			if remap[ix] < 0 {
				ok = false
				break
			}
			p.Indexes[k] = remap[ix]
		}
		if ok {
			plans = append(plans, p)
		}
	}
	in.Plans = plans
	builds := in.BuildInteractions[:0:0]
	for _, b := range in.BuildInteractions {
		if remap[b.Target] < 0 || remap[b.Helper] < 0 {
			continue
		}
		b.Target, b.Helper = remap[b.Target], remap[b.Helper]
		builds = append(builds, b)
	}
	in.BuildInteractions = builds
	precs := in.Precedences[:0:0]
	for _, pr := range in.Precedences {
		if remap[pr.Before] < 0 || remap[pr.After] < 0 {
			continue
		}
		pr.Before, pr.After = remap[pr.Before], remap[pr.After]
		precs = append(precs, pr)
	}
	in.Precedences = precs

	ix := len(in.Indexes)
	in.Indexes = append(in.Indexes, model.Index{
		Name:       fmt.Sprintf("drift_ix_%d", serial),
		CreateCost: 10 + 110*rng.Float64(),
	})
	q := rng.Intn(len(in.Queries))
	maxSpeedup := in.Queries[q].Runtime * 0.8
	in.Plans = append(in.Plans, model.Plan{
		Query: q, Indexes: []int{ix}, Speedup: maxSpeedup * (0.3 + 0.6*rng.Float64()),
	})
}

func namesOf(in *model.Instance, order []int) []string {
	out := make([]string, len(order))
	for k, ix := range order {
		out[k] = in.Indexes[ix].Name
	}
	return out
}

func orderOf(in *model.Instance, names []string) []int {
	pos := make(map[string]int, in.N())
	for i, ix := range in.Indexes {
		pos[ix.Name] = i
	}
	out := make([]int, len(names))
	for k, name := range names {
		out[k] = pos[name]
	}
	return out
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "iddresolve: %v\n", err)
	os.Exit(2)
}
