// Command iddserver runs the asynchronous index-deployment-ordering
// solve service: an HTTP/JSON frontend over the portfolio solver with a
// bounded worker pool, a canonical-hash solution cache with
// single-flight deduplication, and per-job server-sent-event streams of
// incumbent progress.
//
// Usage:
//
//	iddserver -addr :8080 -workers 8 -queue 128 -budget 2s -max-budget 60s
//	iddserver -workers 2 -param cp.workers=4   # each solve's CP proof uses 4 goroutines
//
// Endpoints:
//
//	POST   /solve            solve synchronously (small instances)
//	POST   /jobs             enqueue an async solve job (202 + job id)
//	GET    /jobs/{id}        job status, result when finished
//	DELETE /jobs/{id}        cancel a queued or running job
//	GET    /jobs/{id}/events server-sent events: incumbent progress
//	GET    /solvers          registered backends + declared param specs
//	GET    /healthz          liveness (503 while draining)
//	GET    /metrics          queue/cache/backend counters (JSON)
//
// Request bodies are either a JSON envelope
// {"instance": {...}, "budget": "2s", "backends": ["cp","vns"],
// "params": {"cp.workers": 4}, ...} or a compact text matrix file with
// the same knobs as URL query parameters
// (?budget=2s&backends=cp,vns&priority=5&seed=1&param=cp.workers=4).
// GET /solvers lists the valid backends and params; -param sets
// server-wide defaults that requests may override per job.
//
// On SIGINT/SIGTERM the server stops accepting work and drains queued
// and running jobs for up to -drain before cancelling what remains.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/evolving-olap/idd/internal/service"
	"github.com/evolving-olap/idd/internal/solver/backend"
)

func main() {
	var rawParams backend.ParamFlag
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		cpWorkers = flag.Int("cp-workers", 0, "deprecated alias of -param cp.workers=N")
		queueCap  = flag.Int("queue", 64, "queued-solve capacity before 429s")
		cacheSize = flag.Int("cache", 256, "solution cache entries")
		budget    = flag.Duration("budget", 2*time.Second, "default per-job solve budget")
		maxBudget = flag.Duration("max-budget", 60*time.Second, "budget ceiling per job")
		maxIdx    = flag.Int("max-indexes", 512, "largest accepted instance")
		maxBody   = flag.Int64("max-body", 8<<20, "request body byte limit")
		retain    = flag.Int("retain", 4096, "finished jobs kept queryable before eviction")
		drain     = flag.Duration("drain", 15*time.Second, "graceful shutdown drain window")
	)
	flag.Var(&rawParams, "param", "server-wide default backend param as key=value (repeatable; see GET /solvers)")
	flag.Parse()

	defaults, err := backend.ParseParams(rawParams)
	if err != nil {
		log.Fatalf("iddserver: %v", err)
	}

	srv := service.New(service.Config{
		Workers:       *workers,
		DefaultParams: defaults,
		CPWorkers:     *cpWorkers, // deprecated alias; -param cp.workers wins

		QueueCap:        *queueCap,
		CacheSize:       *cacheSize,
		DefaultBudget:   *budget,
		MaxBudget:       *maxBudget,
		MaxIndexes:      *maxIdx,
		MaxBodyBytes:    *maxBody,
		MaxFinishedJobs: *retain,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("iddserver: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("iddserver: %v — draining for up to %v", sig, *drain)
	case err := <-errc:
		log.Fatalf("iddserver: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	srv.Shutdown(ctx) // reject new work, finish the queue, cancel on timeout
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("iddserver: http shutdown: %v", err)
	}
	log.Printf("iddserver: drained, bye")
}
