// Command iddserver runs the asynchronous index-deployment-ordering
// solve service: an HTTP/JSON frontend over the portfolio solver with a
// bounded worker pool, a canonical-hash solution cache with
// single-flight deduplication, and per-job server-sent-event streams of
// incumbent progress.
//
// Usage:
//
//	iddserver -addr :8080 -workers 8 -queue 128 -budget 2s -max-budget 60s
//	iddserver -workers 2 -param cp.workers=4   # each solve's CP proof uses 4 goroutines
//
// Endpoints:
//
//	POST   /solve             solve synchronously (small instances)
//	POST   /jobs              enqueue an async solve job (202 + job id)
//	GET    /jobs/{id}         job status, result when finished
//	DELETE /jobs/{id}         cancel a queued or running job
//	GET    /jobs/{id}/events  server-sent events: incumbent progress
//	GET    /jobs/{id}/trace   flight-recorder span timeline of the solve
//	POST   /batch             enqueue N instances as one batch (202 + batch id)
//	GET    /batch/{id}        batch status + per-item results
//	DELETE /batch/{id}        cancel every outstanding batch item
//	GET    /batch/{id}/events server-sent events: per-item completions
//	GET    /batch/{id}/trace  per-item flight-recorder traces
//	POST   /sessions          create a re-solve session (201 + initial plan)
//	GET    /sessions/{id}     session status: plan, revision, last result
//	POST   /sessions/{id}/delta  apply a workload delta, re-solve warm-started
//	GET    /sessions/{id}/events server-sent events: changed plan tails
//	DELETE /sessions/{id}     close the session
//	GET    /solvers           registered backends + declared param specs
//	GET    /healthz           liveness (503 while draining); cluster mode
//	                          adds per-peer membership + health
//	GET    /cluster/health    peer protocol (cluster mode): health gossip
//	POST   /cluster/incumbent peer protocol: LWW incumbent exchange
//	POST   /cluster/result    peer protocol: finished-result replication
//	POST   /cluster/steal     peer protocol: donate an open CP subtree
//	POST   /cluster/complete  peer protocol: settle a donated subtree
//	GET    /metrics           JSON snapshot; Prometheus text format with
//	                          ?format=prometheus or Accept: text/plain
//
// Requests carry a tenant id in the X-Tenant header (or a "tenant"
// field / ?tenant= query knob). Dispatch is deficit round-robin across
// per-tenant queues, so one tenant's flood cannot starve another's
// traffic; -tenant-rate/-tenant-burst add per-tenant admission rate
// limits and -tenant-queue a per-tenant queued-run quota. Small
// instances (≤ -fastpath-max-n indexes) skip the portfolio race and run
// one exact backend straight to a proved optimum.
//
// Sessions make workload drift first-class: POST /sessions solves the
// initial workload and pins its deployment plan; each delta (query
// weight changes, index adds/drops, new plans/precedences, indexes
// marked built) re-solves warm-started from the previous incumbent,
// repaired against the delta, and the session's event stream carries
// only the changed tail of the plan.
//
// Distributed cluster mode: pass every member's URL via -peers (the
// same list on every node) plus this node's own reachable URL via
// -advertise, and the servers form a coordinator-free solve cluster:
//
//	iddserver -addr :8080 -advertise http://10.0.0.1:8080 \
//	    -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
// Any node accepts any request. Solve submissions are routed by
// consistent hash of the canonical instance to their owning node (so
// the solution cache and single-flight dedup keep their hit rates
// cluster-wide), job/batch/session ids are node-prefixed and proxied to
// their home node, finished results and incumbent improvements
// replicate to every peer, and idle nodes steal open CP-proof subtrees
// from busy ones — the optimality certificate stays sound across node
// failures (lost subtrees are re-queued by their owner). /healthz gains
// a cluster section with per-peer health; /metrics gains idd_cluster_*
// counters. -gossip-interval, -steal-interval, -max-helpers and
// -helper-workers tune the peer protocol.
//
// -debug-addr starts a SECOND listener (off by default) exposing only
// net/http/pprof — profiles never share a port with solve traffic, so
// the main address can be exposed while the debug one stays loopback:
//
//	iddserver -addr :8080 -debug-addr 127.0.0.1:6060 &
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//	go tool pprof http://127.0.0.1:6060/debug/pprof/heap
//	curl -s 'http://127.0.0.1:6060/debug/pprof/trace?seconds=3' > trace.out && go tool trace trace.out
//
// Request bodies are either a JSON envelope
// {"instance": {...}, "budget": "2s", "backends": ["cp","vns"],
// "params": {"cp.workers": 4}, ...} or a compact text matrix file with
// the same knobs as URL query parameters
// (?budget=2s&backends=cp,vns&priority=5&seed=1&param=cp.workers=4).
// GET /solvers lists the valid backends and params; -param sets
// server-wide defaults that requests may override per job.
//
// On SIGINT/SIGTERM the server stops accepting work and drains queued
// and running jobs for up to -drain before cancelling what remains.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/evolving-olap/idd/internal/cluster"
	"github.com/evolving-olap/idd/internal/service"
	"github.com/evolving-olap/idd/internal/solver/backend"
)

func main() {
	var rawParams backend.ParamFlag
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		cpWorkers = flag.Int("cp-workers", 0, "deprecated alias of -param cp.workers=N")
		queueCap  = flag.Int("queue", 64, "queued-solve capacity before 429s")
		cacheSize = flag.Int("cache", 256, "solution cache entries")
		budget    = flag.Duration("budget", 2*time.Second, "default per-job solve budget")
		maxBudget = flag.Duration("max-budget", 60*time.Second, "budget ceiling per job")
		maxIdx    = flag.Int("max-indexes", 512, "largest accepted instance")
		maxBody   = flag.Int64("max-body", 8<<20, "request body byte limit")
		retain    = flag.Int("retain", 4096, "finished jobs kept queryable before eviction")
		drain     = flag.Duration("drain", 15*time.Second, "graceful shutdown drain window")
		debugAddr = flag.String("debug-addr", "", "separate net/http/pprof listener (empty = disabled; keep it loopback)")

		peers          = flag.String("peers", "", "comma-separated base URLs of every cluster member (empty = single node)")
		advertise      = flag.String("advertise", "", "this node's reachable base URL (required with -peers)")
		gossipInterval = flag.Duration("gossip-interval", time.Second, "peer health probe cadence")
		stealInterval  = flag.Duration("steal-interval", 100*time.Millisecond, "idle-node remote work-steal cadence")
		maxHelpers     = flag.Int("max-helpers", 1, "concurrently adopted remote subtrees")
		helperWorkers  = flag.Int("helper-workers", 1, "cp workers per adopted remote subtree")

		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant sustained submissions/sec (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant submission burst (0 = 2×rate+1)")
		tenantQueue = flag.Int("tenant-queue", 0, "per-tenant queued-run quota (0 = no per-tenant cap)")
		maxBatch    = flag.Int("max-batch", 64, "instances accepted per POST /batch")
		fastpathN   = flag.Int("fastpath-max-n", 0, "route instances with at most this many indexes straight to an exact backend (0 = default 12, negative = disable)")
	)
	flag.Var(&rawParams, "param", "server-wide default backend param as key=value (repeatable; see GET /solvers)")
	flag.Parse()

	defaults, err := backend.ParseParams(rawParams)
	if err != nil {
		log.Fatalf("iddserver: %v", err)
	}

	svcCfg := service.Config{
		Workers:       *workers,
		DefaultParams: defaults,
		CPWorkers:     *cpWorkers, // deprecated alias; -param cp.workers wins

		QueueCap:        *queueCap,
		CacheSize:       *cacheSize,
		DefaultBudget:   *budget,
		MaxBudget:       *maxBudget,
		MaxIndexes:      *maxIdx,
		MaxBodyBytes:    *maxBody,
		MaxFinishedJobs: *retain,

		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		TenantQueueCap: *tenantQueue,
		MaxBatchItems:  *maxBatch,
		FastPathMaxN:   *fastpathN,
	}

	var (
		srv     *service.Server
		node    *cluster.Node
		handler http.Handler
	)
	if *peers != "" {
		if *advertise == "" {
			log.Fatal("iddserver: -peers requires -advertise (this node's reachable URL)")
		}
		var err error
		node, err = cluster.New(cluster.Config{
			Self:           *advertise,
			Peers:          strings.Split(*peers, ","),
			GossipInterval: *gossipInterval,
			StealInterval:  *stealInterval,
			MaxHelpers:     *maxHelpers,
			HelperWorkers:  *helperWorkers,
		}, svcCfg)
		if err != nil {
			log.Fatalf("iddserver: %v", err)
		}
		srv = node.Server()
		handler = node.Handler()
		node.Start()
		log.Printf("iddserver: cluster node %s (%s), %d peers configured",
			node.Name(), *advertise, len(strings.Split(*peers, ",")))
	} else {
		srv = service.New(svcCfg)
		handler = srv.Handler()
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		log.Printf("iddserver: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	// The profiling listener is its own mux with only the pprof handlers
	// registered explicitly — nothing from http.DefaultServeMux leaks in,
	// and solve traffic never shares a port with the profiler.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			log.Printf("iddserver: pprof listening on %s", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("iddserver: pprof listener: %v", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("iddserver: %v — draining for up to %v", sig, *drain)
	case err := <-errc:
		log.Fatalf("iddserver: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if node != nil {
		node.Close() // stop gossip/steal loops before draining solves
	}
	srv.Shutdown(ctx) // reject new work, finish the queue, cancel on timeout
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("iddserver: http shutdown: %v", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(ctx)
	}
	log.Printf("iddserver: drained, bye")
}
