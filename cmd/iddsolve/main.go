// Command iddsolve computes an index deployment order for a matrix file
// with a chosen method and prints the order, objective, and improvement
// curve.
//
// Usage:
//
//	iddsolve -method vns -budget 30s tpch.json
//	iddsolve -method cp -budget 60s -prune tpch13.json
//	iddsolve -method greedy tpcds.json
//	iddsolve -method portfolio -workers 8 -budget 30s tpcds.json
//
// Methods: greedy, dp, cp, astar, mip, bruteforce, tabu-b, tabu-f, lns,
// vns, anneal, random, and portfolio — which races a set of backends
// concurrently with a shared incumbent (see -workers and -solvers).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/astar"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
	"github.com/evolving-olap/idd/internal/solver/cp"
	"github.com/evolving-olap/idd/internal/solver/dp"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
	"github.com/evolving-olap/idd/internal/solver/mip"
	"github.com/evolving-olap/idd/internal/solver/portfolio"
)

func main() {
	var (
		method   = flag.String("method", "vns", "solution method")
		budget   = flag.Duration("budget", 10*time.Second, "time budget for search methods")
		usePrune = flag.Bool("prune", true, "run the §5 analysis and add its constraints")
		seed     = flag.Int64("seed", 1, "random seed for local search")
		curve    = flag.Bool("curve", false, "print the per-step improvement curve")
		workers  = flag.Int("workers", 0, "portfolio: concurrent backends (0 = GOMAXPROCS)")
		solvers  = flag.String("solvers", "", "portfolio: comma-separated backend list (empty = auto; available: "+strings.Join(portfolio.Names(), ",")+")")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iddsolve [flags] <instance file>")
		os.Exit(2)
	}
	in, err := codec.LoadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	c, err := model.Compile(in)
	if err != nil {
		fail(err)
	}

	cs := sched.PrecedenceSet(in)
	if *usePrune {
		start := time.Now()
		var rep prune.Report
		cs, rep = prune.Analyze(c, prune.Options{})
		fmt.Fprintf(os.Stderr, "analysis (%v): %v\n", time.Since(start).Round(time.Millisecond), rep)
	}

	start := time.Now()
	order, note := solve(c, cs, *method, *budget, *seed, *workers, *solvers)
	elapsed := time.Since(start)

	obj, deploy, final := c.Evaluate(order)
	fmt.Printf("method:      %s%s\n", *method, note)
	fmt.Printf("elapsed:     %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("objective:   %.2f\n", obj)
	fmt.Printf("deploy time: %.2f\n", deploy)
	fmt.Printf("runtime:     %.2f -> %.2f\n", c.Base, final)
	fmt.Printf("order:\n")
	for k, ix := range order {
		fmt.Printf("  %3d. %s\n", k+1, in.Indexes[ix].Name)
	}
	if *curve {
		fmt.Println("improvement curve (elapsed, runtime):")
		for _, pt := range c.Curve(order) {
			fmt.Printf("  %10.2f %10.2f  (+%s)\n", pt.Elapsed, pt.Runtime, in.Indexes[pt.Index].Name)
		}
	}
}

func solve(c *model.Compiled, cs *constraint.Set, method string, budget time.Duration, seed int64, workers int, solvers string) ([]int, string) {
	rng := rand.New(rand.NewSource(seed))
	lopt := func() local.Options {
		return local.Options{
			Initial: greedy.Solve(c, cs),
			Budget:  budget,
			Rng:     rng,
		}
	}
	switch method {
	case "greedy":
		return greedy.Solve(c, cs), ""
	case "dp":
		return dp.Solve(c), ""
	case "random":
		return sched.RandomFeasible(rng, cs), ""
	case "bruteforce":
		res, err := bruteforce.Solve(c, cs, true)
		if err != nil {
			fail(err)
		}
		return res.Order, " (proved optimal)"
	case "astar":
		res, err := astar.Solve(c, cs, astar.Options{})
		if err != nil {
			fail(err)
		}
		return res.Order, provedNote(res.Proved)
	case "cp":
		res := cp.Solve(c, cs, cp.Options{
			Deadline:  time.Now().Add(budget),
			Incumbent: greedy.Solve(c, cs),
		})
		return res.Order, provedNote(res.Proved)
	case "mip":
		res, err := mip.Solve(c, cs, mip.Options{Deadline: time.Now().Add(budget)})
		if err != nil {
			fail(err)
		}
		return res.Order, provedNote(res.Proved) + fmt.Sprintf(" [%d vars, %d rows]", res.Vars, res.Rows)
	case "tabu-b":
		return local.TabuBSwap(c, cs, lopt()).Order, ""
	case "tabu-f":
		return local.TabuFSwap(c, cs, lopt()).Order, ""
	case "lns":
		return local.LNS(c, cs, lopt()).Order, ""
	case "vns":
		return local.VNS(c, cs, lopt()).Order, ""
	case "anneal":
		return local.Anneal(c, cs, lopt()).Order, ""
	case "portfolio":
		var backends []string
		if solvers != "" {
			for _, name := range strings.Split(solvers, ",") {
				if name = strings.TrimSpace(name); name != "" {
					backends = append(backends, name)
				}
			}
		}
		res, err := portfolio.Solve(context.Background(), c, cs, portfolio.Options{
			Backends: backends,
			Workers:  workers,
			Budget:   budget,
			Seed:     seed,
		})
		if err != nil {
			fail(err)
		}
		for _, b := range res.Backends {
			switch {
			case b.Skipped:
				fmt.Fprintf(os.Stderr, "  %-10s skipped (budget exhausted or optimum already proved)\n", b.Name)
			case b.Err != nil:
				fmt.Fprintf(os.Stderr, "  %-10s error: %v\n", b.Name, b.Err)
			case b.Proved && math.IsInf(b.Objective, 1):
				// A* can prove the shared incumbent optimal via its bound
				// without ever reconstructing an order of its own.
				fmt.Fprintf(os.Stderr, "  %-10s proved the incumbent optimal (bound only, no own order) iters=%d wall=%v\n",
					b.Name, b.Iterations, b.Wall.Round(time.Millisecond))
			default:
				note := ""
				if b.Proved {
					note = " proved"
				}
				fmt.Fprintf(os.Stderr, "  %-10s obj=%.2f iters=%d wall=%v improved=%d%s\n",
					b.Name, b.Objective, b.Iterations, b.Wall.Round(time.Millisecond), b.Improvements, note)
			}
		}
		return res.Order, fmt.Sprintf(" [winner %s]", res.Winner) + provedNote(res.Proved)
	default:
		fmt.Fprintf(os.Stderr, "iddsolve: unknown method %q\n", method)
		os.Exit(2)
		return nil, ""
	}
}

func provedNote(p bool) string {
	if p {
		return " (proved optimal)"
	}
	return " (best found, no proof)"
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "iddsolve: %v\n", err)
	os.Exit(1)
}
