// Command iddsolve computes an index deployment order for a matrix file
// with a chosen method and prints the order, objective, and improvement
// curve.
//
// Usage:
//
//	iddsolve -method vns -budget 30s tpch.json
//	iddsolve -method cp -budget 60s -prune tpch13.json
//	iddsolve -method cp -cp-workers 8 tpch16.json
//	iddsolve -method greedy tpcds.json
//	iddsolve -method portfolio -workers 8 -budget 30s tpcds.json
//	iddsolve -method portfolio -json r13.json | jq .objective
//
// Methods: greedy, dp, cp, astar, mip, bruteforce, tabu-b, tabu-f, lns,
// vns, anneal, random, and portfolio — which races a set of backends
// concurrently with a shared incumbent (see -workers and -solvers).
//
// -json replaces the human-readable report with a single JSON object on
// stdout so scripts (and the iddserver examples) can consume results
// programmatically.
//
// Exit codes: 0 = solved (for proof-capable methods: proved optimal, or
// a heuristic method returned a feasible order); 2 = invalid input,
// infeasible instance, or a method that cannot handle it; 3 = a
// proof-capable method (bruteforce, astar, cp, mip, portfolio) exhausted
// its budget — or was interrupted — without an optimality proof. The
// best incumbent is still printed in that case.
//
// SIGINT cancels the search gracefully: the solver stops at the next
// cancellation point and the best incumbent found so far is printed
// (marked "interrupted"). A second SIGINT kills the process.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/astar"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
	"github.com/evolving-olap/idd/internal/solver/cp"
	"github.com/evolving-olap/idd/internal/solver/dp"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
	"github.com/evolving-olap/idd/internal/solver/mip"
	"github.com/evolving-olap/idd/internal/solver/portfolio"
)

// Exit codes for scripting.
const (
	exitSolved  = 0
	exitInvalid = 2 // bad usage, unreadable/invalid instance, method refused it
	exitNoProof = 3 // proof-capable method ran out of budget (or ^C) without a proof
)

// solveOutcome is what solve() reports beyond the order itself.
type solveOutcome struct {
	note string
	// proved is nil for methods with no proof concept (the heuristics),
	// otherwise whether an optimality proof landed.
	proved *bool
	winner string
}

func main() {
	var (
		method   = flag.String("method", "vns", "solution method")
		budget   = flag.Duration("budget", 10*time.Second, "time budget for search methods")
		usePrune = flag.Bool("prune", true, "run the §5 analysis and add its constraints")
		seed     = flag.Int64("seed", 1, "random seed for local search")
		curve    = flag.Bool("curve", false, "print the per-step improvement curve")
		jsonOut  = flag.Bool("json", false, "emit one JSON object instead of the text report")
		workers  = flag.Int("workers", 0, "portfolio: concurrent backends (0 = GOMAXPROCS)")
		cpWork   = flag.Int("cp-workers", 0, "cp/portfolio: parallel branch-and-bound workers for the CP proof search (0 = single-threaded)")
		solvers  = flag.String("solvers", "", "portfolio: comma-separated backend list (empty = auto; available: "+strings.Join(portfolio.Names(), ",")+")")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iddsolve [flags] <instance file>")
		exit(exitInvalid)
	}
	startProfiles(*cpuProf, *memProf)
	in, err := codec.LoadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	c, err := model.Compile(in)
	if err != nil {
		fail(err)
	}

	cs := sched.PrecedenceSet(in)
	if *usePrune {
		start := time.Now()
		var rep prune.Report
		cs, rep = prune.Analyze(c, prune.Options{})
		fmt.Fprintf(os.Stderr, "analysis (%v): %v\n", time.Since(start).Round(time.Millisecond), rep)
	}

	// SIGINT/SIGTERM cancel the search context; every method below polls
	// it and returns its best incumbent instead of dying mid-print. The
	// registration is dropped the moment the context fires (not when the
	// solver returns) so a second ^C gets the default kill behavior even
	// while a backend is still between cancellation points.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	start := time.Now()
	order, outcome := solve(ctx, c, cs, *method, *budget, *seed, *workers, *cpWork, *solvers)
	elapsed := time.Since(start)
	interrupted := ctx.Err() != nil
	stop()

	obj, deploy, final := c.Evaluate(order)
	code := exitSolved
	if outcome.proved != nil && !*outcome.proved {
		code = exitNoProof
	}

	if *jsonOut {
		printJSON(in, c, *method, order, obj, deploy, final, elapsed, outcome, interrupted, *curve, code)
		exit(code)
	}

	note := outcome.note
	if interrupted {
		note += " (interrupted)"
	}
	fmt.Printf("method:      %s%s\n", *method, note)
	fmt.Printf("elapsed:     %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("objective:   %.2f\n", obj)
	fmt.Printf("deploy time: %.2f\n", deploy)
	fmt.Printf("runtime:     %.2f -> %.2f\n", c.Base, final)
	fmt.Printf("order:\n")
	for k, ix := range order {
		fmt.Printf("  %3d. %s\n", k+1, in.Indexes[ix].Name)
	}
	if *curve {
		fmt.Println("improvement curve (elapsed, runtime):")
		for _, pt := range c.Curve(order) {
			fmt.Printf("  %10.2f %10.2f  (+%s)\n", pt.Elapsed, pt.Runtime, in.Indexes[pt.Index].Name)
		}
	}
	exit(code)
}

// jsonReport is the -json wire format.
type jsonReport struct {
	Method       string    `json:"method"`
	Instance     string    `json:"instance,omitempty"`
	N            int       `json:"n"`
	Objective    float64   `json:"objective"`
	DeployTime   float64   `json:"deploy_time"`
	BaseRuntime  float64   `json:"base_runtime"`
	FinalRuntime float64   `json:"final_runtime"`
	Proved       *bool     `json:"proved,omitempty"`
	Winner       string    `json:"winner,omitempty"`
	Interrupted  bool      `json:"interrupted,omitempty"`
	ElapsedMS    int64     `json:"elapsed_ms"`
	Order        []int     `json:"order"`
	Names        []string  `json:"names"`
	Curve        []curvePt `json:"curve,omitempty"`
	ExitCode     int       `json:"exit_code"`
}

type curvePt struct {
	Elapsed float64 `json:"elapsed"`
	Runtime float64 `json:"runtime"`
	Index   string  `json:"index"`
	Cost    float64 `json:"cost"`
}

func printJSON(in *model.Instance, c *model.Compiled, method string, order []int,
	obj, deploy, final float64, elapsed time.Duration, outcome solveOutcome,
	interrupted, withCurve bool, code int) {
	rep := jsonReport{
		Method:       method,
		Instance:     in.Name,
		N:            c.N,
		Objective:    obj,
		DeployTime:   deploy,
		BaseRuntime:  c.Base,
		FinalRuntime: final,
		Proved:       outcome.proved,
		Winner:       outcome.winner,
		Interrupted:  interrupted,
		ElapsedMS:    elapsed.Milliseconds(),
		Order:        order,
		Names:        make([]string, len(order)),
		ExitCode:     code,
	}
	for k, ix := range order {
		rep.Names[k] = in.Indexes[ix].Name
	}
	if withCurve {
		for _, pt := range c.Curve(order) {
			rep.Curve = append(rep.Curve, curvePt{
				Elapsed: pt.Elapsed, Runtime: pt.Runtime,
				Index: in.Indexes[pt.Index].Name, Cost: pt.Cost,
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
}

func solve(ctx context.Context, c *model.Compiled, cs *constraint.Set, method string,
	budget time.Duration, seed int64, workers, cpWorkers int, solvers string) ([]int, solveOutcome) {
	rng := rand.New(rand.NewSource(seed))
	lopt := func() local.Options {
		return local.Options{
			Initial: greedy.Solve(c, cs),
			Budget:  budget,
			Rng:     rng,
			Context: ctx,
		}
	}
	heuristic := func(order []int) ([]int, solveOutcome) {
		return order, solveOutcome{}
	}
	switch method {
	case "greedy":
		return heuristic(greedy.Solve(c, cs))
	case "dp":
		return heuristic(dp.Solve(c))
	case "random":
		return heuristic(sched.RandomFeasible(rng, cs))
	case "bruteforce":
		res, err := bruteforce.SolveContext(ctx, c, cs, true)
		if err != nil {
			fail(err)
		}
		proved := !res.Aborted
		return res.Order, solveOutcome{note: provedNote(proved), proved: &proved}
	case "astar":
		res, err := astar.Solve(c, cs, astar.Options{Context: ctx})
		if err != nil {
			fail(err)
		}
		order := res.Order
		if order == nil {
			// A cancelled A* may have no own order; fall back to greedy so
			// the CLI always reports a feasible schedule.
			order = greedy.Solve(c, cs)
		}
		return order, solveOutcome{note: provedNote(res.Proved), proved: &res.Proved}
	case "cp":
		res := cp.Solve(c, cs, cp.Options{
			Deadline:  time.Now().Add(budget),
			Context:   ctx,
			Incumbent: greedy.Solve(c, cs),
			Workers:   cpWorkers,
			Seed:      seed,
		})
		note := provedNote(res.Proved)
		if res.Workers > 1 {
			note += fmt.Sprintf(" [%d workers]", res.Workers)
		}
		return res.Order, solveOutcome{note: note, proved: &res.Proved}
	case "mip":
		res, err := mip.Solve(c, cs, mip.Options{Deadline: time.Now().Add(budget), Context: ctx})
		if err != nil {
			fail(err)
		}
		return res.Order, solveOutcome{
			note:   provedNote(res.Proved) + fmt.Sprintf(" [%d vars, %d rows]", res.Vars, res.Rows),
			proved: &res.Proved,
		}
	case "tabu-b":
		return heuristic(local.TabuBSwap(c, cs, lopt()).Order)
	case "tabu-f":
		return heuristic(local.TabuFSwap(c, cs, lopt()).Order)
	case "lns":
		return heuristic(local.LNS(c, cs, lopt()).Order)
	case "vns":
		return heuristic(local.VNS(c, cs, lopt()).Order)
	case "anneal":
		return heuristic(local.Anneal(c, cs, lopt()).Order)
	case "portfolio":
		var backends []string
		if solvers != "" {
			for _, name := range strings.Split(solvers, ",") {
				if name = strings.TrimSpace(name); name != "" {
					backends = append(backends, name)
				}
			}
		}
		res, err := portfolio.Solve(ctx, c, cs, portfolio.Options{
			Backends:  backends,
			Workers:   workers,
			Budget:    budget,
			CPWorkers: cpWorkers,
			Seed:      seed,
		})
		if err != nil {
			fail(err)
		}
		for _, b := range res.Backends {
			switch {
			case b.Skipped:
				fmt.Fprintf(os.Stderr, "  %-10s skipped (budget exhausted or optimum already proved)\n", b.Name)
			case b.Err != nil:
				fmt.Fprintf(os.Stderr, "  %-10s error: %v\n", b.Name, b.Err)
			case b.Proved && math.IsInf(b.Objective, 1):
				// A* can prove the shared incumbent optimal via its bound
				// without ever reconstructing an order of its own.
				fmt.Fprintf(os.Stderr, "  %-10s proved the incumbent optimal (bound only, no own order) iters=%d wall=%v\n",
					b.Name, b.Iterations, b.Wall.Round(time.Millisecond))
			default:
				note := ""
				if b.Proved {
					note = " proved"
				}
				fmt.Fprintf(os.Stderr, "  %-10s obj=%.2f iters=%d wall=%v improved=%d%s\n",
					b.Name, b.Objective, b.Iterations, b.Wall.Round(time.Millisecond), b.Improvements, note)
			}
		}
		return res.Order, solveOutcome{
			note:   fmt.Sprintf(" [winner %s]", res.Winner) + provedNote(res.Proved),
			proved: &res.Proved,
			winner: res.Winner,
		}
	default:
		fmt.Fprintf(os.Stderr, "iddsolve: unknown method %q\n", method)
		exit(exitInvalid)
		return nil, solveOutcome{}
	}
}

func provedNote(p bool) string {
	if p {
		return " (proved optimal)"
	}
	return " (best found, no proof)"
}

// stopProfiles flushes any active pprof capture; set by startProfiles and
// run by exit so profiles survive every exit path (os.Exit skips defers).
var stopProfiles = func() {}

// startProfiles begins CPU profiling and arranges a heap snapshot at
// exit, making perf work on real instances reproducible:
//
//	iddsolve -method vns -budget 30s -cpuprofile cpu.out tpcds.json
//	go tool pprof cpu.out
func startProfiles(cpuPath, memPath string) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(fmt.Errorf("cpuprofile: %w", err))
		}
		cpuFile = f
	}
	stopProfiles = func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iddsolve: memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the snapshot shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "iddsolve: memprofile: %v\n", err)
			}
			f.Close()
			memPath = ""
		}
	}
}

// exit flushes profiles, then terminates with the given code.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "iddsolve: %v\n", err)
	exit(exitInvalid)
}
