// Command iddsolve computes an index deployment order for a matrix file
// with a chosen method and prints the order, objective, and improvement
// curve.
//
// Usage:
//
//	iddsolve -list-solvers
//	iddsolve -method vns -budget 30s tpch.json
//	iddsolve -method cp -budget 60s -prune tpch13.json
//	iddsolve -method cp -param cp.workers=8 tpch16.json
//	iddsolve -method greedy tpcds.json
//	iddsolve -method portfolio -workers 8 -budget 30s tpcds.json
//	iddsolve -method portfolio -json r13.json | jq .objective
//	iddsolve -method portfolio -json r13.json > prior.json
//	iddsolve -warm-start-from prior.json r13_evolved.json
//
// Methods are the solver backends of the self-describing registry
// (internal/solver/backend; run -list-solvers for the roster and each
// backend's -param knobs) plus two pseudo-methods: random, and
// portfolio — which races a set of backends concurrently with a shared
// incumbent (see -workers and -solvers).
//
// -json replaces the human-readable report with a single JSON object on
// stdout so scripts (and the iddserver examples) can consume results
// programmatically.
//
// Exit codes: 0 = solved (for proof-capable methods: proved optimal, or
// a heuristic method returned a feasible order); 2 = invalid input,
// infeasible instance, or a method that cannot handle it; 3 = a
// proof-capable method (bruteforce, astar, cp, mip, portfolio) exhausted
// its budget — or was interrupted — without an optimality proof. The
// best incumbent is still printed in that case.
//
// -warm-start-from seeds the search with a previous run's order: the
// file is either a prior -json report (its "names" list is used) or a
// bare JSON array of index names. The order is repaired against the
// current instance first — dropped indexes removed, new ones inserted
// at their best feasible position — so a plan computed before the
// workload evolved remains a valid (and usually excellent) seed. An
// unrepairable seed degrades to a cold start with a warning.
//
// -budget (default 10s) bounds EVERY method uniformly. Note for
// pre-registry scripts: bruteforce and astar used to ignore -budget and
// run unbounded; they now stop at the budget like everything else and
// exit 3 when the proof did not finish — raise -budget to reproduce the
// old run-to-proof behavior.
//
// SIGINT cancels the search gracefully: the solver stops at the next
// cancellation point and the best incumbent found so far is printed
// (marked "interrupted"). A second SIGINT kills the process.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/evolve"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/obs"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/backend"
	"github.com/evolving-olap/idd/internal/solver/cp"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/portfolio"
)

// Exit codes for scripting.
const (
	exitSolved  = 0
	exitInvalid = 2 // bad usage, unreadable/invalid instance, method refused it
	exitNoProof = 3 // proof-capable method ran out of budget (or ^C) without a proof
)

// solveOutcome is what solve() reports beyond the order itself.
type solveOutcome struct {
	note string
	// proved is nil for methods with no proof concept (the heuristics),
	// otherwise whether an optimality proof landed.
	proved *bool
	winner string
	// workers is the internal parallelism the backend reported (cp's
	// branch-and-bound goroutines; 0 = not reported).
	workers int
	// counters are the engine counters of the solving backend (the
	// portfolio winner's, or the standalone backend's): cp's node and
	// prune-cause breakdown, the local searches' steps/accepted/adopted.
	counters map[string]int64
}

func main() {
	var rawParams backend.ParamFlag
	var (
		method   = flag.String("method", "vns", "solution method (a registered backend, random, or portfolio; see -list-solvers)")
		budget   = flag.Duration("budget", 10*time.Second, "time budget for search methods")
		usePrune = flag.Bool("prune", true, "run the §5 analysis and add its constraints")
		seed     = flag.Int64("seed", 1, "random seed for local search")
		curve    = flag.Bool("curve", false, "print the per-step improvement curve")
		jsonOut  = flag.Bool("json", false, "emit one JSON object instead of the text report")
		workers  = flag.Int("workers", 0, "portfolio: concurrent backends (0 = GOMAXPROCS)")
		cpWork   = flag.Int("cp-workers", 0, "deprecated alias of -param cp.workers=N")
		solvers  = flag.String("solvers", "", "portfolio: comma-separated backend list (empty = auto; available: "+strings.Join(portfolio.Names(), ",")+")")
		warmFrom = flag.String("warm-start-from", "", "seed the search from a prior -json report (or a JSON array of index names), repaired against this instance")
		trace    = flag.Bool("trace", false, "record a flight-recorder trace and print its span timeline after the report")
		traceJS  = flag.Bool("trace-json", false, "like -trace but print the spans as JSON (inside the report when -json is set)")
		list     = flag.Bool("list-solvers", false, "list the registered solver backends and their -param knobs, then exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	)
	flag.Var(&rawParams, "param", "backend param as key=value (repeatable; see -list-solvers for the valid keys)")
	flag.Parse()
	if *list {
		listSolvers(os.Stdout)
		exit(exitSolved)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iddsolve [flags] <instance file>")
		exit(exitInvalid)
	}
	params, err := backend.ParseParams(rawParams)
	if err != nil {
		fail(err)
	}
	// Deprecated -cp-workers alias; an explicit -param wins (even
	// -param cp.workers=0, which forces the serial engine).
	params = params.WithIntFallback(cp.ParamWorkers, *cpWork)
	startProfiles(*cpuProf, *memProf)
	in, err := codec.LoadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	c, err := model.Compile(in)
	if err != nil {
		fail(err)
	}

	cs := sched.PrecedenceSet(in)
	if *usePrune {
		start := time.Now()
		var rep prune.Report
		cs, rep = prune.Analyze(c, prune.Options{})
		fmt.Fprintf(os.Stderr, "analysis (%v): %v\n", time.Since(start).Round(time.Millisecond), rep)
	}

	var initial []int
	if *warmFrom != "" {
		warm, err := warmOrderFrom(*warmFrom, in, c, cs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iddsolve: warm start rejected (%v), starting cold\n", err)
		} else {
			initial = warm
			fmt.Fprintf(os.Stderr, "warm start: seeded from %s\n", *warmFrom)
		}
	}

	// SIGINT/SIGTERM cancel the search context; every method below polls
	// it and returns its best incumbent instead of dying mid-print. The
	// registration is dropped the moment the context fires (not when the
	// solver returns) so a second ^C gets the default kill behavior even
	// while a backend is still between cancellation points.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	var tr *obs.Trace
	if *trace || *traceJS {
		tr = obs.NewTrace(0)
		tr.Record(obs.SpanStarted)
	}
	start := time.Now()
	order, outcome := solve(ctx, c, cs, *method, *budget, *seed, *workers, *solvers, params, initial, tr)
	elapsed := time.Since(start)
	interrupted := ctx.Err() != nil
	stop()

	obj, deploy, final := c.Evaluate(order)
	code := exitSolved
	if outcome.proved != nil && !*outcome.proved {
		code = exitNoProof
	}
	if tr != nil {
		note := "solved"
		if interrupted {
			note = "interrupted"
		}
		tr.RecordObjective(obs.SpanDone, outcome.winner, obj, note)
	}

	if *jsonOut {
		printJSON(in, c, *method, order, obj, deploy, final, elapsed, outcome, interrupted, *curve, code, tr)
		exit(code)
	}

	note := outcome.note
	if interrupted {
		note += " (interrupted)"
	}
	fmt.Printf("method:      %s%s\n", *method, note)
	fmt.Printf("elapsed:     %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("objective:   %.2f\n", obj)
	fmt.Printf("deploy time: %.2f\n", deploy)
	fmt.Printf("runtime:     %.2f -> %.2f\n", c.Base, final)
	fmt.Printf("order:\n")
	for k, ix := range order {
		fmt.Printf("  %3d. %s\n", k+1, in.Indexes[ix].Name)
	}
	if *curve {
		fmt.Println("improvement curve (elapsed, runtime):")
		for _, pt := range c.Curve(order) {
			fmt.Printf("  %10.2f %10.2f  (+%s)\n", pt.Elapsed, pt.Runtime, in.Indexes[pt.Index].Name)
		}
	}
	if len(outcome.counters) > 0 {
		fmt.Println("counters:")
		keys := make([]string, 0, len(outcome.counters))
		for k := range outcome.counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-18s %d\n", k, outcome.counters[k])
		}
	}
	if tr != nil {
		if *traceJS {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(tr.Snapshot()); err != nil {
				fail(err)
			}
		} else {
			printTraceText(os.Stdout, tr.Snapshot())
		}
	}
	exit(code)
}

// printTraceText renders the flight-recorder timeline for humans.
func printTraceText(w io.Writer, snap obs.TraceSnapshot) {
	fmt.Fprintf(w, "trace (%d spans", snap.Total)
	if snap.Dropped > 0 {
		fmt.Fprintf(w, ", oldest %d dropped", snap.Dropped)
	}
	fmt.Fprintln(w, "):")
	for _, sp := range snap.Spans {
		line := fmt.Sprintf("  %4d %10.1fms  %-13s %-10s", sp.Seq, sp.ElapsedMS, sp.Kind, sp.Backend)
		if sp.Objective != nil {
			line += fmt.Sprintf(" obj=%.2f", *sp.Objective)
		}
		if sp.Detail != "" {
			line += " " + sp.Detail
		}
		fmt.Fprintln(w, strings.TrimRight(line, " "))
	}
}

// jsonReport is the -json wire format.
type jsonReport struct {
	Method       string    `json:"method"`
	Instance     string    `json:"instance,omitempty"`
	N            int       `json:"n"`
	Objective    float64   `json:"objective"`
	DeployTime   float64   `json:"deploy_time"`
	BaseRuntime  float64   `json:"base_runtime"`
	FinalRuntime float64   `json:"final_runtime"`
	Proved       *bool     `json:"proved,omitempty"`
	Winner       string    `json:"winner,omitempty"`
	Workers      int       `json:"workers,omitempty"`
	Interrupted  bool      `json:"interrupted,omitempty"`
	ElapsedMS    int64     `json:"elapsed_ms"`
	Order        []int     `json:"order"`
	Names        []string  `json:"names"`
	Curve        []curvePt `json:"curve,omitempty"`
	// Counters are the solving backend's engine counters (cp: nodes,
	// fails and the prune-cause breakdown pruned_incumbent + pruned_tail
	// + infeasible = fails; locals: steps/accepted/adopted).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Trace is the flight-recorder span timeline (-trace / -trace-json).
	Trace    *obs.TraceSnapshot `json:"trace,omitempty"`
	ExitCode int                `json:"exit_code"`
}

type curvePt struct {
	Elapsed float64 `json:"elapsed"`
	Runtime float64 `json:"runtime"`
	Index   string  `json:"index"`
	Cost    float64 `json:"cost"`
}

func printJSON(in *model.Instance, c *model.Compiled, method string, order []int,
	obj, deploy, final float64, elapsed time.Duration, outcome solveOutcome,
	interrupted, withCurve bool, code int, tr *obs.Trace) {
	rep := jsonReport{
		Method:       method,
		Instance:     in.Name,
		N:            c.N,
		Objective:    obj,
		DeployTime:   deploy,
		BaseRuntime:  c.Base,
		FinalRuntime: final,
		Proved:       outcome.proved,
		Winner:       outcome.winner,
		Workers:      outcome.workers,
		Interrupted:  interrupted,
		ElapsedMS:    elapsed.Milliseconds(),
		Order:        order,
		Names:        make([]string, len(order)),
		Counters:     outcome.counters,
		ExitCode:     code,
	}
	if tr != nil {
		snap := tr.Snapshot()
		rep.Trace = &snap
	}
	for k, ix := range order {
		rep.Names[k] = in.Indexes[ix].Name
	}
	if withCurve {
		for _, pt := range c.Curve(order) {
			rep.Curve = append(rep.Curve, curvePt{
				Elapsed: pt.Elapsed, Runtime: pt.Runtime,
				Index: in.Indexes[pt.Index].Name, Cost: pt.Cost,
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
}

// recordProgressSpan mirrors one portfolio progress event into the
// flight recorder (nil tr = tracing off).
func recordProgressSpan(tr *obs.Trace, ev portfolio.ProgressEvent) {
	if tr == nil {
		return
	}
	switch ev.Kind {
	case portfolio.ProgressBackendStarted:
		tr.RecordBackend(obs.SpanBackendStart, ev.Backend, "")
	case portfolio.ProgressImproved:
		tr.RecordObjective(obs.SpanIncumbent, ev.Backend, ev.Objective, "")
	case portfolio.ProgressProved:
		tr.RecordObjective(obs.SpanProved, ev.Backend, ev.Objective, "")
	case portfolio.ProgressBackendDone:
		detail := ""
		switch {
		case ev.Skipped:
			detail = "skipped"
		case ev.Err != nil:
			detail = ev.Err.Error()
		}
		if math.IsInf(ev.Objective, 1) {
			tr.RecordBackend(obs.SpanBackendDone, ev.Backend, detail)
		} else {
			tr.RecordObjective(obs.SpanBackendDone, ev.Backend, ev.Objective, detail)
		}
	}
}

// warmOrderFrom reads a prior order (a -json report's "names" or a bare
// JSON name array), repairs it against the current instance (dropped
// indexes removed, added ones greedy-inserted), then against the full
// constraint set, and returns it in position space.
func warmOrderFrom(path string, in *model.Instance, c *model.Compiled, cs *constraint.Set) ([]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var names []string
	var rep struct {
		Names []string `json:"names"`
	}
	if err := json.Unmarshal(data, &rep); err == nil && len(rep.Names) > 0 {
		names = rep.Names
	} else if err := json.Unmarshal(data, &names); err != nil {
		return nil, fmt.Errorf("%s: neither a -json report with names nor a name array: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: carries no index names", path)
	}
	repaired, err := evolve.RepairOrder(in, names)
	if err != nil {
		return nil, err
	}
	pos := make(map[string]int, in.N())
	for i, ix := range in.Indexes {
		pos[ix.Name] = i
	}
	order := make([]int, len(repaired))
	for k, name := range repaired {
		order[k] = pos[name]
	}
	// The pruning analysis may have added precedence edges the prior
	// order never saw; the stable topological repair handles those.
	return portfolio.RepairInitial(c, cs, order)
}

func solve(ctx context.Context, c *model.Compiled, cs *constraint.Set, method string,
	budget time.Duration, seed int64, workers int, solvers string,
	params backend.Params, initial []int, tr *obs.Trace) ([]int, solveOutcome) {
	switch method {
	case "random":
		rng := rand.New(rand.NewSource(seed))
		return sched.RandomFeasible(rng, cs), solveOutcome{}
	case "portfolio":
		var backends []string
		if solvers != "" {
			for _, name := range strings.Split(solvers, ",") {
				if name = strings.TrimSpace(name); name != "" {
					backends = append(backends, name)
				}
			}
		}
		res, err := portfolio.Solve(ctx, c, cs, portfolio.Options{
			Backends:   backends,
			Workers:    workers,
			Budget:     budget,
			Params:     params,
			Seed:       seed,
			Initial:    initial,
			OnProgress: func(ev portfolio.ProgressEvent) { recordProgressSpan(tr, ev) },
		})
		if err != nil {
			fail(err)
		}
		for _, b := range res.Backends {
			switch {
			case b.Skipped:
				fmt.Fprintf(os.Stderr, "  %-10s skipped (budget exhausted or optimum already proved)\n", b.Name)
			case b.Err != nil:
				fmt.Fprintf(os.Stderr, "  %-10s error: %v\n", b.Name, b.Err)
			case b.Proved && math.IsInf(b.Objective, 1):
				// A* can prove the shared incumbent optimal via its bound
				// without ever reconstructing an order of its own.
				fmt.Fprintf(os.Stderr, "  %-10s proved the incumbent optimal (bound only, no own order) iters=%d wall=%v\n",
					b.Name, b.Iterations, b.Wall.Round(time.Millisecond))
			default:
				note := ""
				if b.Proved {
					note = " proved"
				}
				fmt.Fprintf(os.Stderr, "  %-10s obj=%.2f iters=%d wall=%v improved=%d%s\n",
					b.Name, b.Objective, b.Iterations, b.Wall.Round(time.Millisecond), b.Improvements, note)
			}
		}
		oc := solveOutcome{
			note:   fmt.Sprintf(" [winner %s]", res.Winner) + provedNote(res.Proved),
			proved: &res.Proved,
			winner: res.Winner,
		}
		for _, b := range res.Backends {
			if b.Name == res.Winner {
				oc.counters = b.Counters
			}
		}
		return res.Order, oc
	default:
		// Every other method is a registered backend, run standalone with
		// the full budget (the registry is also what -list-solvers and
		// the portfolio race draw from, so the rosters always agree).
		b, ok := backend.Lookup(method)
		if !ok {
			fmt.Fprintf(os.Stderr, "iddsolve: unknown method %q (methods: %s, random, portfolio)\n",
				method, strings.Join(backend.Names(), ", "))
			exit(exitInvalid)
			return nil, solveOutcome{}
		}
		info := b.Info()
		bctx, cancel := context.WithTimeout(ctx, budget)
		defer cancel()
		req := backend.Request{
			Compiled:    c,
			Constraints: cs,
			Budget:      budget,
			Seed:        seed,
			Initial:     greedy.Solve(c, cs),
			Params:      params,
		}
		if initial != nil {
			req.Initial = initial
		}
		if tr != nil {
			tr.RecordBackend(obs.SpanBackendStart, method, "")
			req.Publish = func(_ []int, obj float64) {
				tr.RecordObjective(obs.SpanIncumbent, method, obj, "")
			}
		}
		out := b.Solve(bctx, req)
		if out.Err != nil {
			fail(out.Err)
		}
		if tr != nil {
			if info.Proves && out.Proved {
				tr.RecordObjective(obs.SpanProved, method, out.Objective, "")
			}
			if math.IsInf(out.Objective, 1) {
				tr.RecordBackend(obs.SpanBackendDone, method, "")
			} else {
				tr.RecordObjective(obs.SpanBackendDone, method, out.Objective, "")
			}
		}
		order := out.Order
		if order == nil {
			// A cancelled exact search may have no own order (e.g. A*
			// proving via its bound); fall back to greedy so the CLI
			// always reports a feasible schedule.
			order = greedy.Solve(c, cs)
		}
		oc := solveOutcome{workers: out.Workers, counters: out.Counters}
		if info.Proves {
			proved := out.Proved
			oc.proved = &proved
			oc.note = provedNote(proved)
		}
		if out.Workers > 1 {
			oc.note += fmt.Sprintf(" [%d workers]", out.Workers)
		}
		return order, oc
	}
}

// listSolvers prints the registry roster with each backend's declared
// params (-list-solvers).
func listSolvers(w io.Writer) {
	fmt.Fprintf(w, "%-11s %-13s %-7s %s\n", "NAME", "KIND", "PROVES", "SUMMARY")
	for _, b := range backend.All() {
		info := b.Info()
		proves := "-"
		if info.Proves {
			proves = "yes"
		}
		fmt.Fprintf(w, "%-11s %-13s %-7s %s\n", info.Name, info.Kind, proves, info.Summary)
		for _, p := range info.Params {
			def := ""
			if p.Default != nil {
				def = fmt.Sprintf(" (default %v)", p.Default)
			}
			fmt.Fprintf(w, "%-11s   -param %s=<%s>%s — %s\n", "", p.Name, p.Type, def, p.Help)
		}
	}
	fmt.Fprintln(w, "\npseudo-methods: portfolio (races backends, see -solvers/-workers), random")
}

func provedNote(p bool) string {
	if p {
		return " (proved optimal)"
	}
	return " (best found, no proof)"
}

// stopProfiles flushes any active pprof capture; set by startProfiles and
// run by exit so profiles survive every exit path (os.Exit skips defers).
var stopProfiles = func() {}

// startProfiles begins CPU profiling and arranges a heap snapshot at
// exit, making perf work on real instances reproducible:
//
//	iddsolve -method vns -budget 30s -cpuprofile cpu.out tpcds.json
//	go tool pprof cpu.out
func startProfiles(cpuPath, memPath string) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(fmt.Errorf("cpuprofile: %w", err))
		}
		cpuFile = f
	}
	stopProfiles = func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iddsolve: memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the snapshot shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "iddsolve: memprofile: %v\n", err)
			}
			f.Close()
			memPath = ""
		}
	}
}

// exit flushes profiles, then terminates with the given code.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "iddsolve: %v\n", err)
	exit(exitInvalid)
}
