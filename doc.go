// Package idd is a reproduction of "Optimizing Index Deployment Order
// for Evolving OLAP" (Kimura, Coffrin, Rasin, Zdonik — EDBT 2012): a
// library and toolset for scheduling the deployment of database indexes
// so that query workloads speed up as early as possible and the total
// deployment finishes as fast as possible.
//
// At the center is the evaluation core in internal/model — a CSR-compiled
// instance (Compiled), an allocation-free incremental evaluator (Walker),
// and a delta move scorer (MoveEval) whose swap/insert scores are
// bit-identical to full replays while touching only the disturbed suffix
// of the schedule. Every solver backend, the pruning analysis and the
// solve service run on top of it; see README.md's "Architecture: the
// evaluation core" for the layer diagram and which consumer uses which
// API.
//
// Optimality proofs come from the CP engine in internal/solver/cp: a
// branch-and-prune DFS that, given a worker budget (cp.Options.Workers,
// CLI -param cp.workers=N), scales out as a work-stealing parallel
// branch-and-bound — frontier subproblems split at shallow depths into
// per-worker deques, one pooled Walker per worker repositioned with
// Sync on steal, a shared atomic incumbent bridged to the portfolio
// store, and global open-subproblem accounting so a drained frontier
// still certifies the optimum. See README.md's "Parallel proof search"
// subsection for the split/steal/proof protocol.
//
// The solvers plug into everything else through the self-describing
// registry in internal/solver/backend: each solver package registers a
// Backend (uniform Solve(ctx, Request) call plus an Info declaring its
// kind, applicability, finisher rank and typed param specs), and the
// portfolio's default selection, the finisher choice, iddsolve's
// -list-solvers/-param flags and iddserver's GET /solvers catalogue and
// per-request param validation are all derived from those declarations
// — adding a solver or a solver knob is a one-file change. See
// README.md's "Architecture: the backend registry".
//
// Observability is built in, not bolted on: internal/obs is a
// stdlib-only metrics and tracing core (atomic counters, labeled
// vectors, fixed-bucket histograms, a sliding-window rate, bounded span
// traces, and JSON plus Prometheus text-format rendering with its own
// exposition linter). The CP engine counts its search per worker —
// nodes, the prune-cause breakdown (incumbent bound / tail bound /
// infeasible, summing exactly to fails), steal telemetry — merged once
// per solve so the allocation-free guarantees hold with counters live;
// results surface the counters through backend.Outcome and
// portfolio.BackendResult into iddsolve -json and the service API. Each
// service job additionally records a flight-recorder trace (queued →
// started → incumbents → proved → done) served by GET /jobs/{id}/trace,
// and GET /metrics speaks both JSON and the Prometheus exposition
// format. See README.md's "Observability" section for the metric
// catalogue and trace format.
//
// Workload drift is first-class: the evolve driver re-tunes a changing
// workload in rounds (evolve.Run, evolve.ProjectDelta for folding
// already-built indexes into the model, evolve.RepairOrder for mending
// a prior plan against a delta), and iddserver's session API serves the
// same loop online — POST /sessions pins a plan, each delta re-solves
// warm-started from the previous incumbent via portfolio.Options.Initial
// (admission by portfolio.RepairInitial, degrading to a cold start when
// the seed is unrepairable), and the session's SSE stream carries only
// the changed tail of the plan. A structural-hash hint table beside the
// solution cache warm-seeds cache misses whose structure matches a
// finished solve; iddsolve -warm-start-from does the same offline, and
// cmd/iddresolve benchmarks warm versus cold re-solving under drift
// (scripts/bench.sh --section resolve). See README.md's "Online
// re-solve sessions".
//
// The service scales past one machine through internal/cluster: N
// iddserver processes started with the same static -peers list form a
// coordinator-free solve cluster. Submissions are routed by consistent
// hash of the canonical instance to their owning node (the solution
// cache and single-flight dedup keep their hit rates cluster-wide),
// finished results and in-flight incumbents replicate through a
// last-writer-wins merge ordered by (objective, Lamport clock) —
// commutative, associative, idempotent, property-tested under random
// delivery orders — and idle nodes steal open CP-proof subtrees from
// busy peers as deployment-prefix frames, with the donor's
// open-subproblem ledger keeping the optimality certificate sound
// across helper failures. See README.md's "Distributed cluster" and
// the examples/cluster docker-compose walkthrough.
//
// The public surface lives in the commands (cmd/iddgen, cmd/iddsolve,
// cmd/iddinspect, cmd/iddbench, cmd/iddserver, cmd/iddload) and the
// internal packages; see README.md for the architecture overview,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-measured evaluation. BENCH_eval.json and BENCH_serve.json
// are the checked-in performance baselines, regenerated by
// scripts/bench.sh.
package idd
