// Package idd is a reproduction of "Optimizing Index Deployment Order
// for Evolving OLAP" (Kimura, Coffrin, Rasin, Zdonik — EDBT 2012): a
// library and toolset for scheduling the deployment of database indexes
// so that query workloads speed up as early as possible and the total
// deployment finishes as fast as possible.
//
// The public surface lives in the commands (cmd/iddgen, cmd/iddsolve,
// cmd/iddinspect, cmd/iddbench) and the internal packages; see README.md
// for the architecture overview, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured evaluation.
package idd
