// Example cluster: a walkthrough of the distributed solve cluster.
//
// The example starts three peered cluster nodes in-process on loopback
// listeners (so it runs standalone — docker-compose.yml in this
// directory runs the same topology as three real processes), then acts
// as a plain HTTP client against them: it submits a solve to a node
// that does NOT own the instance's canonical hash and shows the request
// being forwarded to its ring owner, resubmits the same problem with
// its indexes reordered to a third node and hits the owner's cache
// cluster-wide, inspects the per-peer health in /healthz and the
// idd_cluster_* counters in /metrics, runs a CP optimality proof big
// enough for idle peers to steal open subtrees from the owner, and
// finally stops one node to show gossip marking it down while the
// survivors keep serving.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"github.com/evolving-olap/idd/internal/cluster"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/service"
)

func main() {
	log.SetFlags(0)

	// --- Start three peered nodes, listeners first so every node knows
	// the full membership before it serves.
	const k = 3
	listeners := make([]net.Listener, k)
	urls := make([]string, k)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*cluster.Node, k)
	srvs := make([]*http.Server, k)
	for i := range nodes {
		node, err := cluster.New(cluster.Config{
			Self:           urls[i],
			Peers:          urls,
			GossipInterval: 100 * time.Millisecond,
			StealInterval:  25 * time.Millisecond,
		}, service.Config{Workers: 1, DefaultBudget: 5 * time.Second, MaxBudget: 60 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		srvs[i] = &http.Server{Handler: node.Handler()}
		go srvs[i].Serve(listeners[i])
		node.Start()
		log.Printf("node %d: %s is %s", i, urls[i], node.Name())
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for i := range nodes {
			if nodes[i] == nil {
				continue
			}
			srvs[i].Close()
			nodes[i].Close()
			nodes[i].Server().Shutdown(ctx)
		}
	}()
	waitConverged(nodes)
	log.Printf("gossip converged: every node sees %d peers up\n", k-1)

	// --- Sharded routing: find a node that does NOT own this instance
	// and submit there. The non-owner forwards to the ring owner.
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 10
	in := randgen.New(rand.New(rand.NewSource(7)), cfg)

	res := postSolve(urls[2], in, "5s")
	log.Printf("solve via %s: objective %.1f, proved %v", nodes[2].Name(), res["objective"], res["proved"])
	for i, n := range nodes {
		s := n.Snapshot()
		if s.Forwards > 0 {
			log.Printf("node %d (%s) forwarded %d request(s) to the ring owner", i, n.Name(), s.Forwards)
		}
	}

	// --- The cache is cluster-wide: the same problem with its index
	// slice reversed (and every integer reference relabeled accordingly)
	// canonicalizes to the same hash, so any node serves it from the
	// owner's cache.
	res = postSolve(urls[0], reverseIndexes(in), "5s")
	log.Printf("reordered resubmission via %s: cache_hit=%v, same objective %.1f\n",
		nodes[0].Name(), res["cache_hit"] == true, res["objective"])

	// --- Cross-node work-stealing: a proof large enough to leave open
	// subtrees lets idle peers adopt some of the search. The owner's
	// counter keeps the certificate sound; the objective is what a
	// single node would prove.
	cfg = randgen.DefaultConfig()
	cfg.Indexes = 18
	cfg.Queries = 13
	cfg.BuildInteractionProb = 0.35
	big := randgen.New(rand.New(rand.NewSource(33)), cfg)
	body, _ := json.Marshal(map[string]any{
		"instance": big,
		"budget":   "45s",
		"backends": []string{"cp"},
		"params":   map[string]any{"cp.workers": 2},
	})
	resp, err := http.Post(urls[1]+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var proof map[string]any
	json.NewDecoder(resp.Body).Decode(&proof)
	resp.Body.Close()
	log.Printf("cp proof: objective %.1f, proved %v", proof["objective"], proof["proved"])
	for i, n := range nodes {
		s := n.Snapshot()
		if s.StealsServed > 0 {
			log.Printf("node %d donated %d subtree(s); peers contributed %d search nodes", i, s.StealsServed, s.RemoteSearchNodes)
		}
		if s.RemoteSteals > 0 {
			log.Printf("node %d stole %d subtree(s) and searched %d nodes for its peers", i, s.RemoteSteals, s.HelperSearchNodes)
		}
	}
	log.Println()

	// --- Failure: stop node 2. Gossip marks it down everywhere; the
	// survivors keep serving, falling back to local solves for keys it
	// owned.
	srvs[2].Close()
	nodes[2].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	nodes[2].Server().Shutdown(ctx)
	cancel()
	down := nodes[2].Name()
	nodes[2] = nil
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := nodes[0].Snapshot()
		sawDown := false
		for _, p := range s.Peers {
			if p.Name == down && p.State == "down" {
				sawDown = true
			}
		}
		if sawDown || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Printf("stopped %s; node 0 health now:", down)
	for _, p := range nodes[0].Snapshot().Peers {
		log.Printf("  peer %s (%s): %s", p.Name, p.Addr, p.State)
	}
	small := randgen.DefaultConfig()
	small.Indexes = 10
	in2 := randgen.New(rand.New(rand.NewSource(8)), small)
	res = postSolve(urls[0], in2, "5s")
	log.Printf("solve with a member down still works: proved %v (local fallback if %s owned it)", res["proved"], down)
}

func waitConverged(nodes []*cluster.Node) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			for _, p := range n.Snapshot().Peers {
				if p.State != "up" {
					ok = false
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("gossip did not converge")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// reverseIndexes returns the same problem with the index slice reversed
// and plan / build-interaction / precedence references relabeled to
// match — a different byte encoding of the same canonical instance.
func reverseIndexes(in *model.Instance) *model.Instance {
	n := len(in.Indexes)
	perm := make([]int, n)
	out := &model.Instance{
		Indexes: make([]model.Index, n),
		Queries: append([]model.Query(nil), in.Queries...),
	}
	for i := range in.Indexes {
		perm[i] = n - 1 - i
		out.Indexes[perm[i]] = in.Indexes[i]
	}
	for _, p := range in.Plans {
		idx := make([]int, len(p.Indexes))
		for k, i := range p.Indexes {
			idx[k] = perm[i]
		}
		out.Plans = append(out.Plans, model.Plan{Query: p.Query, Indexes: idx, Speedup: p.Speedup})
	}
	for _, b := range in.BuildInteractions {
		out.BuildInteractions = append(out.BuildInteractions, model.BuildInteraction{
			Target: perm[b.Target], Helper: perm[b.Helper], Speedup: b.Speedup,
		})
	}
	for _, pr := range in.Precedences {
		out.Precedences = append(out.Precedences, model.Precedence{Before: perm[pr.Before], After: perm[pr.After]})
	}
	return out
}

func postSolve(base string, in *model.Instance, budget string) map[string]any {
	body, _ := json.Marshal(map[string]any{"instance": in, "budget": budget})
	resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s/solve: HTTP %d: %v", base, resp.StatusCode, out)
	}
	return out
}
