// Evolving warehouse: the paper's Incremental Database Design vision
// (§1.1, Figure 1) end to end. A warehouse lives through three business
// eras — launch analytics, a customer-segmentation push, and a regional
// reorganization — and each era the driver proposes a design, drops what
// the new workload no longer needs, and deploys the delta in optimized
// order.
//
//	go run ./examples/evolving_warehouse
package main

import (
	"fmt"
	"math/rand"

	"github.com/evolving-olap/idd/internal/advisor"
	"github.com/evolving-olap/idd/internal/evolve"
	"github.com/evolving-olap/idd/internal/sql"
)

func cr(t, c string) sql.ColRef { return sql.ColRef{Table: t, Column: c} }

func main() {
	schema := &sql.Schema{
		Name: "shop",
		Tables: []*sql.Table{
			{Name: "orders", Rows: 10_000_000, Columns: []sql.Column{
				{Name: "order_id", Distinct: 10_000_000, Width: 8},
				{Name: "cust_id", Distinct: 800_000, Width: 8},
				{Name: "day", Distinct: 1_500, Width: 4},
				{Name: "status", Distinct: 6, Width: 4},
				{Name: "region", Distinct: 40, Width: 4},
				{Name: "total", Distinct: 100_000, Width: 8},
			}},
			{Name: "customers", Rows: 800_000, Columns: []sql.Column{
				{Name: "cust_id", Distinct: 800_000, Width: 8},
				{Name: "segment", Distinct: 10, Width: 4},
				{Name: "signup_day", Distinct: 2_000, Width: 4},
			}},
		},
	}

	era1 := []*sql.Query{{
		Name:   "daily_status",
		Tables: []string{"orders"},
		Predicates: []sql.Predicate{
			{Col: cr("orders", "day"), Kind: sql.Range, Selectivity: 0.01},
			{Col: cr("orders", "status"), Kind: sql.Eq, Selectivity: 0.17},
		},
		Select: []sql.ColRef{cr("orders", "total")},
	}}
	era2 := append(era1[:1:1], &sql.Query{
		Name:   "segment_value",
		Tables: []string{"orders", "customers"},
		Predicates: []sql.Predicate{
			{Col: cr("customers", "segment"), Kind: sql.Eq, Selectivity: 0.1},
		},
		Joins:   []sql.Join{{Left: cr("orders", "cust_id"), Right: cr("customers", "cust_id")}},
		GroupBy: []sql.ColRef{cr("customers", "segment")},
		Select:  []sql.ColRef{cr("orders", "total")},
	})
	era3 := []*sql.Query{{
		Name:   "region_rollup",
		Tables: []string{"orders"},
		Predicates: []sql.Predicate{
			{Col: cr("orders", "region"), Kind: sql.Eq, Selectivity: 1.0 / 40},
		},
		GroupBy: []sql.ColRef{cr("orders", "region")},
		Select:  []sql.ColRef{cr("orders", "total")},
	}}

	steps, err := evolve.Run([]evolve.Round{
		{Name: "launch", Schema: schema, Queries: era1},
		{Name: "segmentation-push", Schema: schema, Queries: era2},
		{Name: "regional-reorg", Schema: schema, Queries: era3},
	}, evolve.Options{
		Advisor:    advisor.Options{MaxIndexes: 6},
		OrderSteps: 20000,
		Rng:        rand.New(rand.NewSource(1)),
	})
	if err != nil {
		panic(err)
	}

	for _, st := range steps {
		fmt.Printf("=== era %q ===\n", st.Round)
		fmt.Printf("workload runtime: %.0f -> %.0f\n", st.RuntimeBefore, st.RuntimeAfter)
		for _, d := range st.Dropped {
			fmt.Printf("  drop   %s\n", d.Name())
		}
		for k, d := range st.Deployed {
			fmt.Printf("  deploy %d. %s\n", k+1, d.Name())
		}
		if len(st.Deployed) == 0 && len(st.Dropped) == 0 {
			fmt.Println("  (design already optimal for this workload)")
		}
		fmt.Println()
	}
}
