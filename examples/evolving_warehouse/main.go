// Evolving warehouse: the paper's Incremental Database Design vision
// (§1.1, Figure 1) end to end. A warehouse lives through three business
// eras — launch analytics, a customer-segmentation push, and a regional
// reorganization — and each era the driver proposes a design, drops what
// the new workload no longer needs, and deploys the delta in optimized
// order.
//
// The second half replays the same loop against a live iddserver: the
// era-2 workload becomes a re-solve session, a weight shift re-solves
// warm-started from the pinned plan, and marking the first index built
// shrinks the plan to the remaining tail — the online form of the
// driver above.
//
//	go run ./examples/evolving_warehouse
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"github.com/evolving-olap/idd/internal/advisor"
	"github.com/evolving-olap/idd/internal/evolve"
	"github.com/evolving-olap/idd/internal/service"
	"github.com/evolving-olap/idd/internal/sql"
)

func cr(t, c string) sql.ColRef { return sql.ColRef{Table: t, Column: c} }

func main() {
	schema := &sql.Schema{
		Name: "shop",
		Tables: []*sql.Table{
			{Name: "orders", Rows: 10_000_000, Columns: []sql.Column{
				{Name: "order_id", Distinct: 10_000_000, Width: 8},
				{Name: "cust_id", Distinct: 800_000, Width: 8},
				{Name: "day", Distinct: 1_500, Width: 4},
				{Name: "status", Distinct: 6, Width: 4},
				{Name: "region", Distinct: 40, Width: 4},
				{Name: "total", Distinct: 100_000, Width: 8},
			}},
			{Name: "customers", Rows: 800_000, Columns: []sql.Column{
				{Name: "cust_id", Distinct: 800_000, Width: 8},
				{Name: "segment", Distinct: 10, Width: 4},
				{Name: "signup_day", Distinct: 2_000, Width: 4},
			}},
		},
	}

	era1 := []*sql.Query{{
		Name:   "daily_status",
		Tables: []string{"orders"},
		Predicates: []sql.Predicate{
			{Col: cr("orders", "day"), Kind: sql.Range, Selectivity: 0.01},
			{Col: cr("orders", "status"), Kind: sql.Eq, Selectivity: 0.17},
		},
		Select: []sql.ColRef{cr("orders", "total")},
	}}
	era2 := append(era1[:1:1], &sql.Query{
		Name:   "segment_value",
		Tables: []string{"orders", "customers"},
		Predicates: []sql.Predicate{
			{Col: cr("customers", "segment"), Kind: sql.Eq, Selectivity: 0.1},
		},
		Joins:   []sql.Join{{Left: cr("orders", "cust_id"), Right: cr("customers", "cust_id")}},
		GroupBy: []sql.ColRef{cr("customers", "segment")},
		Select:  []sql.ColRef{cr("orders", "total")},
	})
	era3 := []*sql.Query{{
		Name:   "region_rollup",
		Tables: []string{"orders"},
		Predicates: []sql.Predicate{
			{Col: cr("orders", "region"), Kind: sql.Eq, Selectivity: 1.0 / 40},
		},
		GroupBy: []sql.ColRef{cr("orders", "region")},
		Select:  []sql.ColRef{cr("orders", "total")},
	}}

	steps, err := evolve.Run([]evolve.Round{
		{Name: "launch", Schema: schema, Queries: era1},
		{Name: "segmentation-push", Schema: schema, Queries: era2},
		{Name: "regional-reorg", Schema: schema, Queries: era3},
	}, evolve.Options{
		Advisor:    advisor.Options{MaxIndexes: 6},
		OrderSteps: 20000,
		Rng:        rand.New(rand.NewSource(1)),
	})
	if err != nil {
		panic(err)
	}

	for _, st := range steps {
		fmt.Printf("=== era %q ===\n", st.Round)
		fmt.Printf("workload runtime: %.0f -> %.0f\n", st.RuntimeBefore, st.RuntimeAfter)
		for _, d := range st.Dropped {
			fmt.Printf("  drop   %s\n", d.Name())
		}
		for k, d := range st.Deployed {
			fmt.Printf("  deploy %d. %s\n", k+1, d.Name())
		}
		if len(st.Deployed) == 0 && len(st.Dropped) == 0 {
			fmt.Println("  (design already optimal for this workload)")
		}
		fmt.Println()
	}

	// The same loop, served. Stand up the solve service in-process and
	// drive its session API: the era-2 workload is pinned as a session,
	// then drifts instead of being re-tuned from scratch.
	inst, _, err := advisor.BuildInstance("shop-era2", schema, era2,
		advisor.Options{MaxIndexes: 6})
	if err != nil {
		panic(err)
	}
	srv := httptest.NewServer(service.New(service.Config{
		Workers: 2, DefaultBudget: 2 * time.Second, MaxBudget: 10 * time.Second,
	}).Handler())
	defer srv.Close()

	fmt.Println("=== online re-solve session (era 2 workload) ===")
	var sess struct {
		ID   string   `json:"id"`
		Plan []string `json:"plan"`
	}
	post(srv, "/sessions", map[string]any{"instance": inst, "budget": "5s"}, &sess)
	fmt.Printf("session %s pinned plan: %v\n", sess.ID, sess.Plan)

	// The segmentation push triples segment_value's weight: weight-only
	// drift, re-solved warm-started from the pinned plan.
	var delta struct {
		Plan     []string `json:"plan"`
		TailFrom int      `json:"tail_from"`
		Tail     []string `json:"tail"`
		Result   *struct {
			WarmStarted bool `json:"warm_started"`
		} `json:"result"`
	}
	post(srv, "/sessions/"+sess.ID+"/delta",
		map[string]any{"weights": map[string]float64{"segment_value": 3}}, &delta)
	fmt.Printf("weight drift: warm_started=%v, plan keeps %d-index prefix, re-schedules tail %v\n",
		delta.Result != nil && delta.Result.WarmStarted, delta.TailFrom, delta.Tail)

	// The first index goes live; the session projects it out and the plan
	// shrinks to what is still to build.
	if len(delta.Plan) > 0 {
		built := delta.Plan[0]
		post(srv, "/sessions/"+sess.ID+"/delta",
			map[string]any{"built": []string{built}}, &delta)
		fmt.Printf("after building %s: remaining plan %v\n", built, delta.Plan)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sessions/"+sess.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Println("session closed")
}

// post sends a JSON body and decodes the JSON response, panicking on
// any failure — example-grade error handling.
func post(srv *httptest.Server, path string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		panic(fmt.Sprintf("POST %s: %s: %s", path, resp.Status, msg.String()))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}
