// Joint design: the paper's §9 future work — choosing *which* indexes to
// deploy and *in what order* as one optimization. Runs the jointsel
// horizon optimizer over the full TPC-H candidate design at three
// planning horizons, showing the size/latency trade-off an integrated
// tool exposes to the DBA.
//
//	go run ./examples/joint_design
package main

import (
	"fmt"
	"math/rand"

	"github.com/evolving-olap/idd/internal/datasets"
	"github.com/evolving-olap/idd/internal/jointsel"
	"github.com/evolving-olap/idd/internal/model"
)

func main() {
	in := datasets.TPCH()
	c := model.MustCompile(in)
	fmt.Printf("candidate design: %d indexes, total build cost %.0f, workload runtime %.0f\n\n",
		in.N(), in.TotalCreateCost(), c.Base)

	for _, mult := range []float64{0.05, 0.5, 25} {
		horizon := mult * in.TotalCreateCost()
		res := jointsel.Solve(c, jointsel.Options{
			Horizon:     horizon,
			Refine:      true,
			RefineSteps: 30000,
			Rng:         rand.New(rand.NewSource(1)),
		})
		subC := model.MustCompile(res.Sub)
		order := subOrder(res)
		_, deploy, final := subC.Evaluate(order)
		fmt.Printf("horizon %6.0f (%gx build budget): deploy %2d of %d indexes  "+
			"(work %7.1f, runtime %.0f -> %.0f)\n",
			horizon, mult, len(res.Selected), in.N(), deploy, c.Base, final)
		for k, ix := range res.Selected {
			if k >= 5 {
				fmt.Printf("      ... and %d more\n", len(res.Selected)-5)
				break
			}
			fmt.Printf("      %d. %s\n", k+1, in.Indexes[ix].Name)
		}
		fmt.Println()
	}
	fmt.Println("short horizons keep the design lean (only instant winners);")
	fmt.Println("long horizons amortize expensive covering indexes.")
}

// subOrder maps the deployment order (full-instance positions) onto the
// projected sub-instance's positions.
func subOrder(res jointsel.Result) []int {
	sorted := append([]int(nil), res.Selected...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	pos := map[int]int{}
	for subPos, full := range sorted {
		pos[full] = subPos
	}
	out := make([]int, len(res.Selected))
	for k, full := range res.Selected {
		out[k] = pos[full]
	}
	return out
}
