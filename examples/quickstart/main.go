// Quickstart: build a small deployment-ordering instance by hand, solve
// it exactly and with VNS, and print the improvement curves — the
// 60-second tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
)

func main() {
	// The iZunes-flavored example from the paper's Figure 2: a narrow
	// index ix_lang_reg can be built cheaply *from* the wide covering
	// index ix_lang_age_reg, and the wide index serves the roll-up query
	// best — so deployment order matters twice.
	in := &model.Instance{
		Name: "quickstart",
		Indexes: []model.Index{
			{Name: "ix_lang_reg", Table: "users", Columns: []string{"lang", "region"}, CreateCost: 40},
			{Name: "ix_lang_age_reg", Table: "users", Columns: []string{"lang", "age", "region"}, CreateCost: 90},
			{Name: "ix_country", Table: "users", Columns: []string{"country"}, CreateCost: 60},
			{Name: "ix_cust_countries", Table: "cust_countries", Columns: []string{"custid"}, CreateCost: 30},
		},
		Queries: []model.Query{
			{Name: "rollup_by_age", Runtime: 300},
			{Name: "regional_sales", Runtime: 200},
			{Name: "country_report", Runtime: 250},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 60},  // narrow index helps a bit
			{Query: 0, Indexes: []int{1}, Speedup: 220}, // covering index wins (competing)
			{Query: 1, Indexes: []int{0}, Speedup: 120},
			{Query: 2, Indexes: []int{2, 3}, Speedup: 200}, // join needs both (query interaction)
		},
		BuildInteractions: []model.BuildInteraction{
			// Build the narrow index from the wide one: 75% cheaper.
			{Target: 0, Helper: 1, Speedup: 30},
			// And the wide one sorts faster when the narrow one exists.
			{Target: 1, Helper: 0, Speedup: 25},
		},
	}
	c := model.MustCompile(in)

	// A plausible-but-bad order: biggest index first, the join pair
	// split across the schedule.
	naive := []int{1, 2, 0, 3}
	fmt.Println("naive order (big index first):")
	printCurve(c, in, naive)

	opt, err := bruteforce.Solve(c, nil, true)
	if err != nil {
		panic(err)
	}
	fmt.Println("\noptimal order (exhaustive search):")
	printCurve(c, in, opt.Order)

	// On large instances exhaustive search is hopeless; greedy + VNS is
	// the workflow the paper recommends.
	res := local.VNS(c, nil, local.Options{
		Initial: greedy.Solve(c, nil),
		Budget:  200 * time.Millisecond,
		Rng:     rand.New(rand.NewSource(1)),
	})
	fmt.Printf("\nVNS found objective %.0f (optimum %.0f) in %d steps\n",
		res.Objective, opt.Objective, res.Steps)
}

func printCurve(c *model.Compiled, in *model.Instance, order []int) {
	obj, deploy, final := c.Evaluate(order)
	fmt.Printf("  objective %.0f, deployment time %.0f, runtime %.0f -> %.0f\n",
		obj, deploy, c.Base, final)
	for _, pt := range c.Curve(order) {
		fmt.Printf("    t=%5.0f  runtime=%5.0f  after %s\n", pt.Elapsed, pt.Runtime, in.Indexes[pt.Index].Name)
	}
}
