// Recovery: the paper's §1.1 real-time recovery use case. A node of a
// distributed warehouse dies and the indexes it hosted are gone; the
// DBA wants them back in the order that restores query performance
// fastest. We take the TPC-H design, "lose" a third of its indexes, and
// order the rebuild — comparing a naive rebuild against the optimized
// order.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/evolving-olap/idd/internal/datasets"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
)

func main() {
	full := datasets.TPCH()
	rng := rand.New(rand.NewSource(42))

	// The failed node hosted a random third of the indexes. The
	// surviving two thirds are "already deployed": from the ordering
	// problem's point of view the lost ones form a fresh instance whose
	// plans may also reference surviving indexes — model that by keeping
	// plans whose missing indexes are all lost ones, with surviving
	// indexes treated as free (their part of the plan is already built).
	lost := map[int]bool{}
	for len(lost) < full.N()/3 {
		lost[rng.Intn(full.N())] = true
	}
	in := rebuildInstance(full, lost)
	fmt.Printf("node failure: %d of %d indexes lost; rebuild instance %v\n",
		len(lost), full.N(), in.Stats())

	c := model.MustCompile(in)
	cs, rep := prune.Analyze(c, prune.Options{})
	fmt.Printf("§5 analysis: %v\n", rep)

	naive := make([]int, c.N) // rebuild in catalog order
	for i := range naive {
		naive[i] = i
	}
	naiveObj, naiveDeploy, _ := c.Evaluate(naive)

	res := local.VNS(c, cs, local.Options{
		Initial: greedy.Solve(c, cs),
		Budget:  time.Second,
		Rng:     rand.New(rand.NewSource(1)),
	})
	obj, deploy, final := c.Evaluate(res.Order)

	fmt.Printf("\ncatalog-order rebuild: objective %12.0f, deployment %7.1f\n", naiveObj, naiveDeploy)
	fmt.Printf("optimized rebuild:     objective %12.0f, deployment %7.1f (%.1f%% less area)\n",
		obj, deploy, 100*(1-obj/naiveObj))
	fmt.Printf("degraded runtime %.1f recovers to %.1f; rebuild order:\n", c.Base, final)
	for k, ix := range res.Order {
		fmt.Printf("  %2d. %s\n", k+1, in.Indexes[ix].Name)
	}
}

// rebuildInstance projects the full instance onto the lost indexes:
// surviving indexes count as already built, so plans needing only lost
// indexes (plus survivors) stay relevant, and the baseline runtime is
// the degraded runtime with survivors only.
func rebuildInstance(full *model.Instance, lost map[int]bool) *model.Instance {
	remap := make([]int, full.N())
	out := &model.Instance{Name: full.Name + "-recovery"}
	for i := range remap {
		remap[i] = -1
	}
	for i := 0; i < full.N(); i++ {
		if lost[i] {
			remap[i] = len(out.Indexes)
			out.Indexes = append(out.Indexes, full.Indexes[i])
		}
	}
	// Degraded per-query runtime: best plan among survivors-only plans.
	base := make([]float64, len(full.Queries))
	for q, qu := range full.Queries {
		base[q] = qu.Runtime
	}
	for _, p := range full.Plans {
		allSurvive := true
		for _, ix := range p.Indexes {
			if lost[ix] {
				allSurvive = false
				break
			}
		}
		if allSurvive {
			if r := full.Queries[p.Query].Runtime - p.Speedup; r < base[p.Query] {
				base[p.Query] = r
			}
		}
	}
	for q, qu := range full.Queries {
		out.Queries = append(out.Queries, model.Query{Name: qu.Name, Runtime: base[q], Weight: qu.Weight})
	}
	// Plans that need at least one lost index: project onto lost ones;
	// the speedup is measured against the degraded runtime.
	for _, p := range full.Plans {
		var needed []int
		for _, ix := range p.Indexes {
			if lost[ix] {
				needed = append(needed, remap[ix])
			}
		}
		if len(needed) == 0 {
			continue
		}
		spd := full.Queries[p.Query].Runtime - p.Speedup // plan's absolute runtime
		gain := base[p.Query] - spd
		if gain <= 1e-9 {
			continue // no better than what survivors already deliver
		}
		out.Plans = append(out.Plans, model.Plan{Query: p.Query, Indexes: needed, Speedup: gain})
	}
	// Surviving helpers are available from the start, so their best
	// discount folds directly into the rebuild cost...
	for _, b := range full.BuildInteractions {
		if !lost[b.Target] || lost[b.Helper] {
			continue
		}
		cc := &out.Indexes[remap[b.Target]].CreateCost
		if reduced := full.Indexes[b.Target].CreateCost - b.Speedup; reduced < *cc {
			*cc = reduced
		}
	}
	// ...while interactions between two lost indexes remain dynamic.
	// A lost-lost discount can exceed the already-reduced rebuild cost
	// (the model caps a discount at its target's cost), so clamp.
	for _, b := range full.BuildInteractions {
		if !lost[b.Target] || !lost[b.Helper] {
			continue
		}
		cost := out.Indexes[remap[b.Target]].CreateCost
		spd := b.Speedup
		if spd >= cost {
			spd = 0.9 * cost
		}
		if spd <= 0 {
			continue
		}
		out.BuildInteractions = append(out.BuildInteractions, model.BuildInteraction{
			Target: remap[b.Target], Helper: remap[b.Helper], Speedup: spd,
		})
	}
	for _, pr := range full.Precedences {
		if lost[pr.Before] && lost[pr.After] {
			out.Precedences = append(out.Precedences, model.Precedence{
				Before: remap[pr.Before], After: remap[pr.After],
			})
		}
	}
	if err := out.Validate(); err != nil {
		panic(err)
	}
	return out
}
