// Schema evolution: the paper's §1 iZunes scenario. A business change
// turns CUSTOMER.COUNTRY into an n:n CUST_COUNTRIES table; every report
// query changes, the old physical design is invalidated, and a batch of
// new indexes must be deployed. This example runs the whole pipeline —
// workload definition, what-if candidate selection, matrix extraction,
// §5 analysis, and VNS ordering — on the post-evolution schema.
//
//	go run ./examples/schema_evolution
package main

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/evolving-olap/idd/internal/advisor"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
	"github.com/evolving-olap/idd/internal/sql"
)

func main() {
	schema := &sql.Schema{
		Name: "izunes-v2",
		Tables: []*sql.Table{
			{Name: "customer", Rows: 5_000_000, Columns: []sql.Column{
				{Name: "custid", Distinct: 5_000_000, Width: 8},
				{Name: "name", Distinct: 4_000_000, Width: 24},
				{Name: "signup_date", Distinct: 3_000, Width: 4},
				{Name: "plan_tier", Distinct: 4, Width: 4},
			}},
			// The evolution: COUNTRY moved out of CUSTOMER into an n:n
			// bridge table.
			{Name: "cust_countries", Rows: 8_000_000, Columns: []sql.Column{
				{Name: "custid", Distinct: 5_000_000, Width: 8},
				{Name: "country", Distinct: 120, Width: 4},
			}},
			{Name: "purchases", Rows: 80_000_000, Columns: []sql.Column{
				{Name: "purchase_id", Distinct: 80_000_000, Width: 8},
				{Name: "custid", Distinct: 5_000_000, Width: 8},
				{Name: "track_id", Distinct: 2_000_000, Width: 8},
				{Name: "day", Distinct: 2_500, Width: 4},
				{Name: "price", Distinct: 200, Width: 8},
			}},
		},
	}
	cr := func(t, c string) sql.ColRef { return sql.ColRef{Table: t, Column: c} }
	queries := []*sql.Query{
		{ // the rewritten roll-up report: now joins through the bridge
			Name:   "rollup_by_country",
			Tables: []string{"customer", "cust_countries", "purchases"},
			Joins: []sql.Join{
				{Left: cr("customer", "custid"), Right: cr("cust_countries", "custid")},
				{Left: cr("customer", "custid"), Right: cr("purchases", "custid")},
			},
			Predicates: []sql.Predicate{
				{Col: cr("purchases", "day"), Kind: sql.Range, Selectivity: 0.03},
			},
			GroupBy: []sql.ColRef{cr("cust_countries", "country")},
			Select:  []sql.ColRef{cr("purchases", "price")},
		},
		{
			Name:   "country_top_tracks",
			Tables: []string{"cust_countries", "purchases"},
			Joins: []sql.Join{
				{Left: cr("cust_countries", "custid"), Right: cr("purchases", "custid")},
			},
			Predicates: []sql.Predicate{
				{Col: cr("cust_countries", "country"), Kind: sql.Eq, Selectivity: 1.0 / 120},
			},
			GroupBy: []sql.ColRef{cr("purchases", "track_id")},
			Select:  []sql.ColRef{cr("purchases", "price")},
		},
		{
			Name:   "tier_growth",
			Tables: []string{"customer"},
			Predicates: []sql.Predicate{
				{Col: cr("customer", "plan_tier"), Kind: sql.Eq, Selectivity: 0.25},
				{Col: cr("customer", "signup_date"), Kind: sql.Range, Selectivity: 0.02},
			},
			Select: []sql.ColRef{cr("customer", "name")},
		},
	}

	in, defs, err := advisor.BuildInstance("izunes-v2", schema, queries, advisor.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("post-evolution design: %d indexes, %v\n", in.N(), in.Stats())
	for i, d := range defs {
		fmt.Printf("  %2d. %-55s build cost %7.1f\n", i+1, d.Name(), in.Indexes[i].CreateCost)
	}

	c := model.MustCompile(in)
	cs, rep := prune.Analyze(c, prune.Options{})
	fmt.Printf("\n§5 analysis: %v\n", rep)

	res := local.VNS(c, cs, local.Options{
		Initial: greedy.Solve(c, cs),
		Budget:  500 * time.Millisecond,
		Rng:     rand.New(rand.NewSource(7)),
	})
	fmt.Printf("\ndeployment order (objective %.0f, vs %.0f for declaration order):\n",
		res.Objective, c.Objective(identity(c.N)))
	for k, ix := range res.Order {
		fmt.Printf("  %2d. %s\n", k+1, in.Indexes[ix].Name)
	}
	_, deploy, final := c.Evaluate(res.Order)
	fmt.Printf("workload runtime %.0f -> %.0f after %.0f units of deployment work\n",
		c.Base, final, deploy)
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
