// Example service: a client walkthrough of the iddserver HTTP API.
//
// The example starts the service in-process on a loopback listener (so
// it runs standalone, without a separately launched iddserver), then
// acts as a plain HTTP client: it submits an async solve job, follows
// the job's server-sent-event stream while the portfolio races, prints
// every incumbent improvement as it lands, fetches the final result,
// and demonstrates the canonical-hash cache by resubmitting the same
// instance with its indexes relabeled.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/service"
)

func main() {
	// A local service, exactly what `iddserver -addr :8080` would run.
	srv := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// A random 7-index instance whose greedy seed is suboptimal, so the
	// event stream shows real incumbent improvements.
	in := randInstance()

	// 1. Submit an async job: POST /jobs with the JSON envelope.
	body, _ := json.Marshal(map[string]any{
		"instance": in,
		"budget":   "10s",
		"backends": []string{"cp"},
	})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted job %s (state %s)\n", job.ID, job.State)

	// 2. Stream progress: GET /jobs/{id}/events (server-sent events).
	stream, err := http.Get(ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Type      string   `json:"type"`
			Backend   string   `json:"backend"`
			Objective *float64 `json:"objective"`
			State     string   `json:"state"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Type {
		case "incumbent":
			fmt.Printf("  incumbent improved to %.2f (by %s)\n", *ev.Objective, ev.Backend)
		case "proved":
			fmt.Printf("  proved optimal at %.2f (by %s)\n", *ev.Objective, ev.Backend)
		case "done":
			fmt.Printf("  job finished: %s\n", ev.State)
		}
	}
	stream.Body.Close()

	// 3. Fetch the result: GET /jobs/{id}.
	resp, err = http.Get(ts.URL + "/jobs/" + job.ID)
	if err != nil {
		log.Fatal(err)
	}
	var status struct {
		Result *service.SolveResult `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("deployment order (objective %.2f, proved=%t): %s\n",
		status.Result.Objective, status.Result.Proved, strings.Join(status.Result.Names, " -> "))

	// 4. Same problem, different labeling: the canonical hash routes it
	// to the solution cache — no second solve happens.
	body, _ = json.Marshal(map[string]any{
		"instance": reversed(in), "budget": "10s", "backends": []string{"cp"},
	})
	resp, err = http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var again service.SolveResult
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("relabeled resubmission: cache_hit=%t, objective %.2f\n", again.CacheHit, again.Objective)
}

func randInstance() *model.Instance {
	rng := rand.New(rand.NewSource(2))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 7
	cfg.Queries = 6
	return randgen.New(rng, cfg)
}

// reversed writes the same instance with index positions reversed and
// every reference remapped.
func reversed(in *model.Instance) *model.Instance {
	n := len(in.Indexes)
	ip := func(i int) int { return n - 1 - i }
	out := &model.Instance{Name: in.Name, Indexes: make([]model.Index, n), Queries: in.Queries}
	for i, ix := range in.Indexes {
		out.Indexes[ip(i)] = ix
	}
	for _, p := range in.Plans {
		idx := make([]int, len(p.Indexes))
		for k, i := range p.Indexes {
			idx[k] = ip(i)
		}
		out.Plans = append(out.Plans, model.Plan{Query: p.Query, Indexes: idx, Speedup: p.Speedup})
	}
	for _, b := range in.BuildInteractions {
		out.BuildInteractions = append(out.BuildInteractions, model.BuildInteraction{
			Target: ip(b.Target), Helper: ip(b.Helper), Speedup: b.Speedup,
		})
	}
	for _, pr := range in.Precedences {
		out.Precedences = append(out.Precedences, model.Precedence{Before: ip(pr.Before), After: ip(pr.After)})
	}
	return out
}
