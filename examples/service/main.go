// Example service: a client walkthrough of the iddserver HTTP API.
//
// The example starts the service in-process on a loopback listener (so
// it runs standalone, without a separately launched iddserver), then
// acts as a plain HTTP client: it discovers the solver roster and its
// typed params through GET /solvers, shows the 400-with-valid-set
// response a typo'd param earns, submits an async solve job whose
// "params" map sizes the cp proof search, follows the job's
// server-sent-event stream while the portfolio races, prints every
// incumbent improvement as it lands, fetches the final result (with the
// cp.workers telemetry echoed back), and demonstrates the
// canonical-hash cache by resubmitting the same instance with its
// indexes relabeled.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/service"
)

func main() {
	// A local service, exactly what `iddserver -addr :8080` would run.
	srv := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// A random 7-index instance whose greedy seed is suboptimal, so the
	// event stream shows real incumbent improvements.
	in := randInstance()

	// 0. Discover the solver roster: GET /solvers lists every registered
	// backend with its kind and the typed params it accepts — the same
	// registry iddsolve -list-solvers prints.
	resp0, err := http.Get(ts.URL + "/solvers")
	if err != nil {
		log.Fatal(err)
	}
	var catalogue struct {
		Solvers []service.SolverInfo `json:"solvers"`
	}
	if err := json.NewDecoder(resp0.Body).Decode(&catalogue); err != nil {
		log.Fatal(err)
	}
	resp0.Body.Close()
	fmt.Printf("server registers %d solver backends:\n", len(catalogue.Solvers))
	for _, s := range catalogue.Solvers {
		fmt.Printf("  %-11s %-13s", s.Name, s.Kind)
		for _, p := range s.Params {
			fmt.Printf(" %s=<%s>", p.Name, p.Type)
		}
		fmt.Println()
	}

	// Params are validated against those specs at submission — a typo is
	// an immediate 400 naming the valid set, not a late job failure.
	bad, _ := json.Marshal(map[string]any{
		"instance": in, "params": map[string]any{"cp.wrokers": 4},
	})
	respBad, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(bad))
	if err != nil {
		log.Fatal(err)
	}
	var badBody struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(respBad.Body).Decode(&badBody)
	respBad.Body.Close()
	fmt.Printf("typo'd param -> %d: %s\n", respBad.StatusCode, badBody.Error)

	// 1. Submit an async job: POST /jobs with the JSON envelope. The
	// "params" map sizes cp's work-stealing proof search to 2 workers.
	body, _ := json.Marshal(map[string]any{
		"instance": in,
		"budget":   "10s",
		"backends": []string{"cp"},
		"params":   map[string]any{"cp.workers": 2},
	})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted job %s (state %s)\n", job.ID, job.State)

	// 2. Stream progress: GET /jobs/{id}/events (server-sent events).
	stream, err := http.Get(ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Type      string   `json:"type"`
			Backend   string   `json:"backend"`
			Objective *float64 `json:"objective"`
			State     string   `json:"state"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Type {
		case "incumbent":
			fmt.Printf("  incumbent improved to %.2f (by %s)\n", *ev.Objective, ev.Backend)
		case "proved":
			fmt.Printf("  proved optimal at %.2f (by %s)\n", *ev.Objective, ev.Backend)
		case "done":
			fmt.Printf("  job finished: %s\n", ev.State)
		}
	}
	stream.Body.Close()

	// 3. Fetch the result: GET /jobs/{id}.
	resp, err = http.Get(ts.URL + "/jobs/" + job.ID)
	if err != nil {
		log.Fatal(err)
	}
	var status struct {
		Result *service.SolveResult `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("deployment order (objective %.2f, proved=%t): %s\n",
		status.Result.Objective, status.Result.Proved, strings.Join(status.Result.Names, " -> "))
	for _, b := range status.Result.Backends {
		if b.Name == "cp" && b.Workers > 0 {
			fmt.Printf("cp proof ran %d branch-and-bound workers (from params cp.workers)\n", b.Workers)
		}
	}

	// 4. Same problem, different labeling: the canonical hash routes it
	// to the solution cache — no second solve happens. The knobs must
	// match too (params are part of the cache key: a cp.workers=4 run is
	// not a valid answer for a cp.workers=2 request).
	body, _ = json.Marshal(map[string]any{
		"instance": reversed(in), "budget": "10s", "backends": []string{"cp"},
		"params": map[string]any{"cp.workers": 2},
	})
	resp, err = http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var again service.SolveResult
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("relabeled resubmission: cache_hit=%t, objective %.2f\n", again.CacheHit, again.Objective)

	// 5. Batch solving: POST /batch fans N instances out as sub-solves
	// on the worker pool — each item is a real job (cache, dedup, own
	// /jobs/{id} endpoints), the batch adds an aggregate status and a
	// completion-ordered event stream. The X-Tenant header tags the
	// whole batch for fair scheduling against other tenants' traffic.
	instances := []*model.Instance{in, randSized(9), randSized(10), reversed(in)}
	body, _ = json.Marshal(map[string]any{
		"instances": instances,
		"budget":    "10s",
	})
	req, _ := http.NewRequest("POST", ts.URL+"/batch", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.TenantHeader, "examples")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var batch service.BatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted batch %s: %d items for tenant %s\n", batch.ID, len(batch.Items), batch.Tenant)

	// Follow the batch stream: one "item" event per finished sub-solve
	// (in completion order, not submission order), then "batch_done".
	// Note item 3 is item 0's instance relabeled — the canonical hash
	// dedups the pair: one solve serves both, and both items report
	// shared=true (single-flight), or cache_hit=true had the first
	// already finished.
	stream, err = http.Get(ts.URL + "/batch/" + batch.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc = bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Type      string   `json:"type"`
			Item      *int     `json:"item"`
			State     string   `json:"state"`
			Objective *float64 `json:"objective"`
			CacheHit  bool     `json:"cache_hit"`
			Shared    bool     `json:"shared"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Type {
		case "item":
			fmt.Printf("  item %d %s: objective %.2f (cache_hit=%t shared=%t)\n",
				*ev.Item, ev.State, *ev.Objective, ev.CacheHit, ev.Shared)
		case "batch_done":
			fmt.Println("  batch done")
		}
	}
	stream.Body.Close()

	// Small instances skip the portfolio race entirely: the feature
	// router sends them straight to one exact backend, proof included —
	// the result says so.
	resp, err = http.Get(ts.URL + "/batch/" + batch.ID)
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	routed := 0
	for _, item := range batch.Items {
		if item.Routed {
			routed++
		}
	}
	fmt.Printf("batch state %s: %d/%d items fast-path routed past the portfolio race\n",
		batch.State, routed, len(batch.Items))
}

// randSized is randInstance at a chosen size (distinct seeds per size,
// so batch items are genuinely different problems).
func randSized(n int) *model.Instance {
	rng := rand.New(rand.NewSource(int64(n)))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = n
	cfg.Queries = 3 + (3*n)/4
	return randgen.New(rng, cfg)
}

func randInstance() *model.Instance {
	rng := rand.New(rand.NewSource(2))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 7
	cfg.Queries = 6
	return randgen.New(rng, cfg)
}

// reversed writes the same instance with index positions reversed and
// every reference remapped.
func reversed(in *model.Instance) *model.Instance {
	n := len(in.Indexes)
	ip := func(i int) int { return n - 1 - i }
	out := &model.Instance{Name: in.Name, Indexes: make([]model.Index, n), Queries: in.Queries}
	for i, ix := range in.Indexes {
		out.Indexes[ip(i)] = ix
	}
	for _, p := range in.Plans {
		idx := make([]int, len(p.Indexes))
		for k, i := range p.Indexes {
			idx[k] = ip(i)
		}
		out.Plans = append(out.Plans, model.Plan{Query: p.Query, Indexes: idx, Speedup: p.Speedup})
	}
	for _, b := range in.BuildInteractions {
		out.BuildInteractions = append(out.BuildInteractions, model.BuildInteraction{
			Target: ip(b.Target), Helper: ip(b.Helper), Speedup: b.Speedup,
		})
	}
	for _, pr := range in.Precedences {
		out.Precedences = append(out.Precedences, model.Precedence{Before: ip(pr.Before), After: ip(pr.After)})
	}
	return out
}
