// Whatif: drive the simulated DBMS's what-if optimizer directly — the
// interface the paper's pipeline (Figure 3) is built on. Creates
// hypothetical indexes on the TPC-H schema, asks the optimizer for
// atomic configurations of Q3, and shows how removing the used indexes
// surfaces the competing (suboptimal) plans.
//
//	go run ./examples/whatif
package main

import (
	"fmt"

	"github.com/evolving-olap/idd/internal/dbsim"
	"github.com/evolving-olap/idd/internal/tpch"
)

func main() {
	schema := tpch.Schema()
	sim := dbsim.New(schema)
	q3 := tpch.Queries()[2] // customer ⋈ orders ⋈ lineitem

	universe := []dbsim.IndexDef{
		{Table: "customer", Key: []string{"c_mktsegment"}, Include: []string{"c_custkey"}},
		{Table: "orders", Key: []string{"o_custkey"}, Include: []string{"o_orderdate", "o_shippriority", "o_orderkey"}},
		{Table: "orders", Key: []string{"o_orderdate"}},
		{Table: "lineitem", Key: []string{"l_orderkey"}, Include: []string{"l_shipdate", "l_extendedprice", "l_discount"}},
		{Table: "lineitem", Key: []string{"l_shipdate"}},
	}
	for _, d := range universe {
		if err := d.Validate(schema); err != nil {
			panic(err)
		}
	}

	noIdx := sim.NoIndexCost(q3, universe)
	fmt.Printf("query %s without indexes: cost %.1f\n\n", q3.Name, noIdx)

	fmt.Println("atomic configurations (what-if enumeration):")
	for i, p := range sim.EnumeratePlans(q3, universe, 10) {
		fmt.Printf("  plan %d: cost %.1f (%.1f%% faster) using:\n", i+1, p.Cost, 100*(noIdx-p.Cost)/noIdx)
		for _, u := range p.Used {
			fmt.Printf("      %s\n", universe[u].Name())
		}
	}

	fmt.Println("\nbuild interactions among the hypothetical indexes:")
	for ti, tgt := range universe {
		for hi, hlp := range universe {
			if ti == hi {
				continue
			}
			if d := sim.BuildDiscount(tgt, hlp); d > 0 {
				full := sim.BuildCost(tgt)
				fmt.Printf("  %-42s is %4.0f%% cheaper after %s\n",
					tgt.Name(), 100*d/full, hlp.Name())
			}
		}
	}
}
