module github.com/evolving-olap/idd

go 1.24
