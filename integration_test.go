package idd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIIntegration builds the four command-line tools and exercises the
// generate → inspect → solve pipeline end to end on a reduced instance.
func TestCLIIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := t.TempDir()
	for _, tool := range []string{"iddgen", "iddsolve", "iddinspect", "iddbench"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, args ...string) string {
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	inst := filepath.Join(bin, "r13.json")
	out := run("iddgen", "-dataset", "tpch", "-reduce", "13", "-density", "low", "-o", inst)
	if !strings.Contains(out, "|I|=13") {
		t.Fatalf("iddgen output: %s", out)
	}
	if _, err := os.Stat(inst); err != nil {
		t.Fatal(err)
	}

	out = run("iddinspect", inst)
	for _, want := range []string{"|I|=13", "analysis:", "ordered pairs"} {
		if !strings.Contains(out, want) {
			t.Errorf("iddinspect missing %q:\n%s", want, out)
		}
	}

	out = run("iddsolve", "-method", "cp", "-budget", "10s", inst)
	if !strings.Contains(out, "proved optimal") {
		t.Errorf("iddsolve cp did not prove the reduced instance:\n%s", out)
	}
	if !strings.Contains(out, "objective:") {
		t.Errorf("iddsolve output malformed:\n%s", out)
	}

	out = run("iddsolve", "-method", "greedy", "-curve", inst)
	if !strings.Contains(out, "improvement curve") {
		t.Errorf("iddsolve -curve missing curve:\n%s", out)
	}

	// Registry surfaces: the roster listing, -param plumbing down to the
	// cp engine (visible as workers telemetry in the JSON report), and
	// the deprecated -cp-workers alias.
	out = run("iddsolve", "-list-solvers")
	for _, want := range []string{"cp.workers", "cp.tail_bound", "vns", "exact", "anytime"} {
		if !strings.Contains(out, want) {
			t.Errorf("iddsolve -list-solvers missing %q:\n%s", want, out)
		}
	}
	out = run("iddsolve", "-json", "-method", "cp", "-param", "cp.workers=2", "-budget", "10s", inst)
	if !strings.Contains(out, `"workers": 2`) {
		t.Errorf("-param cp.workers=2 did not reach the cp engine:\n%s", out)
	}
	out = run("iddsolve", "-json", "-method", "cp", "-cp-workers", "2", "-budget", "10s", inst)
	if !strings.Contains(out, `"workers": 2`) {
		t.Errorf("deprecated -cp-workers did not reach the cp engine:\n%s", out)
	}
	if raw, err := exec.Command(filepath.Join(bin, "iddsolve"), "-param", "nope=1", inst).CombinedOutput(); err == nil {
		t.Errorf("iddsolve accepted an unknown -param:\n%s", raw)
	} else if !strings.Contains(string(raw), "cp.workers") {
		t.Errorf("unknown -param error does not list the valid set:\n%s", raw)
	}

	// Text format round trip through the tools.
	txt := filepath.Join(bin, "r13.txt")
	run("iddgen", "-dataset", "tpch", "-reduce", "13", "-density", "low", "-o", txt)
	out = run("iddsolve", "-method", "vns", "-budget", "1s", "-seed", "3", txt)
	if !strings.Contains(out, "order:") {
		t.Errorf("text-format solve failed:\n%s", out)
	}

	// iddbench single experiment with a tiny budget.
	out = run("iddbench", "-only", "table7")
	if !strings.Contains(out, "Greedy") || !strings.Contains(out, "tpcds") {
		t.Errorf("iddbench table7 output:\n%s", out)
	}
}

// TestExamplesRun executes the fast examples end to end (the heavier
// ones — recovery, joint_design, evolving_warehouse — are covered by
// their underlying package tests).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, ex := range []struct {
		dir  string
		want string
	}{
		{"quickstart", "optimal order"},
		{"whatif", "atomic configurations"},
		{"schema_evolution", "deployment order"},
		{"service", "cache_hit=true"},
	} {
		ex := ex
		t.Run(ex.dir, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+ex.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			if !strings.Contains(string(out), ex.want) {
				t.Errorf("output missing %q:\n%s", ex.want, out)
			}
		})
	}
}
