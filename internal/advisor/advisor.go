// Package advisor reproduces the front half of the paper's pipeline
// (Figure 3): generate candidate indexes from the workload the way a
// physical design tool does, select a design, and then extract the
// "matrix file" — query plans, speedups, creation costs and build
// interactions — by repeatedly calling the what-if optimizer
// (internal/dbsim) with hypothetical indexes, exactly as §8 describes.
package advisor

import (
	"fmt"
	"sort"

	"github.com/evolving-olap/idd/internal/dbsim"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/sql"
)

// Options tunes candidate generation and extraction.
type Options struct {
	// MaxIndexes caps the selected design (0 = keep all useful
	// candidates). The cap keeps instance sizes comparable to Table 4.
	MaxIndexes int
	// MaxPlansPerQuery caps atomic-configuration enumeration (0 = 12).
	MaxPlansPerQuery int
	// MinBuildInteraction drops build interactions below this fraction
	// of the target's build cost (0 = 0.05). The paper likewise only
	// models interactions "with less than 15% effects" away in its
	// mid-density variant.
	MinBuildInteraction float64
	// CostScale converts simulator cost units into reported "seconds"
	// (0 = 0.001, which puts TPC-H query runtimes in the tens of
	// seconds).
	CostScale float64
	// NoCovering disables covering-index candidates (fewer, weaker
	// candidates; used by tests).
	NoCovering bool
}

func (o Options) withDefaults() Options {
	if o.MaxPlansPerQuery == 0 {
		o.MaxPlansPerQuery = 12
	}
	if o.MinBuildInteraction == 0 {
		o.MinBuildInteraction = 0.05
	}
	if o.CostScale == 0 {
		o.CostScale = 0.001
	}
	return o
}

// Candidates enumerates candidate indexes for the workload: per query
// and table, a predicate index (equality columns by ascending
// selectivity, then one range column), a join-extended variant, a
// join-column index, a sort-avoiding index, and a covering variant.
func Candidates(s *sql.Schema, queries []*sql.Query, opt Options) []dbsim.IndexDef {
	opt = opt.withDefaults()
	var out []dbsim.IndexDef
	seen := map[string]bool{}
	add := func(d dbsim.IndexDef) {
		if len(d.Key) == 0 {
			return
		}
		if err := d.Validate(s); err != nil {
			return
		}
		if n := d.Name(); !seen[n] {
			seen[n] = true
			out = append(out, d)
		}
	}

	for _, q := range queries {
		for _, tn := range q.Tables {
			preds := q.TablePredicates(tn)
			var eqCols, rangeCols []string
			sort.SliceStable(preds, func(a, b int) bool { return preds[a].Selectivity < preds[b].Selectivity })
			for _, p := range preds {
				if p.Kind == sql.Eq {
					eqCols = append(eqCols, p.Col.Column)
				} else {
					rangeCols = append(rangeCols, p.Col.Column)
				}
			}
			key := append([]string{}, eqCols...)
			if len(rangeCols) > 0 {
				key = append(key, rangeCols[0])
			}
			add(dbsim.IndexDef{Table: tn, Key: dedup(key)})

			// Join-column indexes (INL inner side).
			joinCols := q.JoinColumns(tn)
			for _, jc := range joinCols {
				add(dbsim.IndexDef{Table: tn, Key: []string{jc}})
			}
			// Predicate key extended by the first join column.
			if len(key) > 0 && len(joinCols) > 0 {
				add(dbsim.IndexDef{Table: tn, Key: dedup(append(append([]string{}, key...), joinCols[0]))})
			}
			// Composite join index over all of this table's join columns
			// (fact-table star-join support), plus a covering variant
			// with the query's measures.
			if len(joinCols) >= 2 {
				add(dbsim.IndexDef{Table: tn, Key: dedup(joinCols)})
				if !opt.NoCovering {
					var include []string
					inKey := map[string]bool{}
					for _, k := range joinCols {
						inKey[k] = true
					}
					for _, c := range q.NeededColumns(tn) {
						if !inKey[c] {
							include = append(include, c)
						}
					}
					if len(include) > 0 && len(include) <= 6 {
						add(dbsim.IndexDef{Table: tn, Key: dedup(joinCols), Include: include})
					}
				}
			}
			// Sort-avoiding index.
			if cols := sortColsOn(q, tn); len(cols) > 0 {
				add(dbsim.IndexDef{Table: tn, Key: dedup(cols)})
			}
			// Covering variant of the predicate index.
			if !opt.NoCovering && len(key) > 0 {
				needed := q.NeededColumns(tn)
				var include []string
				inKey := map[string]bool{}
				for _, k := range dedup(key) {
					inKey[k] = true
				}
				for _, c := range needed {
					if !inKey[c] {
						include = append(include, c)
					}
				}
				if len(include) > 0 && len(include) <= 6 {
					add(dbsim.IndexDef{Table: tn, Key: dedup(key), Include: include})
				}
			}
		}
	}
	return out
}

func sortColsOn(q *sql.Query, table string) []string {
	cols := q.GroupBy
	if len(cols) == 0 {
		cols = q.OrderBy
	}
	if len(cols) == 0 {
		return nil
	}
	var out []string
	for _, c := range cols {
		if c.Table != table {
			return nil // multi-table sort: no single index helps
		}
		out = append(out, c.Column)
	}
	return out
}

func dedup(cols []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Select keeps the most valuable candidates: each candidate's standalone
// benefit over the workload divided by its build cost (the density
// heuristic commercial tools use), truncated to opt.MaxIndexes.
func Select(sim *dbsim.Sim, queries []*sql.Query, cands []dbsim.IndexDef, opt Options) []dbsim.IndexDef {
	opt = opt.withDefaults()
	type scored struct {
		d       dbsim.IndexDef
		density float64
	}
	avail := make([]bool, len(cands))
	scoredCands := make([]scored, 0, len(cands))
	for ci, d := range cands {
		var benefit float64
		for i := range avail {
			avail[i] = i == ci
		}
		for _, q := range queries {
			no := sim.NoIndexCost(q, cands)
			with := sim.BestPlan(q, cands, avail).Cost
			if with < no {
				benefit += (no - with) * weight(q)
			}
		}
		if benefit <= 0 {
			continue // the design tool would not suggest it
		}
		scoredCands = append(scoredCands, scored{d: d, density: benefit / sim.BuildCost(d)})
	}
	sort.SliceStable(scoredCands, func(a, b int) bool { return scoredCands[a].density > scoredCands[b].density })
	if opt.MaxIndexes > 0 && len(scoredCands) > opt.MaxIndexes {
		scoredCands = scoredCands[:opt.MaxIndexes]
	}
	out := make([]dbsim.IndexDef, len(scoredCands))
	for i := range scoredCands {
		out[i] = scoredCands[i].d
	}
	return out
}

func weight(q *sql.Query) float64 {
	if q.Weight == 0 {
		return 1
	}
	return q.Weight
}

// BuildInstance runs the full pipeline: candidates → selection → what-if
// extraction, returning the ordering-problem instance plus the selected
// index definitions (parallel to Instance.Indexes).
func BuildInstance(name string, s *sql.Schema, queries []*sql.Query, opt Options) (*model.Instance, []dbsim.IndexDef, error) {
	opt = opt.withDefaults()
	if err := sql.ValidateWorkload(s, queries); err != nil {
		return nil, nil, err
	}
	sim := dbsim.New(s)
	cands := Candidates(s, queries, opt)
	design := Select(sim, queries, cands, opt)
	return Extract(name, sim, queries, design, opt)
}

// Extract produces the matrix file for a fixed design: per-query plan
// enumeration (atomic configurations), build costs and pairwise build
// interactions. Indexes used by no plan are dropped from the instance
// (a design tool would not have suggested them).
func Extract(name string, sim *dbsim.Sim, queries []*sql.Query, design []dbsim.IndexDef, opt Options) (*model.Instance, []dbsim.IndexDef, error) {
	opt = opt.withDefaults()
	scale := opt.CostScale

	type rawPlan struct {
		q    int
		used []int
		spd  float64
	}
	var rawPlans []rawPlan
	usedAnywhere := make([]bool, len(design))
	qtimes := make([]float64, len(queries))
	for qi, q := range queries {
		qtimes[qi] = sim.NoIndexCost(q, design)
		for _, p := range sim.EnumeratePlans(q, design, opt.MaxPlansPerQuery) {
			spd := qtimes[qi] - p.Cost
			if spd <= 1e-9 {
				continue
			}
			rawPlans = append(rawPlans, rawPlan{q: qi, used: p.Used, spd: spd})
			for _, u := range p.Used {
				usedAnywhere[u] = true
			}
		}
	}

	// Drop never-used indexes; remap positions.
	remap := make([]int, len(design))
	var kept []dbsim.IndexDef
	for i, u := range usedAnywhere {
		if u {
			remap[i] = len(kept)
			kept = append(kept, design[i])
		} else {
			remap[i] = -1
		}
	}
	if len(kept) == 0 {
		return nil, nil, fmt.Errorf("advisor: no index helps any query")
	}

	in := &model.Instance{Name: name}
	for _, d := range kept {
		in.Indexes = append(in.Indexes, model.Index{
			Name:       d.Name(),
			Table:      d.Table,
			Columns:    d.Key,
			Include:    d.Include,
			CreateCost: sim.BuildCost(d) * scale,
		})
	}
	for qi, q := range queries {
		in.Queries = append(in.Queries, model.Query{
			Name:    q.Name,
			Runtime: qtimes[qi] * scale,
			Weight:  q.Weight,
		})
	}
	for _, rp := range rawPlans {
		idx := make([]int, len(rp.used))
		for k, u := range rp.used {
			idx[k] = remap[u]
		}
		in.Plans = append(in.Plans, model.Plan{Query: rp.q, Indexes: idx, Speedup: rp.spd * scale})
	}
	for ti, td := range kept {
		for hi, hd := range kept {
			if ti == hi {
				continue
			}
			d := sim.BuildDiscount(td, hd)
			if d > opt.MinBuildInteraction*sim.BuildCost(td) {
				in.BuildInteractions = append(in.BuildInteractions, model.BuildInteraction{
					Target: ti, Helper: hi, Speedup: d * scale,
				})
			}
		}
	}
	if err := in.Validate(); err != nil {
		return nil, nil, fmt.Errorf("advisor: extracted instance invalid: %w", err)
	}
	return in, kept, nil
}
