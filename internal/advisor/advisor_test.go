package advisor

import (
	"strings"
	"testing"

	"github.com/evolving-olap/idd/internal/dbsim"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/sql"
	"github.com/evolving-olap/idd/internal/tpch"
)

func miniSchema() *sql.Schema {
	return &sql.Schema{
		Name: "mini",
		Tables: []*sql.Table{
			{Name: "fact", Rows: 500_000, Columns: []sql.Column{
				{Name: "id", Distinct: 500_000, Width: 8},
				{Name: "dim_id", Distinct: 1_000, Width: 8},
				{Name: "day", Distinct: 365, Width: 4},
				{Name: "amount", Distinct: 10_000, Width: 8},
			}},
			{Name: "dim", Rows: 1_000, Columns: []sql.Column{
				{Name: "dim_id", Distinct: 1_000, Width: 8},
				{Name: "kind", Distinct: 10, Width: 8},
			}},
		},
	}
}

func miniQueries() []*sql.Query {
	return []*sql.Query{
		{
			Name:   "daily",
			Tables: []string{"fact"},
			Predicates: []sql.Predicate{
				{Col: sql.ColRef{Table: "fact", Column: "day"}, Kind: sql.Eq, Selectivity: 1.0 / 365},
			},
			Select: []sql.ColRef{{Table: "fact", Column: "amount"}},
		},
		{
			Name:   "by_kind",
			Tables: []string{"fact", "dim"},
			Predicates: []sql.Predicate{
				{Col: sql.ColRef{Table: "dim", Column: "kind"}, Kind: sql.Eq, Selectivity: 0.1},
			},
			Joins: []sql.Join{{
				Left:  sql.ColRef{Table: "fact", Column: "dim_id"},
				Right: sql.ColRef{Table: "dim", Column: "dim_id"},
			}},
			GroupBy: []sql.ColRef{{Table: "dim", Column: "kind"}},
			Select:  []sql.ColRef{{Table: "fact", Column: "amount"}},
		},
	}
}

func TestCandidatesCoverExpectedShapes(t *testing.T) {
	s := miniSchema()
	cands := Candidates(s, miniQueries(), Options{})
	byName := map[string]bool{}
	for _, c := range cands {
		if err := c.Validate(s); err != nil {
			t.Fatalf("invalid candidate: %v", err)
		}
		byName[c.Name()] = true
	}
	for _, want := range []string{
		"ix_fact_day",    // predicate index
		"ix_fact_dim_id", // join-column index
		"ix_dim_kind",    // dim predicate index
	} {
		if !byName[want] {
			t.Errorf("missing expected candidate %s (have %v)", want, names(cands))
		}
	}
	// Covering variant of the predicate index must exist.
	found := false
	for n := range byName {
		if strings.HasPrefix(n, "ix_fact_day_inc") {
			found = true
		}
	}
	if !found {
		t.Error("missing covering candidate for ix_fact_day")
	}
}

func names(cands []dbsim.IndexDef) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Name()
	}
	return out
}

func TestNoCoveringOption(t *testing.T) {
	cands := Candidates(miniSchema(), miniQueries(), Options{NoCovering: true})
	for _, c := range cands {
		if len(c.Include) > 0 {
			t.Fatalf("covering candidate generated despite NoCovering: %s", c.Name())
		}
	}
}

func TestSelectRanksByDensityAndCaps(t *testing.T) {
	s := miniSchema()
	sim := dbsim.New(s)
	cands := Candidates(s, miniQueries(), Options{})
	sel2 := Select(sim, miniQueries(), cands, Options{MaxIndexes: 2})
	if len(sel2) != 2 {
		t.Fatalf("cap ignored: %d", len(sel2))
	}
	all := Select(sim, miniQueries(), cands, Options{})
	if len(all) < len(sel2) {
		t.Fatal("uncapped selection smaller than capped")
	}
	// The top selection must be a beneficial index.
	var benefit float64
	avail := make([]bool, len(all))
	for i, d := range all {
		if d.Equal(sel2[0]) {
			avail[i] = true
		}
	}
	for _, q := range miniQueries() {
		no := sim.NoIndexCost(q, all)
		benefit += no - sim.BestPlan(q, all, avail).Cost
	}
	if benefit <= 0 {
		t.Error("top-ranked index has no benefit")
	}
}

func TestBuildInstanceEndToEnd(t *testing.T) {
	in, kept, err := BuildInstance("mini", miniSchema(), miniQueries(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(kept) != in.N() {
		t.Fatalf("defs (%d) not parallel to instance indexes (%d)", len(kept), in.N())
	}
	if len(in.Plans) == 0 {
		t.Fatal("no plans extracted")
	}
	// Every index appears in at least one plan (never-used are dropped).
	used := make([]bool, in.N())
	for _, p := range in.Plans {
		for _, ix := range p.Indexes {
			used[ix] = true
		}
	}
	for i, u := range used {
		if !u {
			t.Errorf("index %d (%s) used by no plan", i, in.Indexes[i].Name)
		}
	}
	// Speedups must be consistent: no plan speedup exceeds its query's
	// runtime (Validate checks this, but assert explicitly for clarity).
	for _, p := range in.Plans {
		if p.Speedup > in.Queries[p.Query].Runtime {
			t.Errorf("plan speedup %v > runtime %v", p.Speedup, in.Queries[p.Query].Runtime)
		}
	}
}

func TestExtractErrorsWhenNothingHelps(t *testing.T) {
	s := miniSchema()
	sim := dbsim.New(s)
	// A design of one useless index (no query filters on amount).
	design := []dbsim.IndexDef{{Table: "dim", Key: []string{"dim_id"}}}
	q := []*sql.Query{{
		Name:   "scan_only",
		Tables: []string{"fact"},
		Select: []sql.ColRef{{Table: "fact", Column: "amount"}},
	}}
	if _, _, err := Extract("x", sim, q, design, Options{}); err == nil {
		t.Fatal("expected error for a design that helps nothing")
	}
}

func TestTPCHBuildIsDeterministic(t *testing.T) {
	a, _, err := BuildInstance("tpch", tpch.Schema(), tpch.Queries(), Options{MaxIndexes: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := BuildInstance("tpch", tpch.Schema(), tpch.Queries(), Options{MaxIndexes: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("nondeterministic: %v vs %v", a.Stats(), b.Stats())
	}
	ca, cb := model.MustCompile(a), model.MustCompile(b)
	order := make([]int, a.N())
	for i := range order {
		order[i] = i
	}
	if ca.Objective(order) != cb.Objective(order) {
		t.Fatal("objective differs between builds")
	}
}
