// Package bitset provides a small fixed-size bitset used for index sets
// and reachability matrices in the pruning analysis and the CP engine.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bitset. The zero value has capacity zero; use
// New. Sets of different capacities must not be mixed.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity n bits.
func New(n int) Set {
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the capacity in bits.
func (s Set) Cap() int { return s.n }

// Clone returns a copy.
func (s Set) Clone() Set {
	out := Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}

// Add sets bit i.
func (s Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Remove clears bit i.
func (s Set) Remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every bit of o to s (in place).
func (s Set) UnionWith(o Set) {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// IntersectWith keeps only bits present in both (in place).
func (s Set) IntersectWith(o Set) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// SubtractWith clears every bit of o from s (in place).
func (s Set) SubtractWith(o Set) {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// ContainsAll reports whether every bit of o is also in s.
func (s Set) ContainsAll(o Set) bool {
	for i := range s.words {
		if o.words[i]&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// CountAnd returns the number of bits set in both s and o, without
// materializing the intersection. The CP engine's steal-adoption path
// uses it to recompute per-index predecessor counts from a subproblem's
// placed-set in O(n/64) per index.
func (s Set) CountAnd(o Set) int {
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// Intersects reports whether s and o share any bit.
func (s Set) Intersects(o Set) bool {
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o contain exactly the same bits.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Clear removes all bits.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls f for every set bit in ascending order; f returning false
// stops the iteration.
func (s Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*64 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the set bits in ascending order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// Min returns the smallest set bit, or -1 if empty.
func (s Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest set bit, or -1 if empty.
func (s Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*64 + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// FromSlice builds a set of capacity n with the given bits.
func FromSlice(n int, elems []int) Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// String renders like {1,4,7}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
