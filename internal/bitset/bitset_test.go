package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Count() != 0 || s.Cap() != 130 {
		t.Fatal("fresh set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("missing bit %d", i)
		}
	}
	if s.Has(1) || s.Has(128) {
		t.Error("spurious bits")
	}
	if s.Min() != 0 || s.Max() != 129 {
		t.Errorf("min/max = %d/%d", s.Min(), s.Max())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("remove failed")
	}
	if got := s.String(); got != "{0,129}" {
		t.Errorf("String = %q", got)
	}
	s.Clear()
	if !s.Empty() {
		t.Error("clear failed")
	}
	if New(0).Min() != -1 || New(5).Max() != -1 {
		t.Error("empty min/max should be -1")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(100, []int{1, 5, 70})
	b := FromSlice(100, []int{5, 70, 99})

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Slice(); len(got) != 4 {
		t.Errorf("union = %v", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Slice(); len(got) != 2 || got[0] != 5 || got[1] != 70 {
		t.Errorf("intersect = %v", got)
	}

	d := a.Clone()
	d.SubtractWith(b)
	if got := d.Slice(); len(got) != 1 || got[0] != 1 {
		t.Errorf("subtract = %v", got)
	}

	if !u.ContainsAll(a) || !u.ContainsAll(b) {
		t.Error("union must contain operands")
	}
	if a.ContainsAll(b) {
		t.Error("a should not contain b")
	}
	if !a.Intersects(b) {
		t.Error("a and b intersect")
	}
	if a.Intersects(FromSlice(100, []int{2, 3})) {
		t.Error("disjoint sets reported intersecting")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal")
	}
	if a.Equal(b) || a.Equal(New(50)) {
		t.Error("unequal sets reported equal")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(20, []int{3, 7, 11})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 7 {
		t.Errorf("early stop walk = %v", seen)
	}
}

// Property: Slice round-trips through FromSlice, and Count matches a naive
// reference implementation on random sets.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%200
		rng := rand.New(rand.NewSource(seed))
		ref := map[int]bool{}
		s := New(n)
		for k := 0; k < n/2+1; k++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Add(i)
				ref[i] = true
			} else {
				s.Remove(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, i := range s.Slice() {
			if !ref[i] {
				return false
			}
		}
		return s.Equal(FromSlice(n, s.Slice()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCountAnd(t *testing.T) {
	a := FromSlice(130, []int{0, 1, 63, 64, 65, 127, 129})
	b := FromSlice(130, []int{1, 63, 64, 100, 129})
	if got := a.CountAnd(b); got != 4 {
		t.Fatalf("CountAnd = %d, want 4", got)
	}
	if got := b.CountAnd(a); got != 4 {
		t.Fatalf("CountAnd not symmetric: %d", got)
	}
	if got := a.CountAnd(New(130)); got != 0 {
		t.Fatalf("CountAnd with empty = %d", got)
	}
	// Agrees with materializing the intersection.
	inter := a.Clone()
	inter.IntersectWith(b)
	if a.CountAnd(b) != inter.Count() {
		t.Fatal("CountAnd disagrees with IntersectWith+Count")
	}
}
