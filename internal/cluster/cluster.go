// Package cluster turns a set of iddserver processes into one solve
// cluster with no coordinator and no new dependencies: static peer
// membership with periodic health gossip, consistent-hash job routing
// on the canonical instance hash (any node accepts any request and
// forwards it to the owner, so the per-node cache and single-flight
// machinery keep their hit rates cluster-wide), replicated solution
// caches and cross-node incumbent exchange via a last-writer-wins CRDT
// merge (lww.go), and distributed CP work-stealing: an idle node asks
// busy peers for the shallowest open subtree of a running optimality
// proof, solves it locally, and reports completion back to the owner's
// open-subproblem counter so the proof stays sound across nodes
// (steal.go).
//
// A Node wraps a service.Server: it owns the HTTP surface (the service
// routes plus the /cluster/* peer protocol), the gossip and helper
// loops, and the service.Distributor hooks the job manager announces
// executing solves through. Single-node deployments never construct a
// Node and are entirely unaffected.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/obs"
	"github.com/evolving-olap/idd/internal/service"
)

// ForwardedHeader marks a request already routed by a peer; a receiving
// node serves it locally whatever its own ring view says, so transient
// membership-view disagreement can bounce a request at most once.
const ForwardedHeader = "X-IDD-Forwarded"

// Config describes this node's place in the cluster.
type Config struct {
	// Self is this node's advertised base URL (how peers reach it),
	// e.g. "http://10.0.0.1:8080". A bare host:port gets http://.
	Self string
	// Peers lists every cluster member's base URL, self included or
	// not (it is added if missing). All nodes must configure the same
	// set — ownership is a pure function of it.
	Peers []string
	// GossipInterval is the peer health probe cadence (0 = 1s);
	// PeerTimeout is how long a peer stays "up" without a successful
	// probe (0 = 3 × GossipInterval).
	GossipInterval time.Duration
	PeerTimeout    time.Duration
	// StealInterval is how often an idle node asks busy peers for
	// remote subtrees (0 = 100ms).
	StealInterval time.Duration
	// MaxHelpers bounds concurrently adopted remote subtrees (0 = 1).
	MaxHelpers int
	// HelperWorkers is the cp worker count used to solve an adopted
	// subtree (0 = 1).
	HelperWorkers int
}

func (c Config) withDefaults() (Config, error) {
	var err error
	if c.Self, err = normalizeAddr(c.Self); err != nil {
		return c, fmt.Errorf("cluster: self: %w", err)
	}
	seen := map[string]bool{c.Self: true}
	peers := []string{c.Self}
	for _, p := range c.Peers {
		a, err := normalizeAddr(p)
		if err != nil {
			return c, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		if !seen[a] {
			seen[a] = true
			peers = append(peers, a)
		}
	}
	sort.Strings(peers)
	c.Peers = peers
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 3 * c.GossipInterval
	}
	if c.StealInterval <= 0 {
		c.StealInterval = 100 * time.Millisecond
	}
	if c.MaxHelpers <= 0 {
		c.MaxHelpers = 1
	}
	if c.HelperWorkers <= 0 {
		c.HelperWorkers = 1
	}
	return c, nil
}

func normalizeAddr(a string) (string, error) {
	a = strings.TrimRight(strings.TrimSpace(a), "/")
	if a == "" {
		return "", fmt.Errorf("empty address")
	}
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	u, err := url.Parse(a)
	if err != nil {
		return "", err
	}
	if u.Host == "" {
		return "", fmt.Errorf("no host in %q", a)
	}
	return u.Scheme + "://" + u.Host, nil
}

// NodeName derives a node's stable short name from its advertised
// address: "n" + the first 8 hex chars of the address hash. Every node
// computes every peer's name from the shared peer list, which is what
// makes id prefixes ("<name>-<hex>") self-routing.
func NodeName(addr string) string {
	return fmt.Sprintf("n%08x", hashPoint(addr)>>32)
}

// peerState is this node's gossip view of one peer.
type peerState struct {
	addr     string
	name     string
	lastSeen time.Time
	up       bool
	busy     bool // peer advertised exportable proof work last probe
	proxy    *httputil.ReverseProxy
}

// Node is one cluster member: the wrapped solve service plus the peer
// protocol, gossip, and helper machinery.
type Node struct {
	cfg    Config
	name   string
	srv    *service.Server
	ring   *ring
	client *http.Client
	clock  *Clock
	incs   *lwwMap
	mux    *http.ServeMux

	mu      sync.Mutex
	peers   map[string]*peerState // by addr; excludes self
	byName  map[string]*peerState // same peers, by node name
	active  map[string]*activeSolve
	exports map[string]*export
	helpers int
	nextExp int64

	bcast  chan bcastMsg
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	m clusterMetrics
}

type bcastMsg struct {
	path    string
	payload []byte
}

type clusterMetrics struct {
	forwards         *obs.Counter
	forwardFallbacks *obs.Counter
	proxied          *obs.Counter
	incSent          *obs.Counter
	incApplied       *obs.Counter
	resSent          *obs.Counter
	resApplied       *obs.Counter
	stealsServed     *obs.Counter
	remoteSteals     *obs.Counter
	completions      *obs.Counter
	requeues         *obs.Counter
	remoteNodes      *obs.Counter
	helperNodes      *obs.Counter
	bcastDropped     *obs.Counter
}

// New builds a cluster node around a fresh service.Server constructed
// from svcCfg (the node installs its own NodeName and Distributor into
// the service config — callers must leave those zero). Start launches
// the background loops.
func New(cfg Config, svcCfg service.Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		name:    NodeName(cfg.Self),
		ring:    newRing(cfg.Peers),
		client:  &http.Client{}, // per-call timeouts via request contexts
		clock:   &Clock{},
		incs:    newLWWMap(0),
		peers:   make(map[string]*peerState),
		byName:  make(map[string]*peerState),
		active:  make(map[string]*activeSolve),
		exports: make(map[string]*export),
		bcast:   make(chan bcastMsg, 512),
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	for _, addr := range cfg.Peers {
		if addr == cfg.Self {
			continue
		}
		target, _ := url.Parse(addr)
		ps := &peerState{addr: addr, name: NodeName(addr)}
		ps.proxy = &httputil.ReverseProxy{
			Rewrite: func(pr *httputil.ProxyRequest) {
				pr.SetURL(target)
				pr.Out.Header.Set(ForwardedHeader, n.name)
			},
			// Immediate flushing so proxied SSE event streams stay live.
			FlushInterval: -1,
			ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
				n.markDown(addr)
				http.Error(w, fmt.Sprintf(`{"error":"peer %s unreachable"}`, ps.name),
					http.StatusBadGateway)
			},
		}
		n.peers[addr] = ps
		n.byName[ps.name] = ps
	}

	svcCfg.NodeName = n.name
	svcCfg.Distributor = distributor{n}
	n.srv = service.New(svcCfg)
	n.registerMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/health", n.handleHealth)
	mux.HandleFunc("POST /cluster/incumbent", n.handleIncumbent)
	mux.HandleFunc("POST /cluster/result", n.handleResult)
	mux.HandleFunc("POST /cluster/steal", n.handleSteal)
	mux.HandleFunc("POST /cluster/complete", n.handleComplete)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("POST /solve", n.routeByInstance)
	mux.HandleFunc("POST /jobs", n.routeByInstance)
	mux.HandleFunc("/jobs/", n.routeByID)
	mux.HandleFunc("/batch/", n.routeByID)
	mux.HandleFunc("/sessions/", n.routeByID)
	mux.Handle("/", n.srv.Handler())
	n.mux = mux
	return n, nil
}

// Start launches the gossip, broadcast, helper, and export-watchdog
// loops. Separate from New so tests can drive the protocol handlers
// synchronously.
func (n *Node) Start() {
	loops := []func(){n.gossipLoop, n.bcastLoop, n.helperLoop, n.exportWatchdog}
	n.wg.Add(len(loops))
	for _, l := range loops {
		go func(run func()) { defer n.wg.Done(); run() }(l)
	}
}

// Close stops the background loops (it does not drain the wrapped
// service — call Server().Shutdown for that, as cmd/iddserver does).
func (n *Node) Close() {
	n.cancel()
	n.wg.Wait()
}

// Handler returns the node's full HTTP surface: every service route
// (cluster-routed where applicable) plus the /cluster/* peer protocol.
func (n *Node) Handler() http.Handler { return n.mux }

// Server exposes the wrapped service.
func (n *Node) Server() *service.Server { return n.srv }

// Name returns the node's derived name (the id prefix peers route by).
func (n *Node) Name() string { return n.name }

func (n *Node) registerMetrics() {
	reg := n.srv.Manager().ObsRegistry()
	reg.GaugeFunc("idd_cluster_peers", "configured cluster members including self", func() float64 {
		return float64(len(n.cfg.Peers))
	})
	reg.GaugeFunc("idd_cluster_peers_up", "peers currently passing health gossip (self excluded)", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		up := 0
		for _, p := range n.peers {
			if p.up {
				up++
			}
		}
		return float64(up)
	})
	m := &n.m
	m.forwards = reg.Counter("idd_cluster_forwards_total", "requests forwarded to their ring owner")
	m.forwardFallbacks = reg.Counter("idd_cluster_forward_fallbacks_total", "owner down or unreachable: request served locally instead")
	m.proxied = reg.Counter("idd_cluster_proxied_total", "id-addressed requests proxied to the owning node")
	m.incSent = reg.Counter("idd_cluster_incumbent_sent_total", "incumbent broadcasts posted to peers")
	m.incApplied = reg.Counter("idd_cluster_incumbent_applied_total", "peer incumbents that won the local LWW merge")
	m.resSent = reg.Counter("idd_cluster_result_sent_total", "finished-result replications posted to peers")
	m.resApplied = reg.Counter("idd_cluster_result_applied_total", "peer results installed into the local cache")
	m.stealsServed = reg.Counter("idd_cluster_steals_served_total", "subtrees this node donated to peers")
	m.remoteSteals = reg.Counter("idd_cluster_remote_steals_total", "subtrees this node stole from peers")
	m.completions = reg.Counter("idd_cluster_subtrees_completed_total", "donated subtrees peers explored to exhaustion")
	m.requeues = reg.Counter("idd_cluster_subtrees_requeued_total", "donated subtrees requeued locally (helper lost or gave up)")
	m.remoteNodes = reg.Counter("idd_cluster_remote_search_nodes_total", "search nodes peers contributed to this node's proofs")
	m.helperNodes = reg.Counter("idd_cluster_helper_search_nodes_total", "search nodes this node contributed to peers' proofs")
	m.bcastDropped = reg.Counter("idd_cluster_broadcast_dropped_total", "broadcasts dropped on backpressure")
}

// ---------------------------------------------------------------------------
// Request routing

// routeByInstance is the consistent-hash front door for POST /solve and
// POST /jobs: parse just enough of the body to canonical-hash the
// instance, and forward to the ring owner unless that is us (or the
// owner is down, or the request was already forwarded once). Bodies
// that don't parse fall through to the local service, whose own
// validation produces the proper 400.
func (n *Node) routeByInstance(w http.ResponseWriter, r *http.Request) {
	local := n.srv.Handler()
	if r.Header.Get(ForwardedHeader) != "" {
		local.ServeHTTP(w, r)
		return
	}
	limit := n.srv.Manager().MaxBodyBytes()
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil || int64(len(body)) > limit {
		// Oversized or broken body: hand it to the service, which
		// enforces the limit with the documented error shape.
		r.Body = io.NopCloser(io.MultiReader(bytes.NewReader(body), r.Body))
		local.ServeHTTP(w, r)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	in := parseInstanceBody(body)
	if in == nil {
		local.ServeHTTP(w, r)
		return
	}
	canon, _ := codec.Canonicalize(in)
	owner := n.ring.owner(codec.CanonicalHash(canon))
	if owner == n.cfg.Self {
		local.ServeHTTP(w, r)
		return
	}
	if !n.peerUp(owner) {
		// Graceful degradation: a down owner costs cache locality, not
		// availability.
		n.m.forwardFallbacks.Inc()
		local.ServeHTTP(w, r)
		return
	}
	if !n.forward(w, r, owner, body) {
		n.m.forwardFallbacks.Inc()
		r.Body = io.NopCloser(bytes.NewReader(body))
		local.ServeHTTP(w, r)
	}
}

// forward replays the buffered request against the owner and copies the
// response back. Returns false when the owner could not be reached (the
// caller then serves locally); once response bytes are flowing the
// response is the owner's, errors included.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		owner+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(ForwardedHeader, n.name)
	resp, err := n.client.Do(req)
	if err != nil {
		n.markDown(owner)
		return false
	}
	defer resp.Body.Close()
	n.m.forwards.Inc()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// routeByID proxies /jobs/{id}, /batch/{id}, /sessions/{id} (and their
// subresources) to the node whose name prefixes the id; local ids and
// unknown prefixes are served locally. SSE subresources stream through
// the proxy unbuffered.
func (n *Node) routeByID(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(ForwardedHeader) == "" {
		if ps := n.ownerByID(r.URL.Path); ps != nil {
			if ps.isUp() {
				n.m.proxied.Inc()
				ps.proxy.ServeHTTP(w, r)
				return
			}
			http.Error(w, fmt.Sprintf(`{"error":"owning node %s is down"}`, ps.name),
				http.StatusBadGateway)
			return
		}
	}
	n.srv.Handler().ServeHTTP(w, r)
}

// ownerByID extracts the id segment of /jobs|batch|sessions/{id}[/...]
// and resolves its node-name prefix to a peer (nil = ours or unknown).
func (n *Node) ownerByID(path string) *peerState {
	parts := strings.SplitN(strings.TrimPrefix(path, "/"), "/", 3)
	if len(parts) < 2 || parts[1] == "" {
		return nil
	}
	id := parts[1]
	dash := strings.IndexByte(id, '-')
	if dash < 0 {
		return nil
	}
	prefix := id[:dash]
	if prefix == n.name {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.byName[prefix]
}

// parseInstanceBody decodes the instance from any of the service's
// accepted body shapes: the JSON envelope, a bare instance JSON, or the
// compact text matrix. Returns nil when none parse.
func parseInstanceBody(body []byte) *model.Instance {
	var env struct {
		Instance *model.Instance `json:"instance"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Instance != nil {
		return env.Instance
	}
	if in, err := codec.ReadJSON(bytes.NewReader(body)); err == nil {
		return in
	}
	if in, err := codec.ReadText(bytes.NewReader(body)); err == nil {
		return in
	}
	return nil
}

// ---------------------------------------------------------------------------
// Gossip and peer health

type healthMsg struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	Busy   bool   `json:"busy"`
}

func (n *Node) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if n.srv.Manager().Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthMsg{Name: n.name, Status: status, Busy: n.exportableWork()})
}

func (n *Node) gossipLoop() {
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	n.probePeers() // first view immediately, not one interval late
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
			n.probePeers()
		}
	}
}

func (n *Node) probePeers() {
	var wg sync.WaitGroup
	for addr := range n.peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			// The probe timeout is deliberately generous: a DEAD peer
			// fails fast (connection refused), while a merely SLOW peer
			// (e.g. saturated by a solve on a small box) just needs time
			// to answer. Only sustained silence past PeerTimeout marks a
			// peer down.
			probeTimeout := n.cfg.PeerTimeout
			if probeTimeout < time.Second {
				probeTimeout = time.Second
			}
			ctx, cancel := context.WithTimeout(n.ctx, probeTimeout)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/cluster/health", nil)
			resp, err := n.client.Do(req)
			now := time.Now()
			var h healthMsg
			ok := err == nil && resp.StatusCode == http.StatusOK &&
				json.NewDecoder(resp.Body).Decode(&h) == nil
			if err == nil {
				resp.Body.Close()
			}
			n.mu.Lock()
			ps := n.peers[addr]
			if ok {
				ps.lastSeen = now
				ps.up = true
				ps.busy = h.Busy
			} else if now.Sub(ps.lastSeen) > n.cfg.PeerTimeout {
				ps.up = false
				ps.busy = false
			}
			n.mu.Unlock()
		}(addr)
	}
	wg.Wait()
}

func (n *Node) peerUp(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps := n.peers[addr]
	return ps != nil && ps.up
}

func (ps *peerState) isUp() bool { return ps != nil && ps.up }

func (n *Node) markDown(addr string) {
	n.mu.Lock()
	if ps := n.peers[addr]; ps != nil {
		ps.up = false
		ps.busy = false
	}
	n.mu.Unlock()
}

// upPeers snapshots the live peers (optionally only busy ones).
func (n *Node) upPeers(busyOnly bool) []*peerState {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []*peerState
	for _, p := range n.peers {
		if p.up && (!busyOnly || p.busy) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// ---------------------------------------------------------------------------
// Broadcasts (incumbents + finished results)

func (n *Node) enqueueBroadcast(path string, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		return
	}
	select {
	case n.bcast <- bcastMsg{path: path, payload: payload}:
	default:
		// Backpressure: drop rather than stall a solve's publish path.
		// Incumbents are refreshed by the next improvement; results are
		// re-learnable from the owner's cache via normal routing.
		n.m.bcastDropped.Inc()
	}
}

func (n *Node) bcastLoop() {
	for {
		select {
		case <-n.ctx.Done():
			return
		case msg := <-n.bcast:
			for _, ps := range n.upPeers(false) {
				ctx, cancel := context.WithTimeout(n.ctx, 2*time.Second)
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
					ps.addr+msg.path, bytes.NewReader(msg.payload))
				req.Header.Set("Content-Type", "application/json")
				resp, err := n.client.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch msg.path {
					case "/cluster/incumbent":
						n.m.incSent.Inc()
					case "/cluster/result":
						n.m.resSent.Inc()
					}
				} else {
					n.markDown(ps.addr)
				}
				cancel()
			}
		}
	}
}

type incumbentMsg struct {
	Key string    `json:"key"`
	Inc Incumbent `json:"incumbent"`
}

// broadcastIncumbent stamps a locally found improvement and sends it to
// every live peer (merging it locally first, so the node's own LWW view
// includes everything it ever published).
func (n *Node) broadcastIncumbent(key string, order []int, obj float64) {
	inc := Incumbent{
		Objective: obj,
		Order:     append([]int(nil), order...),
		Clock:     n.clock.Tick(),
		Node:      n.name,
	}
	n.incs.apply(key, inc)
	n.enqueueBroadcast("/cluster/incumbent", incumbentMsg{Key: key, Inc: inc})
}

func (n *Node) handleIncumbent(w http.ResponseWriter, r *http.Request) {
	var msg incumbentMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err != nil ||
		msg.Key == "" || msg.Inc.Order == nil {
		http.Error(w, `{"error":"bad incumbent"}`, http.StatusBadRequest)
		return
	}
	n.clock.Witness(msg.Inc.Clock)
	if n.incs.apply(msg.Key, msg.Inc) {
		n.m.incApplied.Inc()
		// A live solve for the same key adopts the remote incumbent
		// through its shared store (feasibility-validated there); every
		// backend prunes against it within its next poll stride.
		if as := n.activeSolve(msg.Key); as != nil {
			as.start.Store.Offer("cluster", msg.Inc.Order, msg.Inc.Objective)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

type resultMsg struct {
	Key    string               `json:"key"`
	Node   string               `json:"node"`
	Clock  uint64               `json:"clock"`
	Result *service.SolveResult `json:"result"`
}

func (n *Node) resultCached(key string, res *service.SolveResult) {
	n.enqueueBroadcast("/cluster/result", resultMsg{
		Key: key, Node: n.name, Clock: n.clock.Tick(), Result: res,
	})
}

func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	var msg resultMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&msg); err != nil ||
		msg.Key == "" || msg.Result == nil {
		http.Error(w, `{"error":"bad result"}`, http.StatusBadRequest)
		return
	}
	n.clock.Witness(msg.Clock)
	n.srv.Manager().SeedCache(msg.Key, msg.Result)
	n.m.resApplied.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------------
// Cluster-aware /healthz and /metrics

// PeerHealth is one peer row of the /healthz cluster section.
type PeerHealth struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Busy     bool   `json:"busy,omitempty"`
	LastSeen string `json:"last_seen,omitempty"`
}

// ClusterHealth is the /healthz "cluster" section and the /metrics
// "cluster" section's membership half.
type ClusterHealth struct {
	Name  string       `json:"name"`
	Self  string       `json:"self"`
	Peers []PeerHealth `json:"peers"`
}

func (n *Node) clusterHealth() ClusterHealth {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch := ClusterHealth{Name: n.name, Self: n.cfg.Self, Peers: []PeerHealth{}}
	for _, p := range n.peers {
		ph := PeerHealth{Name: p.name, Addr: p.addr, State: "down", Busy: p.busy}
		if p.up {
			ph.State = "up"
		}
		if !p.lastSeen.IsZero() {
			ph.LastSeen = p.lastSeen.UTC().Format(time.RFC3339Nano)
		}
		ch.Peers = append(ch.Peers, ph)
	}
	sort.Slice(ch.Peers, func(i, j int) bool { return ch.Peers[i].Addr < ch.Peers[j].Addr })
	return ch
}

func (n *Node) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status, code := "ok", http.StatusOK
	if n.srv.Manager().Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"cluster": n.clusterHealth(),
	})
}

// ClusterSnapshot is the /metrics JSON "cluster" section.
type ClusterSnapshot struct {
	ClusterHealth
	Forwards          int64 `json:"forwards"`
	ForwardFallbacks  int64 `json:"forward_fallbacks"`
	Proxied           int64 `json:"proxied"`
	IncumbentsSent    int64 `json:"incumbents_sent"`
	IncumbentsApplied int64 `json:"incumbents_applied"`
	ResultsSent       int64 `json:"results_sent"`
	ResultsApplied    int64 `json:"results_applied"`
	StealsServed      int64 `json:"steals_served"`
	RemoteSteals      int64 `json:"remote_steals"`
	SubtreesCompleted int64 `json:"subtrees_completed"`
	SubtreesRequeued  int64 `json:"subtrees_requeued"`
	RemoteSearchNodes int64 `json:"remote_search_nodes"`
	HelperSearchNodes int64 `json:"helper_search_nodes"`
}

// Snapshot returns the cluster counters (also used by tests asserting
// cross-node behavior).
func (n *Node) Snapshot() ClusterSnapshot {
	return ClusterSnapshot{
		ClusterHealth:     n.clusterHealth(),
		Forwards:          n.m.forwards.Value(),
		ForwardFallbacks:  n.m.forwardFallbacks.Value(),
		Proxied:           n.m.proxied.Value(),
		IncumbentsSent:    n.m.incSent.Value(),
		IncumbentsApplied: n.m.incApplied.Value(),
		ResultsSent:       n.m.resSent.Value(),
		ResultsApplied:    n.m.resApplied.Value(),
		StealsServed:      n.m.stealsServed.Value(),
		RemoteSteals:      n.m.remoteSteals.Value(),
		SubtreesCompleted: n.m.completions.Value(),
		SubtreesRequeued:  n.m.requeues.Value(),
		RemoteSearchNodes: n.m.remoteNodes.Value(),
		HelperSearchNodes: n.m.helperNodes.Value(),
	}
}

// handleMetrics augments the service's JSON snapshot with the cluster
// section; the Prometheus text form needs no augmentation because the
// idd_cluster_* instruments live in the same registry the service
// renders.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	accept := r.Header.Get("Accept")
	wantText := r.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
	if wantText {
		n.srv.Handler().ServeHTTP(w, r)
		return
	}
	snap := n.srv.Manager().Metrics()
	writeJSON(w, http.StatusOK, struct {
		service.MetricsSnapshot
		Cluster ClusterSnapshot `json:"cluster"`
	}{snap, n.Snapshot()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
