package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/service"
)

// testCluster is an in-process multi-node cluster: real listeners, real
// HTTP between nodes, everything else in one test binary.
type testCluster struct {
	t     *testing.T
	nodes []*Node
	srvs  []*http.Server
	urls  []string
}

// newTestCluster brings up k nodes. Listeners are bound first so every
// peer URL is known before any node is constructed (membership is
// static). Gossip intervals are cranked down so peer discovery and
// failure detection land in tens of milliseconds.
func newTestCluster(t *testing.T, k int, svcCfg service.Config) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	lns := make([]net.Listener, k)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		tc.urls = append(tc.urls, "http://"+ln.Addr().String())
	}
	for i := range lns {
		cfg := Config{
			Self:           tc.urls[i],
			Peers:          tc.urls,
			GossipInterval: 25 * time.Millisecond,
			PeerTimeout:    100 * time.Millisecond,
			StealInterval:  10 * time.Millisecond,
			MaxHelpers:     1,
			HelperWorkers:  1,
		}
		n, err := New(cfg, svcCfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: n.Handler()}
		go hs.Serve(lns[i])
		n.Start()
		tc.nodes = append(tc.nodes, n)
		tc.srvs = append(tc.srvs, hs)
	}
	t.Cleanup(func() {
		for i := range tc.nodes {
			tc.stopNode(i)
		}
	})
	// Wait until every node sees every peer up.
	deadline := time.Now().Add(5 * time.Second)
	for _, n := range tc.nodes {
		for {
			up := 0
			for _, p := range n.clusterHealth().Peers {
				if p.State == "up" {
					up++
				}
			}
			if up == k-1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("gossip never converged on %s", n.Name())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return tc
}

// stopNode simulates a node dying: HTTP surface closed, loops canceled,
// service drained. Idempotent.
func (tc *testCluster) stopNode(i int) {
	if tc.nodes[i] == nil {
		return
	}
	tc.srvs[i].Close()
	tc.nodes[i].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	tc.nodes[i].Server().Shutdown(ctx)
	cancel()
	tc.nodes[i] = nil
}

// ownerIdx computes which node the ring assigns the instance to.
func (tc *testCluster) ownerIdx(in *model.Instance) int {
	canon, _ := codec.Canonicalize(in)
	owner := tc.nodes[tc.firstLive()].ring.owner(codec.CanonicalHash(canon))
	for i, u := range tc.urls {
		if u == owner {
			return i
		}
	}
	tc.t.Fatalf("owner %s not among nodes", owner)
	return -1
}

func (tc *testCluster) firstLive() int {
	for i, n := range tc.nodes {
		if n != nil {
			return i
		}
	}
	tc.t.Fatal("no live nodes")
	return -1
}

func genInstance(seed int64, indexes, queries int, interact float64) *model.Instance {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = indexes
	cfg.Queries = queries
	cfg.BuildInteractionProb = interact
	return randgen.New(rand.New(rand.NewSource(seed)), cfg)
}

// solveBody builds the POST /solve JSON envelope.
func solveBody(t *testing.T, in *model.Instance, extra map[string]any) []byte {
	t.Helper()
	m := map[string]any{"instance": in}
	for k, v := range extra {
		m[k] = v
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func post(t *testing.T, url string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterForwardingAndReplication: a request landing on a non-owner
// is forwarded to the ring owner (so single-flight and the cache stay
// cluster-wide), and the finished result is replicated so ANY node
// serves the next identical request from its own cache.
func TestClusterForwardingAndReplication(t *testing.T) {
	tc := newTestCluster(t, 3, service.Config{Workers: 1})
	in := genInstance(2, 7, 6, 0.1)
	ownerI := tc.ownerIdx(in)
	nonOwner := (ownerI + 1) % 3
	third := (ownerI + 2) % 3

	body := solveBody(t, in, map[string]any{"backends": []string{"cp"}, "budget": "30s"})
	resp, out := post(t, tc.urls[nonOwner]+"/solve", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, out)
	}
	var res service.SolveResult
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatalf("solve not proved: %s", out)
	}
	if err := in.ValidOrder(res.Order); err != nil {
		t.Fatalf("returned order invalid: %v", err)
	}
	if got := tc.nodes[nonOwner].Snapshot().Forwards; got < 1 {
		t.Fatalf("expected the non-owner to forward to the ring owner, forwards=%d", got)
	}

	// Result replication: the third node (neither submitter nor owner)
	// learns the result and serves it as a local cache hit.
	waitFor(t, "result replication", 5*time.Second, func() bool {
		return tc.nodes[third].Snapshot().ResultsApplied >= 1
	})
	resp, out = post(t, tc.urls[third]+"/solve", body, map[string]string{ForwardedHeader: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed solve status %d: %s", resp.StatusCode, out)
	}
	var res2 service.SolveResult
	if err := json.Unmarshal(out, &res2); err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit {
		t.Fatalf("expected a local cache hit on the replicated result: %s", out)
	}
	if res2.Objective != res.Objective {
		t.Fatalf("replicated objective %v != original %v", res2.Objective, res.Objective)
	}
}

// TestClusterJobProxy: job ids are node-prefixed, so any node can serve
// GET /jobs/{id} by proxying to the id's home node.
func TestClusterJobProxy(t *testing.T) {
	tc := newTestCluster(t, 2, service.Config{Workers: 1})
	in := genInstance(3, 7, 6, 0.1)
	body := solveBody(t, in, map[string]any{"backends": []string{"cp"}, "budget": "30s"})
	// Pin execution to node 0 (the forwarded marker skips rerouting).
	resp, out := post(t, tc.urls[0]+"/jobs", body, map[string]string{ForwardedHeader: "test"})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d: %s", resp.StatusCode, out)
	}
	var job service.JobStatus
	if err := json.Unmarshal(out, &job); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.ID, tc.nodes[0].Name()+"-") {
		t.Fatalf("job id %q not prefixed with node name %q", job.ID, tc.nodes[0].Name())
	}

	waitFor(t, "proxied job completion", 30*time.Second, func() bool {
		r, err := http.Get(tc.urls[1] + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("proxied GET status %d", r.StatusCode)
		}
		var st service.JobStatus
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.State == service.StateDone
	})
	if got := tc.nodes[1].Snapshot().Proxied; got < 1 {
		t.Fatalf("expected node 1 to proxy the id-addressed request, proxied=%d", got)
	}
}

// refObjective solves the instance on an isolated single-node service
// with identical parameters — the baseline the distributed proof must
// match bit-for-bit.
func refObjective(t *testing.T, in *model.Instance, body []byte) float64 {
	t.Helper()
	s := service.New(service.Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	req, _ := http.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := newRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.code != http.StatusOK {
		t.Fatalf("reference solve status %d: %s", rec.code, rec.buf.String())
	}
	var res service.SolveResult
	if err := json.Unmarshal(rec.buf.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatal("reference solve not proved")
	}
	return res.Objective
}

// recorder is a minimal ResponseWriter (httptest.NewRecorder works too,
// but this keeps the dependency surface explicit).
type recorder struct {
	code int
	hdr  http.Header
	buf  bytes.Buffer
}

func newRecorder() *recorder            { return &recorder{code: http.StatusOK, hdr: http.Header{}} }
func (r *recorder) Header() http.Header { return r.hdr }
func (r *recorder) WriteHeader(c int)   { r.code = c }
func (r *recorder) Write(b []byte) (int, error) {
	return r.buf.Write(b)
}

// TestClusterDistributedProof is the tentpole end-to-end: a CP
// optimality proof on one node exports frontier subtrees to idle peers
// over HTTP, the proof completes with search nodes contributed by at
// least two nodes, and the objective is bit-identical to a single-node
// proof of the same request.
func TestClusterDistributedProof(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second distributed proof")
	}
	// ~1.5s proof through the service path (pruning + tail bound
	// included): long enough for helpers to land steals, short enough
	// for CI.
	in := genInstance(33, 18, 13, 0.35)
	body := solveBody(t, in, map[string]any{
		"backends": []string{"cp"},
		"budget":   "45s",
		"params":   map[string]any{"cp.workers": 2},
	})
	ref := refObjective(t, in, body)

	tc := newTestCluster(t, 3, service.Config{Workers: 1})
	ownerI := tc.ownerIdx(in)
	submitI := (ownerI + 1) % 3

	resp, out := post(t, tc.urls[submitI]+"/solve", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, out)
	}
	var res service.SolveResult
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatalf("distributed solve not proved: %s", out)
	}
	if res.Objective != ref {
		t.Fatalf("distributed objective %v != single-node %v (must be bit-identical)", res.Objective, ref)
	}

	donor := tc.nodes[ownerI].Snapshot()
	if donor.StealsServed < 1 {
		t.Fatalf("no subtree was stolen — proof was not distributed: %+v", donor)
	}
	if donor.SubtreesCompleted < 1 {
		t.Fatalf("no stolen subtree was completed remotely: %+v", donor)
	}
	if donor.RemoteSearchNodes < 1 {
		t.Fatalf("peers contributed no search nodes: %+v", donor)
	}
	helperSteals := int64(0)
	for i, n := range tc.nodes {
		if i != ownerI {
			helperSteals += n.Snapshot().RemoteSteals
		}
	}
	if helperSteals < 1 {
		t.Fatalf("no peer recorded a remote steal")
	}
	t.Logf("donor: steals_served=%d completed=%d remote_nodes=%d; helper steals=%d",
		donor.StealsServed, donor.SubtreesCompleted, donor.RemoteSearchNodes, helperSteals)
}

// TestClusterHelperFailureRequeue: a helper node dies mid-solve holding
// a donated subtree. The donor detects the death via gossip, requeues
// the subtree locally, and the proof still completes sound with the
// single-node objective.
func TestClusterHelperFailureRequeue(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second failure drill")
	}
	// ~2s proof through the service path: a wide window to kill the
	// helper while it holds a subtree.
	in := genInstance(11, 18, 14, 0.4)
	body := solveBody(t, in, map[string]any{
		"backends": []string{"cp"},
		"budget":   "50s",
		"params":   map[string]any{"cp.workers": 2},
	})
	ref := refObjective(t, in, body)

	tc := newTestCluster(t, 2, service.Config{Workers: 1})
	// Pin the solve to node 0 whatever the ring says; node 1 is the
	// helper that will die.
	resp, out := post(t, tc.urls[0]+"/jobs", body, map[string]string{ForwardedHeader: "test"})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d: %s", resp.StatusCode, out)
	}
	var job service.JobStatus
	if err := json.Unmarshal(out, &job); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "first steal", 20*time.Second, func() bool {
		return tc.nodes[0].Snapshot().StealsServed >= 1
	})
	tc.stopNode(1) // helper dies holding (at least) one subtree

	var final service.JobStatus
	waitFor(t, "job completion after helper death", 60*time.Second, func() bool {
		r, err := http.Get(tc.urls[0] + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if err := json.NewDecoder(r.Body).Decode(&final); err != nil {
			t.Fatal(err)
		}
		if final.State == service.StateFailed || final.State == service.StateCanceled {
			t.Fatalf("job reached %q after helper death: %s", final.State, final.Error)
		}
		return final.State == service.StateDone
	})
	if final.Result == nil || !final.Result.Proved {
		t.Fatalf("proof lost after helper death: %+v", final.Result)
	}
	if final.Result.Objective != ref {
		t.Fatalf("objective %v != single-node %v after helper death", final.Result.Objective, ref)
	}
	snap := tc.nodes[0].Snapshot()
	if snap.StealsServed >= 1 && snap.SubtreesCompleted == 0 && snap.SubtreesRequeued == 0 {
		t.Fatalf("stolen subtree neither completed nor requeued: %+v", snap)
	}
	t.Logf("donor after helper death: steals=%d completed=%d requeued=%d",
		snap.StealsServed, snap.SubtreesCompleted, snap.SubtreesRequeued)
}

// TestClusterHealthzAndMetrics: the wrapped endpoints carry the cluster
// sections — peer membership with health in /healthz, the idd_cluster_*
// counters in both /metrics forms.
func TestClusterHealthzAndMetrics(t *testing.T) {
	tc := newTestCluster(t, 2, service.Config{Workers: 1})
	r, err := http.Get(tc.urls[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status  string        `json:"status"`
		Cluster ClusterHealth `json:"cluster"`
	}
	if err := json.NewDecoder(r.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if hz.Status != "ok" {
		t.Fatalf("status %q", hz.Status)
	}
	if hz.Cluster.Name != tc.nodes[0].Name() || len(hz.Cluster.Peers) != 1 {
		t.Fatalf("bad cluster section: %+v", hz.Cluster)
	}
	if p := hz.Cluster.Peers[0]; p.State != "up" || p.Name != tc.nodes[1].Name() || p.Addr != tc.urls[1] {
		t.Fatalf("bad peer row: %+v", p)
	}

	r, err = http.Get(tc.urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var ms struct {
		Workers int `json:"workers"`
		Cluster *ClusterSnapshot
	}
	if err := json.NewDecoder(r.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if ms.Cluster == nil {
		t.Fatal("JSON metrics missing cluster section")
	}
	if ms.Workers != 1 {
		t.Fatalf("service snapshot fields not inlined next to cluster section: %+v", ms)
	}

	r, err = http.Get(tc.urls[0] + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, want := range []string{"idd_cluster_peers_up", "idd_cluster_forwards_total"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("prometheus output missing %s", want)
		}
	}
}
