package cluster

import "sync"

// Cross-node incumbent exchange is coordinator-free because an
// incumbent is a natural CRDT: merge = take the better schedule, with a
// deterministic total order breaking ties. Every node applies every
// delivery through Merge, so any delivery order, any duplication, and
// any regrouping converge to the same state — the property tests in
// lww_test.go pin exactly that.

// Clock is a Lamport logical clock: Tick stamps local events, Witness
// folds in stamps observed from peers so local stamps always move past
// anything already seen cluster-wide.
type Clock struct {
	mu  sync.Mutex
	now uint64
}

// Tick advances the clock and returns a fresh stamp.
func (c *Clock) Tick() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now++
	return c.now
}

// Witness folds a remotely observed stamp into the clock.
func (c *Clock) Witness(t uint64) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// Incumbent is one replicated best-known schedule for a solve key. The
// order is in canonical index space — every node canonicalizes
// identically, so a schedule found anywhere is meaningful everywhere.
// Objectives are finite by construction (they come from feasible
// orders); NaN is not representable in JSON and never enters the merge.
type Incumbent struct {
	// Objective is the schedule's objective (lower is better).
	Objective float64 `json:"objective"`
	// Order is the schedule itself, canonical index space.
	Order []int `json:"order"`
	// Clock is the publisher's Lamport stamp: among equal objectives,
	// the *latest* writer wins (the LWW in the merge's name).
	Clock uint64 `json:"clock"`
	// Node is the publishing node's name, the next tie-break.
	Node string `json:"node"`
}

// zero reports the empty incumbent (no schedule known).
func (a Incumbent) zero() bool { return a.Order == nil }

// Dominates reports whether a strictly beats b in the merge's total
// order: better (lower) objective first — a better objective is NEVER
// displaced by a worse one, whatever the clocks say — then, among equal
// objectives, the higher Lamport stamp (last writer wins), then the
// smaller node name, then the lexicographically smaller order. The
// final tie-breaks exist only to make the order total, which is what
// makes Merge commutative.
func (a Incumbent) Dominates(b Incumbent) bool {
	switch {
	case a.zero():
		return false
	case b.zero():
		return true
	case a.Objective != b.Objective:
		return a.Objective < b.Objective
	case a.Clock != b.Clock:
		return a.Clock > b.Clock
	case a.Node != b.Node:
		return a.Node < b.Node
	}
	for i := range a.Order {
		if i >= len(b.Order) {
			return false
		}
		if a.Order[i] != b.Order[i] {
			return a.Order[i] < b.Order[i]
		}
	}
	return false
}

// Merge returns the winner of two incumbents. Commutative, associative,
// and idempotent (see Dominates for the total order), so replicas
// converge under any delivery schedule.
func Merge(a, b Incumbent) Incumbent {
	if a.Dominates(b) {
		return a
	}
	return b
}

// lwwMap is the replicated incumbent table: solve key → merged best.
// Bounded FIFO eviction keeps a long-lived node from accumulating one
// entry per solve ever seen; evicting an old key only costs a re-learn.
type lwwMap struct {
	mu    sync.Mutex
	m     map[string]Incumbent
	fifo  []string
	limit int
}

func newLWWMap(limit int) *lwwMap {
	if limit <= 0 {
		limit = 1024
	}
	return &lwwMap{m: make(map[string]Incumbent), limit: limit}
}

// apply merges inc into the entry for key. It reports whether inc won
// the merge (i.e. the stored value is now inc) — the signal for
// offering a remote incumbent to a live solve and for the
// broadcasts-applied metric.
func (t *lwwMap) apply(key string, inc Incumbent) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.m[key]
	if !ok {
		if len(t.fifo) >= t.limit {
			delete(t.m, t.fifo[0])
			t.fifo = t.fifo[1:]
		}
		t.fifo = append(t.fifo, key)
	}
	merged := Merge(cur, inc)
	t.m[key] = merged
	return !ok || merged.Dominates(cur) // inc won iff the entry changed
}

// get returns the merged incumbent for key.
func (t *lwwMap) get(key string) (Incumbent, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	inc, ok := t.m[key]
	return inc, ok
}
