package cluster

import (
	"math/rand"
	"testing"
)

// randInc draws a random incumbent from a small value space so property
// runs hit ties on every field (the interesting merge cases).
func randInc(rng *rand.Rand) Incumbent {
	if rng.Intn(8) == 0 {
		return Incumbent{} // the zero (nothing known) element
	}
	orders := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {2, 0, 1}}
	return Incumbent{
		Objective: float64(rng.Intn(3)) * 1.5,
		Order:     orders[rng.Intn(len(orders))],
		Clock:     uint64(rng.Intn(4)),
		Node:      []string{"na", "nb", "nc"}[rng.Intn(3)],
	}
}

func equalInc(a, b Incumbent) bool {
	if a.Objective != b.Objective || a.Clock != b.Clock || a.Node != b.Node ||
		len(a.Order) != len(b.Order) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
	}
	return true
}

func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b := randInc(rng), randInc(rng)
		if !equalInc(Merge(a, b), Merge(b, a)) {
			t.Fatalf("Merge not commutative: a=%+v b=%+v", a, b)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b, c := randInc(rng), randInc(rng), randInc(rng)
		l := Merge(Merge(a, b), c)
		r := Merge(a, Merge(b, c))
		if !equalInc(l, r) {
			t.Fatalf("Merge not associative: a=%+v b=%+v c=%+v (ab)c=%+v a(bc)=%+v", a, b, c, l, r)
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a := randInc(rng)
		if !equalInc(Merge(a, a), a) {
			t.Fatalf("Merge not idempotent: a=%+v", a)
		}
	}
}

// TestMergeNeverWorse pins the safety property the cluster relies on: a
// merge never replaces a known schedule with a worse-objective one,
// whatever the clocks and tie-break fields say.
func TestMergeNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		a, b := randInc(rng), randInc(rng)
		m := Merge(a, b)
		if !a.zero() && m.Objective > a.Objective {
			t.Fatalf("merge degraded objective: a=%+v b=%+v m=%+v", a, b, m)
		}
		if !b.zero() && m.Objective > b.Objective {
			t.Fatalf("merge degraded objective: a=%+v b=%+v m=%+v", a, b, m)
		}
		if a.zero() && b.zero() && !m.zero() {
			t.Fatalf("merge invented a schedule: m=%+v", m)
		}
	}
}

// TestMergeConvergent replays the same random update batch against many
// replicas, each seeing a different delivery order and duplication
// pattern, and requires every replica to land on the identical state —
// the CRDT convergence property that makes the incumbent exchange
// coordinator-free.
func TestMergeConvergent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		updates := make([]Incumbent, 1+rng.Intn(12))
		for i := range updates {
			updates[i] = randInc(rng)
		}
		var states []Incumbent
		for replica := 0; replica < 6; replica++ {
			perm := rng.Perm(len(updates))
			state := Incumbent{}
			for _, i := range perm {
				state = Merge(state, updates[i])
				if rng.Intn(3) == 0 { // duplicated delivery
					state = Merge(state, updates[i])
				}
			}
			states = append(states, state)
		}
		for _, s := range states[1:] {
			if !equalInc(s, states[0]) {
				t.Fatalf("replicas diverged: %+v vs %+v (trial %d)", states[0], s, trial)
			}
		}
	}
}

func TestLWWMapApply(t *testing.T) {
	m := newLWWMap(2)
	a := Incumbent{Objective: 5, Order: []int{0, 1}, Clock: 1, Node: "na"}
	if !m.apply("k", a) {
		t.Fatal("first apply should win")
	}
	if m.apply("k", a) {
		t.Fatal("idempotent redelivery should not count as applied")
	}
	worse := Incumbent{Objective: 9, Order: []int{1, 0}, Clock: 99, Node: "nz"}
	if m.apply("k", worse) {
		t.Fatal("worse objective must not win, whatever the clock")
	}
	if got, _ := m.get("k"); !equalInc(got, a) {
		t.Fatalf("stored incumbent corrupted: %+v", got)
	}
	better := Incumbent{Objective: 3, Order: []int{1, 0}, Clock: 0, Node: "nz"}
	if !m.apply("k", better) {
		t.Fatal("better objective must win even with an older clock")
	}
	// FIFO bound: a third key evicts the oldest.
	m.apply("k2", a)
	m.apply("k3", a)
	if _, ok := m.get("k"); ok {
		t.Fatal("expected k evicted by FIFO bound")
	}
	if _, ok := m.get("k3"); !ok {
		t.Fatal("expected k3 present")
	}
}

func TestRingDeterministicAndStable(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, r2 := newRing(addrs), newRing([]string{addrs[2], addrs[0], addrs[1]})
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		key := string(rune('a'+i%26)) + "key" + string(rune('0'+i%10)) + string(rune('a'+(i/26)%26))
		o1, o2 := r1.owner(key), r2.owner(key)
		if o1 != o2 {
			t.Fatalf("ring owner depends on input order: %q vs %q", o1, o2)
		}
		counts[o1]++
	}
	for _, a := range addrs {
		if counts[a] == 0 {
			t.Fatalf("member %s owns nothing: %v", a, counts)
		}
	}
}
