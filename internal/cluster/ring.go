package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringReplicas is the virtual-node count per member. 64 points per node
// keeps the ownership split within a few percent of even for small
// clusters while the ring stays tiny (a 16-node cluster is 1024 sorted
// uint64s).
const ringReplicas = 64

// ring is a consistent-hash ring over the static member list. Ownership
// is a pure function of the full configured membership — deliberately
// NOT of current health — so every node computes the same owner for a
// key regardless of its local gossip view, and a peer flapping up/down
// does not reshuffle the cache keyspace. Health only gates whether a
// request is actually forwarded (a down owner is served locally).
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	addr string
}

func hashPoint(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

func newRing(addrs []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(addrs)*ringReplicas)}
	for _, a := range addrs {
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: hashPoint(a + "#" + strconv.Itoa(i)),
				addr: a,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by address so every node
		// still sorts the ring identically.
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// owner returns the member address owning key: the first ring point at
// or after the key's hash, wrapping at the top.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}
