package cluster

// Distributed CP work stealing. The wire frame is tiny — a deployment
// prefix, a few dozen bytes — because both ends already share
// everything else: the canonical instance (shipped once per steal),
// the deterministic constraint derivation, and the incumbent via the
// LWW exchange. The ledger discipline mirrors the in-process one: a
// steal leaves the donor's open-subproblem counter untouched and the
// helper owes exactly one settlement (complete or requeue); the owner's
// watchdog requeues exports whose helper died or whose deadline passed,
// so a lost peer costs duplicated work, never a lost subtree — the
// optimality certificate stays sound.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/service"
	"github.com/evolving-olap/idd/internal/solver/backend"
	"github.com/evolving-olap/idd/internal/solver/cp"
)

// distributor adapts the Node to the service.Distributor seam.
type distributor struct{ n *Node }

func (d distributor) SolveStarted(s service.SolveStart) service.DistributedSolve {
	n := d.n
	as := &activeSolve{n: n, start: s}
	n.mu.Lock()
	n.active[s.Key] = as
	n.mu.Unlock()
	// A peer may already have solved (or be solving) this key: seed the
	// store with the replicated incumbent so every local backend starts
	// from the cluster-wide best.
	if inc, ok := n.incs.get(s.Key); ok && !inc.zero() {
		s.Store.Offer("cluster", inc.Order, inc.Objective)
	}
	return as
}

func (d distributor) ResultCached(key string, res *service.SolveResult) {
	d.n.resultCached(key, res)
}

// activeSolve is one executing solve announced by the job manager,
// alive from SolveStarted to Done.
type activeSolve struct {
	n     *Node
	start service.SolveStart

	mu      sync.Mutex
	sources []backend.WorkSource
	done    bool
}

func (as *activeSolve) Exporter() func(ws backend.WorkSource) (release func()) {
	return func(ws backend.WorkSource) func() {
		as.mu.Lock()
		as.sources = append(as.sources, ws)
		as.mu.Unlock()
		return func() {
			// The search is returning: detach the source and invalidate
			// every outstanding export against it so no settlement ever
			// reaches a dead run.
			as.mu.Lock()
			for i, s := range as.sources {
				if s == ws {
					as.sources = append(as.sources[:i], as.sources[i+1:]...)
					break
				}
			}
			as.mu.Unlock()
			as.n.dropExports(func(e *export) bool { return e.ws == ws })
		}
	}
}

func (as *activeSolve) Improved(order []int, objective float64) {
	as.n.broadcastIncumbent(as.start.Key, order, objective)
}

func (as *activeSolve) Done() {
	as.mu.Lock()
	as.done = true
	as.sources = nil
	as.mu.Unlock()
	n := as.n
	n.mu.Lock()
	if n.active[as.start.Key] == as {
		delete(n.active, as.start.Key)
	}
	n.mu.Unlock()
	n.dropExports(func(e *export) bool { return e.as == as })
}

// activeSolve returns the live solve for key, if any.
func (n *Node) activeSolve(key string) *activeSolve {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.active[key]
}

// exportableWork reports whether any live solve has an attached
// frontier (the "busy" bit peers see in health gossip).
func (n *Node) exportableWork() bool {
	n.mu.Lock()
	solves := make([]*activeSolve, 0, len(n.active))
	for _, as := range n.active {
		solves = append(solves, as)
	}
	n.mu.Unlock()
	for _, as := range solves {
		as.mu.Lock()
		busy := !as.done && len(as.sources) > 0
		as.mu.Unlock()
		if busy {
			return true
		}
	}
	return false
}

// export is one donated subtree awaiting settlement from a helper.
type export struct {
	id     string
	as     *activeSolve
	ws     backend.WorkSource
	prefix []int
	helper string // helper's advertised address (liveness watch)
	expiry time.Time
}

// dropExports removes matching exports WITHOUT requeueing: used when
// the owning search has already ended (its counter no longer exists).
func (n *Node) dropExports(match func(*export) bool) {
	n.mu.Lock()
	for id, e := range n.exports {
		if match(e) {
			delete(n.exports, id)
		}
	}
	n.mu.Unlock()
}

// exportWatchdog requeues exports whose helper is down or whose expiry
// passed. Parked donor workers wake on the requeue broadcast, so a lost
// subtree re-enters the local frontier within one gossip round of the
// helper's death.
func (n *Node) exportWatchdog() {
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
			now := time.Now()
			var lost []*export
			n.mu.Lock()
			for id, e := range n.exports {
				ps := n.peers[e.helper]
				if now.After(e.expiry) || (ps != nil && !ps.up) {
					delete(n.exports, id)
					lost = append(lost, e)
				}
			}
			n.mu.Unlock()
			for _, e := range lost {
				e.as.mu.Lock()
				ok := !e.as.done
				e.as.mu.Unlock()
				if ok {
					e.ws.RequeueSubtree(e.prefix)
					n.m.requeues.Inc()
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Donor side: POST /cluster/steal and /cluster/complete

type stealReq struct {
	// Node/Addr identify the helper (the addr feeds the liveness watch).
	Node string `json:"node"`
	Addr string `json:"addr"`
}

type stealResp struct {
	Found bool   `json:"found"`
	ID    string `json:"id,omitempty"`
	Key   string `json:"key,omitempty"`
	// Instance is the canonical instance; the helper re-derives the
	// identical compiled model and constraint set from it.
	Instance *model.Instance `json:"instance,omitempty"`
	Prune    bool            `json:"prune,omitempty"`
	Prefix   []int           `json:"prefix,omitempty"`
	// Incumbent/Objective seed the helper's search with the donor's
	// current best so it prunes as hard as the donor would.
	Incumbent []int   `json:"incumbent,omitempty"`
	Objective float64 `json:"objective,omitempty"`
	// DeadlineMS is the solve budget expiry (unix millis); the helper
	// must settle by then or the watchdog requeues.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req stealReq
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Addr == "" {
		http.Error(w, `{"error":"bad steal request"}`, http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	solves := make([]*activeSolve, 0, len(n.active))
	for _, as := range n.active {
		solves = append(solves, as)
	}
	n.mu.Unlock()
	for _, as := range solves {
		as.mu.Lock()
		if as.done || len(as.sources) == 0 {
			as.mu.Unlock()
			continue
		}
		var prefix []int
		var ws backend.WorkSource
		for _, s := range as.sources {
			if p, ok := s.StealSubtree(); ok {
				prefix, ws = p, s
				break
			}
		}
		as.mu.Unlock()
		if ws == nil {
			continue
		}
		e := &export{
			as:     as,
			ws:     ws,
			prefix: prefix,
			helper: req.Addr,
			// Settlement grace past the solve deadline covers the
			// helper's final report round-trip.
			expiry: as.start.Deadline.Add(2 * time.Second),
		}
		n.mu.Lock()
		n.nextExp++
		e.id = fmt.Sprintf("%s-x%d", n.name, n.nextExp)
		n.exports[e.id] = e
		n.mu.Unlock()
		n.m.stealsServed.Inc()
		resp := stealResp{
			Found:      true,
			ID:         e.id,
			Key:        as.start.Key,
			Instance:   as.start.Canon,
			Prune:      as.start.Prune,
			Prefix:     prefix,
			DeadlineMS: as.start.Deadline.UnixMilli(),
		}
		if order, obj, _ := as.start.Store.Best(); order != nil {
			resp.Incumbent, resp.Objective = order, obj
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusOK, stealResp{Found: false})
}

type completeMsg struct {
	ID string `json:"id"`
	// Exhausted reports the subtree fully explored (the donor may
	// settle its open-subproblem debt); false means the helper gave up
	// and the subtree must be requeued.
	Exhausted bool    `json:"exhausted"`
	Order     []int   `json:"order,omitempty"`
	Objective float64 `json:"objective,omitempty"`
	// Nodes is the helper's search-node count (proof attribution).
	Nodes int64 `json:"nodes"`
}

func (n *Node) handleComplete(w http.ResponseWriter, r *http.Request) {
	var msg completeMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err != nil || msg.ID == "" {
		http.Error(w, `{"error":"bad completion"}`, http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	e := n.exports[msg.ID]
	delete(n.exports, msg.ID)
	n.mu.Unlock()
	if e == nil {
		// Already requeued by the watchdog (or the solve ended): the
		// helper's work is simply discarded — duplication, not error.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	as := e.as
	as.mu.Lock()
	dead := as.done
	as.mu.Unlock()
	if dead {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// Trust nothing from the wire: an order must be a constraint-
	// compatible permutation and its objective is recomputed locally.
	var best []int
	var obj float64
	if msg.Order != nil && validFullOrder(as.start.Compiled.N, as.start.Constraints, msg.Order) {
		best = msg.Order
		obj = as.start.Compiled.Objective(msg.Order)
		as.start.Store.Offer("cluster-helper", best, obj)
	}
	if msg.Exhausted {
		e.ws.CompleteSubtree(best, obj)
		n.m.completions.Inc()
		n.m.remoteNodes.Add(msg.Nodes)
	} else {
		e.ws.RequeueSubtree(e.prefix)
		n.m.requeues.Inc()
	}
	w.WriteHeader(http.StatusNoContent)
}

// validFullOrder reports whether order is a permutation of 0..n-1
// compatible with the constraint set.
func validFullOrder(n int, cs *constraint.Set, order []int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return cs == nil || cs.Compatible(order)
}

// ---------------------------------------------------------------------------
// Helper side: the steal loop

func (n *Node) helperLoop() {
	t := time.NewTicker(n.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
			n.tryStealOnce()
		}
	}
}

// tryStealOnce asks one busy peer for a subtree if this node has spare
// capacity, and solves it synchronously (the loop tick is the pacing).
func (n *Node) tryStealOnce() {
	running, workers := n.srv.Manager().Load()
	n.mu.Lock()
	helpers := n.helpers
	n.mu.Unlock()
	if running >= workers || helpers >= n.cfg.MaxHelpers {
		return
	}
	for _, ps := range n.upPeers(true) {
		resp, ok := n.requestSteal(ps)
		if !ok || !resp.Found {
			continue
		}
		n.mu.Lock()
		n.helpers++
		n.mu.Unlock()
		n.m.remoteSteals.Inc()
		n.runHelper(ps, resp)
		n.mu.Lock()
		n.helpers--
		n.mu.Unlock()
		return
	}
}

func (n *Node) requestSteal(ps *peerState) (stealResp, bool) {
	body, _ := json.Marshal(stealReq{Node: n.name, Addr: n.cfg.Self})
	ctx, cancel := context.WithTimeout(n.ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ps.addr+"/cluster/steal", bytes.NewReader(body))
	if err != nil {
		return stealResp{}, false
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := n.client.Do(req)
	if err != nil {
		n.markDown(ps.addr)
		return stealResp{}, false
	}
	defer httpResp.Body.Close()
	var resp stealResp
	if httpResp.StatusCode != http.StatusOK ||
		json.NewDecoder(io.LimitReader(httpResp.Body, 8<<20)).Decode(&resp) != nil {
		return stealResp{}, false
	}
	return resp, true
}

// runHelper adopts one donated subtree: recompile the canonical
// instance, re-derive the identical constraint set, prove the subtree,
// and settle with the donor. Sound whatever happens on the wire — an
// unreported settlement is requeued by the donor's watchdog.
func (n *Node) runHelper(ps *peerState, sr stealResp) {
	exhausted := false
	var res cp.Result
	var nodes int64
	c, err := model.Compile(sr.Instance)
	if err == nil {
		cs := sched.PrecedenceSet(sr.Instance)
		if sr.Prune {
			cs, _ = prune.Analyze(c, prune.Options{})
		}
		opt := cp.Options{
			Workers:  n.cfg.HelperWorkers,
			Context:  n.ctx,
			Deadline: time.UnixMilli(sr.DeadlineMS),
			Incumbent: func() []int {
				if validFullOrder(c.N, cs, sr.Incumbent) {
					return sr.Incumbent
				}
				return nil
			}(),
			TailBound: prune.NewTailBound(c, cs, prune.Options{}),
			// The LWW table holds the freshest cluster-wide incumbent
			// for this key (stale reads only loosen the bound — never
			// unsound); improvements found here are broadcast so the
			// donor (and everyone else) tightens too.
			ExternalBound: func() float64 {
				if inc, ok := n.incs.get(sr.Key); ok && !inc.zero() {
					return inc.Objective
				}
				return math.Inf(1)
			},
			OnSolution: func(order []int, obj float64) {
				n.broadcastIncumbent(sr.Key, order, obj)
			},
		}
		res = cp.SolveSubtree(c, cs, sr.Prefix, opt)
		exhausted = res.Proved
		nodes = res.Nodes
		n.m.helperNodes.Add(nodes)
	}
	msg := completeMsg{ID: sr.ID, Exhausted: exhausted, Nodes: nodes}
	if res.Order != nil {
		msg.Order, msg.Objective = res.Order, res.Objective
	}
	n.reportCompletion(ps, msg)
}

// reportCompletion posts the settlement, retrying once; a lost report
// is recovered by the donor's watchdog (requeue), so this is
// best-effort by design.
func (n *Node) reportCompletion(ps *peerState, msg completeMsg) {
	body, _ := json.Marshal(msg)
	for attempt := 0; attempt < 2; attempt++ {
		ctx, cancel := context.WithTimeout(n.ctx, 2*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ps.addr+"/cluster/complete", bytes.NewReader(body))
		if err != nil {
			cancel()
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.client.Do(req)
		cancel()
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return
		}
	}
	n.markDown(ps.addr)
}
