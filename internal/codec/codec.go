// Package codec reads and writes problem instances — the paper's "matrix
// file" produced by what-if analysis (Figure 3). Two formats are
// supported: JSON (self-describing, the default interchange format) and a
// compact line-oriented text format convenient for hand-editing small
// instances and for diffing.
//
// Text format, one record per line, '#' comments:
//
//	instance NAME
//	index NAME CREATE_COST [table=T] [cols=a,b,c] [include=d,e]
//	query NAME RUNTIME [weight=W]
//	plan QUERY_NAME SPEEDUP INDEX_NAME[,INDEX_NAME...]
//	build TARGET_NAME HELPER_NAME SPEEDUP
//	prec BEFORE_NAME AFTER_NAME
package codec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/evolving-olap/idd/internal/model"
)

// WriteJSON writes the instance as indented JSON.
func WriteJSON(w io.Writer, in *model.Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// ReadJSON parses an instance from JSON and validates it.
func ReadJSON(r io.Reader) (*model.Instance, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in model.Instance
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("codec: parse json: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("codec: invalid instance: %w", err)
	}
	return &in, nil
}

// SaveFile writes the instance to path; format is chosen by extension
// (.json => JSON, anything else => text).
func SaveFile(path string, in *model.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		if err := WriteJSON(f, in); err != nil {
			return err
		}
	} else if err := WriteText(f, in); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads an instance from path; format chosen by extension.
func LoadFile(path string) (*model.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return ReadJSON(f)
	}
	return ReadText(f)
}

// WriteText writes the compact text format.
func WriteText(w io.Writer, in *model.Instance) error {
	bw := bufio.NewWriter(w)
	if in.Name != "" {
		fmt.Fprintf(bw, "instance %s\n", in.Name)
	}
	for _, ix := range in.Indexes {
		fmt.Fprintf(bw, "index %s %g", ix.Name, ix.CreateCost)
		if ix.Table != "" {
			fmt.Fprintf(bw, " table=%s", ix.Table)
		}
		if len(ix.Columns) > 0 {
			fmt.Fprintf(bw, " cols=%s", strings.Join(ix.Columns, ","))
		}
		if len(ix.Include) > 0 {
			fmt.Fprintf(bw, " include=%s", strings.Join(ix.Include, ","))
		}
		fmt.Fprintln(bw)
	}
	for _, q := range in.Queries {
		fmt.Fprintf(bw, "query %s %g", q.Name, q.Runtime)
		if q.Weight != 0 && q.Weight != 1 {
			fmt.Fprintf(bw, " weight=%g", q.Weight)
		}
		fmt.Fprintln(bw)
	}
	for _, p := range in.Plans {
		names := make([]string, len(p.Indexes))
		for k, ix := range p.Indexes {
			names[k] = in.Indexes[ix].Name
		}
		fmt.Fprintf(bw, "plan %s %g %s\n", in.Queries[p.Query].Name, p.Speedup, strings.Join(names, ","))
	}
	for _, b := range in.BuildInteractions {
		fmt.Fprintf(bw, "build %s %s %g\n", in.Indexes[b.Target].Name, in.Indexes[b.Helper].Name, b.Speedup)
	}
	for _, pr := range in.Precedences {
		fmt.Fprintf(bw, "prec %s %s\n", in.Indexes[pr.Before].Name, in.Indexes[pr.After].Name)
	}
	return bw.Flush()
}

// ReadText parses the compact text format and validates the result.
func ReadText(r io.Reader) (*model.Instance, error) {
	in := &model.Instance{}
	idxByName := map[string]int{}
	qByName := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(format string, args ...any) error {
			return fmt.Errorf("codec: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "instance":
			if len(fields) != 2 {
				return nil, bad("instance wants 1 argument")
			}
			in.Name = fields[1]
		case "index":
			if len(fields) < 3 {
				return nil, bad("index wants at least name and cost")
			}
			cost, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, bad("bad cost %q", fields[2])
			}
			ix := model.Index{Name: fields[1], CreateCost: cost}
			for _, opt := range fields[3:] {
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return nil, bad("bad option %q", opt)
				}
				switch k {
				case "table":
					ix.Table = v
				case "cols":
					ix.Columns = strings.Split(v, ",")
				case "include":
					ix.Include = strings.Split(v, ",")
				default:
					return nil, bad("unknown index option %q", k)
				}
			}
			if _, dup := idxByName[ix.Name]; dup {
				return nil, bad("duplicate index %q", ix.Name)
			}
			idxByName[ix.Name] = len(in.Indexes)
			in.Indexes = append(in.Indexes, ix)
		case "query":
			if len(fields) < 3 {
				return nil, bad("query wants at least name and runtime")
			}
			rt, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, bad("bad runtime %q", fields[2])
			}
			q := model.Query{Name: fields[1], Runtime: rt}
			for _, opt := range fields[3:] {
				k, v, ok := strings.Cut(opt, "=")
				if !ok || k != "weight" {
					return nil, bad("unknown query option %q", opt)
				}
				w, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, bad("bad weight %q", v)
				}
				q.Weight = w
			}
			if _, dup := qByName[q.Name]; dup {
				return nil, bad("duplicate query %q", q.Name)
			}
			qByName[q.Name] = len(in.Queries)
			in.Queries = append(in.Queries, q)
		case "plan":
			if len(fields) != 4 {
				return nil, bad("plan wants query, speedup, index list")
			}
			qi, ok := qByName[fields[1]]
			if !ok {
				return nil, bad("unknown query %q", fields[1])
			}
			spd, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, bad("bad speedup %q", fields[2])
			}
			var idxs []int
			for _, nm := range strings.Split(fields[3], ",") {
				ii, ok := idxByName[nm]
				if !ok {
					return nil, bad("unknown index %q", nm)
				}
				idxs = append(idxs, ii)
			}
			in.Plans = append(in.Plans, model.Plan{Query: qi, Indexes: idxs, Speedup: spd})
		case "build":
			if len(fields) != 4 {
				return nil, bad("build wants target, helper, speedup")
			}
			ti, ok := idxByName[fields[1]]
			if !ok {
				return nil, bad("unknown index %q", fields[1])
			}
			hi, ok := idxByName[fields[2]]
			if !ok {
				return nil, bad("unknown index %q", fields[2])
			}
			spd, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, bad("bad speedup %q", fields[3])
			}
			in.BuildInteractions = append(in.BuildInteractions, model.BuildInteraction{Target: ti, Helper: hi, Speedup: spd})
		case "prec":
			if len(fields) != 3 {
				return nil, bad("prec wants before, after")
			}
			bi, ok := idxByName[fields[1]]
			if !ok {
				return nil, bad("unknown index %q", fields[1])
			}
			ai, ok := idxByName[fields[2]]
			if !ok {
				return nil, bad("unknown index %q", fields[2])
			}
			in.Precedences = append(in.Precedences, model.Precedence{Before: bi, After: ai})
		default:
			return nil, bad("unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("codec: invalid instance: %w", err)
	}
	return in, nil
}
