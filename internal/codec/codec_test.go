package codec

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
)

func sample() *model.Instance {
	return &model.Instance{
		Name: "sample",
		Indexes: []model.Index{
			{Name: "ix_lang_reg", Table: "users", Columns: []string{"lang", "region"}, CreateCost: 10},
			{Name: "ix_lang_age_reg", Table: "users", Columns: []string{"lang", "age", "region"}, Include: []string{"name"}, CreateCost: 25},
		},
		Queries: []model.Query{
			{Name: "q1", Runtime: 100},
			{Name: "q2", Runtime: 80, Weight: 2},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 30},
			{Query: 0, Indexes: []int{1}, Speedup: 55},
			{Query: 1, Indexes: []int{0, 1}, Speedup: 60},
		},
		BuildInteractions: []model.BuildInteraction{
			{Target: 0, Helper: 1, Speedup: 7},
		},
		Precedences: []model.Precedence{
			{Before: 1, After: 0},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := sample()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", in, got)
	}
}

func TestTextRoundTrip(t *testing.T) {
	in := sample()
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("parse:\n%s\nerr: %v", buf.String(), err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", in, got)
	}
}

func TestTextCommentsAndBlankLines(t *testing.T) {
	src := `
# a comment
instance demo

index a 5
index b 7 table=t cols=x,y
query q 50
plan q 10 a,b
build a b 2
prec b a
`
	in, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "demo" || len(in.Indexes) != 2 || len(in.Plans) != 1 {
		t.Fatalf("parsed %+v", in)
	}
	if in.Indexes[1].Table != "t" || len(in.Indexes[1].Columns) != 2 {
		t.Fatalf("index options lost: %+v", in.Indexes[1])
	}
}

func TestTextErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unknown record", "bogus x", "unknown record"},
		{"bad cost", "index a zzz", "bad cost"},
		{"dup index", "index a 1\nindex a 2\nquery q 5", "duplicate index"},
		{"dup query", "index a 1\nquery q 5\nquery q 6", "duplicate query"},
		{"unknown query in plan", "index a 1\nquery q 5\nplan nope 1 a", "unknown query"},
		{"unknown index in plan", "index a 1\nquery q 5\nplan q 1 nope", "unknown index"},
		{"bad speedup", "index a 1\nquery q 5\nplan q xx a", "bad speedup"},
		{"build unknown", "index a 1\nquery q 5\nbuild a nope 1", "unknown index"},
		{"prec unknown", "index a 1\nquery q 5\nprec a nope", "unknown index"},
		{"bad option", "index a 1 bogus", "bad option"},
		{"unknown option", "index a 1 zap=3", "unknown index option"},
		{"query option", "index a 1\nquery q 5 zap=3", "unknown query option"},
		{"bad weight", "index a 1\nquery q 5 weight=zz", "bad weight"},
		{"short plan", "index a 1\nquery q 5\nplan q 1", "plan wants"},
		{"short build", "index a 1\nquery q 5\nbuild a", "build wants"},
		{"short prec", "index a 1\nquery q 5\nprec a", "prec wants"},
		{"short index", "index a", "index wants"},
		{"short query", "index a 1\nquery q", "query wants"},
		{"instance args", "instance a b", "instance wants"},
		{"semantic", "index a 1\nquery q 5\nplan q 99 a", "invalid instance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadText(strings.NewReader(tc.src))
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestJSONRejectsUnknownFieldsAndInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"indexes":[{"name":"a","create_cost":-1}],"queries":[],"plans":[]}`)); err == nil {
		t.Error("invalid instance accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Error("truncated json accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	in := sample()
	for _, name := range []string{"inst.json", "inst.txt"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, in); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(in, got) {
			t.Errorf("%s: round trip mismatch", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v", err)
	}
}

// Property: any generated instance survives a text and a JSON round trip
// with identical objective values.
func TestQuickRoundTripPreservesObjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randgen.DefaultConfig()
		cfg.Indexes = 2 + rng.Intn(10)
		cfg.PrecedenceProb = 0.1
		in := randgen.New(rng, cfg)

		var jbuf, tbuf bytes.Buffer
		if err := WriteJSON(&jbuf, in); err != nil {
			return false
		}
		if err := WriteText(&tbuf, in); err != nil {
			return false
		}
		fromJ, err := ReadJSON(&jbuf)
		if err != nil {
			return false
		}
		fromT, err := ReadText(&tbuf)
		if err != nil {
			return false
		}
		order := make([]int, in.N())
		for i := range order {
			order[i] = i
		}
		a := model.MustCompile(in).Objective(order)
		b := model.MustCompile(fromJ).Objective(order)
		c := model.MustCompile(fromT).Objective(order)
		const eps = 1e-9
		return diff(a, b) < eps && diff(a, c) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func diff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / (1 + a)
}
