package codec

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText feeds arbitrary bytes to the text parser: it must never
// panic, and anything it accepts must re-serialize to a form it accepts
// again with identical structure counts.
func FuzzReadText(f *testing.F) {
	f.Add("instance demo\nindex a 5\nquery q 50\nplan q 10 a\n")
	f.Add("index a 1\nindex b 2\nquery q 5\nbuild a b 0.5\nprec a b\n")
	f.Add("# only a comment\n")
	f.Add("index a -1\n")
	f.Add("plan q 10 a")
	f.Fuzz(func(t *testing.T, src string) {
		in, err := ReadText(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, in); err != nil {
			t.Fatalf("accepted instance failed to serialize: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, buf.String())
		}
		if len(back.Indexes) != len(in.Indexes) || len(back.Plans) != len(in.Plans) {
			t.Fatalf("round trip changed structure: %v vs %v", back.Stats(), in.Stats())
		}
	})
}
