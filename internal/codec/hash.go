// Canonical instance normalization and hashing. Two requests for the
// same deployment-ordering problem rarely arrive byte-identical: what-if
// pipelines emit indexes, queries, plans and precedences in whatever
// order they were discovered, and integer references shift with every
// reordering. The solve service deduplicates such requests through a
// canonical form — a relabeling- and reordering-independent normalization
// of the instance — and caches solutions under its SHA-256 hash.
package codec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strconv"
	"strings"

	"github.com/evolving-olap/idd/internal/model"
)

// Canonicalize returns a canonical copy of the instance plus the index
// permutation that produced it: perm[i] is the canonical position of the
// instance's index i. Two instances that differ only in the order of
// their index / query / plan / interaction / precedence slices (with
// integer references relabeled accordingly) canonicalize to the same
// instance, and canonicalization is idempotent. The instance-level Name
// is dropped — it does not change the problem. The input must be valid
// (see Instance.Validate) and is not mutated.
//
// Canonical layout: indexes sorted by (name, cost, table, columns,
// include); queries sorted by (name, runtime, weight, plan signature);
// plans, build interactions and precedences relabeled through those
// orders and sorted lexicographically. Index names are unique in a valid
// instance, so the index order is total; fully identical duplicate
// queries are interchangeable and tie-broken arbitrarily without
// affecting the canonical form.
func Canonicalize(in *model.Instance) (*model.Instance, []int) {
	n := len(in.Indexes)
	byIdx := make([]int, n) // canonical position -> original index
	for i := range byIdx {
		byIdx[i] = i
	}
	idxKey := func(i int) string {
		ix := &in.Indexes[i]
		return ix.Name + "\x00" + fstr(ix.CreateCost) + "\x00" + ix.Table +
			"\x00" + strings.Join(ix.Columns, "\x01") + "\x00" + strings.Join(ix.Include, "\x01")
	}
	sort.Slice(byIdx, func(a, b int) bool { return idxKey(byIdx[a]) < idxKey(byIdx[b]) })
	perm := make([]int, n) // original index -> canonical position
	for c, i := range byIdx {
		perm[i] = c
	}

	// Plan signatures in canonical index space, grouped per query, feed
	// the query sort key so that even same-named queries order stably.
	planSig := make([]string, len(in.Plans))
	planSigsOfQuery := make([][]string, len(in.Queries))
	for pi, p := range in.Plans {
		idx := make([]int, len(p.Indexes))
		for k, i := range p.Indexes {
			idx[k] = perm[i]
		}
		sort.Ints(idx)
		parts := make([]string, len(idx))
		for k, c := range idx {
			parts[k] = strconv.Itoa(c)
		}
		planSig[pi] = fstr(p.Speedup) + "@" + strings.Join(parts, ",")
		planSigsOfQuery[p.Query] = append(planSigsOfQuery[p.Query], planSig[pi])
	}
	byQ := make([]int, len(in.Queries))
	for q := range byQ {
		byQ[q] = q
	}
	qKey := func(q int) string {
		sigs := append([]string(nil), planSigsOfQuery[q]...)
		sort.Strings(sigs)
		return in.Queries[q].Name + "\x00" + fstr(in.Queries[q].Runtime) +
			"\x00" + fstr(in.Queries[q].Weight) + "\x00" + strings.Join(sigs, "\x01")
	}
	sort.Slice(byQ, func(a, b int) bool { return qKey(byQ[a]) < qKey(byQ[b]) })
	qperm := make([]int, len(in.Queries))
	for c, q := range byQ {
		qperm[q] = c
	}

	out := &model.Instance{
		Indexes: make([]model.Index, n),
		Queries: make([]model.Query, len(in.Queries)),
	}
	for c, i := range byIdx {
		out.Indexes[c] = in.Indexes[i]
	}
	for c, q := range byQ {
		out.Queries[c] = in.Queries[q]
	}
	if len(in.Plans) > 0 {
		out.Plans = make([]model.Plan, len(in.Plans))
		for pi, p := range in.Plans {
			idx := make([]int, len(p.Indexes))
			for k, i := range p.Indexes {
				idx[k] = perm[i]
			}
			sort.Ints(idx)
			out.Plans[pi] = model.Plan{Query: qperm[p.Query], Indexes: idx, Speedup: p.Speedup}
		}
		sort.Slice(out.Plans, func(a, b int) bool {
			pa, pb := &out.Plans[a], &out.Plans[b]
			if pa.Query != pb.Query {
				return pa.Query < pb.Query
			}
			if c := compareInts(pa.Indexes, pb.Indexes); c != 0 {
				return c < 0
			}
			return pa.Speedup < pb.Speedup
		})
	}
	if len(in.BuildInteractions) > 0 {
		out.BuildInteractions = make([]model.BuildInteraction, len(in.BuildInteractions))
		for bi, b := range in.BuildInteractions {
			out.BuildInteractions[bi] = model.BuildInteraction{
				Target: perm[b.Target], Helper: perm[b.Helper], Speedup: b.Speedup,
			}
		}
		sort.Slice(out.BuildInteractions, func(a, b int) bool {
			ba, bb := &out.BuildInteractions[a], &out.BuildInteractions[b]
			if ba.Target != bb.Target {
				return ba.Target < bb.Target
			}
			if ba.Helper != bb.Helper {
				return ba.Helper < bb.Helper
			}
			return ba.Speedup < bb.Speedup
		})
	}
	if len(in.Precedences) > 0 {
		out.Precedences = make([]model.Precedence, len(in.Precedences))
		for pi, pr := range in.Precedences {
			out.Precedences[pi] = model.Precedence{Before: perm[pr.Before], After: perm[pr.After]}
		}
		sort.Slice(out.Precedences, func(a, b int) bool {
			pa, pb := out.Precedences[a], out.Precedences[b]
			if pa.Before != pb.Before {
				return pa.Before < pb.Before
			}
			return pa.After < pb.After
		})
	}
	return out, perm
}

// CanonicalHash returns the hex SHA-256 of the canonical form of the
// instance: equal across reorderings/relabelings of the same problem,
// different for semantically different problems. The instance must be
// valid.
func CanonicalHash(in *model.Instance) string {
	canon, _ := Canonicalize(in)
	buf, err := json.Marshal(canon)
	if err != nil {
		// A valid model.Instance is plain data; Marshal cannot fail on it.
		panic("codec: canonical marshal: " + err.Error())
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// StructuralHash returns the hex SHA-256 of the instance's *structure*:
// index names, query names, plan shapes (query name plus index-name
// set), build-interaction pairs and precedence pairs — with every float
// parameter (create costs, runtimes, weights, speedups) left out.
// Parameter-only drift (reweighted queries, re-priced costs) keeps the
// structural hash stable while CanonicalHash changes; the solve service
// uses it to find a previous incumbent for the same structure and seed
// the re-solve with it instead of starting cold. The instance must be
// valid.
func StructuralHash(in *model.Instance) string {
	var b strings.Builder
	ixNames := make([]string, len(in.Indexes))
	for i, ix := range in.Indexes {
		ixNames[i] = ix.Name
	}
	sortedIx := append([]string(nil), ixNames...)
	sort.Strings(sortedIx)
	b.WriteString("ix:")
	b.WriteString(strings.Join(sortedIx, "\x01"))

	qNames := make([]string, len(in.Queries))
	for q, qu := range in.Queries {
		qNames[q] = qu.Name
	}
	sortedQ := append([]string(nil), qNames...)
	sort.Strings(sortedQ)
	b.WriteString("\x00q:")
	b.WriteString(strings.Join(sortedQ, "\x01"))

	pairKey := func(refs []int) string {
		parts := make([]string, len(refs))
		for k, i := range refs {
			parts[k] = ixNames[i]
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	plans := make([]string, len(in.Plans))
	for pi, p := range in.Plans {
		plans[pi] = qNames[p.Query] + "@" + pairKey(p.Indexes)
	}
	sort.Strings(plans)
	b.WriteString("\x00p:")
	b.WriteString(strings.Join(plans, "\x01"))

	builds := make([]string, len(in.BuildInteractions))
	for bi, bld := range in.BuildInteractions {
		builds[bi] = ixNames[bld.Target] + "<-" + ixNames[bld.Helper]
	}
	sort.Strings(builds)
	b.WriteString("\x00b:")
	b.WriteString(strings.Join(builds, "\x01"))

	precs := make([]string, len(in.Precedences))
	for pi, pr := range in.Precedences {
		precs[pi] = ixNames[pr.Before] + "<" + ixNames[pr.After]
	}
	sort.Strings(precs)
	b.WriteString("\x00pr:")
	b.WriteString(strings.Join(precs, "\x01"))

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// fstr formats a float so that equal values stringify equally and the
// round trip is exact.
func fstr(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func compareInts(a, b []int) int {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			if a[k] < b[k] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}
