package codec

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
)

// relabel returns a deep copy of the instance with index positions
// permuted by iperm (iperm[i] = new position of index i), query positions
// permuted by qperm, every integer reference remapped, and the record
// slices themselves shuffled by rng — i.e. the same problem written down
// completely differently.
func relabel(in *model.Instance, iperm, qperm []int, rng *rand.Rand) *model.Instance {
	out := &model.Instance{
		Name:    in.Name,
		Indexes: make([]model.Index, len(in.Indexes)),
		Queries: make([]model.Query, len(in.Queries)),
	}
	for i, ix := range in.Indexes {
		ix.Columns = append([]string(nil), ix.Columns...)
		ix.Include = append([]string(nil), ix.Include...)
		out.Indexes[iperm[i]] = ix
	}
	for q, qu := range in.Queries {
		out.Queries[qperm[q]] = qu
	}
	for _, p := range in.Plans {
		idx := make([]int, len(p.Indexes))
		for k, i := range p.Indexes {
			idx[k] = iperm[i]
		}
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		out.Plans = append(out.Plans, model.Plan{Query: qperm[p.Query], Indexes: idx, Speedup: p.Speedup})
	}
	for _, b := range in.BuildInteractions {
		out.BuildInteractions = append(out.BuildInteractions, model.BuildInteraction{
			Target: iperm[b.Target], Helper: iperm[b.Helper], Speedup: b.Speedup,
		})
	}
	for _, pr := range in.Precedences {
		out.Precedences = append(out.Precedences, model.Precedence{
			Before: iperm[pr.Before], After: iperm[pr.After],
		})
	}
	rng.Shuffle(len(out.Plans), func(a, b int) { out.Plans[a], out.Plans[b] = out.Plans[b], out.Plans[a] })
	rng.Shuffle(len(out.BuildInteractions), func(a, b int) {
		out.BuildInteractions[a], out.BuildInteractions[b] = out.BuildInteractions[b], out.BuildInteractions[a]
	})
	rng.Shuffle(len(out.Precedences), func(a, b int) {
		out.Precedences[a], out.Precedences[b] = out.Precedences[b], out.Precedences[a]
	})
	return out
}

// TestCanonicalHashRelabelInvariant is the property test: the canonical
// hash does not change under index/query relabeling and record
// reordering, and the returned permutations compose correctly.
func TestCanonicalHashRelabelInvariant(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 7))
		cfg := randgen.DefaultConfig()
		cfg.Indexes = 4 + rng.Intn(12)
		cfg.Queries = 3 + rng.Intn(8)
		in := randgen.New(rng, cfg)
		if err := in.Validate(); err != nil {
			t.Fatalf("trial %d: generator made an invalid instance: %v", trial, err)
		}
		want := CanonicalHash(in)
		canon, perm := Canonicalize(in)
		if err := canon.Validate(); err != nil {
			t.Fatalf("trial %d: canonical form invalid: %v", trial, err)
		}

		iperm := rng.Perm(len(in.Indexes))
		qperm := rng.Perm(len(in.Queries))
		shuffled := relabel(in, iperm, qperm, rng)
		if err := shuffled.Validate(); err != nil {
			t.Fatalf("trial %d: relabel broke validity: %v", trial, err)
		}
		if got := CanonicalHash(shuffled); got != want {
			t.Fatalf("trial %d: hash changed under relabeling: %s vs %s", trial, got, want)
		}

		// Both writings canonicalize to the same instance, and the two
		// permutations agree on where every original index landed.
		canon2, perm2 := Canonicalize(shuffled)
		if !reflect.DeepEqual(canon, canon2) {
			t.Fatalf("trial %d: canonical forms differ", trial)
		}
		for i := range perm {
			if perm[i] != perm2[iperm[i]] {
				t.Fatalf("trial %d: perm mismatch for index %d: %d vs %d",
					trial, i, perm[i], perm2[iperm[i]])
			}
		}
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := randgen.New(rng, randgen.DefaultConfig())
	canon, _ := Canonicalize(in)
	again, perm := Canonicalize(canon)
	if !reflect.DeepEqual(canon, again) {
		t.Fatal("canonicalization is not idempotent")
	}
	for i, c := range perm {
		if i != c {
			t.Fatalf("canonical instance re-permuted: perm[%d]=%d", i, c)
		}
	}
	if CanonicalHash(in) != CanonicalHash(canon) {
		t.Fatal("hash of canonical form differs from hash of original")
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randgen.New(rng, randgen.DefaultConfig())
	base := CanonicalHash(in)

	mutants := map[string]func(*model.Instance){
		"cost":      func(m *model.Instance) { m.Indexes[0].CreateCost *= 1.5 },
		"rename":    func(m *model.Instance) { m.Indexes[0].Name += "_x" },
		"runtime":   func(m *model.Instance) { m.Queries[0].Runtime += 1 },
		"speedup":   func(m *model.Instance) { m.Plans[0].Speedup *= 0.5 },
		"drop-plan": func(m *model.Instance) { m.Plans = m.Plans[1:] },
		"add-prec":  func(m *model.Instance) { m.Precedences = append(m.Precedences, model.Precedence{Before: 0, After: 1}) },
	}
	for name, mutate := range mutants {
		cp := relabel(in, identity(len(in.Indexes)), identity(len(in.Queries)), rand.New(rand.NewSource(1)))
		mutate(cp)
		if err := cp.Validate(); err != nil {
			t.Fatalf("%s: mutant invalid: %v", name, err)
		}
		if CanonicalHash(cp) == base {
			t.Errorf("%s: hash did not change", name)
		}
	}

	// The instance-level name is metadata, not part of the problem.
	cp := relabel(in, identity(len(in.Indexes)), identity(len(in.Queries)), rand.New(rand.NewSource(1)))
	cp.Name = "renamed"
	if CanonicalHash(cp) != base {
		t.Error("instance name changed the hash")
	}
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// TestStructuralHash pins the delta-aware cache key contract: parameter
// drift (weights, runtimes, costs, speedups) keeps the structural hash
// stable, relabeling keeps it stable, and structural edits (rename,
// add/drop an index, new precedence) change it.
func TestStructuralHash(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randgen.New(rng, randgen.DefaultConfig())
	base := StructuralHash(in)
	if base == StructuralHash(&model.Instance{}) {
		t.Fatal("structural hash ignores the instance entirely")
	}

	// Parameter-only drift: same structure.
	drifts := map[string]func(*model.Instance){
		"weight":  func(m *model.Instance) { m.Queries[0].Weight = 7 },
		"runtime": func(m *model.Instance) { m.Queries[0].Runtime *= 2 },
		"cost":    func(m *model.Instance) { m.Indexes[0].CreateCost *= 3 },
		"speedup": func(m *model.Instance) { m.Plans[0].Speedup *= 0.5 },
	}
	for name, mutate := range drifts {
		cp := relabel(in, identity(len(in.Indexes)), identity(len(in.Queries)), rand.New(rand.NewSource(1)))
		mutate(cp)
		if err := cp.Validate(); err != nil {
			t.Fatalf("%s: mutant invalid: %v", name, err)
		}
		if StructuralHash(cp) != base {
			t.Errorf("%s: parameter drift changed the structural hash", name)
		}
		if CanonicalHash(cp) == CanonicalHash(in) {
			t.Errorf("%s: canonical hash missed the parameter change", name)
		}
	}

	// Relabeling/reordering: same structure.
	iperm := rng.Perm(len(in.Indexes))
	qperm := rng.Perm(len(in.Queries))
	if got := StructuralHash(relabel(in, iperm, qperm, rng)); got != base {
		t.Error("structural hash changed under relabeling")
	}

	// Structural edits: different hash.
	edits := map[string]func(*model.Instance){
		"rename":    func(m *model.Instance) { m.Indexes[0].Name += "_x" },
		"drop-plan": func(m *model.Instance) { m.Plans = m.Plans[1:] },
		"add-prec":  func(m *model.Instance) { m.Precedences = append(m.Precedences, model.Precedence{Before: 0, After: 1}) },
	}
	for name, mutate := range edits {
		cp := relabel(in, identity(len(in.Indexes)), identity(len(in.Queries)), rand.New(rand.NewSource(1)))
		mutate(cp)
		if err := cp.Validate(); err != nil {
			t.Fatalf("%s: mutant invalid: %v", name, err)
		}
		if StructuralHash(cp) == base {
			t.Errorf("%s: structural edit kept the structural hash", name)
		}
	}
}
