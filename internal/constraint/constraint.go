// Package constraint maintains the precedence relation over index
// positions that the pruning analysis of §5 accumulates (edges like
// T_i < T_j) and that the exact solvers consume. It offers cycle-safe
// edge insertion, transitive closure via bitsets, topological orders and
// position bounds.
package constraint

import (
	"errors"
	"fmt"

	"github.com/evolving-olap/idd/internal/bitset"
)

// ErrCycle is returned when an edge insertion would create a cycle,
// i.e. the accumulated constraints became contradictory.
var ErrCycle = errors.New("constraint: precedence cycle")

// Set is a growable precedence relation over n items. It keeps the
// transitive closure incrementally, so Before(i,j) is O(1).
type Set struct {
	n int
	// after[i] = set of items that must come after i (closure).
	after []bitset.Set
	// before[i] = set of items that must come before i (closure).
	before []bitset.Set
	edges  [][2]int // explicitly added edges (not closed)
}

// NewSet returns an empty relation over n items.
func NewSet(n int) *Set {
	s := &Set{n: n, after: make([]bitset.Set, n), before: make([]bitset.Set, n)}
	for i := 0; i < n; i++ {
		s.after[i] = bitset.New(n)
		s.before[i] = bitset.New(n)
	}
	return s
}

// N returns the number of items.
func (s *Set) N() int { return s.n }

// Len returns the number of explicitly added (non-implied) edges.
func (s *Set) Len() int { return len(s.edges) }

// Edges returns the explicitly added edges.
func (s *Set) Edges() [][2]int { return s.edges }

// Before reports whether i is constrained to precede j (directly or
// transitively).
func (s *Set) Before(i, j int) bool { return s.after[i].Has(j) }

// Add inserts the constraint "i before j". Adding an already-implied edge
// is a no-op. Returns ErrCycle if j already (transitively) precedes i.
func (s *Set) Add(i, j int) error {
	if i == j {
		return fmt.Errorf("%w: self edge %d", ErrCycle, i)
	}
	if s.after[j].Has(i) {
		return fmt.Errorf("%w: %d..%d", ErrCycle, i, j)
	}
	if s.after[i].Has(j) {
		return nil // already implied
	}
	s.edges = append(s.edges, [2]int{i, j})
	// New pairs: (x, y) for every x in {i} ∪ before(i), y in {j} ∪ after(j).
	xs := s.before[i].Clone()
	xs.Add(i)
	ys := s.after[j].Clone()
	ys.Add(j)
	xs.ForEach(func(x int) bool {
		s.after[x].UnionWith(ys)
		return true
	})
	ys.ForEach(func(y int) bool {
		s.before[y].UnionWith(xs)
		return true
	})
	return nil
}

// MustAdd is Add that panics on cycle; for analysis code whose inputs are
// proven consistent.
func (s *Set) MustAdd(i, j int) {
	if err := s.Add(i, j); err != nil {
		panic(err)
	}
}

// Predecessors returns the closed set of items before i.
func (s *Set) Predecessors(i int) bitset.Set { return s.before[i] }

// Successors returns the closed set of items after i.
func (s *Set) Successors(i int) bitset.Set { return s.after[i] }

// MinPos returns the earliest 0-based position item i can take: the number
// of items that must precede it.
func (s *Set) MinPos(i int) int { return s.before[i].Count() }

// MaxPos returns the latest 0-based position item i can take.
func (s *Set) MaxPos(i int) int { return s.n - 1 - s.after[i].Count() }

// Topo returns one topological order consistent with the relation.
// Ties are broken by item number, making the result deterministic.
func (s *Set) Topo() []int {
	indeg := make([]int, s.n)
	succ := make([][]int, s.n)
	for _, e := range s.edges {
		succ[e[0]] = append(succ[e[0]], e[1])
		indeg[e[1]]++
	}
	// Deterministic Kahn with a simple ordered frontier.
	frontier := make([]int, 0, s.n)
	for i := 0; i < s.n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	out := make([]int, 0, s.n)
	for len(frontier) > 0 {
		// Pop the smallest (frontier kept sorted by construction order;
		// find min for determinism).
		mi := 0
		for k := 1; k < len(frontier); k++ {
			if frontier[k] < frontier[mi] {
				mi = k
			}
		}
		u := frontier[mi]
		frontier = append(frontier[:mi], frontier[mi+1:]...)
		out = append(out, u)
		for _, v := range succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if len(out) != s.n {
		// Cannot happen: Add maintains acyclicity.
		panic("constraint: relation has a cycle")
	}
	return out
}

// Clone returns an independent copy of the relation.
func (s *Set) Clone() *Set {
	out := &Set{n: s.n, after: make([]bitset.Set, s.n), before: make([]bitset.Set, s.n)}
	for i := 0; i < s.n; i++ {
		out.after[i] = s.after[i].Clone()
		out.before[i] = s.before[i].Clone()
	}
	out.edges = append([][2]int(nil), s.edges...)
	return out
}

// Compatible reports whether the given order (order[k] = item at position
// k) satisfies every constraint.
func (s *Set) Compatible(order []int) bool {
	pos := make([]int, s.n)
	for k, it := range order {
		pos[it] = k
	}
	for _, e := range s.edges {
		if pos[e[0]] > pos[e[1]] {
			return false
		}
	}
	return true
}
