package constraint

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAndClosure(t *testing.T) {
	s := NewSet(4)
	s.MustAdd(0, 1)
	s.MustAdd(1, 2)
	if !s.Before(0, 1) || !s.Before(1, 2) {
		t.Fatal("direct edges missing")
	}
	if !s.Before(0, 2) {
		t.Fatal("transitive edge 0<2 missing")
	}
	if s.Before(2, 0) || s.Before(0, 3) || s.Before(3, 0) {
		t.Fatal("spurious constraints")
	}
	// Implied edge insertion is a no-op.
	n := s.Len()
	if err := s.Add(0, 2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Error("implied edge was recorded")
	}
}

func TestCycleRejected(t *testing.T) {
	s := NewSet(3)
	s.MustAdd(0, 1)
	s.MustAdd(1, 2)
	if err := s.Add(2, 0); !errors.Is(err, ErrCycle) {
		t.Fatalf("expected ErrCycle, got %v", err)
	}
	if err := s.Add(1, 1); !errors.Is(err, ErrCycle) {
		t.Fatalf("self edge: expected ErrCycle, got %v", err)
	}
	// State must be unchanged after the failed insertion.
	if s.Before(2, 0) {
		t.Error("failed Add mutated the relation")
	}
}

func TestPositionBounds(t *testing.T) {
	s := NewSet(5)
	s.MustAdd(0, 1)
	s.MustAdd(0, 2)
	s.MustAdd(1, 3)
	// 0 precedes 1,2,3 => MaxPos(0) = 5-1-3 = 1, MinPos(0)=0.
	if s.MinPos(0) != 0 || s.MaxPos(0) != 1 {
		t.Errorf("bounds(0) = [%d,%d], want [0,1]", s.MinPos(0), s.MaxPos(0))
	}
	// 3 has ancestors {0,1} => MinPos=2; no successors => MaxPos=4.
	if s.MinPos(3) != 2 || s.MaxPos(3) != 4 {
		t.Errorf("bounds(3) = [%d,%d], want [2,4]", s.MinPos(3), s.MaxPos(3))
	}
	// 4 unconstrained.
	if s.MinPos(4) != 0 || s.MaxPos(4) != 4 {
		t.Errorf("bounds(4) = [%d,%d], want [0,4]", s.MinPos(4), s.MaxPos(4))
	}
}

func TestTopoIsCompatibleAndDeterministic(t *testing.T) {
	s := NewSet(6)
	s.MustAdd(3, 0)
	s.MustAdd(0, 5)
	s.MustAdd(4, 5)
	a := s.Topo()
	b := s.Topo()
	if len(a) != 6 {
		t.Fatalf("topo length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Topo not deterministic")
		}
	}
	if !s.Compatible(a) {
		t.Fatal("Topo output violates constraints")
	}
	if s.Compatible([]int{5, 0, 1, 2, 3, 4}) {
		t.Fatal("Compatible accepted violating order")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := NewSet(3)
	s.MustAdd(0, 1)
	c := s.Clone()
	c.MustAdd(1, 2)
	if s.Before(1, 2) {
		t.Error("clone mutation leaked into original")
	}
	if !c.Before(0, 2) {
		t.Error("clone lost closure maintenance")
	}
	if len(c.Edges()) != 2 || len(s.Edges()) != 1 {
		t.Errorf("edge bookkeeping wrong: %d/%d", len(c.Edges()), len(s.Edges()))
	}
}

// Property: inserting random edges in random order either errors with
// ErrCycle or maintains a closure that agrees with a reachability DFS.
func TestQuickClosureMatchesDFS(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%10
		rng := rand.New(rand.NewSource(seed))
		s := NewSet(n)
		adj := make([][]int, n)
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			if err := s.Add(i, j); err == nil {
				adj[i] = append(adj[i], j)
			}
		}
		// Reference reachability.
		for i := 0; i < n; i++ {
			reach := make([]bool, n)
			stack := []int{i}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, v := range adj[u] {
					if !reach[v] {
						reach[v] = true
						stack = append(stack, v)
					}
				}
			}
			for j := 0; j < n; j++ {
				if reach[j] != s.Before(i, j) {
					return false
				}
			}
		}
		return s.Compatible(s.Topo())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
