// Package datasets builds the canonical problem instances of the paper's
// experiments (§8, Table 4): the TPC-H instance (31 indexes) and the
// TPC-DS instance (≈150 indexes), plus the reduced-density TPC-H variants
// of §8.1 used by the exact-search experiments (Tables 5 and 6). The
// advisor parameters are calibrated so the instance statistics match
// Table 4 (see EXPERIMENTS.md for the side-by-side numbers).
package datasets

import (
	"sort"
	"sync"

	"github.com/evolving-olap/idd/internal/advisor"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/tpcds"
	"github.com/evolving-olap/idd/internal/tpch"
)

// Density selects the interaction density of a reduced instance (§8.1).
type Density int8

// Density levels. Low removes all suboptimal query plans and all build
// interactions; Mid keeps one suboptimal plan per query and only build
// interactions with at least 15% effect; Full keeps everything.
const (
	Low Density = iota
	Mid
	Full
)

func (d Density) String() string {
	switch d {
	case Low:
		return "low"
	case Mid:
		return "mid"
	default:
		return "full"
	}
}

var (
	tpchOnce  sync.Once
	tpchInst  *model.Instance
	tpcdsOnce sync.Once
	tpcdsInst *model.Instance
)

// TPCH returns the full TPC-H ordering instance (cached; callers must
// not mutate it — use Clone for that).
func TPCH() *model.Instance {
	tpchOnce.Do(func() {
		in, _, err := advisor.BuildInstance("tpch", tpch.Schema(), tpch.Queries(), advisor.Options{
			MaxIndexes:          32,
			MaxPlansPerQuery:    20,
			MinBuildInteraction: 0.22,
		})
		if err != nil {
			panic("datasets: tpch build failed: " + err.Error())
		}
		tpchInst = in
	})
	return tpchInst
}

// TPCDS returns the full TPC-DS ordering instance (cached).
func TPCDS() *model.Instance {
	tpcdsOnce.Do(func() {
		in, _, err := advisor.BuildInstance("tpcds", tpcds.Schema(), tpcds.Queries(), advisor.Options{
			MaxIndexes:          170,
			MaxPlansPerQuery:    33,
			MinBuildInteraction: 0.22,
		})
		if err != nil {
			panic("datasets: tpcds build failed: " + err.Error())
		}
		tpcdsInst = in
	})
	return tpcdsInst
}

// Clone deep-copies an instance so experiments can mutate it.
func Clone(in *model.Instance) *model.Instance {
	out := &model.Instance{Name: in.Name}
	out.Indexes = append([]model.Index(nil), in.Indexes...)
	for i := range out.Indexes {
		out.Indexes[i].Columns = append([]string(nil), in.Indexes[i].Columns...)
		out.Indexes[i].Include = append([]string(nil), in.Indexes[i].Include...)
	}
	out.Queries = append([]model.Query(nil), in.Queries...)
	out.Plans = append([]model.Plan(nil), in.Plans...)
	for i := range out.Plans {
		out.Plans[i].Indexes = append([]int(nil), in.Plans[i].Indexes...)
	}
	out.BuildInteractions = append([]model.BuildInteraction(nil), in.BuildInteractions...)
	out.Precedences = append([]model.Precedence(nil), in.Precedences...)
	return out
}

// ReducedTPCH builds the §8.1 experiment instances: the n most
// plan-relevant indexes of the TPC-H design at the given interaction
// density.
func ReducedTPCH(n int, d Density) *model.Instance {
	return Reduce(TPCH(), n, d)
}

// Reduce restricts an instance to its n most relevant indexes (ranked by
// the total speedup of the plans they participate in, so the reduction
// keeps as much plan structure as possible) and thins interactions to
// the requested density.
func Reduce(src *model.Instance, n int, d Density) *model.Instance {
	if n > src.N() {
		n = src.N()
	}
	// Rank indexes by participation: sum of speedup/|plan| over plans.
	score := make([]float64, src.N())
	for _, p := range src.Plans {
		share := p.Speedup / float64(len(p.Indexes))
		for _, ix := range p.Indexes {
			score[ix] += share
		}
	}
	rank := make([]int, src.N())
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(a, b int) bool { return score[rank[a]] > score[rank[b]] })
	remap := make([]int, src.N())
	for i := range remap {
		remap[i] = -1
	}
	chosen := rank[:n]
	sort.Ints(chosen)
	for newID, oldID := range chosen {
		remap[oldID] = newID
	}

	out := &model.Instance{Name: src.Name + "-" + d.String()}
	for _, oldID := range chosen {
		out.Indexes = append(out.Indexes, src.Indexes[oldID])
	}
	out.Queries = append([]model.Query(nil), src.Queries...)

	inSubset := func(p model.Plan) bool {
		for _, ix := range p.Indexes {
			if remap[ix] < 0 {
				return false
			}
		}
		return true
	}
	// Collect plans per query, sorted by speedup descending.
	perQuery := make([][]model.Plan, len(src.Queries))
	for _, p := range src.Plans {
		if inSubset(p) {
			perQuery[p.Query] = append(perQuery[p.Query], p)
		}
	}
	keep := 0
	switch d {
	case Low:
		keep = 1
	case Mid:
		keep = 2
	default:
		keep = 1 << 30
	}
	for q := range perQuery {
		plans := perQuery[q]
		// Selection sort of the top `keep` by speedup (small lists).
		for k := 0; k < len(plans) && k < keep; k++ {
			best := k
			for j := k + 1; j < len(plans); j++ {
				if plans[j].Speedup > plans[best].Speedup {
					best = j
				}
			}
			plans[k], plans[best] = plans[best], plans[k]
			cp := plans[k]
			mapped := make([]int, len(cp.Indexes))
			for mi, ix := range cp.Indexes {
				mapped[mi] = remap[ix]
			}
			cp.Indexes = mapped
			out.Plans = append(out.Plans, cp)
		}
	}
	for _, b := range src.BuildInteractions {
		if remap[b.Target] < 0 || remap[b.Helper] < 0 {
			continue
		}
		nb := model.BuildInteraction{Target: remap[b.Target], Helper: remap[b.Helper], Speedup: b.Speedup}
		switch d {
		case Low:
			// all build interactions removed
		case Mid:
			if b.Speedup >= 0.15*src.Indexes[b.Target].CreateCost {
				out.BuildInteractions = append(out.BuildInteractions, nb)
			}
		default:
			out.BuildInteractions = append(out.BuildInteractions, nb)
		}
	}
	for _, pr := range src.Precedences {
		if remap[pr.Before] >= 0 && remap[pr.After] >= 0 {
			out.Precedences = append(out.Precedences,
				model.Precedence{Before: remap[pr.Before], After: remap[pr.After]})
		}
	}
	return out
}
