package datasets

import (
	"testing"

	"github.com/evolving-olap/idd/internal/model"
)

// TestTable4Statistics pins the instance statistics against the paper's
// Table 4 targets (approximate reproduction bands, not exact equality:
// our optimizer is a simulator, not the authors' commercial DBMS).
func TestTable4Statistics(t *testing.T) {
	h := TPCH().Stats()
	if h.Queries != 22 {
		t.Errorf("tpch |Q| = %d, want 22", h.Queries)
	}
	if h.Indexes < 25 || h.Indexes > 40 {
		t.Errorf("tpch |I| = %d, want ≈31", h.Indexes)
	}
	if h.Plans < 150 || h.Plans > 350 {
		t.Errorf("tpch |P| = %d, want ≈221", h.Plans)
	}
	if h.LargestPlan < 4 || h.LargestPlan > 7 {
		t.Errorf("tpch largest plan = %d, want ≈5", h.LargestPlan)
	}
	if h.BuildInteractions < 10 || h.BuildInteractions > 80 {
		t.Errorf("tpch build interactions = %d, want ≈31", h.BuildInteractions)
	}

	ds := TPCDS().Stats()
	if ds.Queries != 102 {
		t.Errorf("tpcds |Q| = %d, want 102", ds.Queries)
	}
	if ds.Indexes < 100 || ds.Indexes > 200 {
		t.Errorf("tpcds |I| = %d, want ≈148", ds.Indexes)
	}
	if ds.Plans < 2500 || ds.Plans > 4500 {
		t.Errorf("tpcds |P| = %d, want ≈3386", ds.Plans)
	}
	if ds.LargestPlan < 10 || ds.LargestPlan > 16 {
		t.Errorf("tpcds largest plan = %d, want ≈13", ds.LargestPlan)
	}
	if ds.BuildInteractions < 80 || ds.BuildInteractions > 500 {
		t.Errorf("tpcds build interactions = %d, want ≈243", ds.BuildInteractions)
	}
	// TPC-DS must dwarf TPC-H the way the paper describes ("400 times
	// larger in scale" for the ordering search space).
	if ds.Indexes < 3*h.Indexes {
		t.Errorf("tpcds (%d indexes) not much larger than tpch (%d)", ds.Indexes, h.Indexes)
	}
}

func TestInstancesValidate(t *testing.T) {
	if err := TPCH().Validate(); err != nil {
		t.Errorf("tpch: %v", err)
	}
	if err := TPCDS().Validate(); err != nil {
		t.Errorf("tpcds: %v", err)
	}
}

func TestCachedInstanceIdentity(t *testing.T) {
	if TPCH() != TPCH() {
		t.Error("TPCH not cached")
	}
	c := Clone(TPCH())
	if c == TPCH() {
		t.Error("Clone returned the cached pointer")
	}
	c.Indexes[0].CreateCost *= 2
	if TPCH().Indexes[0].CreateCost == c.Indexes[0].CreateCost {
		t.Error("Clone shares index storage")
	}
}

func TestReducedDensities(t *testing.T) {
	full := ReducedTPCH(13, Full)
	mid := ReducedTPCH(13, Mid)
	low := ReducedTPCH(13, Low)

	for _, in := range []*model.Instance{full, mid, low} {
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if in.N() != 13 {
			t.Fatalf("%s: %d indexes, want 13", in.Name, in.N())
		}
	}
	if len(low.BuildInteractions) != 0 {
		t.Errorf("low density kept %d build interactions", len(low.BuildInteractions))
	}
	if len(mid.BuildInteractions) > len(full.BuildInteractions) {
		t.Error("mid density has more build interactions than full")
	}
	if len(low.Plans) > len(mid.Plans) || len(mid.Plans) > len(full.Plans) {
		t.Errorf("plan counts not monotone: %d/%d/%d", len(low.Plans), len(mid.Plans), len(full.Plans))
	}
	// Low density keeps at most one plan per query.
	perQ := map[int]int{}
	for _, p := range low.Plans {
		perQ[p.Query]++
		if perQ[p.Query] > 1 {
			t.Fatalf("low density kept %d plans for query %d", perQ[p.Query], p.Query)
		}
	}
	// All plans reference only the reduced index set.
	for _, p := range mid.Plans {
		for _, ix := range p.Indexes {
			if ix >= 13 {
				t.Fatalf("plan references index %d outside the reduction", ix)
			}
		}
	}
}

func TestReduceClampsN(t *testing.T) {
	in := ReducedTPCH(10_000, Full)
	if in.N() != TPCH().N() {
		t.Errorf("clamp failed: %d", in.N())
	}
}
