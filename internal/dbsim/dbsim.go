// Package dbsim simulates the DBMS underneath the paper's pipeline: a
// cost-based query optimizer with a what-if (hypothetical index)
// interface, and an index build-cost model with build interactions. The
// paper ran these steps against a commercial DBMS; dbsim substitutes a
// transparent analytical cost model that produces problem instances with
// the same structure — competing plans per query, multi-index query
// interactions and pairwise build interactions (see DESIGN.md for the
// substitution argument).
//
// Cost units are abstract "seconds": a sequential page read costs 1 unit
// per page over a 8 KiB page model, random accesses cost a multiple, CPU
// costs are per-row. Only relative magnitudes matter downstream.
package dbsim

import (
	"fmt"
	"math"
	"strings"

	"github.com/evolving-olap/idd/internal/sql"
)

// IndexDef is a (possibly hypothetical) secondary index.
type IndexDef struct {
	Table string
	// Key columns, outermost first.
	Key []string
	// Include columns (covering payload, unordered).
	Include []string
}

// Name renders a deterministic identifier like ix_orders_custkey_date.
func (d IndexDef) Name() string {
	var b strings.Builder
	b.WriteString("ix_")
	b.WriteString(d.Table)
	for _, k := range d.Key {
		b.WriteByte('_')
		b.WriteString(k)
	}
	if len(d.Include) > 0 {
		b.WriteString("_inc")
		for _, k := range d.Include {
			b.WriteByte('_')
			b.WriteString(k)
		}
	}
	return b.String()
}

// Equal reports structural equality.
func (d IndexDef) Equal(o IndexDef) bool {
	if d.Table != o.Table || len(d.Key) != len(o.Key) || len(d.Include) != len(o.Include) {
		return false
	}
	for i := range d.Key {
		if d.Key[i] != o.Key[i] {
			return false
		}
	}
	for i := range d.Include {
		if d.Include[i] != o.Include[i] {
			return false
		}
	}
	return true
}

// Validate checks the definition against the schema.
func (d IndexDef) Validate(s *sql.Schema) error {
	t := s.Table(d.Table)
	if t == nil {
		return fmt.Errorf("dbsim: index on unknown table %q", d.Table)
	}
	if len(d.Key) == 0 {
		return fmt.Errorf("dbsim: index on %s has no key columns", d.Table)
	}
	seen := map[string]bool{}
	for _, c := range append(append([]string{}, d.Key...), d.Include...) {
		if t.Column(c) == nil {
			return fmt.Errorf("dbsim: index on %s references unknown column %q", d.Table, c)
		}
		if seen[c] {
			return fmt.Errorf("dbsim: index on %s repeats column %q", d.Table, c)
		}
		seen[c] = true
	}
	return nil
}

// Cost-model constants. The absolute values are arbitrary; the ratios
// (random vs sequential, CPU vs IO) shape which plans win.
const (
	pageSize      = 8192
	seqPageCost   = 1.0
	randPageCost  = 4.0
	cpuTupleCost  = 0.002
	cpuIndexCost  = 0.0005
	sortRowCost   = 0.004 // per row per log2 factor
	hashBuildCost = 0.004 // per row
	hashProbeCost = 0.002 // per row
	inlProbeCost  = 0.02  // per outer row (seek + fetch)
	seekCost      = 2.0   // one index descent
)

// pagesOf returns the page count of rows at the given width.
func pagesOf(rows int64, width int) float64 {
	perPage := pageSize / width
	if perPage < 1 {
		perPage = 1
	}
	p := float64(rows) / float64(perPage)
	if p < 1 {
		p = 1
	}
	return p
}

// Sim is the simulator bound to one schema.
type Sim struct {
	Schema *sql.Schema
}

// New returns a simulator for the schema.
func New(s *sql.Schema) *Sim { return &Sim{Schema: s} }

// TableScanCost is the cost of a full sequential scan.
func (s *Sim) TableScanCost(t *sql.Table) float64 {
	return pagesOf(t.Rows, t.RowWidth())*seqPageCost + float64(t.Rows)*cpuTupleCost
}

// indexWidth estimates an index entry width (key + include + rowid).
func (s *Sim) indexWidth(t *sql.Table, d IndexDef) int {
	w := 8 // rowid
	for _, c := range d.Key {
		w += t.Column(c).Width
	}
	for _, c := range d.Include {
		w += t.Column(c).Width
	}
	return w
}

// IndexPages is the leaf page count of an index.
func (s *Sim) IndexPages(d IndexDef) float64 {
	t := s.Schema.Table(d.Table)
	return pagesOf(t.Rows, s.indexWidth(t, d))
}

// BuildCost is the cost to create the index from the base table:
// a full scan plus an external sort of the entries.
func (s *Sim) BuildCost(d IndexDef) float64 {
	t := s.Schema.Table(d.Table)
	scan := s.TableScanCost(t)
	sortC := float64(t.Rows) * sortRowCost * math.Log2(float64(t.Rows)+2)
	write := s.IndexPages(d) * seqPageCost
	return scan + sortC + write
}

// BuildDiscount returns how much cheaper building target becomes when
// helper already exists (the paper's build interaction, §4.2), or 0 when
// helper is useless for target. Two effects are modeled:
//
//   - source substitution: when helper's key+include contain every column
//     target needs, target can be built by scanning the (narrower) helper
//     index instead of the base table;
//   - sort avoidance: when target's key is a prefix of helper's key, the
//     entries arrive already ordered and the external sort disappears.
//
// The paper observed discounts up to 80% of the build cost; the same
// magnitude emerges here when both effects combine.
func (s *Sim) BuildDiscount(target, helper IndexDef) float64 {
	if target.Table != helper.Table {
		return 0
	}
	t := s.Schema.Table(target.Table)
	have := map[string]bool{}
	for _, c := range helper.Key {
		have[c] = true
	}
	for _, c := range helper.Include {
		have[c] = true
	}
	covers := true
	for _, c := range append(append([]string{}, target.Key...), target.Include...) {
		if !have[c] {
			covers = false
			break
		}
	}
	var discount float64
	if covers {
		// Scan helper's leaves instead of the table.
		tableScan := s.TableScanCost(t)
		idxScan := s.IndexPages(helper)*seqPageCost + float64(t.Rows)*cpuIndexCost
		if idxScan < tableScan {
			discount += tableScan - idxScan
		}
		// Sorted source: target key a prefix of helper key.
		if len(target.Key) <= len(helper.Key) {
			prefix := true
			for i := range target.Key {
				if helper.Key[i] != target.Key[i] {
					prefix = false
					break
				}
			}
			if prefix {
				discount += float64(t.Rows) * sortRowCost * math.Log2(float64(t.Rows)+2)
			}
		}
	} else if len(target.Key) > 0 && len(helper.Key) > 0 && target.Key[0] == helper.Key[0] {
		// Partial help: a shared leading key column lets the sort run
		// partitioned (cheaper merge passes).
		discount += 0.25 * float64(t.Rows) * sortRowCost * math.Log2(float64(t.Rows)+2)
	}
	// Keep the discounted cost strictly positive.
	if max := 0.9 * s.BuildCost(target); discount > max {
		discount = max
	}
	return discount
}
