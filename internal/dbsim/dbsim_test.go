package dbsim

import (
	"testing"

	"github.com/evolving-olap/idd/internal/sql"
)

// testSchema: one big fact table and one small dimension.
func testSchema() *sql.Schema {
	return &sql.Schema{
		Name: "test",
		Tables: []*sql.Table{
			{
				Name: "sales", Rows: 1_000_000,
				Columns: []sql.Column{
					{Name: "sale_id", Distinct: 1_000_000, Width: 8},
					{Name: "cust_id", Distinct: 50_000, Width: 8},
					{Name: "item_id", Distinct: 10_000, Width: 8},
					{Name: "amount", Distinct: 100_000, Width: 8},
					{Name: "sale_date", Distinct: 2_000, Width: 8},
				},
			},
			{
				Name: "customer", Rows: 50_000,
				Columns: []sql.Column{
					{Name: "cust_id", Distinct: 50_000, Width: 8},
					{Name: "country", Distinct: 50, Width: 16},
					{Name: "name", Distinct: 50_000, Width: 32},
				},
			},
		},
	}
}

func scanQuery() *sql.Query {
	return &sql.Query{
		Name:   "scan",
		Tables: []string{"sales"},
		Predicates: []sql.Predicate{
			{Col: sql.ColRef{Table: "sales", Column: "cust_id"}, Kind: sql.Eq, Selectivity: 0.00002},
		},
		Select: []sql.ColRef{{Table: "sales", Column: "amount"}},
	}
}

func joinQuery() *sql.Query {
	return &sql.Query{
		Name:   "join",
		Tables: []string{"sales", "customer"},
		Predicates: []sql.Predicate{
			{Col: sql.ColRef{Table: "customer", Column: "country"}, Kind: sql.Eq, Selectivity: 0.02},
		},
		Joins: []sql.Join{{
			Left:  sql.ColRef{Table: "sales", Column: "cust_id"},
			Right: sql.ColRef{Table: "customer", Column: "cust_id"},
		}},
		GroupBy: []sql.ColRef{{Table: "customer", Column: "country"}},
		Select:  []sql.ColRef{{Table: "sales", Column: "amount"}},
	}
}

func TestIndexDefBasics(t *testing.T) {
	s := testSchema()
	d := IndexDef{Table: "sales", Key: []string{"cust_id"}, Include: []string{"amount"}}
	if err := d.Validate(s); err != nil {
		t.Fatal(err)
	}
	if d.Name() != "ix_sales_cust_id_inc_amount" {
		t.Errorf("Name = %q", d.Name())
	}
	if !d.Equal(d) {
		t.Error("Equal is not reflexive")
	}
	if d.Equal(IndexDef{Table: "sales", Key: []string{"item_id"}}) {
		t.Error("different defs reported equal")
	}
	bad := []IndexDef{
		{Table: "nope", Key: []string{"x"}},
		{Table: "sales", Key: nil},
		{Table: "sales", Key: []string{"bogus"}},
		{Table: "sales", Key: []string{"cust_id", "cust_id"}},
	}
	for _, b := range bad {
		if err := b.Validate(s); err == nil {
			t.Errorf("invalid def accepted: %+v", b)
		}
	}
}

func TestSelectiveIndexBeatsScan(t *testing.T) {
	sim := New(testSchema())
	q := scanQuery()
	uni := []IndexDef{{Table: "sales", Key: []string{"cust_id"}}}
	avail := []bool{true}
	plan := sim.BestPlan(q, uni, avail)
	noIdx := sim.NoIndexCost(q, uni)
	if len(plan.Used) != 1 || plan.Used[0] != 0 {
		t.Fatalf("selective index not chosen: %+v", plan)
	}
	if plan.Cost >= noIdx {
		t.Fatalf("index plan %v not cheaper than scan %v", plan.Cost, noIdx)
	}
}

func TestCoveringIndexBeatsNonCovering(t *testing.T) {
	sim := New(testSchema())
	q := scanQuery()
	uni := []IndexDef{
		{Table: "sales", Key: []string{"cust_id"}},
		{Table: "sales", Key: []string{"cust_id"}, Include: []string{"amount"}},
	}
	plan := sim.BestPlan(q, uni, []bool{true, true})
	if len(plan.Used) != 1 || plan.Used[0] != 1 {
		t.Fatalf("covering index not preferred: %+v", plan)
	}
	// The competing interaction: with only the narrow index available the
	// optimizer settles for it.
	plan2 := sim.BestPlan(q, uni, []bool{true, false})
	if len(plan2.Used) != 1 || plan2.Used[0] != 0 {
		t.Fatalf("fallback to narrow index failed: %+v", plan2)
	}
	if plan.Cost >= plan2.Cost {
		t.Error("covering plan should be cheaper")
	}
}

func TestJoinUsesIndexNestedLoops(t *testing.T) {
	sim := New(testSchema())
	q := joinQuery()
	uni := []IndexDef{
		{Table: "sales", Key: []string{"cust_id"}, Include: []string{"amount"}},
	}
	with := sim.BestPlan(q, uni, []bool{true})
	without := sim.BestPlan(q, uni, []bool{false})
	if with.Cost >= without.Cost {
		t.Fatalf("join index did not help: %v vs %v", with.Cost, without.Cost)
	}
	if len(with.Used) == 0 {
		t.Fatal("join index not reported as used")
	}
}

func TestSortAvoidance(t *testing.T) {
	sim := New(testSchema())
	q := &sql.Query{
		Name:    "sorted",
		Tables:  []string{"customer"},
		OrderBy: []sql.ColRef{{Table: "customer", Column: "country"}},
		Select:  []sql.ColRef{{Table: "customer", Column: "name"}},
	}
	uni := []IndexDef{{Table: "customer", Key: []string{"country"}, Include: []string{"name"}}}
	with := sim.BestPlan(q, uni, []bool{true})
	without := sim.BestPlan(q, uni, []bool{false})
	if with.Cost >= without.Cost {
		t.Fatalf("sort-avoiding index did not help: %v vs %v", with.Cost, without.Cost)
	}
}

func TestBuildDiscounts(t *testing.T) {
	sim := New(testSchema())
	narrow := IndexDef{Table: "sales", Key: []string{"cust_id"}}
	wide := IndexDef{Table: "sales", Key: []string{"cust_id", "sale_date"}, Include: []string{"amount"}}
	other := IndexDef{Table: "customer", Key: []string{"country"}}

	// Narrow from wide: covered and prefix-sorted — the big discount.
	d1 := sim.BuildDiscount(narrow, wide)
	if d1 <= 0 {
		t.Fatal("no discount building narrow from wide")
	}
	bc := sim.BuildCost(narrow)
	if d1 >= bc {
		t.Fatalf("discount %v >= build cost %v", d1, bc)
	}
	if ratio := d1 / bc; ratio < 0.4 {
		t.Errorf("narrow-from-wide discount only %.0f%% (paper observes up to 80%%)", 100*ratio)
	}
	// Wide from narrow: shared leading column only — partial discount.
	d2 := sim.BuildDiscount(wide, narrow)
	if d2 <= 0 || d2 >= d1 {
		t.Errorf("partial discount %v should be positive and below %v", d2, d1)
	}
	// Cross-table: nothing.
	if d := sim.BuildDiscount(narrow, other); d != 0 {
		t.Errorf("cross-table discount %v", d)
	}
}

func TestEnumeratePlansProducesCompetingConfigurations(t *testing.T) {
	sim := New(testSchema())
	q := joinQuery()
	uni := []IndexDef{
		{Table: "sales", Key: []string{"cust_id"}},
		{Table: "sales", Key: []string{"cust_id"}, Include: []string{"amount"}},
		{Table: "customer", Key: []string{"country"}, Include: []string{"cust_id"}},
		{Table: "customer", Key: []string{"cust_id"}},
	}
	plans := sim.EnumeratePlans(q, uni, 20)
	if len(plans) < 2 {
		t.Fatalf("expected multiple atomic configurations, got %d", len(plans))
	}
	noIdx := sim.NoIndexCost(q, uni)
	seen := map[string]bool{}
	for _, p := range plans {
		if p.Cost >= noIdx {
			t.Errorf("plan %+v not better than no-index cost %v", p, noIdx)
		}
		if len(p.Used) == 0 {
			t.Error("plan with no indexes recorded")
		}
		k := intsKey(p.Used)
		if seen[k] {
			t.Error("duplicate plan emitted")
		}
		seen[k] = true
	}
}

func TestPagesOfNeverZero(t *testing.T) {
	if pagesOf(0, 8) < 1 || pagesOf(1, 100000) < 1 {
		t.Error("page estimates must be at least 1")
	}
}
