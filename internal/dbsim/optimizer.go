package dbsim

import (
	"math"
	"sort"

	"github.com/evolving-olap/idd/internal/sql"
)

// Plan is an atomic configuration in the sense of [Finkelstein et al.]:
// the set of hypothetical indexes the optimizer would use for a query,
// with the resulting cost.
type Plan struct {
	// Used lists positions into the index universe, ascending.
	Used []int
	// Cost is the estimated query cost with exactly these indexes.
	Cost float64
}

// BestPlan runs the what-if optimizer: given the universe of hypothetical
// indexes and an availability mask, it picks the cheapest access path per
// table, the cheapest method per join edge, and a sort-avoidance index if
// one applies, returning the used set and total cost. The model is
// deliberately decomposable (no join reordering) so plans are
// deterministic and the competing/query interactions of §4.2 emerge from
// the index choices alone.
func (s *Sim) BestPlan(q *sql.Query, universe []IndexDef, avail []bool) Plan {
	used := map[int]bool{}
	var total float64

	outRows := map[string]float64{}
	for _, tn := range q.Tables {
		t := s.Schema.Table(tn)
		sel := 1.0
		for _, p := range q.TablePredicates(tn) {
			sel *= p.Selectivity
		}
		outRows[tn] = float64(t.Rows) * sel
		cost, ix := s.bestAccessPath(q, tn, universe, avail)
		total += cost
		if ix >= 0 {
			used[ix] = true
		}
	}

	for _, j := range q.Joins {
		cost, ix := s.bestJoin(j, outRows, universe, avail)
		total += cost
		if ix >= 0 {
			used[ix] = true
		}
	}

	if cols := groupOrOrder(q); len(cols) > 0 {
		cost, ix := s.sortCost(q, cols, outRows, universe, avail)
		total += cost
		if ix >= 0 {
			used[ix] = true
		}
	}

	plan := Plan{Cost: total}
	for ix := range used {
		plan.Used = append(plan.Used, ix)
	}
	sort.Ints(plan.Used)
	return plan
}

func groupOrOrder(q *sql.Query) []sql.ColRef {
	if len(q.GroupBy) > 0 {
		return q.GroupBy
	}
	return q.OrderBy
}

// bestAccessPath picks the cheapest way to read one table.
func (s *Sim) bestAccessPath(q *sql.Query, table string, universe []IndexDef, avail []bool) (float64, int) {
	t := s.Schema.Table(table)
	best := s.TableScanCost(t)
	bestIx := -1
	needed := q.NeededColumns(table)
	preds := q.TablePredicates(table)

	for ix, d := range universe {
		if !avail[ix] || d.Table != table {
			continue
		}
		if c, ok := s.indexScanCost(t, d, preds, needed); ok && c < best {
			best, bestIx = c, ix
		}
	}
	return best, bestIx
}

// indexScanCost estimates scanning table t via index d, or ok=false when
// the index is unusable for this query.
func (s *Sim) indexScanCost(t *sql.Table, d IndexDef, preds []sql.Predicate, needed []string) (float64, bool) {
	// Longest usable prefix: equality predicates extend it, one range
	// predicate ends it.
	predOn := map[string]*sql.Predicate{}
	for i := range preds {
		predOn[preds[i].Col.Column] = &preds[i]
	}
	sel := 1.0
	matched := 0
	for _, k := range d.Key {
		p := predOn[k]
		if p == nil {
			break
		}
		sel *= p.Selectivity
		matched++
		if p.Kind == sql.Range {
			break
		}
	}
	have := map[string]bool{}
	for _, c := range d.Key {
		have[c] = true
	}
	for _, c := range d.Include {
		have[c] = true
	}
	covering := true
	for _, c := range needed {
		if !have[c] {
			covering = false
			break
		}
	}
	if matched == 0 && !covering {
		return 0, false // neither selective nor covering: useless
	}
	rows := float64(t.Rows)
	matchedRows := rows * sel
	width := s.indexWidth(t, d)
	leaf := pagesOf(int64(matchedRows)+1, width)*seqPageCost + matchedRows*cpuIndexCost
	cost := seekCost + leaf
	if !covering {
		fetch := matchedRows * randPageCost
		// A fetch storm can never sensibly exceed rescanning the table.
		if cap := 2 * s.TableScanCost(t); fetch > cap {
			fetch = cap
		}
		cost += fetch
	}
	return cost, true
}

// bestJoin prices one equi-join edge: hash join versus index nested
// loops on either side (INL requires an available index whose leading
// key column is the inner join column).
func (s *Sim) bestJoin(j sql.Join, outRows map[string]float64, universe []IndexDef, avail []bool) (float64, int) {
	lRows, rRows := outRows[j.Left.Table], outRows[j.Right.Table]
	small, large := lRows, rRows
	if small > large {
		small, large = large, small
	}
	best := small*hashBuildCost + large*hashProbeCost
	bestIx := -1
	try := func(inner sql.ColRef, outerRows float64) {
		for ix, d := range universe {
			if !avail[ix] || d.Table != inner.Table || len(d.Key) == 0 || d.Key[0] != inner.Column {
				continue
			}
			c := outerRows * inlProbeCost
			if c < best {
				best, bestIx = c, ix
			}
		}
	}
	try(j.Right, lRows)
	try(j.Left, rRows)
	return best, bestIx
}

// sortCost prices the final group/order stage: free when an available
// index on the sort table has the sort columns as its key prefix.
func (s *Sim) sortCost(q *sql.Query, cols []sql.ColRef, outRows map[string]float64, universe []IndexDef, avail []bool) (float64, int) {
	// Result size estimate: the largest filtered input.
	var resRows float64
	for _, r := range outRows {
		if r > resRows {
			resRows = r
		}
	}
	if resRows < 2 {
		resRows = 2
	}
	full := resRows * sortRowCost * math.Log2(resRows)

	// All sort columns must come from one table for index-assisted order.
	table := cols[0].Table
	for _, c := range cols[1:] {
		if c.Table != table {
			return full, -1
		}
	}
	for ix, d := range universe {
		if !avail[ix] || d.Table != table || len(d.Key) < len(cols) {
			continue
		}
		match := true
		for k, c := range cols {
			if d.Key[k] != c.Column {
				match = false
				break
			}
		}
		if match {
			return 0, ix
		}
	}
	return full, -1
}

// NoIndexCost is the query's cost with no hypothetical indexes — the
// qtime(q) of the problem formulation.
func (s *Sim) NoIndexCost(q *sql.Query, universe []IndexDef) float64 {
	return s.BestPlan(q, universe, make([]bool, len(universe))).Cost
}

// EnumeratePlans reproduces the paper's §8 extraction loop: call the
// what-if optimizer, record the atomic configuration, remove one used
// index at a time and recurse, collecting up to maxPlans distinct
// configurations that actually use indexes and beat the no-index cost.
func (s *Sim) EnumeratePlans(q *sql.Query, universe []IndexDef, maxPlans int) []Plan {
	base := make([]bool, len(universe))
	for i := range base {
		base[i] = true
	}
	noIdx := s.NoIndexCost(q, universe)

	type state struct{ removed []int }
	seenPlan := map[string]bool{}
	seenMask := map[string]bool{}
	var out []Plan
	queue := []state{{}}
	for len(queue) > 0 && len(out) < maxPlans {
		st := queue[0]
		queue = queue[1:]
		avail := make([]bool, len(universe))
		copy(avail, base)
		for _, r := range st.removed {
			avail[r] = false
		}
		mk := maskKey(avail)
		if seenMask[mk] {
			continue
		}
		seenMask[mk] = true
		plan := s.BestPlan(q, universe, avail)
		if len(plan.Used) == 0 || plan.Cost >= noIdx-1e-9 {
			continue
		}
		pk := intsKey(plan.Used)
		if !seenPlan[pk] {
			seenPlan[pk] = true
			out = append(out, plan)
		}
		for _, u := range plan.Used {
			nr := append(append([]int(nil), st.removed...), u)
			queue = append(queue, state{removed: nr})
		}
	}
	return out
}

func maskKey(mask []bool) string {
	b := make([]byte, (len(mask)+7)/8)
	for i, m := range mask {
		if m {
			b[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	return string(b)
}

func intsKey(xs []int) string {
	b := make([]byte, 0, 2*len(xs))
	for _, x := range xs {
		b = append(b, byte(x), byte(x>>8))
	}
	return string(b)
}
