// Package evolve implements the paper's Incremental Database Design
// vision (§1.1, Figure 1) as a driver: a warehouse whose workload keeps
// changing is re-tuned in rounds. Each round the advisor proposes a
// design for the new workload, the driver diffs it against what is
// already deployed, drops obsolete indexes, and schedules the *delta*
// deployment with the ordering machinery — indexes that survived earlier
// rounds count as already built, so their plans and build discounts
// apply from the start.
package evolve

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/evolving-olap/idd/internal/advisor"
	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/dbsim"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
	"github.com/evolving-olap/idd/internal/sql"
)

// Round is one workload era: the schema (which may itself evolve) and
// the queries that dominate it.
type Round struct {
	Name    string
	Schema  *sql.Schema
	Queries []*sql.Query
}

// Options tunes the driver.
type Options struct {
	// Advisor parameters for each round's design.
	Advisor advisor.Options
	// OrderSteps bounds the VNS refinement per round (0 = 20000).
	OrderSteps int64
	// Rng drives VNS (nil = seeded with 1).
	Rng *rand.Rand
}

// Step reports one round's actions.
type Step struct {
	Round string
	// Deployed lists the new indexes in deployment order.
	Deployed []dbsim.IndexDef
	// Dropped lists indexes removed because the new design no longer
	// wants them.
	Dropped []dbsim.IndexDef
	// Delta is the ordering instance for the round (indexes parallel to
	// Deployed); nil when nothing new was needed.
	Delta *model.Instance
	// Objective is the ordering objective achieved on Delta.
	Objective float64
	// RuntimeBefore/RuntimeAfter are the workload runtimes at the start
	// and end of the round (current workload, current indexes).
	RuntimeBefore, RuntimeAfter float64
}

// Run executes the rounds and returns one Step per round.
func Run(rounds []Round, opt Options) ([]Step, error) {
	if opt.Rng == nil {
		opt.Rng = rand.New(rand.NewSource(1))
	}
	if opt.OrderSteps == 0 {
		opt.OrderSteps = 20000
	}
	deployed := map[string]dbsim.IndexDef{} // by Name()
	var steps []Step

	for _, r := range rounds {
		if err := sql.ValidateWorkload(r.Schema, r.Queries); err != nil {
			return steps, fmt.Errorf("evolve: round %s: %w", r.Name, err)
		}
		sim := dbsim.New(r.Schema)
		cands := advisor.Candidates(r.Schema, r.Queries, opt.Advisor)
		design := advisor.Select(sim, r.Queries, cands, opt.Advisor)

		// Survivors must still be valid for the (possibly evolved)
		// schema; an index on a dropped table or column dies with it.
		// Iterate in sorted name order so the step output is
		// deterministic (map range order varies run-to-run).
		for _, name := range sortedNames(deployed) {
			if deployed[name].Validate(r.Schema) != nil {
				delete(deployed, name)
			}
		}

		// Diff the design against the deployed set.
		want := map[string]dbsim.IndexDef{}
		full := make([]dbsim.IndexDef, 0, len(design)+len(deployed))
		for _, d := range design {
			want[d.Name()] = d
			full = append(full, d)
		}
		var dropped []dbsim.IndexDef
		for _, name := range sortedNames(deployed) {
			if _, ok := want[name]; !ok {
				dropped = append(dropped, deployed[name])
				delete(deployed, name)
			}
		}

		step := Step{Round: r.Name, Dropped: dropped}

		// Extract the matrix over the full design, then project onto the
		// not-yet-deployed indexes (survivors count as already built).
		inst, defs, err := advisor.Extract(r.Name, sim, r.Queries, full, opt.Advisor)
		if err != nil {
			// Nothing in the design helps this workload; runtimes only.
			step.RuntimeBefore = workloadRuntime(sim, r.Queries, deployedDefs(deployed))
			step.RuntimeAfter = step.RuntimeBefore
			steps = append(steps, step)
			continue
		}
		isNew := make([]bool, len(defs))
		for i, d := range defs {
			_, have := deployed[d.Name()]
			isNew[i] = !have
		}
		delta, kept, err := ProjectDelta(inst, isNew)
		if err != nil {
			return steps, fmt.Errorf("evolve: round %s: %w", r.Name, err)
		}
		newDefs := make([]dbsim.IndexDef, len(kept))
		for i, orig := range kept {
			newDefs[i] = defs[orig]
		}
		step.RuntimeBefore = delta.BaseRuntime()
		if delta.N() == 0 {
			step.RuntimeAfter = step.RuntimeBefore
			steps = append(steps, step)
			continue
		}

		c := model.MustCompile(delta)
		cs := sched.PrecedenceSet(delta)
		res := local.VNS(c, cs, local.Options{
			Initial:  greedy.Solve(c, cs),
			MaxSteps: opt.OrderSteps,
			Rng:      opt.Rng,
		})
		step.Delta = delta
		step.Objective = res.Objective
		for _, ix := range res.Order {
			step.Deployed = append(step.Deployed, newDefs[ix])
			deployed[newDefs[ix].Name()] = newDefs[ix]
		}
		_, _, step.RuntimeAfter = c.Evaluate(res.Order)
		steps = append(steps, step)
	}
	return steps, nil
}

func sortedNames(m map[string]dbsim.IndexDef) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func deployedDefs(m map[string]dbsim.IndexDef) []dbsim.IndexDef {
	out := make([]dbsim.IndexDef, 0, len(m))
	for _, name := range sortedNames(m) {
		out = append(out, m[name])
	}
	return out
}

// workloadRuntime prices the workload given a fixed set of real indexes.
func workloadRuntime(sim *dbsim.Sim, queries []*sql.Query, have []dbsim.IndexDef) float64 {
	avail := make([]bool, len(have))
	for i := range avail {
		avail[i] = true
	}
	var sum float64
	for _, q := range queries {
		w := q.Weight
		if w == 0 {
			w = 1
		}
		sum += sim.BestPlan(q, have, avail).Cost * w
	}
	return sum
}

// ProjectDelta turns a full-design ordering instance into the
// delta-deployment instance: indexes with isNew[i] == false are treated
// as already built from time zero — their plans lower the baseline
// runtimes, their helper discounts fold into create costs — and only new
// indexes remain as decisions. It returns the projected instance and
// kept, where kept[j] is the position in full of the delta's index j.
// The same construction underlies both the batch driver and the service
// session path, so an inconsistent projection is reported as an error
// rather than a panic.
func ProjectDelta(full *model.Instance, isNew []bool) (*model.Instance, []int, error) {
	if len(isNew) != full.N() {
		return nil, nil, fmt.Errorf("evolve: isNew has %d entries for %d indexes", len(isNew), full.N())
	}
	remap := make([]int, full.N())
	out := &model.Instance{Name: full.Name + "-delta"}
	var kept []int
	for i := range remap {
		remap[i] = -1
	}
	for i := 0; i < full.N(); i++ {
		if isNew[i] {
			remap[i] = len(out.Indexes)
			out.Indexes = append(out.Indexes, full.Indexes[i])
			kept = append(kept, i)
		}
	}
	// Baseline runtime per query: best plan among already-deployed-only
	// plans.
	base := make([]float64, len(full.Queries))
	for q, qu := range full.Queries {
		base[q] = qu.Runtime
	}
	for _, p := range full.Plans {
		allOld := true
		for _, ix := range p.Indexes {
			if isNew[ix] {
				allOld = false
				break
			}
		}
		if allOld {
			if r := full.Queries[p.Query].Runtime - p.Speedup; r < base[p.Query] {
				base[p.Query] = r
			}
		}
	}
	for q, qu := range full.Queries {
		out.Queries = append(out.Queries, model.Query{Name: qu.Name, Runtime: base[q], Weight: qu.Weight})
	}
	for _, p := range full.Plans {
		var needed []int
		for _, ix := range p.Indexes {
			if isNew[ix] {
				needed = append(needed, remap[ix])
			}
		}
		if len(needed) == 0 {
			continue
		}
		gain := base[p.Query] - (full.Queries[p.Query].Runtime - p.Speedup)
		if gain <= 1e-9 {
			continue
		}
		out.Plans = append(out.Plans, model.Plan{Query: p.Query, Indexes: needed, Speedup: gain})
	}
	// Deployed helpers discount from time zero; new-new interactions
	// stay dynamic (clamped below the possibly-reduced create cost).
	for _, b := range full.BuildInteractions {
		if !isNew[b.Target] || isNew[b.Helper] {
			continue
		}
		cc := &out.Indexes[remap[b.Target]].CreateCost
		if reduced := full.Indexes[b.Target].CreateCost - b.Speedup; reduced < *cc {
			*cc = reduced
		}
	}
	for _, b := range full.BuildInteractions {
		if !isNew[b.Target] || !isNew[b.Helper] {
			continue
		}
		cost := out.Indexes[remap[b.Target]].CreateCost
		spd := b.Speedup
		if spd >= cost {
			spd = 0.9 * cost
		}
		if spd <= 0 {
			continue
		}
		out.BuildInteractions = append(out.BuildInteractions, model.BuildInteraction{
			Target: remap[b.Target], Helper: remap[b.Helper], Speedup: spd,
		})
	}
	for _, pr := range full.Precedences {
		if isNew[pr.Before] && isNew[pr.After] {
			out.Precedences = append(out.Precedences, model.Precedence{
				Before: remap[pr.Before], After: remap[pr.After],
			})
		}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("evolve: projected delta invalid: %w", err)
	}
	return out, kept, nil
}

// RepairOrder adapts a previous deployment order (index names, earliest
// first) to a drifted instance: names that no longer exist are dropped,
// survivors keep their relative order, and indexes new to the instance
// are greedy-inserted one at a time at the objective-minimising feasible
// position. The result is a feasible warm-start order for in; callers
// fall back to a cold start when repair fails (e.g. the surviving
// prefix violates the instance's precedences).
func RepairOrder(in *model.Instance, prior []string) ([]string, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("evolve: repair: %w", err)
	}
	n := in.N()
	if n == 0 {
		return nil, nil
	}
	pos := make(map[string]int, n)
	for i, ix := range in.Indexes {
		pos[ix.Name] = i
	}
	inPrior := make([]bool, n)
	order := make([]int, 0, n)
	for _, name := range prior {
		if i, ok := pos[name]; ok && !inPrior[i] {
			inPrior[i] = true
			order = append(order, i)
		}
	}
	var added []int
	for i := 0; i < n; i++ {
		if !inPrior[i] {
			added = append(added, i)
		}
	}
	c, err := model.Compile(in)
	if err != nil {
		return nil, fmt.Errorf("evolve: repair: %w", err)
	}
	cs := sched.PrecedenceSet(in)
	// Complete the permutation first (new indexes go to the tail), then
	// reposition each new index where it helps most.
	order = append(order, added...)
	if repaired := stableTopo(order, cs); repaired == nil {
		return nil, fmt.Errorf("evolve: repair: prior order cannot be made precedence-feasible")
	} else {
		order = repaired
	}
	for _, ix := range added {
		order = bestReinsert(c, cs, order, ix)
	}
	if !compatible(cs, order) {
		return nil, fmt.Errorf("evolve: repair: no precedence-feasible completion")
	}
	names := make([]string, n)
	for k, ix := range order {
		names[k] = in.Indexes[ix].Name
	}
	return names, nil
}

// stableTopo reorders order into a cs-compatible permutation that keeps
// the given relative order wherever the constraints allow, or nil when
// the constraints are cyclic over these items.
func stableTopo(order []int, cs *constraint.Set) []int {
	if compatible(cs, order) {
		return order
	}
	n := len(order)
	used := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		picked := -1
		for _, it := range order {
			if used[it] {
				continue
			}
			ready := true
			cs.Predecessors(it).ForEach(func(p int) bool {
				if !used[p] {
					ready = false
					return false
				}
				return true
			})
			if ready {
				picked = it
				break
			}
		}
		if picked < 0 {
			return nil
		}
		used[picked] = true
		out = append(out, picked)
	}
	return out
}

// bestReinsert moves item ix to the feasible position in order that
// minimises the deployment objective; order must already contain ix.
func bestReinsert(c *model.Compiled, cs *constraint.Set, order []int, ix int) []int {
	base := make([]int, 0, len(order)-1)
	for _, it := range order {
		if it != ix {
			base = append(base, it)
		}
	}
	best := append([]int(nil), order...)
	bestObj := c.Objective(order)
	cand := make([]int, len(order))
	for p := 0; p <= len(base); p++ {
		copy(cand[:p], base[:p])
		cand[p] = ix
		copy(cand[p+1:], base[p:])
		if !compatible(cs, cand) {
			continue
		}
		if obj := c.Objective(cand); obj < bestObj {
			bestObj = obj
			copy(best, cand)
		}
	}
	return best
}

func compatible(cs *constraint.Set, order []int) bool {
	return cs == nil || cs.Compatible(order)
}
