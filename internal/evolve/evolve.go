// Package evolve implements the paper's Incremental Database Design
// vision (§1.1, Figure 1) as a driver: a warehouse whose workload keeps
// changing is re-tuned in rounds. Each round the advisor proposes a
// design for the new workload, the driver diffs it against what is
// already deployed, drops obsolete indexes, and schedules the *delta*
// deployment with the ordering machinery — indexes that survived earlier
// rounds count as already built, so their plans and build discounts
// apply from the start.
package evolve

import (
	"fmt"
	"math/rand"

	"github.com/evolving-olap/idd/internal/advisor"
	"github.com/evolving-olap/idd/internal/dbsim"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
	"github.com/evolving-olap/idd/internal/sql"
)

// Round is one workload era: the schema (which may itself evolve) and
// the queries that dominate it.
type Round struct {
	Name    string
	Schema  *sql.Schema
	Queries []*sql.Query
}

// Options tunes the driver.
type Options struct {
	// Advisor parameters for each round's design.
	Advisor advisor.Options
	// OrderSteps bounds the VNS refinement per round (0 = 20000).
	OrderSteps int64
	// Rng drives VNS (nil = seeded with 1).
	Rng *rand.Rand
}

// Step reports one round's actions.
type Step struct {
	Round string
	// Deployed lists the new indexes in deployment order.
	Deployed []dbsim.IndexDef
	// Dropped lists indexes removed because the new design no longer
	// wants them.
	Dropped []dbsim.IndexDef
	// Delta is the ordering instance for the round (indexes parallel to
	// Deployed); nil when nothing new was needed.
	Delta *model.Instance
	// Objective is the ordering objective achieved on Delta.
	Objective float64
	// RuntimeBefore/RuntimeAfter are the workload runtimes at the start
	// and end of the round (current workload, current indexes).
	RuntimeBefore, RuntimeAfter float64
}

// Run executes the rounds and returns one Step per round.
func Run(rounds []Round, opt Options) ([]Step, error) {
	if opt.Rng == nil {
		opt.Rng = rand.New(rand.NewSource(1))
	}
	if opt.OrderSteps == 0 {
		opt.OrderSteps = 20000
	}
	deployed := map[string]dbsim.IndexDef{} // by Name()
	var steps []Step

	for _, r := range rounds {
		if err := sql.ValidateWorkload(r.Schema, r.Queries); err != nil {
			return steps, fmt.Errorf("evolve: round %s: %w", r.Name, err)
		}
		sim := dbsim.New(r.Schema)
		cands := advisor.Candidates(r.Schema, r.Queries, opt.Advisor)
		design := advisor.Select(sim, r.Queries, cands, opt.Advisor)

		// Survivors must still be valid for the (possibly evolved)
		// schema; an index on a dropped table or column dies with it.
		for name, d := range deployed {
			if d.Validate(r.Schema) != nil {
				delete(deployed, name)
			}
		}

		// Diff the design against the deployed set.
		want := map[string]dbsim.IndexDef{}
		full := make([]dbsim.IndexDef, 0, len(design)+len(deployed))
		for _, d := range design {
			want[d.Name()] = d
			full = append(full, d)
		}
		var dropped []dbsim.IndexDef
		for name, d := range deployed {
			if _, ok := want[name]; !ok {
				dropped = append(dropped, d)
				delete(deployed, name)
			}
		}

		step := Step{Round: r.Name, Dropped: dropped}

		// Extract the matrix over the full design, then project onto the
		// not-yet-deployed indexes (survivors count as already built).
		inst, defs, err := advisor.Extract(r.Name, sim, r.Queries, full, opt.Advisor)
		if err != nil {
			// Nothing in the design helps this workload; runtimes only.
			step.RuntimeBefore = workloadRuntime(sim, r.Queries, deployedDefs(deployed))
			step.RuntimeAfter = step.RuntimeBefore
			steps = append(steps, step)
			continue
		}
		isNew := make([]bool, len(defs))
		for i, d := range defs {
			_, have := deployed[d.Name()]
			isNew[i] = !have
		}
		delta, newDefs := projectDelta(inst, defs, isNew)
		step.RuntimeBefore = delta.BaseRuntime()
		if delta.N() == 0 {
			step.RuntimeAfter = step.RuntimeBefore
			steps = append(steps, step)
			continue
		}

		c := model.MustCompile(delta)
		cs := sched.PrecedenceSet(delta)
		res := local.VNS(c, cs, local.Options{
			Initial:  greedy.Solve(c, cs),
			MaxSteps: opt.OrderSteps,
			Rng:      opt.Rng,
		})
		step.Delta = delta
		step.Objective = res.Objective
		for _, ix := range res.Order {
			step.Deployed = append(step.Deployed, newDefs[ix])
			deployed[newDefs[ix].Name()] = newDefs[ix]
		}
		_, _, step.RuntimeAfter = c.Evaluate(res.Order)
		steps = append(steps, step)
	}
	return steps, nil
}

func deployedDefs(m map[string]dbsim.IndexDef) []dbsim.IndexDef {
	out := make([]dbsim.IndexDef, 0, len(m))
	for _, d := range m {
		out = append(out, d)
	}
	return out
}

// workloadRuntime prices the workload given a fixed set of real indexes.
func workloadRuntime(sim *dbsim.Sim, queries []*sql.Query, have []dbsim.IndexDef) float64 {
	avail := make([]bool, len(have))
	for i := range avail {
		avail[i] = true
	}
	var sum float64
	for _, q := range queries {
		w := q.Weight
		if w == 0 {
			w = 1
		}
		sum += sim.BestPlan(q, have, avail).Cost * w
	}
	return sum
}

// projectDelta turns a full-design ordering instance into the
// delta-deployment instance: already-deployed indexes are treated as
// built from time zero — their plans lower the baseline runtimes, their
// helper discounts fold into create costs — and only new indexes remain
// as decisions. The same construction underlies the recovery use case.
func projectDelta(full *model.Instance, defs []dbsim.IndexDef, isNew []bool) (*model.Instance, []dbsim.IndexDef) {
	remap := make([]int, full.N())
	out := &model.Instance{Name: full.Name + "-delta"}
	var newDefs []dbsim.IndexDef
	for i := range remap {
		remap[i] = -1
	}
	for i := 0; i < full.N(); i++ {
		if isNew[i] {
			remap[i] = len(out.Indexes)
			out.Indexes = append(out.Indexes, full.Indexes[i])
			newDefs = append(newDefs, defs[i])
		}
	}
	// Baseline runtime per query: best plan among already-deployed-only
	// plans.
	base := make([]float64, len(full.Queries))
	for q, qu := range full.Queries {
		base[q] = qu.Runtime
	}
	for _, p := range full.Plans {
		allOld := true
		for _, ix := range p.Indexes {
			if isNew[ix] {
				allOld = false
				break
			}
		}
		if allOld {
			if r := full.Queries[p.Query].Runtime - p.Speedup; r < base[p.Query] {
				base[p.Query] = r
			}
		}
	}
	for q, qu := range full.Queries {
		out.Queries = append(out.Queries, model.Query{Name: qu.Name, Runtime: base[q], Weight: qu.Weight})
	}
	for _, p := range full.Plans {
		var needed []int
		for _, ix := range p.Indexes {
			if isNew[ix] {
				needed = append(needed, remap[ix])
			}
		}
		if len(needed) == 0 {
			continue
		}
		gain := base[p.Query] - (full.Queries[p.Query].Runtime - p.Speedup)
		if gain <= 1e-9 {
			continue
		}
		out.Plans = append(out.Plans, model.Plan{Query: p.Query, Indexes: needed, Speedup: gain})
	}
	// Deployed helpers discount from time zero; new-new interactions
	// stay dynamic (clamped below the possibly-reduced create cost).
	for _, b := range full.BuildInteractions {
		if !isNew[b.Target] || isNew[b.Helper] {
			continue
		}
		cc := &out.Indexes[remap[b.Target]].CreateCost
		if reduced := full.Indexes[b.Target].CreateCost - b.Speedup; reduced < *cc {
			*cc = reduced
		}
	}
	for _, b := range full.BuildInteractions {
		if !isNew[b.Target] || !isNew[b.Helper] {
			continue
		}
		cost := out.Indexes[remap[b.Target]].CreateCost
		spd := b.Speedup
		if spd >= cost {
			spd = 0.9 * cost
		}
		if spd <= 0 {
			continue
		}
		out.BuildInteractions = append(out.BuildInteractions, model.BuildInteraction{
			Target: remap[b.Target], Helper: remap[b.Helper], Speedup: spd,
		})
	}
	for _, pr := range full.Precedences {
		if isNew[pr.Before] && isNew[pr.After] {
			out.Precedences = append(out.Precedences, model.Precedence{
				Before: remap[pr.Before], After: remap[pr.After],
			})
		}
	}
	if err := out.Validate(); err != nil {
		panic("evolve: projected delta invalid: " + err.Error())
	}
	return out, newDefs
}
