package evolve

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/evolving-olap/idd/internal/advisor"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/sql"
)

func cr(t, c string) sql.ColRef { return sql.ColRef{Table: t, Column: c} }

func warehouseSchema() *sql.Schema {
	return &sql.Schema{
		Name: "wh",
		Tables: []*sql.Table{
			{Name: "events", Rows: 4_000_000, Columns: []sql.Column{
				{Name: "event_id", Distinct: 4_000_000, Width: 8},
				{Name: "user_id", Distinct: 200_000, Width: 8},
				{Name: "kind", Distinct: 20, Width: 4},
				{Name: "day", Distinct: 1_000, Width: 4},
				{Name: "amount", Distinct: 50_000, Width: 8},
				{Name: "region", Distinct: 30, Width: 4},
			}},
			{Name: "users", Rows: 200_000, Columns: []sql.Column{
				{Name: "user_id", Distinct: 200_000, Width: 8},
				{Name: "segment", Distinct: 8, Width: 4},
				{Name: "joined", Distinct: 2_000, Width: 4},
			}},
		},
	}
}

func eraOne() []*sql.Query {
	return []*sql.Query{
		{
			Name:   "daily_kind",
			Tables: []string{"events"},
			Predicates: []sql.Predicate{
				{Col: cr("events", "kind"), Kind: sql.Eq, Selectivity: 0.05},
				{Col: cr("events", "day"), Kind: sql.Range, Selectivity: 0.01},
			},
			Select: []sql.ColRef{cr("events", "amount")},
		},
	}
}

func eraTwo() []*sql.Query {
	return []*sql.Query{
		{ // carried over from era one
			Name:   "daily_kind",
			Tables: []string{"events"},
			Predicates: []sql.Predicate{
				{Col: cr("events", "kind"), Kind: sql.Eq, Selectivity: 0.05},
				{Col: cr("events", "day"), Kind: sql.Range, Selectivity: 0.01},
			},
			Select: []sql.ColRef{cr("events", "amount")},
		},
		{ // new business question: segment analytics over a join
			Name:   "segment_revenue",
			Tables: []string{"events", "users"},
			Predicates: []sql.Predicate{
				{Col: cr("users", "segment"), Kind: sql.Eq, Selectivity: 0.125},
			},
			Joins:   []sql.Join{{Left: cr("events", "user_id"), Right: cr("users", "user_id")}},
			GroupBy: []sql.ColRef{cr("users", "segment")},
			Select:  []sql.ColRef{cr("events", "amount")},
		},
	}
}

func eraThree() []*sql.Query {
	return []*sql.Query{
		{ // the old reports are gone; region analytics replace them
			Name:   "region_rollup",
			Tables: []string{"events"},
			Predicates: []sql.Predicate{
				{Col: cr("events", "region"), Kind: sql.Eq, Selectivity: 1.0 / 30},
			},
			GroupBy: []sql.ColRef{cr("events", "region")},
			Select:  []sql.ColRef{cr("events", "amount")},
		},
	}
}

func rounds() []Round {
	s := warehouseSchema()
	return []Round{
		{Name: "era1", Schema: s, Queries: eraOne()},
		{Name: "era2", Schema: s, Queries: eraTwo()},
		{Name: "era3", Schema: s, Queries: eraThree()},
	}
}

func TestRunThreeEras(t *testing.T) {
	steps, err := Run(rounds(), Options{
		Advisor:    advisor.Options{MaxIndexes: 6},
		OrderSteps: 5000,
		Rng:        rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("%d steps", len(steps))
	}
	// Era 1 deploys something and improves the workload.
	if len(steps[0].Deployed) == 0 {
		t.Fatal("era1 deployed nothing")
	}
	if steps[0].RuntimeAfter >= steps[0].RuntimeBefore {
		t.Errorf("era1 runtime did not improve: %v -> %v", steps[0].RuntimeBefore, steps[0].RuntimeAfter)
	}
	// Era 2 must not redeploy era 1's surviving indexes.
	have := map[string]bool{}
	for _, d := range steps[0].Deployed {
		have[d.Name()] = true
	}
	for _, d := range steps[1].Deployed {
		if have[d.Name()] {
			t.Errorf("era2 redeployed %s", d.Name())
		}
	}
	// Era 3's workload abandons the old queries: something gets dropped.
	if len(steps[2].Dropped) == 0 {
		t.Error("era3 dropped nothing despite a full workload shift")
	}
	// Delta instances validate and deployments match them.
	for _, st := range steps {
		if st.Delta == nil {
			continue
		}
		if err := st.Delta.Validate(); err != nil {
			t.Errorf("round %s: %v", st.Round, err)
		}
		if st.Delta.N() != len(st.Deployed) {
			t.Errorf("round %s: delta has %d indexes, deployed %d", st.Round, st.Delta.N(), len(st.Deployed))
		}
	}
}

func TestStableWorkloadDeploysOnceAndNeverAgain(t *testing.T) {
	s := warehouseSchema()
	same := []Round{
		{Name: "a", Schema: s, Queries: eraOne()},
		{Name: "b", Schema: s, Queries: eraOne()},
	}
	steps, err := Run(same, Options{Advisor: advisor.Options{MaxIndexes: 4}, OrderSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps[0].Deployed) == 0 {
		t.Fatal("first round deployed nothing")
	}
	if len(steps[1].Deployed) != 0 {
		t.Errorf("stable workload triggered redeployment: %v", steps[1].Deployed)
	}
	if len(steps[1].Dropped) != 0 {
		t.Errorf("stable workload triggered drops: %v", steps[1].Dropped)
	}
}

func TestSchemaEvolutionInvalidatesIndexes(t *testing.T) {
	s1 := warehouseSchema()
	// Era 2's schema drops the users table entirely.
	s2 := &sql.Schema{Name: "wh2", Tables: s1.Tables[:1]}
	steps, err := Run([]Round{
		{Name: "a", Schema: s1, Queries: eraTwo()},
		{Name: "b", Schema: s2, Queries: eraThree()},
	}, Options{Advisor: advisor.Options{MaxIndexes: 8}, OrderSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// Any users-table index from round a must be gone silently (killed by
	// the schema change, not counted as an explicit drop of the new
	// design) and never deployed again.
	for _, d := range steps[1].Deployed {
		if d.Table == "users" {
			t.Errorf("deployed index on dropped table: %s", d.Name())
		}
	}
}

// TestRunIsDeterministic pins the fix for the unordered map iteration
// over the deployed set: with the same seed, ten runs must produce
// byte-identical steps (including Dropped order and runtime numbers).
func TestRunIsDeterministic(t *testing.T) {
	render := func() string {
		steps, err := Run(rounds(), Options{
			Advisor:    advisor.Options{MaxIndexes: 6},
			OrderSteps: 2000,
			Rng:        rand.New(rand.NewSource(1)),
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, st := range steps {
			delta := "<nil>"
			if st.Delta != nil {
				delta = fmt.Sprintf("%+v", *st.Delta)
			}
			fmt.Fprintf(&b, "%s deployed=%+v dropped=%+v obj=%v rt=%v/%v delta=%s\n",
				st.Round, st.Deployed, st.Dropped, st.Objective,
				st.RuntimeBefore, st.RuntimeAfter, delta)
		}
		return b.String()
	}
	want := render()
	for i := 1; i < 10; i++ {
		if got := render(); got != want {
			t.Fatalf("run %d differs:\n got %s\nwant %s", i, got, want)
		}
	}
}

func projTestInstance() *model.Instance {
	return &model.Instance{
		Name: "proj",
		Indexes: []model.Index{
			{Name: "a", CreateCost: 10},
			{Name: "b", CreateCost: 20},
			{Name: "c", CreateCost: 30},
		},
		Queries: []model.Query{{Name: "q", Runtime: 100}},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 30},
			{Query: 0, Indexes: []int{1, 2}, Speedup: 60},
		},
		BuildInteractions: []model.BuildInteraction{
			{Target: 2, Helper: 0, Speedup: 5},
		},
		Precedences: []model.Precedence{{Before: 1, After: 2}},
	}
}

func TestProjectDelta(t *testing.T) {
	in := projTestInstance()
	// "a" is already deployed: its plan lowers the baseline, its helper
	// discount folds into c's create cost, and only b and c remain.
	delta, kept, err := ProjectDelta(in, []bool{false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 || kept[0] != 1 || kept[1] != 2 {
		t.Fatalf("kept = %v", kept)
	}
	if delta.N() != 2 {
		t.Fatalf("delta has %d indexes", delta.N())
	}
	if got := delta.Queries[0].Runtime; got != 70 {
		t.Errorf("baseline runtime = %v, want 70 (a's plan applied)", got)
	}
	if got := delta.Indexes[1].CreateCost; got != 25 {
		t.Errorf("c create cost = %v, want 25 (helper discount folded)", got)
	}
	if len(delta.Precedences) != 1 || delta.Precedences[0].Before != 0 || delta.Precedences[0].After != 1 {
		t.Errorf("precedences = %+v", delta.Precedences)
	}
}

func TestProjectDeltaErrors(t *testing.T) {
	in := projTestInstance()
	if _, _, err := ProjectDelta(in, []bool{true}); err == nil {
		t.Fatal("mismatched isNew accepted")
	}
}

func TestRepairOrder(t *testing.T) {
	in := projTestInstance()
	// Prior plan mentions a dropped index ("z") and misses "c": z is
	// dropped, survivors keep relative order, c is inserted feasibly.
	names, err := RepairOrder(in, []string{"b", "z", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	posOf := map[string]int{}
	for i, n := range names {
		posOf[n] = i
	}
	if posOf["b"] > posOf["a"] {
		t.Errorf("survivor order not kept: %v", names)
	}
	if posOf["b"] > posOf["c"] {
		t.Errorf("precedence b<c violated: %v", names)
	}

	// A prior order that contradicts the precedences is still repaired
	// (stable topological reorder), not rejected.
	names, err = RepairOrder(in, []string{"c", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		posOf[n] = i
	}
	if posOf["b"] > posOf["c"] {
		t.Errorf("repair left precedence violated: %v", names)
	}
}

func TestRejectsInvalidWorkload(t *testing.T) {
	s := warehouseSchema()
	bad := []Round{{Name: "x", Schema: s, Queries: []*sql.Query{{
		Name: "broken", Tables: []string{"nope"},
	}}}}
	if _, err := Run(bad, Options{}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}
