// Package experiments regenerates every table and figure of the paper's
// evaluation (§8): Table 4 (dataset statistics), Table 5 (exact search),
// Table 6 (pruning drill-down), Table 7 (initial solutions), Figure 11
// (local search on TPC-H), Figure 12 (local search on TPC-DS) and
// Figure 13 (VNS improvement decomposition). Budgets are scaled down
// from the paper's hours to seconds — EXPERIMENTS.md records the
// mapping — and every run is seeded, so reports are repeatable.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/evolving-olap/idd/internal/datasets"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
)

// Config scales the experiment budgets.
type Config struct {
	// ExactBudget bounds each exact-search cell of Tables 5/6
	// (0 = 3s). Cells that cannot prove optimality within it report DF,
	// like the paper's 12-hour timeout.
	ExactBudget time.Duration
	// LocalBudget bounds each anytime curve of Figures 11-13 (0 = 8s for
	// TPC-H, 20s for TPC-DS).
	LocalBudget time.Duration
	// Seed drives all randomized components (0 = 1).
	Seed int64
	// Points is the number of samples on anytime curves (0 = 12).
	Points int
}

func (c Config) withDefaults() Config {
	if c.ExactBudget == 0 {
		c.ExactBudget = 3 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Points == 0 {
		c.Points = 12
	}
	return c
}

func (c Config) localBudget(ds string) time.Duration {
	if c.LocalBudget != 0 {
		return c.LocalBudget
	}
	if ds == "tpcds" {
		return 20 * time.Second
	}
	return 8 * time.Second
}

// objScale makes reported objectives comparable in magnitude to the
// paper's (TPC-H ≈ 44-66 range): objectives are divided by 1e4.
const objScale = 1e4

// greedyStart returns the canonical initial solution for local search.
func greedyStart(c *model.Compiled) []int {
	return greedy.Solve(c, sched.PrecedenceSet(c.Inst))
}

// rngFor derives a deterministic sub-seed.
func rngFor(cfg Config, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed*7919 + salt))
}

// compiled caches the two big instances.
func compiledTPCH() *model.Compiled  { return model.MustCompile(datasets.TPCH()) }
func compiledTPCDS() *model.Compiled { return model.MustCompile(datasets.TPCDS()) }

// CurveSample is one point of an anytime series.
type CurveSample struct {
	Elapsed   time.Duration
	Objective float64 // scaled by objScale; +Inf if no solution yet
}

// sampleTrajectory resamples a trajectory at k geometrically spaced time
// points from budget/512 to budget; anytime searches improve mostly in
// their first moments, so uniform sampling would show flat lines.
func sampleTrajectory(tr local.Trajectory, budget time.Duration, k int) []CurveSample {
	out := make([]CurveSample, 0, k)
	ratio := math.Pow(512, 1/float64(k-1))
	at := float64(budget) / 512
	for i := 0; i < k; i++ {
		d := time.Duration(at)
		if i == k-1 {
			d = budget
		}
		out = append(out, CurveSample{Elapsed: d, Objective: tr.BestAt(d) / objScale})
		at *= ratio
	}
	return out
}

// writeSeries prints aligned anytime series.
func writeSeries(w io.Writer, title string, names []string, series [][]CurveSample) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s", "time[s]")
	for _, n := range names {
		fmt.Fprintf(w, "%12s", n)
	}
	fmt.Fprintln(w)
	if len(series) == 0 || len(series[0]) == 0 {
		return
	}
	for pi := range series[0] {
		fmt.Fprintf(w, "%-10.2f", series[0][pi].Elapsed.Seconds())
		for si := range series {
			fmt.Fprintf(w, "%12.3f", series[si][pi].Objective)
		}
		fmt.Fprintln(w)
	}
}

func rule(w io.Writer, n int) { fmt.Fprintln(w, strings.Repeat("-", n)) }
