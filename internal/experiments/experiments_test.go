package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// fastCfg keeps experiment tests quick; the shapes under test do not
// depend on long budgets.
func fastCfg() Config {
	return Config{
		ExactBudget: 300 * time.Millisecond,
		LocalBudget: 400 * time.Millisecond,
		Seed:        1,
		Points:      5,
	}
}

func TestTable4Output(t *testing.T) {
	var buf bytes.Buffer
	Table4(&buf)
	out := buf.String()
	for _, want := range []string{"tpch", "tpcds", "|I|", "LargestPlan"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable5ShapeHolds(t *testing.T) {
	cells := RunTable5(fastCfg())
	if len(cells) != len(Table5Sizes)*5 {
		t.Fatalf("%d cells, want %d", len(cells), len(Table5Sizes)*5)
	}
	byKey := map[string]ExactCell{}
	for _, c := range cells {
		byKey[c.Method+"/"+itoa(c.Size)] = c
	}
	// Paper shape 1: plain CP solves the tiny instance but DFs on the
	// large low-density one within budget.
	if !byKey["CP/6"].Proved {
		t.Error("CP should prove optimality on 6 indexes")
	}
	if byKey["CP/31"].Proved {
		t.Error("plain CP should not prove 31 indexes within a sub-second budget")
	}
	// Paper shape 2: constraints never hurt — CP+ proves everything CP
	// proves.
	for _, sz := range Table5Sizes {
		k := itoa(sz.N)
		if byKey["CP/"+k].Proved && !byKey["CP+/"+k].Proved {
			t.Errorf("CP proved n=%s but CP+ did not", k)
		}
	}
	// Paper shape 3: VNS always reports a finite solution.
	for _, sz := range Table5Sizes {
		if math.IsInf(byKey["VNS/"+itoa(sz.N)].Objective, 1) {
			t.Errorf("VNS has no solution for n=%d", sz.N)
		}
	}
	// Paper shape 4: where CP+ proves an optimum, VNS matches it.
	for _, sz := range Table5Sizes {
		k := itoa(sz.N)
		cpp, vns := byKey["CP+/"+k], byKey["VNS/"+k]
		if cpp.Proved && vns.Objective > cpp.Objective*1.0001 {
			t.Errorf("n=%s: VNS %.3f worse than proved optimum %.3f", k, vns.Objective, cpp.Objective)
		}
	}

	var buf bytes.Buffer
	FprintExactCells(&buf, "Table 5", cells)
	if !strings.Contains(buf.String(), "DF") {
		t.Error("expected at least one DF cell in the printout")
	}
}

func TestTable6DrilldownMonotone(t *testing.T) {
	cfg := fastCfg()
	cells := RunTable6(cfg)
	if len(cells) != len(Table6Sizes)*len(Table6Steps) {
		t.Fatalf("%d cells", len(cells))
	}
	// Shape: the number of sizes solved (proved) must not decrease as
	// properties accumulate.
	solved := map[string]int{}
	for _, c := range cells {
		if c.Proved {
			solved[c.Method]++
		}
	}
	prev := -1
	for _, step := range Table6Steps {
		if solved[step.Name] < prev-1 { // allow 1 cell of timing jitter
			t.Errorf("property step %s solved %d sizes, fewer than previous %d",
				step.Name, solved[step.Name], prev)
		}
		if solved[step.Name] > prev {
			prev = solved[step.Name]
		}
	}
	// Full analysis must solve at least as many as plain CP.
	if solved["+ACMDT"] < solved["CP"] {
		t.Errorf("+ACMDT solved %d < CP %d", solved["+ACMDT"], solved["CP"])
	}
}

func TestTable7GreedyBeatsDPAndRandom(t *testing.T) {
	rows := RunTable7(fastCfg())
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The paper's Table 7 ordering: Greedy < DP and Greedy <
		// Random(AVG) and Greedy < Random(MIN).
		if r.Greedy >= r.RandomAvg {
			t.Errorf("%s: greedy %.1f not better than random avg %.1f", r.Dataset, r.Greedy, r.RandomAvg)
		}
		if r.Greedy >= r.RandomMin {
			t.Errorf("%s: greedy %.1f not better than random min %.1f", r.Dataset, r.Greedy, r.RandomMin)
		}
		if r.Greedy >= r.DP {
			t.Errorf("%s: greedy %.1f not better than DP %.1f", r.Dataset, r.Greedy, r.DP)
		}
		if r.RandomMin > r.RandomAvg {
			t.Errorf("%s: random min %.1f above avg %.1f", r.Dataset, r.RandomMin, r.RandomAvg)
		}
	}
	var buf bytes.Buffer
	FprintTable7(&buf, rows)
	if !strings.Contains(buf.String(), "Greedy") {
		t.Error("Table 7 printout malformed")
	}
}

func TestFigure11SeriesShape(t *testing.T) {
	cfg := fastCfg()
	series := RunFigure11(cfg)
	if len(series) != 5 {
		t.Fatalf("%d series, want 5 (VNS, LNS, TS-B, TS-F, CP)", len(series))
	}
	final := map[string]float64{}
	for _, s := range series {
		if len(s.Samples) != cfg.Points {
			t.Fatalf("%s: %d samples, want %d", s.Method, len(s.Samples), cfg.Points)
		}
		// Monotone non-increasing curves.
		for i := 1; i < len(s.Samples); i++ {
			if s.Samples[i].Objective > s.Samples[i-1].Objective+1e-9 {
				t.Errorf("%s: objective increased along the curve", s.Method)
			}
		}
		final[s.Method] = s.Samples[len(s.Samples)-1].Objective
	}
	// Headline shape: VNS ends at or below plain CP.
	if final["VNS"] > final["CP"]+1e-9 {
		t.Errorf("VNS (%.3f) ended above CP (%.3f)", final["VNS"], final["CP"])
	}
	var buf bytes.Buffer
	FprintAnytime(&buf, "Figure 11", series)
	if !strings.Contains(buf.String(), "VNS") {
		t.Error("series printout malformed")
	}
}

func TestFigure13Decomposition(t *testing.T) {
	pts := RunFigure13(fastCfg())
	if len(pts) == 0 {
		t.Fatal("no improvement points")
	}
	for _, p := range pts {
		if p.DeployTime <= 0 || p.AvgRuntime <= 0 {
			t.Fatalf("nonpositive decomposition: %+v", p)
		}
	}
	// obj = avg * deploy must be non-increasing across points.
	prev := math.Inf(1)
	for _, p := range pts {
		obj := p.DeployTime * p.AvgRuntime
		if obj > prev*(1+1e-9) {
			t.Errorf("objective rose along Figure 13 series: %v -> %v", prev, obj)
		}
		prev = obj
	}
	var buf bytes.Buffer
	FprintFigure13(&buf, pts)
	if !strings.Contains(buf.String(), "deploy") {
		t.Error("Figure 13 printout malformed")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestFigure11ExtendedIncludesNewMethods(t *testing.T) {
	series := RunFigure11Extended(fastCfg())
	if len(series) != 7 {
		t.Fatalf("%d series, want 7", len(series))
	}
	names := map[string]bool{}
	for _, s := range series {
		names[s.Method] = true
	}
	for _, want := range []string{"SA", "Insert", "VNS"} {
		if !names[want] {
			t.Errorf("missing %s series", want)
		}
	}
}
