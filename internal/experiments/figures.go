package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/cp"
	"github.com/evolving-olap/idd/internal/solver/local"
)

// AnytimeSeries is one method's curve for Figures 11/12.
type AnytimeSeries struct {
	Method  string
	Samples []CurveSample
}

// localMethods enumerates the Figure 11 contenders. Figure 12 omits LNS
// (the paper found it dominated by VNS and too slow to tune at TPC-DS
// scale).
func localMethods(includeLNS bool) []string {
	ms := []string{"VNS"}
	if includeLNS {
		ms = append(ms, "LNS")
	}
	return append(ms, "TS-BSwap", "TS-FSwap", "CP")
}

// RunFigure11Extended reruns the TPC-H anytime comparison with the two
// metaheuristics §7 names but does not evaluate — simulated annealing
// and insertion-neighborhood descent — added to the paper's field.
func RunFigure11Extended(cfg Config) []AnytimeSeries {
	cfg = cfg.withDefaults()
	c := compiledTPCH()
	budget := cfg.localBudget("tpch")
	out := runAnytime(c, cfg, budget, true)
	init := greedyStart(c)
	for mi, m := range []string{"SA", "Insert"} {
		opt := local.Options{
			Initial: init,
			Budget:  budget,
			Rng:     rngFor(cfg, int64(mi)+500),
		}
		var traj local.Trajectory
		if m == "SA" {
			traj = local.Anneal(c, nil, opt).Traj
		} else {
			traj = local.InsertSearch(c, nil, opt).Traj
		}
		out = append(out, AnytimeSeries{Method: m, Samples: sampleTrajectory(traj, budget, cfg.Points)})
	}
	return out
}

// RunFigure11 produces the TPC-H anytime comparison (VNS, LNS, two Tabu
// variants, plain CP), all seeded with the same greedy solution.
func RunFigure11(cfg Config) []AnytimeSeries {
	cfg = cfg.withDefaults()
	return runAnytime(compiledTPCH(), cfg, cfg.localBudget("tpch"), true)
}

// RunFigure12 produces the TPC-DS anytime comparison (VNS, Tabu, CP).
func RunFigure12(cfg Config) []AnytimeSeries {
	cfg = cfg.withDefaults()
	return runAnytime(compiledTPCDS(), cfg, cfg.localBudget("tpcds"), false)
}

func runAnytime(c *model.Compiled, cfg Config, budget time.Duration, includeLNS bool) []AnytimeSeries {
	init := greedyStart(c)
	var out []AnytimeSeries
	for mi, m := range localMethods(includeLNS) {
		opt := local.Options{
			Initial: init,
			Budget:  budget,
			Rng:     rngFor(cfg, int64(mi)+100),
		}
		var traj local.Trajectory
		switch m {
		case "VNS":
			traj = local.VNS(c, nil, opt).Traj
		case "LNS":
			traj = local.LNS(c, nil, opt).Traj
		case "TS-BSwap":
			traj = local.TabuBSwap(c, nil, opt).Traj
		case "TS-FSwap":
			traj = local.TabuFSwap(c, nil, opt).Traj
		case "CP":
			traj = cpAnytime(c, budget, init)
		}
		out = append(out, AnytimeSeries{Method: m, Samples: sampleTrajectory(traj, budget, cfg.Points)})
	}
	return out
}

// cpAnytime runs the plain CP search as an anytime method, recording
// improvements (the "CP" line of Figures 11/12: it gets overwhelmed by
// the neighborhood and barely improves on greedy).
func cpAnytime(c *model.Compiled, budget time.Duration, init []int) local.Trajectory {
	start := time.Now()
	traj := local.Trajectory{{Elapsed: 0, Objective: c.Objective(init)}}
	cp.Solve(c, nil, cp.Options{
		Deadline:  start.Add(budget),
		Incumbent: init,
		OnSolution: func(_ []int, obj float64) {
			traj = append(traj, local.TrajPoint{Elapsed: time.Since(start), Objective: obj})
		},
	})
	return traj
}

// FprintAnytime prints a Figure 11/12 style series block.
func FprintAnytime(w io.Writer, title string, series []AnytimeSeries) {
	names := make([]string, len(series))
	samples := make([][]CurveSample, len(series))
	for i, s := range series {
		names[i] = s.Method
		samples[i] = s.Samples
	}
	writeSeries(w, title, names, samples)
}

// Figure13Point decomposes a VNS improvement: where did the gain come
// from — deployment time (build interactions) or average query runtime
// during deployment?
type Figure13Point struct {
	Elapsed    time.Duration
	DeployTime float64 // total deployment time of the current best order
	AvgRuntime float64 // objective / deployment time (average workload runtime while deploying)
}

// RunFigure13 runs VNS on TPC-DS and decomposes every improvement into
// the paper's two components: the deployment time of the current best
// order (which build interactions shrink) and the average workload
// runtime during deployment (objective / deployment time).
func RunFigure13(cfg Config) []Figure13Point {
	cfg = cfg.withDefaults()
	c := compiledTPCDS()
	init := greedyStart(c)
	budget := cfg.localBudget("tpcds")

	start := time.Now()
	var out []Figure13Point
	local.VNS(c, nil, local.Options{
		Initial: init,
		Budget:  budget,
		Rng:     rngFor(cfg, 1313),
		OnImprove: func(order []int, obj float64) {
			_, deploy, _ := c.Evaluate(order)
			out = append(out, Figure13Point{
				Elapsed:    time.Since(start),
				DeployTime: deploy,
				AvgRuntime: obj / deploy,
			})
		},
	})
	return out
}

// FprintFigure13 prints the decomposition series.
func FprintFigure13(w io.Writer, pts []Figure13Point) {
	fmt.Fprintln(w, "Figure 13: VNS (TPC-DS) — deployment time and average query runtime")
	fmt.Fprintf(w, "%-10s %14s %16s\n", "time[s]", "deploy[units]", "avg-runtime")
	rule(w, 42)
	for _, p := range pts {
		fmt.Fprintf(w, "%-10.3f %14.1f %16.3f\n", p.Elapsed.Seconds(), p.DeployTime, p.AvgRuntime)
	}
}
