package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/datasets"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/solver/cp"
	"github.com/evolving-olap/idd/internal/solver/dp"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
	"github.com/evolving-olap/idd/internal/solver/mip"
)

// Table4 prints the dataset statistics table.
func Table4(w io.Writer) {
	fmt.Fprintln(w, "Table 4: Experimental Datasets")
	fmt.Fprintf(w, "%-8s %5s %5s %6s %13s %14s %14s\n",
		"Dataset", "|Q|", "|I|", "|P|", "LargestPlan", "#Inter(Build)", "#Inter(Query)")
	rule(w, 74)
	for _, ds := range []*model.Instance{datasets.TPCH(), datasets.TPCDS()} {
		s := ds.Stats()
		fmt.Fprintf(w, "%-8s %5d %5d %6d %13d %14d %14d\n",
			ds.Name, s.Queries, s.Indexes, s.Plans, s.LargestPlan, s.BuildInteractions, s.QueryInteractions)
	}
}

// ExactCell is one Table 5/6 measurement.
type ExactCell struct {
	Method  string
	Size    int
	Density datasets.Density
	Elapsed time.Duration
	Proved  bool // false = DF (did not finish within budget)
	// Objective is the best solution found (scaled), for sanity checks.
	Objective float64
}

// Table5Sizes are the instance sizes of the paper's Table 5.
var Table5Sizes = []struct {
	N       int
	Density datasets.Density
}{
	{6, datasets.Low}, {11, datasets.Low}, {13, datasets.Low},
	{22, datasets.Low}, {31, datasets.Low},
	{16, datasets.Mid}, {21, datasets.Mid},
}

// RunTable5 runs the exact-search comparison: MIP and CP with and
// without the §5 analysis constraints, plus VNS (no proof, time to its
// final solution).
func RunTable5(cfg Config) []ExactCell {
	cfg = cfg.withDefaults()
	var cells []ExactCell
	for _, sz := range Table5Sizes {
		in := datasets.ReducedTPCH(sz.N, sz.Density)
		c := model.MustCompile(in)
		analyzed, _ := prune.Analyze(c, prune.Options{})

		cells = append(cells,
			runMIPCell("MIP", c, nil, sz.N, sz.Density, cfg),
			runCPCell("CP", c, nil, sz.N, sz.Density, cfg),
			runMIPCell("MIP+", c, analyzed, sz.N, sz.Density, cfg),
			runCPCell("CP+", c, analyzed, sz.N, sz.Density, cfg),
			runVNSCell(c, sz.N, sz.Density, cfg),
		)
	}
	return cells
}

func runCPCell(name string, c *model.Compiled, cs *constraint.Set, n int, d datasets.Density, cfg Config) ExactCell {
	start := time.Now()
	res := cp.Solve(c, cs, cp.Options{Deadline: start.Add(cfg.ExactBudget)})
	return ExactCell{
		Method: name, Size: n, Density: d,
		Elapsed: time.Since(start), Proved: res.Proved,
		Objective: res.Objective / objScale,
	}
}

func runMIPCell(name string, c *model.Compiled, cs *constraint.Set, n int, d datasets.Density, cfg Config) ExactCell {
	start := time.Now()
	// The time-indexed MIP cannot even be attempted on larger sizes (the
	// dense LP blows up; the paper reports out-of-memory). Guard the
	// size the same way the paper's 12-hour budget effectively did.
	if n > 13 {
		return ExactCell{Method: name, Size: n, Density: d, Elapsed: cfg.ExactBudget, Proved: false, Objective: math.Inf(1)}
	}
	res, err := mip.Solve(c, cs, mip.Options{
		TimestepsPerIndex: 3,
		NodeLimit:         1 << 30,
		Deadline:          start.Add(cfg.ExactBudget),
	})
	cell := ExactCell{Method: name, Size: n, Density: d, Elapsed: time.Since(start)}
	if err == nil {
		cell.Proved = res.Proved
		cell.Objective = res.Objective / objScale
	} else {
		cell.Objective = math.Inf(1)
	}
	return cell
}

func runVNSCell(c *model.Compiled, n int, d datasets.Density, cfg Config) ExactCell {
	start := time.Now()
	res := local.VNS(c, nil, local.Options{
		Initial: greedyStart(c),
		Budget:  cfg.ExactBudget,
		Rng:     rngFor(cfg, int64(n)*31+int64(d)),
	})
	// Report the time of the last improvement (when VNS "found" its
	// solution), like the paper's "<1 min, no proof" entries.
	elapsed := time.Since(start)
	if len(res.Traj) > 0 {
		elapsed = res.Traj[len(res.Traj)-1].Elapsed
	}
	return ExactCell{
		Method: "VNS", Size: n, Density: d,
		Elapsed: elapsed, Proved: false,
		Objective: res.Objective / objScale,
	}
}

// FprintExactCells prints Table 5/6 style grids: one row per method, one
// column per (size, density).
func FprintExactCells(w io.Writer, title string, cells []ExactCell) {
	fmt.Fprintln(w, title)
	type key struct {
		n int
		d datasets.Density
	}
	var cols []key
	seen := map[key]bool{}
	methods := []string{}
	seenM := map[string]bool{}
	for _, c := range cells {
		k := key{c.Size, c.Density}
		if !seen[k] {
			seen[k] = true
			cols = append(cols, k)
		}
		if !seenM[c.Method] {
			seenM[c.Method] = true
			methods = append(methods, c.Method)
		}
	}
	fmt.Fprintf(w, "%-8s", "|I|")
	for _, k := range cols {
		fmt.Fprintf(w, "%10d", k.n)
	}
	fmt.Fprintf(w, "\n%-8s", "density")
	for _, k := range cols {
		fmt.Fprintf(w, "%10s", k.d)
	}
	fmt.Fprintln(w)
	rule(w, 8+10*len(cols))
	for _, m := range methods {
		fmt.Fprintf(w, "%-8s", m)
		for _, k := range cols {
			var cell *ExactCell
			for i := range cells {
				if cells[i].Method == m && cells[i].Size == k.n && cells[i].Density == k.d {
					cell = &cells[i]
					break
				}
			}
			switch {
			case cell == nil:
				fmt.Fprintf(w, "%10s", "-")
			case !cell.Proved && m != "VNS":
				fmt.Fprintf(w, "%10s", "DF")
			case m == "VNS":
				fmt.Fprintf(w, "%9.1fs*", cell.Elapsed.Seconds())
			default:
				fmt.Fprintf(w, "%9.1fs", cell.Elapsed.Seconds())
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "DF: did not finish within budget; *: no optimality proof (local search)")
}

// Table6Sizes are the drill-down sizes (a subset of the paper's for
// bounded runtime; extend via iddbench flags).
var Table6Sizes = []struct {
	N       int
	Density datasets.Density
}{
	{6, datasets.Low}, {9, datasets.Low}, {11, datasets.Low},
	{13, datasets.Low}, {16, datasets.Mid},
}

// Table6Steps is the cumulative property drill-down of Table 6.
var Table6Steps = []struct {
	Name  string
	Props prune.Property
}{
	{"CP", 0},
	{"+A", prune.Alliances},
	{"+AC", prune.Alliances | prune.Colonized},
	{"+ACM", prune.Alliances | prune.Colonized | prune.Dominated},
	{"+ACMD", prune.Alliances | prune.Colonized | prune.Dominated | prune.Disjoint},
	{"+ACMDT", prune.All},
}

// RunTable6 measures the pruning power drill-down: CP runtime as each §5
// property is added.
func RunTable6(cfg Config) []ExactCell {
	cfg = cfg.withDefaults()
	var cells []ExactCell
	for _, sz := range Table6Sizes {
		in := datasets.ReducedTPCH(sz.N, sz.Density)
		c := model.MustCompile(in)
		for _, step := range Table6Steps {
			var cs *constraint.Set
			if step.Props != 0 {
				cs, _ = prune.Analyze(c, prune.Options{Properties: step.Props})
			}
			cell := runCPCell(step.Name, c, cs, sz.N, sz.Density, cfg)
			cells = append(cells, cell)
		}
	}
	return cells
}

// InitialRow is one Table 7 row.
type InitialRow struct {
	Dataset   string
	Greedy    float64
	DP        float64
	RandomAvg float64
	RandomMin float64
}

// RunTable7 compares initial-solution quality: our greedy vs the
// Schnaitter DP baseline vs 100 random permutations (avg and min),
// objectives scaled like the paper's Table 7.
func RunTable7(cfg Config) []InitialRow {
	cfg = cfg.withDefaults()
	var rows []InitialRow
	for _, c := range []*model.Compiled{compiledTPCH(), compiledTPCDS()} {
		rng := rngFor(cfg, int64(len(rows)))
		row := InitialRow{Dataset: c.Inst.Name}
		row.Greedy = c.Objective(greedy.Solve(c, nil)) / objScale
		row.DP = c.Objective(dp.Solve(c)) / objScale
		minR := math.Inf(1)
		var sum float64
		const draws = 100
		for k := 0; k < draws; k++ {
			obj := c.Objective(rng.Perm(c.N))
			sum += obj
			if obj < minR {
				minR = obj
			}
		}
		row.RandomAvg = sum / draws / objScale
		row.RandomMin = minR / objScale
		rows = append(rows, row)
	}
	return rows
}

// FprintTable7 prints the initial-solution comparison.
func FprintTable7(w io.Writer, rows []InitialRow) {
	fmt.Fprintln(w, "Table 7: Greedy, DP, and 100 Random Permutations for Initial Solutions")
	fmt.Fprintf(w, "%-8s %10s %10s %12s %12s\n", "Dataset", "Greedy", "DP", "Random(AVG)", "Random(MIN)")
	rule(w, 56)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10.1f %10.1f %12.1f %12.1f\n", r.Dataset, r.Greedy, r.DP, r.RandomAvg, r.RandomMin)
	}
}
