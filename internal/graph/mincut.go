// Package graph provides the Stoer–Wagner global minimum cut algorithm
// (Stoer & Wagner, JACM 1997), the substrate for the dynamic-programming
// index ordering baseline of Schnaitter et al. that the paper compares
// against in Table 7 (Appendix C, Algorithm 2).
package graph

// MinCut computes a global minimum cut of the undirected weighted graph
// given by the symmetric adjacency matrix w (w[i][j] = edge weight, 0 =
// no edge; the diagonal is ignored). It returns the cut weight and the
// vertex side assignment (true = inside the cut set). The chosen side is
// always a proper, non-empty subset. MinCut panics if the graph has
// fewer than 2 vertices.
//
// Runs in O(V^3), which is ample for index-interaction graphs (V <= a few
// hundred).
func MinCut(w [][]float64) (float64, []bool) {
	n := len(w)
	if n < 2 {
		panic("graph: MinCut needs at least 2 vertices")
	}
	// Work on a copy; vertices are merged in place.
	adj := make([][]float64, n)
	for i := range adj {
		adj[i] = append([]float64(nil), w[i]...)
	}
	// groups[v] = original vertices currently merged into v.
	groups := make([][]int, n)
	for v := range groups {
		groups[v] = []int{v}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}

	bestWeight := -1.0
	var bestGroup []int

	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase) ordering.
		inA := make(map[int]bool, len(active))
		weights := make(map[int]float64, len(active))
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			// Pick the most tightly connected remaining vertex.
			sel, selW := -1, -1.0
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weights[v] > selW {
					sel, selW = v, weights[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					weights[v] += adj[sel][v]
				}
			}
		}
		t := order[len(order)-1]
		s := order[len(order)-2]
		cutOfPhase := weights[t]
		if bestWeight < 0 || cutOfPhase < bestWeight {
			bestWeight = cutOfPhase
			bestGroup = append([]int(nil), groups[t]...)
		}
		// Merge t into s.
		for _, v := range active {
			if v != s && v != t {
				adj[s][v] += adj[t][v]
				adj[v][s] = adj[s][v]
			}
		}
		groups[s] = append(groups[s], groups[t]...)
		for k, v := range active {
			if v == t {
				active = append(active[:k], active[k+1:]...)
				break
			}
		}
	}

	side := make([]bool, n)
	for _, v := range bestGroup {
		side[v] = true
	}
	return bestWeight, side
}
