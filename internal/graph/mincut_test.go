package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sym(n int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return w
}

func addEdge(w [][]float64, a, b int, wt float64) {
	w[a][b] += wt
	w[b][a] += wt
}

func cutWeight(w [][]float64, side []bool) float64 {
	var sum float64
	for i := range w {
		for j := i + 1; j < len(w); j++ {
			if side[i] != side[j] {
				sum += w[i][j]
			}
		}
	}
	return sum
}

func TestTwoVertices(t *testing.T) {
	w := sym(2)
	addEdge(w, 0, 1, 3.5)
	wt, side := MinCut(w)
	if wt != 3.5 {
		t.Errorf("cut weight = %v, want 3.5", wt)
	}
	if side[0] == side[1] {
		t.Error("cut must separate the two vertices")
	}
}

func TestBridgeGraph(t *testing.T) {
	// Two triangles joined by a light bridge: the min cut is the bridge.
	w := sym(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		addEdge(w, e[0], e[1], 10)
	}
	addEdge(w, 2, 3, 1)
	wt, side := MinCut(w)
	if wt != 1 {
		t.Fatalf("cut weight = %v, want 1", wt)
	}
	if side[0] != side[1] || side[1] != side[2] || side[3] != side[4] || side[4] != side[5] {
		t.Errorf("cut split a triangle: %v", side)
	}
	if side[0] == side[3] {
		t.Error("cut did not separate the triangles")
	}
}

func TestDisconnectedGraphHasZeroCut(t *testing.T) {
	w := sym(4)
	addEdge(w, 0, 1, 5)
	addEdge(w, 2, 3, 7)
	wt, side := MinCut(w)
	if wt != 0 {
		t.Fatalf("cut weight = %v, want 0", wt)
	}
	if side[0] != side[1] && side[2] != side[3] {
		t.Error("a zero cut should keep at least one component whole")
	}
}

func TestStarGraph(t *testing.T) {
	// Star with distinct leaf weights: min cut isolates the lightest leaf.
	w := sym(5)
	addEdge(w, 0, 1, 4)
	addEdge(w, 0, 2, 2)
	addEdge(w, 0, 3, 9)
	addEdge(w, 0, 4, 7)
	wt, side := MinCut(w)
	if wt != 2 {
		t.Fatalf("cut weight = %v, want 2", wt)
	}
	count := 0
	for _, s := range side {
		if s {
			count++
		}
	}
	if count != 1 && count != 4 {
		t.Errorf("expected a single leaf cut, got side=%v", side)
	}
}

func TestPanicsOnTinyGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1-vertex graph")
		}
	}()
	MinCut(sym(1))
}

// Property: on random small graphs, Stoer–Wagner matches brute-force
// enumeration over all 2^(n-1) bipartitions.
func TestQuickMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%7
		rng := rand.New(rand.NewSource(seed))
		w := sym(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.6 {
					addEdge(w, i, j, float64(1+rng.Intn(10)))
				}
			}
		}
		got, side := MinCut(w)
		// Proper cut?
		all, none := true, true
		for _, s := range side {
			if s {
				none = false
			} else {
				all = false
			}
		}
		if all || none {
			return false
		}
		if math.Abs(cutWeight(w, side)-got) > 1e-9 {
			return false
		}
		// Brute force: vertex 0 fixed on one side.
		best := math.Inf(1)
		for mask := 1; mask < 1<<(n-1); mask++ {
			s := make([]bool, n)
			for v := 1; v < n; v++ {
				s[v] = mask&(1<<(v-1)) != 0
			}
			if cw := cutWeight(w, s); cw < best {
				best = cw
			}
		}
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
