// Package jointsel implements the paper's stated next step (§9): jointly
// solving index *selection* and deployment *ordering*. The deployment
// area objective alone is minimized by deploying nothing, so the joint
// problem optimizes a *horizon* objective — the total workload cost over
// a planning horizon H:
//
//	cost(S, order) = Σ R_{k-1}·C_k  +  R_final · (H − deploy time)
//
// i.e. the paper's area during deployment plus the steady-state runtime
// for the rest of the horizon. Long horizons favor big designs; short
// ones keep the design lean — which is exactly the DBA-facing trade-off
// §9 says an integrated tool must expose.
//
// The selector starts from an empty schedule and repeatedly inserts the
// candidate (at its best position) that lowers the horizon cost most,
// stops when no candidate helps, and optionally refines the winning
// subset's order with VNS. The paper's "first challenge" — re-solving
// the ordering per candidate set is too expensive — is dodged by
// evaluating marginal insertions against the incumbent schedule in
// O(n · eval) per candidate.
package jointsel

import (
	"math/rand"
	"time"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/local"
)

// Options tunes the joint optimization.
type Options struct {
	// Horizon is the planning horizon H in cost units (0 = 10x the
	// instance's total create cost, long enough that broadly useful
	// indexes pay for themselves).
	Horizon float64
	// MaxIndexes caps the selected design size (0 = unlimited).
	MaxIndexes int
	// Refine enables a VNS pass over the selected subset's order.
	Refine bool
	// RefineBudget bounds the VNS pass (0 = 2s).
	RefineBudget time.Duration
	// RefineSteps bounds VNS by steps instead (for deterministic tests).
	RefineSteps int64
	// Rng is required when Refine is set.
	Rng *rand.Rand
}

// Result is the jointly selected and ordered design.
type Result struct {
	// Selected lists chosen index positions (in the full instance),
	// in deployment order.
	Selected []int
	// Objective is the deployment-area objective of Selected in that
	// order (computed on the projected sub-instance).
	Objective float64
	// HorizonCost is the horizon objective the selection minimized.
	HorizonCost float64
	// Sub is the projected instance over the selected indexes.
	Sub *model.Instance
}

// Solve runs the joint selection + ordering on a full candidate
// instance. The instance's precedences are respected: an index whose
// predecessor is not selected cannot be selected either.
func Solve(full *model.Compiled, opt Options) Result {
	n := full.N
	cs := sched.PrecedenceSet(full.Inst)

	horizon := opt.Horizon
	if horizon == 0 {
		horizon = 10 * full.Inst.TotalCreateCost()
	}
	selected := []int{} // deployment order over full-instance positions
	inSel := make([]bool, n)

	// objectiveOf evaluates the horizon cost of deploying exactly
	// `order` (only selected indexes deploy; the rest never exist).
	objectiveOf := func(order []int) float64 {
		return horizonCost(full, order, horizon)
	}
	cur := objectiveOf(selected)

	for opt.MaxIndexes == 0 || len(selected) < opt.MaxIndexes {
		bestObj := cur
		bestOrder := []int(nil)
		for x := 0; x < n; x++ {
			if inSel[x] || !predsSelected(cs, x, inSel) {
				continue
			}
			// Try inserting x at every feasible position.
			for pos := 0; pos <= len(selected); pos++ {
				cand := make([]int, 0, len(selected)+1)
				cand = append(cand, selected[:pos]...)
				cand = append(cand, x)
				cand = append(cand, selected[pos:]...)
				if !cs.Compatible(padOrder(cand, n, inSel, x)) {
					continue
				}
				if obj := objectiveOf(cand); obj < bestObj-1e-9 {
					bestObj = obj
					bestOrder = cand
				}
			}
		}
		if bestOrder == nil {
			break // no candidate lowers the area objective
		}
		selected = bestOrder
		for i := range inSel {
			inSel[i] = false
		}
		for _, x := range selected {
			inSel[x] = true
		}
		cur = bestObj
	}

	sub, subOrder := Project(full.Inst, selected)
	res := Result{Selected: selected, Sub: sub, HorizonCost: cur}
	subC := model.MustCompile(sub)
	res.Objective = subC.Objective(subOrder)

	if opt.Refine && len(selected) > 2 {
		if opt.Rng == nil {
			panic("jointsel: Refine requires Options.Rng")
		}
		budget := opt.RefineBudget
		if budget == 0 && opt.RefineSteps == 0 {
			budget = 2 * time.Second
		}
		vns := local.VNS(subC, sched.PrecedenceSet(sub), local.Options{
			Initial:  subOrder,
			Budget:   budget,
			MaxSteps: opt.RefineSteps,
			Rng:      opt.Rng,
		})
		if vns.Objective < res.Objective {
			reordered := make([]int, len(selected))
			for k, subPos := range vns.Order {
				reordered[k] = mapBack(selected, subPos)
			}
			// VNS minimizes the area objective; for a fixed set the
			// horizon cost differs by R_final·deploy (build interactions
			// make deploy order-dependent), so re-check before accepting.
			if hc := horizonCost(full, reordered, horizon); hc <= res.HorizonCost {
				res.Objective = vns.Objective
				res.Selected = reordered
				res.HorizonCost = hc
			}
		}
	}
	return res
}

// horizonCost evaluates deploying exactly `order` (positions in the
// full instance) under the horizon objective: non-selected indexes never
// exist, so plans referencing them stay unavailable. The Walker gives
// exactly that semantics when the others are simply never pushed. A
// schedule overrunning the horizon pays its full area (the steady-state
// term clamps at zero), so overlong designs price themselves out.
func horizonCost(full *model.Compiled, order []int, horizon float64) float64 {
	w := model.NewWalker(full)
	for _, i := range order {
		w.Push(i)
	}
	rest := horizon - w.DeployTime()
	if rest < 0 {
		rest = 0
	}
	return w.Objective() + w.Runtime()*rest
}

func predsSelected(cs *constraint.Set, x int, inSel []bool) bool {
	ok := true
	cs.Predecessors(x).ForEach(func(p int) bool {
		if !inSel[p] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// padOrder extends a partial order to a full permutation (appending the
// unselected indexes in id order) so constraint.Compatible applies.
func padOrder(partial []int, n int, inSel []bool, extra int) []int {
	out := append([]int(nil), partial...)
	used := make([]bool, n)
	for _, i := range partial {
		used[i] = true
	}
	for i := 0; i < n; i++ {
		if !used[i] {
			out = append(out, i)
		}
	}
	return out
}

// Project builds the sub-instance over the selected indexes (keeping
// only plans, interactions and precedences fully inside the selection)
// and returns it with the order mapped to sub positions.
func Project(full *model.Instance, selected []int) (*model.Instance, []int) {
	remap := make([]int, full.N())
	for i := range remap {
		remap[i] = -1
	}
	sub := &model.Instance{Name: full.Name + "-joint"}
	sorted := append([]int(nil), selected...)
	// Insertion sort: sub positions follow ascending full positions.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	for _, oldID := range sorted {
		remap[oldID] = len(sub.Indexes)
		sub.Indexes = append(sub.Indexes, full.Indexes[oldID])
	}
	sub.Queries = append([]model.Query(nil), full.Queries...)
	for _, p := range full.Plans {
		ok := true
		mapped := make([]int, len(p.Indexes))
		for k, ix := range p.Indexes {
			if remap[ix] < 0 {
				ok = false
				break
			}
			mapped[k] = remap[ix]
		}
		if ok {
			sub.Plans = append(sub.Plans, model.Plan{Query: p.Query, Indexes: mapped, Speedup: p.Speedup})
		}
	}
	for _, b := range full.BuildInteractions {
		if remap[b.Target] >= 0 && remap[b.Helper] >= 0 {
			sub.BuildInteractions = append(sub.BuildInteractions, model.BuildInteraction{
				Target: remap[b.Target], Helper: remap[b.Helper], Speedup: b.Speedup,
			})
		}
	}
	for _, pr := range full.Precedences {
		if remap[pr.Before] >= 0 && remap[pr.After] >= 0 {
			sub.Precedences = append(sub.Precedences, model.Precedence{
				Before: remap[pr.Before], After: remap[pr.After],
			})
		}
	}
	order := make([]int, len(selected))
	for k, oldID := range selected {
		order[k] = remap[oldID]
	}
	return sub, order
}

func mapBack(selected []int, subPos int) int {
	sorted := append([]int(nil), selected...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return sorted[subPos]
}
