package jointsel

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/datasets"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
)

// mixedInstance has two clearly good indexes and one dead weight.
func mixedInstance() *model.Instance {
	return &model.Instance{
		Name: "mixed",
		Indexes: []model.Index{
			{Name: "good1", CreateCost: 10},
			{Name: "good2", CreateCost: 12},
			{Name: "dead", CreateCost: 50},
		},
		Queries: []model.Query{
			{Name: "qa", Runtime: 100},
			{Name: "qb", Runtime: 80},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 70},
			{Query: 1, Indexes: []int{1}, Speedup: 50},
		},
	}
}

func TestSelectsUsefulDropsDead(t *testing.T) {
	c := model.MustCompile(mixedInstance())
	res := Solve(c, Options{})
	if len(res.Selected) != 2 {
		t.Fatalf("selected %v, want the two useful indexes", res.Selected)
	}
	for _, ix := range res.Selected {
		if ix == 2 {
			t.Fatal("dead-weight index selected")
		}
	}
	if res.HorizonCost <= 0 || res.Objective <= 0 {
		t.Fatalf("degenerate costs: %+v", res)
	}
}

func TestShortHorizonSelectsNothingExpensive(t *testing.T) {
	in := mixedInstance()
	// With a horizon shorter than any build, nothing pays off.
	c := model.MustCompile(in)
	res := Solve(c, Options{Horizon: 1})
	if len(res.Selected) != 0 {
		t.Fatalf("horizon 1 selected %v", res.Selected)
	}
	// Empty selection's horizon cost = base runtime * horizon.
	if want := c.Base * 1; res.HorizonCost != want {
		t.Errorf("horizon cost %v, want %v", res.HorizonCost, want)
	}
}

func TestLongHorizonSelectsMore(t *testing.T) {
	in := mixedInstance()
	// Make the dead index marginally useful so horizon length matters.
	in.Plans = append(in.Plans, model.Plan{Query: 1, Indexes: []int{2}, Speedup: 55})
	c := model.MustCompile(in)
	short := Solve(c, Options{Horizon: 100})
	long := Solve(c, Options{Horizon: 100000})
	if len(long.Selected) < len(short.Selected) {
		t.Errorf("longer horizon selected fewer indexes: %d vs %d",
			len(long.Selected), len(short.Selected))
	}
	if len(long.Selected) != 3 {
		t.Errorf("very long horizon should select everything useful, got %v", long.Selected)
	}
}

func TestMaxIndexesCap(t *testing.T) {
	c := model.MustCompile(mixedInstance())
	res := Solve(c, Options{MaxIndexes: 1})
	if len(res.Selected) != 1 {
		t.Fatalf("cap ignored: %v", res.Selected)
	}
	// The single pick must be the denser index (good1: 70/10).
	if res.Selected[0] != 0 {
		t.Errorf("picked %d, want 0", res.Selected[0])
	}
}

func TestRespectsPrecedences(t *testing.T) {
	in := mixedInstance()
	// good2 requires dead (like a secondary index on an MV needing the
	// clustered index first).
	in.Precedences = []model.Precedence{{Before: 2, After: 1}}
	c := model.MustCompile(in)
	res := Solve(c, Options{})
	pos := map[int]int{}
	for k, ix := range res.Selected {
		pos[ix] = k
	}
	if p1, ok := pos[1]; ok {
		p2, ok2 := pos[2]
		if !ok2 {
			t.Fatal("selected good2 without its prerequisite")
		}
		if p2 > p1 {
			t.Fatal("prerequisite deployed after its dependent")
		}
	}
}

func TestProjectKeepsOnlyInternalStructure(t *testing.T) {
	in := mixedInstance()
	in.BuildInteractions = []model.BuildInteraction{
		{Target: 0, Helper: 1, Speedup: 3},
		{Target: 0, Helper: 2, Speedup: 4},
	}
	sub, order := Project(in, []int{1, 0})
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 || len(order) != 2 {
		t.Fatalf("projection size wrong: %d/%d", sub.N(), len(order))
	}
	if len(sub.BuildInteractions) != 1 {
		t.Fatalf("interactions crossing the selection must drop: %v", sub.BuildInteractions)
	}
	// order maps full positions {1,0} to sub positions: full 1 -> sub 1,
	// full 0 -> sub 0, so order = [1,0].
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("order mapping = %v", order)
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 10
	cfg.PrecedenceProb = 0
	for seed := int64(0); seed < 5; seed++ {
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)
		plain := Solve(c, Options{})
		refined := Solve(c, Options{
			Refine:      true,
			RefineSteps: 5000,
			Rng:         rand.New(rand.NewSource(seed + 100)),
		})
		if refined.HorizonCost > plain.HorizonCost+1e-6 {
			t.Errorf("seed %d: refinement worsened horizon cost %v -> %v",
				seed, plain.HorizonCost, refined.HorizonCost)
		}
	}
}

func TestOnTPCHSelectsSubsetAndOrdersIt(t *testing.T) {
	c := model.MustCompile(datasets.TPCH())
	res := Solve(c, Options{MaxIndexes: 12})
	if len(res.Selected) == 0 || len(res.Selected) > 12 {
		t.Fatalf("selected %d indexes", len(res.Selected))
	}
	if err := res.Sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// The chosen subset must genuinely help: final runtime below base.
	subC := model.MustCompile(res.Sub)
	_, _, final := subC.Evaluate(orderOf(res))
	if final >= c.Base {
		t.Error("joint selection produced no runtime improvement")
	}
}

func orderOf(res Result) []int {
	_, order := Project(res.Sub, identity(len(res.Sub.Indexes)))
	_ = order
	out := make([]int, len(res.Selected))
	// Selected is in deployment order over full positions; Sub indexes
	// are sorted by full position. Recompute the mapping.
	sorted := append([]int(nil), res.Selected...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	posOf := map[int]int{}
	for subPos, full := range sorted {
		posOf[full] = subPos
	}
	for k, full := range res.Selected {
		out[k] = posOf[full]
	}
	return out
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
