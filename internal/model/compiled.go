package model

import (
	"fmt"
	"sort"
)

// Helper is one build interaction seen from the target's side.
type Helper struct {
	Helper  int
	Speedup float64
}

// Compiled is a preprocessed instance optimized for repeated objective
// evaluation. All solvers operate on Compiled.
type Compiled struct {
	Inst *Instance

	N    int     // number of indexes
	Base float64 // R_0: weighted total runtime before deployment

	CreateCost []float64 // per index

	// Plans, decomposed into parallel slices for cache friendliness.
	PlanQuery []int     // plan -> query
	PlanIdx   [][]int   // plan -> sorted index positions
	PlanSpd   []float64 // plan -> weighted speedup

	PlansOfQuery   [][]int // query -> plan ids
	PlansWithIndex [][]int // index -> plan ids containing it

	Helpers  [][]Helper // target index -> build interactions
	HelpsFor [][]int    // helper index -> list of targets it discounts

	// Precedence adjacency (deduplicated).
	Succ [][]int // before -> afters
	Pred [][]int // after -> befores
}

// Compile validates and preprocesses an instance.
func Compile(in *Instance) (*Compiled, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.N()
	c := &Compiled{
		Inst:           in,
		N:              n,
		Base:           in.BaseRuntime(),
		CreateCost:     make([]float64, n),
		PlanQuery:      make([]int, len(in.Plans)),
		PlanIdx:        make([][]int, len(in.Plans)),
		PlanSpd:        make([]float64, len(in.Plans)),
		PlansOfQuery:   make([][]int, len(in.Queries)),
		PlansWithIndex: make([][]int, n),
		Helpers:        make([][]Helper, n),
		HelpsFor:       make([][]int, n),
		Succ:           make([][]int, n),
		Pred:           make([][]int, n),
	}
	for i := range in.Indexes {
		c.CreateCost[i] = in.Indexes[i].CreateCost
	}
	for pi, p := range in.Plans {
		c.PlanQuery[pi] = p.Query
		idx := append([]int(nil), p.Indexes...)
		sort.Ints(idx)
		c.PlanIdx[pi] = idx
		c.PlanSpd[pi] = p.Speedup * in.QueryWeight(p.Query)
		c.PlansOfQuery[p.Query] = append(c.PlansOfQuery[p.Query], pi)
		for _, ix := range idx {
			c.PlansWithIndex[ix] = append(c.PlansWithIndex[ix], pi)
		}
	}
	for _, b := range in.BuildInteractions {
		c.Helpers[b.Target] = append(c.Helpers[b.Target], Helper{Helper: b.Helper, Speedup: b.Speedup})
		c.HelpsFor[b.Helper] = append(c.HelpsFor[b.Helper], b.Target)
	}
	seen := make(map[[2]int]bool, len(in.Precedences))
	for _, pr := range in.Precedences {
		k := [2]int{pr.Before, pr.After}
		if seen[k] {
			continue
		}
		seen[k] = true
		c.Succ[pr.Before] = append(c.Succ[pr.Before], pr.After)
		c.Pred[pr.After] = append(c.Pred[pr.After], pr.Before)
	}
	return c, nil
}

// MustCompile is Compile that panics on error; for tests and fixtures.
func MustCompile(in *Instance) *Compiled {
	c, err := Compile(in)
	if err != nil {
		panic(err)
	}
	return c
}

// BuildCost returns the cost to create index i given the set of already
// deployed indexes (constraint 5: best single helper discount applies).
func (c *Compiled) BuildCost(i int, built []bool) float64 {
	cost := c.CreateCost[i]
	var best float64
	for _, h := range c.Helpers[i] {
		if built[h.Helper] && h.Speedup > best {
			best = h.Speedup
		}
	}
	return cost - best
}

// Objective evaluates sum_k R_{k-1}*C_k for a complete order.
// It does not check precedence feasibility; use Instance.ValidOrder first
// if the order comes from an untrusted source.
func (c *Compiled) Objective(order []int) float64 {
	obj, _, _ := c.Evaluate(order)
	return obj
}

// Evaluate returns the objective, the total deployment time sum_k C_k,
// and the final runtime R_n for a complete order.
func (c *Compiled) Evaluate(order []int) (obj, deploy, finalRuntime float64) {
	w := NewWalker(c)
	for _, ix := range order {
		w.Push(ix)
	}
	return w.Objective(), w.DeployTime(), w.Runtime()
}

// CurvePoint is one step of the improvement curve: after Elapsed cost
// units of deployment work, the weighted workload runtime is Runtime.
type CurvePoint struct {
	Elapsed float64 // cumulative deployment time after this step
	Runtime float64 // R_k
	Index   int     // index deployed at this step
	Cost    float64 // C_k actually paid (after build-interaction discount)
}

// Curve returns the per-step improvement curve for an order. The implicit
// starting point is (0, Base).
func (c *Compiled) Curve(order []int) []CurvePoint {
	w := NewWalker(c)
	pts := make([]CurvePoint, 0, len(order))
	for _, ix := range order {
		before := w.DeployTime()
		w.Push(ix)
		pts = append(pts, CurvePoint{
			Elapsed: w.DeployTime(),
			Runtime: w.Runtime(),
			Index:   ix,
			Cost:    w.DeployTime() - before,
		})
	}
	return pts
}

// Walker evaluates a schedule incrementally: Push deploys one index,
// Pop undoes the most recent Push. It is the shared evaluation core for
// exhaustive search, A*, CP, greedy and local search.
type Walker struct {
	c *Compiled

	built   []bool
	missing []int     // plan -> #indexes still missing
	best    []float64 // query -> current best available speedup

	runtime float64 // R_k
	deploy  float64 // sum of C_1..C_k
	obj     float64 // sum of R_{j-1} C_j for j<=k

	steps []walkStep
}

type walkStep struct {
	index int
	cost  float64
	// Exact pre-push accumulator values, restored verbatim on Pop so that
	// an incremental Push/Pop walk is bit-identical to a fresh replay.
	prevRun    float64
	prevObj    float64
	prevDeploy float64
	// queries whose best speedup changed, with previous values
	changedQ    []int
	changedPrev []float64
}

// NewWalker returns a Walker at the empty schedule.
func NewWalker(c *Compiled) *Walker {
	return &Walker{
		c:       c,
		built:   make([]bool, c.N),
		missing: initMissing(c),
		best:    make([]float64, len(c.Inst.Queries)),
		runtime: c.Base,
	}
}

func initMissing(c *Compiled) []int {
	m := make([]int, len(c.PlanIdx))
	for p := range c.PlanIdx {
		m[p] = len(c.PlanIdx[p])
	}
	return m
}

// Reset returns the walker to the empty schedule without reallocating.
func (w *Walker) Reset() {
	for len(w.steps) > 0 {
		w.Pop()
	}
}

// Len returns the number of deployed indexes.
func (w *Walker) Len() int { return len(w.steps) }

// Runtime returns R_k, the current weighted workload runtime.
func (w *Walker) Runtime() float64 { return w.runtime }

// DeployTime returns the cumulative deployment cost so far.
func (w *Walker) DeployTime() float64 { return w.deploy }

// Objective returns the objective accumulated so far (exact when all
// indexes are deployed; a lower-bound prefix term otherwise).
func (w *Walker) Objective() float64 { return w.obj }

// Built reports whether index i is deployed.
func (w *Walker) Built(i int) bool { return w.built[i] }

// BuildCost returns what deploying i now would cost, without deploying it.
func (w *Walker) BuildCost(i int) float64 {
	return w.c.BuildCost(i, w.built)
}

// SpeedupIfBuilt returns how much the workload runtime would drop if index
// i were deployed now (S(i, built)), without deploying it. A plan becomes
// available iff i is its only missing index; per query only the best newly
// available plan beyond the current best counts.
func (w *Walker) SpeedupIfBuilt(i int) float64 {
	delta := map[int]float64{}
	for _, p := range w.c.PlansWithIndex[i] {
		if w.missing[p] != 1 {
			continue
		}
		q := w.c.PlanQuery[p]
		if d := w.c.PlanSpd[p] - w.best[q]; d > delta[q] {
			delta[q] = d
		}
	}
	var gain float64
	for _, d := range delta {
		gain += d
	}
	return gain
}

// Push deploys index i as the next step of the schedule.
func (w *Walker) Push(i int) {
	if w.built[i] {
		panic(fmt.Sprintf("model: Push of already built index %d", i))
	}
	cost := w.c.BuildCost(i, w.built)
	st := walkStep{index: i, cost: cost, prevRun: w.runtime, prevObj: w.obj, prevDeploy: w.deploy}

	w.obj += w.runtime * cost
	w.deploy += cost
	w.built[i] = true

	for _, p := range w.c.PlansWithIndex[i] {
		w.missing[p]--
		if w.missing[p] == 0 {
			q := w.c.PlanQuery[p]
			if w.c.PlanSpd[p] > w.best[q] {
				st.changedQ = append(st.changedQ, q)
				st.changedPrev = append(st.changedPrev, w.best[q])
				w.runtime -= w.c.PlanSpd[p] - w.best[q]
				w.best[q] = w.c.PlanSpd[p]
			}
		}
	}
	w.steps = append(w.steps, st)
}

// Pop undoes the most recent Push.
func (w *Walker) Pop() {
	if len(w.steps) == 0 {
		panic("model: Pop on empty walker")
	}
	st := w.steps[len(w.steps)-1]
	w.steps = w.steps[:len(w.steps)-1]

	i := st.index
	for _, p := range w.c.PlansWithIndex[i] {
		w.missing[p]++
	}
	// Restore query bests in reverse order of change.
	for k := len(st.changedQ) - 1; k >= 0; k-- {
		w.best[st.changedQ[k]] = st.changedPrev[k]
	}
	w.built[i] = false
	w.runtime = st.prevRun
	w.deploy = st.prevDeploy
	w.obj = st.prevObj
}

// QueryBest returns the best available (weighted) speedup for query q in
// the current state.
func (w *Walker) QueryBest(q int) float64 { return w.best[q] }

// QueryRuntime returns the current weighted runtime of query q.
func (w *Walker) QueryRuntime(q int) float64 {
	return w.c.Inst.Queries[q].Runtime*w.c.Inst.QueryWeight(q) - w.best[q]
}

// PlanMissing returns how many of plan p's indexes are not yet deployed.
func (w *Walker) PlanMissing(p int) int { return w.missing[p] }

// Order returns a copy of the currently deployed sequence.
func (w *Walker) Order() []int {
	out := make([]int, len(w.steps))
	for k := range w.steps {
		out[k] = w.steps[k].index
	}
	return out
}
