package model

import (
	"sort"
	"sync"
)

// Helper is one build interaction seen from the target's side.
type Helper struct {
	Helper  int
	Speedup float64
}

// Compiled is a preprocessed instance optimized for repeated objective
// evaluation. All solvers operate on Compiled.
//
// Every ragged relation (plan indexes, plans per query, plans per index,
// helpers, precedence adjacency) is stored CSR-style: one flat backing
// array per relation with the exported [][]-typed fields holding
// zero-copy row views into it. Consumers keep the familiar
// c.PlanIdx[p] / c.PlansWithIndex[i] indexing while iteration over many
// rows walks one contiguous allocation.
type Compiled struct {
	Inst *Instance

	N    int     // number of indexes
	Base float64 // R_0: weighted total runtime before deployment

	CreateCost []float64 // per index

	// QryRuntime is the precomputed weighted base runtime of each query
	// (Queries[q].Runtime * weight): the per-query share of Base.
	QryRuntime []float64

	// Plans, decomposed into parallel slices for cache friendliness.
	PlanQuery []int     // plan -> query
	PlanIdx   [][]int   // plan -> sorted index positions
	PlanSpd   []float64 // plan -> weighted speedup

	PlansOfQuery   [][]int // query -> plan ids
	PlansWithIndex [][]int // index -> plan ids containing it

	Helpers  [][]Helper // target index -> build interactions
	HelpsFor [][]int    // helper index -> list of targets it discounts

	// Precedence adjacency (deduplicated).
	Succ [][]int // before -> afters
	Pred [][]int // after -> befores

	// planRefs[i] packs, for every plan containing index i, the plan id
	// with its query and weighted speedup into one contiguous record, so
	// the Walker's Push loop reads sequential memory instead of chasing
	// three parallel arrays. planIDs[i] is the same incidence as bare
	// int32 ids for the Pop loop, which only rewinds missing-counts.
	planRefs [][]planRef
	planIDs  [][]int32

	// walkers recycles Walker state across Objective/Evaluate/Curve calls
	// so full replays are allocation-free in steady state.
	walkers sync.Pool
}

// planRef is the Push-hot view of one (index, plan) incidence.
type planRef struct {
	plan  int32
	query int32
	spd   float64
}

// Compile validates and preprocesses an instance.
func Compile(in *Instance) (*Compiled, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.N()
	c := &Compiled{
		Inst:       in,
		N:          n,
		Base:       in.BaseRuntime(),
		CreateCost: make([]float64, n),
		QryRuntime: make([]float64, len(in.Queries)),
		PlanQuery:  make([]int, len(in.Plans)),
		PlanIdx:    make([][]int, len(in.Plans)),
		PlanSpd:    make([]float64, len(in.Plans)),
	}
	c.walkers.New = func() interface{} { return NewWalker(c) }
	for i := range in.Indexes {
		c.CreateCost[i] = in.Indexes[i].CreateCost
	}
	for q := range in.Queries {
		c.QryRuntime[q] = in.Queries[q].Runtime * in.QueryWeight(q)
	}
	plansOfQuery := make([][]int, len(in.Queries))
	plansWithIndex := make([][]int, n)
	for pi, p := range in.Plans {
		c.PlanQuery[pi] = p.Query
		idx := append([]int(nil), p.Indexes...)
		sort.Ints(idx)
		c.PlanIdx[pi] = idx
		c.PlanSpd[pi] = p.Speedup * in.QueryWeight(p.Query)
		plansOfQuery[p.Query] = append(plansOfQuery[p.Query], pi)
		for _, ix := range idx {
			plansWithIndex[ix] = append(plansWithIndex[ix], pi)
		}
	}
	helpers := make([][]Helper, n)
	helpsFor := make([][]int, n)
	for _, b := range in.BuildInteractions {
		helpers[b.Target] = append(helpers[b.Target], Helper{Helper: b.Helper, Speedup: b.Speedup})
		helpsFor[b.Helper] = append(helpsFor[b.Helper], b.Target)
	}
	succ := make([][]int, n)
	pred := make([][]int, n)
	seen := make(map[[2]int]bool, len(in.Precedences))
	for _, pr := range in.Precedences {
		k := [2]int{pr.Before, pr.After}
		if seen[k] {
			continue
		}
		seen[k] = true
		succ[pr.Before] = append(succ[pr.Before], pr.After)
		pred[pr.After] = append(pred[pr.After], pr.Before)
	}
	// Compact every ragged relation into CSR-backed views.
	c.PlanIdx = compact(c.PlanIdx)
	c.PlansOfQuery = compact(plansOfQuery)
	c.PlansWithIndex = compact(plansWithIndex)
	c.HelpsFor = compact(helpsFor)
	c.Succ = compact(succ)
	c.Pred = compact(pred)
	c.Helpers = compact(helpers)
	total := 0
	for _, ps := range c.PlansWithIndex {
		total += len(ps)
	}
	refs := make([]planRef, 0, total)
	ids := make([]int32, 0, total)
	c.planRefs = make([][]planRef, n)
	c.planIDs = make([][]int32, n)
	for i, ps := range c.PlansWithIndex {
		start := len(refs)
		for _, p := range ps {
			refs = append(refs, planRef{plan: int32(p), query: int32(c.PlanQuery[p]), spd: c.PlanSpd[p]})
			ids = append(ids, int32(p))
		}
		c.planRefs[i] = refs[start:len(refs):len(refs)]
		c.planIDs[i] = ids[start:len(ids):len(ids)]
	}
	return c, nil
}

// compact re-lays a ragged [][]T over a single flat backing array. Row
// views are capacity-clamped so an accidental append cannot clobber the
// next row.
func compact[T any](rows [][]T) [][]T {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	flat := make([]T, 0, total)
	out := make([][]T, len(rows))
	for i, r := range rows {
		start := len(flat)
		flat = append(flat, r...)
		out[i] = flat[start:len(flat):len(flat)]
	}
	return out
}

// MustCompile is Compile that panics on error; for tests and fixtures.
func MustCompile(in *Instance) *Compiled {
	c, err := Compile(in)
	if err != nil {
		panic(err)
	}
	return c
}

// BuildCost returns the cost to create index i given the set of already
// deployed indexes (constraint 5: best single helper discount applies).
func (c *Compiled) BuildCost(i int, built []bool) float64 {
	cost := c.CreateCost[i]
	var best float64
	for _, h := range c.Helpers[i] {
		if built[h.Helper] && h.Speedup > best {
			best = h.Speedup
		}
	}
	return cost - best
}

// getWalker returns a pooled walker at the empty schedule. Callers must
// hand it back via putWalker once (and only if) the walk succeeded; a
// walker abandoned mid-panic is simply dropped.
func (c *Compiled) getWalker() *Walker {
	return c.walkers.Get().(*Walker)
}

func (c *Compiled) putWalker(w *Walker) {
	w.Reset()
	c.walkers.Put(w)
}

// Objective evaluates sum_k R_{k-1}*C_k for a complete order.
// It does not check precedence feasibility; use Instance.ValidOrder first
// if the order comes from an untrusted source.
func (c *Compiled) Objective(order []int) float64 {
	obj, _, _ := c.Evaluate(order)
	return obj
}

// Evaluate returns the objective, the total deployment time sum_k C_k,
// and the final runtime R_n for a complete order.
func (c *Compiled) Evaluate(order []int) (obj, deploy, finalRuntime float64) {
	w := c.getWalker()
	for _, ix := range order {
		w.Push(ix)
	}
	obj, deploy, finalRuntime = w.Objective(), w.DeployTime(), w.Runtime()
	c.putWalker(w)
	return obj, deploy, finalRuntime
}

// CurvePoint is one step of the improvement curve: after Elapsed cost
// units of deployment work, the weighted workload runtime is Runtime.
type CurvePoint struct {
	Elapsed float64 // cumulative deployment time after this step
	Runtime float64 // R_k
	Index   int     // index deployed at this step
	Cost    float64 // C_k actually paid (after build-interaction discount)
}

// Curve returns the per-step improvement curve for an order. The implicit
// starting point is (0, Base).
func (c *Compiled) Curve(order []int) []CurvePoint {
	w := c.getWalker()
	pts := make([]CurvePoint, 0, len(order))
	for _, ix := range order {
		w.Push(ix)
		pts = append(pts, CurvePoint{
			Elapsed: w.DeployTime(),
			Runtime: w.Runtime(),
			Index:   ix,
			Cost:    w.steps[len(w.steps)-1].cost,
		})
	}
	c.putWalker(w)
	return pts
}
