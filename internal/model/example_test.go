package model_test

import (
	"fmt"

	"github.com/evolving-olap/idd/internal/model"
)

// Example demonstrates the core objective: the area under the
// runtime-vs-time curve depends on deployment order.
func Example() {
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "small_useful", CreateCost: 10},
			{Name: "big_covering", CreateCost: 40},
		},
		Queries: []model.Query{{Name: "report", Runtime: 100}},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 30},
			{Query: 0, Indexes: []int{1}, Speedup: 80},
		},
	}
	c := model.MustCompile(in)
	fmt.Printf("small first: %.0f\n", c.Objective([]int{0, 1}))
	fmt.Printf("big first:   %.0f\n", c.Objective([]int{1, 0}))
	// Output:
	// small first: 3800
	// big first:   4200
}

// ExampleWalker shows incremental evaluation with backtracking — the
// primitive all exact solvers share.
func ExampleWalker() {
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "a", CreateCost: 5},
			{Name: "b", CreateCost: 5},
		},
		Queries: []model.Query{{Name: "q", Runtime: 50}},
		Plans:   []model.Plan{{Query: 0, Indexes: []int{0, 1}, Speedup: 40}},
	}
	w := model.NewWalker(model.MustCompile(in))
	w.Push(0)
	fmt.Printf("after a: runtime %.0f\n", w.Runtime())
	w.Push(1)
	fmt.Printf("after b: runtime %.0f\n", w.Runtime())
	w.Pop()
	w.Pop()
	fmt.Printf("rewound: runtime %.0f, objective %.0f\n", w.Runtime(), w.Objective())
	// Output:
	// after a: runtime 50
	// after b: runtime 10
	// rewound: runtime 50, objective 0
}
