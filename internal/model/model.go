// Package model defines the index deployment ordering problem of
// "Optimizing Index Deployment Order for Evolving OLAP" (Kimura et al.,
// EDBT 2012): a set of indexes with creation costs, a query workload, the
// query plans enabled by subsets of the indexes, pairwise build
// interactions, and precedence constraints. A solution is a permutation of
// the indexes; its objective is the area under the query-runtime curve
// during deployment, sum_k R_{k-1}*C_k (smaller is better).
package model

import "fmt"

// Index is one auxiliary structure (secondary index, clustered index or
// materialized view) to be deployed. Table and Columns are descriptive
// metadata; the optimizer-independent problem only needs CreateCost.
type Index struct {
	// Name is a human-readable identifier, unique within an instance.
	Name string `json:"name"`
	// Table is the table (or MV) the index belongs to.
	Table string `json:"table,omitempty"`
	// Columns are the key columns, outermost first.
	Columns []string `json:"columns,omitempty"`
	// Include are non-key included columns (covering payload).
	Include []string `json:"include,omitempty"`
	// CreateCost is ctime(i): the cost to build the index when no build
	// interaction applies. Must be positive.
	CreateCost float64 `json:"create_cost"`
}

// Query is one workload query with its pre-deployment runtime.
type Query struct {
	// Name identifies the query (e.g. "q17" or "tpcds.q88").
	Name string `json:"name"`
	// Runtime is qtime(q): runtime with none of the candidate indexes
	// deployed. Must be positive.
	Runtime float64 `json:"runtime"`
	// Weight scales the query's contribution to the total runtime;
	// zero means 1. The paper's §4.4 supports per-query weighting by
	// scaling runtimes; we keep the weight explicit.
	Weight float64 `json:"weight,omitempty"`
}

// Plan is one atomic configuration for a query: the query runs
// Speedup faster than Query.Runtime when every index in Indexes exists.
// The optimizer always picks the best available plan per query
// (the "competing interaction" of §4.2), so plans for the same query
// compete; plans with more than one index are "query interactions".
type Plan struct {
	// Query is the position of the query in Instance.Queries.
	Query int `json:"query"`
	// Indexes are positions in Instance.Indexes; all must be built for
	// the plan to be available. Must be non-empty and duplicate-free.
	Indexes []int `json:"indexes"`
	// Speedup is qspdup(p,q) > 0, capped by the query runtime.
	Speedup float64 `json:"speedup"`
}

// BuildInteraction states that building Target is cheaper by Speedup if
// Helper is already deployed (§4.2 "build interactions"). The model keeps
// the paper's pairwise assumption: when several helpers exist, the best
// single discount applies (constraint 5 of the mathematical model).
type BuildInteraction struct {
	Target  int     `json:"target"`
	Helper  int     `json:"helper"`
	Speedup float64 `json:"speedup"`
}

// Precedence requires Before to be deployed earlier than After
// (§4.2 "precedence": e.g. a clustered index before secondary indexes on
// the same MV, or correlation-exploiting indexes).
type Precedence struct {
	Before int `json:"before"`
	After  int `json:"after"`
}

// Instance is a full problem instance — the content of the paper's
// "matrix file" produced by what-if analysis.
type Instance struct {
	Name              string             `json:"name,omitempty"`
	Indexes           []Index            `json:"indexes"`
	Queries           []Query            `json:"queries"`
	Plans             []Plan             `json:"plans"`
	BuildInteractions []BuildInteraction `json:"build_interactions,omitempty"`
	Precedences       []Precedence       `json:"precedences,omitempty"`
}

// N returns the number of indexes.
func (in *Instance) N() int { return len(in.Indexes) }

// QueryWeight returns the effective weight of query q (zero weight = 1).
func (in *Instance) QueryWeight(q int) float64 {
	w := in.Queries[q].Weight
	if w == 0 {
		return 1
	}
	return w
}

// BaseRuntime returns R_0: the weighted total workload runtime before any
// index is deployed.
func (in *Instance) BaseRuntime() float64 {
	var sum float64
	for q := range in.Queries {
		sum += in.Queries[q].Runtime * in.QueryWeight(q)
	}
	return sum
}

// TotalCreateCost returns the sum of raw creation costs, ignoring build
// interactions (an upper bound on deployment time).
func (in *Instance) TotalCreateCost() float64 {
	var sum float64
	for i := range in.Indexes {
		sum += in.Indexes[i].CreateCost
	}
	return sum
}

// Stats summarizes an instance the way the paper's Table 4 does.
type Stats struct {
	Queries           int // |Q|
	Indexes           int // |I|
	Plans             int // |P|
	LargestPlan       int // max #indexes in one plan
	BuildInteractions int
	QueryInteractions int // plans using >= 2 indexes
}

// Stats computes Table-4-style statistics.
func (in *Instance) Stats() Stats {
	s := Stats{
		Queries:           len(in.Queries),
		Indexes:           len(in.Indexes),
		Plans:             len(in.Plans),
		BuildInteractions: len(in.BuildInteractions),
	}
	for _, p := range in.Plans {
		if len(p.Indexes) > s.LargestPlan {
			s.LargestPlan = len(p.Indexes)
		}
		if len(p.Indexes) >= 2 {
			s.QueryInteractions++
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("|Q|=%d |I|=%d |P|=%d largest-plan=%d build-inter=%d query-inter=%d",
		s.Queries, s.Indexes, s.Plans, s.LargestPlan, s.BuildInteractions, s.QueryInteractions)
}
