package model

import (
	"fmt"
	"math"
	mrand "math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperExample builds the competing-interaction example of §4.2:
// i0 = i1(City) gives a 5s speedup, i1 = i2(City,Salary) gives 20s,
// for a single query with 60s runtime. Creation costs 10 and 30.
func paperExample() *Instance {
	return &Instance{
		Name: "paper-4.2",
		Indexes: []Index{
			{Name: "i1_city", Table: "People", Columns: []string{"City"}, CreateCost: 10},
			{Name: "i2_city_salary", Table: "People", Columns: []string{"City", "Salary"}, CreateCost: 30},
		},
		Queries: []Query{{Name: "avg_salary", Runtime: 60}},
		Plans: []Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 5},
			{Query: 0, Indexes: []int{1}, Speedup: 20},
		},
		BuildInteractions: []BuildInteraction{
			// i1 can be built from an index scan of i2, and i2's sort is
			// cheaper when i1 exists.
			{Target: 0, Helper: 1, Speedup: 8},
			{Target: 1, Helper: 0, Speedup: 6},
		},
	}
}

// joinExample builds the query-interaction example of §4.2: two indexes
// that only help together.
func joinExample() *Instance {
	return &Instance{
		Name: "paper-4.2-join",
		Indexes: []Index{
			{Name: "i1_city", CreateCost: 10},
			{Name: "i2_empid", CreateCost: 12},
		},
		Queries: []Query{{Name: "self_join", Runtime: 100}},
		Plans: []Plan{
			{Query: 0, Indexes: []int{0, 1}, Speedup: 80},
		},
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestCompetingInteractionObjective(t *testing.T) {
	c := MustCompile(paperExample())

	// Order i1 -> i2: C1=10, R0=60; after i1 runtime 55.
	// C2 = 30-6 = 24 (helper i1 built); after i2 runtime 40.
	obj, deploy, final := c.Evaluate([]int{0, 1})
	if want := 60*10 + 55*24.0; !approx(obj, want) {
		t.Errorf("obj(i1->i2) = %v, want %v", obj, want)
	}
	if want := 34.0; !approx(deploy, want) {
		t.Errorf("deploy(i1->i2) = %v, want %v", deploy, want)
	}
	if !approx(final, 40) {
		t.Errorf("final runtime = %v, want 40", final)
	}

	// Order i2 -> i1: C1=30, runtime 40 after; C2 = 10-8 = 2; i1 adds no
	// further speedup (competing interaction: optimizer already has the
	// better plan).
	obj2, deploy2, final2 := c.Evaluate([]int{1, 0})
	if want := 60*30 + 40*2.0; !approx(obj2, want) {
		t.Errorf("obj(i2->i1) = %v, want %v", obj2, want)
	}
	if want := 32.0; !approx(deploy2, want) {
		t.Errorf("deploy(i2->i1) = %v, want %v", deploy2, want)
	}
	if !approx(final2, 40) {
		t.Errorf("final runtime = %v, want 40", final2)
	}
}

func TestQueryInteractionNeedsBothIndexes(t *testing.T) {
	c := MustCompile(joinExample())
	curve := c.Curve([]int{0, 1})
	if !approx(curve[0].Runtime, 100) {
		t.Errorf("after first index alone runtime = %v, want 100 (no speedup)", curve[0].Runtime)
	}
	if !approx(curve[1].Runtime, 20) {
		t.Errorf("after both indexes runtime = %v, want 20", curve[1].Runtime)
	}
}

func TestStats(t *testing.T) {
	in := paperExample()
	in.Plans = append(in.Plans, Plan{Query: 0, Indexes: []int{0, 1}, Speedup: 25})
	s := in.Stats()
	if s.Queries != 1 || s.Indexes != 2 || s.Plans != 3 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.LargestPlan != 2 {
		t.Errorf("largest plan = %d, want 2", s.LargestPlan)
	}
	if s.QueryInteractions != 1 {
		t.Errorf("query interactions = %d, want 1", s.QueryInteractions)
	}
	if s.BuildInteractions != 2 {
		t.Errorf("build interactions = %d, want 2", s.BuildInteractions)
	}
	if got := s.String(); !strings.Contains(got, "|I|=2") {
		t.Errorf("String() = %q", got)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
		want   string
	}{
		{"dup name", func(in *Instance) { in.Indexes[1].Name = in.Indexes[0].Name }, "duplicate name"},
		{"empty name", func(in *Instance) { in.Indexes[0].Name = "" }, "empty name"},
		{"bad cost", func(in *Instance) { in.Indexes[0].CreateCost = 0 }, "must be positive"},
		{"bad runtime", func(in *Instance) { in.Queries[0].Runtime = -1 }, "must be positive"},
		{"neg weight", func(in *Instance) { in.Queries[0].Weight = -2 }, "negative weight"},
		{"plan query oob", func(in *Instance) { in.Plans[0].Query = 5 }, "out of range"},
		{"plan empty", func(in *Instance) { in.Plans[0].Indexes = nil }, "empty index set"},
		{"plan dup index", func(in *Instance) { in.Plans[0].Indexes = []int{0, 0} }, "duplicate index"},
		{"plan index oob", func(in *Instance) { in.Plans[0].Indexes = []int{9} }, "out of range"},
		{"plan speedup", func(in *Instance) { in.Plans[0].Speedup = 0 }, "must be positive"},
		{"plan speedup too big", func(in *Instance) { in.Plans[0].Speedup = 1e9 }, "exceeds query runtime"},
		{"bi target oob", func(in *Instance) { in.BuildInteractions[0].Target = -1 }, "out of range"},
		{"bi helper oob", func(in *Instance) { in.BuildInteractions[0].Helper = 7 }, "out of range"},
		{"bi self", func(in *Instance) { in.BuildInteractions[0].Helper = in.BuildInteractions[0].Target }, "target == helper"},
		{"bi speedup", func(in *Instance) { in.BuildInteractions[0].Speedup = 0 }, "must be positive"},
		{"bi speedup too big", func(in *Instance) { in.BuildInteractions[0].Speedup = 1e9 }, ">= target create cost"},
		{"prec oob", func(in *Instance) { in.Precedences = []Precedence{{Before: 0, After: 9}} }, "out of range"},
		{"prec self", func(in *Instance) { in.Precedences = []Precedence{{Before: 1, After: 1}} }, "self precedence"},
		{"prec cycle", func(in *Instance) {
			in.Precedences = []Precedence{{Before: 0, After: 1}, {Before: 1, After: 0}}
		}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := paperExample()
			tc.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken instance")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsGoodInstance(t *testing.T) {
	if err := paperExample().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := joinExample().Validate(); err != nil {
		t.Fatalf("Validate join: %v", err)
	}
}

func TestValidOrder(t *testing.T) {
	in := paperExample()
	in.Precedences = []Precedence{{Before: 1, After: 0}}
	if err := in.ValidOrder([]int{1, 0}); err != nil {
		t.Errorf("valid order rejected: %v", err)
	}
	if err := in.ValidOrder([]int{0, 1}); err == nil {
		t.Error("precedence-violating order accepted")
	}
	if err := in.ValidOrder([]int{0}); err == nil {
		t.Error("short order accepted")
	}
	if err := in.ValidOrder([]int{0, 0}); err == nil {
		t.Error("repeating order accepted")
	}
	if err := in.ValidOrder([]int{0, 5}); err == nil {
		t.Error("out-of-range order accepted")
	}
}

func TestWalkerPushPopRestoresState(t *testing.T) {
	in := paperExample()
	in.Plans = append(in.Plans, Plan{Query: 0, Indexes: []int{0, 1}, Speedup: 25})
	c := MustCompile(in)
	w := NewWalker(c)

	if w.Runtime() != 60 || w.Objective() != 0 || w.DeployTime() != 0 {
		t.Fatalf("fresh walker state wrong: %v %v %v", w.Runtime(), w.Objective(), w.DeployTime())
	}
	w.Push(0)
	w.Push(1)
	obj := w.Objective()
	w.Pop()
	w.Pop()
	if w.Runtime() != 60 || w.Objective() != 0 || w.DeployTime() != 0 || w.Len() != 0 {
		t.Fatalf("walker not restored: %v %v %v len=%d", w.Runtime(), w.Objective(), w.DeployTime(), w.Len())
	}
	// Replaying must give the same objective.
	w.Push(0)
	w.Push(1)
	if !approx(w.Objective(), obj) {
		t.Errorf("replayed objective %v != %v", w.Objective(), obj)
	}
	if got := w.Order(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Order() = %v", got)
	}
}

func TestWalkerSpeedupIfBuilt(t *testing.T) {
	in := joinExample()
	c := MustCompile(in)
	w := NewWalker(c)
	if got := w.SpeedupIfBuilt(0); got != 0 {
		t.Errorf("speedup of i0 alone = %v, want 0", got)
	}
	w.Push(0)
	if got := w.SpeedupIfBuilt(1); !approx(got, 80) {
		t.Errorf("speedup of i1 after i0 = %v, want 80", got)
	}
}

func TestWalkerBuildCostUsesBestHelper(t *testing.T) {
	c := MustCompile(paperExample())
	w := NewWalker(c)
	if got := w.BuildCost(0); !approx(got, 10) {
		t.Errorf("cost(i0) with nothing built = %v, want 10", got)
	}
	w.Push(1)
	if got := w.BuildCost(0); !approx(got, 2) {
		t.Errorf("cost(i0) with i1 built = %v, want 2", got)
	}
}

func TestWalkerPanics(t *testing.T) {
	c := MustCompile(paperExample())
	w := NewWalker(c)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Pop on empty walker did not panic")
			}
		}()
		w.Pop()
	}()
	w.Push(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Push did not panic")
			}
		}()
		w.Push(0)
	}()
}

func TestQueryWeightScalesObjective(t *testing.T) {
	in := paperExample()
	in.Queries[0].Weight = 2
	c := MustCompile(in)
	if !approx(c.Base, 120) {
		t.Fatalf("weighted base = %v, want 120", c.Base)
	}
	obj, _, _ := c.Evaluate([]int{0, 1})
	// R0=120, C1=10; R1=110, C2=24.
	if want := 120*10 + 110*24.0; !approx(obj, want) {
		t.Errorf("weighted objective = %v, want %v", obj, want)
	}
}

func TestCurveMonotonicity(t *testing.T) {
	in := paperExample()
	c := MustCompile(in)
	curve := c.Curve([]int{1, 0})
	prevR, prevT := c.Base, 0.0
	for _, pt := range curve {
		if pt.Runtime > prevR+1e-9 {
			t.Errorf("runtime increased along curve: %v -> %v", prevR, pt.Runtime)
		}
		if pt.Elapsed < prevT-1e-9 {
			t.Errorf("elapsed went backwards: %v -> %v", prevT, pt.Elapsed)
		}
		prevR, prevT = pt.Runtime, pt.Elapsed
	}
}

func TestResetEquivalentToNewWalker(t *testing.T) {
	c := MustCompile(paperExample())
	w := NewWalker(c)
	w.Push(1)
	w.Push(0)
	w.Reset()
	w.Push(0)
	w.Push(1)
	want := c.Objective([]int{0, 1})
	if !approx(w.Objective(), want) {
		t.Errorf("after Reset objective = %v, want %v", w.Objective(), want)
	}
}

// Property: the incremental walker objective is bit-identical to a fresh
// replay of the same order, on random instances and random prefixes of
// push/pop traffic beforehand.
func TestQuickWalkerMatchesReplay(t *testing.T) {
	f := func(seed int64) bool {
		rng := randNew(seed)
		in := genInstance(rng)
		c := MustCompile(in)
		w := NewWalker(c)
		// Random push/pop churn.
		perm := rng.Perm(c.N)
		for _, i := range perm {
			w.Push(i)
		}
		for k := 0; k < c.N/2; k++ {
			w.Pop()
		}
		w.Reset()
		// Now evaluate a fresh random order both ways.
		order := rng.Perm(c.N)
		for _, i := range order {
			w.Push(i)
		}
		fresh := NewWalker(c)
		for _, i := range order {
			fresh.Push(i)
		}
		return w.Objective() == fresh.Objective() &&
			w.Runtime() == fresh.Runtime() &&
			w.DeployTime() == fresh.DeployTime()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: objective equals the hand-computed sum of R_{k-1}*C_k from
// the improvement curve.
func TestQuickObjectiveMatchesCurve(t *testing.T) {
	f := func(seed int64) bool {
		rng := randNew(seed)
		in := genInstance(rng)
		c := MustCompile(in)
		order := rng.Perm(c.N)
		curve := c.Curve(order)
		prevRuntime := c.Base
		var sum float64
		for _, pt := range curve {
			sum += prevRuntime * pt.Cost
			prevRuntime = pt.Runtime
		}
		obj := c.Objective(order)
		return approx(sum, obj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// genInstance builds a small random instance without importing randgen
// (model must stay dependency-free).
func genInstance(rng *mrand.Rand) *Instance {
	n := 3 + rng.Intn(6)
	q := 2 + rng.Intn(5)
	in := &Instance{Name: "t"}
	for i := 0; i < n; i++ {
		in.Indexes = append(in.Indexes, Index{
			Name:       fmt.Sprintf("i%d", i),
			CreateCost: 5 + 50*rng.Float64(),
		})
	}
	for k := 0; k < q; k++ {
		in.Queries = append(in.Queries, Query{
			Name:    fmt.Sprintf("q%d", k),
			Runtime: 50 + 200*rng.Float64(),
		})
	}
	for p := 0; p < 2*n; p++ {
		qi := rng.Intn(q)
		size := 1 + rng.Intn(3)
		set := rng.Perm(n)[:size]
		in.Plans = append(in.Plans, Plan{
			Query:   qi,
			Indexes: set,
			Speedup: in.Queries[qi].Runtime * (0.1 + 0.8*rng.Float64()),
		})
	}
	for k := 0; k < n/2; k++ {
		t := rng.Intn(n)
		h := rng.Intn(n)
		if t == h {
			continue
		}
		in.BuildInteractions = append(in.BuildInteractions, BuildInteraction{
			Target: t, Helper: h,
			Speedup: in.Indexes[t].CreateCost * (0.1 + 0.5*rng.Float64()),
		})
	}
	if err := in.Validate(); err != nil {
		panic(err)
	}
	return in
}

func randNew(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
