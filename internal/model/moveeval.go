package model

// MoveEval scores swap and insert neighborhood moves against a complete
// order in time proportional to the disturbed suffix, never the whole
// order. It is the evaluation engine behind tabu search, simulated
// annealing and the insertion descent: the seed implementation scored
// every candidate with a full O(n·plans) Objective replay (plus a fresh
// Walker allocation); MoveEval replays only from the first disturbed
// position, reuses the bitwise-cached objective terms of the untouched
// prefix and suffix, and allocates nothing in steady state.
//
// Exactness: scores are bit-identical to a fresh Compiled.Objective
// replay of the mutated order. The prefix before the move window is
// restored via exact Pops (the walker records pre-push accumulators
// verbatim), the window is replayed through the same Push code a fresh
// replay would run, and the suffix terms R_{k-1}*C_k are pure functions
// of the deployed set — unchanged by reordering earlier positions — so
// summing the cached terms continues the very same left-to-right addition
// chain. See TestMoveEvalBitIdenticalToReplay.
//
// Protocol: Swap/Insert score a candidate and leave it pending; Apply
// commits the pending move incrementally, Reject drops it. Scoring a new
// move implicitly rejects the previous pending one.
type MoveEval struct {
	c *Compiled
	w *Walker // synced to order[:w.Len()]

	order []int

	// Per-step caches for the current order:
	// term[k] = R_{k-1}*C_k, cost[k] = C_k, prefObj[k] = objective of the
	// k-step prefix (the left-to-right partial sums of term).
	term    []float64
	cost    []float64
	prefObj []float64

	kind     moveKind
	mvA, mvB int
}

type moveKind uint8

const (
	moveNone moveKind = iota
	moveSwap
	moveInsert
)

// NewMoveEval returns an evaluator positioned at a copy of order, which
// must be a complete permutation of the instance's indexes.
func NewMoveEval(c *Compiled, order []int) *MoveEval {
	if len(order) != c.N {
		panic("model: MoveEval requires a complete order")
	}
	e := &MoveEval{
		c:       c,
		w:       NewWalker(c),
		order:   append([]int(nil), order...),
		term:    make([]float64, c.N),
		cost:    make([]float64, c.N),
		prefObj: make([]float64, c.N+1),
	}
	e.resync(0)
	return e
}

// Objective returns the exact objective of the current order.
func (e *MoveEval) Objective() float64 { return e.prefObj[len(e.order)] }

// Current returns the live current order. It changes on Apply/SetOrder
// and must not be mutated by the caller; use Order for a copy.
func (e *MoveEval) Current() []int { return e.order }

// Order returns a copy of the current order.
func (e *MoveEval) Order() []int { return append([]int(nil), e.order...) }

// StepCost returns C_k, the build cost actually paid at position k of the
// current order (after build-interaction discounts).
func (e *MoveEval) StepCost(k int) float64 { return e.cost[k] }

// Swap returns the exact objective of the current order with positions a
// and b exchanged, leaving the move pending for Apply/Reject. It does not
// check precedence feasibility; callers gate moves with sched.Swaps or
// sched.SwapFeasible first.
func (e *MoveEval) Swap(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	e.kind, e.mvA, e.mvB = moveSwap, a, b
	return e.score(a, b)
}

// Insert returns the exact objective of the current order with the index
// at position from re-inserted so it ends up at position to, leaving the
// move pending for Apply/Reject.
func (e *MoveEval) Insert(from, to int) float64 {
	e.kind, e.mvA, e.mvB = moveInsert, from, to
	if from <= to {
		return e.score(from, to)
	}
	return e.score(to, from)
}

// Apply commits the pending move: the order is mutated in place and the
// per-step caches are rebuilt from the disturbed window on (terms inside
// the window are recomputed; suffix terms are reused bitwise).
func (e *MoveEval) Apply() {
	if e.kind == moveNone {
		panic("model: Apply without a pending move")
	}
	lo := e.mvA
	if e.kind == moveInsert && e.mvB < e.mvA {
		lo = e.mvB
	}
	hi := e.mvB
	if e.kind == moveInsert && e.mvB < e.mvA {
		hi = e.mvA
	}
	switch e.kind {
	case moveSwap:
		e.order[e.mvA], e.order[e.mvB] = e.order[e.mvB], e.order[e.mvA]
	case moveInsert:
		from, to := e.mvA, e.mvB
		it := e.order[from]
		if from < to {
			copy(e.order[from:to], e.order[from+1:to+1])
		} else {
			copy(e.order[to+1:from+1], e.order[to:from])
		}
		e.order[to] = it
	}
	e.kind = moveNone
	e.seek(lo)
	for k := lo; k <= hi; k++ {
		e.w.Push(e.order[k])
		st := &e.w.steps[k]
		e.term[k] = st.term()
		e.cost[k] = st.cost
	}
	// Re-chain the prefix objectives; terms beyond hi are unchanged.
	for k := lo; k < len(e.order); k++ {
		e.prefObj[k+1] = e.prefObj[k] + e.term[k]
	}
}

// Reject drops the pending move. The evaluator state is already back at
// the current order (scoring restores it), so this only clears the
// pending marker.
func (e *MoveEval) Reject() { e.kind = moveNone }

// SetOrder repositions the evaluator onto a different complete order
// (e.g. an adopted portfolio incumbent), reusing the shared prefix with
// the current order.
func (e *MoveEval) SetOrder(order []int) {
	if len(order) != e.c.N {
		panic("model: MoveEval requires a complete order")
	}
	e.kind = moveNone
	common := 0
	for common < len(order) && e.order[common] == order[common] {
		common++
	}
	copy(e.order[common:], order[common:])
	e.resync(common)
}

// at returns the index occupying position k under the pending move.
func (e *MoveEval) at(k int) int {
	switch e.kind {
	case moveSwap:
		if k == e.mvA {
			return e.order[e.mvB]
		}
		if k == e.mvB {
			return e.order[e.mvA]
		}
	case moveInsert:
		from, to := e.mvA, e.mvB
		if from < to {
			if k >= from && k < to {
				return e.order[k+1]
			}
			if k == to {
				return e.order[from]
			}
		} else if to < from {
			if k == to {
				return e.order[from]
			}
			if k > to && k <= from {
				return e.order[k-1]
			}
		}
	}
	return e.order[k]
}

// seek repositions the internal walker to the p-step prefix of the
// current order via exact pops/pushes.
func (e *MoveEval) seek(p int) {
	for e.w.Len() > p {
		e.w.Pop()
	}
	for e.w.Len() < p {
		e.w.Push(e.order[e.w.Len()])
	}
}

// score replays positions [lo,hi) under the pending move and continues
// the objective chain with the cached suffix terms. The final window
// position hi needs no state update — its objective term is just
// R_{hi-1}·C_hi — so it is computed directly instead of pushed and
// popped, with bitwise the operands a full push would have used.
func (e *MoveEval) score(lo, hi int) float64 {
	e.seek(lo)
	for k := lo; k < hi; k++ {
		e.w.Push(e.at(k))
	}
	obj := e.w.obj + e.w.runtime*e.w.BuildCost(e.at(hi))
	for k := lo; k < hi; k++ {
		e.w.Pop()
	}
	for k := hi + 1; k < len(e.order); k++ {
		obj += e.term[k]
	}
	return obj
}

// resync replays the current order from position lo, refreshing the
// per-step caches.
func (e *MoveEval) resync(lo int) {
	e.seek(lo)
	for k := lo; k < len(e.order); k++ {
		e.w.Push(e.order[k])
		st := &e.w.steps[k]
		e.term[k] = st.term()
		e.cost[k] = st.cost
	}
	for k := lo; k < len(e.order); k++ {
		e.prefObj[k+1] = e.prefObj[k] + e.term[k]
	}
}
