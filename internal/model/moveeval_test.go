package model_test

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
)

// driveMoveEval runs one randomized delta-vs-replay session: random
// instance (with build interactions and precedences), random feasible
// start order, then a long sequence of random swap/insert moves that are
// scored through MoveEval and independently through a fresh full
// Objective replay. Every comparison demands bitwise equality — the
// delta evaluator replays the same floating-point operation chain a
// fresh replay would run, so there is no tolerance to hide drift in.
func driveMoveEval(t *testing.T, seed int64, moves int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 4 + rng.Intn(12)
	cfg.Queries = 2 + rng.Intn(10)
	cfg.PrecedenceProb = []float64{0, 0.05, 0.25}[rng.Intn(3)]
	in := randgen.New(rng, cfg)
	c := model.MustCompile(in)
	cs := sched.PrecedenceSet(in)
	n := c.N

	shadow := sched.RandomFeasible(rng, cs)
	e := model.NewMoveEval(c, shadow)
	if got, want := e.Objective(), c.Objective(shadow); got != want {
		t.Fatalf("seed %d: initial objective %v != replay %v", seed, got, want)
	}

	cand := make([]int, n)
	for step := 0; step < moves; step++ {
		copy(cand, shadow)
		var score float64
		a, b := rng.Intn(n), rng.Intn(n)
		if rng.Intn(2) == 0 {
			// Swaps are scored regardless of feasibility — local search
			// gates moves before scoring, but the score itself must match
			// a replay of the mutated order either way.
			score = e.Swap(a, b)
			sched.ApplySwap(cand, a, b)
		} else {
			score = e.Insert(a, b)
			sched.ApplyInsert(cand, a, b)
		}
		if want := c.Objective(cand); score != want {
			t.Fatalf("seed %d step %d: move (%d,%d) score %v != replay %v (diff %g)",
				seed, step, a, b, score, want, score-want)
		}
		switch rng.Intn(4) {
		case 0: // reject
			e.Reject()
		case 1: // adopt a completely different order (incumbent adoption)
			ext := sched.RandomFeasible(rng, cs)
			e.SetOrder(ext)
			copy(shadow, ext)
		default: // apply
			e.Apply()
			copy(shadow, cand)
		}
		if got, want := e.Objective(), c.Objective(shadow); got != want {
			t.Fatalf("seed %d step %d: post-commit objective %v != replay %v", seed, step, got, want)
		}
		for k, ix := range e.Current() {
			if shadow[k] != ix {
				t.Fatalf("seed %d step %d: order diverged at %d: %v vs %v", seed, step, k, e.Current(), shadow)
			}
		}
	}
	// Post-session state check: the cached per-step costs must be exactly
	// the costs a fresh curve replay reports.
	for k, pt := range c.Curve(shadow) {
		if e.StepCost(k) != pt.Cost {
			t.Fatalf("seed %d: cached cost[%d]=%v != replay %v", seed, k, e.StepCost(k), pt.Cost)
		}
	}
}

func TestMoveEvalBitIdenticalToReplay(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		driveMoveEval(t, seed, 200)
	}
}

// FuzzMoveEvalEquivalence drives the same property from fuzzer-chosen
// seeds (run with go test -fuzz=FuzzMoveEvalEquivalence ./internal/model).
func FuzzMoveEvalEquivalence(f *testing.F) {
	for _, s := range []int64{1, 7, 42, 1<<40 + 3} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		driveMoveEval(t, seed, 60)
	})
}

func BenchmarkMoveEvalSwapSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randgen.New(rng, randgen.DefaultConfig())
	c := model.MustCompile(in)
	e := model.NewMoveEval(c, sched.Identity(c.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Swap(i%c.N, (i*5+2)%c.N)
		e.Reject()
	}
}
