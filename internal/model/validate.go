package model

import (
	"fmt"
	"sort"
)

// Validate checks structural integrity of the instance: references in
// range, positive costs and runtimes, plan speedups within query runtime,
// duplicate-free plan index sets, build discounts smaller than creation
// costs, and an acyclic precedence relation. It returns the first problem
// found.
func (in *Instance) Validate() error {
	n := len(in.Indexes)
	names := make(map[string]bool, n)
	for i, ix := range in.Indexes {
		if ix.Name == "" {
			return fmt.Errorf("index %d: empty name", i)
		}
		if names[ix.Name] {
			return fmt.Errorf("index %d: duplicate name %q", i, ix.Name)
		}
		names[ix.Name] = true
		if ix.CreateCost <= 0 {
			return fmt.Errorf("index %d (%s): create cost %v must be positive", i, ix.Name, ix.CreateCost)
		}
	}
	for q, qu := range in.Queries {
		if qu.Runtime <= 0 {
			return fmt.Errorf("query %d (%s): runtime %v must be positive", q, qu.Name, qu.Runtime)
		}
		if qu.Weight < 0 {
			return fmt.Errorf("query %d (%s): negative weight %v", q, qu.Name, qu.Weight)
		}
	}
	for pi, p := range in.Plans {
		if p.Query < 0 || p.Query >= len(in.Queries) {
			return fmt.Errorf("plan %d: query %d out of range", pi, p.Query)
		}
		if len(p.Indexes) == 0 {
			return fmt.Errorf("plan %d: empty index set (the no-index plan is implicit)", pi)
		}
		seen := make(map[int]bool, len(p.Indexes))
		for _, ix := range p.Indexes {
			if ix < 0 || ix >= n {
				return fmt.Errorf("plan %d: index %d out of range", pi, ix)
			}
			if seen[ix] {
				return fmt.Errorf("plan %d: duplicate index %d", pi, ix)
			}
			seen[ix] = true
		}
		if p.Speedup <= 0 {
			return fmt.Errorf("plan %d: speedup %v must be positive", pi, p.Speedup)
		}
		if p.Speedup > in.Queries[p.Query].Runtime+1e-9 {
			return fmt.Errorf("plan %d: speedup %v exceeds query runtime %v",
				pi, p.Speedup, in.Queries[p.Query].Runtime)
		}
	}
	for bi, b := range in.BuildInteractions {
		if b.Target < 0 || b.Target >= n {
			return fmt.Errorf("build interaction %d: target %d out of range", bi, b.Target)
		}
		if b.Helper < 0 || b.Helper >= n {
			return fmt.Errorf("build interaction %d: helper %d out of range", bi, b.Helper)
		}
		if b.Target == b.Helper {
			return fmt.Errorf("build interaction %d: target == helper (%d)", bi, b.Target)
		}
		if b.Speedup <= 0 {
			return fmt.Errorf("build interaction %d: speedup %v must be positive", bi, b.Speedup)
		}
		if b.Speedup >= in.Indexes[b.Target].CreateCost {
			return fmt.Errorf("build interaction %d: speedup %v >= target create cost %v",
				bi, b.Speedup, in.Indexes[b.Target].CreateCost)
		}
	}
	for pi, pr := range in.Precedences {
		if pr.Before < 0 || pr.Before >= n || pr.After < 0 || pr.After >= n {
			return fmt.Errorf("precedence %d: reference out of range", pi)
		}
		if pr.Before == pr.After {
			return fmt.Errorf("precedence %d: self precedence on %d", pi, pr.Before)
		}
	}
	if cyc := precedenceCycle(n, in.Precedences); cyc != nil {
		return fmt.Errorf("precedence cycle: %v", cyc)
	}
	return nil
}

// precedenceCycle returns a cycle as a list of index positions, or nil.
func precedenceCycle(n int, precs []Precedence) []int {
	adj := make([][]int, n)
	for _, p := range precs {
		adj[p.Before] = append(adj[p.Before], p.After)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			if color[v] == gray {
				// Reconstruct u -> ... -> v cycle.
				cycle = []int{v}
				for w := u; w != v && w != -1; w = parent[w] {
					cycle = append(cycle, w)
				}
				sort.Ints(cycle)
				return true
			}
			if color[v] == white {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := 0; i < n; i++ {
		if color[i] == white && dfs(i) {
			return cycle
		}
	}
	return nil
}

// ValidOrder reports whether order is a permutation of 0..N-1 that
// satisfies every precedence constraint.
func (in *Instance) ValidOrder(order []int) error {
	n := len(in.Indexes)
	if len(order) != n {
		return fmt.Errorf("order has %d entries, want %d", len(order), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for k, ix := range order {
		if ix < 0 || ix >= n {
			return fmt.Errorf("order[%d]=%d out of range", k, ix)
		}
		if pos[ix] != -1 {
			return fmt.Errorf("order repeats index %d", ix)
		}
		pos[ix] = k
	}
	for _, pr := range in.Precedences {
		if pos[pr.Before] > pos[pr.After] {
			return fmt.Errorf("precedence violated: index %d (pos %d) must precede %d (pos %d)",
				pr.Before, pos[pr.Before], pr.After, pos[pr.After])
		}
	}
	return nil
}
