package model

import (
	"fmt"

	"github.com/evolving-olap/idd/internal/bitset"
)

// Walker evaluates a schedule incrementally: Push deploys one index,
// Pop undoes the most recent Push. It is the shared evaluation core for
// exhaustive search, A*, CP, greedy, local search and the MoveEval delta
// evaluator.
//
// All per-step bookkeeping lives in reusable buffers owned by the walker,
// so Push/Pop/SpeedupIfBuilt are allocation-free in steady state. Every
// derived quantity (build cost, per-query best speedup, runtime) is a
// pure function of the *set* of deployed indexes — never of the order the
// set was reached in — which makes an incremental walk bit-identical to a
// fresh replay and lets MoveEval reuse cached per-step terms across
// moves.
type Walker struct {
	c *Compiled

	built    []bool
	builtSet bitset.Set // same content as built, for O(n/64) subset tests
	missing  []int32    // plan -> #indexes still missing
	best     []float64  // query -> current best available speedup

	runtime float64 // R_k
	deploy  float64 // sum of C_1..C_k
	obj     float64 // sum of R_{j-1} C_j for j<=k

	steps []walkStep
	// Shared change stack: queries whose best speedup changed across all
	// steps, with previous values. Each step records only its start offset
	// (walkStep.chgStart), so Push never allocates per-step slices.
	chgQ    []int
	chgPrev []float64

	// SpeedupIfBuilt scratch: a dense epoch-stamped touched-query set in
	// place of a per-call map.
	gainQ   []float64
	stampQ  []uint32
	touched []int
	epoch   uint32
}

type walkStep struct {
	index int32
	// Offset into the walker's shared change stack where this step's
	// query-best changes begin.
	chgStart int32
	cost     float64
	// Exact pre-push accumulator values, restored verbatim on Pop so that
	// an incremental Push/Pop walk is bit-identical to a fresh replay.
	prevRun    float64
	prevObj    float64
	prevDeploy float64
}

// term returns the objective contribution R_{k-1}*C_k of this step. The
// product is recomputed from the recorded operands, so it is bitwise the
// value Push accumulated.
func (st *walkStep) term() float64 { return st.prevRun * st.cost }

// NewWalker returns a Walker at the empty schedule.
func NewWalker(c *Compiled) *Walker {
	return &Walker{
		c:        c,
		built:    make([]bool, c.N),
		builtSet: bitset.New(c.N),
		missing:  initMissing(c),
		best:     make([]float64, len(c.Inst.Queries)),
		runtime:  c.Base,
		steps:    make([]walkStep, 0, c.N),
		gainQ:    make([]float64, len(c.Inst.Queries)),
		stampQ:   make([]uint32, len(c.Inst.Queries)),
	}
}

func initMissing(c *Compiled) []int32 {
	m := make([]int32, len(c.PlanIdx))
	for p := range c.PlanIdx {
		m[p] = int32(len(c.PlanIdx[p]))
	}
	return m
}

// Reset returns the walker to the empty schedule without reallocating.
func (w *Walker) Reset() {
	if len(w.steps) == 0 {
		return
	}
	for i := range w.built {
		w.built[i] = false
	}
	w.builtSet.Clear()
	for p := range w.missing {
		w.missing[p] = int32(len(w.c.PlanIdx[p]))
	}
	for q := range w.best {
		w.best[q] = 0
	}
	w.runtime = w.c.Base
	w.deploy = 0
	w.obj = 0
	w.steps = w.steps[:0]
	w.chgQ = w.chgQ[:0]
	w.chgPrev = w.chgPrev[:0]
}

// Sync repositions the walker onto the given prefix: it pops only the
// diverging tail of the current walk and pushes the missing suffix, so
// moving between neighboring search nodes costs the symmetric difference
// of the two prefixes instead of a full replay.
func (w *Walker) Sync(prefix []int) {
	common := 0
	for common < len(w.steps) && common < len(prefix) && int(w.steps[common].index) == prefix[common] {
		common++
	}
	for len(w.steps) > common {
		w.Pop()
	}
	for _, i := range prefix[common:] {
		w.Push(i)
	}
}

// Len returns the number of deployed indexes.
func (w *Walker) Len() int { return len(w.steps) }

// Runtime returns R_k, the current weighted workload runtime.
func (w *Walker) Runtime() float64 { return w.runtime }

// DeployTime returns the cumulative deployment cost so far.
func (w *Walker) DeployTime() float64 { return w.deploy }

// Objective returns the objective accumulated so far (exact when all
// indexes are deployed; a lower-bound prefix term otherwise).
func (w *Walker) Objective() float64 { return w.obj }

// Built reports whether index i is deployed.
func (w *Walker) Built(i int) bool { return w.built[i] }

// BuiltSet returns the set of deployed indexes as a bitset. The set is
// live — it changes with every Push/Pop — and must not be mutated.
func (w *Walker) BuiltSet() bitset.Set { return w.builtSet }

// BuildCost returns what deploying i now would cost, without deploying it.
func (w *Walker) BuildCost(i int) float64 {
	return w.c.BuildCost(i, w.built)
}

// SpeedupIfBuilt returns how much the workload runtime would drop if index
// i were deployed now (S(i, built)), without deploying it. A plan becomes
// available iff i is its only missing index; per query only the best newly
// available plan beyond the current best counts.
func (w *Walker) SpeedupIfBuilt(i int) float64 {
	w.epoch++
	if w.epoch == 0 { // uint32 wrap: invalidate all stamps once
		for q := range w.stampQ {
			w.stampQ[q] = 0
		}
		w.epoch = 1
	}
	w.touched = w.touched[:0]
	for _, r := range w.c.planRefs[i] {
		if w.missing[r.plan] != 1 {
			continue
		}
		q := int(r.query)
		d := r.spd - w.best[q]
		if d <= 0 {
			continue
		}
		if w.stampQ[q] != w.epoch {
			w.stampQ[q] = w.epoch
			w.gainQ[q] = d
			w.touched = append(w.touched, q)
		} else if d > w.gainQ[q] {
			w.gainQ[q] = d
		}
	}
	var gain float64
	for _, q := range w.touched {
		gain += w.gainQ[q]
	}
	return gain
}

// Push deploys index i as the next step of the schedule.
func (w *Walker) Push(i int) {
	if w.built[i] {
		panic(fmt.Sprintf("model: Push of already built index %d", i))
	}
	cost := w.c.BuildCost(i, w.built)
	w.steps = append(w.steps, walkStep{
		index: int32(i), cost: cost,
		prevRun: w.runtime, prevObj: w.obj, prevDeploy: w.deploy,
		chgStart: int32(len(w.chgQ)),
	})

	w.obj += w.runtime * cost
	w.deploy += cost
	w.built[i] = true
	w.builtSet.Add(i)

	changed := false
	for _, r := range w.c.planRefs[i] {
		m := w.missing[r.plan] - 1
		w.missing[r.plan] = m
		if m == 0 && r.spd > w.best[r.query] {
			w.chgQ = append(w.chgQ, int(r.query))
			w.chgPrev = append(w.chgPrev, w.best[r.query])
			w.best[r.query] = r.spd
			changed = true
		}
	}
	if changed {
		// Canonical runtime: recompute R = Base - sum_q best[q] with a
		// fixed summation order so the value depends only on the deployed
		// set, not on the walk that reached it. This is what makes delta
		// evaluation (MoveEval) bit-identical to a fresh replay.
		var sum float64
		for _, b := range w.best {
			sum += b
		}
		w.runtime = w.c.Base - sum
	}
}

// Pop undoes the most recent Push.
func (w *Walker) Pop() {
	if len(w.steps) == 0 {
		panic("model: Pop on empty walker")
	}
	st := w.steps[len(w.steps)-1]
	w.steps = w.steps[:len(w.steps)-1]

	i := int(st.index)
	for _, p := range w.c.planIDs[i] {
		w.missing[p]++
	}
	// Restore query bests in reverse order of change.
	for k := len(w.chgQ) - 1; k >= int(st.chgStart); k-- {
		w.best[w.chgQ[k]] = w.chgPrev[k]
	}
	w.chgQ = w.chgQ[:st.chgStart]
	w.chgPrev = w.chgPrev[:st.chgStart]
	w.built[i] = false
	w.builtSet.Remove(i)
	w.runtime = st.prevRun
	w.deploy = st.prevDeploy
	w.obj = st.prevObj
}

// QueryBest returns the best available (weighted) speedup for query q in
// the current state.
func (w *Walker) QueryBest(q int) float64 { return w.best[q] }

// QueryRuntime returns the current weighted runtime of query q.
func (w *Walker) QueryRuntime(q int) float64 {
	return w.c.QryRuntime[q] - w.best[q]
}

// PlanMissing returns how many of plan p's indexes are not yet deployed.
func (w *Walker) PlanMissing(p int) int { return int(w.missing[p]) }

// Order returns a copy of the currently deployed sequence.
func (w *Walker) Order() []int {
	out := make([]int, len(w.steps))
	for k := range w.steps {
		out[k] = int(w.steps[k].index)
	}
	return out
}
