package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer. Add/Inc are single
// atomic adds: safe from any goroutine, allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay meaningful).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

type counterMetric struct {
	desc
	c *Counter
}

func (m *counterMetric) typ() string { return "counter" }
func (m *counterMetric) samples(fn func(string, []Label, float64)) {
	fn("", nil, float64(m.c.Value()))
}
func (m *counterMetric) jsonValue() any { return m.c.Value() }

// Gauge is a settable instantaneous float64 stored in atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments by delta with a CAS loop (rarely contended; gauges are
// set from bookkeeping paths, not per-node hot loops).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type gaugeMetric struct {
	desc
	g *Gauge
}

func (m *gaugeMetric) typ() string { return "gauge" }
func (m *gaugeMetric) samples(fn func(string, []Label, float64)) {
	fn("", nil, m.g.Value())
}
func (m *gaugeMetric) jsonValue() any { return m.g.Value() }

type gaugeFuncMetric struct {
	desc
	fn func() float64
}

func (m *gaugeFuncMetric) typ() string { return "gauge" }
func (m *gaugeFuncMetric) samples(fn func(string, []Label, float64)) {
	fn("", nil, m.fn())
}
func (m *gaugeFuncMetric) jsonValue() any { return m.fn() }

// CounterVec is a counter family keyed by one label value (created on
// first use, never removed). With takes a mutex only on the first
// sighting of a label value; the returned child is a plain Counter the
// caller may cache.
type CounterVec struct {
	label    string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// Snapshot copies the family as {label value: count}.
func (v *CounterVec) Snapshot() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.children))
	for k, c := range v.children {
		out[k] = c.Value()
	}
	return out
}

type counterVecMetric struct {
	desc
	v *CounterVec
}

func (m *counterVecMetric) typ() string { return "counter" }
func (m *counterVecMetric) samples(fn func(string, []Label, float64)) {
	snap := m.v.Snapshot()
	for _, k := range sortedKeys(snap) {
		fn("", []Label{{m.v.label, k}}, float64(snap[k]))
	}
}
func (m *counterVecMetric) jsonValue() any { return m.v.Snapshot() }
