package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type for the Prometheus text exposition
// format rendered by RenderText.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the exposition format (backslash
// and newline only; HELP text is not quoted).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the exposition format
// (label values are double-quoted, so quotes too).
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// RenderText writes the registry in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE header per metric family
// followed by its samples, in registration order so output is stable
// across renders.
func (r *Registry) RenderText(w io.Writer) error {
	var err error
	write := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.each(func(m metric) {
		// Buffer the samples first: a vec family with no children yet
		// would otherwise render a header-only family, which the strict
		// exposition lint (and this package's own contract) rejects.
		var lines []string
		m.samples(func(suffix string, labels []Label, v float64) {
			if len(labels) == 0 {
				lines = append(lines, fmt.Sprintf("%s%s %s\n", m.name(), suffix, formatFloat(v)))
				return
			}
			var sb strings.Builder
			for i, l := range labels {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%s=\"%s\"", l.Name, escapeLabelValue(l.Value))
			}
			lines = append(lines, fmt.Sprintf("%s%s{%s} %s\n", m.name(), suffix, sb.String(), formatFloat(v)))
		})
		if len(lines) == 0 {
			return
		}
		if m.help() != "" {
			write("# HELP %s %s\n", m.name(), escapeHelp(m.help()))
		}
		write("# TYPE %s %s\n", m.name(), m.typ())
		for _, line := range lines {
			write("%s", line)
		}
	})
	return err
}
