package obs

import (
	"strings"
	"testing"
)

// TestExpositionFormatLint is the promtool-free exposition lint: it
// renders a registry exercising every instrument type and runs the
// rendered text through a strict parser of the Prometheus text format
// (version 0.0.4). CI runs this test as a named step, so any change to
// RenderText that would break a real scraper fails here first.
func TestExpositionFormatLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("idd_lint_jobs_total", "Jobs accepted.").Add(3)
	r.Gauge("idd_lint_queue_depth", "Jobs waiting.").Set(2)
	r.GaugeFunc("idd_lint_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	v := r.CounterVec("idd_lint_wins_total", "Wins by backend.", "backend")
	v.With("cp").Add(2)
	v.With(`we"ird\back`).Inc() // label value needing escaping
	h := r.Histogram("idd_lint_wait_seconds", "Queue wait.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	hv := r.HistogramVec("idd_lint_tenant_wait_seconds", "Queue wait by tenant.", "tenant", []float64{0.1, 1})
	hv.With("acme").Observe(0.05)
	hv.With("acme").Observe(5)
	hv.With("globex").Observe(0.5)

	var sb strings.Builder
	if err := r.RenderText(&sb); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(sb.String()); err != nil {
		t.Fatal(err)
	}

	// Spot-check the histogram series: buckets cumulative, _count equals
	// the +Inf bucket, escaping round-trips.
	text := sb.String()
	for _, want := range []string{
		`idd_lint_wait_seconds_bucket{le="0.1"} 1`,
		`idd_lint_wait_seconds_bucket{le="1"} 2`,
		`idd_lint_wait_seconds_bucket{le="10"} 2`,
		`idd_lint_wait_seconds_bucket{le="+Inf"} 3`,
		`idd_lint_wait_seconds_count 3`,
		`idd_lint_wins_total{backend="we\"ird\\back"} 1`,
		"# TYPE idd_lint_wait_seconds histogram",
		"# HELP idd_lint_jobs_total Jobs accepted.",
		// Vec histograms: per-child bucket series carry both the family
		// label and the le bound; each child restarts its own cumulative
		// sequence (which the lint must key per series, not per family).
		`idd_lint_tenant_wait_seconds_bucket{tenant="acme",le="0.1"} 1`,
		`idd_lint_tenant_wait_seconds_bucket{tenant="acme",le="+Inf"} 2`,
		`idd_lint_tenant_wait_seconds_bucket{tenant="globex",le="0.1"} 0`,
		`idd_lint_tenant_wait_seconds_bucket{tenant="globex",le="+Inf"} 1`,
		`idd_lint_tenant_wait_seconds_count{tenant="acme"} 2`,
		`idd_lint_tenant_wait_seconds_count{tenant="globex"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("rendered text missing %q\n---\n%s", want, text)
		}
	}
}

// TestLintCatchesMalformations makes sure the lint itself has teeth:
// each hand-broken exposition must produce an error.
func TestLintCatchesMalformations(t *testing.T) {
	for name, text := range map[string]string{
		"sample without TYPE": "idd_x_total 1\n",
		"unknown type":        "# TYPE idd_x_total frobnicator\nidd_x_total 1\n",
		"no HELP":             "# TYPE idd_x_total counter\nidd_x_total 1\n",
		"non-cumulative buckets": "# HELP idd_h H.\n# TYPE idd_h histogram\n" +
			"idd_h_bucket{le=\"1\"} 5\nidd_h_bucket{le=\"+Inf\"} 3\nidd_h_sum 1\nidd_h_count 3\n",
		"count disagrees with +Inf": "# HELP idd_h H.\n# TYPE idd_h histogram\n" +
			"idd_h_bucket{le=\"+Inf\"} 3\nidd_h_sum 1\nidd_h_count 4\n",
		"bad label escape": "# HELP idd_x_total X.\n# TYPE idd_x_total counter\n" +
			"idd_x_total{backend=\"a\\q\"} 1\n",
		"declared but empty": "# HELP idd_x_total X.\n# TYPE idd_x_total counter\n",
		"vec histogram count disagrees per series": "# HELP idd_h H.\n# TYPE idd_h histogram\n" +
			"idd_h_bucket{tenant=\"a\",le=\"+Inf\"} 3\nidd_h_bucket{tenant=\"b\",le=\"+Inf\"} 1\n" +
			"idd_h_sum{tenant=\"a\"} 1\nidd_h_count{tenant=\"a\"} 3\n" +
			"idd_h_sum{tenant=\"b\"} 1\nidd_h_count{tenant=\"b\"} 2\n",
		"unseparated labels": "# HELP idd_x_total X.\n# TYPE idd_x_total counter\n" +
			"idd_x_total{a=\"1\"b=\"2\"} 1\n",
	} {
		if err := LintExposition(text); err == nil {
			t.Errorf("%s: lint accepted malformed exposition:\n%s", name, text)
		}
	}
}
