package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for durations in seconds:
// exponential-ish from 1ms to 2min, which brackets everything from a
// cache hit to a max-budget proof search.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram is a fixed-bucket histogram in the Prometheus style:
// cumulative le-bounded buckets plus a sum and a count. Observe is a
// bucket scan and three atomics — lock-free, allocation-free, safe from
// any goroutine. Quantiles are estimated from the bucket counts by
// linear interpolation, exactly like PromQL's histogram_quantile.
type Histogram struct {
	bounds  []float64      // finite upper bounds, strictly increasing
	counts  []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	if len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
		panic("obs: +Inf bucket is implicit, do not declare it")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// snapshot copies per-bucket counts (not cumulative).
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket that straddles rank q. Values landing in the +Inf
// overflow bucket report the largest finite bound — an understatement,
// which is the honest direction for a tail estimate with no upper
// limit. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.snapshot()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) { // overflow bucket
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

type histogramMetric struct {
	desc
	h *Histogram
}

func (m *histogramMetric) typ() string { return "histogram" }

// samples emits the Prometheus histogram triplet: cumulative _bucket
// series per le bound (ending with le="+Inf"), then _sum and _count.
// extra carries the family label of a vec child ("" = plain histogram).
func histogramSamples(h *Histogram, extra Label, fn func(string, []Label, float64)) {
	counts := h.snapshot()
	labels := func(le string) []Label {
		if extra.Name == "" {
			return []Label{{"le", le}}
		}
		return []Label{{extra.Name, extra.Value}, {"le", le}}
	}
	var tail []Label
	if extra.Name != "" {
		tail = []Label{extra}
	}
	var cum int64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fn("_bucket", labels(le), float64(cum))
	}
	fn("_sum", tail, h.Sum())
	fn("_count", tail, float64(h.Count()))
}

func (m *histogramMetric) samples(fn func(string, []Label, float64)) {
	histogramSamples(m.h, Label{}, fn)
}

// histogramJSON is the JSON digest shared by Histogram and HistogramVec
// children: totals, interpolated quantiles, cumulative buckets.
func histogramJSON(h *Histogram) map[string]any {
	counts := h.snapshot()
	buckets := make(map[string]int64, len(counts))
	var cum int64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		buckets[le] = cum
	}
	return map[string]any{
		"count":   h.Count(),
		"sum":     h.Sum(),
		"p50":     h.Quantile(0.50),
		"p95":     h.Quantile(0.95),
		"p99":     h.Quantile(0.99),
		"buckets": buckets,
	}
}

func (m *histogramMetric) jsonValue() any { return histogramJSON(m.h) }

// HistogramVec is a histogram family keyed by one label value. Children
// share the family's bucket layout, are created on first use and never
// removed; With takes a mutex only on the first sighting of a label
// value, and the returned child is a plain Histogram the caller may
// cache, so the observe path stays lock-free.
type HistogramVec struct {
	label    string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[value] = h
	}
	return h
}

// Snapshot copies the family as {label value: child histogram}.
func (v *HistogramVec) Snapshot() map[string]*Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]*Histogram, len(v.children))
	for k, h := range v.children {
		out[k] = h
	}
	return out
}

type histogramVecMetric struct {
	desc
	v *HistogramVec
}

func (m *histogramVecMetric) typ() string { return "histogram" }

// samples emits the per-child histogram triplets in sorted label order:
// each child's buckets carry both the family label and its le bound.
func (m *histogramVecMetric) samples(fn func(string, []Label, float64)) {
	snap := m.v.Snapshot()
	for _, k := range sortedKeys(snap) {
		histogramSamples(snap[k], Label{m.v.label, k}, fn)
	}
}

func (m *histogramVecMetric) jsonValue() any {
	snap := m.v.Snapshot()
	out := make(map[string]any, len(snap))
	for k, h := range snap {
		out[k] = histogramJSON(h)
	}
	return out
}

// RateWindow estimates an event rate over a sliding time window from a
// bounded ring of event timestamps — the fix for the "solves per
// second = lifetime count / lifetime uptime" fallacy, where one busy
// minute after an idle day reads as ~0. Rate counts only the events
// inside the window; before a full window has elapsed since Reset the
// denominator is the elapsed time, so a fresh server is not
// under-reported either.
type RateWindow struct {
	window time.Duration
	mu     sync.Mutex
	buf    []int64 // unix-nano timestamps, ring
	head   int     // next write position
	n      int     // live entries
	start  time.Time
}

// NewRateWindow returns a rate estimator over the given window keeping
// at most capacity timestamps (0 = 4096). If more events than capacity
// land inside one window the rate is a lower bound; size the capacity
// to the peak rate you care to resolve.
func NewRateWindow(capacity int, window time.Duration) *RateWindow {
	if capacity <= 0 {
		capacity = 4096
	}
	if window <= 0 {
		window = time.Minute
	}
	return &RateWindow{window: window, buf: make([]int64, capacity), start: time.Now()}
}

// Mark records one event at t.
func (r *RateWindow) Mark(t time.Time) {
	r.mu.Lock()
	r.buf[r.head] = t.UnixNano()
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Rate returns events per second over the window ending at now.
func (r *RateWindow) Rate(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := now.Add(-r.window).UnixNano()
	recent := 0
	for i := 0; i < r.n; i++ {
		if r.buf[(r.head-1-i+2*len(r.buf))%len(r.buf)] < cutoff {
			break // ring is time-ordered newest-first from head-1
		}
		recent++
	}
	denom := r.window
	if up := now.Sub(r.start); up < denom {
		denom = up
	}
	if denom <= 0 {
		return 0
	}
	return float64(recent) / denom.Seconds()
}
