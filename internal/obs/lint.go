package obs

import (
	"bufio"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// LintExposition is a promtool-free validator of Prometheus text-format
// output (version 0.0.4). It returns a joined error describing every
// malformation found: samples without a preceding # TYPE, invalid
// metric or label names, unparsable values, non-cumulative histogram
// buckets, a histogram _count disagreeing with its +Inf bucket, or a
// declared family with no samples or HELP. Tests and the /metrics
// endpoint's own checks run rendered output through this so a breakage
// a real scraper would reject fails in CI first.
func LintExposition(text string) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	types := map[string]string{} // family -> type
	helped := map[string]bool{}  // family -> saw HELP
	bucketLast := map[string]float64{}
	bucketInf := map[string]float64{}
	counts := map[string]float64{}
	sawSample := map[string]bool{}

	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !validName(parts[0]) {
				fail("line %d: HELP for invalid name %q", lineNo, parts[0])
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				fail("line %d: malformed TYPE line %q", lineNo, line)
				continue
			}
			name, typ := parts[0], parts[1]
			if !validName(name) {
				fail("line %d: TYPE for invalid name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := types[name]; dup {
				fail("line %d: duplicate TYPE for %q", lineNo, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("line %d: unknown comment %q", lineNo, line)
			continue
		}

		name, labelValue, value, ok := parseSample(line)
		if !ok {
			fail("line %d: unparsable sample %q", lineNo, line)
			continue
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			fail("line %d: sample %q without preceding # TYPE", lineNo, name)
			continue
		}
		sawSample[family] = true
		if typ == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if value < bucketLast[family] {
					fail("line %d: non-cumulative bucket for %q: %v after %v",
						lineNo, family, value, bucketLast[family])
				}
				bucketLast[family] = value
				if labelValue == "+Inf" {
					bucketInf[family] = value
				}
			case strings.HasSuffix(name, "_count"):
				counts[family] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err)
	}
	for family, typ := range types {
		if !sawSample[family] {
			fail("family %q declared but has no samples", family)
		}
		if !helped[family] {
			fail("family %q has no HELP line", family)
		}
		if typ == "histogram" {
			if _, ok := bucketInf[family]; !ok {
				fail("histogram %q has no +Inf bucket", family)
			} else if counts[family] != bucketInf[family] {
				fail("histogram %q: _count %v != +Inf bucket %v",
					family, counts[family], bucketInf[family])
			}
		}
	}
	return errors.Join(errs...)
}

// parseSample splits a sample line into metric name, the le/label value
// if any, and the numeric value.
func parseSample(line string) (name, labelValue string, value float64, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", 0, false
	}
	series, valStr := line[:sp], line[sp+1:]
	v, err := parseValue(valStr)
	if err != nil {
		return "", "", 0, false
	}
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return "", "", 0, false
		}
		name = series[:i]
		body := series[i+1 : len(series)-1]
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return "", "", 0, false
		}
		labelName := body[:eq]
		if !validName(labelName) || strings.ContainsRune(labelName, ':') {
			return "", "", 0, false
		}
		quoted := body[eq+1:]
		if len(quoted) < 2 || quoted[0] != '"' || quoted[len(quoted)-1] != '"' {
			return "", "", 0, false
		}
		unescaped, err := unescapeLabelValue(quoted[1 : len(quoted)-1])
		if err != nil {
			return "", "", 0, false
		}
		labelValue = unescaped
	} else {
		name = series
	}
	if !validName(name) {
		return "", "", 0, false
	}
	return name, labelValue, v, true
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeLabelValue(s string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' {
			return "", fmt.Errorf("unescaped quote")
		}
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'n':
			sb.WriteByte('\n')
		default:
			return "", fmt.Errorf("bad escape \\%c", s[i])
		}
	}
	return sb.String(), nil
}
