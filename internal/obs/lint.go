package obs

import (
	"bufio"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// LintExposition is a promtool-free validator of Prometheus text-format
// output (version 0.0.4). It returns a joined error describing every
// malformation found: samples without a preceding # TYPE, invalid
// metric or label names, unparsable values, non-cumulative histogram
// buckets, a histogram _count disagreeing with its +Inf bucket, or a
// declared family with no samples or HELP. Tests and the /metrics
// endpoint's own checks run rendered output through this so a breakage
// a real scraper would reject fails in CI first.
func LintExposition(text string) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	types := map[string]string{} // family -> type
	helped := map[string]bool{}  // family -> saw HELP
	bucketLast := map[string]float64{}
	bucketInf := map[string]float64{}
	counts := map[string]float64{}
	sawSample := map[string]bool{}
	seriesOf := map[string][]string{} // histogram family -> bucket series keys

	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !validName(parts[0]) {
				fail("line %d: HELP for invalid name %q", lineNo, parts[0])
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				fail("line %d: malformed TYPE line %q", lineNo, line)
				continue
			}
			name, typ := parts[0], parts[1]
			if !validName(name) {
				fail("line %d: TYPE for invalid name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := types[name]; dup {
				fail("line %d: duplicate TYPE for %q", lineNo, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("line %d: unknown comment %q", lineNo, line)
			continue
		}

		name, labels, value, ok := parseSample(line)
		if !ok {
			fail("line %d: unparsable sample %q", lineNo, line)
			continue
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			fail("line %d: sample %q without preceding # TYPE", lineNo, name)
			continue
		}
		sawSample[family] = true
		if typ == "histogram" {
			// A histogram family may be a vec: one bucket series per extra
			// label set (e.g. per tenant). Cumulativeness and the
			// +Inf/_count agreement hold per series, so the bookkeeping is
			// keyed by family plus the non-le labels.
			series := family
			le := ""
			for _, l := range labels {
				if l.Name == "le" {
					le = l.Value
				} else {
					series += "|" + l.Name + "=" + l.Value
				}
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if value < bucketLast[series] {
					fail("line %d: non-cumulative bucket for %q: %v after %v",
						lineNo, series, value, bucketLast[series])
				}
				bucketLast[series] = value
				if le == "+Inf" {
					bucketInf[series] = value
					bucketInf[family] = value
					seriesOf[family] = append(seriesOf[family], series)
				}
			case strings.HasSuffix(name, "_count"):
				counts[series] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err)
	}
	for family, typ := range types {
		if !sawSample[family] {
			fail("family %q declared but has no samples", family)
		}
		if !helped[family] {
			fail("family %q has no HELP line", family)
		}
		if typ == "histogram" {
			if _, ok := bucketInf[family]; !ok {
				fail("histogram %q has no +Inf bucket", family)
				continue
			}
			for _, series := range seriesOf[family] {
				if counts[series] != bucketInf[series] {
					fail("histogram %q: _count %v != +Inf bucket %v",
						series, counts[series], bucketInf[series])
				}
			}
		}
	}
	return errors.Join(errs...)
}

// parseSample splits a sample line into metric name, its label pairs
// (nil when unlabeled), and the numeric value.
func parseSample(line string) (name string, labels []Label, value float64, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", nil, 0, false
	}
	series, valStr := line[:sp], line[sp+1:]
	v, err := parseValue(valStr)
	if err != nil {
		return "", nil, 0, false
	}
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return "", nil, 0, false
		}
		name = series[:i]
		body := series[i+1 : len(series)-1]
		for body != "" {
			eq := strings.IndexByte(body, '=')
			if eq < 0 {
				return "", nil, 0, false
			}
			labelName := body[:eq]
			if !validName(labelName) || strings.ContainsRune(labelName, ':') {
				return "", nil, 0, false
			}
			rest := body[eq+1:]
			if len(rest) < 2 || rest[0] != '"' {
				return "", nil, 0, false
			}
			// Find the closing quote, honoring backslash escapes.
			end := -1
			for j := 1; j < len(rest); j++ {
				if rest[j] == '\\' {
					j++
					continue
				}
				if rest[j] == '"' {
					end = j
					break
				}
			}
			if end < 0 {
				return "", nil, 0, false
			}
			unescaped, err := unescapeLabelValue(rest[1:end])
			if err != nil {
				return "", nil, 0, false
			}
			labels = append(labels, Label{labelName, unescaped})
			body = rest[end+1:]
			if body != "" {
				if body[0] != ',' {
					return "", nil, 0, false
				}
				body = body[1:]
			}
		}
	} else {
		name = series
	}
	if !validName(name) {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeLabelValue(s string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' {
			return "", fmt.Errorf("unescaped quote")
		}
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'n':
			sb.WriteByte('\n')
		default:
			return "", fmt.Errorf("bad escape \\%c", s[i])
		}
	}
	return sb.String(), nil
}
