// Package obs is the zero-dependency observability core: atomic
// counters, gauges and fixed-bucket histograms behind a registry that
// renders both JSON and the Prometheus text exposition format, a
// sliding-window rate estimator, and a bounded per-solve "flight
// recorder" trace of timestamped span events.
//
// Everything here is built for hot paths: Counter.Add and
// Histogram.Observe are single atomic operations (plus a bounded bucket
// scan), allocate nothing, and never take a lock. The registry is only
// locked at registration and render time. Search engines that cannot
// afford even an atomic per node (the CP branch-and-bound) accumulate
// plain ints in per-worker scratch and fold them into obs counters once
// per solve — the package is the sink, not the accumulator.
//
// There is one process-wide Default registry for binaries that want it;
// subsystems that may be instantiated several times per process (the
// solve service, tests) create their own with NewRegistry so counters
// never bleed between instances.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Label is one name="value" pair on an exposition sample. Vec metrics
// carry their family label; histogram bucket samples additionally carry
// the "le" bound, so a sample may have zero, one or two labels.
type Label struct {
	Name  string
	Value string
}

// metric is one registered instrument. samples streams the exposition
// samples (suffix and optional labels appended to the metric name);
// jsonValue returns the metric's JSON form for Registry.Snapshot.
type metric interface {
	name() string
	help() string
	typ() string
	samples(fn func(suffix string, labels []Label, v float64))
	jsonValue() any
}

// desc is the shared name/help header of every metric.
type desc struct {
	mname string
	mhelp string
}

func (d desc) name() string { return d.mname }
func (d desc) help() string { return d.mhelp }

// Registry holds a set of named metrics and renders them. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry (for binaries with exactly one
// instance of everything; subsystems should prefer their own).
func Default() *Registry { return defaultRegistry }

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register adds m or panics: metric registration happens at package or
// subsystem init, and a duplicate or malformed name there is a
// programming error no caller can meaningfully handle.
func (r *Registry) register(m metric) {
	if !validName(m.name()) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name()))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[m.name()]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name()))
	}
	r.names[m.name()] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// each visits the metrics in registration order under the lock.
func (r *Registry) each(fn func(metric)) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		fn(m)
	}
}

// Counter registers and returns a monotonically increasing counter.
// Prometheus convention: name it <thing>_total.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&counterMetric{desc: desc{name, help}, c: c})
	return c
}

// Gauge registers and returns a settable instantaneous value.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&gaugeMetric{desc: desc{name, help}, g: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at render time.
// fn must be safe to call from any goroutine and must not call back
// into this registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFuncMetric{desc: desc{name, help}, fn: fn})
}

// CounterVec registers a counter family keyed by one label (e.g.
// backend wins by backend name). Children are created on first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if !validName(label) || label[0] == ':' {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	v := &CounterVec{label: label, children: make(map[string]*Counter)}
	r.register(&counterVecMetric{desc: desc{name, help}, v: v})
	return v
}

// Histogram registers a fixed-bucket histogram. bounds are the
// inclusive bucket upper limits in seconds (or any unit), strictly
// increasing and finite; an implicit +Inf bucket is appended. nil uses
// LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&histogramMetric{desc: desc{name, help}, h: h})
	return h
}

// HistogramVec registers a histogram family keyed by one label (e.g.
// queue wait by tenant). Children share one bucket layout (nil =
// LatencyBuckets) and are created on first use, never removed — keep
// the label's cardinality bounded by construction (tenant ids, backend
// names), not by this package.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if !validName(label) || label[0] == ':' {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	v := &HistogramVec{label: label, bounds: bounds, children: make(map[string]*Histogram)}
	r.register(&histogramVecMetric{desc: desc{name, help}, v: v})
	return v
}

// Snapshot returns the registry's metrics as a JSON-marshalable map:
// counters and gauges as numbers, counter vecs as {label: count},
// histograms as {count, sum, buckets: {le: cumulative}}.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	r.each(func(m metric) { out[m.name()] = m.jsonValue() })
	return out
}

// sortedKeys returns the map's keys in deterministic order (exposition
// output must be stable for diffing and for the format lint).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
