package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("idd_test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("idd_test_gauge", "a gauge")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1", got)
	}
	v := r.CounterVec("idd_test_wins_total", "wins", "backend")
	v.With("cp").Add(3)
	v.With("tabu").Inc()
	snap := v.Snapshot()
	if snap["cp"] != 3 || snap["tabu"] != 1 {
		t.Fatalf("vec snapshot = %v", snap)
	}
}

func TestRegistryPanicsOnDuplicateAndInvalid(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	mustPanic(t, "duplicate", func() { r.Counter("dup_total", "") })
	mustPanic(t, "invalid name", func() { r.Counter("9starts_with_digit", "") })
	mustPanic(t, "invalid name", func() { r.Counter("has-dash", "") })
	mustPanic(t, "invalid label", func() { r.CounterVec("vec_total", "", "bad-label") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic: %s", what)
		}
	}()
	fn()
}

// TestConcurrentWriters hammers every instrument type from many
// goroutines while a reader renders; run under -race this is the
// registry's data-race proof.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("idd_conc_total", "")
	g := r.Gauge("idd_conc_gauge", "")
	h := r.Histogram("idd_conc_seconds", "", nil)
	v := r.CounterVec("idd_conc_vec_total", "", "worker")
	labels := []string{"a", "b", "c", "d"}

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
				v.With(labels[w%len(labels)]).Inc()
			}
		}(w)
	}
	// Concurrent readers: render + snapshot while writers run.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				var sb strings.Builder
				if err := r.RenderText(&sb); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var vecTotal int64
	for _, n := range v.Snapshot() {
		vecTotal += n
	}
	if vecTotal != workers*perWorker {
		t.Fatalf("vec total = %d, want %d", vecTotal, workers*perWorker)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	// Median interpolates to the middle of the (0,1] bucket.
	if p50 := h.Quantile(0.5); p50 != 0.5 {
		t.Fatalf("p50 = %v, want 0.5", p50)
	}
	// Push 100 more into (1,2]: overall median sits at the 1.0 boundary.
	for i := 1; i <= 100; i++ {
		h.Observe(1 + float64(i)/100)
	}
	if p50 := h.Quantile(0.5); p50 != 1.0 {
		t.Fatalf("p50 after second wave = %v, want 1.0", p50)
	}
	if p75 := h.Quantile(0.75); p75 != 1.5 {
		t.Fatalf("p75 = %v, want 1.5", p75)
	}
	// Overflow values clamp to the largest finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
	// Empty histogram reports 0.
	if got := newHistogram(nil).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// Sum accumulates.
	h3 := newHistogram([]float64{10})
	h3.Observe(1.5)
	h3.Observe(2.5)
	if got := h3.Sum(); got != 4 {
		t.Fatalf("sum = %v, want 4", got)
	}
	if got := h3.Mean(); got != 2 {
		t.Fatalf("mean = %v, want 2", got)
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	mustPanic(t, "non-increasing", func() { newHistogram([]float64{1, 1}) })
	mustPanic(t, "decreasing", func() { newHistogram([]float64{2, 1}) })
	mustPanic(t, "explicit +Inf", func() { newHistogram([]float64{1, math.Inf(1)}) })
}

func TestRateWindowIdleThenBusy(t *testing.T) {
	rw := NewRateWindow(64, time.Minute)
	base := time.Now()
	rw.start = base.Add(-24 * time.Hour) // pretend the server has been up a day

	// A day of idleness then 30 events in the last 10 seconds: the
	// lifetime average would be ~0.0003/s; the window sees 0.5/s.
	for i := 0; i < 30; i++ {
		rw.Mark(base.Add(-time.Duration(i) * 300 * time.Millisecond))
	}
	got := rw.Rate(base)
	want := 30.0 / 60.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("rate = %v, want %v", got, want)
	}

	// Everything outside the window counts for nothing.
	if got := rw.Rate(base.Add(2 * time.Minute)); got != 0 {
		t.Fatalf("stale rate = %v, want 0", got)
	}
}

func TestRateWindowFreshServer(t *testing.T) {
	// 5 events in the 10 seconds since start: denominator is the 10s of
	// uptime, not the full 60s window.
	rw := NewRateWindow(16, time.Minute)
	base := rw.start
	for i := 0; i < 5; i++ {
		rw.Mark(base.Add(time.Duration(i) * time.Second))
	}
	got := rw.Rate(base.Add(10 * time.Second))
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("fresh rate = %v, want 0.5", got)
	}
}

func TestRateWindowCapacityOverflow(t *testing.T) {
	rw := NewRateWindow(4, time.Minute)
	base := rw.start
	for i := 0; i < 10; i++ {
		rw.Mark(base.Add(time.Duration(i) * time.Second))
	}
	// Only the newest 4 timestamps survive: the rate is a lower bound.
	got := rw.Rate(base.Add(10 * time.Second))
	if math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("overflow rate = %v, want 0.4", got)
	}
}

func TestTraceRecordsAndOverflows(t *testing.T) {
	tr := NewTrace(4)
	tr.Record(SpanQueued)
	tr.Record(SpanStarted)
	tr.RecordBackend(SpanBackendStart, "cp", "")
	tr.RecordObjective(SpanIncumbent, "cp", 12.5, "")
	snap := tr.Snapshot()
	if snap.Total != 4 || snap.Dropped != 0 || len(snap.Spans) != 4 {
		t.Fatalf("snapshot = total %d dropped %d spans %d", snap.Total, snap.Dropped, len(snap.Spans))
	}
	if snap.Spans[0].Kind != SpanQueued || snap.Spans[3].Kind != SpanIncumbent {
		t.Fatalf("span order wrong: %+v", snap.Spans)
	}
	if snap.Spans[3].Objective == nil || *snap.Spans[3].Objective != 12.5 {
		t.Fatalf("objective not recorded: %+v", snap.Spans[3])
	}
	for i, s := range snap.Spans {
		if s.Seq != i+1 {
			t.Fatalf("seq[%d] = %d", i, s.Seq)
		}
	}

	// Overflow: oldest spans drop, newest survive with original seqs.
	tr.RecordObjective(SpanIncumbent, "cp", 11.0, "")
	tr.Record(SpanProved)
	snap = tr.Snapshot()
	if snap.Total != 6 || snap.Dropped != 2 || len(snap.Spans) != 4 {
		t.Fatalf("overflow snapshot = total %d dropped %d spans %d", snap.Total, snap.Dropped, len(snap.Spans))
	}
	if snap.Spans[0].Seq != 3 || snap.Spans[3].Seq != 6 {
		t.Fatalf("surviving seqs = %d..%d, want 3..6", snap.Spans[0].Seq, snap.Spans[3].Seq)
	}
	if snap.Spans[3].Kind != SpanProved {
		t.Fatalf("tail span = %q", snap.Spans[3].Kind)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.RecordObjective(SpanIncumbent, "cp", float64(i), "")
				tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if snap.Total != 2000 || snap.Dropped != 2000-64 || len(snap.Spans) != 64 {
		t.Fatalf("snapshot = total %d dropped %d spans %d", snap.Total, snap.Dropped, len(snap.Spans))
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	h := r.Histogram("h_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)
	snap := r.Snapshot()
	if snap["c_total"].(int64) != 7 {
		t.Fatalf("counter json = %v", snap["c_total"])
	}
	hm := snap["h_seconds"].(map[string]any)
	if hm["count"].(int64) != 2 {
		t.Fatalf("histogram count json = %v", hm["count"])
	}
	buckets := hm["buckets"].(map[string]int64)
	if buckets["1"] != 1 || buckets["2"] != 1 || buckets["+Inf"] != 2 {
		t.Fatalf("buckets = %v", buckets)
	}
}
