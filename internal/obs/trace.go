package obs

import (
	"sync"
	"time"
)

// Span kinds recorded by the flight recorder. They mirror the job
// lifecycle: queued → started → per-backend start/finish → every
// incumbent improvement → proved → done.
const (
	SpanQueued       = "queued"
	SpanStarted      = "started"
	SpanBackendStart = "backend-start"
	SpanBackendDone  = "backend-done"
	SpanIncumbent    = "incumbent"
	SpanProved       = "proved"
	SpanDone         = "done"
	SpanCacheHit     = "cache-hit"
	SpanError        = "error"
	// SpanWarmStart records warm-start admission on re-solves: the detail
	// says whether the prior incumbent seeded the run or was rejected
	// (infeasible under the new instance) and the run degraded to cold.
	SpanWarmStart = "warm-start"
)

// Span is one timestamped event in a solve's flight-recorder trace.
// ElapsedMS is measured from the trace's start (its first event), so a
// trace replays as an anytime quality-over-time curve without absolute
// clocks. Objective is set only on incumbent (and some terminal) spans.
type Span struct {
	Seq       int      `json:"seq"`
	ElapsedMS float64  `json:"elapsed_ms"`
	Kind      string   `json:"kind"`
	Backend   string   `json:"backend,omitempty"`
	Objective *float64 `json:"objective,omitempty"`
	Detail    string   `json:"detail,omitempty"`
}

// Trace is a bounded ring of spans: the per-solve flight recorder.
// When full it drops the oldest spans and counts them, so a pathological
// solve with millions of incumbent improvements costs bounded memory
// and the tail of the story (which is the interesting part) survives.
// All methods are safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	buf     []Span
	head    int // next write position
	n       int // live entries
	seq     int // total spans ever recorded
	dropped int
}

// DefaultTraceCap is the ring capacity used when NewTrace is given 0.
const DefaultTraceCap = 512

// NewTrace returns a flight recorder holding at most capacity spans
// (0 = DefaultTraceCap). The trace clock starts at the first Record.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Span, capacity)}
}

// Record appends a span with the given kind at time now.
func (t *Trace) Record(kind string) { t.record(kind, "", nil, "") }

// RecordBackend appends a span attributed to a backend.
func (t *Trace) RecordBackend(kind, backend, detail string) {
	t.record(kind, backend, nil, detail)
}

// RecordObjective appends a span carrying an objective value — an
// incumbent improvement, or a terminal span restating the final result.
func (t *Trace) RecordObjective(kind, backend string, objective float64, detail string) {
	t.record(kind, backend, &objective, detail)
}

func (t *Trace) record(kind, backend string, objective *float64, detail string) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq == 0 {
		t.start = now
	}
	t.seq++
	s := Span{
		Seq:       t.seq,
		ElapsedMS: float64(now.Sub(t.start)) / float64(time.Millisecond),
		Kind:      kind,
		Backend:   backend,
		Detail:    detail,
	}
	if objective != nil {
		v := *objective
		s.Objective = &v
	}
	t.buf[t.head] = s
	t.head = (t.head + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
}

// TraceSnapshot is a consistent copy of a trace: the surviving spans in
// record order plus bookkeeping about what the ring dropped.
type TraceSnapshot struct {
	StartedAt time.Time `json:"started_at"`
	Total     int       `json:"total_spans"`
	Dropped   int       `json:"dropped_spans"`
	Spans     []Span    `json:"spans"`
}

// Snapshot copies the trace. Spans are ordered oldest first; if the
// ring overflowed, Dropped counts the spans lost from the front and the
// surviving spans keep their original Seq numbers.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, t.n)
	for i := 0; i < t.n; i++ {
		spans[i] = t.buf[(t.head-t.n+i+len(t.buf))%len(t.buf)]
	}
	return TraceSnapshot{
		StartedAt: t.start,
		Total:     t.seq,
		Dropped:   t.dropped,
		Spans:     spans,
	}
}
