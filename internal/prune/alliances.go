package prune

import "sort"

// alliances detects allied index groups (§5.1, Appendix D.2): indexes
// whose plan memberships are identical — building a strict subset of the
// group never completes a plan the subset's complement wouldn't, so no
// speedup materializes until the whole group exists. Soundness of the
// consecutive-chaining constraint additionally requires that members are
// interchangeable: no member may help any build (inside or outside the
// group), and no member's build may be helped by another member, so any
// internal order has the same objective. The chaining exchange moves
// earlier members later (adjacent to the group's last member), so no
// member may have a precedence successor outside the group — such a
// member can sit early in every optimal order purely to unblock its
// successor. Members are chained in an order consistent with the
// accumulated constraints.
func (a *analyzer) alliances(rep *Report) {
	c := a.c
	n := c.N
	// Plan-membership signature per index.
	sig := make(map[string][]int)
	for i := 0; i < n; i++ {
		if len(c.PlansWithIndex[i]) == 0 {
			continue // dead index: handled by domination, not alliances
		}
		key := fmtInts(c.PlansWithIndex[i])
		sig[key] = append(sig[key], i)
	}
	keys := make([]string, 0, len(sig))
	for k := range sig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		group := sig[k]
		if len(group) < 2 {
			continue
		}
		if !a.allianceEligible(group) {
			continue
		}
		// Chain the group consistently with the existing constraints
		// (intra-group precedences stay respected); count it once.
		inGroup := map[int]bool{}
		for _, i := range group {
			inGroup[i] = true
		}
		order := make([]int, 0, len(group))
		for _, v := range a.cs.Topo() {
			if inGroup[v] {
				order = append(order, v)
			}
		}
		added := false
		for x := 0; x+1 < len(order); x++ {
			if a.add(order[x], order[x+1]) {
				added = true
			}
		}
		if added {
			rep.Alliances = append(rep.Alliances, append([]int(nil), group...))
		}
	}
}

// allianceEligible checks the build-interaction conditions that make
// alliance members interchangeable.
func (a *analyzer) allianceEligible(group []int) bool {
	inGroup := map[int]bool{}
	for _, i := range group {
		inGroup[i] = true
	}
	for _, i := range group {
		// A member must not speed up any build (Theorem 1's "no external
		// interactions"; internal helpers would make internal order
		// matter).
		if a.givesBuildHelp[i] {
			return false
		}
		// A member's build must not be helped by another member.
		for _, h := range a.c.Helpers[i] {
			if inGroup[h.Helper] {
				return false
			}
		}
		// A member's precedence successors must stay within the group:
		// chaining moves earlier members later, which would strand an
		// outside successor that has to wait for them.
		ok := true
		a.cs.Successors(i).ForEach(func(s int) bool {
			if !inGroup[s] {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

func fmtInts(xs []int) string {
	b := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		for x >= 10 {
			b = append(b, byte('0'+x%10))
			x /= 10
		}
		b = append(b, byte('0'+x), ',')
	}
	return string(b)
}
