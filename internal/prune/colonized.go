package prune

// colonized detects colonized indexes (§5.2, Appendix D.3): if every
// plan using index i also uses index j — but not vice versa — then i
// alone never helps, and some optimal solution builds j first. The
// theorem additionally requires that i does not speed up any other
// index's build (otherwise delaying i could forfeit a build discount)
// and that i has no precedence successors: the exchange argument moves
// i to just after j, which is infeasible when some other index must
// wait for i — an optimal order may deploy i early purely to unblock
// that successor.
func (a *analyzer) colonized(rep *Report) {
	c := a.c
	n := c.N
	for i := 0; i < n; i++ {
		plans := c.PlansWithIndex[i]
		if len(plans) == 0 || a.givesBuildHelp[i] {
			continue
		}
		if a.cs.Successors(i).Count() > 0 {
			continue
		}
		// Colonizers: indexes present in every plan of i.
		counts := make(map[int]int)
		for _, p := range plans {
			for _, j := range c.PlanIdx[p] {
				if j != i {
					counts[j]++
				}
			}
		}
		for j := 0; j < n; j++ {
			if counts[j] != len(plans) {
				continue
			}
			// "Not vice versa": j must have some plan without i,
			// otherwise i and j are allies, not colonizer/colonized.
			vice := true
			for _, p := range c.PlansWithIndex[j] {
				if !contains(c.PlanIdx[p], i) {
					vice = false
					break
				}
			}
			if vice {
				continue
			}
			if a.add(j, i) {
				rep.ColonizedPairs = append(rep.ColonizedPairs, [2]int{j, i})
			}
		}
	}
}
