package prune

// disjoint orders interaction-free indexes by density (§5.4, Appendix
// D.5). Two indexes interact when they share a query plan, serve the same
// query through competing plans, or are linked by a build interaction.
// For a pair with no (remaining) interaction the dip argument applies:
// the denser index precedes the sparser one in some optimal solution.
//
// The backward/forward-disjoint generalization fires when every index
// interacting with i or j is already constrained to follow i or precede j
// (backward) — then i and j behave as disjoint within any j→…→i window,
// and a guaranteed density gap (worst-case density of i above best-case
// density of j) forces T_i < T_j.
func (a *analyzer) disjoint(rep *Report) {
	c := a.c
	n := c.N
	const eps = 1e-12

	// Query-competition closure: indexes serving the same query interact
	// (their benefits compete even without sharing a plan).
	inter := make([][]bool, n)
	for i := range inter {
		inter[i] = append([]bool(nil), a.interacts[i]...)
	}
	for q := range c.PlansOfQuery {
		idx := indexesOfQuery(c, q)
		for x := 0; x < len(idx); x++ {
			for y := x + 1; y < len(idx); y++ {
				inter[idx[x]][idx[y]] = true
				inter[idx[y]][idx[x]] = true
			}
		}
	}

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || a.cs.Before(i, j) || a.cs.Before(j, i) {
				continue
			}
			if inter[i][j] {
				continue
			}
			// Worst-case density of i must beat best-case density of j.
			denLowI := a.minBenefit[i] / a.maxCost[i]
			denHighJ := a.maxBenefit[j] / a.minCost[j]
			if denLowI <= denHighJ+eps {
				continue
			}
			if !a.backwardDisjoint(i, j, inter) {
				continue
			}
			if a.add(i, j) {
				rep.DisjointPairs = append(rep.DisjointPairs, [2]int{i, j})
			}
		}
	}
}

// backwardDisjoint reports whether every index interacting with i or j is
// constrained to come after i or before j — the condition under which i
// and j behave as disjoint indexes inside any j→X→i subsequence. A pair
// with no interacting third parties at all is trivially disjoint.
func (a *analyzer) backwardDisjoint(i, j int, inter [][]bool) bool {
	for x := 0; x < a.c.N; x++ {
		if x == i || x == j {
			continue
		}
		if !inter[i][x] && !inter[j][x] {
			continue
		}
		if a.cs.Before(i, x) || a.cs.Before(x, j) {
			continue
		}
		return false
	}
	return true
}
