package prune

import "github.com/evolving-olap/idd/internal/model"

// dominated detects dominated indexes (§5.3, Appendix D.4): index i is
// dominated by k when building k is always at least as beneficial and at
// most as expensive as building i, in every context. The implementation
// uses conservative bounds for the five conditions of D.4:
//
//  1. benefit: maxBenefit(i) < minBenefit(k) — i's best-case speedup
//     (all co-indexes present) is strictly less than k's guaranteed
//     speedup (even with every competing plan already available);
//  2. cost: minCost(i) >= maxCost(k) — i's best-case build (with its best
//     discount) still costs at least k's undiscounted build;
//  3. helping: i never discounts any target's build more than k does;
//  4. side effects: i appears only in singleton plans, so delaying it
//     cannot withhold speedups from other indexes' plans;
//  5. stability: k's own build cost is context-independent (no helpers);
//  6. mobility: i has no precedence successors and k no precedence
//     predecessors — the exchange swaps the two, which must not strand
//     a third index that has to follow i or precede k.
//
// Under these, some optimal solution builds k before i. The strict
// benefit margin prevents tie cycles between twin indexes.
func (a *analyzer) dominated(rep *Report) {
	c := a.c
	n := c.N
	const eps = 1e-12
	for i := 0; i < n; i++ {
		// Condition 4: i only in singleton plans (or no plans at all).
		onlySingleton := true
		for _, p := range c.PlansWithIndex[i] {
			if len(c.PlanIdx[p]) > 1 {
				onlySingleton = false
				break
			}
		}
		if !onlySingleton {
			continue
		}
		if a.cs.Successors(i).Count() > 0 { // condition 6: i can be delayed
			continue
		}
		for k := 0; k < n; k++ {
			if k == i || a.cs.Before(k, i) {
				continue
			}
			if len(c.Helpers[k]) != 0 { // condition 5
				continue
			}
			if a.cs.Predecessors(k).Count() > 0 { // condition 6: k can move up
				continue
			}
			if a.maxBenefit[i] >= a.minBenefit[k]-eps { // condition 1
				continue
			}
			if a.minCost[i] < a.maxCost[k]-eps { // condition 2
				continue
			}
			if !helpsNoMoreThan(c, i, k) { // condition 3
				continue
			}
			if a.add(k, i) {
				rep.DominatedPairs = append(rep.DominatedPairs, [2]int{k, i})
			}
		}
	}
}

// helpsNoMoreThan reports whether index i's build discounts are pointwise
// at most index k's: for every target t, cspdup(t,i) <= cspdup(t,k).
func helpsNoMoreThan(c *model.Compiled, i, k int) bool {
	kHelp := map[int]float64{}
	for _, t := range c.HelpsFor[k] {
		for _, h := range c.Helpers[t] {
			if h.Helper == k && h.Speedup > kHelp[t] {
				kHelp[t] = h.Speedup
			}
		}
	}
	for _, t := range c.HelpsFor[i] {
		var iSpd float64
		for _, h := range c.Helpers[t] {
			if h.Helper == i && h.Speedup > iSpd {
				iSpd = h.Speedup
			}
		}
		if iSpd > kHelp[t] {
			return false
		}
	}
	return true
}
