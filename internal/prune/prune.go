// Package prune implements the problem-specific properties of §5 that
// shrink the factorial search space: Alliances (§5.1), Colonized indexes
// (§5.2), Dominated indexes (§5.3), Disjoint indexes and clusters (§5.4)
// and Tail-index analysis (§5.5), iterated to a fixed point (§5.6). The
// output is a set of precedence constraints (T_i < T_j facts) that every
// analysis preserves at least one optimal solution of the original
// problem, so exact solvers stay exact.
//
// Where the paper's conditions involve context-dependent quantities
// ("minimum benefit", "maximum cost"), the implementation uses
// conservative bounds, trading detection power for unconditional
// soundness; the drill-down experiment (Table 6) shows each property
// still contributes orders of magnitude.
package prune

import (
	"fmt"
	"strings"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// Property selects which §5 analyses to run (Table 6's drill-down).
type Property uint8

const (
	// Alliances detects index sets that only ever appear together
	// (§5.1) and chains them consecutively.
	Alliances Property = 1 << iota
	// Colonized detects indexes that never help without their colonizer
	// (§5.2) and orders them after it.
	Colonized
	// Dominated detects indexes whose best case is worse than another
	// index's worst case (§5.3) and orders them later.
	Dominated
	// Disjoint orders interaction-free indexes by density (§5.4),
	// including the backward/forward-disjoint generalization.
	Disjoint
	// Tails runs the tail-pattern analysis (§5.5).
	Tails

	// All enables every property.
	All = Alliances | Colonized | Dominated | Disjoint | Tails
)

// String spells the property set the way Table 6 does (+A, +AC, ...).
func (p Property) String() string {
	if p == 0 {
		return "none"
	}
	var b strings.Builder
	for _, e := range [...]struct {
		p Property
		s string
	}{{Alliances, "A"}, {Colonized, "C"}, {Dominated, "M"}, {Disjoint, "D"}, {Tails, "T"}} {
		if p&e.p != 0 {
			b.WriteString(e.s)
		}
	}
	return b.String()
}

// Options tunes the analysis.
type Options struct {
	// Properties selects the analyses (0 = All).
	Properties Property
	// MaxTailPatterns caps tail enumeration (0 = 50000, the paper's k).
	MaxTailPatterns int
	// TailLength is the longest tail analyzed (0 = 3).
	TailLength int
	// MaxRounds caps fixed-point iterations (0 = 2*n+4).
	MaxRounds int
}

// Report summarizes what the analysis found.
type Report struct {
	// Alliances lists detected allied groups (index positions).
	Alliances [][]int
	// ColonizedPairs lists (colonizer, colonized) pairs.
	ColonizedPairs [][2]int
	// DominatedPairs lists (dominator, dominated) pairs.
	DominatedPairs [][2]int
	// DisjointPairs lists density-ordered (first, second) pairs.
	DisjointPairs [][2]int
	// TailFixed lists indexes proved to occupy the final positions, in
	// deployment order (last element = very last index).
	TailFixed []int
	// Rounds is the number of fixed-point iterations performed.
	Rounds int
	// Edges is the number of explicit precedence edges accumulated.
	Edges int
}

func (r Report) String() string {
	return fmt.Sprintf("alliances=%d colonized=%d dominated=%d disjoint=%d tail-fixed=%d rounds=%d edges=%d",
		len(r.Alliances), len(r.ColonizedPairs), len(r.DominatedPairs),
		len(r.DisjointPairs), len(r.TailFixed), r.Rounds, r.Edges)
}

// Analyze runs the selected analyses to a fixed point, starting from the
// instance's declared precedences, and returns the augmented constraint
// set plus a report. The returned set always contains the instance's own
// precedence edges.
func Analyze(c *model.Compiled, opt Options) (*constraint.Set, Report) {
	props := opt.Properties
	if props == 0 {
		props = All
	}
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = 2*c.N + 4
	}

	cs := constraint.NewSet(c.N)
	for _, p := range c.Inst.Precedences {
		cs.MustAdd(p.Before, p.After)
	}
	var rep Report

	a := newAnalyzer(c, cs)
	for round := 0; round < maxRounds; round++ {
		rep.Rounds = round + 1
		before := cs.Len()
		if props&Alliances != 0 {
			a.alliances(&rep)
		}
		if props&Colonized != 0 {
			a.colonized(&rep)
		}
		if props&Dominated != 0 {
			a.dominated(&rep)
		}
		if props&Disjoint != 0 {
			a.disjoint(&rep)
		}
		if props&Tails != 0 {
			a.tails(&rep, opt)
		}
		if cs.Len() == before {
			break // fixed point
		}
	}
	rep.Edges = cs.Len()
	return cs, rep
}

// analyzer carries shared per-instance tables.
type analyzer struct {
	c  *model.Compiled
	cs *constraint.Set

	// helperOf[i] = best discount i gives to any other index's build.
	givesBuildHelp []bool
	// maxBenefit[i] = sum over queries of the best speedup of any plan
	// containing i (the most i's presence could ever be worth).
	maxBenefit []float64
	// minBenefit[i] = guaranteed speedup of building i in the worst
	// context (singleton plans beating every competing plan).
	minBenefit []float64
	// minCost/maxCost: build cost extremes across contexts.
	minCost, maxCost []float64
	// interacts[i] = indexes sharing a plan or build interaction with i.
	interacts [][]bool
}

func newAnalyzer(c *model.Compiled, cs *constraint.Set) *analyzer {
	n := c.N
	a := &analyzer{
		c: c, cs: cs,
		givesBuildHelp: make([]bool, n),
		maxBenefit:     make([]float64, n),
		minBenefit:     make([]float64, n),
		minCost:        make([]float64, n),
		maxCost:        make([]float64, n),
		interacts:      make([][]bool, n),
	}
	for i := 0; i < n; i++ {
		a.interacts[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for _, t := range c.HelpsFor[i] {
			a.givesBuildHelp[i] = true
			a.interacts[i][t] = true
			a.interacts[t][i] = true
		}
		best := 0.0
		for _, h := range c.Helpers[i] {
			if h.Speedup > best {
				best = h.Speedup
			}
		}
		a.minCost[i] = c.CreateCost[i] - best
		a.maxCost[i] = c.CreateCost[i]
	}
	for p := range c.PlanIdx {
		idx := c.PlanIdx[p]
		for x := 0; x < len(idx); x++ {
			for y := x + 1; y < len(idx); y++ {
				a.interacts[idx[x]][idx[y]] = true
				a.interacts[idx[y]][idx[x]] = true
			}
		}
	}
	// Benefit bounds per query.
	for q := range c.PlansOfQuery {
		plans := c.PlansOfQuery[q]
		// bestWithout[i] = best plan speedup of q among plans not
		// containing i; bestWith[i] = best among plans containing i.
		for _, i := range indexesOfQuery(c, q) {
			var bestWith, bestWithout, singleton float64
			for _, p := range plans {
				spd := c.PlanSpd[p]
				if contains(c.PlanIdx[p], i) {
					if spd > bestWith {
						bestWith = spd
					}
					if len(c.PlanIdx[p]) == 1 && spd > singleton {
						singleton = spd
					}
				} else if spd > bestWithout {
					bestWithout = spd
				}
			}
			a.maxBenefit[i] += bestWith
			if g := singleton - bestWithout; g > 0 {
				a.minBenefit[i] += g
			}
		}
	}
	return a
}

func indexesOfQuery(c *model.Compiled, q int) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range c.PlansOfQuery[q] {
		for _, i := range c.PlanIdx[p] {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out
}

func contains(sorted []int, x int) bool {
	for _, v := range sorted {
		if v == x {
			return true
		}
		if v > x {
			return false
		}
	}
	return false
}

// add inserts an edge, ignoring already-implied edges and silently
// skipping contradictions (a contradiction means an earlier analysis
// already committed to the opposite order of a tie; dropping the weaker
// fact keeps the constraint set consistent and sound).
func (a *analyzer) add(i, j int) bool {
	if a.cs.Before(i, j) {
		return false
	}
	if err := a.cs.Add(i, j); err != nil {
		return false
	}
	return true
}
