package prune

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

// TestSoundnessOnRandomInstances is the central property test of the
// package: on random instances, the exhaustive optimum under the
// accumulated analysis constraints must equal the unconstrained optimum —
// every property preserves at least one optimal solution (§5, Table 6
// "without affecting optimality").
func TestSoundnessOnRandomInstances(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw)%5 // 4..8 indexes: exhaustive check feasible
		cfg := randgen.DefaultConfig()
		cfg.Indexes = n
		cfg.Queries = 4
		cfg.BuildInteractionProb = 0.12
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)

		// Baseline: optimum under the instance's own precedences (which
		// Analyze always includes).
		free, err := bruteforce.Solve(c, sched.PrecedenceSet(in), true)
		if err != nil {
			return false
		}
		cs, _ := Analyze(c, Options{})
		constrained, err := bruteforce.Solve(c, cs, true)
		if err != nil {
			return false
		}
		return math.Abs(free.Objective-constrained.Objective) < 1e-6*(1+free.Objective)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSoundnessPerProperty(t *testing.T) {
	props := []Property{Alliances, Colonized, Dominated, Disjoint, Tails}
	for _, p := range props {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for seed := int64(0); seed < 25; seed++ {
				cfg := randgen.DefaultConfig()
				cfg.Indexes = 6
				cfg.Queries = 4
				cfg.BuildInteractionProb = 0.15
				in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
				c := model.MustCompile(in)
				free, err := bruteforce.Solve(c, sched.PrecedenceSet(in), true)
				if err != nil {
					t.Fatal(err)
				}
				cs, _ := Analyze(c, Options{Properties: p})
				constrained, err := bruteforce.Solve(c, cs, true)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(free.Objective-constrained.Objective) > 1e-6*(1+free.Objective) {
					t.Fatalf("seed %d: property %s cut off the optimum (%v vs %v)",
						seed, p, constrained.Objective, free.Objective)
				}
			}
		})
	}
}

// allianceInstance reproduces Figure 5: i0,i2 always appear together
// ({i0,i2} and {i0,i2,i4}), i1,i3 are allied via {i3,i5}... Construct
// directly: plans {0,2}, {0,2,4}, {1,4}, {3,5}.
func allianceInstance() *model.Instance {
	idx := make([]model.Index, 6)
	names := []string{"i1", "i2", "i3", "i4", "i5", "i6"}
	for i := range idx {
		idx[i] = model.Index{Name: names[i], CreateCost: 10}
	}
	return &model.Instance{
		Indexes: idx,
		Queries: []model.Query{
			{Name: "q1", Runtime: 100},
			{Name: "q2", Runtime: 100},
			{Name: "q3", Runtime: 100},
			{Name: "q4", Runtime: 100},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0, 2}, Speedup: 30},
			{Query: 1, Indexes: []int{0, 2, 4}, Speedup: 50},
			{Query: 2, Indexes: []int{1, 4}, Speedup: 40},
			{Query: 3, Indexes: []int{3, 5}, Speedup: 35},
		},
	}
}

func TestAlliancesFigure5(t *testing.T) {
	c := model.MustCompile(allianceInstance())
	cs, rep := Analyze(c, Options{Properties: Alliances})
	// {i0,i2} ally (always together); {i3,i5} ally. i1 and i4 do not
	// (i4 appears in {0,2,4} without i1).
	if len(rep.Alliances) != 2 {
		t.Fatalf("found %d alliances, want 2: %+v", len(rep.Alliances), rep.Alliances)
	}
	if !cs.Before(0, 2) && !cs.Before(2, 0) {
		t.Error("alliance {0,2} not chained")
	}
	if !cs.Before(3, 5) && !cs.Before(5, 3) {
		t.Error("alliance {3,5} not chained")
	}
	if cs.Before(1, 4) || cs.Before(4, 1) {
		t.Error("i1/i4 wrongly allied")
	}
}

func TestColonizedFigure6(t *testing.T) {
	// Figure 6: i0 appears only in plans that also contain i1; i1 has a
	// solo plan. i0 is colonized by i1 (and not vice versa).
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "i1", CreateCost: 10},
			{Name: "i2", CreateCost: 10},
			{Name: "i3", CreateCost: 10},
			{Name: "i4", CreateCost: 10},
		},
		Queries: []model.Query{
			{Name: "q1", Runtime: 100}, {Name: "q2", Runtime: 100},
			{Name: "q3", Runtime: 100}, {Name: "q4", Runtime: 100},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0, 1, 2}, Speedup: 30},
			{Query: 1, Indexes: []int{0, 1, 3}, Speedup: 30},
			{Query: 2, Indexes: []int{1}, Speedup: 20},
			{Query: 3, Indexes: []int{2, 3}, Speedup: 10},
		},
	}
	c := model.MustCompile(in)
	cs, rep := Analyze(c, Options{Properties: Colonized})
	if !cs.Before(1, 0) {
		t.Error("colonizer constraint T_i1 > T_i2 missing (index 1 must precede 0)")
	}
	// i0 is NOT colonized by i2 or i3 (each has a plan without the other).
	if cs.Before(2, 0) || cs.Before(3, 0) {
		t.Error("i0 wrongly colonized by i2/i3")
	}
	if len(rep.ColonizedPairs) == 0 {
		t.Error("no colonized pairs reported")
	}
}

func TestDominatedFigure7(t *testing.T) {
	// Figure 7 flavor: i0's best case (4) is below i1's worst case (5),
	// equal costs, no build interactions: i1 must precede i0.
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "i1", CreateCost: 10},
			{Name: "i2", CreateCost: 10},
			{Name: "i3", CreateCost: 10},
		},
		Queries: []model.Query{
			{Name: "qa", Runtime: 100},
			{Name: "qb", Runtime: 100},
		},
		Plans: []model.Plan{
			// i0 alone: 1s; with i2 present the competing singleton of i2
			// caps i0's contribution at 4 total.
			{Query: 0, Indexes: []int{0}, Speedup: 4},
			// i1: guaranteed 5s on its own query, no competitors.
			{Query: 1, Indexes: []int{1}, Speedup: 5},
		},
	}
	c := model.MustCompile(in)
	cs, rep := Analyze(c, Options{Properties: Dominated})
	if !cs.Before(1, 0) {
		t.Errorf("dominated constraint missing; report: %v", rep)
	}
}

func TestDisjointDensityOrdering(t *testing.T) {
	// Two disjoint indexes with very different densities: the denser one
	// must come first.
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "dense", CreateCost: 10},  // density 5
			{Name: "sparse", CreateCost: 50}, // density 0.2
		},
		Queries: []model.Query{
			{Name: "qa", Runtime: 100},
			{Name: "qb", Runtime: 100},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 50},
			{Query: 1, Indexes: []int{1}, Speedup: 10},
		},
	}
	c := model.MustCompile(in)
	cs, rep := Analyze(c, Options{Properties: Disjoint})
	if !cs.Before(0, 1) {
		t.Errorf("density ordering missing; report: %v", rep)
	}
}

func TestTailAnalysisFixesLastIndex(t *testing.T) {
	// Five indexes; a,b,c must all precede x and y (instance
	// precedences), so every feasible tail set of length 3 is
	// {a|b|c, x, y} — the §5.5 situation where groups share their tail
	// suffix. y is dead weight, so every group's champion ends ...x,y,
	// and the suffix-agreement rule must pin y last and x second-to-last.
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "a", CreateCost: 10},
			{Name: "b", CreateCost: 10},
			{Name: "c", CreateCost: 10},
			{Name: "x", CreateCost: 10},
			{Name: "dead", CreateCost: 40},
		},
		Queries: []model.Query{
			{Name: "qa", Runtime: 100},
			{Name: "qb", Runtime: 100},
			{Name: "qc", Runtime: 100},
			{Name: "qx", Runtime: 100},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 60},
			{Query: 1, Indexes: []int{1}, Speedup: 50},
			{Query: 2, Indexes: []int{2}, Speedup: 40},
			{Query: 3, Indexes: []int{3}, Speedup: 10},
		},
		Precedences: []model.Precedence{
			{Before: 0, After: 3}, {Before: 0, After: 4},
			{Before: 1, After: 3}, {Before: 1, After: 4},
			{Before: 2, After: 3}, {Before: 2, After: 4},
		},
	}
	c := model.MustCompile(in)
	cs, rep := Analyze(c, Options{Properties: Tails})
	if len(rep.TailFixed) < 1 || rep.TailFixed[len(rep.TailFixed)-1] != 4 {
		t.Fatalf("tail analysis did not pin the dead index last: %v", rep)
	}
	for i := 0; i < 4; i++ {
		if !cs.Before(i, 4) {
			t.Errorf("missing edge %d < dead", i)
		}
	}
	if !cs.Before(0, 3) || !cs.Before(1, 3) || !cs.Before(2, 3) {
		t.Error("x not pinned second-to-last")
	}
}

func TestIterateAndRecursePeelsMultipleTails(t *testing.T) {
	// Two dead indexes with different costs: the fixed point should pin
	// both final positions (§5.6).
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "a", CreateCost: 10},
			{Name: "b", CreateCost: 10},
			{Name: "dead1", CreateCost: 40},
			{Name: "dead2", CreateCost: 20},
		},
		Queries: []model.Query{
			{Name: "qa", Runtime: 100},
			{Name: "qb", Runtime: 100},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 60},
			{Query: 1, Indexes: []int{1}, Speedup: 50},
		},
	}
	c := model.MustCompile(in)
	cs, _ := Analyze(c, Options{})
	// Both dead indexes must be after both useful ones.
	for _, dead := range []int{2, 3} {
		for _, useful := range []int{0, 1} {
			if !cs.Before(useful, dead) {
				t.Errorf("missing edge %d < %d", useful, dead)
			}
		}
	}
}

func TestSearchSpaceReduction(t *testing.T) {
	// The whole point of §5: constraints shrink the feasible permutation
	// count. Compare exhaustive visit counts with and without analysis.
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 7
	cfg.Queries = 4
	in := randgen.New(rand.New(rand.NewSource(99)), cfg)
	c := model.MustCompile(in)
	free, err := bruteforce.Solve(c, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	cs, rep := Analyze(c, Options{})
	if rep.Edges == 0 {
		t.Skip("analysis found nothing on this seed")
	}
	constrained, err := bruteforce.Solve(c, cs, false)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Visited >= free.Visited {
		t.Errorf("no reduction: %d vs %d permutations", constrained.Visited, free.Visited)
	}
	t.Logf("search space: %d -> %d permutations (%s)", free.Visited, constrained.Visited, rep)
}

func TestPropertyString(t *testing.T) {
	if All.String() != "ACMDT" {
		t.Errorf("All = %q, want ACMDT", All.String())
	}
	if (Alliances | Colonized).String() != "AC" {
		t.Errorf("A|C = %q", (Alliances | Colonized).String())
	}
	if Property(0).String() != "none" {
		t.Errorf("zero = %q", Property(0).String())
	}
}

func TestReportString(t *testing.T) {
	var rep Report
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestTailPatternsFigure9(t *testing.T) {
	// Reuse the tail-analysis fixture: all feasible tail sets are
	// {a|b|c, x, dead}, and each group's champion ends (..., x, dead).
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "a", CreateCost: 10},
			{Name: "b", CreateCost: 10},
			{Name: "c", CreateCost: 10},
			{Name: "x", CreateCost: 10},
			{Name: "dead", CreateCost: 40},
		},
		Queries: []model.Query{
			{Name: "qa", Runtime: 100}, {Name: "qb", Runtime: 100},
			{Name: "qc", Runtime: 100}, {Name: "qx", Runtime: 100},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 60},
			{Query: 1, Indexes: []int{1}, Speedup: 50},
			{Query: 2, Indexes: []int{2}, Speedup: 40},
			{Query: 3, Indexes: []int{3}, Speedup: 10},
		},
		Precedences: []model.Precedence{
			{Before: 0, After: 3}, {Before: 0, After: 4},
			{Before: 1, After: 3}, {Before: 1, After: 4},
			{Before: 2, After: 3}, {Before: 2, After: 4},
		},
	}
	c := model.MustCompile(in)
	cs := constraintFromInstance(in)
	groups := TailPatterns(c, cs, 3, 0)
	if len(groups) != 3 {
		t.Fatalf("%d groups, want 3 ({a|b|c}, x, dead)", len(groups))
	}
	for _, g := range groups {
		if len(g.Patterns) == 0 {
			t.Fatal("empty group")
		}
		// Patterns sorted ascending; first is champion.
		if !g.Patterns[0].Champion {
			t.Error("first pattern not champion")
		}
		champ := g.Patterns[0].Perm
		if champ[len(champ)-1] != 4 {
			t.Errorf("champion of %v does not end with dead: %v", g.Set, champ)
		}
		for i := 1; i < len(g.Patterns); i++ {
			if g.Patterns[i].Objective < g.Patterns[i-1].Objective-1e-9 {
				t.Error("patterns not sorted by objective")
			}
		}
	}
	// Too-small length or over-cap enumeration returns nil.
	if got := TailPatterns(c, cs, 3, 1); got != nil {
		t.Error("cap not honored")
	}
}

func constraintFromInstance(in *model.Instance) *constraint.Set {
	cs := constraint.NewSet(in.N())
	for _, p := range in.Precedences {
		cs.MustAdd(p.Before, p.After)
	}
	return cs
}

// TestSoundnessRegressionPrecedenceMobility pins two inputs that once
// broke soundness: the exchange arguments behind Colonized, Alliances
// and Dominated move indexes relative to each other, which is invalid
// for an index with precedence successors outside the moved set (an
// optimal order may deploy it early purely to unblock its successor).
// Both instances carry such precedences and previously lost the optimum
// under the full analysis.
func TestSoundnessRegressionPrecedenceMobility(t *testing.T) {
	for _, seed := range []int64{8078050106167552676, -3293553112820855690} {
		cfg := randgen.DefaultConfig()
		cfg.Indexes = 8
		cfg.Queries = 4
		cfg.BuildInteractionProb = 0.12
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)

		free, err := bruteforce.Solve(c, sched.PrecedenceSet(in), true)
		if err != nil {
			t.Fatal(err)
		}
		cs, rep := Analyze(c, Options{})
		constrained, err := bruteforce.Solve(c, cs, true)
		if err != nil {
			t.Fatal(err)
		}
		if gap := constrained.Objective - free.Objective; gap > 1e-6*(1+free.Objective) {
			t.Errorf("seed %d: analysis cut off the optimum by %.4g (%v)", seed, gap, rep)
		}
	}
}
