package prune

import (
	"math"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// TailBound is the in-search form of the §5.5 tail analysis. Where
// tails() extracts precedence *rules* that hold in every champion (a
// preprocessing pass), TailBound keeps the underlying enumeration
// itself: for every feasible tail set of up to maxLen indexes it stores
// the exact minimal area those final steps can contribute. Because the
// evaluation core is set-pure, that minimum depends only on the
// remaining *set* — never on the order the prefix was deployed in — so a
// branch-and-bound search sitting maxLen steps above the leaves can
// look up the exact cost of its best possible completion in O(1) and
// prune the node when even that cannot beat the incumbent.
//
// The bound is exact up to a 1e-9 relative safety deflation on lookup
// hits (see NewTailBound), far tighter than the generic completion
// bound: on tight-cost instances, where that bound degenerates (every
// remaining step costs almost the same), this is what shrinks the
// bottom of the tree. Lookup misses — a set skipped by the pattern
// budget or filtered by position windows — simply decline to prune,
// so soundness never depends on coverage.
type TailBound struct {
	n      int
	maxLen int
	// tables[m-1] maps the packed key of a size-m remaining set to the
	// minimal area of any constraint-feasible permutation of it. A nil
	// table means length m was skipped (over budget or over-constrained).
	tables []map[uint64]float64
}

// maxTailBoundLen caps the tail length: a key packs up to four 16-bit
// index ids into one uint64, giving exact (collision-free) lookups.
const maxTailBoundLen = 4

// NewTailBound enumerates the tail tables for lengths 1..TailLength
// (default 3, capped at 4). cs may be nil (no constraints). Instances
// with 2^16 or more indexes (far beyond any proof search) return nil,
// which every method treats as "bound disabled".
func NewTailBound(c *model.Compiled, cs *constraint.Set, opt Options) *TailBound {
	n := c.N
	if n >= 1<<16 {
		return nil
	}
	if cs == nil {
		cs = constraint.NewSet(n)
	}
	length := opt.TailLength
	if length == 0 {
		length = 3
	}
	if length > maxTailBoundLen {
		length = maxTailBoundLen
	}
	if length > n {
		length = n
	}
	maxPatterns := opt.MaxTailPatterns
	if maxPatterns == 0 {
		maxPatterns = 50000
	}

	tb := &TailBound{n: n, maxLen: length, tables: make([]map[uint64]float64, length)}
	w := model.NewWalker(c)
	inSet := make([]bool, n)
	for m := 1; m <= length; m++ {
		var cands []int
		for i := 0; i < n; i++ {
			if cs.MaxPos(i) >= n-m {
				cands = append(cands, i)
			}
		}
		if len(cands) < m {
			continue // over-constrained; search nodes at this depth are dead anyway
		}
		if patterns := binomial(len(cands), m) * factorial(m); patterns <= 0 || patterns > maxPatterns {
			continue
		}
		table := make(map[uint64]float64)
		forFeasibleTailSets(cs, w, cands, m, inSet, func(set []int, objBase float64) {
			best := math.Inf(1)
			permuteFeasible(set, cs, func(perm []int) {
				for _, i := range perm {
					w.Push(i)
				}
				if t := w.Objective() - objBase; t < best {
					best = t
				}
				for range perm {
					w.Pop()
				}
			})
			if !math.IsInf(best, 1) {
				// Deflate by a relative safety margin before storing: the
				// delta was computed against this enumeration's objective
				// base, but the search subtracts it from a different
				// prefix's base, and the ulp-level rounding difference
				// between the two (~1e-16 relative) could otherwise
				// outweigh the engine's 1e-12 improvement epsilon. A 1e-9
				// relative deflation guarantees the prune is conservative
				// against rounding — pruned subtrees provably contain no
				// improving solution — at no practical cost in power.
				table[tailKey(set)] = best - 1e-9*(math.Abs(best)+1)
			}
		})
		tb.tables[m-1] = table
	}
	w.Reset()
	return tb
}

// MaxLen reports the longest remaining-set size the bound covers
// (0 when the bound is disabled).
func (t *TailBound) MaxLen() int {
	if t == nil {
		return 0
	}
	return t.maxLen
}

// Lookup returns the minimal completion area for the given remaining
// set (indexes in ascending order; exact up to the storage-time safety
// deflation) and whether the set was enumerated. A false return means
// "no information" — callers must not prune on it.
func (t *TailBound) Lookup(remaining []int) (float64, bool) {
	m := len(remaining)
	if t == nil || m == 0 || m > t.maxLen || t.tables[m-1] == nil {
		return 0, false
	}
	v, ok := t.tables[m-1][tailKey(remaining)]
	return v, ok
}

// Sets reports how many tail sets were enumerated per length
// (diagnostics for tests and tooling).
func (t *TailBound) Sets() []int {
	if t == nil {
		return nil
	}
	out := make([]int, len(t.tables))
	for i, tab := range t.tables {
		out[i] = len(tab)
	}
	return out
}

// tailKey packs an ascending index set (size <= maxTailBoundLen, ids
// < 2^16) into one uint64. The packing is injective, so table hits are
// exact set matches — a collision could make the bound unsound, which
// is why the key is a packing and not a hash.
func tailKey(set []int) uint64 {
	var k uint64
	for j, i := range set {
		k |= uint64(i) << (16 * j)
	}
	return k
}
