package prune

import (
	"math"
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
)

// TestTailBoundMatchesEnumeration is the exactness proof for the
// in-search tail bound: for every feasible full order of a small random
// instance and every tail length m <= MaxLen, the stored value for the
// remaining set must (a) never exceed the true minimal completion delta
// from that specific prefix — admissibility, the soundness property —
// and (b) sit within the documented 1e-9 safety deflation of it, i.e.
// the bound really is the exact enumeration, not a weaker relaxation.
// Sweeping every feasible prefix also exercises the set-purity claim:
// one stored value must serve all prefix orders of the same set.
func TestTailBoundMatchesEnumeration(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		cfg := randgen.DefaultConfig()
		cfg.Indexes = 7
		cfg.Queries = 5
		cfg.PrecedenceProb = 0.2
		cfg.BuildInteractionProb = 0.15
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		tb := NewTailBound(c, cs, Options{TailLength: 3})
		if tb == nil || tb.MaxLen() != 3 {
			t.Fatalf("seed %d: tail bound not built (maxLen %d)", seed, tb.MaxLen())
		}

		n := c.N
		w := model.NewWalker(c)
		rem := make([]int, 0, n)
		checked := 0
		permute(seqInts(n), func(order []int) {
			if !cs.Compatible(order) {
				return
			}
			for m := 1; m <= tb.MaxLen(); m++ {
				prefix := order[:n-m]
				rem = append(rem[:0], order[n-m:]...)
				sortInts(rem)
				w.Sync(prefix)
				base := w.Objective()
				best := math.Inf(1)
				permuteFeasible(rem, cs, func(perm []int) {
					for _, i := range perm {
						w.Push(i)
					}
					if d := w.Objective() - base; d < best {
						best = d
					}
					for range perm {
						w.Pop()
					}
				})
				got, ok := tb.Lookup(rem)
				if !ok {
					t.Fatalf("seed %d: no table entry for remaining set %v (m=%d)", seed, rem, m)
				}
				if got > best {
					t.Fatalf("seed %d: stored tail cost %v exceeds true minimum %v for %v — unsound",
						seed, got, best, rem)
				}
				if got < best-2*(1e-9*(math.Abs(best)+1)) {
					t.Fatalf("seed %d: stored tail cost %v far below true minimum %v for %v — not exact",
						seed, got, best, rem)
				}
				checked++
			}
		})
		if checked == 0 {
			t.Fatalf("seed %d: no feasible orders checked", seed)
		}
	}
}

// TestTailBoundBudgetAndCaps: over-budget lengths are skipped (Lookup
// declines, never guesses), TailLength is capped at the packing limit,
// and the nil receiver is inert.
func TestTailBoundBudgetAndCaps(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 8
	in := randgen.New(rand.New(rand.NewSource(1)), cfg)
	c := model.MustCompile(in)

	tb := NewTailBound(c, nil, Options{TailLength: 3, MaxTailPatterns: 1})
	if tb.MaxLen() != 3 {
		t.Fatalf("MaxLen = %d, want 3", tb.MaxLen())
	}
	if _, ok := tb.Lookup([]int{0}); ok {
		t.Fatal("over-budget table served a lookup")
	}
	for _, s := range tb.Sets() {
		if s != 0 {
			t.Fatalf("over-budget run enumerated sets: %v", tb.Sets())
		}
	}

	if got := NewTailBound(c, nil, Options{TailLength: 9}).MaxLen(); got != maxTailBoundLen {
		t.Fatalf("TailLength cap: MaxLen = %d, want %d", got, maxTailBoundLen)
	}

	var nilTB *TailBound
	if nilTB.MaxLen() != 0 || nilTB.Sets() != nil {
		t.Fatal("nil TailBound not inert")
	}
	if _, ok := nilTB.Lookup([]int{0, 1}); ok {
		t.Fatal("nil TailBound served a lookup")
	}
}

// TestTailBoundUnconstrainedCoverage: with no constraints every subset
// is feasible, so each table must hold exactly C(n, m) entries — the
// enumeration misses nothing.
func TestTailBoundUnconstrainedCoverage(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 9
	cfg.PrecedenceProb = 0
	in := randgen.New(rand.New(rand.NewSource(5)), cfg)
	c := model.MustCompile(in)
	tb := NewTailBound(c, nil, Options{TailLength: 3})
	for m := 1; m <= 3; m++ {
		if got, want := tb.Sets()[m-1], binomial(9, m); got != want {
			t.Fatalf("length %d: %d sets enumerated, want C(9,%d)=%d", m, got, m, want)
		}
	}
}

// TestTailKeyInjective: the packed key must distinguish every set —
// a collision would merge two sets' minima and could make the bound
// unsound. All 3-subsets of 0..19 must map to distinct keys, and the
// packing must be order-normalized by construction (ascending input).
func TestTailKeyInjective(t *testing.T) {
	seen := make(map[uint64][3]int)
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			for c := b + 1; c < 20; c++ {
				k := tailKey([]int{a, b, c})
				if prev, dup := seen[k]; dup {
					t.Fatalf("key collision: %v and [%d %d %d]", prev, a, b, c)
				}
				seen[k] = [3]int{a, b, c}
			}
		}
	}
	if len(seen) != binomial(20, 3) {
		t.Fatalf("enumerated %d keys, want %d", len(seen), binomial(20, 3))
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sortInts(xs []int) {
	for a := 1; a < len(xs); a++ {
		for b := a; b > 0 && xs[b] < xs[b-1]; b-- {
			xs[b], xs[b-1] = xs[b-1], xs[b]
		}
	}
}
