package prune

import (
	"sort"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// TailPattern is one ordered tail candidate with its tail objective —
// a row of the paper's Figure 9.
type TailPattern struct {
	// Perm is the tail sequence (last Perm[len-1] deployed very last).
	Perm []int
	// Objective is the area the tail steps contribute given that every
	// non-member is already deployed.
	Objective float64
	// Champion marks the best pattern(s) within its tail-set group.
	Champion bool
}

// TailGroup collects the patterns over one tail index set.
type TailGroup struct {
	Set      []int // ascending member positions
	Patterns []TailPattern
}

// TailPatterns enumerates the feasible ordered tails of the given length
// under cs (nil = unconstrained), grouped by tail set, each group sorted
// by tail objective with champions marked — the data behind Figure 9.
// Returns nil when the candidate count would exceed maxPatterns
// (0 = 50000).
func TailPatterns(c *model.Compiled, cs *constraint.Set, length, maxPatterns int) []TailGroup {
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	if length <= 0 {
		length = 3
	}
	if length > c.N {
		length = c.N
	}
	if maxPatterns == 0 {
		maxPatterns = 50000
	}
	n := c.N
	var cands []int
	for i := 0; i < n; i++ {
		if cs.MaxPos(i) >= n-length {
			cands = append(cands, i)
		}
	}
	if len(cands) < length {
		return nil
	}
	if patterns := binomial(len(cands), length) * factorial(length); patterns <= 0 || patterns > maxPatterns {
		return nil
	}

	var groups []TailGroup
	w := model.NewWalker(c)
	inSet := make([]bool, n)
	forFeasibleTailSets(cs, w, cands, length, inSet, func(set []int, objBase float64) {
		g := TailGroup{Set: append([]int(nil), set...)}
		permuteFeasible(set, cs, func(perm []int) {
			for _, m := range perm {
				w.Push(m)
			}
			g.Patterns = append(g.Patterns, TailPattern{
				Perm:      append([]int(nil), perm...),
				Objective: w.Objective() - objBase,
			})
			for range perm {
				w.Pop()
			}
		})
		if len(g.Patterns) == 0 {
			return
		}
		sort.SliceStable(g.Patterns, func(a, b int) bool {
			return g.Patterns[a].Objective < g.Patterns[b].Objective
		})
		best := g.Patterns[0].Objective
		for i := range g.Patterns {
			g.Patterns[i].Champion = g.Patterns[i].Objective <= best+1e-9
		}
		groups = append(groups, g)
	})
	w.Reset()
	return groups
}
