package prune

import (
	"math"
	"sort"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// tails runs the tail-index analysis of §5.5 / Appendix D.6: enumerate
// every feasible ordered tail of length L, compute each pattern's tail
// objective (the area its L steps contribute, which depends only on the
// preceding *set*), keep the champion(s) of every tail-set group, and
// extract rules that hold in all champions. The rule extracted here is
// suffix agreement: if every champion ends with the same index x, then x
// is last in some optimal solution and everything else precedes it; the
// check repeats inward while the agreed suffix grows. The fixed-point
// driver (§5.6) then re-runs the analysis with the new constraints,
// peeling further indexes.
func (a *analyzer) tails(rep *Report, opt Options) {
	c := a.c
	n := c.N
	length := opt.TailLength
	if length == 0 {
		length = 3
	}
	if length > n {
		length = n
	}
	maxPatterns := opt.MaxTailPatterns
	if maxPatterns == 0 {
		maxPatterns = 50000
	}

	// Candidates: indexes whose latest feasible position reaches into the
	// tail window.
	var cands []int
	for i := 0; i < n; i++ {
		if a.cs.MaxPos(i) >= n-length {
			cands = append(cands, i)
		}
	}
	if len(cands) < length {
		return // over-constrained; nothing to analyze
	}
	// Cost guard: #sets * L! patterns.
	if patterns := binomial(len(cands), length) * factorial(length); patterns <= 0 || patterns > maxPatterns {
		return
	}

	type champion struct {
		perm []int
		obj  float64
	}
	// For every candidate tail set, collect its champion permutations.
	var champs []champion
	w := model.NewWalker(c)
	inSet := make([]bool, n)
	forFeasibleTailSets(a.cs, w, cands, length, inSet, func(set []int, objBase float64) {
		bestObj := math.Inf(1)
		var bestPerms [][]int
		permuteFeasible(set, a.cs, func(perm []int) {
			for _, m := range perm {
				w.Push(m)
			}
			tailObj := w.Objective() - objBase
			for range perm {
				w.Pop()
			}
			const tol = 1e-9
			switch {
			case tailObj < bestObj-tol:
				bestObj = tailObj
				bestPerms = [][]int{append([]int(nil), perm...)}
			case tailObj <= bestObj+tol:
				bestPerms = append(bestPerms, append([]int(nil), perm...))
			}
		})
		for _, p := range bestPerms {
			champs = append(champs, champion{perm: p, obj: bestObj})
		}
	})
	w.Reset()
	if len(champs) == 0 {
		return
	}

	// Suffix agreement: walk from the last tail position inward while all
	// champions agree on the index at that position. inSuffix reuses the
	// dense scratch (the per-set clears above left it all-false).
	agreed := []int{}
	inSuffix := inSet
	for pos := length - 1; pos >= 0; pos-- {
		x := champs[0].perm[pos]
		for _, ch := range champs[1:] {
			if ch.perm[pos] != x {
				return // disagreement ends the suffix
			}
		}
		// x occupies absolute position n-length+pos in some optimal
		// solution: everything not in the agreed suffix precedes it.
		inSuffix[x] = true
		for y := 0; y < n; y++ {
			if !inSuffix[y] {
				a.add(y, x)
			}
		}
		agreed = append(agreed, x)
		if !containsInt(rep.TailFixed, x) {
			rep.TailFixed = append([]int{x}, rep.TailFixed...)
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func binomial(n, k int) int {
	if k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
		if r > 1<<30 {
			return -1 // overflow guard: treat as "too many"
		}
	}
	return r
}

func factorial(k int) int {
	r := 1
	for i := 2; i <= k; i++ {
		r *= i
	}
	return r
}

// forFeasibleTailSets enumerates every length-k subset of cands that can
// form a schedule tail under cs (every cs-successor of a member must
// itself be a member), positions w at the complement prefix (order
// irrelevant for the tail state), and calls fn with the set and the
// prefix objective. inSet is a caller-provided dense membership scratch
// shared across the whole enumeration — it reflects the current set
// while fn runs and is cleared in O(k) per set, so the per-set cost is
// walker pushes, not allocations.
func forFeasibleTailSets(cs *constraint.Set, w *model.Walker, cands []int, k int,
	inSet []bool, fn func(set []int, objBase float64)) {

	n := len(inSet)
	forSets(cands, k, func(set []int) {
		for _, m := range set {
			inSet[m] = true
		}
		defer func() {
			for _, m := range set {
				inSet[m] = false
			}
		}()
		for _, m := range set {
			ok := true
			cs.Successors(m).ForEach(func(s int) bool {
				if !inSet[s] {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return
			}
		}
		w.Reset()
		for i := 0; i < n; i++ {
			if !inSet[i] {
				w.Push(i)
			}
		}
		fn(set, w.Objective())
	})
}

// permuteFeasible calls fn with every permutation of set whose relative
// order is compatible with cs (fn must not retain the slice).
func permuteFeasible(set []int, cs *constraint.Set, fn func(perm []int)) {
	permute(set, func(perm []int) {
		for x := 0; x < len(perm); x++ {
			for y := x + 1; y < len(perm); y++ {
				if cs.Before(perm[y], perm[x]) {
					return
				}
			}
		}
		fn(perm)
	})
}

// forSets enumerates all k-subsets of cands (ascending order).
func forSets(cands []int, k int, f func(set []int)) {
	set := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			f(set)
			return
		}
		for i := start; i <= len(cands)-(k-depth); i++ {
			set[depth] = cands[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// permute calls f with every permutation of set (Heap's algorithm on a
// copy; f must not retain the slice).
func permute(set []int, f func(perm []int)) {
	perm := append([]int(nil), set...)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			f(perm)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	rec(len(perm))
	// Restore ascending order for the caller (perm is a copy; nothing to
	// do).
	sort.Ints(perm)
}
