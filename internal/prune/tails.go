package prune

import (
	"math"
	"sort"

	"github.com/evolving-olap/idd/internal/model"
)

// tails runs the tail-index analysis of §5.5 / Appendix D.6: enumerate
// every feasible ordered tail of length L, compute each pattern's tail
// objective (the area its L steps contribute, which depends only on the
// preceding *set*), keep the champion(s) of every tail-set group, and
// extract rules that hold in all champions. The rule extracted here is
// suffix agreement: if every champion ends with the same index x, then x
// is last in some optimal solution and everything else precedes it; the
// check repeats inward while the agreed suffix grows. The fixed-point
// driver (§5.6) then re-runs the analysis with the new constraints,
// peeling further indexes.
func (a *analyzer) tails(rep *Report, opt Options) {
	c := a.c
	n := c.N
	length := opt.TailLength
	if length == 0 {
		length = 3
	}
	if length > n {
		length = n
	}
	maxPatterns := opt.MaxTailPatterns
	if maxPatterns == 0 {
		maxPatterns = 50000
	}

	// Candidates: indexes whose latest feasible position reaches into the
	// tail window.
	var cands []int
	for i := 0; i < n; i++ {
		if a.cs.MaxPos(i) >= n-length {
			cands = append(cands, i)
		}
	}
	if len(cands) < length {
		return // over-constrained; nothing to analyze
	}
	// Cost guard: #sets * L! patterns.
	if patterns := binomial(len(cands), length) * factorial(length); patterns <= 0 || patterns > maxPatterns {
		return
	}

	type champion struct {
		perm []int
		obj  float64
	}
	// For every candidate tail set, collect its champion permutations.
	var champs []champion
	w := model.NewWalker(c)
	forSets(cands, length, func(set []int) {
		// Feasibility of the set as a whole: every cs-successor of a
		// member must itself be a member.
		inSet := make(map[int]bool, length)
		for _, m := range set {
			inSet[m] = true
		}
		for _, m := range set {
			ok := true
			a.cs.Successors(m).ForEach(func(s int) bool {
				if !inSet[s] {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return
			}
		}
		// Push the preceding set (order irrelevant for the tail state).
		w.Reset()
		for i := 0; i < n; i++ {
			if !inSet[i] {
				w.Push(i)
			}
		}
		objBase := w.Objective()

		bestObj := math.Inf(1)
		var bestPerms [][]int
		permute(set, func(perm []int) {
			// Relative order must respect constraints among members.
			for x := 0; x < len(perm); x++ {
				for y := x + 1; y < len(perm); y++ {
					if a.cs.Before(perm[y], perm[x]) {
						return
					}
				}
			}
			for _, m := range perm {
				w.Push(m)
			}
			tailObj := w.Objective() - objBase
			for range perm {
				w.Pop()
			}
			const tol = 1e-9
			switch {
			case tailObj < bestObj-tol:
				bestObj = tailObj
				bestPerms = [][]int{append([]int(nil), perm...)}
			case tailObj <= bestObj+tol:
				bestPerms = append(bestPerms, append([]int(nil), perm...))
			}
		})
		for _, p := range bestPerms {
			champs = append(champs, champion{perm: p, obj: bestObj})
		}
	})
	w.Reset()
	if len(champs) == 0 {
		return
	}

	// Suffix agreement: walk from the last tail position inward while all
	// champions agree on the index at that position.
	agreed := []int{}
	for pos := length - 1; pos >= 0; pos-- {
		x := champs[0].perm[pos]
		for _, ch := range champs[1:] {
			if ch.perm[pos] != x {
				return // disagreement ends the suffix
			}
		}
		// x occupies absolute position n-length+pos in some optimal
		// solution: everything not in the agreed suffix precedes it.
		inSuffix := map[int]bool{x: true}
		for _, s := range agreed {
			inSuffix[s] = true
		}
		for y := 0; y < n; y++ {
			if !inSuffix[y] {
				a.add(y, x)
			}
		}
		agreed = append(agreed, x)
		if !containsInt(rep.TailFixed, x) {
			rep.TailFixed = append([]int{x}, rep.TailFixed...)
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func binomial(n, k int) int {
	if k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
		if r > 1<<30 {
			return -1 // overflow guard: treat as "too many"
		}
	}
	return r
}

func factorial(k int) int {
	r := 1
	for i := 2; i <= k; i++ {
		r *= i
	}
	return r
}

// forSets enumerates all k-subsets of cands (ascending order).
func forSets(cands []int, k int, f func(set []int)) {
	set := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			f(set)
			return
		}
		for i := start; i <= len(cands)-(k-depth); i++ {
			set[depth] = cands[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// permute calls f with every permutation of set (Heap's algorithm on a
// copy; f must not retain the slice).
func permute(set []int, f func(perm []int)) {
	perm := append([]int(nil), set...)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			f(perm)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	rec(len(perm))
	// Restore ascending order for the caller (perm is a copy; nothing to
	// do).
	sort.Ints(perm)
}
