// Package randgen generates random but structurally valid problem
// instances. It is used for property-based tests, for the scaling
// experiments, and as a fuzz source for the solvers. Generation is fully
// deterministic given a seed.
package randgen

import (
	"fmt"
	"math/rand"

	"github.com/evolving-olap/idd/internal/model"
)

// Config controls instance generation. The zero value is not usable; use
// DefaultConfig and tweak fields.
type Config struct {
	Indexes int // number of indexes (>= 1)
	Queries int // number of queries (>= 1)

	// PlansPerQuery is the mean number of alternative plans per query.
	PlansPerQuery float64
	// MaxPlanSize is the largest number of indexes a plan may use.
	MaxPlanSize int
	// MultiIndexPlanProb is the probability a plan uses more than one
	// index (a "query interaction").
	MultiIndexPlanProb float64
	// BuildInteractionProb is the per-ordered-pair probability of a build
	// interaction (targets ~ p*n*(n-1) interactions overall; keep small).
	BuildInteractionProb float64
	// PrecedenceProb is the per-pair probability of a precedence edge
	// (applied on a random topological order, so always acyclic).
	PrecedenceProb float64

	// QueryRuntime and CreateCost are the ranges [lo,hi) for base values.
	QueryRuntimeLo, QueryRuntimeHi float64
	CreateCostLo, CreateCostHi     float64
}

// DefaultConfig returns a medium-density configuration resembling the
// TPC-H instance scale of the paper.
func DefaultConfig() Config {
	return Config{
		Indexes:              12,
		Queries:              10,
		PlansPerQuery:        4,
		MaxPlanSize:          4,
		MultiIndexPlanProb:   0.4,
		BuildInteractionProb: 0.06,
		PrecedenceProb:       0.02,
		QueryRuntimeLo:       50,
		QueryRuntimeHi:       500,
		CreateCostLo:         10,
		CreateCostHi:         120,
	}
}

// New generates an instance. It panics on nonsensical configs (these are
// programming errors in tests/benchmarks, not runtime inputs).
func New(rng *rand.Rand, cfg Config) *model.Instance {
	if cfg.Indexes < 1 || cfg.Queries < 1 {
		panic("randgen: need at least one index and one query")
	}
	if cfg.MaxPlanSize < 1 {
		cfg.MaxPlanSize = 1
	}
	if cfg.MaxPlanSize > cfg.Indexes {
		cfg.MaxPlanSize = cfg.Indexes
	}
	in := &model.Instance{Name: fmt.Sprintf("rand-%d-%d", cfg.Indexes, cfg.Queries)}

	for i := 0; i < cfg.Indexes; i++ {
		in.Indexes = append(in.Indexes, model.Index{
			Name:       fmt.Sprintf("ix%02d", i),
			Table:      fmt.Sprintf("t%d", i%4),
			CreateCost: uniform(rng, cfg.CreateCostLo, cfg.CreateCostHi),
		})
	}
	for q := 0; q < cfg.Queries; q++ {
		in.Queries = append(in.Queries, model.Query{
			Name:    fmt.Sprintf("q%02d", q),
			Runtime: uniform(rng, cfg.QueryRuntimeLo, cfg.QueryRuntimeHi),
		})
	}

	// Plans: per query, draw a Poisson-ish count and random index sets.
	// Speedups are drawn as a fraction of the query runtime, and larger
	// plans tend to be faster, so competing interactions appear naturally.
	seen := map[string]bool{}
	for q := 0; q < cfg.Queries; q++ {
		nPlans := 1 + rng.Intn(int(2*cfg.PlansPerQuery))
		for p := 0; p < nPlans; p++ {
			size := 1
			if cfg.MaxPlanSize >= 2 && rng.Float64() < cfg.MultiIndexPlanProb {
				size = 2 + rng.Intn(cfg.MaxPlanSize-1)
			}
			set := rng.Perm(cfg.Indexes)[:size]
			key := fmt.Sprintf("%d:%v", q, sortedCopy(set))
			if seen[key] {
				continue
			}
			seen[key] = true
			frac := 0.1 + 0.8*rng.Float64()*float64(size)/float64(cfg.MaxPlanSize)
			if frac > 0.95 {
				frac = 0.95
			}
			in.Plans = append(in.Plans, model.Plan{
				Query:   q,
				Indexes: set,
				Speedup: in.Queries[q].Runtime * frac,
			})
		}
	}

	// Build interactions: ordered pairs, discount a fraction of the
	// target's creation cost (paper observed up to 80%).
	for i := 0; i < cfg.Indexes; i++ {
		for j := 0; j < cfg.Indexes; j++ {
			if i == j || rng.Float64() >= cfg.BuildInteractionProb {
				continue
			}
			in.BuildInteractions = append(in.BuildInteractions, model.BuildInteraction{
				Target:  i,
				Helper:  j,
				Speedup: in.Indexes[i].CreateCost * (0.1 + 0.7*rng.Float64()),
			})
		}
	}

	// Precedences along a hidden random topological order => acyclic.
	topo := rng.Perm(cfg.Indexes)
	for a := 0; a < cfg.Indexes; a++ {
		for b := a + 1; b < cfg.Indexes; b++ {
			if rng.Float64() < cfg.PrecedenceProb {
				in.Precedences = append(in.Precedences, model.Precedence{
					Before: topo[a], After: topo[b],
				})
			}
		}
	}

	if err := in.Validate(); err != nil {
		panic(fmt.Sprintf("randgen produced invalid instance: %v", err))
	}
	return in
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*rng.Float64()
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
