package randgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/evolving-olap/idd/internal/model"
)

func TestDeterministicForSeed(t *testing.T) {
	a := New(rand.New(rand.NewSource(7)), DefaultConfig())
	b := New(rand.New(rand.NewSource(7)), DefaultConfig())
	if a.Stats() != b.Stats() {
		t.Fatalf("same seed produced different stats: %v vs %v", a.Stats(), b.Stats())
	}
	ca, cb := model.MustCompile(a), model.MustCompile(b)
	order := make([]int, a.N())
	for i := range order {
		order[i] = i
	}
	if ca.Objective(order) != cb.Objective(order) {
		t.Fatal("same seed produced different objective")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(rand.New(rand.NewSource(1)), DefaultConfig())
	b := New(rand.New(rand.NewSource(2)), DefaultConfig())
	if a.Stats() == b.Stats() {
		t.Log("stats happen to collide; checking costs")
		same := true
		for i := range a.Indexes {
			if a.Indexes[i].CreateCost != b.Indexes[i].CreateCost {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical instances")
		}
	}
}

func TestGeneratedInstancesAlwaysValid(t *testing.T) {
	// Property: any seed and any small config yields a Validate-clean
	// instance (New panics otherwise, but be explicit).
	f := func(seed int64, nIdx, nQ uint8) bool {
		cfg := DefaultConfig()
		cfg.Indexes = 1 + int(nIdx%25)
		cfg.Queries = 1 + int(nQ%20)
		in := New(rand.New(rand.NewSource(seed)), cfg)
		return in.Validate() == nil && in.N() == cfg.Indexes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigClamping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Indexes = 2
	cfg.MaxPlanSize = 10 // larger than index count; must clamp
	in := New(rand.New(rand.NewSource(3)), cfg)
	for _, p := range in.Plans {
		if len(p.Indexes) > 2 {
			t.Fatalf("plan larger than index count: %v", p)
		}
	}

	cfg = DefaultConfig()
	cfg.MaxPlanSize = 0 // must clamp to 1
	in = New(rand.New(rand.NewSource(3)), cfg)
	for _, p := range in.Plans {
		if len(p.Indexes) != 1 {
			t.Fatalf("expected single-index plans only, got %v", p)
		}
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero indexes")
		}
	}()
	New(rand.New(rand.NewSource(1)), Config{Indexes: 0, Queries: 1})
}
