// Package sched provides schedule (permutation) utilities shared by the
// solvers: precedence-respecting random permutations, feasibility repair,
// and the swap/insert neighborhood moves used by local search.
package sched

import (
	"math/rand"

	"github.com/evolving-olap/idd/internal/bitset"
	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// PrecedenceSet builds the constraint relation from an instance's declared
// precedences. It panics if the instance contains a precedence cycle
// (Validate rejects those earlier).
func PrecedenceSet(in *model.Instance) *constraint.Set {
	s := constraint.NewSet(in.N())
	for _, p := range in.Precedences {
		s.MustAdd(p.Before, p.After)
	}
	return s
}

// RandomFeasible returns a uniform-ish random permutation compatible with
// cs: it repeatedly picks a random item among those whose predecessors are
// all placed.
func RandomFeasible(rng *rand.Rand, cs *constraint.Set) []int {
	n := cs.N()
	placed := make([]bool, n)
	remainingPred := make([]int, n)
	succ := make([][]int, n)
	for _, e := range cs.Edges() {
		remainingPred[e[1]]++
		succ[e[0]] = append(succ[e[0]], e[1])
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if remainingPred[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]int, 0, n)
	for len(ready) > 0 {
		k := rng.Intn(len(ready))
		it := ready[k]
		ready[k] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		placed[it] = true
		out = append(out, it)
		for _, v := range succ[it] {
			remainingPred[v]--
			if remainingPred[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(out) != n {
		panic("sched: constraint set has a cycle")
	}
	return out
}

// Repair reorders a (possibly infeasible) permutation into a feasible one
// via a stable topological pass: at every step the unblocked item with the
// earliest input position is emitted, so items only move later when a
// precedence forces them to wait for a predecessor.
func Repair(order []int, cs *constraint.Set) []int {
	n := cs.N()
	rank := make([]int, n)
	for k, it := range order {
		rank[it] = k
	}
	remainingPred := make([]int, n)
	succ := make([][]int, n)
	for _, e := range cs.Edges() {
		remainingPred[e[1]]++
		succ[e[0]] = append(succ[e[0]], e[1])
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if remainingPred[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]int, 0, n)
	for len(ready) > 0 {
		// Pick the ready item that appears earliest in the input order.
		mi := 0
		for k := 1; k < len(ready); k++ {
			if rank[ready[k]] < rank[ready[mi]] {
				mi = k
			}
		}
		it := ready[mi]
		ready = append(ready[:mi], ready[mi+1:]...)
		out = append(out, it)
		for _, v := range succ[it] {
			remainingPred[v]--
			if remainingPred[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(out) != n {
		panic("sched: constraint set has a cycle")
	}
	return out
}

// SwapFeasible reports whether exchanging positions a and b of order keeps
// the schedule compatible with cs. Positions between a and b matter: the
// moved items jump across everything in (a,b).
func SwapFeasible(order []int, a, b int, cs *constraint.Set) bool {
	if a == b {
		return true
	}
	if a > b {
		a, b = b, a
	}
	ia, ib := order[a], order[b]
	// ib moves to position a: nothing in order[a..b-1] may be required
	// before ib.
	for k := a; k < b; k++ {
		if cs.Before(order[k], ib) {
			return false
		}
	}
	// ia moves to position b: ia may not be required before anything in
	// order[a+1..b].
	for k := a + 1; k <= b; k++ {
		if cs.Before(ia, order[k]) {
			return false
		}
	}
	return true
}

// InsertFeasible reports whether removing the item at position from and
// reinserting it so it ends up at position to keeps compatibility.
func InsertFeasible(order []int, from, to int, cs *constraint.Set) bool {
	if from == to {
		return true
	}
	it := order[from]
	if from < to {
		// Item moves later: everything in (from,to] must not require it
		// first... they jump before it.
		for k := from + 1; k <= to; k++ {
			if cs.Before(it, order[k]) {
				return false
			}
		}
	} else {
		for k := to; k < from; k++ {
			if cs.Before(order[k], it) {
				return false
			}
		}
	}
	return true
}

// Swaps enumerates the cs-feasible swap neighborhood of order in
// lexicographic (a,b) position order, calling f for each feasible pair;
// f returning false stops the scan. Feasibility is checked incrementally:
// for a fixed a the scan stops as soon as a successor of order[a] is
// reached (no later b can be feasible), and the items strictly between
// the two positions are tracked in a bitset so each predecessor check is
// O(n/64) instead of O(window). The full scan is therefore
// O(n²·n/64) worst case versus the naive O(n³).
func Swaps(order []int, cs *constraint.Set, f func(a, b int) bool) {
	n := len(order)
	if cs == nil || cs.Len() == 0 {
		for a := 0; a < n-1; a++ {
			for b := a + 1; b < n; b++ {
				if !f(a, b) {
					return
				}
			}
		}
		return
	}
	between := bitset.New(cs.N())
	for a := 0; a < n-1; a++ {
		ia := order[a]
		between.Clear()
		for b := a + 1; b < n; b++ {
			ib := order[b]
			if cs.Before(ia, ib) {
				// ia precedes ib: infeasible now and for every larger b
				// (ib would stay between the swapped positions).
				break
			}
			// ib jumps to position a: nothing in (a,b) may precede it.
			if !between.Intersects(cs.Predecessors(ib)) {
				if !f(a, b) {
					return
				}
			}
			between.Add(ib)
		}
	}
}

// Inserts enumerates the cs-feasible insert neighborhood of order: for
// every from, all feasible targets to != from, nearest first (descending
// below from, then ascending above). Each direction stops at the first
// precedence violation, which blocks all farther targets too, so the scan
// does no redundant window work.
func Inserts(order []int, cs *constraint.Set, f func(from, to int) bool) {
	n := len(order)
	for from := 0; from < n; from++ {
		it := order[from]
		for to := from - 1; to >= 0; to-- {
			if cs != nil && cs.Before(order[to], it) {
				break // order[to] must stay before it; same for smaller to
			}
			if !f(from, to) {
				return
			}
		}
		for to := from + 1; to < n; to++ {
			if cs != nil && cs.Before(it, order[to]) {
				break // it must stay before order[to]; same for larger to
			}
			if !f(from, to) {
				return
			}
		}
	}
}

// ApplySwap exchanges two positions in place.
func ApplySwap(order []int, a, b int) { order[a], order[b] = order[b], order[a] }

// ApplyInsert removes the item at from and reinserts it at to, shifting
// the in-between items, in place.
func ApplyInsert(order []int, from, to int) {
	it := order[from]
	if from < to {
		copy(order[from:to], order[from+1:to+1])
	} else {
		copy(order[to+1:from+1], order[to:from])
	}
	order[to] = it
}

// Identity returns [0,1,...,n-1].
func Identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
