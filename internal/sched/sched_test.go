package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
)

func chainSet(n int) *constraint.Set {
	s := constraint.NewSet(n)
	for i := 0; i+1 < n; i++ {
		s.MustAdd(i, i+1)
	}
	return s
}

func TestPrecedenceSetFromInstance(t *testing.T) {
	in := &model.Instance{
		Indexes: []model.Index{{Name: "a", CreateCost: 1}, {Name: "b", CreateCost: 1}},
		Queries: []model.Query{{Name: "q", Runtime: 1}},
		Precedences: []model.Precedence{
			{Before: 1, After: 0},
		},
	}
	s := PrecedenceSet(in)
	if !s.Before(1, 0) || s.Before(0, 1) {
		t.Fatal("precedence not loaded")
	}
}

func TestRandomFeasibleRespectsConstraints(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%12
		rng := rand.New(rand.NewSource(seed))
		cs := constraint.NewSet(n)
		for k := 0; k < n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				_ = cs.Add(i, j) // cycles rejected internally
			}
		}
		order := RandomFeasible(rng, cs)
		if len(order) != n || !cs.Compatible(order) {
			return false
		}
		seen := make([]bool, n)
		for _, it := range order {
			if seen[it] {
				return false
			}
			seen[it] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomFeasibleVariesWithoutConstraints(t *testing.T) {
	cs := constraint.NewSet(8)
	rng := rand.New(rand.NewSource(5))
	a := RandomFeasible(rng, cs)
	b := RandomFeasible(rng, cs)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("two random draws identical (suspicious for n=8)")
	}
}

func TestRepairStableAndFeasible(t *testing.T) {
	cs := constraint.NewSet(5)
	cs.MustAdd(4, 0) // 4 must precede 0
	in := []int{0, 1, 2, 3, 4}
	out := Repair(in, cs)
	if !cs.Compatible(out) {
		t.Fatalf("repair output infeasible: %v", out)
	}
	// Stability: unblocked items keep their input order (1,2,3 then 4),
	// and 0 is emitted as soon as its predecessor 4 is placed.
	want := []int{1, 2, 3, 4, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("repair = %v, want %v", out, want)
		}
	}
	// A feasible order is unchanged.
	ok := []int{4, 3, 2, 1, 0}
	got := Repair(ok, cs)
	for i := range ok {
		if got[i] != ok[i] {
			t.Fatalf("repair changed a feasible order: %v -> %v", ok, got)
		}
	}
}

func TestSwapFeasible(t *testing.T) {
	cs := chainSet(4) // 0<1<2<3
	order := []int{0, 1, 2, 3}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if SwapFeasible(order, a, b, cs) {
				t.Errorf("swap (%d,%d) should be infeasible on a chain", a, b)
			}
		}
	}
	free := constraint.NewSet(4)
	if !SwapFeasible(order, 0, 3, free) || !SwapFeasible(order, 2, 2, free) {
		t.Error("free swaps should be feasible")
	}
	// Partial constraints: only 0<2.
	cs2 := constraint.NewSet(4)
	cs2.MustAdd(0, 2)
	if SwapFeasible(order, 0, 2, cs2) {
		t.Error("swap crossing its own constraint should fail")
	}
	if !SwapFeasible(order, 1, 3, cs2) {
		t.Error("swap not involving the constraint should pass")
	}
}

func TestInsertFeasibleMatchesApply(t *testing.T) {
	// Property: InsertFeasible agrees with applying the move and checking
	// Compatible.
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%10
		rng := rand.New(rand.NewSource(seed))
		cs := constraint.NewSet(n)
		for k := 0; k < n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				_ = cs.Add(i, j)
			}
		}
		order := RandomFeasible(rng, cs)
		from, to := rng.Intn(n), rng.Intn(n)
		pred := InsertFeasible(order, from, to, cs)
		applied := append([]int(nil), order...)
		ApplyInsert(applied, from, to)
		return pred == cs.Compatible(applied)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapFeasibleMatchesApply(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%10
		rng := rand.New(rand.NewSource(seed))
		cs := constraint.NewSet(n)
		for k := 0; k < n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				_ = cs.Add(i, j)
			}
		}
		order := RandomFeasible(rng, cs)
		a, b := rng.Intn(n), rng.Intn(n)
		pred := SwapFeasible(order, a, b, cs)
		applied := append([]int(nil), order...)
		ApplySwap(applied, a, b)
		return pred == cs.Compatible(applied)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyInsert(t *testing.T) {
	order := []int{10, 11, 12, 13, 14}
	ApplyInsert(order, 1, 3)
	want := []int{10, 12, 13, 11, 14}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("forward insert = %v, want %v", order, want)
		}
	}
	ApplyInsert(order, 3, 0)
	want = []int{11, 10, 12, 13, 14}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("backward insert = %v, want %v", order, want)
		}
	}
}

func TestIdentity(t *testing.T) {
	got := Identity(4)
	for i, v := range got {
		if v != i {
			t.Fatalf("Identity = %v", got)
		}
	}
}

func TestRandomFeasibleOnGeneratedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := randgen.DefaultConfig()
	cfg.PrecedenceProb = 0.15
	for rep := 0; rep < 10; rep++ {
		in := randgen.New(rng, cfg)
		cs := PrecedenceSet(in)
		order := RandomFeasible(rng, cs)
		if err := in.ValidOrder(order); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}

// TestSwapsMatchesSwapFeasible: the incremental bitset iterator must
// enumerate exactly the pairs the direct O(window) check accepts, in
// lexicographic order.
func TestSwapsMatchesSwapFeasible(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%14
		rng := rand.New(rand.NewSource(seed))
		cs := constraint.NewSet(n)
		for k := 0; k < 2*n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				cs.Add(a, b) // ignore cycles; Add rejects them
			}
		}
		order := RandomFeasible(rng, cs)
		var want [][2]int
		for a := 0; a < n-1; a++ {
			for b := a + 1; b < n; b++ {
				if SwapFeasible(order, a, b, cs) {
					want = append(want, [2]int{a, b})
				}
			}
		}
		var got [][2]int
		Swaps(order, cs, func(a, b int) bool {
			got = append(got, [2]int{a, b})
			return true
		})
		if len(got) != len(want) {
			t.Logf("seed %d n=%d: got %v want %v", seed, n, got, want)
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertsMatchesInsertFeasible: same agreement property for the
// insertion neighborhood (set equality; Inserts yields nearest-first).
func TestInsertsMatchesInsertFeasible(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%14
		rng := rand.New(rand.NewSource(seed))
		cs := constraint.NewSet(n)
		for k := 0; k < 2*n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				cs.Add(a, b)
			}
		}
		order := RandomFeasible(rng, cs)
		want := map[[2]int]bool{}
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from != to && InsertFeasible(order, from, to, cs) {
					want[[2]int{from, to}] = true
				}
			}
		}
		got := map[[2]int]bool{}
		Inserts(order, cs, func(from, to int) bool {
			got[[2]int{from, to}] = true
			return true
		})
		if len(got) != len(want) {
			t.Logf("seed %d n=%d: got %d want %d", seed, n, len(got), len(want))
			return false
		}
		for k := range got {
			if !want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
