package service

import (
	"sync"
	"time"

	"github.com/evolving-olap/idd/internal/model"
)

// Batches: POST /batch accepts N instances in one request and fans them
// out as ordinary sub-solve jobs on the worker pool, so every item gets
// the full single-job machinery — canonical-hash caching, single-flight
// dedup, fast-path routing, its own /jobs endpoints and trace. The
// batch itself aggregates: an SSE stream emits one "item" event per
// completed sub-solve (in completion order, not index order) and a
// terminal "batch_done"; DELETE cancels every outstanding item at once.
// Admission is atomic per batch: the tenant's rate limit is charged the
// whole item count up front, so an over-limit batch is rejected in full
// rather than half-admitted.

// maxFinishedBatches bounds how many terminal batches stay queryable.
const maxFinishedBatches = 512

// Batch is one accepted POST /batch request.
type Batch struct {
	ID        string
	tenant    string
	createdAt time.Time

	mu         sync.Mutex
	items      []batchItem
	events     []Event
	notify     chan struct{} // closed+replaced on every event append
	done       chan struct{} // closed when every item is terminal
	remaining  int
	finishedAt time.Time
}

// batchItem is one instance's slot: either a live job or the error
// that kept it from being submitted.
type batchItem struct {
	job *Job
	err error
}

// BatchItemStatus is one item's row in the batch wire status.
type BatchItemStatus struct {
	Index int    `json:"index"`
	JobID string `json:"job_id,omitempty"`
	State string `json:"state"`
	// Objective/Proved/Routed/CacheHit/Shared summarize a finished
	// item's result; the full SolveResult lives at /jobs/{job_id}.
	Objective *float64 `json:"objective,omitempty"`
	Proved    bool     `json:"proved,omitempty"`
	Routed    bool     `json:"routed,omitempty"`
	CacheHit  bool     `json:"cache_hit,omitempty"`
	Shared    bool     `json:"shared,omitempty"`
	Error     string   `json:"error,omitempty"`
}

// BatchStatus is the wire form of GET /batch/{id}.
type BatchStatus struct {
	ID         string            `json:"id"`
	Tenant     string            `json:"tenant"`
	State      string            `json:"state"` // running | done
	Remaining  int               `json:"remaining"`
	CreatedAt  time.Time         `json:"created_at"`
	FinishedAt *time.Time        `json:"finished_at,omitempty"`
	Items      []BatchItemStatus `json:"items"`
}

// Status snapshots the batch and all its items.
func (b *Batch) Status() BatchStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BatchStatus{
		ID:        b.ID,
		Tenant:    b.tenant,
		State:     "running",
		Remaining: b.remaining,
		CreatedAt: b.createdAt,
		Items:     make([]BatchItemStatus, len(b.items)),
	}
	if b.remaining == 0 {
		st.State = "done"
		t := b.finishedAt
		st.FinishedAt = &t
	}
	for i, it := range b.items {
		row := BatchItemStatus{Index: i}
		if it.err != nil {
			row.State = StateFailed
			row.Error = it.err.Error()
		} else {
			js := it.job.Status()
			row.JobID = js.ID
			row.State = js.State
			row.Error = js.Error
			if js.Result != nil {
				row.Objective = fptr(js.Result.Objective)
				row.Proved = js.Result.Proved
				row.Routed = js.Result.Routed
				row.CacheHit = js.Result.CacheHit
				row.Shared = js.Result.Shared
			}
		}
		st.Items[i] = row
	}
	return st
}

// Done returns a channel closed once every item is terminal.
func (b *Batch) Done() <-chan struct{} { return b.done }

// Jobs returns the per-item jobs (nil entries for items that failed
// submission), index-aligned with the request.
func (b *Batch) Jobs() []*Job {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Job, len(b.items))
	for i, it := range b.items {
		out[i] = it.job
	}
	return out
}

// appendEvent records ev and wakes subscribers; caller holds b.mu.
func (b *Batch) appendEvent(ev Event) {
	ev.Seq = len(b.events)
	b.events = append(b.events, ev)
	close(b.notify)
	b.notify = make(chan struct{})
}

// eventsSince implements eventSource for the shared SSE handler.
func (b *Batch) eventsSince(seq int) (evs []Event, terminal bool, notify <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq < len(b.events) {
		evs = append(evs, b.events[seq:]...)
	}
	return evs, b.remaining == 0, b.notify
}

// itemDone records one finished sub-solve: an "item" event in
// completion order, and the terminal "batch_done" when it was the last.
// Reports whether the batch just turned terminal.
func (b *Batch) itemDone(index int, j *Job) bool {
	st := j.Status()
	ev := Event{Type: EventItem, Item: intPtr(index), JobID: j.ID, State: st.State}
	if st.Result != nil {
		ev.Objective = fptr(st.Result.Objective)
		ev.CacheHit = st.Result.CacheHit
		ev.Shared = st.Result.Shared
	}
	ev.Error = st.Error

	b.mu.Lock()
	defer b.mu.Unlock()
	b.appendEvent(ev)
	b.remaining--
	if b.remaining > 0 {
		return false
	}
	b.finishedAt = time.Now()
	b.appendEvent(Event{Type: EventBatchDone, State: "done"})
	close(b.done)
	return true
}

func intPtr(v int) *int { return &v }

// SubmitBatch validates and admits a batch, then fans its instances out
// as individual jobs. The tenant rate limit is charged len(instances)
// tokens atomically; per-item submission failures (an invalid instance,
// a full queue) fail only that item. The returned batch is registered
// and observable immediately.
func (m *Manager) SubmitBatch(instances []*model.Instance, p Params) (*Batch, error) {
	if len(instances) == 0 {
		return nil, invalidf("batch carries no instances")
	}
	if len(instances) > m.cfg.MaxBatchItems {
		return nil, invalidf("batch has %d instances, server accepts at most %d",
			len(instances), m.cfg.MaxBatchItems)
	}
	tenant, err := normalizeTenant(p.Tenant)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if err := m.admitTenant(tenant, len(instances)); err != nil {
		m.mu.Unlock()
		m.metrics.tenantRejected.With(tenant).Inc()
		return nil, err
	}
	m.metrics.batchesSubmitted.Add(1)
	m.metrics.batchItems.Add(int64(len(instances)))
	m.mu.Unlock()

	b := &Batch{
		ID:        m.newID(),
		tenant:    tenant,
		createdAt: time.Now(),
		items:     make([]batchItem, len(instances)),
		notify:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	b.events = append(b.events, Event{Seq: 0, Type: EventQueued})

	live := 0
	for i, in := range instances {
		j, err := m.submit(in, p, true)
		if err != nil {
			b.items[i] = batchItem{err: err}
			continue
		}
		b.items[i] = batchItem{job: j}
		live++
	}
	b.remaining = live

	// Failed items are terminal from birth: emit their "item" events
	// before registration so any subscriber sees a complete history.
	for i, it := range b.items {
		if it.err != nil {
			b.appendEvent(Event{Type: EventItem, Item: intPtr(i),
				State: StateFailed, Error: it.err.Error()})
		}
	}
	if live == 0 {
		b.finishedAt = time.Now()
		b.appendEvent(Event{Type: EventBatchDone, State: "done"})
		close(b.done)
	}

	m.mu.Lock()
	m.batches[b.ID] = b
	m.mu.Unlock()
	if live == 0 {
		m.noteFinishedBatch(b.ID)
	}

	// One watcher per live item relays job completion into the batch
	// stream the moment it happens.
	for i, it := range b.items {
		if it.job == nil {
			continue
		}
		go func(index int, j *Job) {
			<-j.Done()
			if b.itemDone(index, j) {
				m.noteFinishedBatch(b.ID)
			}
		}(i, it.job)
	}
	return b, nil
}

// GetBatch looks a batch up by id.
func (m *Manager) GetBatch(id string) (*Batch, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.batches[id]
	return b, ok
}

// CancelBatch aborts every outstanding item of a batch. Items already
// terminal are left untouched; the batch turns terminal once the last
// cancellation lands (its watchers observe each job's Done).
func (m *Manager) CancelBatch(id string) error {
	m.mu.Lock()
	b, ok := m.batches[id]
	m.mu.Unlock()
	if !ok {
		return ErrUnknownBatch
	}
	for _, j := range b.Jobs() {
		if j == nil {
			continue
		}
		// ErrJobDone/ErrUnknownJob mean the item finished (and may have
		// been evicted) before we got to it — not a batch-level failure.
		_ = m.Cancel(j.ID)
	}
	return nil
}

// noteFinishedBatch records a terminal batch and evicts the oldest
// beyond the retention cap.
func (m *Manager) noteFinishedBatch(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finishedBatches = append(m.finishedBatches, id)
	for len(m.finishedBatches) > maxFinishedBatches {
		delete(m.batches, m.finishedBatches[0])
		m.finishedBatches = m.finishedBatches[1:]
	}
}
