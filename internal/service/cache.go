package service

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU of finished solve results, keyed by
// canonical instance hash plus solve-parameter fingerprint. Values are
// stored in canonical index space and translated per requester.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val *SolveResult
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result for key and marks it recently used.
func (c *lruCache) get(key string) (*SolveResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores val under key, evicting the least recently used entry when
// over capacity. The stored result must not be mutated afterwards.
func (c *lruCache) put(key string, val *SolveResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// hintCache is the delta-aware side table of the solution cache: a
// fixed-capacity LRU from structural hash (index names and plan shapes,
// no float parameters — see codec.StructuralHash) to the index-name
// deployment order of the last finished solve with that structure.
// A request whose parameters drifted misses the full solve key but hits
// here, and the remembered order warm-starts the re-solve.
type hintCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type hintEntry struct {
	key   string
	names []string
}

func newHintCache(capacity int) *hintCache {
	if capacity < 1 {
		capacity = 1
	}
	return &hintCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the remembered deployment order for a structural hash.
func (c *hintCache) get(key string) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*hintEntry).names, true
}

// put stores the latest finished order for a structural hash.
func (c *hintCache) put(key string, names []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*hintEntry).names = names
		return
	}
	c.items[key] = c.ll.PushFront(&hintEntry{key: key, names: names})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*hintEntry).key)
	}
}
