package service

import (
	"math/rand"
	"net/http"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/solver/backend"
)

// TestCancelInterruptsCPProofPromptly is the regression test for the CP
// cancellation fix: the engine used to poll the context on a node-count
// alignment that left deep proof searches running long after their job
// was deleted. Now every (serial or parallel) worker polls on a strict
// stride, so a DELETE must release the solve worker within a couple of
// seconds, not after the 30s budget.
func TestCancelInterruptsCPProofPromptly(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1,
		DefaultParams: backend.Params{"cp.workers": 4}})
	rng := rand.New(rand.NewSource(3))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 22
	cfg.Queries = 12
	in := randgen.New(rng, cfg)

	st := decode[JobStatus](t, postJSON(t, ts.URL+"/jobs", solveRequest{
		Instance: in,
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(30 * time.Second)},
	}))
	waitState(t, ts.URL, st.ID, StateRunning, 10*time.Second)
	// Let the proof search descend well into the tree before cancelling.
	time.Sleep(200 * time.Millisecond)

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	// The DELETE cancels the run context; the cp workers must notice on
	// their polling stride and free the (only) solve worker promptly.
	released := time.Now()
	for {
		if s.Manager().Metrics().Running == 0 {
			break
		}
		if time.Since(released) > 3*time.Second {
			t.Fatalf("cp proof still holds the worker %v after DELETE", time.Since(released))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And the freed worker immediately serves new jobs.
	fast := decode[JobStatus](t, postJSON(t, ts.URL+"/jobs", solveRequest{
		Instance: trapInstance(t),
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)},
	}))
	waitState(t, ts.URL, fast.ID, StateDone, 15*time.Second)
}
