package service

import (
	"time"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/backend"
	"github.com/evolving-olap/idd/internal/solver/portfolio"
)

// Distributor is the seam between the job manager and the distributed
// solve cluster (internal/cluster). The manager stays cluster-agnostic:
// when Config.Distributor is nil (single-node mode, the default)
// nothing below this interface exists and execution is byte-for-byte
// the pre-cluster behavior. When set, every executing solve is
// announced through SolveStarted so the cluster can feed remote
// incumbents into its store, export its CP frontier to idle peers, and
// replicate its finished result.
type Distributor interface {
	// SolveStarted registers a solve that is about to execute and
	// returns the cluster's per-solve hooks. The SolveStart fields are
	// live for the duration of the solve; the cluster must stop using
	// them after Done.
	SolveStarted(s SolveStart) DistributedSolve
	// ResultCached observes a finished result entering the local
	// solution cache, keyed by the full solve key. The result is in
	// canonical index space, so any peer can serve it to any
	// request that canonicalizes to the same instance.
	ResultCached(key string, res *SolveResult)
}

// SolveStart describes one executing solve to the Distributor.
type SolveStart struct {
	// Key is the full solve key (canonical hash + solve-shaping
	// parameters): identical keys are identical solves cluster-wide.
	Key string
	// Hash is the instance's canonical hash (the cluster routing key).
	Hash string
	// Compiled and Constraints are the canonical compiled instance and
	// the constraint set the solve runs under (pruning-derived edges
	// included) — everything a helper node needs to reproduce the
	// search space bit-identically.
	Compiled    *model.Compiled
	Constraints *constraint.Set
	// Prune reports whether Constraints came from the pruning analysis
	// (helpers re-derive the identical set from the canonical instance).
	Prune bool
	// Canon is the canonical instance itself, for shipping to helpers.
	Canon *model.Instance
	// Store is the live shared incumbent store for this solve. Remote
	// incumbents go in through Store.Offer (feasibility-validated);
	// every backend on this node prunes against whatever it holds.
	Store *portfolio.Store
	// Deadline is when the solve's budget expires.
	Deadline time.Time
}

// DistributedSolve is the cluster's handle bundle for one live solve.
type DistributedSolve interface {
	// Exporter is passed to the portfolio as Options.Exporter (may
	// return nil for "don't export this solve"). Backends with
	// distributable searches attach their backend.WorkSource through
	// it.
	Exporter() func(ws backend.WorkSource) (release func())
	// Improved observes every local incumbent improvement (order in
	// canonical index space, a private copy) for broadcast to peers.
	Improved(order []int, objective float64)
	// Done unregisters the solve; no hook fires after it returns and
	// the cluster stops touching any WorkSource attached during the
	// run.
	Done()
}
