package service

// Per-job event logs. Every job keeps its full ordered event history so
// an SSE subscriber can attach at any time (or reconnect with
// Last-Event-ID) and replay from any sequence number; live subscribers
// block on a notification channel that is closed and replaced on every
// append. Events end with exactly one terminal "done" event carrying the
// job's final state.

// Event types, in the order they can appear in a job's stream:
// one "queued", at most one "started", any number of "incumbent" /
// "backend" in solve order, at most one "proved", and a final "done".
// Batch streams use "queued", one "item" per finished sub-solve, and a
// final "batch_done". Session streams use one "plan" for the initial
// deployment plan, one "delta" per applied workload delta (carrying
// only the changed tail of the plan), and a final "session_closed".
const (
	EventQueued        = "queued"
	EventStarted       = "started"
	EventIncumbent     = "incumbent"
	EventBackend       = "backend"
	EventProved        = "proved"
	EventDone          = "done"
	EventItem          = "item"
	EventBatchDone     = "batch_done"
	EventPlan          = "plan"
	EventDelta         = "delta"
	EventSessionClosed = "session_closed"
)

// Event is one entry of a job's progress stream. Seq is contiguous from
// 0 within a job. Orders are in the requesting instance's index space.
type Event struct {
	Seq     int    `json:"seq"`
	Type    string `json:"type"`
	Backend string `json:"backend,omitempty"`
	// Objective accompanies incumbent/backend/proved events; omitted when
	// the backend produced nothing.
	Objective *float64 `json:"objective,omitempty"`
	Order     []int    `json:"order,omitempty"`
	// State accompanies the terminal done event.
	State      string   `json:"state,omitempty"`
	Error      string   `json:"error,omitempty"`
	Skipped    bool     `json:"skipped,omitempty"`
	Iterations int64    `json:"iterations,omitempty"`
	Wall       Duration `json:"wall,omitempty"`
	// CacheHit marks a done event served straight from the cache; Shared
	// marks one that attached to an identical in-flight solve.
	CacheHit bool `json:"cache_hit,omitempty"`
	Shared   bool `json:"shared,omitempty"`
	// Item and JobID identify the finished sub-solve on batch "item"
	// events: Item is the instance's position in the batch request,
	// JobID the per-item job whose /jobs endpoints hold the details.
	Item  *int   `json:"item,omitempty"`
	JobID string `json:"job_id,omitempty"`
	// Session stream fields: Revision counts applied deltas (0 = the
	// initial solve), Names is the deployment plan by index name — the
	// full plan on "plan" events, only the changed tail on "delta"
	// events (TailFrom is the position the tail starts at; the plan
	// prefix before it is unchanged from the previous revision).
	// WarmStarted mirrors the underlying solve's warm-start flag.
	Revision    *int     `json:"revision,omitempty"`
	Names       []string `json:"names,omitempty"`
	TailFrom    *int     `json:"tail_from,omitempty"`
	WarmStarted bool     `json:"warm_started,omitempty"`
}

// eventSource is any ordered event log an SSE handler can stream: jobs
// and batches both implement it.
type eventSource interface {
	eventsSince(seq int) (evs []Event, terminal bool, notify <-chan struct{})
}

// appendEvent records ev on the job and wakes subscribers. Callers must
// hold j.mu; ev.Seq is assigned here.
func (j *Job) appendEvent(ev Event) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
}

// eventsSince returns a snapshot of the events from seq on, whether the
// job is terminal, and the channel that signals the next append.
func (j *Job) eventsSince(seq int) (evs []Event, terminal bool, notify <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq < len(j.events) {
		evs = append(evs, j.events[seq:]...)
	}
	return evs, isTerminal(j.state), j.notify
}

func isTerminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

func fptr(v float64) *float64 { return &v }
