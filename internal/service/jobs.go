package service

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/obs"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/backend"
	"github.com/evolving-olap/idd/internal/solver/cp"
	"github.com/evolving-olap/idd/internal/solver/portfolio"
)

// Config sizes the job manager.
type Config struct {
	// Workers bounds concurrently executing solves (0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds queued (not yet running) solves; submissions
	// beyond it are rejected with ErrQueueFull (0 = 64).
	QueueCap int
	// CacheSize bounds the solution cache entry count (0 = 256).
	CacheSize int
	// DefaultBudget is the per-job solve budget when the request names
	// none (0 = 2s); MaxBudget clamps requested budgets (0 = 60s).
	DefaultBudget time.Duration
	MaxBudget     time.Duration
	// MaxIndexes rejects instances with more indexes (0 = 512).
	MaxIndexes int
	// MaxBodyBytes bounds request bodies (0 = 8 MiB); enforced by the
	// HTTP layer.
	MaxBodyBytes int64
	// MaxFinishedJobs bounds how many terminal jobs (and their event
	// histories) stay queryable; the oldest are evicted first and then
	// answer 404 (0 = 4096). Queued/running jobs are never evicted.
	MaxFinishedJobs int
	// DefaultParams are server-wide backend params applied to every
	// solve unless the request sets the same key itself (e.g.
	// "cp.workers" to size proof parallelism to the machine — it
	// multiplies the goroutines a single job may run, so size
	// Workers × cp.workers together).
	DefaultParams backend.Params
	// CPWorkers is a deprecated alias for DefaultParams["cp.workers"];
	// an explicit DefaultParams entry wins.
	//
	// Deprecated: set DefaultParams["cp.workers"] instead.
	CPWorkers int
	// TenantRate is the sustained per-tenant submission rate
	// (jobs/second; 0 = unlimited). TenantBurst sizes the token bucket
	// (0 = 2×rate+1). Excess submissions are rejected with
	// ErrRateLimited (429).
	TenantRate  float64
	TenantBurst int
	// TenantQueueCap bounds one tenant's queued (not yet running) runs,
	// so a flooding tenant exhausts its own quota instead of the shared
	// QueueCap (0 = no per-tenant cap).
	TenantQueueCap int
	// MaxBatchItems bounds instances per POST /batch request (0 = 64).
	MaxBatchItems int
	// FastPathMaxN is the routing size threshold: instances with at most
	// this many indexes (and no explicit backend list) skip the
	// portfolio race and run one exact backend to a proof
	// (0 = portfolio.DefaultFastPathMaxN; negative disables routing).
	FastPathMaxN int
	// NodeName, when non-empty, prefixes every generated job/batch/
	// session id as "<node>-<hex>". In cluster mode each node names
	// itself, which makes ids self-routing: any peer can tell from the
	// prefix which node owns the resource and proxy the lookup there.
	NodeName string
	// Distributor, when non-nil, bridges executing solves to the
	// distributed solve cluster (see Distributor). Nil = single-node
	// behavior, unchanged.
	Distributor Distributor
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 2 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 60 * time.Second
	}
	if c.MaxIndexes <= 0 {
		c.MaxIndexes = 512
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxFinishedJobs <= 0 {
		c.MaxFinishedJobs = 4096
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	c.DefaultParams = c.DefaultParams.WithIntFallback(cp.ParamWorkers, c.CPWorkers)
	return c
}

// Submission errors the HTTP layer maps to status codes.
var (
	ErrQueueFull       = errors.New("service: job queue full")
	ErrTenantQueueFull = errors.New("service: tenant queue quota exhausted")
	ErrRateLimited     = errors.New("service: tenant rate limit exceeded")
	ErrDraining        = errors.New("service: shutting down, not accepting jobs")
	ErrUnknownJob      = errors.New("service: unknown job")
	ErrJobDone         = errors.New("service: job already finished")
	ErrUnknownBatch    = errors.New("service: unknown batch")
	ErrUnknownSession  = errors.New("service: unknown session")
	ErrSessionClosed   = errors.New("service: session closed")
	ErrSessionBusy     = errors.New("service: session has a delta in flight")
	ErrTooManySessions = errors.New("service: too many active sessions")
)

// InvalidError wraps client-side request problems (400s).
type InvalidError struct{ Err error }

func (e *InvalidError) Error() string { return e.Err.Error() }
func (e *InvalidError) Unwrap() error { return e.Err }

func invalidf(format string, args ...any) error {
	return &InvalidError{Err: fmt.Errorf(format, args...)}
}

// Job is one submitted solve request. A job either attaches to a run
// (shared with every other job wanting the identical solve) or is
// completed immediately from the cache.
type Job struct {
	ID       string
	hash     string
	instName string
	tenant   string
	priority int

	// origOf maps canonical index positions back to this request's
	// positions; names mirrors the request's index names.
	origOf []int

	// trace is the job's flight recorder: a bounded ring of timestamped
	// spans (queued → started → backend starts/finishes → every incumbent
	// improvement → proved/done) served by GET /jobs/{id}/trace. It has
	// its own lock and is written outside j.mu.
	trace *obs.Trace

	mu         sync.Mutex
	state      string
	events     []Event
	notify     chan struct{} // closed+replaced on every event append
	done       chan struct{} // closed on terminal transition
	err        error
	result     *SolveResult
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time

	run *run // nil for cache hits
}

// Status snapshots the job's wire form.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.ID,
		State:    j.state,
		Hash:     j.hash,
		Instance: j.instName,
		Tenant:   j.tenant,
		Priority: j.priority,
		QueuedAt: j.queuedAt,
		Result:   j.result,
		Events:   len(j.events),
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// TraceSnapshot returns the job's flight-recorder trace.
func (j *Job) TraceSnapshot() obs.TraceSnapshot {
	if j.trace == nil {
		return obs.TraceSnapshot{Spans: []obs.Span{}}
	}
	return j.trace.Snapshot()
}

// recordProgress mirrors one portfolio progress event into the job's
// trace. Unlike the SSE event stream, the trace also keeps backend
// starts, so a replay shows when each backend began competing.
func (j *Job) recordProgress(ev portfolio.ProgressEvent) {
	if j.trace == nil {
		return
	}
	switch ev.Kind {
	case portfolio.ProgressBackendStarted:
		j.trace.RecordBackend(obs.SpanBackendStart, ev.Backend, "")
	case portfolio.ProgressImproved:
		j.trace.RecordObjective(obs.SpanIncumbent, ev.Backend, ev.Objective, "")
	case portfolio.ProgressProved:
		j.trace.RecordObjective(obs.SpanProved, ev.Backend, ev.Objective, "")
	case portfolio.ProgressBackendDone:
		detail := ""
		switch {
		case ev.Skipped:
			detail = "skipped"
		case ev.Err != nil:
			detail = ev.Err.Error()
		}
		if math.IsInf(ev.Objective, 1) {
			j.trace.RecordBackend(obs.SpanBackendDone, ev.Backend, detail)
		} else {
			j.trace.RecordObjective(obs.SpanBackendDone, ev.Backend, ev.Objective, detail)
		}
	}
}

// translate maps a canonical-space order into this job's index space.
func (j *Job) translate(order []int) []int {
	out := make([]int, len(order))
	for k, c := range order {
		out[k] = j.origOf[c]
	}
	return out
}

// start transitions the job to running and emits the started event.
func (j *Job) start(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return
	}
	j.state = StateRunning
	j.startedAt = now
	if j.trace != nil {
		j.trace.Record(obs.SpanStarted)
	}
	j.appendEvent(Event{Type: EventStarted})
}

// finish moves the job to a terminal state, records the result or error,
// emits the done event, and releases waiters. Reports false (and changes
// nothing) when the job is already terminal — e.g. it was canceled while
// its run kept going — so callers count each job exactly once.
func (j *Job) finish(state string, res *SolveResult, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if isTerminal(j.state) {
		return false
	}
	j.state = state
	j.finishedAt = time.Now()
	j.result = res
	j.err = err
	if j.trace != nil {
		switch {
		case err != nil:
			j.trace.RecordBackend(obs.SpanError, "", err.Error())
		case res != nil:
			j.trace.RecordObjective(obs.SpanDone, res.Winner, res.Objective, state)
		default:
			j.trace.RecordBackend(obs.SpanDone, "", state)
		}
	}
	ev := Event{Type: EventDone, State: state}
	if res != nil {
		ev.Objective = fptr(res.Objective)
		ev.CacheHit = res.CacheHit
	}
	if err != nil {
		ev.Error = err.Error()
	}
	j.appendEvent(ev)
	close(j.done)
	return true
}

// run is one underlying portfolio solve, shared by all jobs whose
// canonical hash and solve parameters coincide (single-flight).
type run struct {
	key string
	// hash is the instance's canonical hash alone (the cluster routing
	// key; key adds the solve-shaping parameters on top).
	hash  string
	canon *model.Instance
	params Params
	// bag is the registry-validated, canonically typed form of
	// params.Params.
	bag    backend.Params
	budget time.Duration
	// structHash fingerprints the instance's structure only (index
	// names, plan shapes — no float parameters), keying the warm-hint
	// table so parameter-only drift can reuse a previous incumbent.
	structHash string
	// initial, when non-nil, seeds the solve with a warm-start order in
	// canonical index space; warmHint marks seeds recovered from the
	// structural-hash hint table rather than an explicit warm submission.
	initial  []int
	warmHint bool
	// tenant is the first submitter's tenant: it decides which DRR queue
	// the run waits in (later attachers from other tenants share the
	// solve but not the queue slot).
	tenant   string
	priority int   // queue priority: max over attached jobs (under Manager.mu)
	seq      int64 // FIFO tie-break within a priority
	index    int   // heap position in its tenant queue (-1 once popped/removed)

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	jobs    []*Job
	started bool
	// finished blocks further attaches once the outcome has been (or is
	// being) fanned out — a late attacher would never be completed.
	finished bool
}

// attach adds a job to the run; reports false when the run has already
// been abandoned (all previous jobs canceled) or has finished — nothing
// would ever complete a job attached then.
func (r *run) attach(j *Job) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctx.Err() != nil || r.finished {
		return false
	}
	j.run = r
	r.jobs = append(r.jobs, j)
	if r.started {
		j.start(time.Now())
	}
	return true
}

// complete marks the run finished and returns the jobs to fan out to;
// subsequent attaches are refused.
func (r *run) complete() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished = true
	return append([]*Job(nil), r.jobs...)
}

// detach removes a job; reports whether the run is now empty.
func (r *run) detach(j *Job) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, other := range r.jobs {
		if other == j {
			r.jobs = append(r.jobs[:k], r.jobs[k+1:]...)
			break
		}
	}
	return len(r.jobs) == 0
}

// emit fans one translated event out to every attached job. Holding
// r.mu across the fan-out gives all jobs the same event order even when
// portfolio backends report concurrently.
func (r *run) emit(ev Event, order []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.jobs {
		jev := ev
		if order != nil {
			jev.Order = j.translate(order)
		}
		j.mu.Lock()
		j.appendEvent(jev)
		j.mu.Unlock()
	}
}

// recordSpan mirrors one portfolio progress event into the trace of
// every attached job. Holding r.mu keeps the span order consistent
// across jobs, exactly like emit does for events.
func (r *run) recordSpan(ev portfolio.ProgressEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.jobs {
		j.recordProgress(ev)
	}
}

// recordWarm writes the warm-start admission span into every attached
// job's trace.
func (r *run) recordWarm(detail string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.jobs {
		if j.trace != nil {
			j.trace.RecordBackend(obs.SpanWarmStart, "", detail)
		}
	}
}

// runQueue is a max-heap on (priority, FIFO seq).
type runQueue []*run

func (q runQueue) Len() int { return len(q) }
func (q runQueue) Less(a, b int) bool {
	if q[a].priority != q[b].priority {
		return q[a].priority > q[b].priority
	}
	return q[a].seq < q[b].seq
}
func (q runQueue) Swap(a, b int) {
	q[a], q[b] = q[b], q[a]
	q[a].index = a
	q[b].index = b
}
func (q *runQueue) Push(x any) {
	r := x.(*run)
	r.index = len(*q)
	*q = append(*q, r)
}
func (q *runQueue) Pop() any {
	old := *q
	r := old[len(old)-1]
	old[len(old)-1] = nil
	r.index = -1
	*q = old[:len(old)-1]
	return r
}

// Manager owns the worker pool, the per-tenant queues, the
// single-flight table and the solution cache.
type Manager struct {
	cfg     Config
	metrics *Metrics
	cache   *lruCache
	// hints maps a structural hash to the index-name order of the last
	// finished solve with that structure: the delta-aware half of the
	// cache. A weight-only change misses the full solve key (the
	// canonical hash moved) but hits here, and the old incumbent seeds
	// the re-solve as a warm start instead of starting cold.
	hints  *hintCache
	router *portfolio.Router

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	sched    *tenantSched
	buckets  map[string]*tokenBucket
	inflight map[string]*run
	jobs     map[string]*Job
	batches  map[string]*Batch
	sessions map[string]*Session
	// finished is the FIFO of terminal job ids; beyond MaxFinishedJobs
	// the oldest are dropped from the jobs map so a long-running server
	// does not retain every request's event history forever.
	// finishedBatches/closedSessions are the same for batches/sessions.
	finished        []string
	finishedBatches []string
	closedSessions  []string
	seq             int64
	running         int
	draining        bool

	wg sync.WaitGroup
}

// NewManager builds a manager and starts its worker pool.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		metrics:  newMetrics(),
		inflight: make(map[string]*run),
		jobs:     make(map[string]*Job),
		batches:  make(map[string]*Batch),
		sessions: make(map[string]*Session),
		buckets:  make(map[string]*tokenBucket),
	}
	m.router = portfolio.NewRouter(m.cfg.FastPathMaxN)
	m.sched = newTenantSched(m.cfg.DefaultBudget.Seconds())
	m.cache = newLRUCache(m.cfg.CacheSize)
	m.hints = newHintCache(m.cfg.CacheSize)
	m.metrics.bindGauges(m)
	m.cond = sync.NewCond(&m.mu)
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	for w := 0; w < m.cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Metrics returns the current counters.
func (m *Manager) Metrics() MetricsSnapshot {
	m.mu.Lock()
	depth, running := m.sched.len(), m.running
	tenants := m.sched.depths()
	m.mu.Unlock()
	return m.metrics.snapshot(m.cfg.Workers, depth, m.cfg.QueueCap, running,
		m.cache.len(), m.cfg.CacheSize, tenants, m.router.Snapshot())
}

// Router exposes the fast-path router (telemetry for tests and
// embedders).
func (m *Manager) Router() *portfolio.Router { return m.router }

// ObsRegistry returns the manager's metric registry (for the Prometheus
// text rendering of GET /metrics and for embedders that want to add
// their own instruments next to the service's).
func (m *Manager) ObsRegistry() *obs.Registry { return m.metrics.reg }

// Draining reports whether shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// newJobID returns a 16-hex-char random job id.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// newID returns a fresh job/batch/session id, prefixed with the node
// name in cluster mode so ids are self-routing across peers.
func (m *Manager) newID() string {
	if m.cfg.NodeName != "" {
		return m.cfg.NodeName + "-" + newJobID()
	}
	return newJobID()
}

// SeedCache installs a finished result (canonical index space, as
// produced by a solve of the identical key) into the solution cache.
// This is the receiving end of cluster result replication: a peer's
// finished solve becomes a local cache hit for the next identical
// request, whichever node it lands on.
func (m *Manager) SeedCache(key string, res *SolveResult) {
	if res == nil || key == "" {
		return
	}
	m.cache.put(key, res)
}

// CachedResult looks up a finished result by solve key without touching
// job state (used by the cluster layer to answer peers).
func (m *Manager) CachedResult(key string) (*SolveResult, bool) {
	return m.cache.get(key)
}

// MaxBodyBytes reports the configured request-body cap (the cluster
// router buffers bodies under the same limit the service enforces).
func (m *Manager) MaxBodyBytes() int64 { return m.cfg.MaxBodyBytes }

// Load reports the manager's instantaneous occupancy: currently
// executing solves and the configured worker pool size. The cluster's
// helper loop uses spare capacity (running < workers) as its "idle
// enough to steal remote subtrees" signal.
func (m *Manager) Load() (running, workers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running, m.cfg.Workers
}

// clampBudget applies the default and maximum to a requested budget.
func (m *Manager) clampBudget(d Duration) time.Duration {
	b := time.Duration(d)
	if b <= 0 {
		b = m.cfg.DefaultBudget
	}
	if b > m.cfg.MaxBudget {
		b = m.cfg.MaxBudget
	}
	return b
}

// solveKey fingerprints everything that shapes the solve outcome. The
// param bag enters in its canonical sorted form so key equality does
// not depend on JSON map order.
func solveKey(hash string, p Params, bag backend.Params, budget time.Duration) string {
	return fmt.Sprintf("%s|b=%s|be=%v|w=%d|s=%d|sl=%d|p=%t|pp=%s",
		hash, budget, p.Backends, p.Workers, p.Seed, p.StepLimit, p.pruneEnabled(), bag.Canon())
}

// canonicalOrder maps an index-name order onto canonical positions of
// canon: every index exactly once, unknown or repeated names rejected.
func canonicalOrder(canon *model.Instance, names []string) ([]int, error) {
	if len(names) != len(canon.Indexes) {
		return nil, fmt.Errorf("warm order names %d indexes, instance has %d",
			len(names), len(canon.Indexes))
	}
	pos := make(map[string]int, len(canon.Indexes))
	for i, ix := range canon.Indexes {
		pos[ix.Name] = i
	}
	out := make([]int, len(names))
	seen := make([]bool, len(names))
	for k, name := range names {
		i, ok := pos[name]
		if !ok {
			return nil, fmt.Errorf("warm order names unknown index %q", name)
		}
		if seen[i] {
			return nil, fmt.Errorf("warm order repeats index %q", name)
		}
		seen[i] = true
		out[k] = i
	}
	return out, nil
}

// orderFingerprint is a short stable digest of a name order, the
// warm-start component of the solve key.
func orderFingerprint(names []string) string {
	sum := sha256.Sum256([]byte(strings.Join(names, "\x00")))
	return hex.EncodeToString(sum[:8])
}

// normalizeTenant validates the request's tenant id, defaulting empty
// to the shared tenant.
func normalizeTenant(t string) (string, error) {
	if t == "" {
		return DefaultTenant, nil
	}
	if !validTenant(t) {
		return "", invalidf("bad tenant %q (printable ASCII, no spaces/quotes, at most %d chars)",
			t, maxTenantLen)
	}
	return t, nil
}

// Submit validates the instance and either completes a job from the
// cache, attaches it to an identical in-flight run, or enqueues a new
// run under the request's tenant. The returned job is already
// registered and observable.
func (m *Manager) Submit(in *model.Instance, p Params) (*Job, error) {
	return m.submitWarm(in, p, nil, false)
}

// SubmitWarm is Submit with an explicit warm start: warmNames is a
// deployment order over the instance's index names (every index exactly
// once, earliest first) that seeds the solve's incumbent store. The
// warm order enters the solve key, so a warm re-solve never dedupes
// against a cold solve of the same instance; if the seed turns out
// infeasible under the solve's constraint set the run degrades to a
// cold start (recorded as warm_start_rejected) instead of failing.
func (m *Manager) SubmitWarm(in *model.Instance, p Params, warmNames []string) (*Job, error) {
	if len(warmNames) == 0 {
		return nil, invalidf("warm start carries no order")
	}
	return m.submitWarm(in, p, warmNames, false)
}

// submit is Submit with batch admission control: batch items skip the
// per-item rate-limit charge because SubmitBatch already charged the
// whole batch up front.
func (m *Manager) submit(in *model.Instance, p Params, preAdmitted bool) (*Job, error) {
	return m.submitWarm(in, p, nil, preAdmitted)
}

func (m *Manager) submitWarm(in *model.Instance, p Params, warmNames []string, preAdmitted bool) (*Job, error) {
	if in == nil {
		return nil, invalidf("request carries no instance")
	}
	if len(in.Indexes) > m.cfg.MaxIndexes {
		return nil, invalidf("instance has %d indexes, server accepts at most %d",
			len(in.Indexes), m.cfg.MaxIndexes)
	}
	if len(in.Indexes) == 0 {
		return nil, invalidf("instance has no indexes")
	}
	if err := in.Validate(); err != nil {
		return nil, &InvalidError{Err: err}
	}
	if err := backend.CheckNames(p.Backends); err != nil {
		return nil, &InvalidError{Err: err}
	}
	bag, err := backend.ValidateParams(p.Params)
	if err != nil {
		return nil, &InvalidError{Err: err}
	}
	tenant, err := normalizeTenant(p.Tenant)
	if err != nil {
		return nil, err
	}

	canon, perm := codec.Canonicalize(in)
	hash := codec.CanonicalHash(canon)
	structHash := codec.StructuralHash(canon)
	origOf := make([]int, len(perm))
	for i, c := range perm {
		origOf[c] = i
	}
	budget := m.clampBudget(p.Budget)
	key := solveKey(hash, p, bag, budget)

	// An explicit warm order becomes part of the key (two re-solves with
	// different seeds may legitimately diverge on heuristic instances),
	// while hint-derived seeds below keep the cold key: their result is
	// the answer to the cold request too.
	var initial []int
	if warmNames != nil {
		ord, err := canonicalOrder(canon, warmNames)
		if err != nil {
			return nil, &InvalidError{Err: err}
		}
		initial = ord
		key += "|ws=" + orderFingerprint(warmNames)
	}

	j := &Job{
		ID:       m.newID(),
		hash:     hash,
		instName: in.Name,
		tenant:   tenant,
		priority: p.Priority,
		origOf:   origOf,
		state:    StateQueued,
		notify:   make(chan struct{}),
		done:     make(chan struct{}),
		queuedAt: time.Now(),
		trace:    obs.NewTrace(0),
	}
	j.trace.RecordBackend(obs.SpanQueued, "", "tenant="+tenant)
	j.events = append(j.events, Event{Seq: 0, Type: EventQueued})

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if !preAdmitted {
		if err := m.admitTenant(tenant, 1); err != nil {
			m.mu.Unlock()
			m.metrics.jobsRejected.Add(1)
			m.metrics.tenantRejected.With(tenant).Inc()
			return nil, err
		}
	}
	m.metrics.jobsSubmitted.Add(1)
	m.metrics.tenantSubmitted.With(tenant).Inc()

	if res, ok := m.cache.get(key); ok {
		m.jobs[j.ID] = j
		m.mu.Unlock()
		m.metrics.cacheHits.Add(1)
		hit := *res
		hit.Order = j.translate(res.Order)
		hit.CacheHit = true
		j.start(time.Now())
		j.trace.Record(obs.SpanCacheHit)
		if j.finish(StateDone, &hit, nil) {
			m.metrics.jobsCompleted.Add(1)
			m.metrics.tenantCompleted.With(tenant).Inc()
			m.metrics.e2e.ObserveDuration(time.Since(j.queuedAt))
			m.noteFinished(j.ID)
		}
		return j, nil
	}
	m.metrics.cacheMisses.Add(1)

	if r, ok := m.inflight[key]; ok && r.attach(j) {
		// A higher-priority attacher promotes the whole run while it is
		// still queued, so dedup never demotes an urgent request.
		if p.Priority > r.priority && r.index >= 0 {
			r.priority = p.Priority
			m.sched.promote(r)
		}
		m.jobs[j.ID] = j
		m.mu.Unlock()
		m.metrics.attached.Add(1)
		return j, nil
	}

	if m.sched.len() >= m.cfg.QueueCap {
		m.mu.Unlock()
		m.metrics.jobsRejected.Add(1)
		m.metrics.tenantRejected.With(tenant).Inc()
		return nil, ErrQueueFull
	}
	if m.cfg.TenantQueueCap > 0 && m.sched.tenantLen(tenant) >= m.cfg.TenantQueueCap {
		m.mu.Unlock()
		m.metrics.jobsRejected.Add(1)
		m.metrics.tenantRejected.With(tenant).Inc()
		return nil, ErrTenantQueueFull
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	r := &run{
		key: key, hash: hash, canon: canon, params: p, bag: bag, budget: budget,
		structHash: structHash, initial: initial,
		tenant: tenant, priority: p.Priority, seq: m.seq, ctx: ctx, cancel: cancel,
	}
	if r.initial == nil {
		// Delta-aware cache: a full-key miss whose structure matches a
		// previously solved instance (weight/cost drift only) reuses that
		// solve's final order as a warm start instead of starting cold.
		if names, ok := m.hints.get(structHash); ok {
			if ord, err := canonicalOrder(canon, names); err == nil {
				r.initial = ord
				r.warmHint = true
				m.metrics.warmHintHits.Add(1)
			}
		}
	}
	m.seq++
	r.jobs = []*Job{j}
	j.run = r
	m.inflight[key] = r
	m.sched.push(r)
	m.jobs[j.ID] = j
	m.cond.Signal()
	m.mu.Unlock()
	return j, nil
}

// noteFinished records terminal jobs and evicts the oldest beyond the
// retention cap. Only ever called with jobs already in a terminal state.
func (m *Manager) noteFinished(ids ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished = append(m.finished, ids...)
	for len(m.finished) > m.cfg.MaxFinishedJobs {
		delete(m.jobs, m.finished[0])
		m.finished = m.finished[1:]
	}
}

// Get looks a job up by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel aborts a queued or running job. When the last job of a run is
// canceled the underlying solve is canceled too (a queued run is removed
// from the queue; a running one has its context canceled).
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	j.mu.Lock()
	terminal := isTerminal(j.state)
	j.mu.Unlock()
	if terminal {
		m.mu.Unlock()
		return ErrJobDone
	}
	r := j.run
	if r != nil && r.detach(j) {
		// Last interested job gone: abandon the solve.
		r.cancel()
		if m.sched.remove(r) {
			delete(m.inflight, r.key)
		}
	}
	m.mu.Unlock()

	if j.finish(StateCanceled, nil, context.Canceled) {
		m.metrics.jobsCanceled.Add(1)
		m.noteFinished(id)
	}
	return nil
}

// Shutdown drains the manager: no new submissions are accepted, queued
// and running solves continue until done or until ctx expires, at which
// point the base context is canceled and running portfolios return
// their best incumbent immediately. Blocks until all workers exit.
func (m *Manager) Shutdown(ctx context.Context) {
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		m.baseCancel()
		<-finished
	}
}

// worker pops runs under the tenant-fair discipline and executes them
// until drain completes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.sched.len() == 0 && !m.draining {
			m.cond.Wait()
		}
		r := m.sched.pop()
		if r == nil {
			m.mu.Unlock()
			return
		}
		m.running++
		m.mu.Unlock()

		m.execute(r)

		m.mu.Lock()
		m.running--
		// A failed attach may already have replaced this key with a new
		// run; only clear our own entry.
		if m.inflight[r.key] == r {
			delete(m.inflight, r.key)
		}
		m.mu.Unlock()
	}
}

// execute runs one portfolio solve and fans the outcome out to every
// attached job.
func (m *Manager) execute(r *run) {
	defer r.cancel()
	r.mu.Lock()
	r.started = true
	jobs := append([]*Job(nil), r.jobs...)
	r.mu.Unlock()
	if len(jobs) == 0 {
		return // everyone canceled while queued
	}
	if err := r.ctx.Err(); err != nil {
		// Drain timeout hit while this run sat in the queue; release any
		// still-attached waiters.
		for _, j := range r.complete() {
			if j.finish(StateCanceled, nil, err) {
				m.metrics.jobsCanceled.Add(1)
				m.noteFinished(j.ID)
			}
		}
		return
	}
	now := time.Now()
	for _, j := range jobs {
		m.metrics.queueWait.ObserveDuration(now.Sub(j.queuedAt))
		m.metrics.tenantQueueWait.With(j.tenant).ObserveDuration(now.Sub(j.queuedAt))
		j.start(now)
	}

	c, err := model.Compile(r.canon)
	if err != nil {
		// Unreachable for instances that passed Submit validation.
		m.fail(r, err)
		return
	}
	cs := sched.PrecedenceSet(r.canon)
	if r.params.pruneEnabled() {
		cs, _ = prune.Analyze(c, prune.Options{})
	}

	// Warm-start admission: the seed must be feasible under the final
	// constraint set (the pruning analysis may have added precedence
	// edges the prior incumbent never saw — RepairInitial reorders it
	// stably against them). A seed that cannot be repaired degrades the
	// run to a cold start instead of failing the attached jobs.
	initial := r.initial
	warmStarted := false
	if initial != nil {
		repaired, werr := portfolio.RepairInitial(c, cs, initial)
		if werr != nil {
			m.metrics.warmRejected.Add(1)
			r.recordWarm("rejected: " + werr.Error())
			initial = nil
		} else {
			initial = repaired
			warmStarted = true
			m.metrics.warmStarts.Add(1)
			if r.warmHint {
				r.recordWarm("seeded (structural-hash hint)")
			} else {
				r.recordWarm("seeded")
			}
		}
	}

	// Server-wide default params underlay the request's own bag; any key
	// the request sets wins.
	bag := r.bag
	if len(m.cfg.DefaultParams) > 0 {
		bag = m.cfg.DefaultParams.Clone()
		for k, v := range r.bag {
			bag[k] = v
		}
	}
	opts := portfolio.Options{
		Backends:  r.params.Backends,
		Workers:   r.params.Workers,
		Budget:    r.budget,
		StepLimit: r.params.StepLimit,
		Params:    bag,
		Seed:      r.params.Seed,
		Initial:   initial,
		OnProgress: func(ev portfolio.ProgressEvent) {
			r.recordSpan(ev)
			if ev.Kind == portfolio.ProgressBackendStarted {
				// Trace-only: the SSE event set (queued, started,
				// incumbent, backend, proved, done) is a documented
				// wire contract; backend starts live in the trace.
				return
			}
			r.emit(progressToEvent(ev), ev.Order)
		},
	}

	// Cluster hookup: hand the distributor a shared store it can inject
	// remote incumbents into, announce every local improvement for
	// broadcast, and (for reproducible runs only — no step limit) let
	// exact engines export frontier subtrees to idle peers. Single-node
	// mode (nil Distributor) takes none of these branches.
	if m.cfg.Distributor != nil {
		store := portfolio.NewStore(c.N, cs)
		ds := m.cfg.Distributor.SolveStarted(SolveStart{
			Key:         r.key,
			Hash:        r.hash,
			Compiled:    c,
			Constraints: cs,
			Prune:       r.params.pruneEnabled(),
			Canon:       r.canon,
			Store:       store,
			Deadline:    time.Now().Add(r.budget),
		})
		defer ds.Done()
		opts.Store = store
		if r.params.StepLimit == 0 {
			opts.Exporter = ds.Exporter()
		}
		prevImprove := opts.OnImprove
		opts.OnImprove = func(b string, order []int, obj float64) {
			if prevImprove != nil {
				prevImprove(b, order, obj)
			}
			ds.Improved(order, obj)
		}
	}
	// The portfolio enforces its own budget; the outer timeout only
	// reaps a stuck backend, so give it headroom. Each attempt (routed
	// fast path, then the race on fallback) gets its own allowance.
	solveWith := func(f func(context.Context) (portfolio.Result, error)) (portfolio.Result, error) {
		ctx, cancel := context.WithTimeout(r.ctx, r.budget+r.budget/2+2*time.Second)
		defer cancel()
		return f(ctx)
	}

	features := portfolio.FeaturesOf(c, cs)
	start := time.Now()
	var res portfolio.Result
	routed := false
	// Fast path: when the request doesn't pin a backend set and the
	// instance is small, run one applicable exact backend straight to a
	// proof instead of racing the whole portfolio. The proof guarantees
	// the objective is identical to what the race would return; if it
	// doesn't land within budget, fall back to the full race.
	if len(r.params.Backends) == 0 {
		if name, ok := m.router.Route(c, cs); ok {
			res, err = solveWith(func(ctx context.Context) (portfolio.Result, error) {
				return portfolio.SolveSingle(ctx, c, cs, name, opts)
			})
			switch {
			case err == nil && res.Proved:
				routed = true
				m.metrics.fastpathRouted.With(name).Inc()
			case err == nil:
				// Charge the failed attempt to the routed backend so the
				// router explores past it (and eventually stops
				// fast-pathing a class that never proves in budget).
				m.router.Observe(features, name, false, 0)
				m.metrics.fastpathFallback.Add(1)
			}
		}
	}
	if !routed && err == nil {
		res, err = solveWith(func(ctx context.Context) (portfolio.Result, error) {
			return portfolio.Solve(ctx, c, cs, opts)
		})
	}
	wall := time.Since(start)
	if err != nil {
		m.fail(r, err)
		return
	}
	// Both paths teach the router which exact backend proves fastest
	// for this feature class.
	m.router.Observe(features, res.Winner, res.Proved, wall)

	result := &SolveResult{
		Order:       res.Order,
		Objective:   res.Objective,
		Proved:      res.Proved,
		Winner:      res.Winner,
		Routed:      routed,
		WarmStarted: warmStarted,
		Wall:        Duration(wall),
		Backends:    make([]BackendSummary, 0, len(res.Backends)),
	}
	result.Names = make([]string, len(res.Order))
	for k, ix := range res.Order {
		result.Names[k] = r.canon.Indexes[ix].Name
	}
	_, deploy, final := c.Evaluate(res.Order)
	result.DeployTime = deploy
	result.BaseRuntime = c.Base
	result.FinalRuntime = final
	for _, b := range res.Backends {
		bs := BackendSummary{
			Name: b.Name, Proved: b.Proved, Improvements: b.Improvements,
			Iterations: b.Iterations, Workers: b.Workers,
			Wall: Duration(b.Wall), Skipped: b.Skipped,
			Counters: b.Counters,
		}
		if !math.IsInf(b.Objective, 1) {
			bs.Objective = fptr(b.Objective)
		}
		if b.Err != nil {
			bs.Error = b.Err.Error()
		}
		result.Backends = append(result.Backends, bs)
	}

	// Cache the result unless the solve was cut short externally
	// (cancellation or drain timeout) without reaching a proof — a
	// truncated incumbent under-serves future identical requests.
	if r.ctx.Err() == nil || res.Proved {
		m.cache.put(r.key, result)
		if m.cfg.Distributor != nil {
			// Replicate the canonical-space result so the identical
			// request is a cache hit on every peer.
			m.cfg.Distributor.ResultCached(r.key, result)
		}
	}
	// Any finished order — even a truncated incumbent — is a useful warm
	// seed for the next structurally identical request.
	if len(result.Names) > 0 {
		m.hints.put(r.structHash, result.Names)
	}
	m.metrics.recordSolve(res.Winner, res.Proved, wall)

	finalJobs := r.complete()
	shared := len(finalJobs) > 1
	for _, j := range finalJobs {
		jr := *result
		jr.Order = j.translate(result.Order)
		jr.Shared = shared
		if j.finish(StateDone, &jr, nil) {
			m.metrics.jobsCompleted.Add(1)
			m.metrics.tenantCompleted.With(j.tenant).Inc()
			m.metrics.e2e.ObserveDuration(time.Since(j.queuedAt))
			m.noteFinished(j.ID)
		}
	}
}

func (m *Manager) fail(r *run, err error) {
	for _, j := range r.complete() {
		if j.finish(StateFailed, nil, err) {
			m.metrics.jobsFailed.Add(1)
			m.noteFinished(j.ID)
		}
	}
}

// progressToEvent maps a portfolio progress event onto the wire event
// (order translation happens per job in run.emit).
func progressToEvent(ev portfolio.ProgressEvent) Event {
	out := Event{Backend: ev.Backend}
	switch ev.Kind {
	case portfolio.ProgressImproved:
		out.Type = EventIncumbent
		out.Objective = fptr(ev.Objective)
	case portfolio.ProgressProved:
		out.Type = EventProved
		out.Objective = fptr(ev.Objective)
	case portfolio.ProgressBackendDone:
		out.Type = EventBackend
		out.Skipped = ev.Skipped
		out.Iterations = ev.Iterations
		out.Wall = Duration(ev.Wall)
		if !math.IsInf(ev.Objective, 1) {
			out.Objective = fptr(ev.Objective)
		}
		if ev.Err != nil {
			out.Error = ev.Err.Error()
		}
	default:
		out.Type = ev.Kind.String()
	}
	return out
}
