package service

import (
	"time"

	"github.com/evolving-olap/idd/internal/obs"
	"github.com/evolving-olap/idd/internal/solver/portfolio"
)

// solveRateWindow is the sliding window behind solves.per_second: long
// enough to smooth bursts, short enough that an idle-then-busy server
// reports its current rate instead of a lifetime average.
const solveRateWindow = time.Minute

// Metrics aggregates service-wide instruments on a per-Manager
// obs.Registry (not the process default, so several managers — e.g.
// test servers — never collide on metric names). Counters and
// histograms are lock-free on the hot path; the registry renders both
// the JSON snapshot and the Prometheus text format of GET /metrics.
type Metrics struct {
	start time.Time
	reg   *obs.Registry

	jobsSubmitted *obs.Counter
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	jobsCanceled  *obs.Counter
	jobsRejected  *obs.Counter // queue-full 429s

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	attached    *obs.Counter // single-flight joins

	solves       *obs.Counter // underlying portfolio runs executed
	solvesProved *obs.Counter
	wins         *obs.CounterVec
	rate         *obs.RateWindow

	// fastpathRouted counts solves the feature router sent straight to
	// one exact backend (by backend); fastpathFallback counts routed
	// attempts that failed to prove and fell back to the full race.
	fastpathRouted   *obs.CounterVec
	fastpathFallback *obs.Counter

	batchesSubmitted *obs.Counter
	batchItems       *obs.Counter

	// Warm-start accounting: warmStarts counts solves seeded with a
	// prior incumbent, warmRejected seeds found infeasible (the run
	// degraded to a cold start), warmHintHits full-key cache misses
	// rescued by the structural-hash hint table.
	warmStarts   *obs.Counter
	warmRejected *obs.Counter
	warmHintHits *obs.Counter

	sessionsCreated *obs.Counter
	sessionDeltas   *obs.Counter

	// Per-tenant accounting, labeled by tenant id.
	tenantSubmitted *obs.CounterVec
	tenantCompleted *obs.CounterVec
	tenantRejected  *obs.CounterVec
	tenantQueueWait *obs.HistogramVec

	// queueWait: submission → solve start, for executed runs.
	// solveWall: the portfolio solve itself.
	// e2e: submission → terminal done, for every completed job
	// (cache hits included — their near-zero latency is the point).
	queueWait *obs.Histogram
	solveWall *obs.Histogram
	e2e       *obs.Histogram
}

func newMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		start: time.Now(),
		reg:   reg,

		jobsSubmitted: reg.Counter("idd_jobs_submitted_total", "Jobs accepted by Submit."),
		jobsCompleted: reg.Counter("idd_jobs_completed_total", "Jobs finished with a result."),
		jobsFailed:    reg.Counter("idd_jobs_failed_total", "Jobs finished with an error."),
		jobsCanceled:  reg.Counter("idd_jobs_canceled_total", "Jobs canceled before completion."),
		jobsRejected:  reg.Counter("idd_jobs_rejected_total", "Submissions rejected because the queue was full."),

		cacheHits:   reg.Counter("idd_cache_hits_total", "Jobs answered from the solution cache."),
		cacheMisses: reg.Counter("idd_cache_misses_total", "Submissions that missed the solution cache."),
		attached:    reg.Counter("idd_singleflight_attached_total", "Jobs that joined an identical in-flight solve."),

		solves:       reg.Counter("idd_solves_total", "Underlying portfolio solves executed."),
		solvesProved: reg.Counter("idd_solves_proved_total", "Solves that ended with an optimality proof."),
		wins:         reg.CounterVec("idd_backend_wins_total", "Winning solves by backend.", "backend"),
		rate:         obs.NewRateWindow(0, solveRateWindow),

		fastpathRouted:   reg.CounterVec("idd_fastpath_routed_total", "Solves served by the fast-path router, by exact backend.", "backend"),
		fastpathFallback: reg.Counter("idd_fastpath_fallback_total", "Routed solves that failed to prove and fell back to the portfolio race."),

		batchesSubmitted: reg.Counter("idd_batches_submitted_total", "Batch requests accepted."),
		batchItems:       reg.Counter("idd_batch_items_total", "Instances submitted through batch requests."),

		warmStarts:   reg.Counter("idd_warm_starts_total", "Solves seeded with a prior incumbent order."),
		warmRejected: reg.Counter("idd_warm_start_rejected_total", "Warm-start seeds rejected as infeasible; the solve degraded to a cold start."),
		warmHintHits: reg.Counter("idd_warm_hint_hits_total", "Cache misses rescued by the structural-hash warm-hint table."),

		sessionsCreated: reg.Counter("idd_sessions_created_total", "Re-solve sessions created."),
		sessionDeltas:   reg.Counter("idd_session_deltas_total", "Workload deltas applied to re-solve sessions."),

		tenantSubmitted: reg.CounterVec("idd_tenant_jobs_submitted_total", "Jobs accepted, by tenant.", "tenant"),
		tenantCompleted: reg.CounterVec("idd_tenant_jobs_completed_total", "Jobs finished with a result, by tenant.", "tenant"),
		tenantRejected:  reg.CounterVec("idd_tenant_jobs_rejected_total", "Submissions rejected (rate limit, quota or full queue), by tenant.", "tenant"),
		tenantQueueWait: reg.HistogramVec("idd_tenant_queue_wait_seconds", "Time from submission to solve start, by tenant.", "tenant", nil),

		queueWait: reg.Histogram("idd_queue_wait_seconds", "Time from submission to solve start.", nil),
		solveWall: reg.Histogram("idd_solve_wall_seconds", "Wall-clock time of the portfolio solve.", nil),
		e2e:       reg.Histogram("idd_request_duration_seconds", "Time from submission to job completion.", nil),
	}
	return m
}

// bindGauges registers the render-time gauges that read live Manager
// state. Called once from NewManager, after the cache exists; the
// closures lock mgr.mu, so no caller may render while holding it.
func (m *Metrics) bindGauges(mgr *Manager) {
	m.reg.GaugeFunc("idd_uptime_seconds", "Seconds since the manager started.",
		func() float64 { return time.Since(m.start).Seconds() })
	m.reg.GaugeFunc("idd_workers", "Size of the solve worker pool.",
		func() float64 { return float64(mgr.cfg.Workers) })
	m.reg.GaugeFunc("idd_queue_depth", "Runs queued but not yet executing.",
		func() float64 {
			mgr.mu.Lock()
			defer mgr.mu.Unlock()
			return float64(mgr.sched.len())
		})
	m.reg.GaugeFunc("idd_jobs_running", "Runs currently executing.",
		func() float64 {
			mgr.mu.Lock()
			defer mgr.mu.Unlock()
			return float64(mgr.running)
		})
	m.reg.GaugeFunc("idd_cache_entries", "Entries in the solution cache.",
		func() float64 { return float64(mgr.cache.len()) })
}

func (m *Metrics) recordSolve(winner string, proved bool, wall time.Duration) {
	m.solves.Inc()
	m.rate.Mark(time.Now())
	m.solveWall.ObserveDuration(wall)
	if proved {
		m.solvesProved.Inc()
	}
	if winner != "" {
		m.wins.With(winner).Inc()
	}
}

// LatencySummary is the JSON digest of one latency histogram. The
// quantiles are estimated from the fixed exposition buckets (the same
// numbers a PromQL histogram_quantile over the text format would give).
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func summarize(h *obs.Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanMS: h.Mean() * 1e3,
		P50MS:  h.Quantile(0.50) * 1e3,
		P95MS:  h.Quantile(0.95) * 1e3,
		P99MS:  h.Quantile(0.99) * 1e3,
	}
}

// MetricsSnapshot is the JSON wire form of GET /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	Running       int     `json:"running"`

	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Canceled  int64 `json:"canceled"`
		Rejected  int64 `json:"rejected_queue_full"`
	} `json:"jobs"`

	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Size    int     `json:"size"`
		Cap     int     `json:"cap"`
	} `json:"cache"`

	// SingleFlightAttached counts jobs that joined an identical
	// in-flight solve instead of spawning their own.
	SingleFlightAttached int64 `json:"singleflight_attached"`

	// Tenants is per-tenant accounting: submissions, completions,
	// rejections and current queue depth (Prometheus carries the same
	// series as idd_tenant_* with a tenant label, plus queue-wait
	// histograms).
	Tenants map[string]TenantSnapshot `json:"tenants,omitempty"`

	FastPath struct {
		// Routed counts solves the feature router served with a single
		// exact backend; Fallback counts routed attempts that had to
		// rerun as a full race. ByBackend splits Routed by backend and
		// Telemetry is the router's learned per-class proof-speed table.
		Routed    int64                 `json:"routed"`
		Fallback  int64                 `json:"fallback"`
		ByBackend map[string]int64      `json:"by_backend,omitempty"`
		Telemetry []portfolio.RouteStat `json:"telemetry,omitempty"`
	} `json:"fastpath"`

	Batches struct {
		Submitted int64 `json:"submitted"`
		Items     int64 `json:"items"`
	} `json:"batches"`

	// WarmStarts is warm-start admission accounting: Seeded solves ran
	// from a prior incumbent, Rejected seeds were infeasible under the
	// new instance (those solves degraded to cold starts), HintHits are
	// cache misses rescued by the structural-hash hint table.
	WarmStarts struct {
		Seeded   int64 `json:"seeded"`
		Rejected int64 `json:"rejected"`
		HintHits int64 `json:"hint_hits"`
	} `json:"warm_starts"`

	Sessions struct {
		Created int64 `json:"created"`
		Deltas  int64 `json:"deltas"`
	} `json:"sessions"`

	Solves struct {
		Count  int64 `json:"count"`
		Proved int64 `json:"proved"`
		// PerSecond is the solve rate over the last minute (sliding
		// window), not a lifetime average — an idle-then-busy server
		// reports its current rate.
		PerSecond   float64          `json:"per_second"`
		AvgWallMS   float64          `json:"avg_wall_ms"`
		BackendWins map[string]int64 `json:"backend_wins"`
	} `json:"solves"`

	Latency struct {
		QueueWait LatencySummary `json:"queue_wait"`
		SolveWall LatencySummary `json:"solve_wall"`
		E2E       LatencySummary `json:"e2e"`
	} `json:"latency"`
}

// TenantSnapshot is one tenant's row in the JSON metrics snapshot.
type TenantSnapshot struct {
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Rejected   int64 `json:"rejected,omitempty"`
	QueueDepth int   `json:"queue_depth,omitempty"`
}

func (m *Metrics) snapshot(workers, queueDepth, queueCap, running, cacheSize, cacheCap int,
	tenantDepths map[string]int, routes []portfolio.RouteStat) MetricsSnapshot {
	var s MetricsSnapshot
	s.UptimeSeconds = time.Since(m.start).Seconds()
	s.Workers = workers
	s.QueueDepth = queueDepth
	s.QueueCap = queueCap
	s.Running = running

	s.Jobs.Submitted = m.jobsSubmitted.Value()
	s.Jobs.Completed = m.jobsCompleted.Value()
	s.Jobs.Failed = m.jobsFailed.Value()
	s.Jobs.Canceled = m.jobsCanceled.Value()
	s.Jobs.Rejected = m.jobsRejected.Value()

	s.Cache.Hits = m.cacheHits.Value()
	s.Cache.Misses = m.cacheMisses.Value()
	if total := s.Cache.Hits + s.Cache.Misses; total > 0 {
		s.Cache.HitRate = float64(s.Cache.Hits) / float64(total)
	}
	s.Cache.Size = cacheSize
	s.Cache.Cap = cacheCap

	s.SingleFlightAttached = m.attached.Value()

	sub := m.tenantSubmitted.Snapshot()
	comp := m.tenantCompleted.Snapshot()
	rej := m.tenantRejected.Snapshot()
	if len(sub) > 0 || len(rej) > 0 || len(tenantDepths) > 0 {
		s.Tenants = make(map[string]TenantSnapshot)
		for tenant := range sub {
			row := s.Tenants[tenant]
			row.Submitted = sub[tenant]
			s.Tenants[tenant] = row
		}
		for tenant := range comp {
			row := s.Tenants[tenant]
			row.Completed = comp[tenant]
			s.Tenants[tenant] = row
		}
		for tenant := range rej {
			row := s.Tenants[tenant]
			row.Rejected = rej[tenant]
			s.Tenants[tenant] = row
		}
		for tenant, depth := range tenantDepths {
			row := s.Tenants[tenant]
			row.QueueDepth = depth
			s.Tenants[tenant] = row
		}
	}

	s.FastPath.ByBackend = m.fastpathRouted.Snapshot()
	for _, n := range s.FastPath.ByBackend {
		s.FastPath.Routed += n
	}
	s.FastPath.Fallback = m.fastpathFallback.Value()
	s.FastPath.Telemetry = routes

	s.Batches.Submitted = m.batchesSubmitted.Value()
	s.Batches.Items = m.batchItems.Value()

	s.WarmStarts.Seeded = m.warmStarts.Value()
	s.WarmStarts.Rejected = m.warmRejected.Value()
	s.WarmStarts.HintHits = m.warmHintHits.Value()

	s.Sessions.Created = m.sessionsCreated.Value()
	s.Sessions.Deltas = m.sessionDeltas.Value()

	s.Solves.Count = m.solves.Value()
	s.Solves.Proved = m.solvesProved.Value()
	s.Solves.PerSecond = m.rate.Rate(time.Now())
	if s.Solves.Count > 0 {
		s.Solves.AvgWallMS = m.solveWall.Mean() * 1e3
	}
	s.Solves.BackendWins = m.wins.Snapshot()

	s.Latency.QueueWait = summarize(m.queueWait)
	s.Latency.SolveWall = summarize(m.solveWall)
	s.Latency.E2E = summarize(m.e2e)
	return s
}
