package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates service-wide counters. Hot-path counters are
// atomics; the per-backend win map takes a small mutex on solve
// completion only.
type Metrics struct {
	start time.Time

	jobsSubmitted atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	jobsRejected  atomic.Int64 // queue-full 429s

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	attached    atomic.Int64 // single-flight joins

	solves       atomic.Int64 // underlying portfolio runs executed
	solvesProved atomic.Int64
	solveWallNS  atomic.Int64

	mu   sync.Mutex
	wins map[string]int64
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now(), wins: make(map[string]int64)}
}

func (m *Metrics) recordSolve(winner string, proved bool, wall time.Duration) {
	m.solves.Add(1)
	if proved {
		m.solvesProved.Add(1)
	}
	m.solveWallNS.Add(int64(wall))
	if winner != "" {
		m.mu.Lock()
		m.wins[winner]++
		m.mu.Unlock()
	}
}

// MetricsSnapshot is the wire form of GET /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	Running       int     `json:"running"`

	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Canceled  int64 `json:"canceled"`
		Rejected  int64 `json:"rejected_queue_full"`
	} `json:"jobs"`

	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Size    int     `json:"size"`
		Cap     int     `json:"cap"`
	} `json:"cache"`

	// SingleFlightAttached counts jobs that joined an identical
	// in-flight solve instead of spawning their own.
	SingleFlightAttached int64 `json:"singleflight_attached"`

	Solves struct {
		Count       int64            `json:"count"`
		Proved      int64            `json:"proved"`
		PerSecond   float64          `json:"per_second"`
		AvgWallMS   float64          `json:"avg_wall_ms"`
		BackendWins map[string]int64 `json:"backend_wins"`
	} `json:"solves"`
}

func (m *Metrics) snapshot(workers, queueDepth, queueCap, running, cacheSize, cacheCap int) MetricsSnapshot {
	var s MetricsSnapshot
	up := time.Since(m.start)
	s.UptimeSeconds = up.Seconds()
	s.Workers = workers
	s.QueueDepth = queueDepth
	s.QueueCap = queueCap
	s.Running = running

	s.Jobs.Submitted = m.jobsSubmitted.Load()
	s.Jobs.Completed = m.jobsCompleted.Load()
	s.Jobs.Failed = m.jobsFailed.Load()
	s.Jobs.Canceled = m.jobsCanceled.Load()
	s.Jobs.Rejected = m.jobsRejected.Load()

	s.Cache.Hits = m.cacheHits.Load()
	s.Cache.Misses = m.cacheMisses.Load()
	if total := s.Cache.Hits + s.Cache.Misses; total > 0 {
		s.Cache.HitRate = float64(s.Cache.Hits) / float64(total)
	}
	s.Cache.Size = cacheSize
	s.Cache.Cap = cacheCap

	s.SingleFlightAttached = m.attached.Load()

	s.Solves.Count = m.solves.Load()
	s.Solves.Proved = m.solvesProved.Load()
	if up > 0 {
		s.Solves.PerSecond = float64(s.Solves.Count) / up.Seconds()
	}
	if s.Solves.Count > 0 {
		s.Solves.AvgWallMS = float64(m.solveWallNS.Load()) / float64(s.Solves.Count) / 1e6
	}
	s.Solves.BackendWins = make(map[string]int64)
	m.mu.Lock()
	for k, v := range m.wins {
		s.Solves.BackendWins[k] = v
	}
	m.mu.Unlock()
	return s
}
