package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/obs"
)

// TestTraceReplaysIncumbents is the flight-recorder acceptance check: a
// completed job's trace must replay the exact incumbent sequence the
// SSE stream reported (same objectives, same order), bracketed by
// queued/started at the front and proved/done at the back, and include
// the backend-start spans the SSE wire format deliberately omits.
func TestTraceReplaysIncumbents(t *testing.T) {
	in := trapInstance(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/jobs", solveRequest{
		Instance: in,
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)},
	})
	st := decode[JobStatus](t, resp)

	stream, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	events := readSSE(t, stream.Body) // returns at terminal event

	var sseObjectives []float64
	for _, ev := range events {
		if ev.event == EventIncumbent {
			sseObjectives = append(sseObjectives, *ev.data.Objective)
		}
	}
	if len(sseObjectives) == 0 {
		t.Fatal("trap instance produced no incumbent events")
	}

	tresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr := decode[JobTrace](t, tresp)
	if tr.ID != st.ID || tr.State != StateDone {
		t.Fatalf("trace header: %+v", tr)
	}
	if tr.Dropped != 0 {
		t.Fatalf("short solve dropped %d spans", tr.Dropped)
	}
	if len(tr.Spans) < 5 {
		t.Fatalf("only %d spans: %+v", len(tr.Spans), tr.Spans)
	}
	if tr.Spans[0].Kind != obs.SpanQueued || tr.Spans[1].Kind != obs.SpanStarted {
		t.Fatalf("trace does not open with queued+started: %+v", tr.Spans[:2])
	}
	last := tr.Spans[len(tr.Spans)-1]
	if last.Kind != obs.SpanDone || last.Objective == nil || last.Detail != StateDone {
		t.Fatalf("terminal span %+v", last)
	}

	var traceObjectives []float64
	sawBackendStart, sawProved := false, false
	prevSeq, prevElapsed := 0, -1.0
	for _, sp := range tr.Spans {
		if sp.Seq <= prevSeq {
			t.Fatalf("span seq not increasing: %d after %d", sp.Seq, prevSeq)
		}
		if sp.ElapsedMS < prevElapsed {
			t.Fatalf("span time went backwards: %v after %v", sp.ElapsedMS, prevElapsed)
		}
		prevSeq, prevElapsed = sp.Seq, sp.ElapsedMS
		switch sp.Kind {
		case obs.SpanBackendStart:
			if sp.Backend == "" {
				t.Fatal("backend-start span without backend")
			}
			sawBackendStart = true
		case obs.SpanIncumbent:
			if sp.Objective == nil {
				t.Fatal("incumbent span without objective")
			}
			traceObjectives = append(traceObjectives, *sp.Objective)
		case obs.SpanProved:
			sawProved = true
		}
	}
	if !sawBackendStart {
		t.Fatal("trace has no backend-start span (SSE omits these; the trace must not)")
	}
	if !sawProved {
		t.Fatal("trace has no proved span")
	}
	if len(traceObjectives) != len(sseObjectives) {
		t.Fatalf("trace has %d incumbents, SSE reported %d", len(traceObjectives), len(sseObjectives))
	}
	for k := range traceObjectives {
		if traceObjectives[k] != sseObjectives[k] {
			t.Fatalf("incumbent %d: trace %v != SSE %v", k, traceObjectives[k], sseObjectives[k])
		}
	}
}

// TestTraceCacheHit: a job answered from the cache still gets a
// coherent (if short) trace: queued → started → cache-hit → done.
func TestTraceCacheHit(t *testing.T) {
	in := trapInstance(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	p := Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)}

	first := decode[JobStatus](t, postJSON(t, ts.URL+"/jobs", solveRequest{Instance: in, Params: p}))
	waitState(t, ts.URL, first.ID, StateDone, 15*time.Second)
	second := decode[JobStatus](t, postJSON(t, ts.URL+"/jobs", solveRequest{Instance: in, Params: p}))

	tresp, err := http.Get(ts.URL + "/jobs/" + second.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr := decode[JobTrace](t, tresp)
	var kinds []string
	for _, sp := range tr.Spans {
		kinds = append(kinds, sp.Kind)
	}
	want := []string{obs.SpanQueued, obs.SpanStarted, obs.SpanCacheHit, obs.SpanDone}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("cache-hit trace %v, want %v", kinds, want)
	}
}

func TestTraceUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsPrometheusText: /metrics speaks the Prometheus text
// exposition format on request, the output survives the strict lint,
// and the latency histograms actually saw the solve.
func TestMetricsPrometheusText(t *testing.T) {
	in := trapInstance(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/solve", solveRequest{
		Instance: in,
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)},
	})
	decode[SolveResult](t, resp)

	for _, fetch := range []struct {
		name string
		do   func() (*http.Response, error)
	}{
		{"query param", func() (*http.Response, error) {
			return http.Get(ts.URL + "/metrics?format=prometheus")
		}},
		{"accept header", func() (*http.Response, error) {
			req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
			req.Header.Set("Accept", "text/plain;version=0.0.4")
			return http.DefaultClient.Do(req)
		}},
	} {
		mresp, err := fetch.do()
		if err != nil {
			t.Fatal(err)
		}
		if ct := mresp.Header.Get("Content-Type"); ct != obs.TextContentType {
			t.Fatalf("%s: Content-Type = %q", fetch.name, ct)
		}
		body, err := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		text := string(body)
		if err := obs.LintExposition(text); err != nil {
			t.Fatalf("%s: exposition lint: %v\n---\n%s", fetch.name, err, text)
		}
		for _, want := range []string{
			"# TYPE idd_queue_wait_seconds histogram",
			"# TYPE idd_solve_wall_seconds histogram",
			"# TYPE idd_request_duration_seconds histogram",
			"idd_solves_total 1",
			"idd_jobs_completed_total 1",
			`idd_backend_wins_total{backend="cp"} 1`,
			`idd_solve_wall_seconds_bucket{le="+Inf"} 1`,
		} {
			if !strings.Contains(text, want+"\n") {
				t.Errorf("%s: exposition missing %q", fetch.name, want)
			}
		}
	}

	// Default (no Accept preference) stays JSON, with the new latency
	// summaries filled in.
	jresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("JSON Content-Type = %q", ct)
	}
	mt := decode[MetricsSnapshot](t, jresp)
	if mt.Solves.Count != 1 || mt.Latency.SolveWall.Count != 1 ||
		mt.Latency.QueueWait.Count != 1 || mt.Latency.E2E.Count != 1 {
		t.Fatalf("latency summaries not recorded: %+v", mt.Latency)
	}
	if mt.Latency.E2E.P99MS <= 0 {
		t.Fatalf("e2e p99 = %v, want > 0", mt.Latency.E2E.P99MS)
	}
	// One solve within the last minute: the sliding-window rate is
	// 1/uptime, strictly positive.
	if mt.Solves.PerSecond <= 0 {
		t.Fatalf("per_second = %v, want > 0", mt.Solves.PerSecond)
	}
}

// TestBackendCountersSurfaced: the CP engine's prune-cause counters ride
// through the portfolio into the job result's backend summaries and sum
// to the engine's total fail count.
func TestBackendCountersSurfaced(t *testing.T) {
	in := trapInstance(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/solve", solveRequest{
		Instance: in,
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)},
	})
	res := decode[SolveResult](t, resp)
	var cp *BackendSummary
	for k := range res.Backends {
		if res.Backends[k].Name == "cp" {
			cp = &res.Backends[k]
		}
	}
	if cp == nil {
		t.Fatalf("no cp summary in %+v", res.Backends)
	}
	c := cp.Counters
	if c == nil {
		t.Fatal("cp summary has no counters")
	}
	if c["nodes"] <= 0 {
		t.Fatalf("counters = %v, want nodes > 0", c)
	}
	if got := c["pruned_incumbent"] + c["pruned_tail"] + c["infeasible"]; got != c["fails"] {
		t.Fatalf("prune causes sum to %d, fails = %d (counters %v)", got, c["fails"], c)
	}
}
