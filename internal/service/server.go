package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/obs"
	"github.com/evolving-olap/idd/internal/solver/backend"
)

// Server wires the job manager into HTTP handlers.
type Server struct {
	cfg Config
	m   *Manager
	mux *http.ServeMux
}

// New builds a server and starts its manager's worker pool.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), m: NewManager(cfg)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("POST /batch", s.handleBatchSubmit)
	mux.HandleFunc("GET /batch/{id}", s.handleBatchGet)
	mux.HandleFunc("DELETE /batch/{id}", s.handleBatchCancel)
	mux.HandleFunc("GET /batch/{id}/events", s.handleBatchEvents)
	mux.HandleFunc("GET /batch/{id}/trace", s.handleBatchTrace)
	mux.HandleFunc("POST /sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("POST /sessions/{id}/delta", s.handleSessionDelta)
	mux.HandleFunc("GET /sessions/{id}/events", s.handleSessionEvents)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionClose)
	mux.HandleFunc("GET /solvers", s.handleSolvers)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the underlying job manager (used by tests and by
// embedders that submit jobs in-process).
func (s *Server) Manager() *Manager { return s.m }

// Shutdown drains the manager (see Manager.Shutdown).
func (s *Server) Shutdown(ctx context.Context) {
	s.m.Shutdown(ctx)
}

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// writeErr maps manager errors onto HTTP status codes.
func writeErr(w http.ResponseWriter, err error) {
	var inv *InvalidError
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &inv):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: inv.Error()})
	case errors.As(err, &tooBig):
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQueueFull),
		errors.Is(err, ErrRateLimited):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrUnknownJob), errors.Is(err, ErrUnknownBatch),
		errors.Is(err, ErrUnknownSession):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrJobDone), errors.Is(err, ErrSessionClosed),
		errors.Is(err, ErrSessionBusy):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case errors.Is(err, ErrTooManySessions):
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// parseRequest reads an instance plus solve parameters from the request.
// Three body shapes are accepted: the JSON envelope
// {"instance": ..., "budget": ...}, a bare JSON instance, and the
// compact text matrix format. For the latter two the solve knobs come
// from the URL query (budget, backends, workers, seed, step_limit,
// priority, prune, and repeated param=key=value entries).
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*model.Instance, Params, error) {
	var p Params
	limited := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer limited.Close()
	body, err := io.ReadAll(limited)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, p, err
		}
		return nil, p, invalidf("read request: %v", err)
	}

	// Decide by Content-Type when it names JSON, else by sniffing: both
	// JSON shapes start with '{', the text matrix format never does.
	// (Sniffing matters because curl --data-binary defaults to
	// application/x-www-form-urlencoded.)
	isJSON := strings.Contains(r.Header.Get("Content-Type"), "json")
	if !isJSON {
		trimmed := strings.TrimLeftFunc(string(body), func(c rune) bool {
			return c == ' ' || c == '\t' || c == '\r' || c == '\n'
		})
		isJSON = strings.HasPrefix(trimmed, "{")
	}

	if isJSON {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var req solveRequest
		if envErr := dec.Decode(&req); envErr == nil && req.Instance != nil {
			return req.Instance, req.Params, nil
		}
		// Not an envelope — try a bare instance with query-string knobs.
		bare, bareErr := codec.ReadJSON(bytes.NewReader(body))
		if bareErr != nil {
			return nil, p, invalidf("parse request (neither {\"instance\": ...} envelope nor instance JSON): %v", bareErr)
		}
		if p, err = queryParams(r); err != nil {
			return nil, p, err
		}
		return bare, p, nil
	}

	in, err := codec.ReadText(bytes.NewReader(body))
	if err != nil {
		return nil, p, &InvalidError{Err: err}
	}
	if p, err = queryParams(r); err != nil {
		return nil, p, err
	}
	return in, p, nil
}

// queryParams parses solve parameters from the URL query.
func queryParams(r *http.Request) (Params, error) {
	var p Params
	q := r.URL.Query()
	if v := q.Get("budget"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return p, invalidf("bad budget %q: %v", v, err)
		}
		p.Budget = Duration(d)
	}
	if v := q.Get("backends"); v != "" {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				p.Backends = append(p.Backends, name)
			}
		}
	}
	for _, f := range []struct {
		key string
		dst *int64
	}{{"seed", &p.Seed}, {"step_limit", &p.StepLimit}} {
		if v := q.Get(f.key); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return p, invalidf("bad %s %q", f.key, v)
			}
			*f.dst = n
		}
	}
	for _, f := range []struct {
		key string
		dst *int
	}{{"workers", &p.Workers}, {"priority", &p.Priority}} {
		if v := q.Get(f.key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return p, invalidf("bad %s %q", f.key, v)
			}
			*f.dst = n
		}
	}
	if v := q.Get("prune"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return p, invalidf("bad prune %q", v)
		}
		p.Prune = &b
	}
	if v := q.Get("tenant"); v != "" {
		p.Tenant = v
	}
	// Repeated ?param=key=value entries mirror the JSON "params" map
	// (full validation happens in Submit; parsing here only needs the
	// spec's type to build the typed value).
	if kvs := q["param"]; len(kvs) > 0 {
		bag, err := backend.ParseParams(kvs)
		if err != nil {
			return p, &InvalidError{Err: err}
		}
		p.Params = bag
	}
	return p, nil
}

// TenantHeader carries the tenant id on HTTP requests; it overrides
// the body's "tenant" field and the ?tenant= query knob.
const TenantHeader = "X-Tenant"

// applyTenant resolves the request's tenant id: header > body/query.
func applyTenant(r *http.Request, p *Params) {
	if v := r.Header.Get(TenantHeader); v != "" {
		p.Tenant = v
	}
}

// handleSolve is the synchronous endpoint: submit, wait, respond with
// the result. Client disconnection cancels the job like DELETE would.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	in, p, err := s.parseRequest(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	applyTenant(r, &p)
	j, err := s.m.Submit(in, p)
	if err != nil {
		writeErr(w, err)
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		_ = s.m.Cancel(j.ID)
		<-j.Done()
	}
	st := j.Status()
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, st.Result)
	case StateCanceled:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "solve canceled: " + st.Error})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: st.Error})
	}
}

// handleSubmit is the asynchronous endpoint: 202 with the job status
// (200 when the cache already had the answer).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	in, p, err := s.parseRequest(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	applyTenant(r, &p)
	j, err := s.m.Submit(in, p)
	if err != nil {
		writeErr(w, err)
		return
	}
	st := j.Status()
	w.Header().Set("Location", "/jobs/"+j.ID)
	code := http.StatusAccepted
	if isTerminal(st.State) {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Hold the job before cancelling: retention eviction may drop it from
	// the map the instant it turns terminal.
	j, ok := s.m.Get(id)
	if !ok {
		writeErr(w, ErrUnknownJob)
		return
	}
	if err := s.m.Cancel(id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// JobTrace is the wire form of GET /jobs/{id}/trace: the job's
// flight-recorder snapshot plus enough identity to read it standalone.
type JobTrace struct {
	ID    string `json:"id"`
	State string `json:"state"`
	obs.TraceSnapshot
}

// handleJobTrace returns the job's flight-recorder trace: every span
// from queued to done, including per-backend starts (which the SSE
// stream omits) and every incumbent improvement with its objective.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, JobTrace{
		ID:            j.ID,
		State:         j.Status().State,
		TraceSnapshot: j.TraceSnapshot(),
	})
}

// handleJobEvents streams the job's progress as server-sent events:
// replayed from the beginning (or from Last-Event-ID / ?from=<seq>),
// then live until the terminal done event closes the stream.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrUnknownJob)
		return
	}
	streamEvents(w, r, j)
}

// streamEvents is the SSE loop shared by job and batch streams: replay
// from the beginning (or from Last-Event-ID / ?from=<seq>), then live
// until the source turns terminal.
func streamEvents(w http.ResponseWriter, r *http.Request, src eventSource) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "response writer cannot stream"})
		return
	}
	cursor := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			cursor = n + 1
		}
	}
	if v := r.URL.Query().Get("from"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			cursor = n
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		evs, terminal, notify := src.eventsSince(cursor)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
		}
		if len(evs) > 0 {
			cursor = evs[len(evs)-1].Seq + 1
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// batchRequest is the JSON envelope accepted by POST /batch: N
// instances sharing one set of solve knobs (tenant included).
type batchRequest struct {
	Instances []*model.Instance `json:"instances"`
	Params
}

// handleBatchSubmit accepts a batch, fans it out and answers 202 with
// the batch status (200 when every item finished at submission — all
// cache hits or all rejected).
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	limited := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer limited.Close()
	dec := json.NewDecoder(limited)
	dec.DisallowUnknownFields()
	var req batchRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, err)
			return
		}
		writeErr(w, invalidf("parse batch request: %v", err))
		return
	}
	applyTenant(r, &req.Params)
	b, err := s.m.SubmitBatch(req.Instances, req.Params)
	if err != nil {
		writeErr(w, err)
		return
	}
	st := b.Status()
	w.Header().Set("Location", "/batch/"+b.ID)
	code := http.StatusAccepted
	if st.State == "done" {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	b, ok := s.m.GetBatch(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrUnknownBatch)
		return
	}
	writeJSON(w, http.StatusOK, b.Status())
}

// handleBatchCancel aborts every outstanding item and returns the
// resulting batch status.
func (s *Server) handleBatchCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, ok := s.m.GetBatch(id)
	if !ok {
		writeErr(w, ErrUnknownBatch)
		return
	}
	if err := s.m.CancelBatch(id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, b.Status())
}

// handleBatchEvents streams per-item completions as server-sent events
// over the same replayable protocol as job streams.
func (s *Server) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	b, ok := s.m.GetBatch(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrUnknownBatch)
		return
	}
	streamEvents(w, r, b)
}

// BatchTrace is the wire form of GET /batch/{id}/trace: one
// flight-recorder timeline per sub-solve, index-aligned with the
// request's instances (submission-failed items have no trace and are
// marked by an empty id).
type BatchTrace struct {
	ID    string     `json:"id"`
	State string     `json:"state"`
	Items []JobTrace `json:"items"`
}

func (s *Server) handleBatchTrace(w http.ResponseWriter, r *http.Request) {
	b, ok := s.m.GetBatch(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrUnknownBatch)
		return
	}
	st := b.Status()
	out := BatchTrace{ID: b.ID, State: st.State}
	for _, j := range b.Jobs() {
		if j == nil {
			out.Items = append(out.Items, JobTrace{})
			continue
		}
		out.Items = append(out.Items, JobTrace{
			ID:            j.ID,
			State:         j.Status().State,
			TraceSnapshot: j.TraceSnapshot(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSessionCreate accepts the same request shapes as POST /solve,
// runs the initial solve synchronously and answers 201 with the session
// status (its deployment plan included).
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	in, p, err := s.parseRequest(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	applyTenant(r, &p)
	sess, err := s.m.CreateSession(r.Context(), in, p)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/sessions/"+sess.ID)
	writeJSON(w, http.StatusCreated, sess.Status())
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.m.GetSession(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrUnknownSession)
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

// handleSessionDelta applies a workload delta, re-solves warm-started
// from the previous incumbent, and answers with the new session status
// plus the changed tail of the plan.
func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	limited := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer limited.Close()
	dec := json.NewDecoder(limited)
	dec.DisallowUnknownFields()
	var d SessionDelta
	if err := dec.Decode(&d); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, err)
			return
		}
		writeErr(w, invalidf("parse session delta: %v", err))
		return
	}
	out, err := s.m.SessionDelta(r.Context(), r.PathValue("id"), d)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSessionEvents streams the session's plan revisions as
// server-sent events over the same replayable protocol as job streams.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.m.GetSession(r.PathValue("id"))
	if !ok {
		writeErr(w, ErrUnknownSession)
		return
	}
	streamEvents(w, r, sess)
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	sess, err := s.m.CloseSession(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

// SolverInfo is one entry of GET /solvers: a registered backend's
// self-description, straight from the registry.
type SolverInfo struct {
	Name string `json:"name"`
	// Kind is "constructive", "exact" or "anytime".
	Kind string `json:"kind"`
	// Proves marks backends whose results can carry a proof flag; only
	// exact kinds yield true optimality certificates.
	Proves bool `json:"proves,omitempty"`
	// FinisherRank orders the anytime backends for the portfolio's
	// exploitation tail (higher wins; 0 = never the finisher).
	FinisherRank int    `json:"finisher_rank,omitempty"`
	Summary      string `json:"summary,omitempty"`
	// Params are the typed knobs accepted in a request's "params" map.
	Params []SolverParam `json:"params,omitempty"`
}

// SolverParam is one declared backend knob.
type SolverParam struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"`
	Default any      `json:"default,omitempty"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	Help    string   `json:"help,omitempty"`
}

// Solvers snapshots the registry in its listing order (also used by
// embedders that want the catalogue without HTTP).
func Solvers() []SolverInfo {
	var out []SolverInfo
	for _, b := range backend.All() {
		info := b.Info()
		si := SolverInfo{
			Name:         info.Name,
			Kind:         info.Kind.String(),
			Proves:       info.Proves,
			FinisherRank: info.Finisher,
			Summary:      info.Summary,
		}
		for _, p := range info.Params {
			si.Params = append(si.Params, SolverParam{
				Name: p.Name, Type: p.Type.String(), Default: p.Default,
				Min: p.Min, Max: p.Max, Help: p.Help,
			})
		}
		out = append(out, si)
	}
	return out
}

// handleSolvers lists every registered backend with its declared param
// specs, so clients can discover valid "backends" and "params" values
// instead of learning them from 400 responses.
func (s *Server) handleSolvers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"solvers": Solvers()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.m.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the JSON snapshot by default and the Prometheus
// text exposition format when the client asks for it — either
// ?format=prometheus or an Accept header naming text/plain or
// openmetrics (what a Prometheus scraper sends).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	accept := r.Header.Get("Accept")
	wantText := r.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
	if wantText {
		w.Header().Set("Content-Type", obs.TextContentType)
		w.WriteHeader(http.StatusOK)
		_ = s.m.ObsRegistry().RenderText(w)
		return
	}
	writeJSON(w, http.StatusOK, s.m.Metrics())
}
