package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/solver/greedy"
)

// trapInstance has a greedy seed ~12% above the proved optimum, so any
// exact backend must publish incumbent improvements before its proof.
func trapInstance(t *testing.T) *model.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 7
	cfg.Queries = 6
	in := randgen.New(rng, cfg)
	c := model.MustCompile(in)
	g := greedy.Solve(c, nil)
	if err := in.ValidOrder(g); err != nil {
		t.Fatal(err)
	}
	return in
}

// slowInstance is large enough that local search burns its whole budget.
func slowInstance(seed int64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 26
	cfg.Queries = 18
	return randgen.New(rng, cfg)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, req solveRequest) *http.Response {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func waitState(t *testing.T, base, id string, want string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[JobStatus](t, resp)
		if st.State == want {
			return st
		}
		if isTerminal(st.State) {
			t.Fatalf("job %s reached %q (err %q) while waiting for %q", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSyncSolveJSON(t *testing.T) {
	in := trapInstance(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/solve", solveRequest{
		Instance: in,
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)},
	})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decode[SolveResult](t, resp)
	if !res.Proved {
		t.Fatalf("cp did not prove the 7-index instance: %+v", res)
	}
	if err := in.ValidOrder(res.Order); err != nil {
		t.Fatalf("returned order invalid: %v", err)
	}
	c := model.MustCompile(in)
	if got := c.Objective(res.Order); got != res.Objective {
		t.Fatalf("objective mismatch: reported %v, recomputed %v", res.Objective, got)
	}
	seed := c.Objective(greedy.Solve(c, nil))
	if res.Objective >= seed {
		t.Fatalf("no improvement over greedy seed: %v vs %v", res.Objective, seed)
	}
	for k, ix := range res.Order {
		if res.Names[k] != in.Indexes[ix].Name {
			t.Fatalf("names[%d]=%q does not match order", k, res.Names[k])
		}
	}
}

func TestSyncSolveTextBody(t *testing.T) {
	in := trapInstance(t)
	var buf bytes.Buffer
	if err := codec.WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, err := http.Post(ts.URL+"/solve?backends=cp&budget=10s", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decode[SolveResult](t, resp)
	if !res.Proved {
		t.Fatalf("text-body solve not proved: %+v", res)
	}
	if err := in.ValidOrder(res.Order); err != nil {
		t.Fatal(err)
	}
}

// TestSyncSolveBareInstanceJSON posts the instance JSON directly (no
// envelope), the way `curl --data-binary @r13.json` does, with the
// knobs in the query string.
func TestSyncSolveBareInstanceJSON(t *testing.T) {
	in := trapInstance(t)
	var buf bytes.Buffer
	if err := codec.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, err := http.Post(ts.URL+"/solve?backends=cp&budget=10s", "", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decode[SolveResult](t, resp)
	if !res.Proved {
		t.Fatalf("bare-instance solve not proved: %+v", res)
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"no-instance": `{}`,
		"bad-json":    `{"instance": nope`,
		"bad-field":   `{"instance": {"indexes": [], "queries": []}, "nonsense": 1}`,
		"invalid-instance": `{"instance": {"indexes": [{"name": "a", "create_cost": -1}],
			"queries": [], "plans": []}}`,
		"unknown-backend": `{"instance": {"indexes": [{"name": "a", "create_cost": 1}],
			"queries": [], "plans": []}, "backends": ["quantum"]}`,
	} {
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	in := trapInstance(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/jobs", solveRequest{
		Instance: in,
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/jobs/") {
		t.Fatalf("Location = %q", loc)
	}
	st := decode[JobStatus](t, resp)
	if st.ID == "" || st.Hash == "" {
		t.Fatalf("submit status missing id/hash: %+v", st)
	}

	final := waitState(t, ts.URL, st.ID, StateDone, 15*time.Second)
	if final.Result == nil || !final.Result.Proved {
		t.Fatalf("final job status lacks a proved result: %+v", final)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Fatal("missing timestamps")
	}
	if err := in.ValidOrder(final.Result.Order); err != nil {
		t.Fatal(err)
	}
	if final.Events < 3 {
		t.Fatalf("only %d events recorded", final.Events)
	}

	// Unknown job: 404.
	r404, err := http.Get(ts.URL + "/jobs/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", r404.StatusCode)
	}
}

// TestCacheHitOnIdenticalInstance solves, then resubmits the same
// problem relabeled — the canonical hash must route it to the cache and
// translate the cached order back into the new labeling.
func TestCacheHitOnIdenticalInstance(t *testing.T) {
	in := trapInstance(t)
	s, ts := newTestServer(t, Config{Workers: 2})
	params := Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)}

	first := decode[SolveResult](t, postJSON(t, ts.URL+"/solve", solveRequest{Instance: in, Params: params}))
	if first.CacheHit {
		t.Fatal("first solve claims a cache hit")
	}

	// Reverse the index order (and remap references) — same problem.
	rev := make([]int, len(in.Indexes))
	for i := range rev {
		rev[i] = len(rev) - 1 - i
	}
	qid := make([]int, len(in.Queries))
	for q := range qid {
		qid[q] = q
	}
	relabeled := relabelInstance(in, rev, qid)

	second := decode[SolveResult](t, postJSON(t, ts.URL+"/solve", solveRequest{Instance: relabeled, Params: params}))
	if !second.CacheHit {
		t.Fatalf("relabeled resubmission missed the cache: %+v", second)
	}
	if err := relabeled.ValidOrder(second.Order); err != nil {
		t.Fatalf("cached order not translated into request space: %v", err)
	}
	if second.Objective != first.Objective {
		t.Fatalf("cached objective %v != original %v", second.Objective, first.Objective)
	}

	mt := s.Manager().Metrics()
	if mt.Cache.Hits != 1 || mt.Solves.Count != 1 {
		t.Fatalf("metrics: hits=%d solves=%d, want 1/1", mt.Cache.Hits, mt.Solves.Count)
	}
	// Different budget must NOT share the cached answer.
	params2 := params
	params2.Budget = Duration(9 * time.Second)
	third := decode[SolveResult](t, postJSON(t, ts.URL+"/solve", solveRequest{Instance: in, Params: params2}))
	if third.CacheHit {
		t.Fatal("different budget shared a cache entry")
	}
}

// relabelInstance permutes index and query positions, remapping all
// references (test helper mirroring the codec property test).
func relabelInstance(in *model.Instance, iperm, qperm []int) *model.Instance {
	out := &model.Instance{
		Name:    in.Name,
		Indexes: make([]model.Index, len(in.Indexes)),
		Queries: make([]model.Query, len(in.Queries)),
	}
	for i, ix := range in.Indexes {
		out.Indexes[iperm[i]] = ix
	}
	for q, qu := range in.Queries {
		out.Queries[qperm[q]] = qu
	}
	for _, p := range in.Plans {
		idx := make([]int, len(p.Indexes))
		for k, i := range p.Indexes {
			idx[k] = iperm[i]
		}
		out.Plans = append(out.Plans, model.Plan{Query: qperm[p.Query], Indexes: idx, Speedup: p.Speedup})
	}
	for _, b := range in.BuildInteractions {
		out.BuildInteractions = append(out.BuildInteractions, model.BuildInteraction{
			Target: iperm[b.Target], Helper: iperm[b.Helper], Speedup: b.Speedup,
		})
	}
	for _, pr := range in.Precedences {
		out.Precedences = append(out.Precedences, model.Precedence{
			Before: iperm[pr.Before], After: iperm[pr.After],
		})
	}
	return out
}

// TestSingleFlightDedup is the acceptance check: two simultaneous
// identical job submissions share exactly one underlying portfolio run.
func TestSingleFlightDedup(t *testing.T) {
	in := slowInstance(5)
	s, ts := newTestServer(t, Config{Workers: 2})
	params := Params{Backends: []string{"vns"}, Budget: Duration(1500 * time.Millisecond), Seed: 9}

	var ids [2]string
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/jobs", solveRequest{Instance: in, Params: params})
			st := decode[JobStatus](t, resp)
			ids[k] = st.ID
		}()
	}
	wg.Wait()
	if ids[0] == "" || ids[1] == "" || ids[0] == ids[1] {
		t.Fatalf("bad job ids: %v", ids)
	}

	var results [2]*SolveResult
	for k, id := range ids {
		st := waitState(t, ts.URL, id, StateDone, 20*time.Second)
		results[k] = st.Result
	}
	mt := s.Manager().Metrics()
	if mt.Solves.Count != 1 {
		t.Fatalf("identical concurrent jobs ran %d solves, want 1", mt.Solves.Count)
	}
	if mt.SingleFlightAttached != 1 {
		t.Fatalf("singleflight_attached = %d, want 1", mt.SingleFlightAttached)
	}
	if results[0].Objective != results[1].Objective {
		t.Fatalf("shared solve produced different objectives: %v vs %v",
			results[0].Objective, results[1].Objective)
	}
	if !results[0].Shared || !results[1].Shared {
		t.Fatalf("jobs not marked shared: %+v %+v", results[0], results[1])
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    string
	event string
	data  Event
}

func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSSEEventOrdering is the acceptance check for streaming progress:
// the event stream is queued → started → (incumbent improvements, with
// at least one) → proved → terminal done, with contiguous sequence
// numbers, and every incumbent improves on the previous.
func TestSSEEventOrdering(t *testing.T) {
	in := trapInstance(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/jobs", solveRequest{
		Instance: in,
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)},
	})
	st := decode[JobStatus](t, resp)

	stream, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, stream.Body) // returns at stream close (terminal event)

	if len(events) < 4 {
		t.Fatalf("only %d events: %+v", len(events), events)
	}
	for k, ev := range events {
		if ev.data.Seq != k {
			t.Fatalf("event %d has seq %d", k, ev.data.Seq)
		}
		if ev.event != ev.data.Type {
			t.Fatalf("SSE event name %q != payload type %q", ev.event, ev.data.Type)
		}
	}
	if events[0].event != EventQueued {
		t.Fatalf("first event %q, want queued", events[0].event)
	}
	if events[1].event != EventStarted {
		t.Fatalf("second event %q, want started", events[1].event)
	}
	last := events[len(events)-1]
	if last.event != EventDone || last.data.State != StateDone {
		t.Fatalf("terminal event %+v", last)
	}

	incumbents := 0
	lastObj := 0.0
	sawProof := false
	for _, ev := range events {
		switch ev.event {
		case EventIncumbent:
			if sawProof {
				t.Fatal("incumbent event after proof")
			}
			if ev.data.Objective == nil {
				t.Fatal("incumbent event without objective")
			}
			if incumbents > 0 && *ev.data.Objective >= lastObj {
				t.Fatalf("non-improving incumbent: %v after %v", *ev.data.Objective, lastObj)
			}
			lastObj = *ev.data.Objective
			if err := in.ValidOrder(ev.data.Order); err != nil {
				t.Fatalf("incumbent order invalid in request space: %v", err)
			}
			incumbents++
		case EventProved:
			sawProof = true
		case EventDone:
			if incumbents == 0 {
				t.Fatal("terminal done before any incumbent event")
			}
		}
	}
	if incumbents == 0 || !sawProof {
		t.Fatalf("incumbents=%d proof=%t", incumbents, sawProof)
	}

	// Replay from an offset: Last-Event-ID resumes after the given seq.
	req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "1")
	replay, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Body.Close()
	tail := readSSE(t, replay.Body)
	if len(tail) != len(events)-2 {
		t.Fatalf("replay from id 1 returned %d events, want %d", len(tail), len(events)-2)
	}
	if tail[0].data.Seq != 2 {
		t.Fatalf("replay starts at seq %d", tail[0].data.Seq)
	}
}

func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	long := Params{Backends: []string{"vns"}, Budget: Duration(10 * time.Second)}

	a := decode[JobStatus](t, postJSON(t, ts.URL+"/jobs", solveRequest{Instance: slowInstance(11), Params: long}))
	waitState(t, ts.URL, a.ID, StateRunning, 10*time.Second)

	b := decode[JobStatus](t, postJSON(t, ts.URL+"/jobs", solveRequest{Instance: slowInstance(12), Params: long}))

	resp := postJSON(t, ts.URL+"/jobs", solveRequest{Instance: slowInstance(13), Params: long})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	mt := s.Manager().Metrics()
	if mt.Jobs.Rejected != 1 {
		t.Fatalf("rejected = %d", mt.Jobs.Rejected)
	}
	// Free the worker quickly.
	for _, id := range []string{a.ID, b.ID} {
		req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
}

func TestCancelMidSolve(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	st := decode[JobStatus](t, postJSON(t, ts.URL+"/jobs", solveRequest{
		Instance: slowInstance(21),
		Params:   Params{Backends: []string{"vns"}, Budget: Duration(30 * time.Second)},
	}))
	waitState(t, ts.URL, st.ID, StateRunning, 10*time.Second)

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	got := decode[JobStatus](t, resp)
	if got.State != StateCanceled {
		t.Fatalf("state after cancel: %q", got.State)
	}

	// The event stream of a canceled job terminates with done/canceled.
	stream, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, stream.Body)
	stream.Body.Close()
	last := events[len(events)-1]
	if last.event != EventDone || last.data.State != StateCanceled {
		t.Fatalf("terminal event of canceled job: %+v", last)
	}

	// Second cancel: 409.
	resp2, err := http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel status %d, want 409", resp2.StatusCode)
	}

	// The canceled run must release its worker well before the 30s
	// budget: a fresh fast job completes promptly.
	fast := decode[JobStatus](t, postJSON(t, ts.URL+"/jobs", solveRequest{
		Instance: trapInstance(t),
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)},
	}))
	waitState(t, ts.URL, fast.ID, StateDone, 15*time.Second)

	mt := s.Manager().Metrics()
	if mt.Jobs.Canceled != 1 {
		t.Fatalf("canceled = %d", mt.Jobs.Canceled)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	body := decode[map[string]string](t, resp)
	if body["status"] != "ok" {
		t.Fatalf("healthz body %v", body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mt := decode[MetricsSnapshot](t, mresp)
	if mt.Workers != 1 || mt.QueueCap == 0 {
		t.Fatalf("metrics snapshot: %+v", mt)
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := decode[JobStatus](t, postJSON(t, ts.URL+"/jobs", solveRequest{
		Instance: trapInstance(t),
		Params:   Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)},
	}))

	done := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		close(done)
	}()

	// Draining: healthz degrades and new submissions bounce with 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp := postJSON(t, ts.URL+"/jobs", solveRequest{Instance: slowInstance(31)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	<-done
	// The in-flight job was drained to completion, not dropped.
	final, ok := s.Manager().Get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	fs := final.Status()
	if fs.State != StateDone {
		t.Fatalf("drained job state %q: %+v", fs.State, fs)
	}
}

// TestFinishedJobEviction: terminal jobs beyond the retention cap are
// dropped (oldest first) so the job map cannot grow without bound.
func TestFinishedJobEviction(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxFinishedJobs: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	params := Params{Backends: []string{"greedy"}, Budget: Duration(time.Second)}
	var ids []string
	for k := 0; k < 3; k++ {
		j, err := m.Submit(trapInstance(t), params)
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		ids = append(ids, j.ID)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest finished job not evicted at cap 2")
	}
	for _, id := range ids[1:] {
		if _, ok := m.Get(id); !ok {
			t.Fatalf("job %s evicted too early", id)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	for in, want := range map[string]time.Duration{
		`"1.5s"`:  1500 * time.Millisecond,
		`"250ms"`: 250 * time.Millisecond,
		`2`:       2 * time.Second,
		`0.5`:     500 * time.Millisecond,
	} {
		var d Duration
		if err := json.Unmarshal([]byte(in), &d); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if time.Duration(d) != want {
			t.Errorf("%s -> %v, want %v", in, time.Duration(d), want)
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"soon"`), &d); err == nil {
		t.Error("bad duration accepted")
	}
	buf, err := json.Marshal(Duration(time.Second))
	if err != nil || string(buf) != `"1s"` {
		t.Errorf("marshal: %s, %v", buf, err)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	r := func(obj float64) *SolveResult { return &SolveResult{Objective: obj} }
	c.put("a", r(1))
	c.put("b", r(2))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", r(3)) // evicts b (a was just touched)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	c.put("a", r(9)) // overwrite keeps size
	if c.len() != 2 {
		t.Fatalf("len after overwrite = %d", c.len())
	}
	if v, _ := c.get("a"); v.Objective != 9 {
		t.Fatalf("overwrite lost: %v", v.Objective)
	}
}

func BenchmarkSubmitCacheHit(b *testing.B) {
	in := slowInstance(1)
	m := NewManager(Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	j, err := m.Submit(in, Params{Backends: []string{"greedy"}, Budget: Duration(time.Second)})
	if err != nil {
		b.Fatal(err)
	}
	<-j.Done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := m.Submit(in, Params{Backends: []string{"greedy"}, Budget: Duration(time.Second)})
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
		if !j.Status().Result.CacheHit {
			b.Fatal("missed cache")
		}
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
