package service

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/evolving-olap/idd/internal/evolve"
	"github.com/evolving-olap/idd/internal/model"
)

// Sessions: the online re-solve loop of the paper's incremental design
// vision, served. POST /sessions pins a long-lived advisor conversation:
// the initial workload is solved cold and its deployment plan becomes
// the session's state. Each POST /sessions/{id}/delta mutates the
// workload (query weights, index adds/drops, new plans/precedences,
// indexes marked as already built) and re-solves it *warm-started* from
// the previous incumbent — the prior order is repaired against the
// delta (removed indexes dropped, added ones greedy-inserted at their
// best feasible position) and seeds the portfolio through
// Options.Initial; only when repair is impossible does the re-solve
// fall back to the cold greedy seed. The session's SSE stream carries
// one "plan" event for the initial order and one "delta" event per
// revision with only the changed tail of the plan, so a deployment
// driver replays exactly the suffix it has to re-schedule.

// maxActiveSessions bounds concurrently open sessions; maxClosedSessions
// bounds how many closed ones stay queryable.
const (
	maxActiveSessions = 1024
	maxClosedSessions = 256
)

// Session is one accepted POST /sessions conversation.
type Session struct {
	ID        string
	tenant    string
	createdAt time.Time
	m         *Manager

	// solveMu serializes deltas: one re-solve in flight per session.
	solveMu sync.Mutex

	mu        sync.Mutex
	instance  *model.Instance // current full workload, request space
	params    Params
	built     map[string]bool // index names already deployed
	revision  int
	planNames []string // deployment order of the not-yet-built indexes
	result    *SolveResult
	lastJobID string
	updatedAt time.Time
	events    []Event
	notify    chan struct{}
	closed    bool
}

// SessionStatus is the wire form of GET /sessions/{id}.
type SessionStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  string `json:"state"` // active | closed
	// Revision counts applied deltas; 0 is the initial solve.
	Revision int `json:"revision"`
	// Plan is the deployment order (by index name) of the indexes still
	// to be built; Built lists those already deployed.
	Plan      []string     `json:"plan"`
	Built     []string     `json:"built,omitempty"`
	CreatedAt time.Time    `json:"created_at"`
	UpdatedAt time.Time    `json:"updated_at"`
	LastJobID string       `json:"last_job_id,omitempty"`
	Result    *SolveResult `json:"result,omitempty"`
}

// SessionDelta is the JSON body of POST /sessions/{id}/delta: a patch
// over the session's workload. All fields are optional; an empty delta
// still re-solves (useful after marking indexes built).
type SessionDelta struct {
	// Weights reassigns query weights by query name.
	Weights map[string]float64 `json:"weights,omitempty"`
	// AddIndexes/DropIndexes change the candidate set. Dropping an index
	// also drops every plan, interaction and precedence mentioning it.
	AddIndexes  []model.Index `json:"add_indexes,omitempty"`
	DropIndexes []string      `json:"drop_indexes,omitempty"`
	// AddQueries/DropQueries change the workload; dropping a query drops
	// its plans.
	AddQueries  []model.Query `json:"add_queries,omitempty"`
	DropQueries []string      `json:"drop_queries,omitempty"`
	// AddPlans and AddPrecedences reference indexes and queries by name.
	AddPlans       []SessionPlan       `json:"add_plans,omitempty"`
	AddPrecedences []SessionPrecedence `json:"add_precedences,omitempty"`
	// Built marks indexes as deployed: they are projected out of the
	// re-solve (their plans lower the baselines, their helper discounts
	// fold into create costs — see evolve.ProjectDelta) and leave the
	// plan.
	Built []string `json:"built,omitempty"`
	// Params overrides the session's solve knobs from this delta on.
	Params *Params `json:"params,omitempty"`
}

// SessionPlan is a name-addressed model.Plan.
type SessionPlan struct {
	Query   string   `json:"query"`
	Indexes []string `json:"indexes"`
	Speedup float64  `json:"speedup"`
}

// SessionPrecedence is a name-addressed model.Precedence.
type SessionPrecedence struct {
	Before string `json:"before"`
	After  string `json:"after"`
}

// SessionDeltaResult is the response of POST /sessions/{id}/delta.
type SessionDeltaResult struct {
	SessionStatus
	// TailFrom is the first plan position that changed relative to the
	// previous revision; Tail is the plan from there on. A deployment
	// driver keeps the prefix and re-schedules only the tail.
	TailFrom int      `json:"tail_from"`
	Tail     []string `json:"tail"`
}

// Status snapshots the session.
func (s *Session) Status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStatus{
		ID:        s.ID,
		Tenant:    s.tenant,
		State:     "active",
		Revision:  s.revision,
		Plan:      append([]string(nil), s.planNames...),
		CreatedAt: s.createdAt,
		UpdatedAt: s.updatedAt,
		LastJobID: s.lastJobID,
		Result:    s.result,
	}
	if s.closed {
		st.State = "closed"
	}
	if len(s.built) > 0 {
		st.Built = make([]string, 0, len(s.built))
		for name := range s.built {
			st.Built = append(st.Built, name)
		}
		sort.Strings(st.Built)
	}
	return st
}

// appendEvent records ev and wakes subscribers; caller holds s.mu.
func (s *Session) appendEvent(ev Event) {
	ev.Seq = len(s.events)
	s.events = append(s.events, ev)
	close(s.notify)
	s.notify = make(chan struct{})
}

// eventsSince implements eventSource for the shared SSE handler.
func (s *Session) eventsSince(seq int) (evs []Event, terminal bool, notify <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq < len(s.events) {
		evs = append(evs, s.events[seq:]...)
	}
	return evs, s.closed, s.notify
}

// CreateSession runs the initial solve synchronously and, on success,
// registers a session holding the instance and its deployment plan.
// ctx cancellation aborts the initial solve and the creation.
func (m *Manager) CreateSession(ctx context.Context, in *model.Instance, p Params) (*Session, error) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	active := 0
	for _, s := range m.sessions {
		s.mu.Lock()
		if !s.closed {
			active++
		}
		s.mu.Unlock()
	}
	m.mu.Unlock()
	if active >= maxActiveSessions {
		return nil, ErrTooManySessions
	}

	j, err := m.Submit(in, p)
	if err != nil {
		return nil, err
	}
	if err := waitJob(ctx, m, j); err != nil {
		return nil, err
	}
	st := j.Status()
	if st.State != StateDone || st.Result == nil {
		return nil, &InvalidError{Err: errSessionSolve(st)}
	}

	s := &Session{
		ID:        m.newID(),
		tenant:    j.tenant,
		createdAt: time.Now(),
		m:         m,
		instance:  cloneInstance(in),
		params:    p,
		built:     map[string]bool{},
		planNames: append([]string(nil), st.Result.Names...),
		result:    st.Result,
		lastJobID: j.ID,
		updatedAt: time.Now(),
		notify:    make(chan struct{}),
	}
	rev := 0
	s.events = append(s.events, Event{Seq: 0, Type: EventPlan,
		Revision: &rev, Names: append([]string(nil), s.planNames...),
		Objective: fptr(st.Result.Objective), JobID: j.ID})

	m.mu.Lock()
	m.sessions[s.ID] = s
	m.mu.Unlock()
	m.metrics.sessionsCreated.Add(1)
	return s, nil
}

// GetSession looks a session up by id.
func (m *Manager) GetSession(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// CloseSession closes a session: its event stream turns terminal and
// further deltas are rejected. The session stays queryable until the
// retention cap evicts it.
func (m *Manager) CloseSession(id string) (*Session, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrUnknownSession
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	s.closed = true
	s.updatedAt = time.Now()
	s.appendEvent(Event{Type: EventSessionClosed, State: "closed"})
	s.mu.Unlock()

	m.mu.Lock()
	m.closedSessions = append(m.closedSessions, id)
	for len(m.closedSessions) > maxClosedSessions {
		delete(m.sessions, m.closedSessions[0])
		m.closedSessions = m.closedSessions[1:]
	}
	m.mu.Unlock()
	return s, nil
}

// SessionDelta applies a workload delta and re-solves warm-started from
// the session's previous incumbent. One delta runs at a time per
// session; a concurrent delta is rejected with ErrSessionBusy.
func (m *Manager) SessionDelta(ctx context.Context, id string, d SessionDelta) (*SessionDeltaResult, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrUnknownSession
	}
	if !s.solveMu.TryLock() {
		return nil, ErrSessionBusy
	}
	defer s.solveMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	prevInstance := s.instance
	prevPlan := append([]string(nil), s.planNames...)
	params := s.params
	built := make(map[string]bool, len(s.built))
	for name := range s.built {
		built[name] = true
	}
	s.mu.Unlock()

	next, err := applySessionDelta(prevInstance, d)
	if err != nil {
		return nil, err
	}
	if d.Params != nil {
		params = *d.Params
	}
	params.Tenant = s.tenant
	for _, name := range d.DropIndexes {
		delete(built, name)
	}
	have := map[string]bool{}
	for _, ix := range next.Indexes {
		have[ix.Name] = true
	}
	for _, name := range d.Built {
		if !have[name] {
			return nil, invalidf("built names unknown index %q", name)
		}
		built[name] = true
	}

	// Project already-built indexes out of the re-solve: their plans
	// lower the baselines, their helper discounts fold into create
	// costs, and only the rest remain as decisions.
	solveInst := next
	if len(built) > 0 {
		isNew := make([]bool, next.N())
		for i, ix := range next.Indexes {
			isNew[i] = !built[ix.Name]
		}
		proj, _, perr := evolve.ProjectDelta(next, isNew)
		if perr != nil {
			return nil, &InvalidError{Err: perr}
		}
		solveInst = proj
	}

	var (
		result    *SolveResult
		jobID     string
		planNames []string
	)
	if solveInst.N() > 0 {
		// Repair the previous order against the delta; fall back to a
		// cold submission only when repair is infeasible.
		var j *Job
		var serr error
		if warmNames, rerr := evolve.RepairOrder(solveInst, prevPlan); rerr == nil {
			j, serr = m.SubmitWarm(solveInst, params, warmNames)
		} else {
			j, serr = m.Submit(solveInst, params)
		}
		if serr != nil {
			return nil, serr
		}
		if werr := waitJob(ctx, m, j); werr != nil {
			return nil, werr
		}
		st := j.Status()
		if st.State != StateDone || st.Result == nil {
			return nil, errSessionSolve(st)
		}
		result = st.Result
		jobID = j.ID
		planNames = append([]string(nil), st.Result.Names...)
	}

	tailFrom := commonPrefix(prevPlan, planNames)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	s.instance = next
	s.params = params
	s.built = built
	s.revision++
	s.planNames = planNames
	s.result = result
	s.lastJobID = jobID
	s.updatedAt = time.Now()
	rev := s.revision
	ev := Event{Type: EventDelta, Revision: &rev,
		TailFrom: intPtr(tailFrom), Names: append([]string(nil), planNames[tailFrom:]...),
		JobID: jobID}
	if result != nil {
		ev.Objective = fptr(result.Objective)
		ev.WarmStarted = result.WarmStarted
	}
	s.appendEvent(ev)
	s.mu.Unlock()
	m.metrics.sessionDeltas.Add(1)

	out := &SessionDeltaResult{
		SessionStatus: s.Status(),
		TailFrom:      tailFrom,
		Tail:          append([]string(nil), planNames[tailFrom:]...),
	}
	return out, nil
}

// waitJob blocks until the job is terminal, cancelling it when ctx
// expires first.
func waitJob(ctx context.Context, m *Manager, j *Job) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.Done():
		return nil
	case <-ctx.Done():
		_ = m.Cancel(j.ID)
		<-j.Done()
		return ctx.Err()
	}
}

func errSessionSolve(st JobStatus) error {
	if st.Error != "" {
		return &sessionSolveError{msg: "session solve " + st.State + ": " + st.Error}
	}
	return &sessionSolveError{msg: "session solve " + st.State}
}

type sessionSolveError struct{ msg string }

func (e *sessionSolveError) Error() string { return e.msg }

// commonPrefix returns the length of the longest common prefix of a
// and b — the first position at which the new plan diverges.
func commonPrefix(a, b []string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// cloneInstance deep-copies an instance so session state never aliases
// request bodies.
func cloneInstance(in *model.Instance) *model.Instance {
	out := &model.Instance{Name: in.Name}
	out.Indexes = make([]model.Index, len(in.Indexes))
	for i, ix := range in.Indexes {
		ix.Columns = append([]string(nil), ix.Columns...)
		ix.Include = append([]string(nil), ix.Include...)
		out.Indexes[i] = ix
	}
	out.Queries = append([]model.Query(nil), in.Queries...)
	for _, p := range in.Plans {
		out.Plans = append(out.Plans, model.Plan{
			Query: p.Query, Indexes: append([]int(nil), p.Indexes...), Speedup: p.Speedup,
		})
	}
	out.BuildInteractions = append([]model.BuildInteraction(nil), in.BuildInteractions...)
	out.Precedences = append([]model.Precedence(nil), in.Precedences...)
	return out
}

// applySessionDelta returns a new instance with the delta applied; the
// input is not mutated. Every name reference is checked, and the result
// must validate.
func applySessionDelta(in *model.Instance, d SessionDelta) (*model.Instance, error) {
	out := cloneInstance(in)

	// Drop indexes (and everything referencing them), then remap.
	if len(d.DropIndexes) > 0 {
		drop := map[string]bool{}
		for _, name := range d.DropIndexes {
			drop[name] = true
		}
		remap := make([]int, len(out.Indexes))
		var keptIx []model.Index
		found := map[string]bool{}
		for i, ix := range out.Indexes {
			if drop[ix.Name] {
				remap[i] = -1
				found[ix.Name] = true
				continue
			}
			remap[i] = len(keptIx)
			keptIx = append(keptIx, ix)
		}
		for name := range drop {
			if !found[name] {
				return nil, invalidf("drop_indexes names unknown index %q", name)
			}
		}
		out.Indexes = keptIx
		var keptPlans []model.Plan
		for _, p := range out.Plans {
			ok := true
			for k, ix := range p.Indexes {
				if remap[ix] < 0 {
					ok = false
					break
				}
				p.Indexes[k] = remap[ix]
			}
			if ok {
				keptPlans = append(keptPlans, p)
			}
		}
		out.Plans = keptPlans
		var keptBuilds []model.BuildInteraction
		for _, b := range out.BuildInteractions {
			if remap[b.Target] < 0 || remap[b.Helper] < 0 {
				continue
			}
			b.Target, b.Helper = remap[b.Target], remap[b.Helper]
			keptBuilds = append(keptBuilds, b)
		}
		out.BuildInteractions = keptBuilds
		var keptPrecs []model.Precedence
		for _, pr := range out.Precedences {
			if remap[pr.Before] < 0 || remap[pr.After] < 0 {
				continue
			}
			pr.Before, pr.After = remap[pr.Before], remap[pr.After]
			keptPrecs = append(keptPrecs, pr)
		}
		out.Precedences = keptPrecs
	}

	// Drop queries (and their plans), then remap.
	if len(d.DropQueries) > 0 {
		drop := map[string]bool{}
		for _, name := range d.DropQueries {
			drop[name] = true
		}
		remap := make([]int, len(out.Queries))
		var keptQ []model.Query
		found := map[string]bool{}
		for q, qu := range out.Queries {
			if drop[qu.Name] {
				remap[q] = -1
				found[qu.Name] = true
				continue
			}
			remap[q] = len(keptQ)
			keptQ = append(keptQ, qu)
		}
		for name := range drop {
			if !found[name] {
				return nil, invalidf("drop_queries names unknown query %q", name)
			}
		}
		out.Queries = keptQ
		var keptPlans []model.Plan
		for _, p := range out.Plans {
			if remap[p.Query] < 0 {
				continue
			}
			p.Query = remap[p.Query]
			keptPlans = append(keptPlans, p)
		}
		out.Plans = keptPlans
	}

	// Additions.
	ixPos := map[string]int{}
	for i, ix := range out.Indexes {
		ixPos[ix.Name] = i
	}
	for _, ix := range d.AddIndexes {
		if _, dup := ixPos[ix.Name]; dup {
			return nil, invalidf("add_indexes: index %q already exists", ix.Name)
		}
		ixPos[ix.Name] = len(out.Indexes)
		out.Indexes = append(out.Indexes, ix)
	}
	qPos := map[string]int{}
	for q, qu := range out.Queries {
		qPos[qu.Name] = q
	}
	for _, qu := range d.AddQueries {
		qPos[qu.Name] = len(out.Queries)
		out.Queries = append(out.Queries, qu)
	}

	// Weight reassignment by query name.
	for name, w := range d.Weights {
		q, ok := qPos[name]
		if !ok {
			return nil, invalidf("weights names unknown query %q", name)
		}
		out.Queries[q].Weight = w
	}

	// Name-addressed plans and precedences.
	for _, sp := range d.AddPlans {
		q, ok := qPos[sp.Query]
		if !ok {
			return nil, invalidf("add_plans names unknown query %q", sp.Query)
		}
		p := model.Plan{Query: q, Speedup: sp.Speedup}
		for _, name := range sp.Indexes {
			i, ok := ixPos[name]
			if !ok {
				return nil, invalidf("add_plans names unknown index %q", name)
			}
			p.Indexes = append(p.Indexes, i)
		}
		out.Plans = append(out.Plans, p)
	}
	for _, pr := range d.AddPrecedences {
		b, ok := ixPos[pr.Before]
		if !ok {
			return nil, invalidf("add_precedences names unknown index %q", pr.Before)
		}
		a, ok := ixPos[pr.After]
		if !ok {
			return nil, invalidf("add_precedences names unknown index %q", pr.After)
		}
		out.Precedences = append(out.Precedences, model.Precedence{Before: b, After: a})
	}

	if err := out.Validate(); err != nil {
		return nil, &InvalidError{Err: err}
	}
	return out, nil
}
