package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/codec"
	"github.com/evolving-olap/idd/internal/evolve"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/obs"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
)

// sessionInstance is a small workload a session can evolve: big enough
// that ordering matters, small enough that every re-solve proves.
func sessionInstance() *model.Instance {
	return &model.Instance{
		Name: "sess",
		Indexes: []model.Index{
			{Name: "a", CreateCost: 4},
			{Name: "b", CreateCost: 6},
			{Name: "c", CreateCost: 5},
			{Name: "d", CreateCost: 3},
		},
		Queries: []model.Query{
			{Name: "q1", Runtime: 100},
			{Name: "q2", Runtime: 80},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 40},
			{Query: 0, Indexes: []int{1, 2}, Speedup: 60},
			{Query: 1, Indexes: []int{3}, Speedup: 30},
		},
	}
}

func postDelta(t *testing.T, url string, d SessionDelta) *http.Response {
	t.Helper()
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSessionLifecycleHTTP is the acceptance round-trip: create a
// session from an initial solve, apply weight / structural / built
// deltas (each re-solved warm-started), read the changed-tail SSE
// replay, and close.
func TestSessionLifecycleHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/sessions", solveRequest{
		Instance: sessionInstance(),
		Params:   Params{Budget: Duration(10 * time.Second)},
	})
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	st := decode[SessionStatus](t, resp)
	if st.Revision != 0 || st.State != "active" || len(st.Plan) != 4 {
		t.Fatalf("fresh session %+v", st)
	}
	base := ts.URL + "/sessions/" + st.ID

	// Weight-only drift: the index set is unchanged, so the repaired
	// warm seed is the previous plan itself.
	resp = postDelta(t, base+"/delta", SessionDelta{Weights: map[string]float64{"q1": 5}})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("delta status %d: %s", resp.StatusCode, body)
	}
	d1 := decode[SessionDeltaResult](t, resp)
	if d1.Revision != 1 {
		t.Fatalf("revision %d after first delta", d1.Revision)
	}
	if d1.Result == nil || !d1.Result.WarmStarted {
		t.Fatalf("weight-only delta not warm-started: %+v", d1.Result)
	}
	if !reflect.DeepEqual(d1.Tail, d1.Plan[d1.TailFrom:]) {
		t.Fatalf("tail %v inconsistent with plan %v from %d", d1.Tail, d1.Plan, d1.TailFrom)
	}

	// Structural drift: add an index with a plan, drop one.
	d2 := decode[SessionDeltaResult](t, postDelta(t, base+"/delta", SessionDelta{
		AddIndexes:  []model.Index{{Name: "e", CreateCost: 2}},
		AddPlans:    []SessionPlan{{Query: "q2", Indexes: []string{"e"}, Speedup: 20}},
		DropIndexes: []string{"d"},
	}))
	if d2.Revision != 2 || len(d2.Plan) != 4 {
		t.Fatalf("after add/drop delta: %+v", d2)
	}
	plan := strings.Join(d2.Plan, ",")
	if !strings.Contains(plan, "e") || strings.Contains(plan, "d") {
		t.Fatalf("plan %v should contain e and not d", d2.Plan)
	}

	// Mark the first planned index as built: it leaves the plan.
	built := d2.Plan[0]
	d3 := decode[SessionDeltaResult](t, postDelta(t, base+"/delta", SessionDelta{Built: []string{built}}))
	if d3.Revision != 3 || len(d3.Plan) != 3 {
		t.Fatalf("after built delta: %+v", d3)
	}
	for _, name := range d3.Plan {
		if name == built {
			t.Fatalf("built index %q still planned: %v", built, d3.Plan)
		}
	}
	if len(d3.Built) != 1 || d3.Built[0] != built {
		t.Fatalf("built list %v, want [%s]", d3.Built, built)
	}

	// Close; the event stream turns terminal and further deltas 409.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	closed := decode[SessionStatus](t, cresp)
	if closed.State != "closed" {
		t.Fatalf("state %q after close", closed.State)
	}
	if resp := postDelta(t, base+"/delta", SessionDelta{}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("delta on closed session: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/sessions/nope"); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Full SSE replay: plan, one delta per revision (tail-only names),
	// terminal session_closed.
	stream, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	events := readSSE(t, stream.Body)
	types := make([]string, len(events))
	for k, ev := range events {
		types[k] = ev.event
		if ev.data.Seq != k {
			t.Fatalf("event %d has seq %d", k, ev.data.Seq)
		}
	}
	want := []string{EventPlan, EventDelta, EventDelta, EventDelta, EventSessionClosed}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("event types %v, want %v", types, want)
	}
	if n := len(events[0].data.Names); n != 4 {
		t.Fatalf("plan event carries %d names", n)
	}
	for k, ev := range events[1:4] {
		if ev.data.Revision == nil || *ev.data.Revision != k+1 {
			t.Fatalf("delta event %d revision %v", k, ev.data.Revision)
		}
		if ev.data.TailFrom == nil {
			t.Fatalf("delta event %d has no tail_from", k)
		}
	}
	if ev := events[1].data; !ev.WarmStarted {
		t.Fatalf("weight-only delta event not warm-started: %+v", ev)
	}
}

// TestSessionDeltaValidation exercises the error surface: unknown
// sessions, unknown name references, and rejected structural patches.
func TestSessionDeltaValidation(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	if _, err := m.SessionDelta(context.Background(), "nope", SessionDelta{}); err != ErrUnknownSession {
		t.Fatalf("unknown session: %v", err)
	}
	s, err := m.CreateSession(context.Background(), sessionInstance(),
		Params{Budget: Duration(10 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]SessionDelta{
		"unknown weight query": {Weights: map[string]float64{"zz": 2}},
		"unknown drop index":   {DropIndexes: []string{"zz"}},
		"unknown drop query":   {DropQueries: []string{"zz"}},
		"duplicate add index":  {AddIndexes: []model.Index{{Name: "a", CreateCost: 1}}},
		"unknown plan index":   {AddPlans: []SessionPlan{{Query: "q1", Indexes: []string{"zz"}, Speedup: 1}}},
		"unknown built index":  {Built: []string{"zz"}},
		"unknown precedence":   {AddPrecedences: []SessionPrecedence{{Before: "a", After: "zz"}}},
	} {
		var inv *InvalidError
		if _, err := m.SessionDelta(context.Background(), s.ID, d); err == nil {
			t.Fatalf("%s: delta accepted", name)
		} else if !errors.As(err, &inv) {
			t.Fatalf("%s: error %v is not an InvalidError", name, err)
		}
		// A rejected delta must not advance the session.
		if got := s.Status(); got.Revision != 0 {
			t.Fatalf("%s: rejected delta bumped revision to %d", name, got.Revision)
		}
	}
}

// TestWarmStartNeverWorseThanSeed is the warm-start contract as a
// property: the portfolio offers the (repaired) seed to the incumbent
// store before any backend runs, so a warm-started result can never be
// worse than its seed — here checked against randomly shuffled feasible
// seeds over random instances.
func TestWarmStartNeverWorseThanSeed(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	noPrune := false
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := randgen.DefaultConfig()
		cfg.Indexes = 10
		cfg.Queries = 8
		in := randgen.New(rng, cfg)

		// A deliberately bad prior: the reversed index list, repaired to
		// feasibility the same way a session delta repairs its plan.
		prior := make([]string, in.N())
		for i := range prior {
			prior[i] = in.Indexes[in.N()-1-i].Name
		}
		warm, err := evolve.RepairOrder(in, prior)
		if err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}
		c := model.MustCompile(in)
		pos := map[string]int{}
		for i, ix := range in.Indexes {
			pos[ix.Name] = i
		}
		order := make([]int, len(warm))
		for k, name := range warm {
			order[k] = pos[name]
		}
		if !compatibleOrder(in, order) {
			t.Fatalf("seed %d: repaired order infeasible", seed)
		}
		seedObj := c.Objective(order)

		j, err := m.SubmitWarm(in, Params{
			Budget: Duration(5 * time.Second), StepLimit: 2000,
			Seed: seed, Prune: &noPrune,
		}, warm)
		if err != nil {
			t.Fatalf("seed %d: submit: %v", seed, err)
		}
		<-j.Done()
		st := j.Status()
		if st.State != StateDone {
			t.Fatalf("seed %d: job %s: %s", seed, st.State, st.Error)
		}
		if !st.Result.WarmStarted {
			t.Fatalf("seed %d: result not warm-started", seed)
		}
		if st.Result.Objective > seedObj+1e-9 {
			t.Fatalf("seed %d: warm result %.6f worse than its seed %.6f",
				seed, st.Result.Objective, seedObj)
		}
	}
}

func compatibleOrder(in *model.Instance, order []int) bool {
	return sched.PrecedenceSet(in).Compatible(order)
}

// TestWarmVsColdProvedBitIdentical: on instances the exact backend
// proves, a warm start changes the path, never the answer — the proved
// optima agree to the last bit.
func TestWarmVsColdProvedBitIdentical(t *testing.T) {
	in := trapInstance(t)
	m := NewManager(Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	p := Params{Backends: []string{"cp"}, Budget: Duration(10 * time.Second)}

	cold, err := m.Submit(in, p)
	if err != nil {
		t.Fatal(err)
	}
	<-cold.Done()
	cst := cold.Status()
	if cst.State != StateDone || !cst.Result.Proved {
		t.Fatalf("cold solve: %+v", cst)
	}

	prior := make([]string, in.N())
	for i := range prior {
		prior[i] = in.Indexes[in.N()-1-i].Name
	}
	warmNames, err := evolve.RepairOrder(in, prior)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := m.SubmitWarm(in, p, warmNames)
	if err != nil {
		t.Fatal(err)
	}
	<-warm.Done()
	wst := warm.Status()
	if wst.State != StateDone || !wst.Result.Proved {
		t.Fatalf("warm solve: %+v", wst)
	}
	if wst.Result.CacheHit {
		t.Fatal("warm solve dedup'd against the cold solve despite the warm key")
	}
	if math.Float64bits(cst.Result.Objective) != math.Float64bits(wst.Result.Objective) {
		t.Fatalf("proved optima differ: cold %v, warm %v",
			cst.Result.Objective, wst.Result.Objective)
	}
}

// TestWarmHintOnWeightDrift: a request whose float parameters drifted
// misses the full solve key but hits the structural-hash hint table, so
// it runs warm-started from the previous order without the client
// saying anything.
func TestWarmHintOnWeightDrift(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	p := Params{Budget: Duration(10 * time.Second)}

	j1, err := m.Submit(sessionInstance(), p)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	if st := j1.Status(); st.State != StateDone {
		t.Fatalf("first solve: %+v", st)
	}

	drifted := sessionInstance()
	drifted.Queries[0].Weight = 3 // float drift only: same structure
	j2, err := m.Submit(drifted, p)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	st := j2.Status()
	if st.State != StateDone {
		t.Fatalf("drifted solve: %+v", st)
	}
	if st.Result.CacheHit {
		t.Fatal("drifted request hit the exact cache; the hint path never ran")
	}
	if !st.Result.WarmStarted {
		t.Fatal("drifted request not warm-started from the structural hint")
	}
	if got := m.metrics.warmHintHits.Value(); got != 1 {
		t.Fatalf("warm hint hits = %d, want 1", got)
	}
}

// TestWarmRejectedDegradesToCold drives the defensive path directly: a
// warm seed the repairer cannot fix degrades the run to a cold start —
// the job still completes, the rejection is counted and traced.
func TestWarmRejectedDegradesToCold(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	in := sessionInstance()
	canon, perm := codec.Canonicalize(in)
	origOf := make([]int, len(perm))
	for i, c := range perm {
		origOf[c] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID: "warm-rej", hash: "h", tenant: DefaultTenant, origOf: origOf,
		state: StateQueued, notify: make(chan struct{}), done: make(chan struct{}),
		queuedAt: time.Now(), trace: obs.NewTrace(0),
	}
	r := &run{
		key: "warm-rej-key", canon: canon,
		params: Params{StepLimit: 500}, budget: 2 * time.Second,
		structHash: "warm-rej-struct",
		initial:    []int{0}, // wrong length: unrepairable by construction
		tenant:     DefaultTenant, ctx: ctx, cancel: cancel,
	}
	r.jobs = []*Job{j}
	j.run = r
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.mu.Unlock()

	m.execute(r)
	<-j.Done()
	st := j.Status()
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("degraded job: %+v", st)
	}
	if st.Result.WarmStarted {
		t.Fatal("rejected seed still marked warm-started")
	}
	if got := m.metrics.warmRejected.Value(); got != 1 {
		t.Fatalf("warm rejections = %d, want 1", got)
	}
	snap := j.TraceSnapshot()
	found := false
	for _, sp := range snap.Spans {
		if sp.Kind == obs.SpanWarmStart && strings.Contains(sp.Detail, "rejected") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s rejection span in trace: %+v", obs.SpanWarmStart, snap.Spans)
	}
}

// TestSubmitWarmValidation: malformed warm orders are client errors,
// not degraded runs.
func TestSubmitWarmValidation(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	in := sessionInstance()
	for name, warm := range map[string][]string{
		"empty":    nil,
		"short":    {"a", "b"},
		"unknown":  {"a", "b", "c", "zz"},
		"repeated": {"a", "b", "c", "a"},
	} {
		_, err := m.SubmitWarm(in, Params{}, warm)
		var inv *InvalidError
		if err == nil {
			t.Fatalf("%s warm order accepted", name)
		} else if !errors.As(err, &inv) {
			t.Fatalf("%s warm order: error %v is not an InvalidError", name, err)
		}
	}
}
