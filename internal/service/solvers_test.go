// Tests for the registry-backed edges of the service: the GET /solvers
// catalogue, 400s with valid sets for unknown backends/params, and the
// end-to-end param plumbing ("params":{"cp.workers":N} must reach the
// cp engine, observable in the Workers telemetry).
package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/solver/backend"
)

func TestSolversEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/solvers")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body := decode[struct {
		Solvers []SolverInfo `json:"solvers"`
	}](t, resp)

	byName := map[string]SolverInfo{}
	for _, s := range body.Solvers {
		byName[s.Name] = s
	}
	for _, want := range []string{"greedy", "dp", "bruteforce", "astar", "cp", "mip",
		"tabu-b", "tabu-f", "lns", "vns", "anneal"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("/solvers missing %q: %+v", want, body.Solvers)
		}
	}
	cp := byName["cp"]
	if cp.Kind != "exact" || !cp.Proves {
		t.Errorf("cp self-description wrong: %+v", cp)
	}
	var workersSpec, tailSpec *SolverParam
	for i, p := range cp.Params {
		switch p.Name {
		case "cp.workers":
			workersSpec = &cp.Params[i]
		case "cp.tail_bound":
			tailSpec = &cp.Params[i]
		}
	}
	if workersSpec == nil {
		t.Fatalf("cp declares no cp.workers param: %+v", cp.Params)
	}
	if workersSpec.Type != "int" || workersSpec.Help == "" {
		t.Errorf("cp.workers spec incomplete: %+v", workersSpec)
	}
	if tailSpec == nil {
		t.Fatalf("cp declares no cp.tail_bound param: %+v", cp.Params)
	}
	if tailSpec.Type != "bool" || tailSpec.Help == "" || tailSpec.Default != true {
		t.Errorf("cp.tail_bound spec incomplete (want bool, default true): %+v", tailSpec)
	}
	if byName["vns"].FinisherRank <= byName["lns"].FinisherRank {
		t.Errorf("vns must outrank lns as finisher: %d vs %d",
			byName["vns"].FinisherRank, byName["lns"].FinisherRank)
	}
}

// submitExpect400 posts a job request and asserts a 400 whose error
// body contains every needle (the "valid set" contract).
func submitExpect400(t *testing.T, url string, req solveRequest, needles ...string) {
	t.Helper()
	resp := postJSON(t, url+"/jobs", req)
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, raw)
	}
	for _, n := range needles {
		if !strings.Contains(string(raw), n) {
			t.Errorf("400 body missing %q: %s", n, raw)
		}
	}
}

func TestSubmitRejectsUnknownBackend(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	in := trapInstance(t)
	// The error must name the offender and list the valid backends so a
	// client can self-correct without reading the docs.
	submitExpect400(t, ts.URL, solveRequest{Instance: in,
		Params: Params{Backends: []string{"cp", "simplex-magic"}}},
		"simplex-magic", "cp", "vns", "greedy")
}

func TestSubmitRejectsBadParams(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	in := trapInstance(t)
	cases := []struct {
		name    string
		params  map[string]any
		needles []string
	}{
		{"unknown key", map[string]any{"cp.wrokers": 4}, []string{"cp.wrokers", "cp.workers"}},
		{"ill-typed", map[string]any{"cp.workers": "four"}, []string{"cp.workers", "int"}},
		{"ill-typed bool", map[string]any{"cp.tail_bound": "yes"}, []string{"cp.tail_bound", "bool"}},
		{"fractional", map[string]any{"cp.workers": 2.5}, []string{"cp.workers"}},
		{"out of range", map[string]any{"cp.workers": -1}, []string{"cp.workers", "minimum"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			submitExpect400(t, ts.URL, solveRequest{Instance: in,
				Params: Params{Params: c.params}}, c.needles...)
		})
	}
}

// cpWorkersOf digs the cp backend's reported worker count out of a
// solve result.
func cpWorkersOf(t *testing.T, res *SolveResult) int {
	t.Helper()
	for _, b := range res.Backends {
		if b.Name == "cp" {
			return b.Workers
		}
	}
	t.Fatalf("no cp telemetry in %+v", res.Backends)
	return 0
}

func TestParamsReachCPEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	in := trapInstance(t)
	resp := postJSON(t, ts.URL+"/solve", solveRequest{Instance: in, Params: Params{
		Budget:   Duration(10 * time.Second),
		Backends: []string{"cp"},
		Params:   map[string]any{"cp.workers": 2},
	}})
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	res := decode[SolveResult](t, resp)
	if got := cpWorkersOf(t, &res); got != 2 {
		t.Fatalf("cp ran %d workers, want 2 (params did not reach the engine)", got)
	}
	if !res.Proved {
		t.Error("cp did not prove the trap instance")
	}
}

func TestDeprecatedCPWorkersConfigStillApplies(t *testing.T) {
	// The deprecated Config.CPWorkers alias must still size the proof
	// search when the request itself names no params — and an explicit
	// request param must win over it.
	_, ts := newTestServer(t, Config{Workers: 1, CPWorkers: 2})
	in := trapInstance(t)

	resp := postJSON(t, ts.URL+"/solve", solveRequest{Instance: in, Params: Params{
		Budget: Duration(10 * time.Second), Backends: []string{"cp"},
	}})
	res := decode[SolveResult](t, resp)
	if got := cpWorkersOf(t, &res); got != 2 {
		t.Fatalf("config alias: cp ran %d workers, want 2", got)
	}

	resp = postJSON(t, ts.URL+"/solve", solveRequest{Instance: in, Params: Params{
		Budget: Duration(10 * time.Second), Backends: []string{"cp"},
		Params: map[string]any{"cp.workers": 3},
	}})
	res = decode[SolveResult](t, resp)
	if got := cpWorkersOf(t, &res); got != 3 {
		t.Fatalf("request param must beat the config alias: got %d workers, want 3", got)
	}
}

func TestQueryStringParams(t *testing.T) {
	// Bare-instance bodies carry their knobs in the URL query; repeated
	// param=k=v entries must round-trip into the typed bag.
	_, ts := newTestServer(t, Config{Workers: 1})
	in := trapInstance(t)
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(
		ts.URL+"/solve?backends=cp&budget=10s&param=cp.workers%3D2",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	res := decode[SolveResult](t, resp)
	if got := cpWorkersOf(t, &res); got != 2 {
		t.Fatalf("query param: cp ran %d workers, want 2", got)
	}

	// A bad query param fails fast with the valid set.
	resp, err = http.Post(ts.URL+"/solve?param=cp.nope%3D1", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "cp.workers") {
		t.Fatalf("bad query param: status %d body %s", resp.StatusCode, raw)
	}
}

func TestParamsEnterCacheKey(t *testing.T) {
	// Two requests differing only in params must not share a cache
	// entry; identical params must.
	k1 := solveKey("h", Params{}, backend.Params{"cp.workers": 2}, time.Second)
	k2 := solveKey("h", Params{}, backend.Params{"cp.workers": 4}, time.Second)
	k3 := solveKey("h", Params{}, backend.Params{"cp.workers": 2}, time.Second)
	if k1 == k2 {
		t.Fatalf("param bags do not distinguish solve keys: %s", k1)
	}
	if k1 != k3 {
		t.Fatalf("identical bags produced distinct keys: %s vs %s", k1, k3)
	}
}
