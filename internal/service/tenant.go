package service

import (
	"container/heap"
	"time"
)

// Multi-tenant admission and scheduling. Every job carries a tenant id
// (the X-Tenant header or the request's "tenant" field; empty means the
// shared "default" tenant). Admission applies an optional per-tenant
// token-bucket rate limit and queued-run quota; dispatch replaces the
// old single priority queue with deficit round-robin across per-tenant
// queues, so a tenant flooding the server delays its own backlog, not
// everyone else's. Within one tenant the previous discipline is
// unchanged: a max-heap on (priority, submission order).

// DefaultTenant is the tenant id used when a request names none.
const DefaultTenant = "default"

// maxTenantLen bounds tenant ids; they become Prometheus label values
// and map keys, so unbounded attacker-chosen strings are unwelcome.
const maxTenantLen = 64

// validTenant reports whether a tenant id is acceptable: non-empty,
// bounded, printable ASCII without spaces, quotes or backslashes.
func validTenant(t string) bool {
	if t == "" || len(t) > maxTenantLen {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// tenantQueue is one tenant's pending runs plus its DRR deficit.
type tenantQueue struct {
	name    string
	queue   runQueue
	deficit float64 // seconds of service credit
	inRing  bool
}

// tenantSched schedules runs across tenants with deficit round-robin.
// All methods require the caller to hold Manager.mu; the scheduler has
// no locking of its own.
type tenantSched struct {
	// quantum is the service credit (seconds) granted per round-robin
	// visit; a run is dispatched when its tenant's accumulated deficit
	// covers the run's budget, so tenants receive solve *time* in equal
	// shares, not merely equal run counts.
	quantum float64

	tenants map[string]*tenantQueue
	ring    []*tenantQueue // tenants with pending runs, in rotation order
	cursor  int
	size    int
}

func newTenantSched(quantum float64) *tenantSched {
	if quantum <= 0 {
		quantum = 1
	}
	return &tenantSched{quantum: quantum, tenants: make(map[string]*tenantQueue)}
}

func (s *tenantSched) len() int { return s.size }

// tenantLen reports one tenant's queued-run count (the quota basis).
func (s *tenantSched) tenantLen(tenant string) int {
	if tq, ok := s.tenants[tenant]; ok {
		return tq.queue.Len()
	}
	return 0
}

// depths snapshots per-tenant queue depths for the metrics endpoint.
func (s *tenantSched) depths() map[string]int {
	out := make(map[string]int)
	for name, tq := range s.tenants {
		if n := tq.queue.Len(); n > 0 {
			out[name] = n
		}
	}
	return out
}

// push enqueues a run under its tenant, activating the tenant in the
// rotation if it was idle.
func (s *tenantSched) push(r *run) {
	tq := s.tenants[r.tenant]
	if tq == nil {
		tq = &tenantQueue{name: r.tenant}
		s.tenants[r.tenant] = tq
	}
	heap.Push(&tq.queue, r)
	s.size++
	if !tq.inRing {
		tq.inRing = true
		s.ring = append(s.ring, tq)
	}
}

// pop dispatches the next run under deficit round-robin: each rotation
// visit either serves the tenant's head run (when its deficit covers
// the run's budget) or tops the deficit up by one quantum and moves on.
// A lone active tenant is served immediately, so single-tenant traffic
// keeps the exact pre-multi-tenancy behavior. Returns nil when nothing
// is queued.
func (s *tenantSched) pop() *run {
	if s.size == 0 {
		return nil
	}
	for {
		tq := s.ring[s.cursor]
		cost := tq.queue[0].budget.Seconds()
		if tq.deficit >= cost || len(s.ring) == 1 {
			r := heap.Pop(&tq.queue).(*run)
			s.size--
			tq.deficit -= cost
			if tq.deficit < 0 {
				tq.deficit = 0
			}
			if tq.queue.Len() == 0 {
				s.deactivate(tq)
			} else {
				s.advance()
			}
			return r
		}
		tq.deficit += s.quantum
		s.advance()
	}
}

// remove deletes a specific run (cancellation); reports whether it was
// still queued.
func (s *tenantSched) remove(r *run) bool {
	tq := s.tenants[r.tenant]
	if tq == nil || r.index < 0 {
		return false
	}
	heap.Remove(&tq.queue, r.index)
	s.size--
	if tq.queue.Len() == 0 && tq.inRing {
		s.deactivate(tq)
	}
	return true
}

// promote re-heaps a run after a priority bump from a single-flight
// attacher.
func (s *tenantSched) promote(r *run) {
	if tq := s.tenants[r.tenant]; tq != nil && r.index >= 0 {
		heap.Fix(&tq.queue, r.index)
	}
}

func (s *tenantSched) advance() {
	if len(s.ring) > 0 {
		s.cursor = (s.cursor + 1) % len(s.ring)
	}
}

// deactivate removes an emptied tenant from the rotation and resets its
// deficit so idle periods never bank service credit.
func (s *tenantSched) deactivate(tq *tenantQueue) {
	tq.inRing = false
	tq.deficit = 0
	for i, q := range s.ring {
		if q == tq {
			s.ring = append(s.ring[:i], s.ring[i+1:]...)
			if i < s.cursor {
				s.cursor--
			}
			break
		}
	}
	if s.cursor >= len(s.ring) {
		s.cursor = 0
	}
}

// tokenBucket is a standard token bucket: capacity burst, refilled at
// rate tokens/second. Caller must hold Manager.mu.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take withdraws n tokens, reporting false (and withdrawing nothing)
// when the bucket holds fewer.
func (b *tokenBucket) take(now time.Time, n float64) bool {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// admitTenant applies the per-tenant token-bucket rate limit, charging
// n submissions (a batch charges its whole item count up front, so an
// oversized batch is rejected atomically rather than half-admitted).
// Caller holds m.mu.
func (m *Manager) admitTenant(tenant string, n int) error {
	if m.cfg.TenantRate <= 0 {
		return nil
	}
	b := m.buckets[tenant]
	if b == nil {
		burst := m.cfg.TenantBurst
		if burst <= 0 {
			burst = int(2*m.cfg.TenantRate) + 1
		}
		b = newTokenBucket(m.cfg.TenantRate, float64(burst), time.Now())
		m.buckets[tenant] = b
	}
	if !b.take(time.Now(), float64(n)) {
		return ErrRateLimited
	}
	return nil
}
