package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/datasets"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/backend"
)

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

func waitDone(t *testing.T, j *Job, timeout time.Duration) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(timeout):
		t.Fatalf("job %s not done after %v (state %q)", j.ID, timeout, j.Status().State)
	}
	return j.Status()
}

// TestTenantFairScheduling is the starvation regression: one tenant
// floods the queue with 20 budget-burning jobs, then a second tenant
// submits 4. Under the old single FIFO the quiet tenant's jobs would
// wait behind the entire flood (queue wait ≈ the flooder's worst); with
// deficit round-robin they interleave, so the quiet tenant's worst
// queue wait must come in far below the flooder's.
func TestTenantFairScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based scheduling test")
	}
	m := newTestManager(t, Config{
		Workers:       1,
		DefaultBudget: 50 * time.Millisecond,
		QueueCap:      64,
	})
	p := Params{Backends: []string{"vns"}, Budget: Duration(50 * time.Millisecond)}

	var noisy, quiet []*Job
	for i := 0; i < 20; i++ {
		p := p
		p.Tenant = "noisy"
		p.Seed = int64(i) // distinct solve keys: no dedup, no cache
		j, err := m.Submit(slowInstance(int64(i)), p)
		if err != nil {
			t.Fatal(err)
		}
		noisy = append(noisy, j)
	}
	for i := 0; i < 4; i++ {
		p := p
		p.Tenant = "quiet"
		p.Seed = int64(100 + i)
		j, err := m.Submit(slowInstance(int64(100+i)), p)
		if err != nil {
			t.Fatal(err)
		}
		quiet = append(quiet, j)
	}

	maxWait := func(jobs []*Job) time.Duration {
		var max time.Duration
		for _, j := range jobs {
			st := waitDone(t, j, 30*time.Second)
			if st.State != StateDone {
				t.Fatalf("job %s ended %q: %s", j.ID, st.State, st.Error)
			}
			if w := st.StartedAt.Sub(st.QueuedAt); w > max {
				max = w
			}
		}
		return max
	}
	noisyMax := maxWait(noisy)
	quietMax := maxWait(quiet)
	t.Logf("queue wait: noisy max %v, quiet max %v", noisyMax, quietMax)

	// Under FIFO the quiet tenant (submitted last) waits at least as
	// long as the flood's tail — the ratio would be ~1. DRR interleaves
	// one quiet run per noisy run, so the quiet tail sees only ~2× its
	// own backlog.
	if quietMax > noisyMax*6/10 {
		t.Errorf("quiet tenant starved: quiet max wait %v vs noisy max %v", quietMax, noisyMax)
	}
}

// TestTenantRateLimit: the token bucket rejects the burst+1'th
// submission with ErrRateLimited, tenants have independent buckets, and
// a batch is charged atomically (an over-limit batch is rejected whole,
// not half-admitted).
func TestTenantRateLimit(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, TenantRate: 0.001, TenantBurst: 2})
	p := Params{Backends: []string{"greedy"}, Budget: Duration(50 * time.Millisecond)}

	for i := 0; i < 2; i++ {
		p := p
		p.Tenant = "a"
		p.Seed = int64(i)
		if _, err := m.Submit(slowInstance(int64(i)), p); err != nil {
			t.Fatalf("submission %d within burst rejected: %v", i, err)
		}
	}
	p3 := p
	p3.Tenant = "a"
	p3.Seed = 99
	if _, err := m.Submit(slowInstance(99), p3); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst submission: err = %v, want ErrRateLimited", err)
	}
	pb := p
	pb.Tenant = "b"
	if _, err := m.Submit(slowInstance(7), pb); err != nil {
		t.Fatalf("tenant b throttled by tenant a's bucket: %v", err)
	}

	// Batch atomicity: tenant c has 2 tokens, a 3-instance batch must be
	// rejected in full.
	pc := p
	pc.Tenant = "c"
	_, err := m.SubmitBatch([]*model.Instance{slowInstance(1), slowInstance(2), slowInstance(3)}, pc)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-limit batch: err = %v, want ErrRateLimited", err)
	}
	// ...and the rejection must not have burned the tokens.
	pc2 := pc
	pc2.Seed = 42
	if _, err := m.Submit(slowInstance(42), pc2); err != nil {
		t.Fatalf("tenant c's tokens consumed by rejected batch: %v", err)
	}
}

// TestTenantQueueQuota: a tenant's queued runs are capped independently
// of the shared queue.
func TestTenantQueueQuota(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, TenantQueueCap: 2, QueueCap: 64})
	p := Params{Backends: []string{"vns"}, Budget: Duration(2 * time.Second), Tenant: "hog"}

	// One run occupies the worker; once it leaves the queue, the next two
	// fill the tenant's quota. Submission 4 must bounce while another
	// tenant still fits.
	var jobs []*Job
	j0, err := m.Submit(slowInstance(0), p)
	if err != nil {
		t.Fatalf("submission 0: %v", err)
	}
	jobs = append(jobs, j0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.mu.Lock()
		queued := m.sched.len()
		m.mu.Unlock()
		if queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first run never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 1; i < 3; i++ {
		p := p
		p.Seed = int64(i)
		j, err := m.Submit(slowInstance(int64(i)), p)
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	p4 := p
	p4.Seed = 99
	if _, err := m.Submit(slowInstance(99), p4); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("over-quota submission: err = %v, want ErrTenantQueueFull", err)
	}
	other := p
	other.Tenant = "guest"
	other.Seed = 50
	if _, err := m.Submit(slowInstance(50), other); err != nil {
		t.Fatalf("other tenant blocked by hog's quota: %v", err)
	}
	for _, j := range jobs {
		_ = m.Cancel(j.ID)
	}
}

// TestFastPathServiceConformance: a default-backends solve of a small
// instance is served by the fast path (Routed), a forced full-portfolio
// solve of the identical instance returns the bit-identical objective,
// and instances across the routing threshold behave as documented
// (n=12 routed, n=13 raced). This is the service-level guarantee that
// routing never changes results, only latency.
func TestFastPathServiceConformance(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, MaxBudget: 60 * time.Second})

	for _, n := range []int{6, 12} {
		in := datasets.ReducedTPCH(n, datasets.Low)
		c := model.MustCompile(in)
		forced := backend.Default(c) // the exact set the race would use

		routedJob, err := m.Submit(in, Params{Budget: Duration(30 * time.Second)})
		if err != nil {
			t.Fatal(err)
		}
		routedSt := waitDone(t, routedJob, 45*time.Second)
		if routedSt.State != StateDone {
			t.Fatalf("n=%d: routed job %q: %s", n, routedSt.State, routedSt.Error)
		}
		if !routedSt.Result.Routed {
			t.Errorf("n=%d: default solve not served by the fast path", n)
		}
		if !routedSt.Result.Proved {
			t.Errorf("n=%d: routed solve carries no proof", n)
		}

		racedJob, err := m.Submit(in, Params{
			Budget: Duration(30 * time.Second), Backends: forced,
		})
		if err != nil {
			t.Fatal(err)
		}
		racedSt := waitDone(t, racedJob, 45*time.Second)
		if racedSt.State != StateDone {
			t.Fatalf("n=%d: raced job %q: %s", n, racedSt.State, racedSt.Error)
		}
		if racedSt.Result.Routed {
			t.Errorf("n=%d: explicit backend list must disable routing", n)
		}
		if routedSt.Result.Objective != racedSt.Result.Objective {
			t.Errorf("n=%d: routed objective %v != raced objective %v",
				n, routedSt.Result.Objective, racedSt.Result.Objective)
		}
	}

	// Above the threshold the race runs even with default backends.
	big := datasets.ReducedTPCH(13, datasets.Low)
	j, err := m.Submit(big, Params{Budget: Duration(2 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j, 30*time.Second)
	if st.Result != nil && st.Result.Routed {
		t.Error("n=13 instance routed past the n=12 threshold")
	}

	snap := m.Metrics()
	if snap.FastPath.Routed < 2 {
		t.Errorf("fastpath routed counter = %d, want >= 2", snap.FastPath.Routed)
	}
}

// TestTenantHeaderAndMetrics: the X-Tenant header attributes the job,
// shows up in the job status, the flight-recorder trace, the JSON
// metrics snapshot, and the Prometheus text exposition.
func TestTenantHeaderAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	buf, _ := json.Marshal(solveRequest{Instance: trapInstance(t),
		Params: Params{Budget: Duration(5 * time.Second)}})
	req, _ := http.NewRequest("POST", ts.URL+"/solve", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap := decode[MetricsSnapshot](t, mresp)
	if snap.Tenants["acme"].Submitted != 1 || snap.Tenants["acme"].Completed != 1 {
		t.Errorf("tenant snapshot = %+v, want 1 submitted + 1 completed for acme", snap.Tenants)
	}

	preq, _ := http.NewRequest("GET", ts.URL+"/metrics?format=prometheus", nil)
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	for _, want := range []string{
		`idd_tenant_jobs_submitted_total{tenant="acme"} 1`,
		`idd_tenant_jobs_completed_total{tenant="acme"} 1`,
		`idd_tenant_queue_wait_seconds_count{tenant="acme"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("prometheus text missing %q", want)
		}
	}
}

// TestTenantValidation: bad tenant ids are 400s, not label bombs.
func TestTenantValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	for _, bad := range []string{`a"b`, "a b", "x\n", strings.Repeat("t", 65), "héllo"} {
		_, err := m.Submit(trapInstance(t), Params{Tenant: bad})
		var inv *InvalidError
		if !errors.As(err, &inv) {
			t.Errorf("tenant %q accepted (err=%v), want InvalidError", bad, err)
		}
	}
}

// readSSEN parses exactly limit events off an open SSE stream and
// returns without waiting for the stream to close — for tests that
// deliberately drop a connection mid-stream.
func readSSEN(t *testing.T, body io.Reader, limit int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
				if len(out) >= limit {
					return out
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	return out
}

// TestBatchEndToEnd: POST /batch fans instances out, per-item jobs are
// individually addressable, the aggregate status reaches done with
// per-item objectives, the SSE stream carries item events plus a
// terminal batch_done, and the trace endpoint returns one sub-solve
// timeline per item.
func TestBatchEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	in := trapInstance(t)
	buf, _ := json.Marshal(map[string]any{
		"instances": []*model.Instance{in, in, slowInstance(5)},
		"budget":    "3s",
		"tenant":    "batcher",
	})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	st := decode[BatchStatus](t, resp)
	if st.Tenant != "batcher" || len(st.Items) != 3 {
		t.Fatalf("batch status %+v", st)
	}

	// The SSE stream must deliver one item event per instance and then
	// batch_done: 1 queued + 3 items + 1 batch_done.
	evResp, err := http.Get(ts.URL + "/batch/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, evResp.Body)
	evResp.Body.Close()
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5: %+v", len(events), events)
	}
	items := 0
	for _, ev := range events[1 : len(events)-1] {
		if ev.event != EventItem || ev.data.Item == nil || ev.data.JobID == "" {
			t.Errorf("middle event not a complete item event: %+v", ev)
			continue
		}
		items++
	}
	if items != 3 {
		t.Errorf("item events = %d, want 3", items)
	}
	if last := events[len(events)-1]; last.event != EventBatchDone {
		t.Errorf("last event %+v, want batch_done", last)
	}

	// Aggregate status: done, every item done with an objective, and the
	// two identical instances must agree (dedup/cache may serve one).
	resp, err = http.Get(ts.URL + "/batch/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	final := decode[BatchStatus](t, resp)
	if final.State != "done" || final.Remaining != 0 {
		t.Fatalf("final batch %+v", final)
	}
	for _, it := range final.Items {
		if it.State != StateDone || it.Objective == nil {
			t.Errorf("item %d: %+v", it.Index, it)
		}
		// Each item is a real job with its own endpoints.
		jr, err := http.Get(ts.URL + "/jobs/" + it.JobID)
		if err != nil {
			t.Fatal(err)
		}
		js := decode[JobStatus](t, jr)
		if js.State != StateDone || js.Tenant != "batcher" {
			t.Errorf("item %d job: state %q tenant %q", it.Index, js.State, js.Tenant)
		}
	}
	if *final.Items[0].Objective != *final.Items[1].Objective {
		t.Errorf("identical instances disagree: %v vs %v",
			*final.Items[0].Objective, *final.Items[1].Objective)
	}

	// Per-sub-solve traces.
	trResp, err := http.Get(ts.URL + "/batch/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tr BatchTrace
	if err := json.NewDecoder(trResp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	trResp.Body.Close()
	if len(tr.Items) != 3 {
		t.Fatalf("trace items = %d, want 3", len(tr.Items))
	}
	for i, item := range tr.Items {
		if item.ID == "" || len(item.Spans) == 0 {
			t.Errorf("trace item %d empty: %+v", i, item)
		}
	}
}

// TestBatchReplayAndCancel: reconnecting a batch SSE stream with
// Last-Event-ID replays only events after the cursor, and DELETE on a
// batch aborts every outstanding sub-solve promptly — far faster than
// letting their budgets run out.
func TestBatchReplayAndCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBudget: 30 * time.Second})
	buf, _ := json.Marshal(map[string]any{
		"instances": []*model.Instance{slowInstance(11), slowInstance(12), slowInstance(13)},
		"budget":    "20s",
		"backends":  []string{"vns"},
	})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	st := decode[BatchStatus](t, resp)

	// First connection: read the queued event (seq 0), then drop.
	evResp, err := http.Get(ts.URL + "/batch/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	first := readSSEN(t, evResp.Body, 1)
	evResp.Body.Close()
	if len(first) != 1 || first[0].event != EventQueued || first[0].id != "0" {
		t.Fatalf("first event %+v, want queued seq 0", first)
	}

	// Cancel the whole batch; the sub-solves have ~60s of budget left
	// between them, so a prompt terminal state proves cancellation
	// propagated into the running solve.
	start := time.Now()
	req, _ := http.NewRequest("DELETE", ts.URL+"/batch/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	// Reconnect with Last-Event-ID: 0 — the stream must pick up at seq 1
	// and run to batch_done without re-delivering seq 0.
	req, _ = http.NewRequest("GET", ts.URL+"/batch/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "0")
	evResp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	replayed := readSSE(t, evResp.Body)
	evResp.Body.Close()
	elapsed := time.Since(start)

	if elapsed > 10*time.Second {
		t.Errorf("batch cancellation took %v; budgets were 20s each, want prompt abort", elapsed)
	}
	if len(replayed) != 4 {
		t.Fatalf("replayed %d events, want 4 (3 items + batch_done): %+v", len(replayed), replayed)
	}
	for i, ev := range replayed {
		if ev.id != fmt.Sprint(i+1) {
			t.Errorf("replayed event %d has seq %s, want %d (no re-delivery of seq 0)", i, ev.id, i+1)
		}
	}
	for _, ev := range replayed[:3] {
		if ev.event != EventItem || ev.data.State != StateCanceled {
			t.Errorf("item event %+v, want canceled item", ev)
		}
	}
	if replayed[3].event != EventBatchDone {
		t.Errorf("terminal event %+v, want batch_done", replayed[3])
	}

	final := decode[BatchStatus](t, func() *http.Response {
		r, err := http.Get(ts.URL + "/batch/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}())
	if final.State != "done" {
		t.Errorf("batch state %q after cancel, want done", final.State)
	}
	for _, it := range final.Items {
		if it.State != StateCanceled {
			t.Errorf("item %d state %q, want canceled", it.Index, it.State)
		}
	}
}

// TestBatchValidation: empty and oversized batches are 400s, unknown
// batch ids 404.
func TestBatchValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxBatchItems: 2})
	for body, want := range map[string]int{
		`{"instances": []}`: http.StatusBadRequest,
		`{"nope": 1}`:       http.StatusBadRequest,
	} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("body %s: status %d, want %d", body, resp.StatusCode, want)
		}
	}
	in := trapInstance(t)
	if _, err := s.Manager().SubmitBatch([]*model.Instance{in, in, in}, Params{}); err == nil {
		t.Error("3-item batch accepted with MaxBatchItems=2")
	}
	resp, err := http.Get(ts.URL + "/batch/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch: status %d, want 404", resp.StatusCode)
	}
}
