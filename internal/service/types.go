// Package service is the iddserver subsystem: a long-running HTTP/JSON
// solve service multiplexing many concurrent deployment-ordering
// requests over the portfolio orchestrator. It adds what a library call
// cannot provide: a bounded worker pool with priorities, queue
// backpressure and graceful drain; a canonical-hash solution cache with
// single-flight deduplication (concurrent identical requests share one
// solve); and per-job server-sent event streams relaying every incumbent
// improvement as the portfolio finds it.
//
// Observability is built on internal/obs: every job carries a bounded
// flight-recorder trace of timestamped spans, and the manager keeps
// Prometheus-convention counters and latency histograms (queue wait,
// solve wall, end-to-end) on a per-manager registry.
//
// The service is multi-tenant: requests carry a tenant id (X-Tenant
// header or "tenant" field), dispatch is deficit round-robin across
// per-tenant queues so one tenant's flood cannot starve another's
// sparse traffic, and optional per-tenant rate limits and queue quotas
// bound admission. Small instances skip the portfolio race entirely: a
// feature-based router sends them straight to one applicable exact
// backend (falling back to the race if the proof doesn't land), which
// returns the identical proved optimum at a fraction of the overhead.
//
// Re-solve sessions make workload drift a first-class operation: a
// session holds an instance and its deployed plan; POST deltas (query
// weight changes, index adds/drops, new plans/precedences) re-solve
// warm-started from the previous incumbent, repaired against the delta,
// and the session's SSE stream carries only the changed tail of the
// plan. The solution cache is delta-aware underneath: a structural hash
// (names and shapes, no float parameters) lets a weight-only change
// reuse the previous order as a warm seed instead of missing outright.
//
// Endpoints (see cmd/iddserver and the README for the wire details):
//
//	POST   /solve             solve synchronously (small instances)
//	POST   /jobs              enqueue an async solve job
//	GET    /jobs/{id}         job status + result when finished
//	DELETE /jobs/{id}         cancel a queued or running job
//	GET    /jobs/{id}/events  server-sent events: incumbent progress
//	GET    /jobs/{id}/trace   flight-recorder span timeline of the solve
//	POST   /batch             enqueue N instances as one batch
//	GET    /batch/{id}        batch status + per-item results
//	DELETE /batch/{id}        cancel every outstanding batch item
//	GET    /batch/{id}/events server-sent events: per-item completions
//	GET    /batch/{id}/trace  per-item flight-recorder traces
//	POST   /sessions          create a re-solve session (initial solve)
//	GET    /sessions/{id}     session status: plan, revision, last result
//	POST   /sessions/{id}/delta  apply a workload delta, re-solve warm
//	GET    /sessions/{id}/events server-sent events: changed plan tails
//	DELETE /sessions/{id}     close the session
//	GET    /solvers           registered backends + declared param specs
//	GET    /healthz           liveness (503 while draining)
//	GET    /metrics           JSON snapshot, or Prometheus text with
//	                          ?format=prometheus / Accept: text/plain
package service

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/evolving-olap/idd/internal/model"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("1.5s") and unmarshals from either a duration string or a number of
// seconds.
type Duration time.Duration

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "2s"-style strings or plain numbers (seconds).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dd, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", x, err)
		}
		*d = Duration(dd)
	case float64:
		*d = Duration(time.Duration(x * float64(time.Second)))
	default:
		return fmt.Errorf("bad duration %v (want string or seconds)", v)
	}
	return nil
}

// Params are the per-request solve knobs. All fields are optional; the
// server clamps Budget to its configured maximum and fills defaults.
// Every field except Priority and Tenant contributes to the
// cache/single-flight key — two requests dedupe only when they would
// run identically (identical solves dedupe across tenants on purpose;
// the result is a pure function of the instance and knobs).
type Params struct {
	// Budget is the wall-clock solve budget (default/maximum from the
	// server config).
	Budget Duration `json:"budget,omitempty"`
	// Backends restricts the portfolio backend set (empty = auto).
	Backends []string `json:"backends,omitempty"`
	// Workers bounds concurrent backends inside the portfolio run
	// (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Seed drives the randomized backends.
	Seed int64 `json:"seed,omitempty"`
	// StepLimit bounds per-backend search steps (0 = none); useful for
	// reproducible tests.
	StepLimit int64 `json:"step_limit,omitempty"`
	// Params carries backend-declared typed knobs by fully qualified
	// name (e.g. {"cp.workers": 4}). Keys and values are validated
	// against the registry's declared specs at submission; unknown or
	// ill-typed entries are rejected with a 400 naming the valid set
	// (see GET /solvers for the specs).
	Params map[string]any `json:"params,omitempty"`
	// Priority orders the job queue: higher runs earlier (FIFO within a
	// priority). Not part of the dedup key.
	Priority int `json:"priority,omitempty"`
	// Prune toggles the §5 pruning analysis before the solve
	// (nil = true).
	Prune *bool `json:"prune,omitempty"`
	// Tenant attributes the request for fair scheduling, rate limits and
	// per-tenant metrics (the X-Tenant header overrides it; empty means
	// the shared "default" tenant). Not part of the dedup key.
	Tenant string `json:"tenant,omitempty"`
}

func (p Params) pruneEnabled() bool { return p.Prune == nil || *p.Prune }

// solveRequest is the JSON envelope accepted by POST /solve and
// POST /jobs. Compact text-format bodies carry the same knobs as URL
// query parameters instead.
type solveRequest struct {
	Instance *model.Instance `json:"instance"`
	Params
}

// BackendSummary is per-backend telemetry in a solve result. Objective
// is omitted when the backend produced nothing (the +Inf sentinel is not
// representable in JSON).
type BackendSummary struct {
	Name         string   `json:"name"`
	Objective    *float64 `json:"objective,omitempty"`
	Proved       bool     `json:"proved,omitempty"`
	Improvements int      `json:"improvements,omitempty"`
	Iterations   int64    `json:"iterations,omitempty"`
	// Workers is the internal parallelism the backend reported running
	// (cp's branch-and-bound goroutines); the observable proof that a
	// "cp.workers" param reached the engine.
	Workers int      `json:"workers,omitempty"`
	Wall    Duration `json:"wall,omitempty"`
	Error   string   `json:"error,omitempty"`
	Skipped bool     `json:"skipped,omitempty"`
	// Counters are the backend's engine counters under stable snake_case
	// keys — e.g. cp's prune-cause breakdown (pruned_incumbent,
	// pruned_tail, infeasible — summing to fails) and the local searches'
	// steps/accepted/adopted.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// SolveResult is the outcome of one solve, in the coordinate space of
// the requesting instance (Order[k] indexes into the submitted
// Instance.Indexes; Names mirrors it by name).
type SolveResult struct {
	Order        []int            `json:"order"`
	Names        []string         `json:"names"`
	Objective    float64          `json:"objective"`
	DeployTime   float64          `json:"deploy_time"`
	BaseRuntime  float64          `json:"base_runtime"`
	FinalRuntime float64          `json:"final_runtime"`
	Proved       bool             `json:"proved"`
	Winner       string           `json:"winner,omitempty"`
	Wall         Duration         `json:"wall"`
	Backends     []BackendSummary `json:"backends,omitempty"`
	// CacheHit marks a result served from the solution cache; Shared
	// marks a job that attached to an identical in-flight solve
	// (single-flight deduplication).
	CacheHit bool `json:"cache_hit,omitempty"`
	Shared   bool `json:"shared,omitempty"`
	// Routed marks a solve served by the fast path: the feature router
	// sent the instance straight to one exact backend (Winner) instead
	// of racing the portfolio, and that backend proved the optimum.
	Routed bool `json:"routed,omitempty"`
	// WarmStarted marks a solve seeded with a prior incumbent (an
	// explicit session/SubmitWarm order or a structural-hash cache hint)
	// instead of the cold greedy order. Guaranteed never worse than its
	// seed; absent when the seed was rejected and the run degraded to a
	// cold start.
	WarmStarted bool `json:"warm_started,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID         string       `json:"id"`
	State      string       `json:"state"`
	Hash       string       `json:"hash"`
	Instance   string       `json:"instance,omitempty"`
	Tenant     string       `json:"tenant,omitempty"`
	Priority   int          `json:"priority,omitempty"`
	QueuedAt   time.Time    `json:"queued_at"`
	StartedAt  *time.Time   `json:"started_at,omitempty"`
	FinishedAt *time.Time   `json:"finished_at,omitempty"`
	Error      string       `json:"error,omitempty"`
	Result     *SolveResult `json:"result,omitempty"`
	Events     int          `json:"events"`
}
