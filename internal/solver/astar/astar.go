// Package astar implements the A* exact search the paper discusses as a
// branch-and-bound alternative (§1, §3.3): best-first search over prefix
// states. A state is the *set* of deployed indexes — the objective of any
// completion depends on the prefix only through its set, so states are
// deduplicated by set with the best-known prefix objective (g). The
// heuristic h is the same admissible completion bound used by CP and
// bruteforce, so the first goal expansion is optimal.
//
// Memory grows with the number of reachable subsets (up to 2^n), which is
// precisely why the paper dismisses A* for larger instances; MaxN caps n
// at 24.
package astar

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

// MaxN is the largest instance A* accepts (2^24 subsets already strains
// memory).
const MaxN = 24

// Options bounds the search.
type Options struct {
	// NodeLimit aborts after expanding this many states (0 = unlimited).
	NodeLimit int64
	// Context, when non-nil, aborts the search when cancelled (checked
	// every 256 expansions).
	Context context.Context
	// ExternalBound, when non-nil, is polled for the best objective known
	// outside this search (the portfolio's shared incumbent). Because the
	// open list is ordered by an admissible f, the whole search stops —
	// with Proved=true and a nil Order — as soon as the head of the queue
	// can no longer beat the external incumbent: the incumbent is then
	// proved optimal even though A* never reconstructed it.
	ExternalBound func() float64
	// OnSolution, when non-nil, is invoked with the optimal order when
	// the goal state is expanded (portfolio incumbent publishing).
	OnSolution func(order []int, objective float64)
}

// Result reports the search outcome.
type Result struct {
	Order     []int
	Objective float64
	// Proved is true when the search space was exhausted: either Order is
	// the proved optimum, or Order is nil and no order beating
	// Options.ExternalBound exists (the external incumbent is optimal).
	Proved bool
	// Expanded counts expanded states; States counts distinct subsets
	// seen (memory proxy).
	Expanded, States int64
}

type node struct {
	mask  uint64
	g     float64 // exact objective of the best-known prefix for mask
	f     float64 // g + admissible completion estimate
	order []int
}

type pq []*node

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].f < p[j].f }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(*node)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Solve runs A*. cs may be nil. The error is non-nil only when the
// instance exceeds MaxN.
func Solve(c *model.Compiled, cs *constraint.Set, opt Options) (Result, error) {
	if c.N > MaxN {
		return Result{}, fmt.Errorf("astar: %d indexes exceeds MaxN=%d", c.N, MaxN)
	}
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	lb := bruteforce.NewLowerBound(c)

	// Precompute predecessor masks for readiness checks.
	predMask := make([]uint64, c.N)
	for i := 0; i < c.N; i++ {
		cs.Predecessors(i).ForEach(func(p int) bool {
			predMask[i] |= 1 << uint(p)
			return true
		})
	}

	w := model.NewWalker(c)
	gBest := map[uint64]float64{0: 0}
	open := &pq{&node{mask: 0, g: 0, f: 0, order: nil}}
	goal := uint64(1)<<uint(c.N) - 1

	var res Result
	res.Objective = math.Inf(1)

	for open.Len() > 0 {
		cur := heap.Pop(open).(*node)
		if best, ok := gBest[cur.mask]; ok && cur.g > best+1e-12 {
			continue // stale entry
		}
		res.Expanded++
		if opt.NodeLimit > 0 && res.Expanded > opt.NodeLimit {
			return res, nil // aborted: Proved stays false
		}
		if opt.Context != nil && res.Expanded%256 == 0 {
			select {
			case <-opt.Context.Done():
				res.States = int64(len(gBest))
				return res, nil // aborted: Proved stays false
			default:
			}
		}
		if opt.ExternalBound != nil {
			// f is admissible and the queue is ordered by f, so once the
			// head cannot beat the external incumbent, nothing can.
			if e := opt.ExternalBound(); cur.f > e+1e-9 {
				break
			}
		}
		if cur.mask == goal {
			res.Order = cur.order
			res.Objective = cur.g
			res.Proved = true
			res.States = int64(len(gBest))
			if opt.OnSolution != nil {
				opt.OnSolution(append([]int(nil), cur.order...), cur.g)
			}
			return res, nil
		}
		// Reposition the walker onto this node's prefix: only the tail
		// diverging from the previous expansion is popped/pushed, so
		// neighboring expansions cost the prefix difference instead of a
		// full replay.
		w.Sync(cur.order)
		for i := 0; i < c.N; i++ {
			bit := uint64(1) << uint(i)
			if cur.mask&bit != 0 || cur.mask&predMask[i] != predMask[i] {
				continue
			}
			w.Push(i)
			ng := w.Objective()
			nmask := cur.mask | bit
			if old, ok := gBest[nmask]; !ok || ng < old-1e-12 {
				gBest[nmask] = ng
				// h: cheapest remaining best-case cost at current
				// runtime + the rest at the floor runtime.
				var restSum, restMin float64
				restMin = math.Inf(1)
				for j := 0; j < c.N; j++ {
					if nmask&(1<<uint(j)) == 0 {
						mc := lb.MinCost(j)
						restSum += mc
						if mc < restMin {
							restMin = mc
						}
					}
				}
				h := 0.0
				if !math.IsInf(restMin, 1) {
					h = w.Runtime()*restMin + lb.MinRuntime()*(restSum-restMin)
				}
				norder := make([]int, len(cur.order)+1)
				copy(norder, cur.order)
				norder[len(cur.order)] = i
				heap.Push(open, &node{mask: nmask, g: ng, f: ng + h, order: norder})
			}
			w.Pop()
		}
	}
	// Exhausted without reaching the goal: with an external bound this is
	// a proof that the external incumbent cannot be beaten; without one it
	// only happens on contradictory constraints (which Validate rejects).
	res.Proved = opt.ExternalBound != nil
	res.States = int64(len(gBest))
	return res, nil
}
