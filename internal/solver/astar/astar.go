// Package astar implements the A* exact search the paper discusses as a
// branch-and-bound alternative (§1, §3.3): best-first search over prefix
// states. A state is the *set* of deployed indexes — the objective of any
// completion depends on the prefix only through its set, so states are
// deduplicated by set with the best-known prefix objective (g). The
// heuristic h is the same admissible completion bound used by CP and
// bruteforce, so the first goal expansion is optimal.
//
// Memory grows with the number of reachable subsets (up to 2^n), which is
// precisely why the paper dismisses A* for larger instances; MaxN caps n
// at 24.
package astar

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

// MaxN is the largest instance A* accepts (2^24 subsets already strains
// memory).
const MaxN = 24

// Options bounds the search.
type Options struct {
	// NodeLimit aborts after expanding this many states (0 = unlimited).
	NodeLimit int64
}

// Result reports the search outcome.
type Result struct {
	Order     []int
	Objective float64
	// Proved is true when the returned order is proved optimal.
	Proved bool
	// Expanded counts expanded states; States counts distinct subsets
	// seen (memory proxy).
	Expanded, States int64
}

type node struct {
	mask  uint64
	g     float64 // exact objective of the best-known prefix for mask
	f     float64 // g + admissible completion estimate
	order []int
}

type pq []*node

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].f < p[j].f }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(*node)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Solve runs A*. cs may be nil. The error is non-nil only when the
// instance exceeds MaxN.
func Solve(c *model.Compiled, cs *constraint.Set, opt Options) (Result, error) {
	if c.N > MaxN {
		return Result{}, fmt.Errorf("astar: %d indexes exceeds MaxN=%d", c.N, MaxN)
	}
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	lb := bruteforce.NewLowerBound(c)

	// Precompute predecessor masks for readiness checks.
	predMask := make([]uint64, c.N)
	for i := 0; i < c.N; i++ {
		cs.Predecessors(i).ForEach(func(p int) bool {
			predMask[i] |= 1 << uint(p)
			return true
		})
	}

	w := model.NewWalker(c)
	gBest := map[uint64]float64{0: 0}
	open := &pq{&node{mask: 0, g: 0, f: 0, order: nil}}
	goal := uint64(1)<<uint(c.N) - 1

	var res Result
	res.Objective = math.Inf(1)

	for open.Len() > 0 {
		cur := heap.Pop(open).(*node)
		if best, ok := gBest[cur.mask]; ok && cur.g > best+1e-12 {
			continue // stale entry
		}
		res.Expanded++
		if opt.NodeLimit > 0 && res.Expanded > opt.NodeLimit {
			return res, nil // aborted: Proved stays false
		}
		if cur.mask == goal {
			res.Order = cur.order
			res.Objective = cur.g
			res.Proved = true
			res.States = int64(len(gBest))
			return res, nil
		}
		// Replay the prefix on the walker to expand successors.
		w.Reset()
		for _, i := range cur.order {
			w.Push(i)
		}
		for i := 0; i < c.N; i++ {
			bit := uint64(1) << uint(i)
			if cur.mask&bit != 0 || cur.mask&predMask[i] != predMask[i] {
				continue
			}
			w.Push(i)
			ng := w.Objective()
			nmask := cur.mask | bit
			if old, ok := gBest[nmask]; !ok || ng < old-1e-12 {
				gBest[nmask] = ng
				// h: cheapest remaining best-case cost at current
				// runtime + the rest at the floor runtime.
				var restSum, restMin float64
				restMin = math.Inf(1)
				for j := 0; j < c.N; j++ {
					if nmask&(1<<uint(j)) == 0 {
						mc := lb.MinCost(j)
						restSum += mc
						if mc < restMin {
							restMin = mc
						}
					}
				}
				h := 0.0
				if !math.IsInf(restMin, 1) {
					h = w.Runtime()*restMin + lb.MinRuntime()*(restSum-restMin)
				}
				norder := make([]int, len(cur.order)+1)
				copy(norder, cur.order)
				norder[len(cur.order)] = i
				heap.Push(open, &node{mask: nmask, g: ng, f: ng + h, order: norder})
			}
			w.Pop()
		}
	}
	res.States = int64(len(gBest))
	return res, nil
}
