package astar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

func inst(seed int64, n int) (*model.Instance, *model.Compiled) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = n
	cfg.Queries = 5
	in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
	return in, model.MustCompile(in)
}

func TestMatchesBruteforce(t *testing.T) {
	f := func(seed int64) bool {
		_, c := inst(seed, 7)
		bf, err := bruteforce.Solve(c, nil, true)
		if err != nil {
			return false
		}
		res, err := Solve(c, nil, Options{})
		if err != nil || !res.Proved {
			return false
		}
		return math.Abs(res.Objective-bf.Objective) < 1e-9*(1+bf.Objective)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRespectsPrecedences(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 8
	cfg.PrecedenceProb = 0.25
	for rep := 0; rep < 5; rep++ {
		in := randgen.New(rng, cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		res, err := Solve(c, cs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Proved {
			t.Fatal("not proved on 8 indexes")
		}
		if err := in.ValidOrder(res.Order); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		bf, err := bruteforce.Solve(c, cs, true)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Objective-bf.Objective) > 1e-9*(1+bf.Objective) {
			t.Fatalf("rep %d: astar %v != bf %v", rep, res.Objective, bf.Objective)
		}
	}
}

func TestRejectsOversized(t *testing.T) {
	_, c := inst(1, 10)
	_ = c
	cfg := randgen.DefaultConfig()
	cfg.Indexes = MaxN + 1
	big := model.MustCompile(randgen.New(rand.New(rand.NewSource(2)), cfg))
	if _, err := Solve(big, nil, Options{}); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestNodeLimitAborts(t *testing.T) {
	_, c := inst(3, 12)
	res, err := Solve(c, nil, Options{NodeLimit: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proved {
		t.Fatal("20-expansion search claimed a proof on 12 indexes")
	}
}

func TestSubsetDeduplicationBoundsStates(t *testing.T) {
	// A* must see at most 2^n distinct subsets, far below n! prefixes.
	_, c := inst(4, 9)
	res, err := Solve(c, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatal("not proved")
	}
	if res.States > 1<<9 {
		t.Errorf("states = %d exceeds 2^9", res.States)
	}
	if res.Expanded > res.States {
		t.Errorf("expanded %d > states %d: dedup is broken", res.Expanded, res.States)
	}
}
