package astar_test

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/astar"
	"github.com/evolving-olap/idd/internal/solver/solvertest"
)

// TestFeasibilityProperty: the A* optimum is always a precedence-feasible
// permutation, across random instances.
func TestFeasibilityProperty(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 9
	cfg.Queries = 7
	cfg.PrecedenceProb = 0.1
	for seed := int64(0); seed < 15; seed++ {
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		res, err := astar.Solve(c, cs, astar.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Proved {
			t.Fatalf("seed %d: unbounded A* did not prove", seed)
		}
		solvertest.RequireFeasible(t, c.N, cs, res.Order)
	}
}
