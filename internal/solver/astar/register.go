package astar

import (
	"context"
	"math"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/backend"
)

func init() { backend.Register(asBackend{}) }

// asBackend adapts the A* subset search to the registry contract.
type asBackend struct{}

func (asBackend) Info() backend.Info {
	return backend.Info{
		Name:       "astar",
		Kind:       backend.KindExact,
		Rank:       40,
		Proves:     true,
		Summary:    "A* over index subsets with an admissible completion bound (§4.5)",
		Applicable: func(c *model.Compiled) bool { return c.N <= MaxN },
	}
}

func (asBackend) Solve(ctx context.Context, req backend.Request) backend.Outcome {
	res, err := Solve(req.Compiled, req.Constraints, Options{
		NodeLimit:     req.StepLimit,
		Context:       ctx,
		ExternalBound: req.Bound,
		OnSolution:    req.Publish,
	})
	if err != nil {
		return backend.Outcome{Objective: math.Inf(1), Err: err}
	}
	return backend.Outcome{
		Order: res.Order, Objective: res.Objective,
		Proved: res.Proved, Iterations: res.Expanded,
	}
}
