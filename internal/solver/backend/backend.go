// Package backend defines the self-describing solver-backend contract
// and the process-wide registry every solver package registers into.
//
// A backend is one deployment-ordering algorithm (greedy, cp, vns, ...)
// wrapped behind a uniform Solve(ctx, Request) Outcome call and
// described by an Info record: its kind (exact / anytime /
// constructive), an applicability predicate, a finisher rank, and the
// typed parameters it accepts. Everything downstream — the portfolio's
// default selection, the finisher choice, `iddsolve -list-solvers`,
// the service's GET /solvers endpoint and per-request param validation
// — is derived from these declarations, so adding a solver (or a
// solver knob) is a one-file change: write the backend, register it in
// an init(), and every layer picks it up.
package backend

import (
	"context"
	"time"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// Kind classifies what a backend's result means to the orchestrator.
type Kind uint8

const (
	// KindConstructive: a one-shot heuristic that builds an order and
	// returns (greedy, dp). No proofs, no anytime improvement.
	KindConstructive Kind = iota
	// KindExact: an exhaustive search whose Proved outcome is a true
	// optimality certificate (bruteforce, astar, cp). Only exact proofs
	// may stop a portfolio race.
	KindExact
	// KindAnytime: an iterative improver that publishes incumbents for
	// as long as it is given budget (the local searches, mip).
	KindAnytime
)

// String returns the wire form used by -list-solvers and GET /solvers.
func (k Kind) String() string {
	switch k {
	case KindConstructive:
		return "constructive"
	case KindExact:
		return "exact"
	case KindAnytime:
		return "anytime"
	default:
		return "unknown"
	}
}

// Info is a backend's self-description. Every field feeds a concrete
// derivation: Rank orders listings, Applicable derives the portfolio's
// default set, Finisher derives the exploitation-tail choice, Params
// drives request validation at every edge.
type Info struct {
	// Name is the unique registry key ("cp", "vns", ...).
	Name string
	// Kind classifies the backend (see Kind).
	Kind Kind
	// Summary is the one-line human description shown by listings.
	Summary string
	// Rank orders Names/All/Default deterministically (ascending, ties
	// broken by name). Conventionally constructive solvers sit lowest,
	// then exact, then anytime.
	Rank int
	// Finisher ranks anytime backends for the portfolio's exploitation
	// tail: among the enabled backends the highest positive rank runs
	// the leftover budget undisturbed. 0 = never a finisher.
	Finisher int
	// Proves marks backends whose Outcome.Proved is meaningful. For
	// KindExact it is a true optimality certificate; a non-exact prover
	// (mip, whose proof is w.r.t. its discretized model) reports Proved
	// for CLI exit-code purposes but never stops a portfolio race.
	Proves bool
	// Applicable reports whether the backend belongs in the default
	// portfolio set for an instance (nil = always). Enumerative solvers
	// use it to bow out beyond their tractable size.
	Applicable func(c *model.Compiled) bool
	// Params declares the typed knobs this backend reads from
	// Request.Params. Names must be prefixed "<backend-name>.".
	Params []ParamSpec
}

// applicable is the nil-tolerant form of Info.Applicable.
func (in Info) applicable(c *model.Compiled) bool {
	return in.Applicable == nil || in.Applicable(c)
}

// Request is the one solve envelope that flows unchanged from the CLI
// and the HTTP service through the portfolio down to every backend.
type Request struct {
	// Compiled is the instance to order; Constraints the precedence set
	// every returned order must respect (never nil inside a portfolio
	// run; standalone callers may pass nil for "no constraints").
	Compiled    *model.Compiled
	Constraints *constraint.Set
	// Budget is this backend's wall-clock slice (0 = none declared; the
	// context usually carries the hard deadline as well).
	Budget time.Duration
	// StepLimit, when positive, bounds backend-specific search effort
	// (local-search steps / CP, A*, MIP nodes) for reproducible runs.
	StepLimit int64
	// Seed derives the backend's private RNG stream.
	Seed int64
	// Initial is a known feasible order to start from (the portfolio
	// seeds it with greedy). Anytime backends require it.
	Initial []int
	// Params is the validated typed parameter bag (see ValidateParams);
	// backends read only their own declared keys.
	Params Params
	// Publish offers an improving feasible order to the caller (the
	// portfolio's shared store). May be nil; backends must tolerate
	// that.
	Publish func(order []int, obj float64)
	// Incumbent polls for an external order strictly better than `than`
	// for the backend to adopt mid-run (nil = none).
	Incumbent func(than float64) ([]int, float64)
	// Bound polls the best objective known outside this backend, for
	// pruning (nil = none).
	Bound func() float64
	// Exporter, when non-nil, is how a backend with a distributable
	// search (today: cp's parallel proof) announces that it can donate
	// open subproblems to an external coordinator — the distributed
	// solve cluster. The backend calls it once when such a search
	// starts, handing over a live WorkSource, and calls the returned
	// release func when the search ends (after which the WorkSource
	// must not be used). Backends without distributable searches
	// ignore the field.
	Exporter func(ws WorkSource) (release func())
}

// WorkSource is a running search that can donate subtrees of its
// frontier across process boundaries. All methods are safe for
// concurrent use from any goroutine while the source is live (between
// Exporter attach and release).
type WorkSource interface {
	// StealSubtree pops the shallowest open subproblem from the
	// search's frontier and returns its deployment prefix (a
	// caller-owned copy), or ok=false when nothing is exportable. The
	// subproblem stays counted as open: per successful steal the
	// caller owes exactly one CompleteSubtree or RequeueSubtree call,
	// or the search can never finish its optimality proof.
	StealSubtree() (prefix []int, ok bool)
	// CompleteSubtree settles a stolen subtree that was fully explored
	// elsewhere. best is the best full order found below the prefix
	// (nil = nothing beat the incumbent the thief was seeded with);
	// it is offered to the search's incumbent before the
	// open-subproblem counter is decremented, so a proof that
	// completes on this call already accounts for the remote solution.
	CompleteSubtree(best []int, obj float64)
	// RequeueSubtree returns a stolen subtree to the local frontier —
	// the remote helper died, timed out, or aborted without exhausting
	// it. The steal debt transfers back; the search re-explores the
	// prefix locally, keeping the proof sound.
	RequeueSubtree(prefix []int)
}

// Outcome is what a backend run reports back.
type Outcome struct {
	// Order is the backend's best feasible order (nil when it produced
	// nothing of its own) and Objective its objective (+Inf when none).
	Order     []int
	Objective float64
	// Proved reports an exhausted search. Meaningful only when the
	// backend's Info declares Proves; the portfolio additionally trusts
	// it only from KindExact backends.
	Proved bool
	// Iterations counts backend-specific effort (steps, nodes,
	// expansions, permutations).
	Iterations int64
	// Workers reports internal parallelism the backend actually ran
	// (0 = not reported, 1 = serial). Telemetry for param plumbing.
	Workers int
	// Counters is the backend's effort breakdown by named cause (nil =
	// none reported). Keys are backend-specific but snake_case and
	// stable; the CP engine reports its prune-cause split
	// (pruned_incumbent / pruned_tail / infeasible, summing to fails),
	// steal traffic, and incumbent offer/accept counts, the local
	// searches report steps/accepted/adopted. Surfaced verbatim through
	// portfolio.BackendResult, iddsolve -json, and the service's
	// BackendSummary.
	Counters map[string]int64
	// Err reports a backend that refused or failed the instance.
	Err error
}

// Backend is one registered solver.
type Backend interface {
	// Info returns the backend's static self-description. It must be
	// cheap and must return the same declarations every call.
	Info() Info
	// Solve runs the backend until it finishes, the context is
	// cancelled, or a limit in the request trips. Implementations must
	// return their best incumbent rather than nothing when interrupted.
	Solve(ctx context.Context, req Request) Outcome
}
