package backend

import (
	"context"
	"math"
	"strings"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
)

// fake is a minimal well-formed backend for registry tests. It must
// stay valid under the integrity test, which sees everything registered
// in this test binary.
type fake struct {
	info Info
}

func (f fake) Info() Info { return f.info }
func (f fake) Solve(_ context.Context, req Request) Outcome {
	order := append([]int(nil), req.Initial...)
	if order == nil {
		order = make([]int, req.Compiled.N)
		for i := range order {
			order[i] = i
		}
	}
	return Outcome{Order: order, Objective: req.Compiled.Objective(order)}
}

func fptr(f float64) *float64 { return &f }

func fakeInfo(name string, rank int) Info {
	return Info{
		Name:    name,
		Kind:    KindConstructive,
		Summary: "registry test fixture",
		Rank:    rank,
		Params: []ParamSpec{
			{Name: name + ".knob", Type: ParamInt, Default: 2, Min: fptr(0), Max: fptr(16),
				Help: "test knob"},
			{Name: name + ".ratio", Type: ParamFloat, Default: 0.5, Min: fptr(0), Max: fptr(1),
				Help: "test ratio"},
			{Name: name + ".flip", Type: ParamBool, Default: false, Help: "test flip"},
			{Name: name + ".tag", Type: ParamString, Default: "", Help: "test tag"},
		},
	}
}

func init() {
	Register(fake{fakeInfo("zfake-b", 9001)})
	Register(fake{info: Info{
		Name: "zfake-a", Kind: KindAnytime, Summary: "registry test fixture",
		Rank: 9000, Finisher: 3,
		Applicable: func(c *model.Compiled) bool { return c.N <= 4 },
	}})
	Register(fake{info: Info{
		Name: "zfake-c", Kind: KindAnytime, Summary: "registry test fixture",
		Rank: 9000, Finisher: 7,
	}})
}

func tiny(t *testing.T, n int) *model.Compiled {
	t.Helper()
	in := &model.Instance{Name: "tiny"}
	for i := 0; i < n; i++ {
		in.Indexes = append(in.Indexes, model.Index{Name: string(rune('a' + i)), CreateCost: 1})
	}
	in.Queries = []model.Query{{Name: "q", Runtime: 10}}
	in.Plans = []model.Plan{{Query: 0, Indexes: []int{0}, Speedup: 5}}
	c, err := model.Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterRejectsMalformed(t *testing.T) {
	mustPanic := func(name string, b Backend) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(b)
	}
	mustPanic("nil", nil)
	mustPanic("empty name", fake{info: Info{}})
	mustPanic("duplicate", fake{fakeInfo("zfake-b", 1)})
	mustPanic("unqualified param", fake{info: Info{
		Name: "zfake-bad", Summary: "x",
		Params: []ParamSpec{{Name: "workers", Type: ParamInt}},
	}})
	mustPanic("ill-typed default", fake{info: Info{
		Name: "zfake-bad2", Summary: "x",
		Params: []ParamSpec{{Name: "zfake-bad2.k", Type: ParamInt, Default: "four"}},
	}})
	mustPanic("out-of-range default", fake{info: Info{
		Name: "zfake-bad3", Summary: "x",
		Params: []ParamSpec{{Name: "zfake-bad3.k", Type: ParamInt, Default: 99, Max: fptr(8)}},
	}})
}

func TestRankOrderAndLookup(t *testing.T) {
	names := Names()
	pos := map[string]int{}
	for i, n := range names {
		pos[n] = i
	}
	for _, want := range []string{"zfake-a", "zfake-b", "zfake-c"} {
		if _, ok := pos[want]; !ok {
			t.Fatalf("Names() missing %s: %v", want, names)
		}
		if _, ok := Lookup(want); !ok {
			t.Fatalf("Lookup(%s) failed", want)
		}
	}
	// Rank ascending, name tie-break: zfake-a (9000) < zfake-c (9000) <
	// zfake-b (9001).
	if !(pos["zfake-a"] < pos["zfake-c"] && pos["zfake-c"] < pos["zfake-b"]) {
		t.Fatalf("rank order violated: %v", names)
	}
	if _, ok := Lookup("no-such-backend"); ok {
		t.Fatal("Lookup invented a backend")
	}
}

func TestDefaultHonorsApplicability(t *testing.T) {
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	small, big := Default(tiny(t, 3)), Default(tiny(t, 6))
	if !has(small, "zfake-a") {
		t.Fatalf("Default(n=3) dropped applicable zfake-a: %v", small)
	}
	if has(big, "zfake-a") {
		t.Fatalf("Default(n=6) kept inapplicable zfake-a: %v", big)
	}
	if !has(big, "zfake-b") {
		t.Fatalf("Default(n=6) dropped always-applicable zfake-b: %v", big)
	}
}

func TestFinisherRanking(t *testing.T) {
	if got := Finisher([]string{"zfake-b"}); got != "" {
		t.Fatalf("non-anytime finisher %q", got)
	}
	if got := Finisher([]string{"zfake-a", "zfake-c"}); got != "zfake-c" {
		t.Fatalf("finisher = %q, want zfake-c (higher declared rank)", got)
	}
	if got := Finisher([]string{"zfake-a", "no-such"}); got != "zfake-a" {
		t.Fatalf("finisher = %q, want zfake-a", got)
	}
}

func TestCheckNames(t *testing.T) {
	if err := CheckNames([]string{"zfake-a", "zfake-b"}); err != nil {
		t.Fatal(err)
	}
	err := CheckNames([]string{"zfake-a", "bogus"})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	if !strings.Contains(err.Error(), `"bogus"`) || !strings.Contains(err.Error(), "zfake-a") {
		t.Fatalf("error does not name the offender and the valid set: %v", err)
	}
}

func TestValidateParams(t *testing.T) {
	// JSON-shaped input: numbers arrive as float64.
	p, err := ValidateParams(map[string]any{
		"zfake-b.knob":  float64(4),
		"zfake-b.ratio": 0.25,
		"zfake-b.flip":  true,
		"zfake-b.tag":   "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Int("zfake-b.knob", -1); got != 4 {
		t.Fatalf("knob = %d (%T in bag)", got, p["zfake-b.knob"])
	}
	if got := p.Float("zfake-b.ratio", -1); got != 0.25 {
		t.Fatalf("ratio = %v", got)
	}
	if !p.Bool("zfake-b.flip", false) || p.Str("zfake-b.tag", "") != "x" {
		t.Fatalf("bool/string params lost: %v", p)
	}

	for name, raw := range map[string]map[string]any{
		"unknown key":   {"zfake-b.nope": 1},
		"fractional":    {"zfake-b.knob": 2.5},
		"out of range":  {"zfake-b.knob": float64(99)},
		"wrong type":    {"zfake-b.flip": "yes"},
		"string number": {"zfake-b.knob": "4"},
	} {
		if _, err := ValidateParams(raw); err == nil {
			t.Errorf("%s accepted: %v", name, raw)
		}
	}
	if _, err := ValidateParams(map[string]any{"zfake-b.nope": 1}); err == nil ||
		!strings.Contains(err.Error(), "zfake-b.knob") {
		t.Fatalf("unknown-param error does not list the valid set: %v", err)
	}
	if p, err := ValidateParams(nil); err != nil || p != nil {
		t.Fatalf("empty input: %v %v", p, err)
	}
}

func TestParseParams(t *testing.T) {
	p, err := ParseParams([]string{"zfake-b.knob=8", "zfake-b.flip=true", "zfake-b.ratio=0.75"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Int("zfake-b.knob", -1) != 8 || !p.Bool("zfake-b.flip", false) ||
		p.Float("zfake-b.ratio", -1) != 0.75 {
		t.Fatalf("parsed bag wrong: %v", p)
	}
	for _, bad := range []string{"noequals", "zfake-b.nope=1", "zfake-b.knob=x", "zfake-b.knob=99"} {
		if _, err := ParseParams([]string{bad}); err == nil {
			t.Errorf("ParseParams accepted %q", bad)
		}
	}
}

func TestParamsCanonAndClone(t *testing.T) {
	p := Params{"b.z": 1, "a.a": true, "m.m": "v"}
	if got, want := p.Canon(), `a.a=true,b.z=1,m.m="v"`; got != want {
		t.Fatalf("Canon() = %q, want %q", got, want)
	}
	if Params(nil).Canon() != "" {
		t.Fatal("nil Canon not empty")
	}
	// String values are quoted so embedded separators cannot make two
	// distinct bags collide (cache-key soundness).
	tricky := Params{"a.x": `1",a.y="2`}
	flat := Params{"a.x": "1", "a.y": "2"}
	if tricky.Canon() == flat.Canon() {
		t.Fatalf("distinct bags share a canonical form: %q", flat.Canon())
	}
	c := p.Clone()
	c["a.a"] = false
	if p.Bool("a.a", false) != true {
		t.Fatal("Clone aliases the original")
	}
	var nilBag Params
	if nb := nilBag.Clone(); nb == nil {
		t.Fatal("Clone(nil) must return a writable map")
	}
}

func TestWithIntFallback(t *testing.T) {
	// Absent key: fallback applies, clamped into the declared bounds
	// (zfake-b.knob is declared 0..16).
	p := Params(nil).WithIntFallback("zfake-b.knob", 4)
	if p.Int("zfake-b.knob", -1) != 4 {
		t.Fatalf("fallback not applied: %v", p)
	}
	if got := Params(nil).WithIntFallback("zfake-b.knob", 999).Int("zfake-b.knob", -1); got != 16 {
		t.Fatalf("out-of-bounds alias not clamped to the spec max: %d", got)
	}
	// Explicit entries — including an explicit zero — always win.
	explicit := Params{"zfake-b.knob": 0}
	if got := explicit.WithIntFallback("zfake-b.knob", 8).Int("zfake-b.knob", -1); got != 0 {
		t.Fatalf("explicit zero overridden by the alias: %d", got)
	}
	// Alias zero means unset: no key is created.
	if out := Params(nil).WithIntFallback("zfake-b.knob", 0); len(out) != 0 {
		t.Fatalf("zero alias created an entry: %v", out)
	}
	// Undeclared names pass through unclamped (registry-free callers).
	if got := Params(nil).WithIntFallback("no.spec", 7).Int("no.spec", -1); got != 7 {
		t.Fatalf("undeclared fallback mangled: %d", got)
	}
}

func TestParamsTypedGetterDefaults(t *testing.T) {
	var p Params
	if p.Int("x", 7) != 7 || p.Float("x", 1.5) != 1.5 || !p.Bool("x", true) || p.Str("x", "d") != "d" {
		t.Fatal("getters on nil bag must fall back to defaults")
	}
	p = Params{"x": "wrong-type"}
	if p.Int("x", 7) != 7 {
		t.Fatal("ill-typed value must fall back to default")
	}
}

func TestKindAndTypeStrings(t *testing.T) {
	if KindExact.String() != "exact" || KindAnytime.String() != "anytime" ||
		KindConstructive.String() != "constructive" || Kind(99).String() != "unknown" {
		t.Fatal("Kind strings wrong")
	}
	if ParamInt.String() != "int" || ParamFloat.String() != "float" ||
		ParamBool.String() != "bool" || ParamString.String() != "string" {
		t.Fatal("ParamType strings wrong")
	}
}

func TestSpecsUnionSorted(t *testing.T) {
	specs := Specs()
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Name >= specs[i].Name {
			t.Fatalf("Specs() not strictly sorted at %d: %q >= %q", i, specs[i-1].Name, specs[i].Name)
		}
	}
	if _, ok := SpecFor("zfake-b.knob"); !ok {
		t.Fatal("SpecFor missed a declared spec")
	}
	if _, ok := SpecFor("zfake-b.absent"); ok {
		t.Fatal("SpecFor invented a spec")
	}
}

func TestFakeSolveIsFeasibleFixture(t *testing.T) {
	// The fixture itself must behave, since the integrity test audits it.
	c := tiny(t, 3)
	b, _ := Lookup("zfake-b")
	out := b.Solve(context.Background(), Request{Compiled: c})
	if len(out.Order) != c.N || math.IsNaN(out.Objective) {
		t.Fatalf("fixture outcome malformed: %+v", out)
	}
}
