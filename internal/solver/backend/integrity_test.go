// The registry integrity audit: every backend linked into this test
// binary (all built-ins are blank-imported below, exactly the set a
// real binary gets through the portfolio) must carry a complete,
// well-formed self-description. CI runs this as its own named step so a
// sloppy registration fails the build with an attributable message, not
// a confusing downstream test.
package backend_test

import (
	"strings"
	"testing"

	"github.com/evolving-olap/idd/internal/solver/backend"

	_ "github.com/evolving-olap/idd/internal/solver/astar"
	_ "github.com/evolving-olap/idd/internal/solver/bruteforce"
	_ "github.com/evolving-olap/idd/internal/solver/cp"
	_ "github.com/evolving-olap/idd/internal/solver/dp"
	_ "github.com/evolving-olap/idd/internal/solver/greedy"
	_ "github.com/evolving-olap/idd/internal/solver/local"
	_ "github.com/evolving-olap/idd/internal/solver/mip"
)

func TestRegistryIntegrity(t *testing.T) {
	all := backend.All()
	if len(all) == 0 {
		t.Fatal("registry is empty")
	}
	seen := map[string]bool{}
	for _, b := range all {
		info := b.Info()
		name := info.Name
		if name == "" {
			t.Fatal("backend with empty name in registry")
		}
		if seen[name] {
			t.Errorf("%s: duplicate name survived registration", name)
		}
		seen[name] = true
		if info.Summary == "" {
			t.Errorf("%s: empty Summary", name)
		}
		if k := info.Kind.String(); k == "unknown" {
			t.Errorf("%s: invalid Kind %d", name, info.Kind)
		}
		if info.Kind == backend.KindExact && !info.Proves {
			t.Errorf("%s: exact backends must declare Proves", name)
		}
		if info.Finisher > 0 && info.Kind != backend.KindAnytime {
			t.Errorf("%s: only anytime backends can be finishers (kind %s)", name, info.Kind)
		}
		for _, p := range info.Params {
			if !strings.HasPrefix(p.Name, name+".") {
				t.Errorf("%s: param %q not namespaced under the backend", name, p.Name)
			}
			if p.Type.String() == "unknown" {
				t.Errorf("%s: param %q has invalid type %d", name, p.Name, p.Type)
			}
			if p.Help == "" {
				t.Errorf("%s: param %q has no help text", name, p.Name)
			}
			if p.Default == nil {
				t.Errorf("%s: param %q declares no default", name, p.Name)
			}
			spec, ok := backend.SpecFor(p.Name)
			if !ok || spec.Type != p.Type {
				t.Errorf("%s: param %q not resolvable through SpecFor", name, p.Name)
			}
			// A default that fails its own validation would poison every
			// request that omits the key.
			if p.Default != nil {
				if _, err := backend.ValidateParams(map[string]any{p.Name: p.Default}); err != nil {
					t.Errorf("%s: default for %q fails its own spec: %v", name, p.Name, err)
				}
			}
		}
		// Info must be stable: derivations call it repeatedly.
		again := b.Info()
		if again.Name != info.Name || again.Kind != info.Kind || again.Rank != info.Rank ||
			len(again.Params) != len(info.Params) {
			t.Errorf("%s: Info() is not stable across calls", name)
		}
	}
	for _, want := range []string{"greedy", "dp", "bruteforce", "astar", "cp", "mip",
		"tabu-b", "tabu-f", "lns", "vns", "anneal"} {
		if !seen[want] {
			t.Errorf("built-in backend %q is not registered", want)
		}
	}
}
