package backend

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParamType is the declared type of a backend parameter.
type ParamType uint8

const (
	// ParamInt values are canonically Go ints. JSON numbers coerce when
	// integral; CLI strings parse base-10.
	ParamInt ParamType = iota
	// ParamFloat values are float64.
	ParamFloat
	// ParamBool values are bools; CLI strings parse via strconv.
	ParamBool
	// ParamString values pass through untouched.
	ParamString
)

// String returns the wire form ("int", "float", "bool", "string").
func (t ParamType) String() string {
	switch t {
	case ParamInt:
		return "int"
	case ParamFloat:
		return "float"
	case ParamBool:
		return "bool"
	case ParamString:
		return "string"
	default:
		return "unknown"
	}
}

// ParamSpec declares one typed backend knob. Specs are the single
// source of truth for validation at every edge: the HTTP service's 400
// responses, the CLI's -param parsing, and the registry integrity test
// all derive from them.
type ParamSpec struct {
	// Name is the fully qualified key, prefixed with the owning
	// backend's name ("cp.workers").
	Name string
	// Type is the declared value type.
	Type ParamType
	// Default is the value the backend assumes when the request does
	// not set the key. Must be nil or match Type.
	Default any
	// Min/Max bound numeric params inclusively (nil = unbounded).
	Min, Max *float64
	// Help is the one-line description shown by listings.
	Help string
}

// check validates an already-coerced value against the spec's type and
// bounds.
func (s ParamSpec) check(v any) error {
	switch s.Type {
	case ParamInt:
		n, ok := v.(int)
		if !ok {
			return fmt.Errorf("param %s: want int, got %T", s.Name, v)
		}
		return s.checkBounds(float64(n))
	case ParamFloat:
		f, ok := v.(float64)
		if !ok {
			return fmt.Errorf("param %s: want float, got %T", s.Name, v)
		}
		return s.checkBounds(f)
	case ParamBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("param %s: want bool, got %T", s.Name, v)
		}
	case ParamString:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("param %s: want string, got %T", s.Name, v)
		}
	default:
		return fmt.Errorf("param %s: invalid declared type %d", s.Name, s.Type)
	}
	return nil
}

func (s ParamSpec) checkBounds(f float64) error {
	if s.Min != nil && f < *s.Min {
		return fmt.Errorf("param %s: %v below minimum %v", s.Name, f, *s.Min)
	}
	if s.Max != nil && f > *s.Max {
		return fmt.Errorf("param %s: %v above maximum %v", s.Name, f, *s.Max)
	}
	return nil
}

// coerce turns a raw value (JSON decoding yields float64 for every
// number) into the spec's canonical Go type, or errors.
func (s ParamSpec) coerce(v any) (any, error) {
	switch s.Type {
	case ParamInt:
		switch x := v.(type) {
		case int:
			return x, nil
		case int64:
			return int(x), nil
		case float64:
			if x != math.Trunc(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("param %s: %v is not an integer", s.Name, x)
			}
			return int(x), nil
		}
	case ParamFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int:
			return float64(x), nil
		}
	case ParamBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	case ParamString:
		if str, ok := v.(string); ok {
			return str, nil
		}
	}
	return nil, fmt.Errorf("param %s: want %s, got %T", s.Name, s.Type, v)
}

// parse turns a CLI string ("-param cp.workers=4") into the canonical
// typed value.
func (s ParamSpec) parse(raw string) (any, error) {
	switch s.Type {
	case ParamInt:
		n, err := strconv.Atoi(raw)
		if err != nil {
			return nil, fmt.Errorf("param %s: %q is not an int", s.Name, raw)
		}
		return n, nil
	case ParamFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("param %s: %q is not a float", s.Name, raw)
		}
		return f, nil
	case ParamBool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return nil, fmt.Errorf("param %s: %q is not a bool", s.Name, raw)
		}
		return b, nil
	case ParamString:
		return raw, nil
	}
	return nil, fmt.Errorf("param %s: invalid declared type %d", s.Name, s.Type)
}

// Params is the validated, canonically typed parameter bag carried by a
// Request. Keys are fully qualified spec names; values match the spec's
// canonical Go type. Build one with ValidateParams or ParseParams —
// hand-built maps skip validation and may carry the wrong types.
type Params map[string]any

// Int reads an int param, falling back to def when absent.
func (p Params) Int(name string, def int) int {
	if v, ok := p[name].(int); ok {
		return v
	}
	return def
}

// Float reads a float param, falling back to def when absent.
func (p Params) Float(name string, def float64) float64 {
	if v, ok := p[name].(float64); ok {
		return v
	}
	return def
}

// Bool reads a bool param, falling back to def when absent.
func (p Params) Bool(name string, def bool) bool {
	if v, ok := p[name].(bool); ok {
		return v
	}
	return def
}

// Str reads a string param, falling back to def when absent.
func (p Params) Str(name, def string) string {
	if v, ok := p[name].(string); ok {
		return v
	}
	return def
}

// Clone returns an independent copy (nil stays nil-equivalent: an empty
// non-nil map, so callers can add keys).
func (p Params) Clone() Params {
	out := make(Params, len(p)+1)
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Canon renders the bag as a stable "k=v,k=v" string (keys sorted) for
// cache keys and logs. String values are quoted so a value containing
// ',' or '=' cannot make two distinct bags render identically (the
// service keys its solution cache on this). Empty bag renders "".
func (p Params) Canon() string {
	if len(p) == 0 {
		return ""
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		if s, ok := p[k].(string); ok {
			fmt.Fprintf(&b, "%s=%q", k, s)
		} else {
			fmt.Fprintf(&b, "%s=%v", k, p[k])
		}
	}
	return b.String()
}

// WithIntFallback returns p with name set to value, unless value <= 0
// (the zero value means "alias unset") or p already carries the key —
// an explicit entry, even an explicit zero, always wins. This is the
// merge rule of the deprecated CPWorkers-style aliases; when name has a
// declared spec the fallback is clamped into its bounds, so the legacy
// paths cannot smuggle in a value ValidateParams would reject.
func (p Params) WithIntFallback(name string, value int) Params {
	if value <= 0 {
		return p
	}
	if _, set := p[name]; set {
		return p
	}
	if spec, ok := SpecFor(name); ok {
		if spec.Min != nil && float64(value) < *spec.Min {
			value = int(*spec.Min)
		}
		if spec.Max != nil && float64(value) > *spec.Max {
			value = int(*spec.Max)
		}
	}
	out := p.Clone()
	out[name] = value
	return out
}

// ValidateParams checks a raw key→value map (typically straight out of
// a JSON body) against the union of every registered backend's declared
// specs and returns the canonically typed bag. Unknown keys, ill-typed
// and out-of-range values error with the full valid set, so HTTP
// handlers can forward the message as a 400 body verbatim.
func ValidateParams(raw map[string]any) (Params, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(Params, len(raw))
	for k, v := range raw {
		spec, ok := SpecFor(k)
		if !ok {
			return nil, fmt.Errorf("unknown param %q (valid params: %s)", k, specNames())
		}
		cv, err := spec.coerce(v)
		if err != nil {
			return nil, err
		}
		if err := spec.check(cv); err != nil {
			return nil, err
		}
		out[k] = cv
	}
	return out, nil
}

// ParseParams turns repeated CLI "key=value" strings into a validated
// bag (the -param flag).
func ParseParams(kvs []string) (Params, error) {
	if len(kvs) == 0 {
		return nil, nil
	}
	out := make(Params, len(kvs))
	for _, kv := range kvs {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad param %q (want key=value)", kv)
		}
		key = strings.TrimSpace(key)
		spec, found := SpecFor(key)
		if !found {
			return nil, fmt.Errorf("unknown param %q (valid params: %s)", key, specNames())
		}
		pv, err := spec.parse(strings.TrimSpace(val))
		if err != nil {
			return nil, err
		}
		if err := spec.check(pv); err != nil {
			return nil, err
		}
		out[key] = pv
	}
	return out, nil
}

// ParamFlag collects repeated -param key=value command-line occurrences
// (it implements flag.Value); feed the accumulated strings to
// ParseParams after flag parsing. Shared by iddsolve and iddserver.
type ParamFlag []string

// String renders the accumulated raw entries.
func (p *ParamFlag) String() string { return strings.Join(*p, ",") }

// Set appends one key=value occurrence (validation happens later, in
// ParseParams, once the whole command line is known).
func (p *ParamFlag) Set(v string) error {
	*p = append(*p, v)
	return nil
}

// specNames renders every declared param name, comma separated, for
// error messages; "(none declared)" when the registry declares nothing.
func specNames() string {
	specs := Specs()
	if len(specs) == 0 {
		return "(none declared)"
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}
