package backend

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/evolving-olap/idd/internal/model"
)

// The process-wide registry. Solver packages register themselves from
// init(), so any binary (or test) that imports a solver package — even
// a test-only backend registered from a single test file — shows up in
// every registry-derived surface: portfolio selection, the conformance
// sweep, -list-solvers, GET /solvers.
var reg = struct {
	sync.RWMutex
	backends map[string]Backend
}{backends: make(map[string]Backend)}

// Register adds a backend to the process-wide registry. It panics on a
// nil backend, an empty or duplicate name, or malformed param specs —
// registration happens in init(), where a panic is an immediate,
// attributable build-time failure rather than a latent runtime one.
func Register(b Backend) {
	if b == nil {
		panic("backend: Register(nil)")
	}
	info := b.Info()
	if info.Name == "" {
		panic("backend: Register with empty Info.Name")
	}
	if err := checkSpecs(info); err != nil {
		panic(fmt.Sprintf("backend: Register(%q): %v", info.Name, err))
	}
	reg.Lock()
	defer reg.Unlock()
	if _, dup := reg.backends[info.Name]; dup {
		panic(fmt.Sprintf("backend: Register(%q): duplicate name", info.Name))
	}
	reg.backends[info.Name] = b
}

// checkSpecs validates a backend's declared params at registration
// time: qualified names, no duplicates, defaults that pass their own
// spec.
func checkSpecs(info Info) error {
	seen := make(map[string]bool, len(info.Params))
	for _, s := range info.Params {
		if !strings.HasPrefix(s.Name, info.Name+".") || len(s.Name) <= len(info.Name)+1 {
			return fmt.Errorf("param %q not namespaced %q", s.Name, info.Name+".<key>")
		}
		if seen[s.Name] {
			return fmt.Errorf("param %q declared twice", s.Name)
		}
		seen[s.Name] = true
		if s.Default != nil {
			if err := s.check(s.Default); err != nil {
				return fmt.Errorf("default: %w", err)
			}
		}
	}
	return nil
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	reg.RLock()
	defer reg.RUnlock()
	b, ok := reg.backends[name]
	return b, ok
}

// All returns every registered backend in rank order (Info.Rank
// ascending, ties broken by name) — the deterministic listing order
// shared by Names, Default, -list-solvers and GET /solvers.
func All() []Backend {
	reg.RLock()
	out := make([]Backend, 0, len(reg.backends))
	for _, b := range reg.backends {
		out = append(out, b)
	}
	reg.RUnlock()
	sort.Slice(out, func(a, b int) bool {
		ia, ib := out[a].Info(), out[b].Info()
		if ia.Rank != ib.Rank {
			return ia.Rank < ib.Rank
		}
		return ia.Name < ib.Name
	})
	return out
}

// Names lists every registered backend name in rank order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.Info().Name
	}
	return out
}

// Default derives the portfolio's default backend set for an instance
// from the declared applicability predicates, in rank order.
func Default(c *model.Compiled) []string {
	var out []string
	for _, b := range All() {
		if info := b.Info(); info.applicable(c) {
			out = append(out, info.Name)
		}
	}
	return out
}

// ExactProvers returns the applicable exact backends for an instance in
// rank order: every registered KindExact backend whose applicability
// predicate accepts c. This is the candidate set for fast-path routing —
// any of them, run alone to exhaustion, yields the same proved optimum a
// full portfolio race would.
func ExactProvers(c *model.Compiled) []string {
	var out []string
	for _, b := range All() {
		if info := b.Info(); info.Kind == KindExact && info.Proves && info.applicable(c) {
			out = append(out, info.Name)
		}
	}
	return out
}

// Finisher picks the backend that runs the portfolio's exploitation
// tail: among names, the one with the highest declared positive
// Finisher rank ("" when none of them is a finisher).
func Finisher(names []string) string {
	best, bestRank := "", 0
	for _, n := range names {
		b, ok := Lookup(n)
		if !ok {
			continue
		}
		if info := b.Info(); info.Finisher > bestRank {
			best, bestRank = info.Name, info.Finisher
		}
	}
	return best
}

// CheckNames validates a caller-supplied backend list against the
// registry; the error lists the valid set so HTTP handlers can forward
// it as a 400 body.
func CheckNames(names []string) error {
	for _, n := range names {
		if _, ok := Lookup(n); !ok {
			return fmt.Errorf("unknown backend %q (valid backends: %s)",
				n, strings.Join(Names(), ", "))
		}
	}
	return nil
}

// Specs returns the union of every registered backend's declared param
// specs, sorted by name.
func Specs() []ParamSpec {
	var out []ParamSpec
	for _, b := range All() {
		out = append(out, b.Info().Params...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// SpecFor returns the declared spec for a fully qualified param name.
func SpecFor(name string) (ParamSpec, bool) {
	for _, b := range All() {
		for _, s := range b.Info().Params {
			if s.Name == name {
				return s, true
			}
		}
	}
	return ParamSpec{}, false
}
