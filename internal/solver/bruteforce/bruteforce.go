// Package bruteforce enumerates every feasible permutation. It is the
// ground truth the other solvers are tested against and the "exhaustive
// search" strawman of §5 (intractable beyond ~12 indexes).
package bruteforce

import (
	"context"
	"fmt"
	"math"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// MaxN caps the instance size Solve accepts: 13! ≈ 6e9 is already out of
// reach, so refuse anything bigger than 12.
const MaxN = 12

// Result is the optimum found by exhaustive enumeration.
type Result struct {
	Order     []int
	Objective float64
	// Visited is the number of complete permutations evaluated.
	Visited int64
	// Aborted is true when SolveContext was cancelled mid-enumeration:
	// Order is then only the best permutation seen so far, not a proved
	// optimum.
	Aborted bool
}

// Solve enumerates all orders compatible with cs (nil = unconstrained)
// and returns the best. If bound is true, a simple admissible lower bound
// prunes hopeless prefixes; the result is still exact.
func Solve(c *model.Compiled, cs *constraint.Set, bound bool) (Result, error) {
	return SolveContext(context.Background(), c, cs, bound)
}

// SolveContext is Solve with cooperative cancellation, checked every few
// thousand search nodes. A cancelled enumeration returns the best order
// found so far with Aborted set (error only when nothing feasible was
// reached yet).
func SolveContext(ctx context.Context, c *model.Compiled, cs *constraint.Set, bound bool) (Result, error) {
	if c.N > MaxN {
		return Result{}, fmt.Errorf("bruteforce: %d indexes exceeds MaxN=%d", c.N, MaxN)
	}
	lb := NewLowerBound(c)
	res := Result{Objective: math.Inf(1)}
	w := model.NewWalker(c)
	var nodes int64
	var rec func()
	rec = func() {
		if res.Aborted {
			return
		}
		nodes++
		if nodes%4096 == 0 {
			select {
			case <-ctx.Done():
				res.Aborted = true
				return
			default:
			}
		}
		if w.Len() == c.N {
			res.Visited++
			if obj := w.Objective(); obj < res.Objective {
				res.Objective = obj
				res.Order = w.Order()
			}
			return
		}
		if bound && !math.IsInf(res.Objective, 1) {
			if lb.Complete(w) >= res.Objective {
				return
			}
		}
		// The walker's bitset built-state doubles as the enumeration
		// state: membership and precedence-readiness are bitset tests, no
		// shadow built[] array.
		for i := 0; i < c.N; i++ {
			if w.Built(i) || !predsBuilt(i, w, cs) {
				continue
			}
			w.Push(i)
			rec()
			w.Pop()
		}
	}
	rec()
	if res.Order == nil {
		if res.Aborted {
			return Result{}, fmt.Errorf("bruteforce: cancelled before any feasible order was reached")
		}
		return Result{}, fmt.Errorf("bruteforce: no feasible order (contradictory constraints)")
	}
	return res, nil
}

// predsBuilt reports whether all precedence predecessors of i are
// deployed: one O(n/64) bitset subset test against the walker state.
func predsBuilt(i int, w *model.Walker, cs *constraint.Set) bool {
	if cs == nil {
		return true
	}
	return w.BuiltSet().ContainsAll(cs.Predecessors(i))
}

// LowerBound computes an admissible completion bound shared by the exact
// solvers: every remaining index costs at least its best-case build cost,
// and the workload runtime never drops below the all-indexes-deployed
// runtime, so the remaining area is at least minRuntime * minRemainingCost.
type LowerBound struct {
	c *model.Compiled
	// minCost[i] = ctime(i) - best possible build discount.
	minCost []float64
	// minRuntime = Base - sum over queries of their best plan speedup.
	minRuntime float64
}

// NewLowerBound precomputes the bound tables.
func NewLowerBound(c *model.Compiled) *LowerBound {
	lb := &LowerBound{c: c, minCost: make([]float64, c.N)}
	for i := 0; i < c.N; i++ {
		best := 0.0
		for _, h := range c.Helpers[i] {
			if h.Speedup > best {
				best = h.Speedup
			}
		}
		lb.minCost[i] = c.CreateCost[i] - best
	}
	total := c.Base
	for q := range c.PlansOfQuery {
		best := 0.0
		for _, p := range c.PlansOfQuery[q] {
			if c.PlanSpd[p] > best {
				best = c.PlanSpd[p]
			}
		}
		total -= best
	}
	lb.minRuntime = total
	return lb
}

// MinRuntime returns the lowest achievable workload runtime.
func (lb *LowerBound) MinRuntime() float64 { return lb.minRuntime }

// MinCost returns the best-case build cost of index i.
func (lb *LowerBound) MinCost(i int) float64 { return lb.minCost[i] }

// Complete returns a lower bound on the objective of any completion of
// the walker's current prefix.
func (lb *LowerBound) Complete(w *model.Walker) float64 {
	var rest float64
	for i := 0; i < lb.c.N; i++ {
		if !w.Built(i) {
			rest += lb.minCost[i]
		}
	}
	return w.Objective() + lb.minRuntime*rest
}
