package bruteforce

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
)

func smallInstance(seed int64, n int) *model.Compiled {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = n
	cfg.Queries = 5
	cfg.BuildInteractionProb = 0.15
	in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
	return model.MustCompile(in)
}

func TestRejectsLargeInstances(t *testing.T) {
	c := smallInstance(1, MaxN+1)
	if _, err := Solve(c, nil, false); err == nil {
		t.Fatal("accepted oversized instance")
	}
}

func TestFindsKnownOptimum(t *testing.T) {
	// Two indexes, one query: i0 cheap and useful, i1 expensive and
	// useless. Optimal order is clearly i0 first.
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "useful", CreateCost: 5},
			{Name: "useless", CreateCost: 50},
		},
		Queries: []model.Query{{Name: "q", Runtime: 100}},
		Plans:   []model.Plan{{Query: 0, Indexes: []int{0}, Speedup: 90}},
	}
	c := model.MustCompile(in)
	res, err := Solve(c, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Order[0] != 0 {
		t.Errorf("optimal order starts with %d, want 0", res.Order[0])
	}
	if res.Visited != 2 {
		t.Errorf("visited %d permutations, want 2", res.Visited)
	}
	want := 100*5 + 10*50.0
	if math.Abs(res.Objective-want) > 1e-9 {
		t.Errorf("objective %v, want %v", res.Objective, want)
	}
}

func TestBoundedMatchesUnbounded(t *testing.T) {
	f := func(seed int64) bool {
		c := smallInstance(seed, 6)
		a, err := Solve(c, nil, false)
		if err != nil {
			return false
		}
		b, err := Solve(c, nil, true)
		if err != nil {
			return false
		}
		// Same optimum; the bounded run must visit no more leaves.
		return math.Abs(a.Objective-b.Objective) < 1e-9*(1+a.Objective) &&
			b.Visited <= a.Visited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRespectsPrecedences(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 6
	cfg.PrecedenceProb = 0.3
	rng := rand.New(rand.NewSource(42))
	for rep := 0; rep < 5; rep++ {
		in := randgen.New(rng, cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		res, err := Solve(c, cs, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.ValidOrder(res.Order); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		// Constrained optimum can never beat the unconstrained one.
		free, err := Solve(c, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Objective < free.Objective-1e-9 {
			t.Fatalf("constrained optimum %v beats unconstrained %v", res.Objective, free.Objective)
		}
	}
}

func TestLowerBoundIsAdmissible(t *testing.T) {
	// Property: for random prefixes, the bound never exceeds the true
	// best completion.
	f := func(seed int64) bool {
		c := smallInstance(seed, 6)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		lb := NewLowerBound(c)
		perm := rng.Perm(c.N)
		w := model.NewWalker(c)
		built := make([]bool, c.N)
		k := rng.Intn(c.N)
		for _, i := range perm[:k] {
			w.Push(i)
			built[i] = true
		}
		bound := lb.Complete(w)
		// True best completion by enumeration over the rest.
		best := math.Inf(1)
		var rec func()
		rec = func() {
			if w.Len() == c.N {
				if o := w.Objective(); o < best {
					best = o
				}
				return
			}
			for i := 0; i < c.N; i++ {
				if !built[i] {
					built[i] = true
					w.Push(i)
					rec()
					w.Pop()
					built[i] = false
				}
			}
		}
		rec()
		return bound <= best+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMinRuntimeAndMinCost(t *testing.T) {
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "a", CreateCost: 10},
			{Name: "b", CreateCost: 20},
		},
		Queries: []model.Query{{Name: "q", Runtime: 100}},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 30},
			{Query: 0, Indexes: []int{0, 1}, Speedup: 70},
		},
		BuildInteractions: []model.BuildInteraction{
			{Target: 1, Helper: 0, Speedup: 15},
		},
	}
	lb := NewLowerBound(model.MustCompile(in))
	if lb.MinRuntime() != 30 {
		t.Errorf("MinRuntime = %v, want 30", lb.MinRuntime())
	}
	if lb.MinCost(0) != 10 || lb.MinCost(1) != 5 {
		t.Errorf("MinCost = %v/%v, want 10/5", lb.MinCost(0), lb.MinCost(1))
	}
}

func TestContradictionFreeConstraintAlwaysSolvable(t *testing.T) {
	c := smallInstance(9, 5)
	cs := constraint.NewSet(c.N)
	cs.MustAdd(4, 3)
	cs.MustAdd(3, 2)
	cs.MustAdd(2, 1)
	cs.MustAdd(1, 0)
	res, err := Solve(c, cs, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if res.Order[i] != want[i] {
			t.Fatalf("chain-constrained order = %v, want %v", res.Order, want)
		}
	}
	if res.Visited != 1 {
		t.Errorf("visited %d, want exactly 1 feasible permutation", res.Visited)
	}
}
