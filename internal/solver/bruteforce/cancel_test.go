package bruteforce_test

import (
	"context"
	"testing"

	"github.com/evolving-olap/idd/internal/datasets"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

// TestSolveContextCancel: a cancelled enumeration stops promptly and
// reports Aborted instead of claiming a proved optimum.
func TestSolveContextCancel(t *testing.T) {
	c := model.MustCompile(datasets.ReducedTPCH(11, datasets.Low))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := bruteforce.SolveContext(ctx, c, nil, false)
	if err == nil {
		// The first feasible permutation can be reached before the first
		// cancellation check; then a partial result with Aborted is fine.
		if !res.Aborted {
			t.Fatalf("cancelled enumeration claims completion: %+v", res)
		}
		return
	}
	// No order at all: acceptable only as the explicit cancel error.
	if res.Order != nil {
		t.Fatalf("error %v but order %v", err, res.Order)
	}
}

// TestSolveContextMatchesSolve: without cancellation the two entry
// points are identical.
func TestSolveContextMatchesSolve(t *testing.T) {
	c := model.MustCompile(datasets.ReducedTPCH(8, datasets.Low))
	a, err := bruteforce.Solve(c, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bruteforce.SolveContext(context.Background(), c, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Aborted || b.Aborted {
		t.Fatalf("Solve %+v != SolveContext %+v", a, b)
	}
}
