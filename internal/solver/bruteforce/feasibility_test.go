package bruteforce_test

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
	"github.com/evolving-olap/idd/internal/solver/solvertest"
)

// TestFeasibilityProperty: the enumerated optimum is always a
// precedence-feasible permutation (with and without bound pruning).
func TestFeasibilityProperty(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 7
	cfg.Queries = 6
	cfg.PrecedenceProb = 0.12
	for seed := int64(0); seed < 15; seed++ {
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		for _, bound := range []bool{false, true} {
			res, err := bruteforce.Solve(c, cs, bound)
			if err != nil {
				t.Fatalf("seed %d bound=%v: %v", seed, bound, err)
			}
			solvertest.RequireFeasible(t, c.N, cs, res.Order)
		}
	}
}
