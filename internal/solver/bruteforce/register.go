package bruteforce

import (
	"context"
	"math"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/backend"
)

// maxDefaultN bounds the instances brute force volunteers for in the
// portfolio's default selection (10! ≈ 3.6M permutations — still
// instant with the admissible bound).
const maxDefaultN = 10

func init() { backend.Register(asBackend{}) }

// asBackend adapts exhaustive enumeration to the registry contract.
type asBackend struct{}

func (asBackend) Info() backend.Info {
	return backend.Info{
		Name:       "bruteforce",
		Kind:       backend.KindExact,
		Rank:       30,
		Proves:     true,
		Summary:    "bounded exhaustive enumeration; ground truth for tiny instances",
		Applicable: func(c *model.Compiled) bool { return c.N <= maxDefaultN },
	}
}

func (asBackend) Solve(ctx context.Context, req backend.Request) backend.Outcome {
	res, err := SolveContext(ctx, req.Compiled, req.Constraints, true)
	if err != nil {
		return backend.Outcome{Objective: math.Inf(1), Err: err}
	}
	return backend.Outcome{
		Order: res.Order, Objective: res.Objective,
		Proved: !res.Aborted, Iterations: res.Visited,
	}
}
