// Allocation-regression tests: the branch-and-bound descent loop is
// allocation-free in steady state, and these pins make that a CI
// invariant rather than a benchmark anecdote. Budgets cover the fixed
// per-solve setup (searcher arenas, walker, frame-pool warmup) and are
// far below what even one allocation per node would produce on the
// chosen instances, so any per-node slice or closure creeping back into
// dfs/candidates/spawn/offer fails loudly here — not quietly in a
// BENCH_eval.json diff months later.
package cp

import (
	"sync"
	"testing"

	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/sched"
)

// TestAllocSerialDescent pins the per-solve allocation budget of the
// serial engine on an instance whose proof expands thousands of nodes:
// the cost must stay a fixed setup constant, independent of tree size.
func TestAllocSerialDescent(t *testing.T) {
	in, c := inst(5, 12)
	cs := sched.PrecedenceSet(in)
	tb := prune.NewTailBound(c, cs, prune.Options{})
	var res Result
	var published int
	allocs := testing.AllocsPerRun(5, func() {
		res = Solve(c, cs, Options{
			TailBound:  tb,
			OnSolution: func([]int, float64) { published++ },
		})
	})
	if !res.Proved {
		t.Fatal("serial proof did not exhaust")
	}
	if res.Nodes < 1000 {
		t.Fatalf("instance too easy (%d nodes) to witness allocation-freedom", res.Nodes)
	}
	if published == 0 {
		t.Fatal("OnSolution path not exercised")
	}
	t.Logf("serial: %.1f allocs/solve over %d nodes, %d improvements", allocs, res.Nodes, published)
	const serialBudget = 64 // fixed setup; ~0.05/node would already trip it
	if allocs > serialBudget {
		t.Fatalf("serial solve allocates %.1f/op (budget %d): per-node allocations are back", allocs, serialBudget)
	}
}

// TestAllocParallelSolve pins the parallel engine's per-solve budget:
// per-worker setup plus the frame-pool warmup (frames are recycled
// through per-worker free lists, so live frames — not spawns — bound
// the count). The proof expands tens of thousands of nodes and spawns
// thousands of subproblems; one allocation per spawn would blow the
// budget by an order of magnitude.
func TestAllocParallelSolve(t *testing.T) {
	in, c := inst(5, 12)
	cs := sched.PrecedenceSet(in)
	var res Result
	allocs := testing.AllocsPerRun(5, func() {
		res = Solve(c, cs, Options{Workers: 4, Seed: 1})
	})
	if !res.Proved {
		t.Fatal("parallel proof did not exhaust")
	}
	if res.Nodes < 1000 {
		t.Fatalf("instance too easy (%d nodes) to witness allocation-freedom", res.Nodes)
	}
	t.Logf("parallel W=4: %.1f allocs/solve over %d nodes", allocs, res.Nodes)
	const parallelBudget = 600
	if allocs > parallelBudget {
		t.Fatalf("parallel solve allocates %.1f/op (budget %d): the spawn/steal path is allocating again",
			allocs, parallelBudget)
	}
}

// TestAllocIncumbentOffer pins the steady-state incumbent publish path
// at exactly zero: after the first offer has grown the internal
// buffers, improving offers (including the OnSolution callback) must
// not allocate.
func TestAllocIncumbentOffer(t *testing.T) {
	const n = 16
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var published int
	inc := newIncumbent(func([]int, float64) { published++ })
	obj := 1e9
	inc.offer(order, obj) // warmup: sizes order and callback buffers
	allocs := testing.AllocsPerRun(200, func() {
		obj--
		if !inc.offer(order, obj) {
			t.Fatal("offer with improving objective rejected")
		}
	})
	if published == 0 {
		t.Fatal("OnSolution never invoked")
	}
	if allocs != 0 {
		t.Fatalf("steady-state incumbent offer allocates %.1f/op, want 0", allocs)
	}
}

// TestIncumbentConcurrentOffers hammers the shared incumbent from many
// goroutines (run under -race in CI): offers, lock-free objective
// reads, and best() snapshots interleave freely, yet the callback must
// observe a strictly decreasing objective sequence and the final state
// must be the global minimum offered.
func TestIncumbentConcurrentOffers(t *testing.T) {
	const goroutines = 8
	const offersPer = 300
	const n = 12
	var published []float64
	inc := newIncumbent(func(o []int, obj float64) {
		// Serialized under the incumbent lock per the OnSolution contract.
		published = append(published, obj)
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			order := make([]int, n)
			for i := range order {
				order[i] = (i + g) % n
			}
			for k := 0; k < offersPer; k++ {
				inc.offer(order, float64(10_000_000-g-goroutines*k))
				_ = inc.objective()
				if k%17 == 0 {
					inc.best()
				}
			}
		}(g)
	}
	wg.Wait()

	wantObj := float64(10_000_000 - (goroutines - 1) - goroutines*(offersPer-1))
	order, obj := inc.best()
	if obj != wantObj {
		t.Fatalf("final objective %v, want %v", obj, wantObj)
	}
	wantFirst := (goroutines - 1) % n
	if len(order) != n || order[0] != wantFirst {
		t.Fatalf("final order %v does not match the minimal offer (want first element %d)", order, wantFirst)
	}
	for k := 1; k < len(published); k++ {
		if published[k] >= published[k-1] {
			t.Fatalf("callback objectives not strictly decreasing: %v then %v at %d",
				published[k-1], published[k], k)
		}
	}
}
