// Package cp implements the constraint-programming solver of §6: a
// branch-and-prune depth-first search over deployment positions with
// alldifferent semantics, precedence propagation, position-bound pruning
// from the §5 analysis constraints, an admissible objective bound, and a
// first-fail-flavored branching order. The engine supports failure
// limits and frozen positions, which is exactly the interface Large
// Neighborhood Search needs (§7.2).
//
// The descent loop is allocation-free in steady state: candidate lists
// live in per-depth rows carved from one arena owned by the searcher,
// branching densities go through a per-index scratch table, and
// improving solutions are copied into reusable buffers. Per-solve cost
// is a fixed handful of setup allocations regardless of tree size —
// pinned by allocation-regression tests (alloc_test.go) so a
// per-node allocation can never silently return.
//
// With Options.Workers > 1 the proof search runs as a work-stealing
// parallel branch-and-bound (see parallel.go): the tree is split at
// shallow depths into a frontier of subproblems spread over per-worker
// deques, every worker owns a model.Walker repositioned with Sync on
// steal, and all workers share one atomic incumbent that both publishes
// to and consumes from the portfolio's shared store mid-proof. The
// result is still an exact optimality proof when the frontier drains.
package cp

import (
	"context"
	"math"
	"time"

	"github.com/evolving-olap/idd/internal/bitset"
	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

// Options controls a CP search.
type Options struct {
	// FailLimit aborts the search after this many backtracks (0 = no
	// limit). LNS uses small limits (the paper uses 500). With Workers > 1
	// the limit is enforced against the global fail count on a polling
	// stride, so parallel searches may overshoot it by a few hundred.
	FailLimit int64
	// NodeLimit aborts after this many search nodes (0 = no limit); the
	// same parallel overshoot caveat as FailLimit applies.
	NodeLimit int64
	// Deadline aborts when the wall clock passes it (zero = none). The
	// deadline is checked every few dozen nodes.
	Deadline time.Time
	// Context, when non-nil, aborts the search when cancelled. Every
	// worker polls it on a node-count stride (pollStride), so service-side
	// cancellation (e.g. a DELETE on a solve job) interrupts even proofs
	// that are deep in the tree within microseconds.
	Context context.Context
	// ExternalBound, when non-nil, is polled for the best objective known
	// outside this search (the portfolio's shared incumbent); subtrees
	// that cannot beat it are pruned in addition to the solver's own
	// incumbent. When the search then exhausts, Proved means "no order
	// strictly better than the tightest bound seen exists" — the external
	// incumbent is optimal even if this search never matched it. In
	// parallel mode every worker polls it, so CP consumes portfolio
	// incumbents mid-proof.
	ExternalBound func() float64
	// Incumbent, when non-nil, seeds the search with a known feasible
	// order; only strictly better solutions are reported.
	Incumbent []int
	// Fixed, when non-nil, freezes positions: Fixed[k] = index that must
	// be deployed k-th, or -1 if position k is free. Frozen positions
	// implement LNS relaxations.
	Fixed []int
	// OnSolution, when non-nil, is invoked for every improving solution.
	// The order slice is a reusable buffer valid only for the duration of
	// the call — copy it to retain it (the portfolio store and the
	// service both copy internally). With Workers > 1 it may be invoked
	// from any worker goroutine; calls are serialized under the incumbent
	// lock, so objectives still arrive strictly decreasing.
	OnSolution func(order []int, objective float64)

	// TailBound, when non-nil, folds the §5.5 tail analysis into the
	// in-search lower bound: at nodes within TailBound.MaxLen() steps of
	// the leaves the exact minimal completion cost of the remaining set
	// is looked up and the node is pruned when even that cannot beat the
	// incumbent. Sound for any search (lookup misses never prune); the
	// proved optimum is unchanged, only the tree shrinks. The registry
	// param "cp.tail_bound" builds one per request (default on); direct
	// callers construct it with prune.NewTailBound.
	TailBound *prune.TailBound

	// Workers sets the number of branch-and-bound worker goroutines
	// (0 or 1 = single-threaded). The single-threaded search is fully
	// deterministic — identical instances yield identical node/fail
	// counts and solution sequences. Parallel searches prove the same
	// optimum but their effort counters depend on steal timing.
	Workers int
	// SplitDepth bounds the tree depth below which nodes donate their
	// sibling branches to the shared frontier instead of exploring them
	// in-line (0 = auto-sized from N and Workers). Deeper splits make
	// more, smaller subproblems.
	SplitDepth int
	// Seed derives each worker's private steal-victim RNG. Two parallel
	// runs with the same seed still differ in scheduling; the seed only
	// makes victim choice reproducible given identical schedules.
	Seed int64

	// Exporter, when non-nil, is called once as a parallel search starts,
	// handing the distributed-solve coordinator an ExportHandle that can
	// donate frontier subproblems to other nodes (see export.go); the
	// returned release func is called when the search ends. Ignored by
	// the serial engine — it has no frontier to export.
	Exporter func(h *ExportHandle) (release func())
	// RootPrefix, when non-empty, roots the search at the subtree below
	// this deployment prefix instead of the whole tree. Set via
	// SolveSubtree (the adoption end of distributed stealing); direct
	// callers should leave it nil.
	RootPrefix []int

	// Ablation switches (benchmarks only; keep both false in real use):
	// NaiveBranching disables the density-guided value ordering, and
	// NoBound disables the admissible objective bound (including the
	// tail bound), leaving only the combinatorial
	// (alldifferent/precedence) pruning.
	NaiveBranching bool
	NoBound        bool
}

// Result reports the outcome of a CP search.
type Result struct {
	// Order is the best solution found (nil if none and no incumbent).
	Order []int
	// Objective is the objective of Order (+Inf if none).
	Objective float64
	// Proved is true when the search space was exhausted, i.e. Order is
	// proved optimal (under the frozen positions, if any).
	Proved bool
	// Nodes and Fails count search effort, summed over all workers.
	Nodes, Fails int64
	// Solutions counts improving solutions found during this search.
	Solutions int
	// Workers reports how many workers actually ran (1 for the serial
	// engine).
	Workers int
	// Stats breaks the search effort down by cause.
	Stats Stats
}

// Stats is the per-solve effort breakdown. Counters are accumulated as
// plain ints in per-worker scratch (no atomics, no allocations on the
// descent path) and merged once per solve, so instrumentation is free
// at node granularity. Invariant: PrunedBound + PrunedTail + Infeasible
// == Result.Fails — every dead end has exactly one recorded cause.
type Stats struct {
	// PrunedBound counts nodes cut because even the most optimistic
	// completion could not beat the incumbent objective.
	PrunedBound int64
	// PrunedTail counts nodes cut by the exact tail-completion bound
	// (prune.TailBound) near the leaves.
	PrunedTail int64
	// Infeasible counts dead ends with no feasible candidate: a missed
	// position window, a double-booked last slot, or an empty ready set.
	Infeasible int64
	// Offers counts improving solutions offered to the (shared)
	// incumbent; Accepts counts the offers that won. They differ only in
	// parallel mode, where a concurrent better offer can race ahead.
	Offers, Accepts int64
	// StealAttempts counts probes of victim deques by out-of-work
	// workers; Steals counts the probes that returned a subproblem.
	StealAttempts, Steals int64
	// MaxDeque is the high-water mark of any single worker deque (0 for
	// the serial engine): how bushy the donated frontier got.
	MaxDeque int64
}

// Counters renders the result's effort breakdown as the flat named map
// the backend registry reports (see backend.Outcome.Counters). Built
// once per solve, after the search — never on the descent path.
func (r Result) Counters() map[string]int64 {
	return map[string]int64{
		"nodes":            r.Nodes,
		"fails":            r.Fails,
		"solutions":        int64(r.Solutions),
		"pruned_incumbent": r.Stats.PrunedBound,
		"pruned_tail":      r.Stats.PrunedTail,
		"infeasible":       r.Stats.Infeasible,
		"offers":           r.Stats.Offers,
		"accepts":          r.Stats.Accepts,
		"steal_attempts":   r.Stats.StealAttempts,
		"steals":           r.Stats.Steals,
		"max_deque_depth":  r.Stats.MaxDeque,
	}
}

// add folds o into s (used when merging per-worker scratch).
func (s *Stats) add(o *Stats) {
	s.PrunedBound += o.PrunedBound
	s.PrunedTail += o.PrunedTail
	s.Infeasible += o.Infeasible
	s.Offers += o.Offers
	s.Accepts += o.Accepts
	s.StealAttempts += o.StealAttempts
	s.Steals += o.Steals
	if o.MaxDeque > s.MaxDeque {
		s.MaxDeque = o.MaxDeque
	}
}

// pollStride is how many nodes a worker expands between checks of the
// deadline, the context, and (parallel mode) the global abort flag and
// shared effort counters. At the engine's node rates (µs/node) this
// bounds cancellation latency to well under a millisecond.
const pollStride = 64

type searcher struct {
	c   *model.Compiled
	cs  *constraint.Set
	opt Options
	lb  *bruteforce.LowerBound

	w      *model.Walker
	placed []bool
	// order[0:k] is the current prefix (order[j] = index placed j-th);
	// maintained by dfs so frontier splits can capture prefixes cheaply.
	order []int
	// predsLeft[i] = number of not-yet-placed predecessors of i.
	predsLeft []int
	// maxPos/minPos from the constraint relation (static).
	minPos, maxPos []int

	// fixedPos[i] = position index i is pinned to by Options.Fixed, or -1.
	fixedPos []int

	// candRows[k] is the reusable candidate row for depth k, carved from
	// one flat arena (row k holds at most n-k candidates, so the arena is
	// n(n+1)/2 ints total). dfs at depth k owns row k exclusively while
	// its loop runs; recursion only ever touches deeper rows, so no row
	// is reused while a caller still iterates it.
	candRows [][]int
	// dens[i] is the branching density of candidate index i at the node
	// currently being expanded (scratch for the candidate sort).
	dens []float64
	// tailScratch collects the remaining indexes for tail-bound lookups
	// near the leaves (at most prune.TailBound.MaxLen() entries).
	tailScratch []int

	// best/cbBuf are reusable solution buffers: best holds the improving
	// incumbent (monotone, so in-place overwrite is safe), cbBuf is what
	// OnSolution borrows for the duration of each callback.
	best      []int
	cbBuf     []int
	bestObj   float64
	nodes     int64
	fails     int64
	solutions int
	// st is this worker's private effort breakdown: plain ints bumped on
	// the descent path (same cost model as nodes/fails) and merged into
	// the solve-wide Stats exactly once, so the alloc/atomic budget of
	// the hot loop is untouched by instrumentation.
	st      Stats
	aborted bool
	poll    int // countdown to the next deadline/context poll

	// Parallel-mode hookup (nil for the serial engine): the shared run
	// state, this worker's id, high-water marks of the effort already
	// flushed into the run's global counters, the worker's subproblem
	// frame free list, and the scratch bitset adopt() rebuilds
	// precedence readiness from.
	par          *parRun
	wid          int
	flushedNodes int64
	flushedFails int64
	freeFrames   []*subproblem
	adoptSet     bitset.Set
}

func newSearcher(c *model.Compiled, cs *constraint.Set, opt Options) *searcher {
	n := c.N
	s := &searcher{
		c:         c,
		cs:        cs,
		opt:       opt,
		lb:        bruteforce.NewLowerBound(c),
		w:         model.NewWalker(c),
		placed:    make([]bool, n),
		order:     make([]int, n),
		predsLeft: make([]int, n),
		minPos:    make([]int, n),
		maxPos:    make([]int, n),
		dens:      make([]float64, n),
		bestObj:   math.Inf(1),
		poll:      pollStride,
	}
	if ml := opt.TailBound.MaxLen(); ml > 0 {
		s.tailScratch = make([]int, 0, ml)
	}
	// One flat arena backs every per-depth candidate row.
	s.candRows = make([][]int, n)
	flat := make([]int, n*(n+1)/2)
	off := 0
	for k := 0; k < n; k++ {
		s.candRows[k] = flat[off:off : off+(n-k)]
		off += n - k
	}
	for i := 0; i < n; i++ {
		s.predsLeft[i] = cs.Predecessors(i).Count()
		s.minPos[i] = cs.MinPos(i)
		s.maxPos[i] = cs.MaxPos(i)
	}
	s.fixedPos = make([]int, n)
	for i := range s.fixedPos {
		s.fixedPos[i] = -1
	}
	if opt.Fixed != nil {
		for p, i := range opt.Fixed {
			if i >= 0 {
				s.fixedPos[i] = p
			}
		}
	}
	return s
}

// Solve runs the CP search. cs may be nil (no precedence/analysis
// constraints). Passing contradictory Fixed assignments yields an
// exhausted search with no solution (Proved=true, Order=Incumbent).
func Solve(c *model.Compiled, cs *constraint.Set, opt Options) Result {
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	if opt.Workers > 1 && c.N > 1 {
		return solveParallel(c, cs, opt)
	}
	s := newSearcher(c, cs, opt)
	if opt.Incumbent != nil {
		s.best = append(s.best, opt.Incumbent...)
		s.bestObj = c.Objective(opt.Incumbent)
	}
	s.dfs(0)
	return Result{
		Order:     s.best,
		Objective: s.bestObj,
		Proved:    !s.aborted,
		Nodes:     s.nodes,
		Fails:     s.fails,
		Solutions: s.solutions,
		Workers:   1,
		Stats:     s.st,
	}
}

// limitHit checks abort conditions; it is cheap enough to call per node.
// Step limits are exact; the clock and the context are polled every
// pollStride nodes through a plain countdown, so cancellation latency no
// longer depends on how the node counter happens to align (the old
// modulo check) or how deep in the tree the search currently is.
func (s *searcher) limitHit() bool {
	if s.par != nil {
		return s.parLimitHit()
	}
	if s.opt.FailLimit > 0 && s.fails >= s.opt.FailLimit {
		return true
	}
	if s.opt.NodeLimit > 0 && s.nodes >= s.opt.NodeLimit {
		return true
	}
	if s.poll--; s.poll > 0 {
		return false
	}
	s.poll = pollStride
	if !s.opt.Deadline.IsZero() && time.Now().After(s.opt.Deadline) {
		return true
	}
	if s.opt.Context != nil {
		select {
		case <-s.opt.Context.Done():
			return true
		default:
		}
	}
	return false
}

// dfs extends the schedule at position k. Returns false when the search
// must abort entirely.
func (s *searcher) dfs(k int) bool {
	s.nodes++
	if s.limitHit() {
		s.aborted = true
		return false
	}
	n := s.c.N
	if k == n {
		obj := s.w.Objective()
		if s.par != nil {
			// The snapshot check mirrors offer's own fast path, so gating
			// here changes nothing except that Offers counts only genuine
			// improvement attempts, not every completed leaf.
			if obj < s.par.inc.objective()-1e-12 {
				s.st.Offers++
				if s.par.inc.offer(s.order, obj) {
					s.solutions++
					s.st.Accepts++
				}
			}
			return true
		}
		if obj < s.bestObj-1e-12 {
			s.bestObj = obj
			s.best = append(s.best[:0], s.order[:n]...)
			s.solutions++
			s.st.Offers++
			s.st.Accepts++
			if s.opt.OnSolution != nil {
				s.cbBuf = append(s.cbBuf[:0], s.best...)
				s.opt.OnSolution(s.cbBuf, obj)
			}
		}
		return true
	}

	// Objective bound (branch-and-prune): even the most optimistic
	// completion cannot beat the incumbent — the solver's own or, in
	// portfolio mode, the best any backend has published so far.
	ub := s.bestObj
	if s.par != nil {
		if g := s.par.inc.objective(); g < ub {
			ub = g
		}
	}
	if s.opt.ExternalBound != nil {
		if e := s.opt.ExternalBound(); e < ub {
			ub = e
		}
	}
	if !s.opt.NoBound && !math.IsInf(ub, 1) {
		if s.boundBelow() >= ub-1e-12 {
			s.fails++
			s.st.PrunedBound++
			return true
		}
		if s.tailPruned(k, ub) {
			s.fails++
			s.st.PrunedTail++
			return true
		}
	}

	cands := s.candidates(k)
	if cands == nil {
		s.fails++
		s.st.Infeasible++
		return true
	}
	if s.par != nil && k < s.par.splitDepth && len(cands) > 1 {
		// Frontier split: keep the most promising branch for this worker
		// and donate the siblings to the shared deque pool.
		s.par.spawn(s, k, cands[1:])
		cands = cands[:1]
	}
	for _, i := range cands {
		s.order[k] = i
		s.place(i)
		ok := s.dfs(k + 1)
		s.unplace(i)
		if !ok {
			return false
		}
	}
	return true
}

// boundBelow returns an admissible lower bound for any completion:
// the first remaining step pays at least the cheapest remaining
// best-case cost at the current runtime; every other remaining step is
// bounded by the fully-deployed runtime.
func (s *searcher) boundBelow() float64 {
	var restSum, restMin float64
	restMin = math.Inf(1)
	for i := 0; i < s.c.N; i++ {
		if !s.placed[i] {
			mc := s.lb.MinCost(i)
			restSum += mc
			if mc < restMin {
				restMin = mc
			}
		}
	}
	if math.IsInf(restMin, 1) {
		return s.w.Objective()
	}
	rmin := s.lb.MinRuntime()
	return s.w.Objective() + s.w.Runtime()*restMin + rmin*(restSum-restMin)
}

// tailPruned applies the in-search tail bound at nodes within
// TailBound.MaxLen() steps of the leaves: the exact minimal area of any
// feasible completion of the remaining set is looked up and the node
// fails when even that cannot strictly beat ub. Lookup misses never
// prune, so the check is sound regardless of the table's coverage.
func (s *searcher) tailPruned(k int, ub float64) bool {
	tb := s.opt.TailBound
	m := s.c.N - k
	if m > tb.MaxLen() { // MaxLen is 0 when tb is nil
		return false
	}
	rem := s.tailScratch[:0]
	for i := 0; i < s.c.N; i++ {
		if !s.placed[i] {
			rem = append(rem, i)
		}
	}
	t, ok := tb.Lookup(rem)
	return ok && s.w.Objective()+t >= ub-1e-12
}

// candidates returns the branching order for position k, or nil when the
// node is a dead end. The returned slice is the searcher's reusable row
// for depth k — valid until the next candidates(k) call at the same
// depth, which cannot happen while the caller's loop is still running.
// First-fail flavor: an index whose latest feasible position is k is
// forced (two such indexes = failure); otherwise candidates are the
// ready indexes ordered by current density, which steers the search
// toward good incumbents early.
func (s *searcher) candidates(k int) []int {
	n := s.c.N
	row := s.candRows[k][:0]
	if s.opt.Fixed != nil && s.opt.Fixed[k] >= 0 {
		i := s.opt.Fixed[k]
		if s.placed[i] || s.predsLeft[i] > 0 || s.minPos[i] > k || s.maxPos[i] < k {
			return nil
		}
		return append(row, i)
	}
	forced := -1
	for i := 0; i < n; i++ {
		if s.placed[i] {
			continue
		}
		if s.maxPos[i] < k {
			return nil // missed its window: contradiction
		}
		if s.maxPos[i] == k {
			if forced >= 0 {
				return nil // two indexes need the same last slot
			}
			forced = i
		}
	}
	if forced >= 0 {
		if s.predsLeft[forced] > 0 || s.minPos[forced] > k {
			return nil
		}
		return append(row, forced)
	}

	for i := 0; i < n; i++ {
		if s.placed[i] || s.predsLeft[i] > 0 || s.minPos[i] > k {
			continue
		}
		// Frozen-position feasibility: if the index is pinned to another
		// position, it cannot be placed here.
		if s.fixedPos[i] >= 0 && s.fixedPos[i] != k {
			continue
		}
		if s.opt.NaiveBranching {
			s.dens[i] = 0
		} else {
			s.dens[i] = s.w.SpeedupIfBuilt(i) / s.w.BuildCost(i)
		}
		row = append(row, i)
	}
	if len(row) == 0 {
		return nil
	}
	// Insertion sort by density desc, id asc — candidate lists are short.
	// With NaiveBranching all densities are zero and id order remains.
	for a := 1; a < len(row); a++ {
		for b := a; b > 0 && s.better(row[b], row[b-1]); b-- {
			row[b], row[b-1] = row[b-1], row[b]
		}
	}
	return row
}

// better orders candidate indexes by the density recorded in s.dens
// (descending), ties by id (ascending).
func (s *searcher) better(a, b int) bool {
	if s.dens[a] != s.dens[b] {
		return s.dens[a] > s.dens[b]
	}
	return a < b
}

func (s *searcher) place(i int) {
	s.placed[i] = true
	s.w.Push(i)
	s.cs.Successors(i).ForEach(func(j int) bool {
		s.predsLeft[j]--
		return true
	})
}

func (s *searcher) unplace(i int) {
	s.cs.Successors(i).ForEach(func(j int) bool {
		s.predsLeft[j]++
		return true
	})
	s.w.Pop()
	s.placed[i] = false
}
