package cp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

func inst(seed int64, n int) (*model.Instance, *model.Compiled) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = n
	cfg.Queries = 6
	cfg.BuildInteractionProb = 0.1
	in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
	return in, model.MustCompile(in)
}

func TestMatchesBruteforceOptimum(t *testing.T) {
	f := func(seed int64) bool {
		_, c := inst(seed, 7)
		bf, err := bruteforce.Solve(c, nil, true)
		if err != nil {
			return false
		}
		res := Solve(c, nil, Options{})
		if !res.Proved {
			return false
		}
		return math.Abs(res.Objective-bf.Objective) < 1e-9*(1+bf.Objective)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesBruteforceWithPrecedences(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 7
	cfg.PrecedenceProb = 0.25
	for rep := 0; rep < 8; rep++ {
		in := randgen.New(rng, cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		bf, err := bruteforce.Solve(c, cs, true)
		if err != nil {
			t.Fatal(err)
		}
		res := Solve(c, cs, Options{})
		if !res.Proved {
			t.Fatal("search not exhausted on a 7-index instance")
		}
		if math.Abs(res.Objective-bf.Objective) > 1e-9*(1+bf.Objective) {
			t.Fatalf("rep %d: cp %v != bf %v", rep, res.Objective, bf.Objective)
		}
		if err := in.ValidOrder(res.Order); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}

func TestAnalysisConstraintsSpeedSearch(t *testing.T) {
	// Adding valid constraints (derived from the optimum itself) must not
	// change the objective but must shrink the node count — the §5 story.
	_, c := inst(33, 8)
	base := Solve(c, nil, Options{})
	if !base.Proved {
		t.Fatal("base search not exhausted")
	}
	cs := constraint.NewSet(c.N)
	// Constrain the true optimal order's first element to be first and
	// last to be last (a "tail champion"-style constraint).
	opt := base.Order
	for _, i := range opt[1:] {
		cs.MustAdd(opt[0], i)
	}
	for _, i := range opt[:len(opt)-1] {
		cs.MustAdd(i, opt[len(opt)-1])
	}
	constrained := Solve(c, cs, Options{})
	if !constrained.Proved {
		t.Fatal("constrained search not exhausted")
	}
	if math.Abs(constrained.Objective-base.Objective) > 1e-9*(1+base.Objective) {
		t.Fatalf("constraints changed the optimum: %v vs %v", constrained.Objective, base.Objective)
	}
	if constrained.Nodes >= base.Nodes {
		t.Errorf("constraints did not reduce nodes: %d >= %d", constrained.Nodes, base.Nodes)
	}
}

func TestFailLimitAborts(t *testing.T) {
	_, c := inst(5, 10)
	res := Solve(c, nil, Options{FailLimit: 10})
	if res.Proved {
		t.Fatal("10-fail search claimed an optimality proof on 10 indexes")
	}
	if res.Fails < 10 {
		t.Fatalf("aborted with only %d fails", res.Fails)
	}
}

func TestNodeLimitAborts(t *testing.T) {
	_, c := inst(5, 10)
	res := Solve(c, nil, Options{NodeLimit: 50})
	if res.Proved {
		t.Fatal("node-limited search claimed a proof")
	}
}

func TestDeadlineAborts(t *testing.T) {
	_, c := inst(5, 11)
	start := time.Now()
	res := Solve(c, nil, Options{Deadline: start.Add(30 * time.Millisecond)})
	if res.Proved {
		t.Skip("instance solved to optimality before the deadline")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline ignored")
	}
}

func TestIncumbentOnlyImprovedUpon(t *testing.T) {
	_, c := inst(6, 7)
	opt := Solve(c, nil, Options{})
	// Seeding with the optimum: no improving solution can exist.
	res := Solve(c, nil, Options{Incumbent: opt.Order})
	if res.Solutions != 0 {
		t.Errorf("found %d 'improving' solutions over the optimum", res.Solutions)
	}
	if math.Abs(res.Objective-opt.Objective) > 1e-9 {
		t.Errorf("objective drifted: %v vs %v", res.Objective, opt.Objective)
	}
	if !res.Proved {
		t.Error("seeded search should still prove optimality")
	}
}

func TestFixedPositionsRespected(t *testing.T) {
	_, c := inst(8, 7)
	full := Solve(c, nil, Options{})
	// Freeze everything except positions 2 and 4: the search must keep
	// the frozen entries and only permute the free ones.
	fixed := append([]int(nil), full.Order...)
	free := map[int]bool{2: true, 4: true}
	for p := range fixed {
		if free[p] {
			fixed[p] = -1
		}
	}
	res := Solve(c, nil, Options{Fixed: fixed, Incumbent: full.Order})
	if !res.Proved {
		t.Fatal("tiny LNS neighborhood not exhausted")
	}
	for p, want := range full.Order {
		if free[p] {
			continue
		}
		if res.Order[p] != want {
			t.Errorf("frozen position %d changed: %d -> %d", p, want, res.Order[p])
		}
	}
	if res.Objective > full.Objective+1e-9 {
		t.Errorf("relaxation worsened the incumbent: %v > %v", res.Objective, full.Objective)
	}
}

func TestContradictoryFixedYieldsIncumbent(t *testing.T) {
	in, c := inst(9, 5)
	cs := constraint.NewSet(c.N)
	cs.MustAdd(0, 1)
	// Pin 1 to position 0 and 0 to position 1, contradicting 0<1.
	fixed := []int{1, 0, -1, -1, -1}
	seed := sched.RandomFeasible(rand.New(rand.NewSource(1)), cs)
	res := Solve(c, cs, Options{Fixed: fixed, Incumbent: seed})
	if !res.Proved {
		t.Fatal("contradictory neighborhood should exhaust instantly")
	}
	if res.Solutions != 0 {
		t.Fatal("contradiction produced solutions")
	}
	if err := in.ValidOrder(res.Order); err != nil {
		t.Fatalf("incumbent not preserved: %v", err)
	}
}

func TestOnSolutionMonotone(t *testing.T) {
	_, c := inst(10, 8)
	last := math.Inf(1)
	calls := 0
	Solve(c, nil, Options{OnSolution: func(order []int, obj float64) {
		calls++
		if obj >= last {
			t.Errorf("non-improving callback: %v after %v", obj, last)
		}
		last = obj
		if len(order) != c.N {
			t.Errorf("callback order has %d entries", len(order))
		}
	}})
	if calls == 0 {
		t.Fatal("no solutions reported")
	}
}

func TestDensityBranchingFindsGoodFirstSolution(t *testing.T) {
	// The first solution the CP search dives to should already be decent:
	// no worse than 2x the optimum on small instances (density ordering).
	rng := rand.New(rand.NewSource(12))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 7
	for rep := 0; rep < 10; rep++ {
		in := randgen.New(rng, cfg)
		c := model.MustCompile(in)
		var first float64
		got := false
		res := Solve(c, nil, Options{OnSolution: func(_ []int, obj float64) {
			if !got {
				first, got = obj, true
			}
		}})
		if !got {
			t.Fatal("no solution callback")
		}
		if first > 2*res.Objective {
			t.Errorf("rep %d: first dive %v > 2x optimum %v", rep, first, res.Objective)
		}
	}
}

func TestAblationSwitchesStayExact(t *testing.T) {
	// The ablation switches change search effort, never the optimum.
	_, c := inst(44, 7)
	ref := Solve(c, nil, Options{})
	for _, opt := range []Options{
		{NaiveBranching: true},
		{NoBound: true},
		{NaiveBranching: true, NoBound: true},
	} {
		res := Solve(c, nil, opt)
		if !res.Proved {
			t.Fatalf("%+v: not proved", opt)
		}
		if math.Abs(res.Objective-ref.Objective) > 1e-9*(1+ref.Objective) {
			t.Errorf("%+v: objective %v != %v", opt, res.Objective, ref.Objective)
		}
	}
}

func TestBoundReducesNodes(t *testing.T) {
	_, c := inst(45, 8)
	with := Solve(c, nil, Options{})
	without := Solve(c, nil, Options{NoBound: true})
	if !with.Proved || !without.Proved {
		t.Fatal("searches not exhausted")
	}
	if with.Nodes >= without.Nodes {
		t.Errorf("bound did not reduce nodes: %d vs %d", with.Nodes, without.Nodes)
	}
}
