// Distributed work stealing: the donation end. A parallel proof search
// already keeps its frontier as (deployment prefix) frames in per-worker
// deques, so exporting a subtree over the wire is just copying the
// shallowest such prefix out — a few dozen bytes. The ExportHandle
// wraps a live parRun behind the backend.WorkSource contract: steals
// leave the open-subproblem counter untouched (the thief owes a
// completion), completions offer the remote best to the shared
// incumbent *before* decrementing the counter, and requeues hand the
// debt back to the local frontier. Under that protocol the counter
// draining to zero still certifies that every branch was explored or
// bounded away — just not necessarily all in this process.
package cp

import (
	"math"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// ExportHandle exposes one running parallel search as a
// backend.WorkSource. Handles are created by solveParallel when
// Options.Exporter is set and become invalid when the search returns
// (the exporter's release callback marks the boundary); the cluster
// layer guarantees no calls after release.
type ExportHandle struct {
	r *parRun
}

// StealSubtree pops the shallowest non-root frontier frame across all
// worker deques and returns a copy of its prefix. The root frame
// (empty prefix) never leaves the process: exporting it would donate
// the entire remaining search and leave the local workers idle.
func (h *ExportHandle) StealSubtree() ([]int, bool) {
	r := h.r
	if r.aborted.Load() {
		return nil, false
	}
	// Two passes: peek every deque's front depth without holding more
	// than one lock, then steal from the shallowest victim. A frame
	// pushed or stolen between the passes just means we take whatever
	// is at that victim's front now — any exportable frame is fine,
	// shallowest is only a preference (bigger donated subtree).
	victim, depth := -1, math.MaxInt
	for i, d := range r.deques {
		if dd, ok := d.peekFrontDepth(); ok && dd > 0 && dd < depth {
			victim, depth = i, dd
		}
	}
	if victim < 0 {
		return nil, false
	}
	sp := r.deques[victim].stealFrontNonRoot()
	if sp == nil {
		return nil, false
	}
	// The frame is abandoned to the GC rather than recycled: free
	// lists are goroutine-owned and exports happen at network rate,
	// far below the alloc budget that matters.
	return append([]int(nil), sp.prefix...), true
}

// CompleteSubtree settles an exported subtree that a remote helper
// fully explored. The remote best (nil = nothing improving found) is
// offered first, then the open-subproblem counter drops; if that
// drains the frontier the proof completes, already accounting for the
// remote solution.
func (h *ExportHandle) CompleteSubtree(best []int, obj float64) {
	r := h.r
	if best != nil && obj < r.inc.objective()-1e-12 {
		if r.inc.offer(best, obj) {
			r.solutions.Add(1)
		}
	}
	if r.pending.Add(-1) == 0 {
		r.stop(false) // frontier drained across nodes: proof complete
	}
}

// RequeueSubtree returns an exported subtree to the local frontier:
// the helper died, timed out, or gave up without exhausting it. The
// open-subproblem count is unchanged — the caller's steal debt simply
// transfers back to the frame, which any local worker can adopt.
func (h *ExportHandle) RequeueSubtree(prefix []int) {
	r := h.r
	sp := &subproblem{prefix: append(make([]int, 0, r.c.N), prefix...)}
	r.deques[0].pushBack(sp)
	r.mu.Lock()
	r.workSeq++
	r.cond.Broadcast()
	r.mu.Unlock()
}

// validPrefix reports whether prefix is a well-formed partial order for
// an N-index instance: every entry in range, no duplicates. Adoption
// machinery (Walker.Sync, precedence recount) assumes this; prefixes
// arriving over the wire are checked before the search trusts them.
func validPrefix(n int, prefix []int) bool {
	if len(prefix) > n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range prefix {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

// SolveSubtree explores only the subtree rooted at the given deployment
// prefix: positions 0..len(prefix)-1 are taken as placed and the search
// proves the best completion below them. Result.Proved then means "this
// subtree is exhausted"; Result.Order/Objective report the best full
// order found (prefix + completion), or the seeded Incumbent when
// nothing in the subtree beats it. This is the adoption end of
// distributed work stealing — the wire frame is just the prefix, and
// everything else (placed set, precedence readiness, walker position)
// is recomputed here exactly as a local thief would.
//
// A malformed prefix (out-of-range or duplicate indexes — possible when
// it arrived over the wire) yields an unproved empty result rather than
// corrupting the search.
func SolveSubtree(c *model.Compiled, cs *constraint.Set, prefix []int, opt Options) Result {
	if !validPrefix(c.N, prefix) {
		return Result{Objective: math.Inf(1)}
	}
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	opt.RootPrefix = prefix
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	return solveParallel(c, cs, opt)
}
