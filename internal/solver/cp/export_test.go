package cp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
)

// TestSolveSubtreePartition proves the partition identity distributed
// stealing relies on: the minimum over the subtree optima of every
// feasible first deployment equals the full-tree optimum, and each
// subtree solve is itself proved.
func TestSolveSubtreePartition(t *testing.T) {
	_, c := inst(31, 8)
	full := Solve(c, nil, Options{})
	if !full.Proved {
		t.Fatal("full solve not proved")
	}
	best := math.Inf(1)
	for i := 0; i < c.N; i++ {
		res := SolveSubtree(c, nil, []int{i}, Options{})
		if !res.Proved {
			t.Fatalf("subtree [%d] not proved", i)
		}
		if res.Objective < best {
			best = res.Objective
		}
	}
	if math.Abs(best-full.Objective) > 1e-9*(1+full.Objective) {
		t.Fatalf("partition minimum %v != full optimum %v", best, full.Objective)
	}
}

// TestSolveSubtreeInvalidPrefix pins the wire-hardening behavior: a
// malformed prefix yields an unproved empty result.
func TestSolveSubtreeInvalidPrefix(t *testing.T) {
	_, c := inst(32, 6)
	for _, prefix := range [][]int{{-1}, {6}, {0, 0}, {0, 1, 2, 3, 4, 5, 0}} {
		res := SolveSubtree(c, nil, prefix, Options{})
		if res.Proved || res.Order != nil || !math.IsInf(res.Objective, 1) {
			t.Fatalf("prefix %v: want unproved empty result, got %+v", prefix, res)
		}
	}
}

// TestExportHandleRoundTrip runs the full steal protocol in-process: a
// thief goroutine steals frontier subtrees from a live parallel proof,
// solves them via SolveSubtree (as a remote helper would), and settles
// them through CompleteSubtree. The donor's proof must still complete
// with the same objective as an undisturbed solve.
func TestExportHandleRoundTrip(t *testing.T) {
	// Sized so the proof runs a few hundred ms — long enough for the
	// thief to land many steals (inst()'s defaults prove in ~1ms).
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 16
	cfg.Queries = 12
	cfg.BuildInteractionProb = 0.3
	in := randgen.New(rand.New(rand.NewSource(33)), cfg)
	c := model.MustCompile(in)
	ref := Solve(c, nil, Options{})
	if !ref.Proved {
		t.Fatal("reference solve not proved")
	}

	var (
		mu     sync.Mutex
		handle *ExportHandle
		live   bool
		stolen int
	)
	stop := make(chan struct{})
	var thief sync.WaitGroup
	thief.Add(1)
	go func() {
		defer thief.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			h, ok := handle, live
			mu.Unlock()
			if !ok {
				time.Sleep(time.Millisecond)
				continue
			}
			prefix, ok := h.StealSubtree()
			if !ok {
				time.Sleep(time.Millisecond)
				continue
			}
			// Exercise both settlement paths: requeue every third steal
			// (helper "gave up"), complete the rest after a subtree
			// solve, exactly as the cluster helper does.
			mu.Lock()
			stolen++
			k := stolen
			mu.Unlock()
			if k%3 == 0 {
				h.RequeueSubtree(prefix)
				continue
			}
			sub := SolveSubtree(c, nil, prefix, Options{Workers: 1})
			if !sub.Proved {
				h.RequeueSubtree(prefix)
				continue
			}
			h.CompleteSubtree(sub.Order, sub.Objective)
		}
	}()

	res := Solve(c, nil, Options{
		Workers: 2,
		Exporter: func(h *ExportHandle) func() {
			mu.Lock()
			handle, live = h, true
			mu.Unlock()
			return func() {
				mu.Lock()
				live = false
				mu.Unlock()
			}
		},
	})
	close(stop)
	thief.Wait()

	if !res.Proved {
		t.Fatal("donor proof did not complete under stealing")
	}
	if math.Abs(res.Objective-ref.Objective) > 1e-9*(1+ref.Objective) {
		t.Fatalf("stolen-from solve objective %v != reference %v", res.Objective, ref.Objective)
	}
	mu.Lock()
	n := stolen
	mu.Unlock()
	if n == 0 {
		t.Fatal("thief never landed a steal — instance too easy to exercise the protocol")
	}
	t.Logf("thief settled %d subtrees", n)
}

// TestExportNeverDonatesRoot: the root frame must stay local — donating
// it would hand the entire search away.
func TestExportNeverDonatesRoot(t *testing.T) {
	_, c := inst(34, 9)
	cs := constraint.NewSet(c.N)
	done := make(chan struct{})
	var rootStolen bool
	res := Solve(c, cs, Options{
		Workers: 2,
		Exporter: func(h *ExportHandle) func() {
			go func() {
				defer close(done)
				for i := 0; i < 1000; i++ {
					if p, ok := h.StealSubtree(); ok {
						if len(p) == 0 {
							rootStolen = true
							return
						}
						h.RequeueSubtree(p)
					}
				}
			}()
			return func() {}
		},
	})
	<-done
	if rootStolen {
		t.Fatal("steal returned the root (empty prefix) frame")
	}
	if !res.Proved {
		t.Fatal("proof did not complete")
	}
}
