package cp_test

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/cp"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/solvertest"
)

// TestFeasibilityProperty: CP orders are precedence-feasible permutations
// both when the search is exhausted and when it is cut off mid-run by a
// fail limit (the LNS regime).
func TestFeasibilityProperty(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 9
	cfg.Queries = 7
	cfg.PrecedenceProb = 0.1
	for seed := int64(0); seed < 15; seed++ {
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)

		full := cp.Solve(c, cs, cp.Options{})
		if !full.Proved {
			t.Fatalf("seed %d: unbounded CP did not prove", seed)
		}
		solvertest.RequireFeasible(t, c.N, cs, full.Order)

		cut := cp.Solve(c, cs, cp.Options{
			FailLimit: 50,
			Incumbent: greedy.Solve(c, cs),
		})
		solvertest.RequireFeasible(t, c.N, cs, cut.Order)
	}
}
