package cp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

// FuzzCPParallel cross-checks the work-stealing parallel proof search
// against exhaustive enumeration on tiny random instances: for any
// instance shape, worker count, split depth, seed and tail-bound
// configuration (off, or tables of length 1..4), the parallel engine
// must prove the brute-force optimum with a feasible order — the tail
// bound may only shrink the tree, never change what is proved.
func FuzzCPParallel(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(2), uint8(20), uint8(0), uint8(0))
	f.Add(int64(7), uint8(8), uint8(8), uint8(0), uint8(3), uint8(1))
	f.Add(int64(42), uint8(4), uint8(3), uint8(45), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, n, workers, precPct, split, tail uint8) {
		cfg := randgen.DefaultConfig()
		cfg.Indexes = 3 + int(n%6) // 3..8: brute force is instant
		cfg.Queries = 3 + int(n%4)
		cfg.PrecedenceProb = float64(precPct%50) / 100
		cfg.BuildInteractionProb = 0.1
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		bf, err := bruteforce.Solve(c, cs, true)
		if err != nil {
			t.Fatal(err)
		}
		var tb *prune.TailBound
		if tail%5 != 0 { // 0 = bound off; 1..4 = table length
			tb = prune.NewTailBound(c, cs, prune.Options{TailLength: int(tail % 5)})
		}
		res := Solve(c, cs, Options{
			Workers:    2 + int(workers%7), // 2..8
			SplitDepth: int(split % 10),    // 0 = auto, up to deeper than n
			Seed:       seed,
			TailBound:  tb,
		})
		if !res.Proved {
			t.Fatalf("parallel search not exhausted on %d indexes", c.N)
		}
		if math.Abs(res.Objective-bf.Objective) > 1e-9*(1+bf.Objective) {
			t.Fatalf("parallel cp %v != bruteforce %v", res.Objective, bf.Objective)
		}
		if err := in.ValidOrder(res.Order); err != nil {
			t.Fatalf("infeasible order: %v", err)
		}
	})
}
