// Work-stealing parallel branch-and-bound. The search tree is cut at a
// shallow split depth: whenever a worker expands a node above that depth
// it keeps the most promising branch and donates the sibling branches to
// its own deque as frontier subproblems (a deployment prefix). Idle
// workers steal from the opposite end of victim deques, so the owner
// keeps depth-first locality while thieves take the shallowest —
// largest — subtrees. All workers prune against a single atomic
// incumbent that also bridges to the portfolio (it polls
// Options.ExternalBound and publishes improvements through
// Options.OnSolution), and a global open-subproblem counter certifies
// the optimality proof: when it drains to zero with no abort, every
// branch of the tree was either explored or bounded away.
//
// Subproblem frames are pooled: each worker keeps a private free list
// and recycles every frame it finishes into it, so after a brief warmup
// the steady-state steal/spawn cycle allocates nothing (frames spawned
// by one worker and adopted by another simply migrate free lists; each
// list is only ever touched by its owning goroutine). Free lists rather
// than sync.Pool keep recycling deterministic — allocation counts must
// not depend on GC timing, because alloc_test.go pins them.
package cp

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/evolving-olap/idd/internal/bitset"
	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// subproblem is one frontier node: the search subtree rooted at the
// given deployment prefix. Everything else a thief needs (placed set,
// precedence readiness) is recomputed from the prefix on adoption, so
// the frame itself is just a reusable int buffer.
type subproblem struct {
	prefix []int
}

// getFrame pops a recycled frame from the worker's free list (or
// allocates one of the initial frames during warmup). Only the
// searcher's own goroutine touches its free list.
func (s *searcher) getFrame() *subproblem {
	if n := len(s.freeFrames); n > 0 {
		sp := s.freeFrames[n-1]
		s.freeFrames[n-1] = nil
		s.freeFrames = s.freeFrames[:n-1]
		return sp
	}
	return &subproblem{prefix: make([]int, 0, s.c.N)}
}

// putFrame recycles a finished frame into the worker's own free list —
// including frames spawned by other workers; migration is safe because
// a frame is owned by exactly one goroutine at a time (spawner → deque
// → adopter → adopter's free list).
func (s *searcher) putFrame(sp *subproblem) {
	sp.prefix = sp.prefix[:0]
	s.freeFrames = append(s.freeFrames, sp)
}

// deque is one worker's subproblem store. The owner pushes and pops at
// the back (depth-first locality); thieves steal from the front, taking
// the shallowest subproblem — the largest stolen unit of work, which
// keeps steal traffic rare. A plain per-deque mutex is uncontended in
// the common case (owner-only access) and far simpler to prove correct
// under -race than a Chase-Lev array.
type deque struct {
	mu sync.Mutex
	q  []*subproblem
	// maxDepth is the deque's high-water mark, maintained under the mutex
	// pushBack already holds; solveParallel reads it after the workers
	// join, so no extra synchronization is needed.
	maxDepth int
}

func (d *deque) pushBack(sp *subproblem) {
	d.mu.Lock()
	d.q = append(d.q, sp)
	if len(d.q) > d.maxDepth {
		d.maxDepth = len(d.q)
	}
	d.mu.Unlock()
}

func (d *deque) popBack() *subproblem {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return nil
	}
	sp := d.q[len(d.q)-1]
	d.q[len(d.q)-1] = nil
	d.q = d.q[:len(d.q)-1]
	return sp
}

func (d *deque) stealFront() *subproblem {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return nil
	}
	sp := d.q[0]
	d.q[0] = nil
	d.q = d.q[1:]
	return sp
}

// peekFrontDepth reports the prefix length of the front (shallowest)
// subproblem, for the cross-node exporter's victim choice.
func (d *deque) peekFrontDepth() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return 0, false
	}
	return len(d.q[0].prefix), true
}

// stealFrontNonRoot is stealFront restricted to frames with a non-empty
// prefix: the root frame never leaves the process (see
// ExportHandle.StealSubtree).
func (d *deque) stealFrontNonRoot() *subproblem {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 || len(d.q[0].prefix) == 0 {
		return nil
	}
	sp := d.q[0]
	d.q[0] = nil
	d.q = d.q[1:]
	return sp
}

// incumbent is the shared best-known schedule. The objective is mirrored
// in an atomic word so the per-node prune check never locks; the order
// and the improvement callback are guarded by the mutex, which also
// serializes OnSolution so observers still see strictly decreasing
// objectives.
type incumbent struct {
	bits  atomic.Uint64
	mu    sync.Mutex
	order []int
	// cbBuf is the reusable buffer OnSolution borrows for the duration
	// of each callback (guarded by mu, like order).
	cbBuf []int
	onSol func(order []int, objective float64)
}

func newIncumbent(onSol func([]int, float64)) *incumbent {
	inc := &incumbent{onSol: onSol}
	inc.bits.Store(math.Float64bits(math.Inf(1)))
	return inc
}

func (in *incumbent) objective() float64 {
	return math.Float64frombits(in.bits.Load())
}

// seed installs a starting order without invoking the callback (matching
// the serial engine, which only reports strict improvements over the
// seeded incumbent).
func (in *incumbent) seed(order []int, obj float64) {
	in.order = append(in.order[:0], order...)
	in.bits.Store(math.Float64bits(obj))
}

// offer publishes an improving schedule; order is copied into reusable
// buffers, so the steady-state offer path allocates nothing. The same
// strict-improvement epsilon as the serial engine applies, so a parallel
// proof accepts exactly the objectives a serial one would. OnSolution
// borrows cbBuf only for the duration of the call, per its contract.
func (in *incumbent) offer(order []int, obj float64) bool {
	if obj >= in.objective()-1e-12 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if obj >= in.objective()-1e-12 {
		return false // raced with a better offer
	}
	in.order = append(in.order[:0], order...)
	in.bits.Store(math.Float64bits(obj))
	if in.onSol != nil {
		in.cbBuf = append(in.cbBuf[:0], order...)
		in.onSol(in.cbBuf, obj)
	}
	return true
}

func (in *incumbent) best() ([]int, float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.order == nil {
		return nil, math.Inf(1)
	}
	return append([]int(nil), in.order...), in.objective()
}

// parRun is the state shared by all workers of one parallel solve.
type parRun struct {
	c          *model.Compiled
	cs         *constraint.Set
	opt        Options
	splitDepth int
	deques     []*deque
	inc        *incumbent

	// pending counts open subproblems (created but not fully explored).
	// It starts at 1 for the root; every spawn adds one; every completed
	// adoption subtracts one. Zero with no abort = the whole tree was
	// covered: the optimality proof.
	pending atomic.Int64
	aborted atomic.Bool

	// Global effort counters; workers flush their private counts in on
	// every poll so limits apply to the sum, not per worker.
	nodes     atomic.Int64
	fails     atomic.Int64
	solutions atomic.Int64

	// Merged per-worker Stats. Workers fold their private scratch in
	// exactly once, on exit (stats never gate limits, so unlike
	// nodes/fails they need no mid-solve flushes).
	stMu sync.Mutex
	st   Stats

	// Parking lot for idle workers. workSeq increments on every spawn so
	// a sweep-then-park thief cannot miss a wakeup: it re-checks the
	// sequence under the lock before sleeping.
	mu      sync.Mutex
	cond    *sync.Cond
	workSeq int64
	stopped bool
}

// stop wakes every parked worker; aborted distinguishes a cancelled run
// from a drained frontier.
func (r *parRun) stop(abort bool) {
	if abort {
		r.aborted.Store(true)
	}
	r.mu.Lock()
	r.stopped = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// spawn donates sibling branches of the node at depth k to the worker's
// own deque and wakes thieves. Runs on the worker that owns s; frames
// come from s's free list.
func (r *parRun) spawn(s *searcher, k int, rest []int) {
	d := r.deques[s.wid]
	for _, i := range rest {
		sp := s.getFrame()
		sp.prefix = append(append(sp.prefix, s.order[:k]...), i)
		r.pending.Add(1)
		d.pushBack(sp)
	}
	r.mu.Lock()
	r.workSeq++
	r.cond.Broadcast()
	r.mu.Unlock()
}

// parLimitHit is the parallel counterpart of limitHit: flush private
// effort into the global counters, then check the abort flag, the step
// limits against the global sums, the deadline, and the context.
func (s *searcher) parLimitHit() bool {
	if s.poll--; s.poll > 0 {
		return false
	}
	s.poll = pollStride
	r := s.par
	nodes := r.nodes.Add(s.nodes - s.flushedNodes)
	fails := r.fails.Add(s.fails - s.flushedFails)
	s.flushedNodes, s.flushedFails = s.nodes, s.fails
	if r.aborted.Load() {
		return true
	}
	if r.opt.FailLimit > 0 && fails >= r.opt.FailLimit {
		r.stop(true)
		return true
	}
	if r.opt.NodeLimit > 0 && nodes >= r.opt.NodeLimit {
		r.stop(true)
		return true
	}
	if !r.opt.Deadline.IsZero() && time.Now().After(r.opt.Deadline) {
		r.stop(true)
		return true
	}
	if r.opt.Context != nil {
		select {
		case <-r.opt.Context.Done():
			r.stop(true)
			return true
		default:
		}
	}
	return false
}

// adopt repositions the worker's search state onto a subproblem: the
// walker Syncs to the prefix (paying only the symmetric difference from
// its previous position) and the precedence bookkeeping is recomputed
// from the prefix through the worker's adoptSet scratch bitset.
func (s *searcher) adopt(sp *subproblem) {
	s.w.Sync(sp.prefix)
	for i := range s.placed {
		s.placed[i] = false
	}
	s.adoptSet.Clear()
	for _, i := range sp.prefix {
		s.placed[i] = true
		s.adoptSet.Add(i)
	}
	for i := 0; i < s.c.N; i++ {
		preds := s.cs.Predecessors(i)
		s.predsLeft[i] = preds.Count() - preds.CountAnd(s.adoptSet)
	}
	copy(s.order, sp.prefix)
}

// flushCounters folds the worker's residual private effort into the run
// totals on exit.
func (s *searcher) flushCounters() {
	s.par.nodes.Add(s.nodes - s.flushedNodes)
	s.par.fails.Add(s.fails - s.flushedFails)
	s.par.solutions.Add(int64(s.solutions))
	s.flushedNodes, s.flushedFails = s.nodes, s.fails
	s.par.stMu.Lock()
	s.par.st.add(&s.st)
	s.par.stMu.Unlock()
}

// findWork steals a subproblem for an out-of-work worker, or parks it
// until new work is spawned or the run ends. Returns nil when the run is
// over (frontier drained or aborted). Only the caller's own goroutine
// ever pushes to its deque, so while it is here its deque stays empty —
// stealing from victims is the only source of work.
func (r *parRun) findWork(s *searcher, rng *uint64) *subproblem {
	for {
		r.mu.Lock()
		seq := r.workSeq
		stopped := r.stopped
		r.mu.Unlock()
		if stopped {
			return nil
		}
		// Sweep victims starting from a random offset so thieves spread
		// out instead of all hammering worker 0.
		off := int(xorshift(rng) % uint64(len(r.deques)))
		for t := 0; t < len(r.deques); t++ {
			v := (off + t) % len(r.deques)
			if v == s.wid {
				continue
			}
			s.st.StealAttempts++
			if sp := r.deques[v].stealFront(); sp != nil {
				s.st.Steals++
				return sp
			}
		}
		r.mu.Lock()
		for r.workSeq == seq && !r.stopped {
			r.cond.Wait()
		}
		r.mu.Unlock()
	}
}

// xorshift is a tiny private RNG for victim selection; workers must not
// share math/rand state (lock contention) and need no statistical
// quality here.
func xorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// worker runs one branch-and-bound goroutine: pop own work, steal when
// dry, explore each adopted subproblem depth-first, recycle its frame,
// and close the run when the last open subproblem finishes.
func (r *parRun) worker(wid int, wg *sync.WaitGroup) {
	defer wg.Done()
	s := newSearcher(r.c, r.cs, r.opt)
	s.par = r
	s.wid = wid
	s.adoptSet = bitset.New(r.c.N)
	defer s.flushCounters()
	rng := uint64(r.opt.Seed)*0x9E3779B97F4A7C15 + uint64(wid)*0xBF58476D1CE4E5B9 + 1
	for {
		sp := r.deques[wid].popBack()
		if sp == nil {
			sp = r.findWork(s, &rng)
		}
		if sp == nil {
			return
		}
		s.dfsFrom(sp)
		s.putFrame(sp)
		if r.pending.Add(-1) == 0 {
			r.stop(false) // frontier drained: proof complete
			return
		}
		if r.aborted.Load() {
			return
		}
	}
}

// dfsFrom explores one adopted subproblem to completion (or abort).
func (s *searcher) dfsFrom(sp *subproblem) {
	s.adopt(sp)
	s.dfs(len(sp.prefix))
}

// solveParallel runs the work-stealing search. Callers guarantee
// opt.Workers > 1 and c.N > 1, except SolveSubtree, which may run it
// with a single worker (the loop degenerates to plain depth-first over
// its own deque, which is still correct — findWork can only be reached
// when the frontier is empty and the run about to stop).
func solveParallel(c *model.Compiled, cs *constraint.Set, opt Options) Result {
	workers := opt.Workers
	r := &parRun{
		c:          c,
		cs:         cs,
		opt:        opt,
		splitDepth: splitDepth(opt.SplitDepth, c.N, workers),
		deques:     make([]*deque, workers),
		inc:        newIncumbent(opt.OnSolution),
	}
	r.cond = sync.NewCond(&r.mu)
	for i := range r.deques {
		r.deques[i] = &deque{}
	}
	if opt.Incumbent != nil {
		r.inc.seed(opt.Incumbent, c.Objective(opt.Incumbent))
	}

	// Root subproblem: the RootPrefix (empty outside SolveSubtree).
	// Worker 0 picks it up first and starts splitting; the others steal
	// as soon as siblings appear. (The root frame is heap-built here; it
	// simply joins a worker free list when it completes, like every
	// other frame.)
	root := &subproblem{prefix: make([]int, 0, c.N)}
	root.prefix = append(root.prefix, opt.RootPrefix...)
	r.pending.Store(1)
	r.deques[0].pushBack(root)

	// Cross-node export hookup. With subtrees outstanding on remote
	// helpers the local frontier can drain while pending stays positive,
	// parking every worker — and parked workers poll nothing, so a
	// deadline or cancellation would otherwise never be noticed. The
	// watchdog covers exactly that window.
	var release func()
	if opt.Exporter != nil {
		release = opt.Exporter(&ExportHandle{r: r})
		joined := make(chan struct{})
		defer close(joined)
		go func() {
			var deadline <-chan time.Time
			if !opt.Deadline.IsZero() {
				t := time.NewTimer(time.Until(opt.Deadline))
				defer t.Stop()
				deadline = t.C
			}
			var done <-chan struct{}
			if opt.Context != nil {
				done = opt.Context.Done()
			}
			select {
			case <-joined:
			case <-done:
				r.stop(true)
			case <-deadline:
				r.stop(true)
			}
		}()
	}

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go r.worker(wid, &wg)
	}
	wg.Wait()
	if release != nil {
		// After release the cluster layer stops touching the handle;
		// outstanding exports are requeued or dropped on its side.
		release()
	}

	order, obj := r.inc.best()
	st := r.st // all workers joined: their flushCounters merges are visible
	for _, d := range r.deques {
		if int64(d.maxDepth) > st.MaxDeque {
			st.MaxDeque = int64(d.maxDepth)
		}
	}
	return Result{
		Order:     order,
		Objective: obj,
		Proved:    !r.aborted.Load(),
		Nodes:     r.nodes.Load(),
		Fails:     r.fails.Load(),
		Solutions: int(r.solutions.Load()),
		Workers:   workers,
		Stats:     st,
	}
}

// splitDepth sizes the donation depth: deep enough that the frontier can
// hold roughly 32 subproblems per worker (so late steals still find
// work), shallow enough that donated subtrees stay large.
func splitDepth(explicit, n, workers int) int {
	if explicit > 0 {
		if explicit > n-1 {
			return n - 1
		}
		return explicit
	}
	d, width := 1, n
	for width < 32*workers && d < n-1 {
		d++
		width *= n - d + 1
	}
	return d
}
