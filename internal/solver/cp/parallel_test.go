package cp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

// workerCounts are the parallelism levels every parallel test sweeps.
var workerCounts = []int{2, 3, 8}

func TestParallelMatchesBruteforce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 8
	cfg.PrecedenceProb = 0.2
	cfg.BuildInteractionProb = 0.1
	for rep := 0; rep < 6; rep++ {
		in := randgen.New(rng, cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		bf, err := bruteforce.Solve(c, cs, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			res := Solve(c, cs, Options{Workers: w})
			if !res.Proved {
				t.Fatalf("rep %d w=%d: search not exhausted", rep, w)
			}
			if math.Abs(res.Objective-bf.Objective) > 1e-9*(1+bf.Objective) {
				t.Fatalf("rep %d w=%d: cp %v != bf %v", rep, w, res.Objective, bf.Objective)
			}
			if err := in.ValidOrder(res.Order); err != nil {
				t.Fatalf("rep %d w=%d: %v", rep, w, err)
			}
		}
	}
}

func TestParallelObjectiveBitIdenticalToSerial(t *testing.T) {
	// The evaluation core is set-pure (walker state depends only on the
	// deployed set), so every optimal order replays to the same float —
	// the parallel engine must return the serial objective bit for bit
	// regardless of steal timing.
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := randgen.DefaultConfig()
		cfg.Indexes = 5 + int(seed%4)
		cfg.PrecedenceProb = float64(seed%3) * 0.15
		in := randgen.New(rng, cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		ref := Solve(c, cs, Options{})
		for _, w := range workerCounts {
			res := Solve(c, cs, Options{Workers: w, Seed: seed})
			if !res.Proved {
				t.Fatalf("seed %d w=%d: not proved", seed, w)
			}
			if math.Float64bits(res.Objective) != math.Float64bits(ref.Objective) {
				t.Fatalf("seed %d w=%d: objective %x differs from serial %x",
					seed, w, math.Float64bits(res.Objective), math.Float64bits(ref.Objective))
			}
		}
	}
}

func TestParallelNodeLimitAborts(t *testing.T) {
	_, c := inst(5, 11)
	res := Solve(c, nil, Options{Workers: 4, NodeLimit: 500})
	if res.Proved {
		t.Fatal("node-limited parallel search claimed a proof on 11 indexes")
	}
	// The limit is polled on a stride per worker; allow that overshoot
	// but nothing unbounded.
	if res.Nodes > 500+4*pollStride {
		t.Fatalf("node limit overshot: %d nodes", res.Nodes)
	}
}

func TestParallelFailLimitAborts(t *testing.T) {
	_, c := inst(5, 11)
	res := Solve(c, nil, Options{Workers: 4, FailLimit: 200})
	if res.Proved {
		t.Fatal("fail-limited parallel search claimed a proof on 11 indexes")
	}
}

func TestParallelContextCancelsPromptly(t *testing.T) {
	_, c := inst(5, 20) // far beyond provable in the test budget
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := Solve(c, nil, Options{Workers: 4, Context: ctx})
	if res.Proved {
		t.Skip("instance unexpectedly proved before cancellation")
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("cancellation took %v", wall)
	}
}

func TestParallelIncumbentOnlyImprovedUpon(t *testing.T) {
	_, c := inst(6, 7)
	opt := Solve(c, nil, Options{})
	res := Solve(c, nil, Options{Workers: 4, Incumbent: opt.Order})
	if res.Solutions != 0 {
		t.Errorf("found %d 'improving' solutions over the optimum", res.Solutions)
	}
	if math.Float64bits(res.Objective) != math.Float64bits(opt.Objective) {
		t.Errorf("objective drifted: %v vs %v", res.Objective, opt.Objective)
	}
	if !res.Proved {
		t.Error("seeded parallel search should still prove optimality")
	}
}

func TestParallelFixedPositionsRespected(t *testing.T) {
	_, c := inst(8, 7)
	full := Solve(c, nil, Options{})
	fixed := append([]int(nil), full.Order...)
	free := map[int]bool{2: true, 4: true}
	for p := range fixed {
		if free[p] {
			fixed[p] = -1
		}
	}
	res := Solve(c, nil, Options{Workers: 3, Fixed: fixed, Incumbent: full.Order})
	if !res.Proved {
		t.Fatal("tiny LNS neighborhood not exhausted")
	}
	for p, want := range full.Order {
		if free[p] {
			continue
		}
		if res.Order[p] != want {
			t.Errorf("frozen position %d changed: %d -> %d", p, want, res.Order[p])
		}
	}
}

func TestParallelOnSolutionMonotone(t *testing.T) {
	// The incumbent lock serializes OnSolution, so even with concurrent
	// workers the observed objectives must be strictly decreasing.
	_, c := inst(10, 9)
	last := math.Inf(1)
	calls := 0
	Solve(c, nil, Options{Workers: 4, OnSolution: func(order []int, obj float64) {
		calls++
		if obj >= last {
			t.Errorf("non-improving callback: %v after %v", obj, last)
		}
		last = obj
		if len(order) != c.N {
			t.Errorf("callback order has %d entries", len(order))
		}
	}})
	if calls == 0 {
		t.Fatal("no solutions reported")
	}
}

func TestParallelExternalBoundProof(t *testing.T) {
	// An external bound at the optimum prunes every subtree; exhausting
	// the frontier then proves the external incumbent optimal even though
	// this search never produced an order of its own.
	_, c := inst(6, 7)
	opt := Solve(c, nil, Options{})
	res := Solve(c, nil, Options{Workers: 4, ExternalBound: func() float64 { return opt.Objective }})
	if !res.Proved {
		t.Fatal("externally bounded search did not exhaust")
	}
	if res.Order != nil {
		t.Fatalf("no order should beat the external optimum, got %v", res.Order)
	}
}

func TestParallelContradictoryFixedYieldsIncumbent(t *testing.T) {
	in, c := inst(9, 5)
	cs := sched.PrecedenceSet(in)
	full := Solve(c, cs, Options{})
	fixed := make([]int, c.N)
	for p := range fixed {
		fixed[p] = -1
	}
	// Pin two indexes to each other's optimal slots in conflict with the
	// frozen remainder semantics: position 0 demands full.Order[1] while
	// full.Order[1] is pinned elsewhere too.
	fixed[0] = full.Order[1]
	fixed[1] = full.Order[1]
	res := Solve(c, cs, Options{Workers: 4, Fixed: fixed, Incumbent: full.Order})
	if !res.Proved {
		t.Fatal("contradictory neighborhood should exhaust")
	}
	if res.Solutions != 0 {
		t.Fatal("contradiction produced solutions")
	}
	if err := in.ValidOrder(res.Order); err != nil {
		t.Fatalf("incumbent not preserved: %v", err)
	}
}

func TestSplitDepthAuto(t *testing.T) {
	for _, tc := range []struct {
		explicit, n, workers, want int
	}{
		{0, 31, 8, 2}, // 31*30 = 930 >= 256
		{0, 5, 8, 4},  // tiny trees split all the way down
		{0, 2, 8, 1},  // capped at n-1
		{7, 31, 8, 7}, // explicit passes through
		{99, 5, 2, 4}, // explicit clamped to n-1
	} {
		if got := splitDepth(tc.explicit, tc.n, tc.workers); got != tc.want {
			t.Errorf("splitDepth(%d, n=%d, w=%d) = %d, want %d",
				tc.explicit, tc.n, tc.workers, got, tc.want)
		}
	}
}

func TestParallelDeadlineAborts(t *testing.T) {
	_, c := inst(5, 14)
	start := time.Now()
	res := Solve(c, nil, Options{Workers: 4, Deadline: start.Add(30 * time.Millisecond)})
	if res.Proved {
		t.Skip("instance solved to optimality before the deadline")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline ignored")
	}
}
