package cp

import (
	"context"

	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/solver/backend"
)

// Registry param names. cp.workers replaces the CPWorkers fields that
// PR 4 hand-threaded through portfolio.Options, service.Config and both
// binaries; those remain only as explicitly deprecated aliases.
const (
	// ParamWorkers is the branch-and-bound worker-goroutine budget for
	// the work-stealing proof search (0 or 1 = the deterministic serial
	// engine).
	ParamWorkers = "cp.workers"
	// ParamSplitDepth bounds the tree depth below which nodes donate
	// sibling branches to the shared frontier (0 = auto-sized).
	ParamSplitDepth = "cp.split_depth"
	// ParamTailBound toggles the in-search §5.5 tail bound: exact
	// minimal-completion-cost tables for the last few deployment steps,
	// folded into the branch-and-bound lower bound. On by default; the
	// proved optimum is identical either way (the bound only prunes
	// provably dominated nodes), so the switch exists for ablation and
	// for skipping the preprocessing on huge instances.
	ParamTailBound = "cp.tail_bound"
)

func init() { backend.Register(asBackend{}) }

// asBackend adapts the CP engine to the registry contract.
type asBackend struct{}

func (asBackend) Info() backend.Info {
	f := func(v float64) *float64 { return &v }
	return backend.Info{
		Name:    "cp",
		Kind:    backend.KindExact,
		Rank:    50,
		Proves:  true,
		Summary: "branch-and-prune CP search (§6); work-stealing parallel proof with cp.workers > 1",
		Params: []backend.ParamSpec{
			{Name: ParamWorkers, Type: backend.ParamInt, Default: 0, Min: f(0), Max: f(4096),
				Help: "parallel branch-and-bound workers for the proof search (0 or 1 = serial)"},
			{Name: ParamSplitDepth, Type: backend.ParamInt, Default: 0, Min: f(0), Max: f(64),
				Help: "tree depth above which subtrees are donated to the steal frontier (0 = auto)"},
			{Name: ParamTailBound, Type: backend.ParamBool, Default: true,
				Help: "fold exact tail-completion tables (§5.5) into the in-search lower bound"},
		},
	}
}

func (asBackend) Solve(ctx context.Context, req backend.Request) backend.Outcome {
	var tb *prune.TailBound
	if req.Params.Bool(ParamTailBound, true) {
		tb = prune.NewTailBound(req.Compiled, req.Constraints, prune.Options{})
	}
	// No Deadline: the caller's context carries the budget and cp polls
	// it at the same cadence a deadline would be checked at.
	opts := Options{
		NodeLimit:     req.StepLimit,
		Context:       ctx,
		Incumbent:     req.Initial,
		ExternalBound: req.Bound,
		OnSolution:    req.Publish,
		Workers:       req.Params.Int(ParamWorkers, 0),
		SplitDepth:    req.Params.Int(ParamSplitDepth, 0),
		Seed:          req.Seed,
		TailBound:     tb,
	}
	if req.Exporter != nil {
		// *ExportHandle satisfies backend.WorkSource; the indirection
		// only exists so package cp's own Options need not name the
		// backend interface.
		opts.Exporter = func(h *ExportHandle) func() { return req.Exporter(h) }
	}
	res := Solve(req.Compiled, req.Constraints, opts)
	return backend.Outcome{
		Order: res.Order, Objective: res.Objective,
		Proved: res.Proved, Iterations: res.Nodes, Workers: res.Workers,
		Counters: res.Counters(),
	}
}
