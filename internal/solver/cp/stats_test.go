package cp

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/prune"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/solvertest"
)

// checkStats asserts the structural invariants of a solve's effort
// breakdown against its headline counters.
func checkStats(t *testing.T, tag string, res Result) {
	t.Helper()
	st := res.Stats
	if got := st.PrunedBound + st.PrunedTail + st.Infeasible; got != res.Fails {
		t.Errorf("%s: prune causes %d+%d+%d = %d != fails %d",
			tag, st.PrunedBound, st.PrunedTail, st.Infeasible, got, res.Fails)
	}
	if st.Accepts > st.Offers {
		t.Errorf("%s: accepts %d > offers %d", tag, st.Accepts, st.Offers)
	}
	if st.Accepts != int64(res.Solutions) {
		t.Errorf("%s: accepts %d != solutions %d", tag, st.Accepts, res.Solutions)
	}
	if st.Steals > st.StealAttempts {
		t.Errorf("%s: steals %d > attempts %d", tag, st.Steals, st.StealAttempts)
	}
	if st.MaxDeque < 0 {
		t.Errorf("%s: negative max deque %d", tag, st.MaxDeque)
	}
}

// TestStatsPruneCausesSumToFails is the acceptance-criterion check on a
// real corpus instance: every recorded dead end has exactly one cause,
// serial and parallel, tail bound on and off.
func TestStatsPruneCausesSumToFails(t *testing.T) {
	for ci, in := range solvertest.CorpusInstances()[:6] {
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		tb := prune.NewTailBound(c, cs, prune.Options{})
		for _, workers := range []int{1, 4} {
			for _, tail := range []*prune.TailBound{nil, tb} {
				res := Solve(c, cs, Options{Workers: workers, TailBound: tail})
				if !res.Proved {
					t.Fatalf("corpus %d w=%d: not proved", ci, workers)
				}
				checkStats(t, "corpus", res)
				if res.Fails > 0 && res.Stats.PrunedBound == 0 && res.Stats.Infeasible == 0 && res.Stats.PrunedTail == 0 {
					t.Errorf("corpus %d w=%d: fails %d but no causes recorded", ci, workers, res.Fails)
				}
				if tail == nil && res.Stats.PrunedTail != 0 {
					t.Errorf("corpus %d w=%d: tail prunes %d without a tail bound", ci, workers, res.Stats.PrunedTail)
				}
			}
		}
	}
}

func TestStatsSerialDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 9
	cfg.PrecedenceProb = 0.2
	in := randgen.New(rng, cfg)
	c := model.MustCompile(in)
	cs := sched.PrecedenceSet(in)
	a := Solve(c, cs, Options{})
	b := Solve(c, cs, Options{})
	if a.Stats != b.Stats {
		t.Fatalf("serial stats differ across identical runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
	checkStats(t, "serial", a)
	if a.Stats.StealAttempts != 0 || a.Stats.Steals != 0 || a.Stats.MaxDeque != 0 {
		t.Fatalf("serial run recorded parallel stats: %+v", a.Stats)
	}
	if a.Solutions > 0 && a.Stats.Offers != a.Stats.Accepts {
		t.Fatalf("serial offers %d != accepts %d", a.Stats.Offers, a.Stats.Accepts)
	}
}

func TestStatsParallelStealsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 11
	in := randgen.New(rng, cfg)
	c := model.MustCompile(in)
	cs := sched.PrecedenceSet(in)
	res := Solve(c, cs, Options{Workers: 4})
	if !res.Proved {
		t.Fatal("not proved")
	}
	checkStats(t, "parallel", res)
	// Thieves must have probed at least once (the root starts on worker
	// 0's deque, so workers 1-3 begin by stealing), and the frontier must
	// have held at least one donated subproblem.
	if res.Stats.StealAttempts == 0 {
		t.Error("no steal attempts recorded in a 4-worker solve")
	}
	if res.Stats.MaxDeque == 0 {
		t.Error("zero max deque depth in a solve that split its root")
	}
}
