// Package dp implements the dynamic-programming ordering baseline of
// Schnaitter et al. (Algorithm 2, Appendix C): recursively bipartition
// the indexes by a Stoer–Wagner minimum cut of the interaction graph,
// then merge the two sub-orders by greedily interleaving whichever front
// index yields the larger immediate benefit. As the paper notes, the
// algorithm ignores build costs and build interactions — that is exactly
// why the paper's greedy beats it in Table 7.
package dp

import (
	"github.com/evolving-olap/idd/internal/graph"
	"github.com/evolving-olap/idd/internal/model"
)

// Solve returns the DP deployment order.
func Solve(c *model.Compiled) []int {
	all := make([]int, c.N)
	for i := range all {
		all[i] = i
	}
	if c.N == 1 {
		return all
	}
	w := InteractionWeights(c)
	order := split(c, w, all)
	return order
}

// split recursively bipartitions and merges (the DP recursion).
func split(c *model.Compiled, w [][]float64, set []int) []int {
	if len(set) == 1 {
		return set
	}
	sub := make([][]float64, len(set))
	for a := range set {
		sub[a] = make([]float64, len(set))
		for b := range set {
			sub[a][b] = w[set[a]][set[b]]
		}
	}
	_, side := graph.MinCut(sub)
	var s1, s2 []int
	for k, v := range set {
		if side[k] {
			s1 = append(s1, v)
		} else {
			s2 = append(s2, v)
		}
	}
	n1 := split(c, w, s1)
	n2 := split(c, w, s2)
	return merge(c, n1, n2)
}

// merge interleaves two sub-orders: at each step deploy the front index
// with the larger immediate workload speedup given everything deployed
// so far (benefit(Q, N ∪ front)).
func merge(c *model.Compiled, n1, n2 []int) []int {
	out := make([]int, 0, len(n1)+len(n2))
	wk := model.NewWalker(c)
	i1, i2 := 0, 0
	for i1 < len(n1) && i2 < len(n2) {
		b1 := wk.SpeedupIfBuilt(n1[i1])
		b2 := wk.SpeedupIfBuilt(n2[i2])
		if b1 >= b2 {
			wk.Push(n1[i1])
			out = append(out, n1[i1])
			i1++
		} else {
			wk.Push(n2[i2])
			out = append(out, n2[i2])
			i2++
		}
	}
	for ; i1 < len(n1); i1++ {
		out = append(out, n1[i1])
	}
	for ; i2 < len(n2); i2++ {
		out = append(out, n2[i2])
	}
	return out
}

// InteractionWeights builds the symmetric interaction graph of Appendix
// C: for every query plan with speedup s over indexes P, each index pair
// within P receives weight s/|P|; index pairs that only share a query
// (via different plans) receive the minimum of their two per-plan shares.
// Build interactions and build costs are deliberately not represented —
// faithfully reproducing the baseline's blind spot.
func InteractionWeights(c *model.Compiled) [][]float64 {
	n := c.N
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	// share[p] = speedup / |indexes|, indexed densely by plan id off the
	// flattened plan storage (plans of one query are disjoint across
	// queries, so one array serves every iteration).
	share := make([]float64, len(c.PlanIdx))
	for q := range c.PlansOfQuery {
		plans := c.PlansOfQuery[q]
		for _, p := range plans {
			share[p] = c.PlanSpd[p] / float64(len(c.PlanIdx[p]))
		}
		// Within-plan pairs.
		perQuery := make(map[[2]int]float64)
		for _, p := range plans {
			idx := c.PlanIdx[p]
			for a := 0; a < len(idx); a++ {
				for b := a + 1; b < len(idx); b++ {
					k := pairKey(idx[a], idx[b])
					if share[p] > perQuery[k] {
						perQuery[k] = share[p]
					}
				}
			}
		}
		// Cross-plan pairs: min of the two plans' shares.
		for ai := 0; ai < len(plans); ai++ {
			for bi := ai + 1; bi < len(plans); bi++ {
				pa, pb := plans[ai], plans[bi]
				m := share[pa]
				if share[pb] < m {
					m = share[pb]
				}
				for _, a := range c.PlanIdx[pa] {
					for _, b := range c.PlanIdx[pb] {
						if a == b {
							continue
						}
						k := pairKey(a, b)
						if m > perQuery[k] {
							perQuery[k] = m
						}
					}
				}
			}
		}
		for k, wt := range perQuery {
			w[k[0]][k[1]] += wt
			w[k[1]][k[0]] += wt
		}
	}
	return w
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
