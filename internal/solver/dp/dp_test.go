package dp

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
)

func TestSolveIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 20
	cfg.PrecedenceProb = 0
	in := randgen.New(rng, cfg)
	c := model.MustCompile(in)
	order := Solve(c)
	if err := in.ValidOrder(order); err != nil {
		t.Fatal(err)
	}
}

func TestSingleIndex(t *testing.T) {
	in := &model.Instance{
		Indexes: []model.Index{{Name: "only", CreateCost: 3}},
		Queries: []model.Query{{Name: "q", Runtime: 10}},
		Plans:   []model.Plan{{Query: 0, Indexes: []int{0}, Speedup: 4}},
	}
	order := Solve(model.MustCompile(in))
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("order = %v", order)
	}
}

func TestInteractionWeightsAppendixCExample(t *testing.T) {
	// Appendix C worked example: plan A speeds a query by 10s with
	// indexes {0,1,2}; plan B by 5s with {3,4}. Then pairs within A get
	// 10/3, the pair in B gets 5/2, and cross pairs get min = 2.5.
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "i1", CreateCost: 1}, {Name: "i2", CreateCost: 1},
			{Name: "i3", CreateCost: 1}, {Name: "i4", CreateCost: 1},
			{Name: "i5", CreateCost: 1},
		},
		Queries: []model.Query{{Name: "q", Runtime: 100}},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0, 1, 2}, Speedup: 10},
			{Query: 0, Indexes: []int{3, 4}, Speedup: 5},
		},
	}
	w := InteractionWeights(model.MustCompile(in))
	third := 10.0 / 3.0
	if d := w[0][1] - third; d > 1e-9 || d < -1e-9 {
		t.Errorf("w[0][1] = %v, want %v", w[0][1], third)
	}
	if w[3][4] != 2.5 {
		t.Errorf("w[3][4] = %v, want 2.5", w[3][4])
	}
	if w[0][3] != 2.5 {
		t.Errorf("cross-plan w[0][3] = %v, want 2.5 (min of shares)", w[0][3])
	}
	for i := range w {
		for j := range w {
			if w[i][j] != w[j][i] {
				t.Fatalf("weights not symmetric at %d,%d", i, j)
			}
		}
		if w[i][i] != 0 {
			t.Fatalf("nonzero diagonal at %d", i)
		}
	}
}

func TestMergePrefersBeneficialFront(t *testing.T) {
	// Two singleton clusters: one index speeds up a big query, the other
	// does nothing. The merge must deploy the beneficial one first.
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "good", CreateCost: 5},
			{Name: "dead", CreateCost: 5},
		},
		Queries: []model.Query{{Name: "q", Runtime: 100}},
		Plans:   []model.Plan{{Query: 0, Indexes: []int{0}, Speedup: 50}},
	}
	c := model.MustCompile(in)
	got := merge(c, []int{1}, []int{0})
	if got[0] != 0 {
		t.Errorf("merge order = %v, want good index first", got)
	}
}

func TestDPIgnoresBuildCost(t *testing.T) {
	// Two indexes with equal speedups but wildly different build costs:
	// DP cannot distinguish them (the paper's criticism). Verify the
	// interaction weights are cost-independent.
	mk := func(cost float64) [][]float64 {
		in := &model.Instance{
			Indexes: []model.Index{
				{Name: "a", CreateCost: cost},
				{Name: "b", CreateCost: 1},
			},
			Queries: []model.Query{{Name: "q", Runtime: 100}},
			Plans:   []model.Plan{{Query: 0, Indexes: []int{0, 1}, Speedup: 60}},
		}
		return InteractionWeights(model.MustCompile(in))
	}
	cheap, pricey := mk(1), mk(1000)
	if cheap[0][1] != pricey[0][1] {
		t.Error("interaction weights should not depend on build cost")
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 15
	cfg.PrecedenceProb = 0
	in := randgen.New(rng, cfg)
	c := model.MustCompile(in)
	a := Solve(c)
	b := Solve(c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DP not deterministic")
		}
	}
}
