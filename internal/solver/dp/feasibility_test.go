package dp_test

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/dp"
	"github.com/evolving-olap/idd/internal/solver/solvertest"
)

// TestFeasibilityProperty: the DP baseline ignores precedence constraints
// by construction, so its production path (portfolio, conformance) pipes
// the order through sched.Repair — the repaired order must always be a
// feasible permutation.
func TestFeasibilityProperty(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.PrecedenceProb = 0.08
	for seed := int64(0); seed < 25; seed++ {
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		solvertest.RequireFeasible(t, c.N, cs, sched.Repair(dp.Solve(c), cs))
	}
}
