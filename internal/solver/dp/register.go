package dp

import (
	"context"

	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/backend"
)

func init() { backend.Register(asBackend{}) }

// asBackend adapts the DP baseline to the registry contract. The DP
// ignores precedence constraints by construction, so the adapter
// repairs its order against the request's constraint set before
// reporting it.
type asBackend struct{}

func (asBackend) Info() backend.Info {
	return backend.Info{
		Name:    "dp",
		Kind:    backend.KindConstructive,
		Rank:    20,
		Summary: "interval dynamic-programming baseline (§4.4), precedence-repaired",
	}
}

func (asBackend) Solve(_ context.Context, req backend.Request) backend.Outcome {
	order := sched.Repair(Solve(req.Compiled), req.Constraints)
	return backend.Outcome{Order: order, Objective: req.Compiled.Objective(order)}
}
