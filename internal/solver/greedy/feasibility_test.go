package greedy_test

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/solvertest"
)

// TestFeasibilityProperty: every order greedy emits is a
// precedence-feasible permutation, across random instances with dense
// precedence relations.
func TestFeasibilityProperty(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.PrecedenceProb = 0.08
	for seed := int64(0); seed < 25; seed++ {
		in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		solvertest.RequireFeasible(t, c.N, cs, greedy.Solve(c, cs))
	}
}
