// Package greedy implements the interaction-guided greedy algorithm of
// §7.4 / Appendix C (Algorithm 1). At every step it deploys the ready
// index with the highest density, where the benefit counts the immediate
// query speedup plus a share of every not-yet-feasible plan the index
// participates in (future interaction opportunities), and the cost is the
// current build cost including build-interaction discounts.
package greedy

import (
	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
)

// Solve returns the greedy deployment order. cs may be nil when the
// instance has no precedence constraints. Successor scoring runs
// entirely on the walker's reusable state (dense SpeedupIfBuilt scratch,
// bitset readiness tests), so the loop is allocation-free after the
// initial walker setup.
func Solve(c *model.Compiled, cs *constraint.Set) []int {
	n := c.N
	w := model.NewWalker(c)
	order := make([]int, 0, n)

	for len(order) < n {
		best, bestDensity, bestCost := -1, -1.0, 0.0
		for i := 0; i < n; i++ {
			if w.Built(i) || !ready(i, w, cs) {
				continue
			}
			benefit := benefitOf(c, w, i)
			cost := w.BuildCost(i)
			density := benefit / cost
			// Tie-breaks: higher density, then cheaper build, then
			// smaller id (determinism).
			if best == -1 || density > bestDensity+1e-12 ||
				(density > bestDensity-1e-12 && cost < bestCost) {
				best, bestDensity, bestCost = i, density, cost
			}
		}
		w.Push(best)
		order = append(order, best)
	}
	return order
}

// ready reports whether all precedence predecessors of i are deployed,
// as one bitset subset test against the walker's built set.
func ready(i int, w *model.Walker, cs *constraint.Set) bool {
	if cs == nil {
		return true
	}
	return w.BuiltSet().ContainsAll(cs.Predecessors(i))
}

// benefitOf evaluates Algorithm 1's benefit for deploying i now:
// the direct runtime drop plus, for every plan containing i that stays
// infeasible, the plan's remaining improvement divided equally among the
// plan's not-yet-deployed indexes.
func benefitOf(c *model.Compiled, w *model.Walker, i int) float64 {
	// Direct benefit: how much the workload runtime drops when i is
	// deployed now.
	benefit := w.SpeedupIfBuilt(i)
	w.Push(i)

	for _, p := range c.PlansWithIndex[i] {
		missing := w.PlanMissing(p)
		if missing == 0 {
			continue // plan (now) feasible; captured by direct benefit
		}
		q := c.PlanQuery[p]
		// interaction = current runtime of q - runtime if p were used.
		planRuntime := c.QryRuntime[q] - c.PlanSpd[p]
		interaction := w.QueryRuntime(q) - planRuntime
		if interaction > 0 {
			// Share among the indexes still missing plus i itself (the
			// paper divides by |p \ N| with i not yet in N).
			benefit += interaction / float64(missing+1)
		}
	}
	w.Pop()
	return benefit
}
