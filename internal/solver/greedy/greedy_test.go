package greedy

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
)

func TestIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 20
	in := randgen.New(rng, cfg)
	c := model.MustCompile(in)
	order := Solve(c, sched.PrecedenceSet(in))
	if err := in.ValidOrder(order); err != nil {
		t.Fatal(err)
	}
}

func TestRespectsPrecedences(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 15
	cfg.PrecedenceProb = 0.2
	for rep := 0; rep < 10; rep++ {
		in := randgen.New(rng, cfg)
		c := model.MustCompile(in)
		cs := sched.PrecedenceSet(in)
		order := Solve(c, cs)
		if err := in.ValidOrder(order); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}

func TestPrefersHighDensityIndex(t *testing.T) {
	// i0: cheap with a big speedup (density 9). i1: expensive with a
	// modest speedup (density 0.5). Greedy must start with i0.
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "dense", CreateCost: 10},
			{Name: "sparse", CreateCost: 40},
		},
		Queries: []model.Query{
			{Name: "qa", Runtime: 200},
			{Name: "qb", Runtime: 100},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 90},
			{Query: 1, Indexes: []int{1}, Speedup: 20},
		},
	}
	order := Solve(model.MustCompile(in), nil)
	if order[0] != 0 {
		t.Errorf("greedy started with %d, want 0", order[0])
	}
}

func TestSeesFutureInteraction(t *testing.T) {
	// i0 alone: tiny speedup (1). i1 alone: nothing. i0+i1: huge speedup.
	// A myopic benefit/cost rule would start with i2 (medium standalone
	// benefit); the interaction share must pull i0/i1 forward.
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "j0", CreateCost: 10},
			{Name: "j1", CreateCost: 10},
			{Name: "solo", CreateCost: 10},
		},
		Queries: []model.Query{
			{Name: "join", Runtime: 1000},
			{Name: "scan", Runtime: 100},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 1},
			{Query: 0, Indexes: []int{0, 1}, Speedup: 900},
			{Query: 1, Indexes: []int{2}, Speedup: 30},
		},
	}
	c := model.MustCompile(in)
	order := Solve(c, nil)
	// The pair {0,1} should be deployed before the solo index.
	pos := make([]int, 3)
	for k, ix := range order {
		pos[ix] = k
	}
	if pos[2] != 2 {
		t.Errorf("order = %v: solo index should come last", order)
	}
}

func TestGreedyBeatsRandomOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 14
	var greedyWins int
	const reps = 10
	for rep := 0; rep < reps; rep++ {
		in := randgen.New(rng, cfg)
		c := model.MustCompile(in)
		g := c.Objective(Solve(c, nil))
		var avg float64
		const draws = 30
		for d := 0; d < draws; d++ {
			avg += c.Objective(rng.Perm(c.N))
		}
		avg /= draws
		if g < avg {
			greedyWins++
		}
	}
	if greedyWins < reps-1 {
		t.Errorf("greedy beat the random average only %d/%d times", greedyWins, reps)
	}
}

func TestNearOptimalOnTinyInstances(t *testing.T) {
	// Greedy has no guarantee, but on tiny instances it should stay
	// within a reasonable factor of the optimum and never be invalid.
	rng := rand.New(rand.NewSource(21))
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 6
	var ratioSum float64
	const reps = 15
	for rep := 0; rep < reps; rep++ {
		in := randgen.New(rng, cfg)
		c := model.MustCompile(in)
		opt, err := bruteforce.Solve(c, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		g := c.Objective(Solve(c, nil))
		if g < opt.Objective-1e-9 {
			t.Fatalf("greedy %v beat the exhaustive optimum %v", g, opt.Objective)
		}
		ratioSum += g / opt.Objective
	}
	if avg := ratioSum / reps; avg > 1.5 {
		t.Errorf("greedy averages %.2fx optimum on tiny instances (want <= 1.5x)", avg)
	}
}
