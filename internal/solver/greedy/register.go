package greedy

import (
	"context"

	"github.com/evolving-olap/idd/internal/solver/backend"
)

func init() { backend.Register(asBackend{}) }

// asBackend adapts the greedy heuristic to the registry contract.
type asBackend struct{}

func (asBackend) Info() backend.Info {
	return backend.Info{
		Name:    "greedy",
		Kind:    backend.KindConstructive,
		Rank:    10,
		Summary: "density-ordered constructive heuristic (§4.3); the portfolio's seed",
	}
}

func (asBackend) Solve(_ context.Context, req backend.Request) backend.Outcome {
	order := Solve(req.Compiled, req.Constraints)
	return backend.Outcome{Order: order, Objective: req.Compiled.Objective(order)}
}
