package local

import (
	"math"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/sched"
)

// Anneal runs simulated annealing over the swap/insert neighborhood —
// one of the metaheuristics §7 lists but does not evaluate; included as
// an additional baseline. Moves mix position swaps and single-index
// re-insertions; worsening moves are accepted with probability
// exp(-delta/T) under a geometric cooling schedule calibrated to the
// instance's objective scale.
func Anneal(c *model.Compiled, cs *constraint.Set, opt Options) Result {
	if opt.Rng == nil {
		panic("local: Anneal requires Options.Rng")
	}
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	n := c.N
	b := newBudget(&opt)
	cur := append([]int(nil), opt.Initial...)
	curObj := c.Objective(cur)
	tr := &tracker{b: b, onImprove: opt.OnImprove}
	tr.record(cur, curObj)
	best := append([]int(nil), cur...)

	// Initial temperature: accept a typical early worsening move (~0.5%
	// of the objective) with probability ~0.8.
	temp := 0.005 * curObj / 0.22
	const cooling = 0.999
	cand := make([]int, n)

	for !b.exhausted() {
		var adopted bool
		if cur, curObj, adopted = tr.adopt(&opt, cur, curObj); adopted {
			copy(best, cur) // keep Result.Order consistent with tr.best
		}
		b.spend(1)
		a, bb := opt.Rng.Intn(n), opt.Rng.Intn(n)
		if a == bb {
			continue
		}
		copy(cand, cur)
		if opt.Rng.Intn(2) == 0 {
			if !sched.SwapFeasible(cur, a, bb, cs) {
				continue
			}
			sched.ApplySwap(cand, a, bb)
		} else {
			if !sched.InsertFeasible(cur, a, bb, cs) {
				continue
			}
			sched.ApplyInsert(cand, a, bb)
		}
		obj := c.Objective(cand)
		delta := obj - curObj
		if delta <= 0 || opt.Rng.Float64() < math.Exp(-delta/temp) {
			copy(cur, cand)
			curObj = obj
			if curObj < tr.best-1e-12 {
				tr.record(cur, curObj)
				copy(best, cur)
			}
		}
		temp *= cooling
		if temp < 1e-9*curObj {
			// Reheat: a frozen annealer is a random-restart hill climber
			// with no restarts; bump the temperature instead.
			temp = 0.001 * curObj
		}
	}
	return Result{Order: best, Objective: tr.best, Traj: tr.traj, Steps: b.steps}
}

// InsertSearch runs steepest-descent over the single-index re-insertion
// neighborhood (remove one index, re-insert at the best position). The
// insertion neighborhood reaches orders the swap neighborhood cannot in
// one step (it shifts a whole block), which matters for schedules where
// one index must jump across a long stretch.
func InsertSearch(c *model.Compiled, cs *constraint.Set, opt Options) Result {
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	n := c.N
	b := newBudget(&opt)
	cur := append([]int(nil), opt.Initial...)
	curObj := c.Objective(cur)
	tr := &tracker{b: b, onImprove: opt.OnImprove}
	tr.record(cur, curObj)
	cand := make([]int, n)

	improved := true
	for improved && !b.exhausted() {
		improved = false
		bestObj := curObj
		bestFrom, bestTo := -1, -1
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to || !sched.InsertFeasible(cur, from, to, cs) {
					continue
				}
				copy(cand, cur)
				sched.ApplyInsert(cand, from, to)
				obj := c.Objective(cand)
				b.spend(1)
				if obj < bestObj-1e-12 {
					bestObj, bestFrom, bestTo = obj, from, to
				}
				if b.exhausted() {
					break
				}
			}
		}
		if bestFrom >= 0 {
			sched.ApplyInsert(cur, bestFrom, bestTo)
			curObj = bestObj
			tr.record(cur, curObj)
			improved = true
		}
	}
	return Result{Order: cur, Objective: curObj, Traj: tr.traj, Steps: b.steps}
}
