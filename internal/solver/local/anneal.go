package local

import (
	"math"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/sched"
)

// Anneal runs simulated annealing over the swap/insert neighborhood —
// one of the metaheuristics §7 lists but does not evaluate; included as
// an additional baseline. Moves mix position swaps and single-index
// re-insertions; worsening moves are accepted with probability
// exp(-delta/T) under a geometric cooling schedule calibrated to the
// instance's objective scale. Candidates are scored through the delta
// evaluator, so no per-move order copy or full replay happens.
func Anneal(c *model.Compiled, cs *constraint.Set, opt Options) Result {
	if opt.Rng == nil {
		panic("local: Anneal requires Options.Rng")
	}
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	n := c.N
	b := newBudget(&opt)
	e := model.NewMoveEval(c, opt.Initial)
	cur := e.Current() // live view; mutated only through e.Apply
	curObj := e.Objective()
	tr := &tracker{b: b, onImprove: opt.OnImprove}
	tr.record(cur, curObj)
	best := append([]int(nil), cur...)

	// Initial temperature: accept a typical early worsening move (~0.5%
	// of the objective) with probability ~0.8.
	temp := 0.005 * curObj / 0.22
	const cooling = 0.999

	var accepted int64
	for !b.exhausted() {
		if ext, _, adopted := tr.adopt(&opt, cur, curObj); adopted {
			e.SetOrder(ext)
			curObj = e.Objective()
			copy(best, cur) // keep Result.Order consistent with tr.best
		}
		b.spend(1)
		a, bb := opt.Rng.Intn(n), opt.Rng.Intn(n)
		if a == bb {
			continue
		}
		var obj float64
		if opt.Rng.Intn(2) == 0 {
			if !sched.SwapFeasible(cur, a, bb, cs) {
				continue
			}
			obj = e.Swap(a, bb)
		} else {
			if !sched.InsertFeasible(cur, a, bb, cs) {
				continue
			}
			obj = e.Insert(a, bb)
		}
		delta := obj - curObj
		if delta <= 0 || opt.Rng.Float64() < math.Exp(-delta/temp) {
			e.Apply()
			accepted++
			curObj = obj
			if curObj < tr.best-1e-12 {
				tr.record(cur, curObj)
				copy(best, cur)
			}
		} else {
			e.Reject()
		}
		temp *= cooling
		if temp < 1e-9*curObj {
			// Reheat: a frozen annealer is a random-restart hill climber
			// with no restarts; bump the temperature instead.
			temp = 0.001 * curObj
		}
	}
	return Result{Order: best, Objective: tr.best, Traj: tr.traj, Steps: b.steps,
		Accepted: accepted, Adopted: tr.adopted}
}

// InsertSearch runs steepest-descent over the single-index re-insertion
// neighborhood (remove one index, re-insert at the best position). The
// insertion neighborhood reaches orders the swap neighborhood cannot in
// one step (it shifts a whole block), which matters for schedules where
// one index must jump across a long stretch.
func InsertSearch(c *model.Compiled, cs *constraint.Set, opt Options) Result {
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	b := newBudget(&opt)
	e := model.NewMoveEval(c, opt.Initial)
	cur := e.Current()
	curObj := e.Objective()
	tr := &tracker{b: b, onImprove: opt.OnImprove}
	tr.record(cur, curObj)

	var accepted int64
	improved := true
	for improved && !b.exhausted() {
		improved = false
		bestObj := curObj
		bestFrom, bestTo := -1, -1
		sched.Inserts(cur, cs, func(from, to int) bool {
			obj := e.Insert(from, to)
			e.Reject()
			b.spend(1)
			if obj < bestObj-1e-12 {
				bestObj, bestFrom, bestTo = obj, from, to
			}
			return !b.exhausted()
		})
		if bestFrom >= 0 {
			e.Insert(bestFrom, bestTo)
			e.Apply()
			accepted++
			curObj = e.Objective()
			tr.record(cur, curObj)
			improved = true
		}
	}
	return Result{Order: e.Order(), Objective: curObj, Traj: tr.traj, Steps: b.steps,
		Accepted: accepted, Adopted: tr.adopted}
}
