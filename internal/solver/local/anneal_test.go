package local

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/bruteforce"
	"github.com/evolving-olap/idd/internal/solver/greedy"
)

func TestAnnealImprovesRandomStart(t *testing.T) {
	_, c := makeInstance(50, 16)
	rng := rand.New(rand.NewSource(1))
	init := rng.Perm(c.N)
	initObj := c.Objective(init)
	res := Anneal(c, nil, Options{Initial: init, MaxSteps: 30000, Rng: rng})
	if res.Objective >= initObj {
		t.Fatalf("SA failed to improve: %v >= %v", res.Objective, initObj)
	}
	if got := c.Objective(res.Order); got != res.Objective {
		t.Fatalf("reported best %v but order evaluates to %v", res.Objective, got)
	}
}

func TestAnnealNearOptimalOnTiny(t *testing.T) {
	_, c := makeInstance(51, 7)
	opt, err := bruteforce.Solve(c, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	res := Anneal(c, nil, Options{
		Initial:  greedy.Solve(c, nil),
		MaxSteps: 50000,
		Rng:      rand.New(rand.NewSource(2)),
	})
	if res.Objective > 1.02*opt.Objective {
		t.Errorf("SA %v vs optimum %v", res.Objective, opt.Objective)
	}
}

func TestAnnealRespectsPrecedences(t *testing.T) {
	cfg := randgen.DefaultConfig()
	cfg.Indexes = 12
	cfg.PrecedenceProb = 0.2
	in := randgen.New(rand.New(rand.NewSource(3)), cfg)
	c := model.MustCompile(in)
	cs := sched.PrecedenceSet(in)
	res := Anneal(c, cs, Options{
		Initial:  greedy.Solve(c, cs),
		MaxSteps: 10000,
		Rng:      rand.New(rand.NewSource(4)),
	})
	if err := in.ValidOrder(res.Order); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealPanicsWithoutRng(t *testing.T) {
	_, c := makeInstance(1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Anneal(c, nil, Options{Initial: sched.Identity(c.N), MaxSteps: 10})
}

func TestInsertSearchDescends(t *testing.T) {
	_, c := makeInstance(52, 14)
	rng := rand.New(rand.NewSource(5))
	init := rng.Perm(c.N)
	res := InsertSearch(c, nil, Options{Initial: init, MaxSteps: 100000})
	if res.Objective > c.Objective(init) {
		t.Fatal("insertion descent worsened the start")
	}
	// Local optimality: no single re-insertion improves further.
	cur := res.Order
	for from := 0; from < c.N; from++ {
		for to := 0; to < c.N; to++ {
			if from == to {
				continue
			}
			cand := append([]int(nil), cur...)
			sched.ApplyInsert(cand, from, to)
			if c.Objective(cand) < res.Objective-1e-9 {
				t.Fatalf("not insertion-optimal: move %d->%d improves", from, to)
			}
		}
	}
}

func TestInsertSearchEscapesSwapLocalOptimum(t *testing.T) {
	// Construct a schedule where a block shift (one insertion) improves
	// but any single swap is neutral or worse: index b must jump from
	// the end to the front across two unrelated indexes.
	in := &model.Instance{
		Indexes: []model.Index{
			{Name: "x", CreateCost: 50},
			{Name: "y", CreateCost: 50},
			{Name: "b", CreateCost: 1},
		},
		Queries: []model.Query{
			{Name: "qx", Runtime: 100},
			{Name: "qy", Runtime: 100},
			{Name: "qb", Runtime: 500},
		},
		Plans: []model.Plan{
			{Query: 0, Indexes: []int{0}, Speedup: 60},
			{Query: 1, Indexes: []int{1}, Speedup: 60},
			{Query: 2, Indexes: []int{2}, Speedup: 450},
		},
	}
	c := model.MustCompile(in)
	start := []int{0, 1, 2} // b last: terrible (its query dominates)
	res := InsertSearch(c, nil, Options{Initial: start, MaxSteps: 10000})
	if res.Order[0] != 2 {
		t.Errorf("insertion search should move b first, got %v", res.Order)
	}
}
