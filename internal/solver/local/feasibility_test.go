package local_test

import (
	"math/rand"
	"testing"

	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/randgen"
	"github.com/evolving-olap/idd/internal/sched"
	"github.com/evolving-olap/idd/internal/solver/greedy"
	"github.com/evolving-olap/idd/internal/solver/local"
	"github.com/evolving-olap/idd/internal/solver/solvertest"
)

// TestFeasibilityProperty: every local search emits precedence-feasible
// permutations across random instances — the moves themselves are
// feasibility-checked, so this guards the search plumbing end to end.
func TestFeasibilityProperty(t *testing.T) {
	searches := map[string]func(*model.Compiled, *constraint.Set, local.Options) local.Result{
		"tabu-b": local.TabuBSwap,
		"tabu-f": local.TabuFSwap,
		"lns":    local.LNS,
		"vns":    local.VNS,
		"anneal": local.Anneal,
		"insert": local.InsertSearch,
	}
	cfg := randgen.DefaultConfig()
	cfg.PrecedenceProb = 0.08
	for name, run := range searches {
		run := run
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				in := randgen.New(rand.New(rand.NewSource(seed)), cfg)
				c := model.MustCompile(in)
				cs := sched.PrecedenceSet(in)
				res := run(c, cs, local.Options{
					Initial:  greedy.Solve(c, cs),
					MaxSteps: 2000,
					Rng:      rand.New(rand.NewSource(seed + 100)),
				})
				solvertest.RequireFeasible(t, c.N, cs, res.Order)
			}
		})
	}
}
