package local

import (
	"github.com/evolving-olap/idd/internal/constraint"
	"github.com/evolving-olap/idd/internal/model"
	"github.com/evolving-olap/idd/internal/solver/cp"
)

// LNS runs Large Neighborhood Search (§7.2) with fixed parameters: each
// iteration relaxes a random RelaxFraction of the indexes (default 5%),
// freezes the rest at their current positions, and asks the CP engine to
// re-optimize the relaxed slots under a failure limit (default 500).
func LNS(c *model.Compiled, cs *constraint.Set, opt Options) Result {
	if opt.Rng == nil {
		panic("local: LNS requires Options.Rng")
	}
	if cs == nil {
		cs = constraint.NewSet(c.N)
	}
	b := newBudget(&opt)
	cur := append([]int(nil), opt.Initial...)
	curObj := c.Objective(cur)
	tr := &tracker{b: b, onImprove: opt.OnImprove}
	tr.record(cur, curObj)

	relax := opt.RelaxFraction
	if relax == 0 {
		relax = 0.05
	}
	failLimit := opt.FailLimit
	if failLimit == 0 {
		failLimit = 500
	}
	size := max(2, int(relax*float64(c.N)+0.5))

	var accepted int64
	for !b.exhausted() {
		cur, curObj, _ = tr.adopt(&opt, cur, curObj)
		improved, impObj, _, nodes := relaxAndSolve(c, cs, cur, curObj, size, failLimit, b, opt)
		b.spend(nodes)
		if improved != nil {
			cur = improved
			curObj = impObj // the CP engine's exact walker objective; no re-replay
			accepted++
			if curObj < tr.best-1e-12 {
				tr.record(cur, curObj)
			}
		}
	}
	return Result{Order: cur, Objective: curObj, Traj: tr.traj, Steps: b.steps,
		Accepted: accepted, Adopted: tr.adopted}
}

// relaxAndSolve performs one LNS iteration: pick `size` random indexes,
// free their positions, and CP-search the neighborhood. It returns the
// improved order (nil if none) with its exact objective (the CP engine
// evaluates candidates through the shared Walker, so the value is
// bit-identical to a fresh replay and needs no re-evaluation), whether
// the neighborhood was exhausted (a proof that no better solution exists
// within it), and the CP nodes consumed.
func relaxAndSolve(c *model.Compiled, cs *constraint.Set, cur []int, curObj float64,
	size int, failLimit int64, b *budgetTracker, opt Options) (improved []int, impObj float64, proof bool, nodes int64) {

	n := c.N
	if size > n {
		size = n
	}
	relaxed := make([]bool, n)
	for picked := 0; picked < size; {
		if p := opt.Rng.Intn(n); !relaxed[p] {
			relaxed[p] = true
			picked++
		}
	}
	fixed := make([]int, n)
	for p, ix := range cur {
		if relaxed[p] {
			fixed[p] = -1
		} else {
			fixed[p] = ix
		}
	}
	res := cp.Solve(c, cs, cp.Options{
		FailLimit: failLimit,
		NodeLimit: b.remainingSteps(),
		Incumbent: cur,
		Fixed:     fixed,
	})
	if res.Solutions > 0 && res.Objective < curObj-1e-12 {
		return res.Order, res.Objective, res.Proved, res.Nodes
	}
	return nil, 0, res.Proved, res.Nodes
}
