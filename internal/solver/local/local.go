// Package local implements the local search methods of §7: two Tabu
// Search variants (TS-BSwap, TS-FSwap), Large Neighborhood Search (LNS)
// on top of the CP engine, and the adaptive Variable Neighborhood Search
// (VNS) that the paper finds most scalable and stable. All searchers
// record anytime trajectories so the experiment harness can regenerate
// Figures 11–13.
package local

import (
	"context"
	"math"
	"math/rand"
	"time"
)

// TrajPoint is one improvement event of an anytime search.
type TrajPoint struct {
	Elapsed   time.Duration // wall time since the search started
	Steps     int64         // search steps consumed so far
	Objective float64       // new best objective
}

// Trajectory is the sequence of improvements, best objective last.
type Trajectory []TrajPoint

// BestAt returns the best objective known at the given elapsed time
// (useful for plotting step curves); +Inf before the first point.
func (tr Trajectory) BestAt(d time.Duration) float64 {
	best := inf()
	for _, p := range tr {
		if p.Elapsed <= d {
			best = p.Objective
		}
	}
	return best
}

func inf() float64 { return math.Inf(1) }

// Options are shared by all local searches.
type Options struct {
	// Initial is the starting order (required; use greedy.Solve).
	Initial []int
	// Budget is the wall-clock budget (0 = unlimited; then MaxSteps must
	// be set).
	Budget time.Duration
	// MaxSteps bounds the number of search steps — move evaluations for
	// Tabu, CP search nodes for LNS/VNS — making runs deterministic for
	// tests (0 = unlimited).
	MaxSteps int64
	// Rng drives randomized decisions; required for LNS/VNS.
	Rng *rand.Rand
	// Tabu search: tenure in iterations (0 = max(7, n/8)).
	TabuTenure int
	// LNS: fraction of indexes relaxed per iteration (0 = 0.05).
	RelaxFraction float64
	// LNS: CP failure limit per relaxation (0 = 500).
	FailLimit int64
	// VNS: number of relaxations per adaptation group (0 = 20).
	GroupSize int
	// OnImprove, when non-nil, is invoked for every new best solution
	// with a copy of the order (used by the Figure 13 decomposition).
	OnImprove func(order []int, objective float64)
	// Context, when non-nil, aborts the search when cancelled (checked
	// together with the budget).
	Context context.Context
	// Incumbent, when non-nil, is polled between iterations with the best
	// objective this search has seen. When some other portfolio backend
	// holds a strictly better feasible order it returns a private copy and
	// its objective for this search to adopt; otherwise it returns nil.
	// Adopted orders are not re-reported through OnImprove (they are not
	// this search's own improvements), which also prevents publish/adopt
	// echo loops between backends.
	Incumbent func(than float64) ([]int, float64)
}

// Result is the outcome of a local search run.
type Result struct {
	Order     []int
	Objective float64
	Traj      Trajectory
	Steps     int64
	// Accepted counts moves the search committed: applied swap/insert
	// moves for Tabu and annealing (including worsening escape moves),
	// improving relaxations for LNS/VNS. Steps - Accepted is the
	// rejected/evaluated-only effort.
	Accepted int64
	// Adopted counts portfolio incumbents this search imported through
	// Options.Incumbent (they never appear in Traj, per its contract).
	Adopted int64
}

// budgetTracker enforces Options.Budget / Options.MaxSteps / Options.Context.
type budgetTracker struct {
	start    time.Time
	deadline time.Time
	maxSteps int64
	steps    int64
	ctx      context.Context
}

func newBudget(opt *Options) *budgetTracker {
	b := &budgetTracker{start: time.Now(), maxSteps: opt.MaxSteps, ctx: opt.Context}
	if opt.Budget > 0 {
		b.deadline = b.start.Add(opt.Budget)
	}
	return b
}

func (b *budgetTracker) spend(n int64) { b.steps += n }

func (b *budgetTracker) exhausted() bool {
	if b.maxSteps > 0 && b.steps >= b.maxSteps {
		return true
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return true
	}
	if b.ctx != nil {
		select {
		case <-b.ctx.Done():
			return true
		default:
		}
	}
	return false
}

func (b *budgetTracker) remainingSteps() int64 {
	if b.maxSteps == 0 {
		return 1 << 40
	}
	r := b.maxSteps - b.steps
	if r < 0 {
		return 0
	}
	return r
}

// tracker accumulates the trajectory of improvements.
type tracker struct {
	b         *budgetTracker
	traj      Trajectory
	best      float64
	adopted   int64
	onImprove func(order []int, objective float64)
}

// adopt polls opt.Incumbent for an externally-published order strictly
// better than everything this search has seen (portfolio incumbent
// sharing) and returns the solution to continue from plus whether an
// adoption happened. The comparison is against the tracker's best — not
// the current position — so a search that deliberately worsened its
// position (tabu escape moves, annealing uphill steps) is not yanked
// back to its own published best every iteration, which would destroy
// its diversification. The tracker's best is tightened silently: adopted
// orders are somebody else's improvements and must not re-enter the
// trajectory or OnImprove.
func (t *tracker) adopt(opt *Options, cur []int, curObj float64) ([]int, float64, bool) {
	if opt.Incumbent == nil {
		return cur, curObj, false
	}
	ext, extObj := opt.Incumbent(t.best)
	if ext == nil {
		return cur, curObj, false
	}
	t.best = extObj
	t.adopted++
	return ext, extObj, true
}

func (t *tracker) record(order []int, obj float64) {
	t.best = obj
	t.traj = append(t.traj, TrajPoint{
		Elapsed:   time.Since(t.b.start),
		Steps:     t.b.steps,
		Objective: obj,
	})
	if t.onImprove != nil {
		t.onImprove(append([]int(nil), order...), obj)
	}
}
